#include "sort/radix_sort.hpp"

#include <algorithm>
#include <array>
#include <cstddef>
#include <cstring>
#include <type_traits>

#include "util/padded.hpp"

namespace parbcc {
namespace {

/// Widest digit we use: 2048 buckets keep the per-thread histogram and
/// cursor table comfortably inside L1/L2.
constexpr int kMaxRadixBits = 11;

/// One stable distribution pass over `bits` bits starting at `shift`.
/// `V` is the payload type.  `hist` is the caller's p * 2^bits scratch
/// matrix (overwritten).
template <class V>
void radix_pass(Executor& ex, std::span<std::size_t> hist,
                const std::uint64_t* keys_in, std::uint64_t* keys_out,
                const V* vals_in, V* vals_out, std::size_t n, int shift,
                int bits) {
  const int p = ex.threads();
  const std::size_t np = static_cast<std::size_t>(p);
  const std::size_t buckets = std::size_t{1} << bits;
  const std::uint64_t mask = buckets - 1;
  // hist[t * buckets + d]: thread t's count for digit d; reused as the
  // scatter cursor after the layout step.
  std::fill(hist.begin(), hist.begin() + np * buckets, std::size_t{0});

  ex.run([&](int tid) {
    const std::size_t ut = static_cast<std::size_t>(tid);
    auto [begin, end] = Executor::block_range(n, p, tid);
    std::size_t* h = hist.data() + ut * buckets;
    for (std::size_t i = begin; i < end; ++i) {
      ++h[(keys_in[i] >> shift) & mask];
    }
    ex.barrier().wait();
    if (tid == 0) {
      // Column-major exclusive scan: digit-major then thread-major, so
      // the permutation is stable.
      std::size_t running = 0;
      for (std::size_t d = 0; d < buckets; ++d) {
        for (std::size_t t = 0; t < np; ++t) {
          const std::size_t c = hist[t * buckets + d];
          hist[t * buckets + d] = running;
          running += c;
        }
      }
    }
    ex.barrier().wait();
    for (std::size_t i = begin; i < end; ++i) {
      const std::size_t d = (keys_in[i] >> shift) & mask;
      const std::size_t dst = h[d]++;
      keys_out[dst] = keys_in[i];
      vals_out[dst] = vals_in[i];
    }
  });
}

template <class V>
void radix_sort_impl(Executor& ex, Workspace& ws, std::uint64_t* keys,
                     V* vals, std::size_t n) {
  if (n < 2) return;

  // Serial cutoff: the counting machinery costs more than std::sort.
  if (ex.threads() == 1 && n < 2048) {
    std::vector<std::pair<std::uint64_t, V>> kv(n);
    for (std::size_t i = 0; i < n; ++i) kv[i] = {keys[i], vals[i]};
    std::stable_sort(
        kv.begin(), kv.end(),
        [](const auto& a, const auto& b) { return a.first < b.first; });
    for (std::size_t i = 0; i < n; ++i) {
      keys[i] = kv[i].first;
      vals[i] = kv[i].second;
    }
    return;
  }

  std::uint64_t max_key = 0;
  for (std::size_t i = 0; i < n; ++i) max_key |= keys[i];
  int key_bits = 0;
  while (max_key != 0) {
    ++key_bits;
    max_key >>= 1;
  }
  if (key_bits == 0) return;  // all keys zero: already sorted
  // Fewest passes first, then the narrowest digit that still fits:
  // e.g. 20-bit keys sort in two 10-bit passes, not three 8-bit ones.
  const int passes = (key_bits + kMaxRadixBits - 1) / kMaxRadixBits;
  const int digit_bits = (key_bits + passes - 1) / passes;

  Workspace::Frame frame(ws);
  const std::size_t np = static_cast<std::size_t>(ex.threads());
  std::span<std::size_t> hist =
      ws.alloc<std::size_t>(np * (std::size_t{1} << digit_bits));
  std::span<std::uint64_t> key_buf = ws.alloc<std::uint64_t>(n);
  std::span<V> val_buf = ws.alloc<V>(n);

  std::uint64_t* kin = keys;
  std::uint64_t* kout = key_buf.data();
  V* vin = vals;
  V* vout = val_buf.data();

  for (int pass = 0; pass < passes; ++pass) {
    radix_pass<V>(ex, hist, kin, kout, vin, vout, n, pass * digit_bits,
                  std::min(digit_bits, key_bits - pass * digit_bits));
    std::swap(kin, kout);
    std::swap(vin, vout);
  }
  // After an odd number of passes the result lives in the buffers.
  if (kin != keys) {
    std::memcpy(keys, kin, n * sizeof(std::uint64_t));
    std::memcpy(vals, vin, n * sizeof(V));
  }
}

}  // namespace

void radix_sort_u64(Executor& ex, Workspace& ws,
                    std::vector<std::uint64_t>& keys) {
  const std::size_t n = keys.size();
  if (n < 2) return;
  if (ex.threads() == 1 && n < 2048) {
    std::sort(keys.begin(), keys.end());
    return;
  }
  // Key-only sort rides the kv machinery with a zero-byte-ish payload;
  // a dedicated path is not worth the duplication at these sizes.
  Workspace::Frame frame(ws);
  std::span<std::uint8_t> dummy = ws.alloc<std::uint8_t>(n);
  std::fill(dummy.begin(), dummy.end(), std::uint8_t{0});
  radix_sort_impl<std::uint8_t>(ex, ws, keys.data(), dummy.data(), n);
}

void radix_sort_u64(Executor& ex, std::vector<std::uint64_t>& keys) {
  Workspace ws;
  radix_sort_u64(ex, ws, keys);
}

void radix_sort_kv(Executor& ex, Workspace& ws,
                   std::vector<std::uint64_t>& keys,
                   std::vector<std::uint32_t>& vals) {
  radix_sort_impl<std::uint32_t>(ex, ws, keys.data(), vals.data(),
                                 keys.size());
}

void radix_sort_kv(Executor& ex, std::vector<std::uint64_t>& keys,
                   std::vector<std::uint32_t>& vals) {
  Workspace ws;
  radix_sort_kv(ex, ws, keys, vals);
}

void radix_sort_kv64(Executor& ex, Workspace& ws,
                     std::vector<std::uint64_t>& keys,
                     std::vector<std::uint64_t>& vals) {
  radix_sort_impl<std::uint64_t>(ex, ws, keys.data(), vals.data(),
                                 keys.size());
}

void radix_sort_kv64(Executor& ex, std::vector<std::uint64_t>& keys,
                     std::vector<std::uint64_t>& vals) {
  Workspace ws;
  radix_sort_kv64(ex, ws, keys, vals);
}

void radix_sort_kv(Executor& ex, Workspace& ws, std::span<std::uint64_t> keys,
                   std::span<std::uint32_t> vals) {
  radix_sort_impl<std::uint32_t>(ex, ws, keys.data(), vals.data(),
                                 keys.size());
}

void radix_sort_kv64(Executor& ex, Workspace& ws,
                     std::span<std::uint64_t> keys,
                     std::span<std::uint64_t> vals) {
  radix_sort_impl<std::uint64_t>(ex, ws, keys.data(), vals.data(),
                                 keys.size());
}

}  // namespace parbcc
