#pragma once

#include <cstdint>
#include <vector>

#include "util/thread_pool.hpp"
#include "util/workspace.hpp"

/// \file radix_sort.hpp
/// Parallel LSD radix sort on 64-bit keys.
///
/// The Euler-tour construction sorts 2(n-1) arcs keyed by
/// (min(u,v), max(u,v)); the keys are dense integers, so a stable
/// counting-based radix sort beats comparison sorting by a wide margin
/// and is the cache-friendly choice the paper's engineering favours.
/// Passes are skipped above the highest set byte of the maximum key.
///
/// The histogram matrix and ping-pong buffers come from the Workspace;
/// the Executor-only overloads bring their own arena.

namespace parbcc {

/// Sort `keys` ascending.
void radix_sort_u64(Executor& ex, Workspace& ws,
                    std::vector<std::uint64_t>& keys);
void radix_sort_u64(Executor& ex, std::vector<std::uint64_t>& keys);

/// Sort `keys` ascending, carrying `vals` through the same permutation
/// (stable).  Requires keys.size() == vals.size().
void radix_sort_kv(Executor& ex, Workspace& ws,
                   std::vector<std::uint64_t>& keys,
                   std::vector<std::uint32_t>& vals);
void radix_sort_kv(Executor& ex, std::vector<std::uint64_t>& keys,
                   std::vector<std::uint32_t>& vals);

/// Same with a 64-bit payload (used by the CSR builder to carry
/// (neighbour, edge-id) records through the by-source sort).
void radix_sort_kv64(Executor& ex, Workspace& ws,
                     std::vector<std::uint64_t>& keys,
                     std::vector<std::uint64_t>& vals);
void radix_sort_kv64(Executor& ex, std::vector<std::uint64_t>& keys,
                     std::vector<std::uint64_t>& vals);

/// Span-based variants for data that itself lives in the workspace.
void radix_sort_kv(Executor& ex, Workspace& ws, std::span<std::uint64_t> keys,
                   std::span<std::uint32_t> vals);
void radix_sort_kv64(Executor& ex, Workspace& ws,
                     std::span<std::uint64_t> keys,
                     std::span<std::uint64_t> vals);

}  // namespace parbcc
