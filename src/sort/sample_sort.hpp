#pragma once

#include <algorithm>
#include <cstddef>
#include <functional>
#include <vector>

#include "util/padded.hpp"
#include "util/thread_pool.hpp"
#include "util/workspace.hpp"

/// \file sample_sort.hpp
/// Parallel sample sort after Helman and JáJá (ALENEX 1999) — the
/// routine the paper uses to pair anti-parallel arcs when building the
/// Euler tour in TV-SMP.
///
/// Structure: sort p blocks locally, pick p-1 splitters from p(p-1)
/// regular samples, partition every block by the splitters with binary
/// search, then each thread assembles and merges one bucket.  All
/// cross-thread placement is computed from a counts matrix with prefix
/// sums, so there are no concurrent writes.
///
/// The sample/counts matrices and the O(n) bucket buffer come from the
/// Workspace; the Executor-only overload brings its own arena.

namespace parbcc {

template <class T, class Cmp = std::less<T>>
void sample_sort(Executor& ex, Workspace& ws, T* data, std::size_t n,
                 Cmp cmp = Cmp{}) {
  const int p = ex.threads();
  if (p == 1 || n < 4096) {
    std::sort(data, data + n, cmp);
    return;
  }

  Workspace::Frame frame(ws);
  const std::size_t np = static_cast<std::size_t>(p);
  std::span<T> samples = ws.alloc<T>(np * (np - 1));
  std::span<T> splitters = ws.alloc<T>(np - 1);
  // counts[t * p + b] = how many of thread t's elements fall in bucket b.
  std::span<std::size_t> counts = ws.alloc<std::size_t>(np * np);
  // dest[t * p + b]   = where thread t's bucket-b piece starts in `buf`.
  std::span<std::size_t> dest = ws.alloc<std::size_t>(np * np);
  std::span<std::size_t> bucket_begin = ws.alloc<std::size_t>(np + 1);
  std::span<T> buf = ws.alloc<T>(n);

  ex.run([&](int tid) {
    const std::size_t ut = static_cast<std::size_t>(tid);
    auto [begin, end] = Executor::block_range(n, p, tid);
    // Step 1: local sort.
    std::sort(data + begin, data + end, cmp);
    // Step 2: p-1 regular samples per block.  Blocks are non-empty for
    // n >= 4096, but an empty block would contribute default-valued
    // fillers, which merely skews splitters without breaking anything.
    const std::size_t len = end - begin;
    for (std::size_t k = 0; k + 1 < np; ++k) {
      samples[ut * (np - 1) + k] =
          len == 0 ? T{} : data[begin + (k + 1) * len / np];
    }
    ex.barrier().wait();

    // Step 3: thread 0 selects splitters from the sorted sample.
    if (tid == 0) {
      std::sort(samples.begin(), samples.end(), cmp);
      for (std::size_t k = 0; k + 1 < np; ++k) {
        splitters[k] = samples[(k + 1) * (np - 1)];
      }
    }
    ex.barrier().wait();

    // Step 4: partition this block by the splitters.
    std::size_t prev = begin;
    for (std::size_t b = 0; b + 1 < np; ++b) {
      const T* it = std::upper_bound(data + prev, data + end, splitters[b], cmp);
      const std::size_t cut = static_cast<std::size_t>(it - data);
      counts[ut * np + b] = cut - prev;
      prev = cut;
    }
    counts[ut * np + (np - 1)] = end - prev;
    ex.barrier().wait();

    // Step 5: thread 0 lays out buckets (p^2 entries; serial is fine).
    if (tid == 0) {
      std::size_t running = 0;
      for (std::size_t b = 0; b < np; ++b) {
        bucket_begin[b] = running;
        for (std::size_t t = 0; t < np; ++t) {
          dest[t * np + b] = running;
          running += counts[t * np + b];
        }
      }
      bucket_begin[np] = running;
    }
    ex.barrier().wait();

    // Step 6: scatter this block's pieces into the bucket buffer.
    std::size_t src = begin;
    for (std::size_t b = 0; b < np; ++b) {
      const std::size_t c = counts[ut * np + b];
      std::copy(data + src, data + src + c,
                buf.begin() + static_cast<std::ptrdiff_t>(dest[ut * np + b]));
      src += c;
    }
    ex.barrier().wait();

    // Step 7: merge bucket `tid`, which is p sorted runs laid head to
    // tail; ln(p) passes of inplace_merge keep it simple and local.
    // The tiny run-boundary lists are per-thread growing state and stay
    // on the heap (the Workspace is single-orchestrator).
    const std::size_t bkt = ut;
    std::vector<std::size_t> run_starts;
    run_starts.reserve(np + 1);
    {
      std::size_t pos = bucket_begin[bkt];
      for (std::size_t t = 0; t < np; ++t) {
        run_starts.push_back(pos);
        pos += counts[t * np + bkt];
      }
      run_starts.push_back(pos);
    }
    while (run_starts.size() > 2) {
      std::vector<std::size_t> next;
      next.reserve(run_starts.size() / 2 + 2);
      std::size_t k = 0;
      for (; k + 2 < run_starts.size(); k += 2) {
        std::inplace_merge(
            buf.begin() + static_cast<std::ptrdiff_t>(run_starts[k]),
            buf.begin() + static_cast<std::ptrdiff_t>(run_starts[k + 1]),
            buf.begin() + static_cast<std::ptrdiff_t>(run_starts[k + 2]), cmp);
        next.push_back(run_starts[k]);
      }
      for (; k < run_starts.size(); ++k) next.push_back(run_starts[k]);
      run_starts = std::move(next);
    }
    ex.barrier().wait();

    // Step 8: copy the merged bucket back in place.
    std::copy(buf.begin() + static_cast<std::ptrdiff_t>(bucket_begin[bkt]),
              buf.begin() + static_cast<std::ptrdiff_t>(bucket_begin[bkt + 1]),
              data + bucket_begin[bkt]);
  });
}

template <class T, class Cmp = std::less<T>>
void sample_sort(Executor& ex, Workspace& ws, std::vector<T>& data,
                 Cmp cmp = Cmp{}) {
  sample_sort(ex, ws, data.data(), data.size(), cmp);
}

template <class T, class Cmp = std::less<T>>
void sample_sort(Executor& ex, std::vector<T>& data, Cmp cmp = Cmp{}) {
  Workspace ws;
  sample_sort(ex, ws, data.data(), data.size(), cmp);
}

}  // namespace parbcc
