#include "server/snapshot.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "connectivity/shiloach_vishkin.hpp"
#include "core/block_cut_tree.hpp"
#include "core/two_edge_connected.hpp"

namespace parbcc::server {

Snapshot::Snapshot(Executor& ex, const EdgeList& g, const BccResult& result,
                   std::uint64_t version)
    : version_(version), n_(g.n), m_(g.m()) {
  if (result.edge_component.size() != g.edges.size()) {
    throw std::invalid_argument("Snapshot: result does not match graph");
  }
  if (result.is_articulation.size() != g.n) {
    throw std::invalid_argument(
        "Snapshot: result lacks cut info (compute_cut_info)");
  }

  // Private copies of the per-edge/per-vertex bits.  The labels are
  // normalized here (the batch-dynamic standing result is sparse
  // between renormalizations) so block_id answers are contiguous and
  // the block-cut tree can size per-block arrays by num_blocks.
  labels_ = result.edge_component;
  num_blocks_ = normalize_labels(labels_);
  is_cut_ = result.is_articulation;

  TwoEdgeConnected tec = two_edge_connected_components(ex, g, result);
  two_ec_ = std::move(tec.vertex_component);
  num_two_ec_ = tec.num_components;

  BlockCutTree tree = build_block_cut_tree(ex, g, labels_, num_blocks_,
                                           is_cut_);
  num_cuts_ = tree.num_cut_nodes;
  cut_node_of_ = std::move(tree.cut_node_of);

  // A non-cut vertex with any incident edge lies in exactly one block.
  block_of_.assign(n_, kNoVertex);
  for (vid b = 0; b < num_blocks_; ++b) {
    for (const vid v : tree.vertices_of_block(b)) {
      if (cut_node_of_[v] == kNoVertex) block_of_[v] = b;
    }
  }

  // Root the block-cut forest at block nodes.  Every component of the
  // forest contains a block (a lone cut node is impossible: a cut
  // vertex lies in >= 2 blocks), so seeding BFS from blocks reaches
  // every node, and depth parity encodes node type from then on.
  const vid num_nodes = num_blocks_ + num_cuts_;
  std::vector<eid> off(num_nodes + 1, 0);
  for (const Edge& e : tree.edges) {
    ++off[e.u + 1];
    ++off[e.v + 1];
  }
  for (vid x = 0; x < num_nodes; ++x) off[x + 1] += off[x];
  std::vector<vid> nbr(2 * tree.edges.size());
  {
    std::vector<eid> cur(off.begin(), off.end() - 1);
    for (const Edge& e : tree.edges) {
      nbr[cur[e.u]++] = e.v;
      nbr[cur[e.v]++] = e.u;
    }
  }
  parent_.assign(num_nodes, kNoVertex);
  depth_.assign(num_nodes, 0);
  root_.assign(num_nodes, kNoVertex);
  std::vector<vid> order;
  order.reserve(num_nodes);
  vid max_depth = 0;
  for (vid r = 0; r < num_blocks_; ++r) {
    if (root_[r] != kNoVertex) continue;
    root_[r] = r;
    const std::size_t tail = order.size();
    order.push_back(r);
    for (std::size_t head = tail; head < order.size(); ++head) {
      const vid x = order[head];
      for (eid i = off[x]; i < off[x + 1]; ++i) {
        const vid y = nbr[i];
        if (root_[y] != kNoVertex) continue;
        root_[y] = r;
        parent_[y] = x;
        depth_[y] = depth_[x] + 1;
        max_depth = std::max(max_depth, depth_[y]);
        order.push_back(y);
      }
    }
  }

  // Binary lifting over the rooted forest for O(log n) LCA.
  levels_ = 1;
  while ((1u << levels_) <= max_depth) ++levels_;
  up_.assign(static_cast<std::size_t>(levels_) * num_nodes, kNoVertex);
  if (num_nodes > 0) {
    ex.parallel_for(num_nodes,
                    [&](std::size_t x) { up_[x] = parent_[x]; });
    for (int k = 1; k < levels_; ++k) {
      const std::size_t prev = static_cast<std::size_t>(k - 1) * num_nodes;
      const std::size_t curr = static_cast<std::size_t>(k) * num_nodes;
      ex.parallel_for(num_nodes, [&](std::size_t x) {
        const vid mid = up_[prev + x];
        up_[curr + x] = mid == kNoVertex ? kNoVertex : up_[prev + mid];
      });
    }
  }

  memory_bytes_ = labels_.size() * sizeof(vid) + is_cut_.size() +
                  two_ec_.size() * sizeof(vid) +
                  cut_node_of_.size() * sizeof(vid) +
                  block_of_.size() * sizeof(vid) +
                  (parent_.size() + depth_.size() + root_.size() +
                   up_.size()) *
                      sizeof(vid);
}

bool Snapshot::same_block(vid u, vid v) const {
  if (u >= n_ || v >= n_) return false;
  if (u == v) return node_of(u) != kNoVertex;
  const bool cu = is_cut_[u] != 0;
  const bool cv = is_cut_[v] != 0;
  if (!cu && !cv) {
    // Each lies in at most one block.
    return block_of_[u] != kNoVertex && block_of_[u] == block_of_[v];
  }
  if (cu != cv) {
    // The non-cut endpoint's unique block must be adjacent to the cut
    // endpoint's node: in the rooted forest that is exactly
    // parent/child between the two nodes.
    const vid block = block_of_[cu ? v : u];
    if (block == kNoVertex) return false;
    const vid cut = node_of(cu ? u : v);
    return parent_[block] == cut || parent_[cut] == block;
  }
  // Both cut: the shared block, if any, is a tree neighbor of both.
  // Cut nodes are never roots, so both parents exist and are blocks:
  // either the same parent block holds both, or one's parent block is
  // the other's child, i.e. its grandparent is the other cut node.
  const vid a = node_of(u);
  const vid b = node_of(v);
  const vid pa = parent_[a];
  const vid pb = parent_[b];
  if (pa == pb) return true;
  return parent_[pa] == b || parent_[pb] == a;
}

vid Snapshot::lca(vid a, vid b) const {
  const std::size_t num_nodes = parent_.size();
  if (depth_[a] < depth_[b]) std::swap(a, b);
  vid diff = depth_[a] - depth_[b];
  for (int k = 0; diff != 0; ++k, diff >>= 1) {
    if (diff & 1u) a = up_[static_cast<std::size_t>(k) * num_nodes + a];
  }
  if (a == b) return a;
  for (int k = levels_ - 1; k >= 0; --k) {
    const std::size_t base = static_cast<std::size_t>(k) * num_nodes;
    const vid ua = up_[base + a];
    const vid ub = up_[base + b];
    if (ua != ub) {
      a = ua;
      b = ub;
    }
  }
  return parent_[a];
}

vid Snapshot::path_articulation(vid u, vid v) const {
  if (u >= n_ || v >= n_) return kNoVertex;
  if (u == v) return 0;
  const vid a = node_of(u);
  const vid b = node_of(v);
  if (a == kNoVertex || b == kNoVertex) return kNoVertex;  // isolated
  if (root_[a] != root_[b]) return kNoVertex;              // disconnected
  if (a == b) return 0;
  const vid l = lca(a, b);
  // Cut nodes sit at odd depth (roots are blocks).  Count odd depths
  // on the two arms of the path — each arm inclusive of both ends, so
  // l is double-counted once — then drop the endpoints: a cut endpoint
  // is u or v itself, never "interior".
  const auto odd_in = [](vid lo, vid hi) {
    return ((hi + 1) >> 1) - (lo >> 1);
  };
  vid cuts = odd_in(depth_[l], depth_[a]) + odd_in(depth_[l], depth_[b]) -
             (depth_[l] & 1u);
  cuts -= depth_[a] & 1u;
  cuts -= depth_[b] & 1u;
  return cuts;
}

}  // namespace parbcc::server
