#include "server/service.hpp"

#include <utility>

#include "util/timer.hpp"

namespace parbcc::server {

BccService::BccService(BccContext& ctx, EdgeList base,
                       const BatchDynamicOptions& options)
    : ctx_(ctx), engine_(ctx, std::move(base), options) {
  snap_.store(build_snapshot());
}

std::shared_ptr<const Snapshot> BccService::build_snapshot() {
  return std::make_shared<const Snapshot>(ctx_.executor(), engine_.graph(),
                                          engine_.result(),
                                          engine_.version());
}

std::uint64_t BccService::apply_batch(std::span<const Edge> insertions,
                                      std::span<const eid> deletions) {
  std::lock_guard<std::mutex> lock(write_mu_);
  engine_.apply_batch(insertions, deletions);
  Timer timer;
  std::shared_ptr<const Snapshot> fresh = build_snapshot();
  const std::uint64_t version = fresh->version();
  // The swap is the entire reader-visible side effect: one pointer
  // store under the publish microlock.  The previous epoch stays alive
  // until its last reader drops it.
  snap_.store(std::move(fresh));
  last_publish_seconds_ = timer.lap();
  return version;
}

}  // namespace parbcc::server
