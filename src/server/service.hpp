#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <thread>

#include "core/batch_dynamic.hpp"
#include "core/bcc_context.hpp"
#include "server/snapshot.hpp"

/// \file service.hpp
/// BCC-as-a-service, in-process half: a BatchDynamicBcc engine behind
/// an epoch-published query surface.
///
/// This is the reader/writer concurrency contract of the whole serving
/// layer, kept deliberately small:
///
///  - **Readers** call snapshot() — a refcount bump under a
///    pointer-sized microlock — and then query the returned epoch for
///    as long as they like.  The microlock is never held across a
///    batch or a snapshot build, only for the pointer copy itself, so
///    a reader can never wait on the slow part of a mutation: while a
///    batch is being applied and its snapshot built, every concurrent
///    reader keeps answering from the previous epoch.  The shared_ptr
///    keeps an epoch alive for exactly as long as any reader still
///    holds it (RCU with reference counting as the grace period).
///  - **Writers** call apply_batch(), serialized by a private mutex
///    (the engine, the context arena and the conversion cache are all
///    single-orchestrator by design).  A writer routes the batch
///    through BatchDynamicBcc::apply_batch, deep-copies the fresh
///    standing result into a new immutable Snapshot stamped with the
///    engine's version counter, and publishes it with one pointer swap
///    under the publish microlock.  Readers observe epochs in
///    publication order.
///
/// The TCP layer (server.hpp) is a thin framing shim over this class;
/// embedding applications can use BccService directly and skip the
/// socket entirely.

namespace parbcc::server {

class BccService {
 public:
  /// Take ownership of `base` (loop-free), solve it once, and publish
  /// epoch 0.  The context supplies the executor and arena for every
  /// later batch and snapshot build; it must outlive the service and
  /// must not be used concurrently by anyone else (writer-side state).
  BccService(BccContext& ctx, EdgeList base,
             const BatchDynamicOptions& options = {});

  BccService(const BccService&) = delete;
  BccService& operator=(const BccService&) = delete;

  /// The current epoch.  Never blocks on a mutation in progress (the
  /// publish microlock is held for a pointer copy only); never returns
  /// null.  Hold the pointer for a batch of queries so they all answer
  /// against one consistent epoch.
  std::shared_ptr<const Snapshot> snapshot() const { return snap_.load(); }

  /// Apply one mutation batch (insertions appended, deletions by edge
  /// id in the pre-batch numbering — BatchDynamicBcc::apply_batch
  /// semantics) and publish the resulting epoch.  Returns its version.
  /// Serialized against other writers; throws std::invalid_argument on
  /// malformed batches without publishing anything.
  std::uint64_t apply_batch(std::span<const Edge> insertions,
                            std::span<const eid> deletions);

  /// Version of the most recently published epoch.
  std::uint64_t version() const {
    return snapshot()->version();
  }

  /// Wall-clock seconds the last apply_batch spent building and
  /// publishing the snapshot (refresh cost on top of the engine's
  /// batch application; 0 before the first batch).
  double last_publish_seconds() const { return last_publish_seconds_; }

  /// Writer-side access to the engine (stats, standing graph).  Not
  /// synchronized: callers must not touch this concurrently with
  /// apply_batch — bench/test orchestration only.
  const BatchDynamicBcc& engine() const { return engine_; }

 private:
  /// The published-epoch cell: a shared_ptr behind a hand-rolled
  /// acquire/release spinlock.  This is deliberately not
  /// std::atomic<std::shared_ptr>: libstdc++'s _Sp_atomic releases its
  /// embedded lock on the load path with memory_order_relaxed, which
  /// leaves the reader's pointer copy formally unordered against the
  /// next store (benign on real hardware, but a data race by the
  /// model, and ThreadSanitizer reports it as one).  Spelling out the
  /// same protocol with a release unlock costs nothing and keeps the
  /// server layer clean under TSan.  The lock is held only for the
  /// pointer copy / swap — a refcount bump — never while a batch is
  /// applied or a snapshot built, so readers still cannot wait on the
  /// slow part of a mutation.
  class EpochPtr {
   public:
    std::shared_ptr<const Snapshot> load() const {
      lock();
      std::shared_ptr<const Snapshot> out = ptr_;
      unlock();
      return out;
    }

    void store(std::shared_ptr<const Snapshot> next) {
      lock();
      ptr_.swap(next);
      unlock();
      // The displaced epoch (now in `next`) releases outside the lock;
      // if this writer holds its last reference, the Snapshot destroys
      // here rather than under the spinlock.
    }

   private:
    void lock() const {
      while (locked_.exchange(true, std::memory_order_acquire)) {
        std::this_thread::yield();
      }
    }
    void unlock() const { locked_.store(false, std::memory_order_release); }

    mutable std::atomic<bool> locked_{false};
    std::shared_ptr<const Snapshot> ptr_;
  };

  std::shared_ptr<const Snapshot> build_snapshot();

  BccContext& ctx_;
  BatchDynamicBcc engine_;
  std::mutex write_mu_;
  EpochPtr snap_;
  double last_publish_seconds_ = 0;
};

}  // namespace parbcc::server
