#pragma once

#include <cstdint>
#include <vector>

#include "core/bcc_result.hpp"
#include "graph/edge_list.hpp"
#include "util/thread_pool.hpp"

/// \file snapshot.hpp
/// An immutable, self-contained view of one solved epoch of a graph,
/// built for concurrent point queries.
///
/// The serving layer (service.hpp) publishes one Snapshot per applied
/// mutation batch via an RCU-style shared_ptr swap: readers resolve
/// every query against whatever epoch they grabbed, writers build the
/// next epoch on the side.  That contract forces two properties on
/// this class, both deliberate:
///
///  - **No shared storage.**  Construction deep-copies everything it
///    needs from the engine's standing result (labels are normalized
///    into a private contiguous copy), so later apply_batch mutations
///    — including the copy-on-renormalize label rewrite — can never
///    touch a published epoch.
///  - **Const-only queries.**  Every accessor is const and touches only
///    immutable arrays, so any number of threads can query one epoch
///    with no synchronization at all.
///
/// Query surface (the block-cut-tree structure of Dong et al.'s
/// biconnectivity interface):
///
///   same_block(u, v)        do u and v share a biconnected component?
///   is_cut(v)               is v an articulation vertex?
///   block_id(e)             normalized block label of edge e
///   path_articulation(u, v) articulation vertices every u-v path must
///                           cross (u, v themselves excluded)
///   same_two_edge(u, v)     do u and v share a 2-edge-connected
///                           component?
///
/// same_block / is_cut / same_two_edge / block_id are O(1);
/// path_articulation is O(log n) (one LCA in the rooted block-cut
/// forest by binary lifting).  The structural trick making same_block
/// O(1): root every block-cut tree at a block node, so blocks sit at
/// even depth, cut vertices at odd depth, and "u and v lie in one
/// block" collapses to at most three parent-pointer comparisons.
///
/// Construction is O((n + m) log n) work (dominated by the block-cut
/// tree's incidence sort and the lifting table) — this is the
/// "snapshot refresh cost" the server bench measures per epoch.

namespace parbcc::server {

class Snapshot {
 public:
  /// Deep-copy the queryable surface of `result` (must carry cut info;
  /// labels may be sparse, as in a batch-dynamic standing result).
  /// `g` must be loop-free — a self-loop would put a non-articulation
  /// vertex in two blocks, which the O(1) same_block layout cannot
  /// represent (the serving path guarantees this: BccService takes a
  /// loop-free base and the engine rejects loop insertions).
  /// `version` stamps the epoch (BatchDynamicBcc::version()).
  Snapshot(Executor& ex, const EdgeList& g, const BccResult& result,
           std::uint64_t version);

  std::uint64_t version() const { return version_; }
  vid n() const { return n_; }
  eid m() const { return m_; }
  vid num_blocks() const { return num_blocks_; }
  vid num_cut_vertices() const { return num_cuts_; }
  vid num_two_edge_components() const { return num_two_ec_; }

  /// Queries are total: out-of-range ids yield false / kNoVertex
  /// rather than UB, so the server can answer a stale client (whose
  /// ids referenced an older epoch) without a round trip to validate.

  /// True iff some block contains both u and v (true for u == v iff u
  /// lies in any block, i.e. has an incident edge).  O(1).
  bool same_block(vid u, vid v) const;

  /// True iff v is an articulation vertex.  O(1).
  bool is_cut(vid v) const { return v < n_ && is_cut_[v] != 0; }

  /// Normalized block label of edge e, contiguous in [0, num_blocks);
  /// kNoVertex when e is out of range.  Label values are
  /// epoch-canonical: stable within one snapshot, not across epochs
  /// (only the partition is).  O(1).
  vid block_id(eid e) const { return e < m_ ? labels_[e] : kNoVertex; }

  /// Number of articulation vertices that every u-v path must cross
  /// (excluding u and v themselves) — the cut nodes strictly inside
  /// the block-cut-tree path between u's and v's nodes.  kNoVertex
  /// when u and v are disconnected (or out of range).  O(log n).
  vid path_articulation(vid u, vid v) const;

  /// True iff u and v stay connected after any single edge failure
  /// (same 2-edge-connected component; true for u == v).  O(1).
  bool same_two_edge(vid u, vid v) const {
    return u < n_ && v < n_ && two_ec_[u] == two_ec_[v];
  }

  /// Rough heap footprint of the snapshot's arrays, for refresh-cost
  /// telemetry.
  std::size_t memory_bytes() const { return memory_bytes_; }

 private:
  /// Block-cut-forest node of vertex v: its cut node when v is an
  /// articulation vertex, its unique block otherwise, kNoVertex when
  /// v is isolated.  Nodes are [0, num_blocks_) blocks then
  /// [num_blocks_, num_blocks_ + num_cuts_) cut nodes.
  vid node_of(vid v) const {
    return is_cut_[v] ? num_blocks_ + cut_node_of_[v] : block_of_[v];
  }
  vid lca(vid a, vid b) const;

  std::uint64_t version_ = 0;
  vid n_ = 0;
  eid m_ = 0;
  vid num_blocks_ = 0;
  vid num_cuts_ = 0;
  vid num_two_ec_ = 0;
  std::size_t memory_bytes_ = 0;

  std::vector<vid> labels_;              // per edge, normalized
  std::vector<std::uint8_t> is_cut_;     // per vertex
  std::vector<vid> two_ec_;              // per vertex, normalized
  std::vector<vid> cut_node_of_;         // per vertex, kNoVertex if not cut
  std::vector<vid> block_of_;            // per non-cut vertex, else kNoVertex

  // Rooted block-cut forest (roots are blocks, so depth parity encodes
  // node type: even = block, odd = cut vertex).
  std::vector<vid> parent_;  // per node, kNoVertex at roots
  std::vector<vid> depth_;   // per node
  std::vector<vid> root_;    // per node: its tree's root (component id)
  // Binary lifting: up_[k * num_nodes + x] = 2^k-th ancestor of x (or
  // kNoVertex past the root); levels_ tables of num_nodes entries.
  std::vector<vid> up_;
  int levels_ = 0;
};

}  // namespace parbcc::server
