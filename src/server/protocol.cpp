#include "server/protocol.hpp"

#include <cerrno>
#include <cstring>

#include <unistd.h>

#include "server/snapshot.hpp"

namespace parbcc::server {
namespace {

/// Little-endian appender.  Frames start with a 4-byte length slot
/// that finish() backfills once the payload size is known.
class ByteWriter {
 public:
  ByteWriter() { buf_.resize(4); }

  void u8(std::uint8_t x) { buf_.push_back(x); }
  void u32(std::uint32_t x) {
    for (int i = 0; i < 4; ++i) buf_.push_back((x >> (8 * i)) & 0xff);
  }
  void u64(std::uint64_t x) {
    for (int i = 0; i < 8; ++i) buf_.push_back((x >> (8 * i)) & 0xff);
  }
  void bytes(const void* p, std::size_t len) {
    const auto* b = static_cast<const std::uint8_t*>(p);
    buf_.insert(buf_.end(), b, b + len);
  }

  std::vector<std::uint8_t> finish() {
    const std::uint32_t len = static_cast<std::uint32_t>(buf_.size() - 4);
    for (int i = 0; i < 4; ++i) buf_[i] = (len >> (8 * i)) & 0xff;
    return std::move(buf_);
  }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Bounds-checked little-endian reader over an untrusted payload.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t u8() {
    need(1);
    return data_[pos_++];
  }
  std::uint32_t u32() {
    need(4);
    std::uint32_t x = 0;
    for (int i = 0; i < 4; ++i) x |= std::uint32_t(data_[pos_ + i]) << (8 * i);
    pos_ += 4;
    return x;
  }
  std::uint64_t u64() {
    need(8);
    std::uint64_t x = 0;
    for (int i = 0; i < 8; ++i) x |= std::uint64_t(data_[pos_ + i]) << (8 * i);
    pos_ += 8;
    return x;
  }
  std::string str(std::size_t len) {
    need(len);
    std::string s(reinterpret_cast<const char*>(data_.data() + pos_), len);
    pos_ += len;
    return s;
  }

  std::size_t remaining() const { return data_.size() - pos_; }

  void expect_end() const {
    if (pos_ != data_.size()) {
      throw ProtocolError("protocol: trailing bytes after message body");
    }
  }

  /// Validate a declared element count against a hard cap AND the
  /// bytes actually present, before any allocation sized by it.
  std::uint32_t count(std::uint32_t cap, std::size_t bytes_per_element,
                      const char* what) {
    const std::uint32_t declared = u32();
    if (declared > cap) {
      throw ProtocolError(std::string("protocol: ") + what + " count " +
                          std::to_string(declared) + " exceeds the cap " +
                          std::to_string(cap));
    }
    if (static_cast<std::uint64_t>(declared) * bytes_per_element >
        remaining()) {
      throw ProtocolError(std::string("protocol: ") + what + " count " +
                          std::to_string(declared) +
                          " exceeds the payload size");
    }
    return declared;
  }

 private:
  void need(std::size_t len) const {
    if (data_.size() - pos_ < len) {
      throw ProtocolError("protocol: truncated message body");
    }
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

constexpr std::uint8_t kStatusOk = 0;
constexpr std::uint8_t kStatusError = 1;

/// Reply payloads open with a status byte; an error status carries a
/// message and aborts the typed decode by throwing it to the caller.
void decode_status(ByteReader& r) {
  const std::uint8_t status = r.u8();
  if (status == kStatusOk) return;
  if (status == kStatusError) {
    const std::uint32_t len = r.count(kMaxFrameBytes, 1, "error message");
    throw ProtocolError("server error: " + r.str(len));
  }
  throw ProtocolError("protocol: unknown reply status " +
                      std::to_string(status));
}

}  // namespace

std::uint32_t evaluate_query(const Snapshot& snap, const Query& q) {
  switch (q.op) {
    case Op::kSameBlock:
      return snap.same_block(q.a, q.b) ? 1 : 0;
    case Op::kIsCut:
      return snap.is_cut(q.a) ? 1 : 0;
    case Op::kBlockId:
      return snap.block_id(q.a);
    case Op::kPathArticulation:
      return snap.path_articulation(q.a, q.b);
    case Op::kSameTwoEdge:
      return snap.same_two_edge(q.a, q.b) ? 1 : 0;
  }
  return kNoVertex;
}

std::vector<std::uint8_t> encode_query_request(std::span<const Query> queries) {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(MsgType::kQuery));
  w.u32(static_cast<std::uint32_t>(queries.size()));
  for (const Query& q : queries) {
    w.u8(static_cast<std::uint8_t>(q.op));
    w.u32(q.a);
    w.u32(q.b);
  }
  return w.finish();
}

std::vector<std::uint8_t> encode_mutate_request(
    std::span<const Edge> insertions, std::span<const eid> deletions) {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(MsgType::kMutate));
  w.u32(static_cast<std::uint32_t>(insertions.size()));
  for (const Edge& e : insertions) {
    w.u32(e.u);
    w.u32(e.v);
  }
  w.u32(static_cast<std::uint32_t>(deletions.size()));
  for (const eid e : deletions) w.u32(e);
  return w.finish();
}

std::vector<std::uint8_t> encode_info_request() {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(MsgType::kInfo));
  return w.finish();
}

std::vector<std::uint8_t> encode_error_reply(const std::string& message) {
  ByteWriter w;
  w.u8(kStatusError);
  w.u32(static_cast<std::uint32_t>(message.size()));
  w.bytes(message.data(), message.size());
  return w.finish();
}

std::vector<std::uint8_t> encode_query_reply(
    std::uint64_t version, std::span<const std::uint32_t> results) {
  ByteWriter w;
  w.u8(kStatusOk);
  w.u64(version);
  w.u32(static_cast<std::uint32_t>(results.size()));
  for (const std::uint32_t r : results) w.u32(r);
  return w.finish();
}

std::vector<std::uint8_t> encode_info_reply(const InfoReply& info) {
  ByteWriter w;
  w.u8(kStatusOk);
  w.u64(info.version);
  w.u32(info.n);
  w.u32(info.m);
  w.u32(info.num_blocks);
  w.u32(info.num_cut_vertices);
  w.u32(info.num_two_edge_components);
  return w.finish();
}

MsgType decode_request_type(std::span<const std::uint8_t> payload) {
  ByteReader r(payload);
  const std::uint8_t type = r.u8();
  switch (static_cast<MsgType>(type)) {
    case MsgType::kQuery:
    case MsgType::kMutate:
    case MsgType::kInfo:
      return static_cast<MsgType>(type);
  }
  throw ProtocolError("protocol: unknown request type " +
                      std::to_string(type));
}

std::vector<Query> decode_query_request(std::span<const std::uint8_t> payload) {
  ByteReader r(payload);
  r.u8();  // type, already dispatched
  const std::uint32_t count = r.count(kMaxQueriesPerBatch, 9, "query");
  std::vector<Query> queries;
  queries.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    Query q;
    const std::uint8_t op = r.u8();
    if (op < static_cast<std::uint8_t>(Op::kSameBlock) ||
        op > static_cast<std::uint8_t>(Op::kSameTwoEdge)) {
      throw ProtocolError("protocol: unknown query op " + std::to_string(op));
    }
    q.op = static_cast<Op>(op);
    q.a = r.u32();
    q.b = r.u32();
    queries.push_back(q);
  }
  r.expect_end();
  return queries;
}

MutateRequest decode_mutate_request(std::span<const std::uint8_t> payload) {
  ByteReader r(payload);
  r.u8();  // type
  MutateRequest req;
  const std::uint32_t ni = r.count(kMaxMutationEdges, 8, "insertion");
  req.insertions.reserve(ni);
  for (std::uint32_t i = 0; i < ni; ++i) {
    const vid u = r.u32();
    const vid v = r.u32();
    req.insertions.push_back({u, v});
  }
  const std::uint32_t nd = r.count(kMaxMutationEdges, 4, "deletion");
  req.deletions.reserve(nd);
  for (std::uint32_t i = 0; i < nd; ++i) req.deletions.push_back(r.u32());
  r.expect_end();
  return req;
}

QueryReply decode_query_reply(std::span<const std::uint8_t> payload) {
  ByteReader r(payload);
  decode_status(r);
  QueryReply reply;
  reply.version = r.u64();
  const std::uint32_t count = r.count(kMaxQueriesPerBatch, 4, "result");
  reply.results.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) reply.results.push_back(r.u32());
  r.expect_end();
  return reply;
}

InfoReply decode_info_reply(std::span<const std::uint8_t> payload) {
  ByteReader r(payload);
  decode_status(r);
  InfoReply info;
  info.version = r.u64();
  info.n = r.u32();
  info.m = r.u32();
  info.num_blocks = r.u32();
  info.num_cut_vertices = r.u32();
  info.num_two_edge_components = r.u32();
  r.expect_end();
  return info;
}

namespace {

/// Read exactly `len` bytes; 1 on success, 0 on clean EOF before any
/// byte, -1 on error or a torn read.
int read_exact(int fd, std::uint8_t* out, std::size_t len) {
  std::size_t got = 0;
  while (got < len) {
    const ssize_t r = ::read(fd, out + got, len - got);
    if (r > 0) {
      got += static_cast<std::size_t>(r);
      continue;
    }
    if (r == 0) return got == 0 ? 0 : -1;  // EOF mid-frame is torn
    if (errno == EINTR) continue;
    return -1;
  }
  return 1;
}

}  // namespace

ReadStatus read_frame(int fd, std::vector<std::uint8_t>& payload,
                      std::uint32_t max_frame_bytes) {
  std::uint8_t prefix[4];
  const int r = read_exact(fd, prefix, 4);
  if (r == 0) return ReadStatus::kClosed;
  if (r < 0) return ReadStatus::kError;
  std::uint32_t len = 0;
  for (int i = 0; i < 4; ++i) len |= std::uint32_t(prefix[i]) << (8 * i);
  // A length beyond the cap means the stream is garbage or hostile;
  // there is no way to resynchronize, so the caller must close.
  if (len == 0 || len > max_frame_bytes) return ReadStatus::kError;
  payload.resize(len);
  return read_exact(fd, payload.data(), len) == 1 ? ReadStatus::kFrame
                                                  : ReadStatus::kError;
}

bool write_frame(int fd, std::span<const std::uint8_t> frame) {
  std::size_t sent = 0;
  while (sent < frame.size()) {
    const ssize_t w = ::write(fd, frame.data() + sent, frame.size() - sent);
    if (w > 0) {
      sent += static_cast<std::size_t>(w);
      continue;
    }
    if (w < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

}  // namespace parbcc::server
