#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "server/protocol.hpp"
#include "server/service.hpp"

/// \file server.hpp
/// The socket half of BCC-as-a-service: a TCP listener framing client
/// byte streams into the protocol.hpp messages and dispatching them
/// against a BccService.
///
/// Threading model: one accept thread plus one thread per connection
/// (the target workload is a handful of long-lived measurement
/// clients, not ten thousand idle sockets, so an event loop would buy
/// nothing).  Query handling is read-path only — each kQuery batch
/// grabs one epoch via service.snapshot() and answers every query in
/// the batch against it, so a client sees internally consistent
/// batches and never waits on a concurrent mutation.  kMutate calls
/// BccService::apply_batch and thus serializes with other writers on
/// the service's mutex.
///
/// Error policy mirrors protocol.hpp: a decodable-but-invalid request
/// (bad op, bad batch, engine rejection) gets an error reply and the
/// connection continues; broken framing (torn frame, oversized length)
/// closes the connection, because the stream cannot be resynchronized.

namespace parbcc::server {

struct ServerOptions {
  /// Listen address.  Loopback by default: the server is a measurement
  /// harness, not a hardened public endpoint.
  std::string bind_address = "127.0.0.1";
  /// 0 picks an ephemeral port; read it back via BccServer::port().
  std::uint16_t port = 0;
  std::uint32_t max_frame_bytes = kMaxFrameBytes;
};

/// Totals across all connections, for bench telemetry.  Counters are
/// relaxed atomics: they order nothing, they only count.
struct ServerStats {
  std::atomic<std::uint64_t> connections_accepted{0};
  std::atomic<std::uint64_t> query_batches{0};
  std::atomic<std::uint64_t> queries{0};
  std::atomic<std::uint64_t> mutate_batches{0};
  std::atomic<std::uint64_t> error_replies{0};
};

class BccServer {
 public:
  /// Bind and listen immediately (throws std::runtime_error on
  /// failure), then serve on background threads until stop().  The
  /// service must outlive the server.
  BccServer(BccService& service, const ServerOptions& options = {});

  /// Joins all threads; equivalent to stop().
  ~BccServer();

  BccServer(const BccServer&) = delete;
  BccServer& operator=(const BccServer&) = delete;

  /// The actually bound port (resolves port 0).
  std::uint16_t port() const { return port_; }

  const ServerStats& stats() const { return stats_; }

  /// Shut the listener down, close every connection, join all
  /// threads.  Idempotent.
  void stop();

 private:
  void accept_loop();
  void serve_connection(int fd);

  BccService& service_;
  ServerOptions opt_;
  ServerStats stats_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;
  std::mutex conn_mu_;                 // guards conn_fds_ / conn_threads_
  std::vector<int> conn_fds_;          // open connection sockets
  std::vector<std::thread> conn_threads_;
};

}  // namespace parbcc::server
