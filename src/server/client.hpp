#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "server/protocol.hpp"

/// \file client.hpp
/// Blocking TCP client for the BCC query server — one request in
/// flight per connection, which is all the bench's closed-loop load
/// generator needs.  Open several clients for concurrency.
///
/// Error replies from the server surface as ProtocolError; transport
/// failures (refused, torn frame, closed mid-reply) as
/// std::runtime_error.

namespace parbcc::server {

class BccClient {
 public:
  /// Connect immediately; throws std::runtime_error on failure.
  BccClient(const std::string& host, std::uint16_t port);
  ~BccClient();

  BccClient(const BccClient&) = delete;
  BccClient& operator=(const BccClient&) = delete;
  BccClient(BccClient&& other) noexcept;
  BccClient& operator=(BccClient&&) = delete;

  /// Answer a batch of queries against one server-side epoch.
  QueryReply query(std::span<const Query> queries);

  /// Apply a mutation batch; returns the epoch it published.
  InfoReply apply_batch(std::span<const Edge> insertions,
                        std::span<const eid> deletions);

  InfoReply info();

 private:
  std::vector<std::uint8_t> round_trip(std::span<const std::uint8_t> frame);

  int fd_ = -1;
};

}  // namespace parbcc::server
