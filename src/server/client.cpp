#include "server/client.hpp"

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

namespace parbcc::server {

BccClient::BccClient(const std::string& host, std::uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    throw std::runtime_error(std::string("client: socket: ") +
                             std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd_);
    throw std::runtime_error("client: bad address " + host);
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const std::string err = std::strerror(errno);
    ::close(fd_);
    throw std::runtime_error("client: connect: " + err);
  }
}

BccClient::~BccClient() {
  if (fd_ >= 0) ::close(fd_);
}

BccClient::BccClient(BccClient&& other) noexcept : fd_(other.fd_) {
  other.fd_ = -1;
}

std::vector<std::uint8_t> BccClient::round_trip(
    std::span<const std::uint8_t> frame) {
  if (!write_frame(fd_, frame)) {
    throw std::runtime_error("client: connection lost while sending");
  }
  std::vector<std::uint8_t> payload;
  switch (read_frame(fd_, payload)) {
    case ReadStatus::kFrame:
      return payload;
    case ReadStatus::kClosed:
      throw std::runtime_error("client: server closed the connection");
    case ReadStatus::kError:
      break;
  }
  throw std::runtime_error("client: torn reply frame");
}

QueryReply BccClient::query(std::span<const Query> queries) {
  return decode_query_reply(round_trip(encode_query_request(queries)));
}

InfoReply BccClient::apply_batch(std::span<const Edge> insertions,
                                 std::span<const eid> deletions) {
  return decode_info_reply(
      round_trip(encode_mutate_request(insertions, deletions)));
}

InfoReply BccClient::info() {
  return decode_info_reply(round_trip(encode_info_request()));
}

}  // namespace parbcc::server
