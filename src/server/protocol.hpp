#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "graph/edge_list.hpp"
#include "util/types.hpp"

/// \file protocol.hpp
/// Wire format of the BCC query server: length-prefixed binary frames
/// over a byte stream (TCP here, but nothing below assumes a socket).
/// No external serialization dependency — the codec is ~200 lines of
/// little-endian puts and bounds-checked gets.
///
/// Frame:  u32 payload length (little-endian), then the payload.
/// Request payload:   u8 MsgType, then per-type body (below).
/// Response payload:  u8 status (0 = ok, 1 = error), then per-type
///                    body on ok, or u32 length + UTF-8 message on
///                    error.
///
///   kQuery    body: u32 count, count x { u8 Op, u32 a, u32 b }
///             reply: u64 snapshot version, u32 count, count x u32
///   kMutate   body: u32 #insertions, each { u32 u, u32 v },
///                   u32 #deletions, each u32 edge id
///             reply: InfoReply (the post-batch epoch)
///   kInfo     body: empty
///             reply: InfoReply
///
/// Every decoder treats the peer as untrusted, mirroring graph/io's
/// header hardening: declared counts are validated against both hard
/// caps and the actual remaining payload bytes before any allocation,
/// every get is bounds-checked, and violations throw ProtocolError
/// (the server answers those with an error frame; only broken framing
/// itself closes the connection).
///
/// Query answers are u32.  Boolean queries answer 0/1; block_id
/// answers a label contiguous in [0, num_blocks); path_articulation
/// answers a count.  kNoVertex (0xffffffff) is the "no answer"
/// sentinel: out-of-range ids (a stale client racing a mutation) or a
/// disconnected pair.  Ids referencing a mutating graph are validated
/// against the epoch that answers, never against the writer's state.

namespace parbcc::server {

class Snapshot;

/// Hard ceiling a frame may declare; servers can lower it per-socket.
inline constexpr std::uint32_t kMaxFrameBytes = 1u << 24;
/// Queries one batch may carry (caps the reply allocation too).
inline constexpr std::uint32_t kMaxQueriesPerBatch = 1u << 20;
/// Insertions plus deletions one mutation batch may carry.
inline constexpr std::uint32_t kMaxMutationEdges = 1u << 22;

/// Malformed bytes from the peer (or an error reply, client side).
class ProtocolError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

enum class MsgType : std::uint8_t {
  kQuery = 1,
  kMutate = 2,
  kInfo = 3,
};

enum class Op : std::uint8_t {
  kSameBlock = 1,         // a, b: vertices -> 0/1
  kIsCut = 2,             // a: vertex -> 0/1
  kBlockId = 3,           // a: edge id -> label | kNoVertex
  kPathArticulation = 4,  // a, b: vertices -> count | kNoVertex
  kSameTwoEdge = 5,       // a, b: vertices -> 0/1
};

struct Query {
  Op op = Op::kSameBlock;
  std::uint32_t a = 0;
  std::uint32_t b = 0;
};

struct MutateRequest {
  std::vector<Edge> insertions;
  std::vector<eid> deletions;
};

/// Epoch summary answered to kInfo and kMutate.
struct InfoReply {
  std::uint64_t version = 0;
  std::uint32_t n = 0;
  std::uint32_t m = 0;
  std::uint32_t num_blocks = 0;
  std::uint32_t num_cut_vertices = 0;
  std::uint32_t num_two_edge_components = 0;
};

struct QueryReply {
  std::uint64_t version = 0;
  std::vector<std::uint32_t> results;
};

/// Answer one query against one epoch (shared by the TCP dispatch, the
/// load generator and the test oracles, so they cannot drift).
std::uint32_t evaluate_query(const Snapshot& snap, const Query& q);

// --- Encoders: produce a complete frame, length prefix included. ---

std::vector<std::uint8_t> encode_query_request(std::span<const Query> queries);
std::vector<std::uint8_t> encode_mutate_request(std::span<const Edge> insertions,
                                                std::span<const eid> deletions);
std::vector<std::uint8_t> encode_info_request();

std::vector<std::uint8_t> encode_error_reply(const std::string& message);
std::vector<std::uint8_t> encode_query_reply(
    std::uint64_t version, std::span<const std::uint32_t> results);
std::vector<std::uint8_t> encode_info_reply(const InfoReply& info);

// --- Decoders: take a frame's payload; throw ProtocolError. ---

MsgType decode_request_type(std::span<const std::uint8_t> payload);
std::vector<Query> decode_query_request(std::span<const std::uint8_t> payload);
MutateRequest decode_mutate_request(std::span<const std::uint8_t> payload);

/// Client side: either returns the typed reply or throws ProtocolError
/// carrying the server's error message.
QueryReply decode_query_reply(std::span<const std::uint8_t> payload);
InfoReply decode_info_reply(std::span<const std::uint8_t> payload);

// --- Framed I/O over a file descriptor (EINTR/partial-safe). ---

enum class ReadStatus {
  kFrame,   // payload filled
  kClosed,  // clean EOF at a frame boundary
  kError,   // I/O error, torn frame, or an oversized length prefix
};

/// Read one frame into `payload` (length prefix stripped).
ReadStatus read_frame(int fd, std::vector<std::uint8_t>& payload,
                      std::uint32_t max_frame_bytes = kMaxFrameBytes);

/// Write one complete frame; false on I/O error or closed peer.
bool write_frame(int fd, std::span<const std::uint8_t> frame);

}  // namespace parbcc::server
