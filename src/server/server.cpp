#include "server/server.hpp"

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "server/protocol.hpp"

namespace parbcc::server {

BccServer::BccServer(BccService& service, const ServerOptions& options)
    : service_(service), opt_(options) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw std::runtime_error(std::string("server: socket: ") +
                             std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(opt_.port);
  if (::inet_pton(AF_INET, opt_.bind_address.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    throw std::runtime_error("server: bad bind address " + opt_.bind_address);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const std::string err = std::strerror(errno);
    ::close(listen_fd_);
    throw std::runtime_error("server: bind: " + err);
  }
  if (::listen(listen_fd_, 64) < 0) {
    const std::string err = std::strerror(errno);
    ::close(listen_fd_);
    throw std::runtime_error("server: listen: " + err);
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) <
      0) {
    const std::string err = std::strerror(errno);
    ::close(listen_fd_);
    throw std::runtime_error("server: getsockname: " + err);
  }
  port_ = ntohs(addr.sin_port);

  accept_thread_ = std::thread([this] { accept_loop(); });
}

BccServer::~BccServer() { stop(); }

void BccServer::stop() {
  if (stopping_.exchange(true)) {
    if (accept_thread_.joinable()) accept_thread_.join();
    return;
  }
  // shutdown() wakes the blocked accept(); connection reads see EOF or
  // an error once their sockets are shut down below.
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }

  std::vector<std::thread> workers;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (const int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
    workers.swap(conn_threads_);
  }
  for (std::thread& t : workers) {
    if (t.joinable()) t.join();
  }
  std::lock_guard<std::mutex> lock(conn_mu_);
  for (const int fd : conn_fds_) ::close(fd);
  conn_fds_.clear();
}

void BccServer::accept_loop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listener shut down (or unrecoverable)
    }
    if (stopping_.load(std::memory_order_relaxed)) {
      ::close(fd);
      break;
    }
    stats_.connections_accepted.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(conn_mu_);
    conn_fds_.push_back(fd);
    conn_threads_.emplace_back([this, fd] { serve_connection(fd); });
  }
}

void BccServer::serve_connection(int fd) {
  std::vector<std::uint8_t> payload;
  while (!stopping_.load(std::memory_order_relaxed)) {
    const ReadStatus status = read_frame(fd, payload, opt_.max_frame_bytes);
    if (status != ReadStatus::kFrame) break;

    std::vector<std::uint8_t> reply;
    try {
      switch (decode_request_type(payload)) {
        case MsgType::kQuery: {
          const std::vector<Query> queries = decode_query_request(payload);
          // One epoch per batch: every query in the batch answers
          // against the same snapshot, and the writer is never waited
          // on.
          const std::shared_ptr<const Snapshot> snap = service_.snapshot();
          std::vector<std::uint32_t> results;
          results.reserve(queries.size());
          for (const Query& q : queries) {
            results.push_back(evaluate_query(*snap, q));
          }
          reply = encode_query_reply(snap->version(), results);
          stats_.query_batches.fetch_add(1, std::memory_order_relaxed);
          stats_.queries.fetch_add(queries.size(),
                                   std::memory_order_relaxed);
          break;
        }
        case MsgType::kMutate: {
          const MutateRequest req = decode_mutate_request(payload);
          service_.apply_batch(req.insertions, req.deletions);
          stats_.mutate_batches.fetch_add(1, std::memory_order_relaxed);
          [[fallthrough]];
        }
        case MsgType::kInfo: {
          const std::shared_ptr<const Snapshot> snap = service_.snapshot();
          InfoReply info;
          info.version = snap->version();
          info.n = snap->n();
          info.m = snap->m();
          info.num_blocks = snap->num_blocks();
          info.num_cut_vertices = snap->num_cut_vertices();
          info.num_two_edge_components = snap->num_two_edge_components();
          reply = encode_info_reply(info);
          break;
        }
      }
    } catch (const ProtocolError& e) {
      reply = encode_error_reply(e.what());
      stats_.error_replies.fetch_add(1, std::memory_order_relaxed);
    } catch (const std::invalid_argument& e) {
      // Engine rejected the mutation batch; nothing was published.
      reply = encode_error_reply(e.what());
      stats_.error_replies.fetch_add(1, std::memory_order_relaxed);
    }
    if (!write_frame(fd, reply)) break;
  }
  ::shutdown(fd, SHUT_RDWR);
}

}  // namespace parbcc::server
