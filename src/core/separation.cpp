#include "core/separation.hpp"

#include <deque>
#include <stdexcept>

namespace parbcc {

SeparationIndex::SeparationIndex(Executor& ex, const EdgeList& g,
                                 const BccResult& result)
    : n_(g.n) {
  const BlockCutTree bct = build_block_cut_tree(ex, g, result);
  num_blocks_ = bct.num_blocks;
  cut_node_of_ = bct.cut_node_of;
  block_of_.assign(g.n, kNoVertex);
  for (vid b = 0; b < bct.num_blocks; ++b) {
    for (const vid v : bct.vertices_of_block(b)) {
      if (cut_node_of_[v] == kNoVertex) block_of_[v] = b;
    }
  }

  // BC-forest adjacency (blocks + cut nodes), plus a virtual super-root
  // so one rooted tree covers every component.
  const vid num_nodes = bct.num_blocks + bct.num_cut_nodes;
  const vid virtual_root = num_nodes;
  std::vector<std::vector<vid>> adj(num_nodes);
  for (const Edge& e : bct.edges) {
    adj[e.u].push_back(e.v);
    adj[e.v].push_back(e.u);
  }

  tree_.root = virtual_root;
  tree_.parent.assign(num_nodes + 1, kNoVertex);
  tree_.parent_edge.assign(num_nodes + 1, kNoEdge);
  tree_.parent[virtual_root] = virtual_root;
  component_.assign(num_nodes + 1, kNoVertex);
  vid comp = 0;
  for (vid r = 0; r < num_nodes; ++r) {
    if (tree_.parent[r] != kNoVertex) continue;
    tree_.parent[r] = virtual_root;
    component_[r] = comp;
    std::deque<vid> queue{r};
    while (!queue.empty()) {
      const vid x = queue.front();
      queue.pop_front();
      for (const vid y : adj[x]) {
        if (tree_.parent[y] == kNoVertex) {
          tree_.parent[y] = x;
          component_[y] = comp;
          queue.push_back(y);
        }
      }
    }
    ++comp;
  }

  const ChildrenCsr children = build_children(ex, tree_.parent, virtual_root);
  const LevelStructure levels = build_levels(ex, children, virtual_root);
  preorder_and_size(ex, children, levels, virtual_root, tree_.pre,
                    tree_.sub);
  depth_ = levels.depth;
  lca_ = LcaIndex(ex, tree_, children, levels);
}

vid SeparationIndex::node_of(vid vertex) const {
  if (cut_node_of_[vertex] != kNoVertex) {
    return num_blocks_ + cut_node_of_[vertex];
  }
  return block_of_[vertex];  // kNoVertex for isolated vertices
}

bool SeparationIndex::connected(vid a, vid b) const {
  if (a == b) return true;
  const vid na = node_of(a);
  const vid nb = node_of(b);
  if (na == kNoVertex || nb == kNoVertex) return false;
  return component_[na] == component_[nb];
}

bool SeparationIndex::on_path(vid x, vid a, vid b) const {
  const vid lab = lca_.lca(a, b);
  // dist(a, x) + dist(x, b) == dist(a, b) iff x lies on the a-b path.
  const vid d_ab = depth_[a] + depth_[b] - 2 * depth_[lab];
  const vid lax = lca_.lca(a, x);
  const vid lxb = lca_.lca(x, b);
  const vid d_ax = depth_[a] + depth_[x] - 2 * depth_[lax];
  const vid d_xb = depth_[x] + depth_[b] - 2 * depth_[lxb];
  return d_ax + d_xb == d_ab;
}

bool SeparationIndex::separates(vid v, vid a, vid b) const {
  if (v >= n_ || a >= n_ || b >= n_ || v == a || v == b) {
    throw std::invalid_argument("separates: need distinct in-range v, a, b");
  }
  if (a == b) return false;
  if (cut_node_of_[v] == kNoVertex) return false;  // not a cut vertex
  if (!connected(a, b)) return false;
  const vid nv = num_blocks_ + cut_node_of_[v];
  const vid na = node_of(a);
  const vid nb = node_of(b);
  // The endpoints' own nodes never separate them: if a is the cut
  // vertex in question we already rejected v == a; and block nodes are
  // never equal to a cut node.
  if (nv == na || nv == nb) {
    // a (or b) IS inside only-through-v structures exactly when its
    // node equals v's cut node — impossible unless a == v.
    return false;
  }
  return on_path(nv, na, nb);
}

}  // namespace parbcc
