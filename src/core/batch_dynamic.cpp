#include "core/batch_dynamic.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "connectivity/shiloach_vishkin.hpp"
#include "core/articulation.hpp"
#include "core/bcc.hpp"
#include "core/incremental.hpp"
#include "graph/subgraph.hpp"
#include "spanning/certificate.hpp"

namespace parbcc {

BatchDynamicBcc::BatchDynamicBcc(BccContext& ctx, EdgeList base,
                                 const BatchDynamicOptions& options)
    : ctx_(ctx), opt_(options), g_(std::move(base)), trace_(options.trace) {
  if (!g_.validate()) {
    throw std::invalid_argument(
        "BatchDynamicBcc: base graph must be loop-free with in-range "
        "endpoints");
  }
  full_solve();
  reset_bookkeeping();
  reseed_components();
  adj_.assign(g_.n, {});
  for (eid e = 0; e < g_.m(); ++e) {
    const Edge& ed = g_.edges[e];
    adj_[ed.u].push_back({ed.v, e});
    adj_[ed.v].push_back({ed.u, e});
  }
  touch_mark_.assign(g_.n, 0);
  mark_a_.assign(g_.n, 0);
  mark_b_.assign(g_.n, 0);
  par_a_.assign(g_.n, kNoEdge);
  par_b_.assign(g_.n, kNoEdge);
}

void BatchDynamicBcc::full_solve() {
  BccOptions o;
  o.algorithm = opt_.algorithm;
  o.compute_cut_info = opt_.compute_cut_info;
  result_ = biconnected_components(ctx_, g_, o);
  // A full solve restarts the label space: first-appearance normalized,
  // contiguous in [0, num_components).
  result_.num_components = normalize_labels(result_.edge_component);
}

void BatchDynamicBcc::reset_bookkeeping() {
  next_label_ = result_.num_components;
  bridge_mask_.assign(g_.m(), 0);
  for (const eid b : result_.bridges) bridge_mask_[b] = 1;
}

void BatchDynamicBcc::reseed_components() {
  // The insertion-only tracker, bulk-loaded with the whole standing
  // edge list, hands every vertex an exact component root — deletions
  // haven't happened from its point of view because the list already
  // reflects them.  Construction and every fallback re-solve come
  // through here; the incremental path maintains the ids instead.
  IncrementalBiconnectivity incr(g_.n);
  incr.insert_edges(g_.edges);
  comp_id_.resize(g_.n);
  comp_parent_.resize(g_.n);
  comp_size_.assign(g_.n, 0);
  for (vid v = 0; v < g_.n; ++v) {
    comp_parent_[v] = v;
    comp_id_[v] = incr.component_root(v);
  }
  for (vid v = 0; v < g_.n; ++v) ++comp_size_[comp_id_[v]];
}

vid BatchDynamicBcc::comp_find(vid c) {
  while (comp_parent_[c] != c) {
    comp_parent_[c] = comp_parent_[comp_parent_[c]];
    c = comp_parent_[c];
  }
  return c;
}

void BatchDynamicBcc::comp_join(vid u, vid v) {
  vid a = comp_of(u);
  vid b = comp_of(v);
  if (a == b) return;
  if (comp_size_[a] < comp_size_[b]) std::swap(a, b);
  comp_parent_[b] = a;
  comp_size_[a] += comp_size_[b];
}

bool BatchDynamicBcc::split_check(vid u, vid v) {
  if (++search_epoch_ == 0) {
    std::fill(mark_a_.begin(), mark_a_.end(), 0u);
    std::fill(mark_b_.begin(), mark_b_.end(), 0u);
    search_epoch_ = 1;
  }
  const std::uint32_t cur = search_epoch_;
  std::vector<std::uint32_t>* mark[2] = {&mark_a_, &mark_b_};
  std::vector<vid>* front[2] = {&front_a_, &front_b_};
  std::vector<vid>* next[2] = {&next_a_, &next_b_};
  std::vector<vid>* visits[2] = {&visits_a_, &visits_b_};
  const vid src[2] = {u, v};
  vid explored[2] = {1, 1};
  for (int s = 0; s < 2; ++s) {
    front[s]->clear();
    front[s]->push_back(src[s]);
    visits[s]->clear();
    visits[s]->push_back(src[s]);
    (*mark[s])[src[s]] = cur;
  }

  // Expand the smaller live frontier until contact (still connected) or
  // a side runs dry (that side is the detached component).  A deleted
  // non-bridge edge lies on a cycle, so the meet arrives within that
  // cycle's ball — small for the peripheral blocks churn targets.
  while (true) {
    const bool can0 = !front[0]->empty() && explored[0] <= opt_.search_cap;
    const bool can1 = !front[1]->empty() && explored[1] <= opt_.search_cap;
    int s;
    if (can0 && can1) {
      s = front[0]->size() <= front[1]->size() ? 0 : 1;
    } else if (can0) {
      s = 0;
    } else if (can1) {
      s = 1;
    } else if (!front[0]->empty() && !front[1]->empty()) {
      return false;  // both sides capped: verdict unaffordable
    } else {
      break;
    }
    const int o = 1 - s;
    next[s]->clear();
    for (const vid x : *front[s]) {
      for (const auto& [y, e] : adj_[x]) {
        (void)e;
        if ((*mark[o])[y] == cur) return true;  // connected, no split
        if ((*mark[s])[y] == cur) continue;
        (*mark[s])[y] = cur;
        ++explored[s];
        next[s]->push_back(y);
        visits[s]->push_back(y);
      }
    }
    std::swap(*front[s], *next[s]);
    if (front[s]->empty()) break;  // first exhaust wins
  }

  // The dried side has enumerated the detached component: relabel it
  // under a fresh id appended to the union-find, and move its head
  // count out of the surviving component.
  const int side = front[0]->empty() ? 0 : 1;
  const vid old_root = comp_of(src[side]);
  const vid cnt = static_cast<vid>(visits[side]->size());
  const vid fresh = static_cast<vid>(comp_parent_.size());
  comp_parent_.push_back(fresh);
  comp_size_.push_back(cnt);
  comp_size_[old_root] -= cnt;
  for (const vid x : *visits[side]) comp_id_[x] = fresh;
  return true;
}

BatchDynamicBcc::Probe BatchDynamicBcc::search_pair(
    vid u, vid v, std::vector<std::uint8_t>& label_in_region) {
  const std::vector<vid>& lab = result_.edge_component;
  if (++search_epoch_ == 0) {
    // Epoch wrap: old stamps could alias the fresh epoch, so reset.
    std::fill(mark_a_.begin(), mark_a_.end(), 0u);
    std::fill(mark_b_.begin(), mark_b_.end(), 0u);
    search_epoch_ = 1;
  }
  const std::uint32_t cur = search_epoch_;

  // Side 0 explores from u, side 1 from v.
  std::vector<std::uint32_t>* mark[2] = {&mark_a_, &mark_b_};
  std::vector<eid>* par[2] = {&par_a_, &par_b_};
  std::vector<vid>* front[2] = {&front_a_, &front_b_};
  std::vector<vid>* next[2] = {&next_a_, &next_b_};
  const vid src[2] = {u, v};
  vid explored[2] = {1, 1};
  for (int s = 0; s < 2; ++s) {
    front[s]->clear();
    front[s]->push_back(src[s]);
    (*mark[s])[src[s]] = cur;
    (*par[s])[src[s]] = kNoEdge;
  }

  // Flag the labels of the discovery path from side s's source to x.
  const auto flag_chain = [&](int s, vid x) {
    while ((*par[s])[x] != kNoEdge) {
      const eid e = (*par[s])[x];
      if (!label_in_region[lab[e]]) {
        label_in_region[lab[e]] = 1;
        ++flagged_count_;
      }
      const Edge& ed = g_.edges[e];
      x = ed.u == x ? ed.v : ed.u;
    }
  };

  while (true) {
    // Expand the smaller live frontier; a capped side is frozen but
    // keeps its marks, so the other side can still meet it.
    const bool can0 = !front[0]->empty() && explored[0] <= opt_.search_cap;
    const bool can1 = !front[1]->empty() && explored[1] <= opt_.search_cap;
    int s;
    if (can0 && can1) {
      s = front[0]->size() <= front[1]->size() ? 0 : 1;
    } else if (can0) {
      s = 0;
    } else if (can1) {
      s = 1;
    } else {
      // Both sides capped without contact — or a side ran dry, which
      // the exact component ids rule out (a sweep that exhausts its
      // component visits the other endpoint, a marked vertex, before
      // it dries).  Either way the probe cannot vouch for the region.
      assert(!front[0]->empty() && !front[1]->empty() &&
             "component ids out of sync with the incidence lists");
      return Probe::kUndecided;
    }
    const int o = 1 - s;
    next[s]->clear();
    for (const vid x : *front[s]) {
      for (const auto& [y, e] : adj_[x]) {
        if ((*mark[o])[y] == cur) {
          // Contact: the crossing edge closes a simple u-v path, which
          // visits exactly the block-cut-tree path's blocks (plus at
          // worst the meeting balls' blocks when the two discovery
          // chains overlap — a sound over-flag).
          if (!label_in_region[lab[e]]) {
            label_in_region[lab[e]] = 1;
            ++flagged_count_;
          }
          flag_chain(s, x);
          flag_chain(o, y);
          return Probe::kMeet;
        }
        if ((*mark[s])[y] == cur) continue;
        (*mark[s])[y] = cur;
        (*par[s])[y] = e;
        ++explored[s];
        next[s]->push_back(y);
      }
    }
    std::swap(*front[s], *next[s]);
  }
}

vid BatchDynamicBcc::probe_damage(std::span<const Edge> insertions,
                                  std::span<const eid> deletions,
                                  std::vector<std::uint8_t>& label_in_region) {
  TraceSpan span(trace_, "damage_probe");
  const eid m = g_.m();
  const std::vector<vid>& lab = result_.edge_component;
  force_full_ = false;
  flagged_count_ = 0;

  // A deletion can only split the block that holds the deleted edge.
  label_in_region.assign(next_label_, 0);
  for (const eid e : deletions) {
    if (!label_in_region[lab[e]]) {
      label_in_region[lab[e]] = 1;
      ++flagged_count_;
    }
  }

  if (++epoch_ == 0) {
    std::fill(touch_mark_.begin(), touch_mark_.end(), 0u);
    epoch_ = 1;
  }
  touched_.clear();

  if (!insertions.empty()) {
    // Classify every insertion by the exact component ids: two finds,
    // no search.  A same-component insertion meets in the middle and
    // flags its path's blocks — any simple u-v path crosses exactly
    // the block-cut-tree path between u and v, and the union of
    // per-insertion paths is exactly the set of blocks any combination
    // of added edges can merge (an edge of the block forest is off
    // every added path iff it stays a bridge).  A cross-component
    // insertion merges nothing by itself (the new edge becomes its own
    // bridge block); it feeds the component multigraph below.
    struct CrossEnd {
      vid w, key;
    };
    std::vector<CrossEnd> cross_ends;
    std::unordered_map<vid, vid> uf;  // per-batch, over component ids
    std::unordered_map<vid, std::uint8_t> cyc;
    const auto find = [&](vid c) {
      vid r = c;
      auto it = uf.find(r);
      while (it != uf.end() && it->second != r) {
        r = it->second;
        it = uf.find(r);
      }
      while (c != r) {
        auto next = uf.find(c);
        const vid parent = next->second;
        next->second = r;
        c = parent;
      }
      return r;
    };
    bool any_cycle = false;
    for (const Edge& e : insertions) {
      const vid cu = comp_of(e.u);
      const vid cv = comp_of(e.v);
      if (cu == cv) {
        if (search_pair(e.u, e.v, label_in_region) == Probe::kUndecided) {
          force_full_ = true;
          break;
        }
        continue;
      }
      cross_ends.push_back({e.u, cu});
      cross_ends.push_back({e.v, cv});
      uf.try_emplace(cu, cu);
      uf.try_emplace(cv, cv);
      const vid ru = find(cu);
      const vid rv = find(cv);
      if (ru == rv) {
        cyc[ru] = 1;
        any_cycle = true;
      } else {
        const std::uint8_t c = static_cast<std::uint8_t>(cyc[ru] | cyc[rv]);
        uf[ru] = rv;
        cyc[rv] = c;
      }
    }

    if (any_cycle && !force_full_) {
      // Cross insertions whose multigraph class closed a cycle can
      // merge blocks along the tree paths between each component's
      // endpoints.  Flag, per endpoint group, the paths from one
      // representative to every other member — pairwise paths factor
      // through the representative.  Keys are exact, so same-key
      // members really share a component and every search meets.
      std::unordered_map<vid, std::vector<vid>> groups;
      for (const CrossEnd& ce : cross_ends) {
        if (cyc[find(ce.key)]) groups[ce.key].push_back(ce.w);
      }
      for (auto& [key, members] : groups) {
        std::sort(members.begin(), members.end());
        members.erase(std::unique(members.begin(), members.end()),
                      members.end());
        for (std::size_t i = 1; i < members.size(); ++i) {
          if (search_pair(members[0], members[i], label_in_region) ==
              Probe::kUndecided) {
            force_full_ = true;
            break;
          }
        }
        if (force_full_) break;
      }
    }
  }

  // Damage numerator: distinct vertices incident to a region edge or a
  // batch edge (deleted edges are still present here, so their
  // endpoints count through their flagged label).  The touched list
  // doubles as the cut-info patch set: only these vertices can change
  // articulation status.
  const auto touch = [&](vid v) {
    if (touch_mark_[v] != epoch_) {
      touch_mark_[v] = epoch_;
      touched_.push_back(v);
    }
  };
  for (eid e = 0; e < m; ++e) {
    if (!label_in_region[lab[e]]) continue;
    touch(g_.edges[e].u);
    touch(g_.edges[e].v);
  }
  for (const Edge& e : insertions) {
    touch(e.u);
    touch(e.v);
  }
  return static_cast<vid>(touched_.size());
}

void BatchDynamicBcc::rebuild_edges(
    std::span<const Edge> insertions, std::span<const eid> deletions,
    const std::vector<std::uint8_t>& label_in_region,
    std::vector<eid>& region_ids, bool maintain_components) {
  auto& lab = result_.edge_component;

  // Swap-with-last compaction, ids descending so the hole is always
  // filled by a live edge: O(degree) incidence surgery at the affected
  // endpoints instead of an O(n + m) rebuild.  Degrees are small on
  // the streams this serves; a hub-incident edit pays its hub's list.
  del_scratch_.assign(deletions.begin(), deletions.end());
  std::sort(del_scratch_.begin(), del_scratch_.end(),
            [](eid a, eid b) { return a > b; });
  const auto drop_arc = [&](vid x, eid e) {
    auto& list = adj_[x];
    for (std::size_t i = 0; i < list.size(); ++i) {
      if (list[i].second != e) continue;
      list[i] = list.back();
      list.pop_back();
      return;
    }
    assert(false && "adjacency out of sync with the edge list");
  };
  const auto rewrite_arc = [&](vid x, eid from, eid to) {
    for (auto& entry : adj_[x]) {
      if (entry.second != from) continue;
      entry.second = to;
      return;
    }
    assert(false && "adjacency out of sync with the edge list");
  };
  for (const eid e : del_scratch_) {
    const Edge dead = g_.edges[e];
    drop_arc(dead.u, e);
    drop_arc(dead.v, e);
    const eid last = g_.m() - 1;
    if (e != last) {
      const Edge moved = g_.edges[last];
      g_.edges[e] = moved;
      lab[e] = lab[last];
      bridge_mask_[e] = bridge_mask_[last];
      rewrite_arc(moved.u, last, e);
      rewrite_arc(moved.v, last, e);
    }
    g_.edges.pop_back();
    lab.pop_back();
    bridge_mask_.pop_back();
    // Sequential semantics keep the component ids exact at every step:
    // the split check runs on the incidence lists with this deletion
    // (and every earlier one) applied.  Once a check is undecidable
    // the ids are due for a reseed anyway, so stop paying for them.
    if (maintain_components && !force_full_ && !split_check(dead.u, dead.v)) {
      force_full_ = true;
    }
  }

  // Region membership reads the surviving labels (one sequential sweep
  // of the label array — the only whole-graph pass the splice path
  // keeps, a few hundred microseconds at millions of edges).
  region_ids.clear();
  const eid base = g_.m();
  for (eid e = 0; e < base; ++e) {
    if (label_in_region[lab[e]]) region_ids.push_back(e);
  }
  for (std::size_t i = 0; i < insertions.size(); ++i) {
    const Edge& e = insertions[i];
    const eid id = base + static_cast<eid>(i);
    region_ids.push_back(id);
    g_.edges.push_back(e);
    // Placeholder; insertions are always in the region, so the splice
    // overwrites this before anyone reads it.
    lab.push_back(kNoVertex);
    bridge_mask_.push_back(0);
    adj_[e.u].push_back({e.v, id});
    adj_[e.v].push_back({e.u, id});
    if (maintain_components && !force_full_) comp_join(e.u, e.v);
  }
}

std::vector<vid> BatchDynamicBcc::solve_region(const EdgeList& region) {
  BccOptions o;
  o.algorithm = opt_.algorithm;
  o.compute_cut_info = false;
  // The region is a union of scattered peripheral blocks — hundreds of
  // tiny connected components.  The dispatcher's per-component loop
  // would pay a parallel pipeline's fixed costs (spans, barriers,
  // arena frames) on every few-edge piece, so below a generous cutoff
  // force the sequential driver for the whole region; parallel solves
  // only pay off on regions big enough to flirt with the damage
  // threshold anyway.
  constexpr std::uint64_t kSequentialRegionCutoff = 1u << 16;
  if (static_cast<std::uint64_t>(region.n) + region.m() <
      kSequentialRegionCutoff) {
    o.algorithm = BccAlgorithm::kSequential;
  }

  const double density = region.n == 0
                             ? 0.0
                             : static_cast<double>(region.m()) /
                                   static_cast<double>(region.n);
  if (density <= opt_.certificate_density) {
    return biconnected_components(ctx_, region, o).edge_component;
  }

  // Dense region: solve the k = 2 BFS certificate (Theorem 2 — T u F
  // preserves the whole block structure) and scatter labels onto the
  // omitted edges.  An omitted edge {x, y} closes a cycle with its F1
  // tree path, so it shares a block with the parent tree edge of its
  // deeper endpoint; BFS levels across an edge differ by at most one,
  // so on a level tie either parent edge lies on that cycle.
  SparseCertificate cert =
      sparse_certificate_vertex(ctx_.executor(), region, 2);
  const EdgeList cert_graph = cert.subgraph(region);
  stats_.certificate_edges = cert_graph.m();
  const BccResult cert_result = biconnected_components(ctx_, cert_graph, o);

  std::vector<vid> labels(region.m(), kNoVertex);
  for (std::size_t i = 0; i < cert.edges.size(); ++i) {
    labels[cert.edges[i]] = cert_result.edge_component[i];
  }
  for (eid e = 0; e < region.m(); ++e) {
    if (labels[e] != kNoVertex) continue;
    const vid x = region.edges[e].u;
    const vid y = region.edges[e].v;
    const vid d = cert.f1_level[x] >= cert.f1_level[y] ? x : y;
    // The deeper endpoint is never an F1 root: roots sit at level 0
    // and a neighbor of a root is at level 1 exactly.
    assert(cert.f1_parent_edge[d] != kNoEdge);
    labels[e] = labels[cert.f1_parent_edge[d]];
  }
  return labels;
}

const BccResult& BatchDynamicBcc::apply_batch(
    std::span<const Edge> insertions, std::span<const eid> deletions) {
  TraceSpan span(trace_, "batch_apply");
  const vid n = g_.n;
  const eid m = g_.m();
  for (const Edge& e : insertions) {
    if (e.u >= n || e.v >= n) {
      throw std::invalid_argument("apply_batch: insertion endpoint out of range");
    }
    if (e.u == e.v) {
      throw std::invalid_argument("apply_batch: self-loop insertion");
    }
  }
  if (!deletions.empty()) {
    del_scratch_.assign(deletions.begin(), deletions.end());
    std::sort(del_scratch_.begin(), del_scratch_.end());
    if (del_scratch_.back() >= m) {
      throw std::invalid_argument("apply_batch: deletion id out of range");
    }
    if (std::adjacent_find(del_scratch_.begin(), del_scratch_.end()) !=
        del_scratch_.end()) {
      throw std::invalid_argument("apply_batch: duplicate deletion id");
    }
  }

  stats_ = {};
  ++version_;  // the batch is validated; everything below republishes
  std::vector<std::uint8_t> label_in_region;
  const vid touched = probe_damage(insertions, deletions, label_in_region);
  stats_.touched_vertices = touched;
  if (trace_) {
    trace_->counter("batch_touched_vertices", static_cast<double>(touched));
  }
  bool fall_back =
      force_full_ || static_cast<double>(touched) >
                         opt_.damage_threshold * static_cast<double>(n);

  std::vector<eid> region_ids;
  rebuild_edges(insertions, deletions, label_in_region, region_ids,
                /*maintain_components=*/!fall_back);
  // A split check may have been undecidable within the search cap.
  if (force_full_) fall_back = true;
  stats_.region_edges = static_cast<eid>(region_ids.size());
  if (trace_) trace_->counter("batch_fallbacks", fall_back ? 1.0 : 0.0);
  // g_.edges was rebuilt in place, so the context's conversion and
  // strip caches keyed on (&g_, n, m) are stale.
  ctx_.invalidate();

  if (fall_back) {
    stats_.fell_back = true;
    ++fallbacks_;
    full_solve();
    reset_bookkeeping();
    reseed_components();
    return result_;
  }

  {
    TraceSpan solve_span(trace_, "certificate_solve");
    vid region_blocks = 0;
    if (!region_ids.empty()) {
      const Subgraph sub = extract_edges(g_, region_ids);
      const std::vector<vid> sub_labels = solve_region(sub.graph);
      // Splice: the region's blocks take fresh label values past every
      // standing one, so unchanged blocks keep their labels and the
      // published array stays partition-equal to a from-scratch solve
      // of g_ (label values are never canonical across engines, see
      // bcc_result.hpp; the partition is).  Every solve_region label
      // appears on some region edge, so the count is its max + 1.
      for (const vid l : sub_labels) {
        region_blocks = std::max(region_blocks, l + 1);
      }
      sub_count_.assign(region_blocks, 0);
      for (const vid l : sub_labels) ++sub_count_[l];
      const vid offset = next_label_;
      for (std::size_t i = 0; i < region_ids.size(); ++i) {
        result_.edge_component[region_ids[i]] = offset + sub_labels[i];
        bridge_mask_[region_ids[i]] =
            static_cast<std::uint8_t>(sub_count_[sub_labels[i]] == 1);
      }
      next_label_ += region_blocks;
      // Drop cache entries keyed on the batch's temporary subgraphs.
      ctx_.invalidate();
    }
    // The flagged blocks vanished with the region (every edge of a
    // flagged label was a region member or deleted); the region solve's
    // blocks replaced them.
    result_.num_components =
        result_.num_components - flagged_count_ + region_blocks;
  }
  patch_cut_info();

  // Opportunistic renormalization: splices only grow the label space,
  // so when the ids outrun ~2(n + m), pay one first-appearance pass to
  // keep per-label scratch (here and in callers sizing by
  // label_bound()) proportional to the graph.  Amortized O(1) per
  // spliced edge.  The threshold is 64-bit (renormalize_label_threshold)
  // — vid arithmetic wraps past n + m = 2^31.  Renormalization is
  // produce-then-swap: normalize_labels rewrites every element, and
  // doing that inside the standing array would tear any published
  // snapshot or caller-held span mid-pass into a mix of old and new
  // label values (an inconsistent partition, not just non-canonical
  // ids).  Writing into a fresh buffer and swapping makes the visible
  // mutation a single pointer-level replacement.
  const std::uint64_t renorm_limit =
      opt_.renorm_label_limit != 0
          ? opt_.renorm_label_limit
          : renormalize_label_threshold(g_.n, g_.m());
  if (static_cast<std::uint64_t>(next_label_) > renorm_limit) {
    std::vector<vid> fresh(result_.edge_component);
    result_.num_components = normalize_labels(fresh);
    result_.edge_component = std::move(fresh);
    next_label_ = result_.num_components;
  }

  // Splits only ever append component ids; compact the id space back
  // to [0, #components) once it outgrows ~2n (amortized O(1) per
  // split, and never on the fallback path, which reseeds instead).
  if (comp_parent_.size() > 2 * static_cast<std::size_t>(g_.n) + 1024) {
    std::unordered_map<vid, vid> dense(g_.n * 2 + 1);
    vid count = 0;
    for (vid v = 0; v < g_.n; ++v) {
      const auto [it, inserted] = dense.try_emplace(comp_of(v), count);
      if (inserted) ++count;
      comp_id_[v] = it->second;
    }
    comp_parent_.resize(count);
    for (vid c = 0; c < count; ++c) comp_parent_[c] = c;
    comp_size_.assign(count, 0);
    for (vid v = 0; v < g_.n; ++v) ++comp_size_[comp_id_[v]];
  }
  return result_;
}

void BatchDynamicBcc::patch_cut_info() {
  if (!opt_.compute_cut_info) {
    result_.is_articulation.clear();
    result_.bridges.clear();
    return;
  }
  // Articulation status (incident to >= 2 distinct labels) can change
  // only where an incident label changed — exactly the touched set.
  const std::vector<vid>& lab = result_.edge_component;
  for (const vid v : touched_) {
    vid first = kNoVertex;
    std::uint8_t art = 0;
    for (const auto& [nbr, e] : adj_[v]) {
      (void)nbr;
      const vid l = lab[e];
      if (first == kNoVertex) {
        first = l;
      } else if (l != first) {
        art = 1;
        break;
      }
    }
    result_.is_articulation[v] = art;
  }
  // Ascending bridge ids, re-emitted from the patched mask (ids move
  // under swap compaction, so patching the sorted list in place would
  // cost more than this sequential sweep).
  result_.bridges.clear();
  for (eid e = 0; e < g_.m(); ++e) {
    if (bridge_mask_[e]) result_.bridges.push_back(e);
  }
}

}  // namespace parbcc
