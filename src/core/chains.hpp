#pragma once

#include <vector>

#include "graph/edge_list.hpp"
#include "util/types.hpp"

/// \file chains.hpp
/// Chain decomposition (Schmidt 2013, "A simple test on 2-vertex- and
/// 2-edge-connectivity") — a certifying, DFS-based characterisation of
/// bridges and cut vertices that shares no code or ideas with either
/// the Tarjan-Vishkin machinery or the Hopcroft-Tarjan low-link
/// computation.  The library uses it as a third independent oracle in
/// tests; it is also a useful lightweight cut-query when the full
/// block partition is not needed.
///
/// Construction: root a DFS tree; every back edge (u, w) (u the
/// ancestor), taken in DFS order of u, starts a chain consisting of the
/// back edge plus the tree path from w up to the first already-visited
/// vertex.  Then (for simple graphs):
///   - bridges = tree edges on no chain;
///   - a vertex is a cut vertex iff it is the start of a cycle chain
///     other than its component's first chain, or an endpoint of a
///     bridge with degree >= 2.

namespace parbcc {

struct ChainDecomposition {
  vid num_chains = 0;
  /// Chain id per edge; kNoVertex for edges on no chain (bridges).
  std::vector<vid> chain_of_edge;
  /// Per chain: does it close a cycle (start == end)?
  std::vector<std::uint8_t> chain_is_cycle;
  /// Bridge edge ids, ascending.
  std::vector<eid> bridges;
  /// Cut-vertex flags per Schmidt's criteria.
  std::vector<std::uint8_t> is_articulation;
};

/// Requires a simple graph (no self-loops or parallel edges — the
/// cycle-chain criterion misreads two-edge multigraph cycles).
/// Disconnected inputs are handled per component.
ChainDecomposition chain_decomposition(const EdgeList& g);

}  // namespace parbcc
