#include <stdexcept>

#include "connectivity/shiloach_vishkin.hpp"
#include "core/drivers.hpp"
#include "core/tv_core.hpp"
#include "eulertour/euler_tour.hpp"
#include "spanning/sv_tree.hpp"
#include "util/timer.hpp"

namespace parbcc {

BccResult tv_smp_bcc(Executor& ex, Workspace& ws, const EdgeList& g,
                     const BccOptions& opt) {
  BccResult result;
  Timer total;
  Timer step;

  // Step 1 (Spanning-tree): Shiloach-Vishkin graft-and-shortcut.
  const SpanningForest forest =
      sv_spanning_forest(ex, ws, g.n, g.edges, opt.sv_mode);
  if (forest.num_components != 1) {
    throw std::invalid_argument("tv_smp_bcc: graph must be connected");
  }
  result.times.spanning_tree = step.lap();

  // Steps 2+3 (Euler-tour, Root-tree): circuit by arc sorting, rooting
  // by list ranking.
  EulerTourTimes euler_times;
  const RootedSpanningTree tree =
      root_tree_via_euler_tour(ex, ws, g.n, g.edges, forest.tree_edges,
                               opt.root, opt.ranker, opt.arc_sort,
                               &euler_times);
  result.times.euler_tour = euler_times.circuit;
  result.times.root_tree = euler_times.rooting;
  step.reset();

  // Steps 4-6 with the sparse-table low/high back-end.
  const std::vector<vid> owner = make_tree_owner(ex, g.edges.size(), tree);
  TvCoreTimes core_times;
  result.edge_component =
      tv_label_edges(ex, ws, g.edges, tree, owner, LowHighMethod::kRmq,
                     nullptr, nullptr, opt.sv_mode, &core_times);
  result.times.low_high = core_times.low_high;
  result.times.label_edge = core_times.label_edge;
  result.times.connected_components = core_times.connected_components;

  result.num_components = normalize_labels(result.edge_component);
  result.times.total = total.seconds();
  return result;
}

BccResult tv_smp_bcc(Executor& ex, const EdgeList& g, const BccOptions& opt) {
  Workspace ws;
  return tv_smp_bcc(ex, ws, g, opt);
}

}  // namespace parbcc
