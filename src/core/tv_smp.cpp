#include <stdexcept>

#include "connectivity/shiloach_vishkin.hpp"
#include "core/drivers.hpp"
#include "core/tv_core.hpp"
#include "eulertour/euler_tour.hpp"
#include "spanning/sv_tree.hpp"
#include "util/timer.hpp"
#include "util/trace.hpp"

namespace parbcc {

BccResult tv_smp_bcc(Executor& ex, Workspace& ws, const EdgeList& g,
                     const BccOptions& opt) {
  BccResult result;
  Trace local_trace(ex.threads());
  Trace& tr = opt.trace != nullptr ? *opt.trace : local_trace;
  const Trace::Mark mark = tr.mark();
  Timer total;

  // Step 1 (Spanning-tree): Shiloach-Vishkin graft-and-shortcut.
  SpanningForest forest;
  {
    TraceSpan span(tr, steps::kSpanningTree);
    forest = sv_spanning_forest(ex, ws, g.n, g.edges, opt.sv_mode);
    tr.counter("sv_rounds", static_cast<double>(forest.rounds));
  }
  if (forest.num_components != 1) {
    throw std::invalid_argument("tv_smp_bcc: graph must be connected");
  }

  // Steps 2+3 (Euler-tour, Root-tree): circuit by arc sorting, rooting
  // by list ranking.  The pipeline opens its own step spans.
  const RootedSpanningTree tree = root_tree_via_euler_tour(
      ex, ws, g.n, g.edges, forest.tree_edges, opt.root, opt.ranker,
      opt.arc_sort, nullptr, &tr);

  // Steps 4-6 with the sparse-table low/high back-end.
  std::vector<vid> owner;
  {
    TraceSpan span(tr, "tree_owner");
    owner = make_tree_owner(ex, g.edges.size(), tree);
  }
  result.edge_component =
      tv_label_edges(ex, ws, g.edges, tree, owner, LowHighMethod::kRmq,
                     nullptr, nullptr, opt.sv_mode, opt.aux_mode, nullptr,
                     &tr);

  {
    TraceSpan span(tr, "normalize");
    result.num_components = normalize_labels(result.edge_component);
  }
  result.trace = tr.report_since(mark);
  result.times = derive_step_times(result.trace, total.seconds());
  return result;
}

BccResult tv_smp_bcc(Executor& ex, const EdgeList& g, const BccOptions& opt) {
  Workspace ws;
  return tv_smp_bcc(ex, ws, g, opt);
}

}  // namespace parbcc
