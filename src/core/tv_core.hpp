#pragma once

#include <span>
#include <vector>

#include "connectivity/shiloach_vishkin.hpp"
#include "core/aux_graph.hpp"
#include "core/lowhigh.hpp"
#include "eulertour/tree_computations.hpp"
#include "graph/edge_list.hpp"
#include "util/thread_pool.hpp"
#include "util/workspace.hpp"

/// \file tv_core.hpp
/// The back half of Tarjan-Vishkin shared by TV-SMP, TV-opt and
/// TV-filter: Low-high, Label-edge (Alg. 1) and Connected-components of
/// the auxiliary graph, parameterized on the low/high aggregation
/// back-end.  The front half (how the rooted spanning tree is obtained)
/// is what distinguishes the three drivers.

namespace parbcc {

enum class LowHighMethod {
  kRmq,        // TV-SMP: preorder-interval queries on a sparse table
  kLevelSweep  // TV-opt / TV-filter: bottom-up level aggregation
};

struct TvCoreTimes {
  double low_high = 0;
  /// In kFused mode the hook sweep (Alg. 1's work) is booked here and
  /// the label-read sweep under connected_components, mirroring the
  /// trace spans the fused kernel opens.
  double label_edge = 0;
  double connected_components = 0;
};

/// tree_owner[e] = child endpoint of tree edge e (kNoVertex for
/// nontree edges), derived from the tree's parent_edge column.
std::vector<vid> make_tree_owner(Executor& ex, std::size_t num_edges,
                                 const RootedSpanningTree& tree);

/// TV steps 4-6 over `edges` with spanning tree `tree`.
/// `children`/`levels` are required for kLevelSweep and ignored for
/// kRmq.  Returns one label per edge; labels are auxiliary-graph root
/// ids in [0, n + #nontree) — canonical as a partition, not as values.
/// `aux_mode` picks the Alg. 1 route: kFused (default) hooks aux
/// pairs into a concurrent union-find as they are generated and reads
/// the labels back in one sweep (`sv_mode` is then unused); with
/// kMaterialized the staged/compacted G' is built and solved with
/// Shiloach-Vishkin under `sv_mode`.  Both routes produce identical
/// labels (the component-minimum aux id), not merely the same
/// partition.  All intermediate arrays (low/high scatter, aux staging
/// or union-find parents, aux component labels) are Workspace
/// scratch.  With a `trace`, the three steps record themselves as the
/// "low_high" / "label_edge" / "connected_components" spans (plus
/// sv_rounds or aux_hooks/aux_find_depth counters), so the caller's
/// StepTimes derive without a stopwatch; `times` remains for callers
/// that want the raw splits (the ablation bench).
std::vector<vid> tv_label_edges(Executor& ex, Workspace& ws,
                                std::span<const Edge> edges,
                                const RootedSpanningTree& tree,
                                std::span<const vid> tree_owner,
                                LowHighMethod method,
                                const ChildrenCsr* children,
                                const LevelStructure* levels,
                                SvMode sv_mode = SvMode::kAuto,
                                AuxMode aux_mode = AuxMode::kFused,
                                TvCoreTimes* times = nullptr,
                                Trace* trace = nullptr);
std::vector<vid> tv_label_edges(Executor& ex, std::span<const Edge> edges,
                                const RootedSpanningTree& tree,
                                std::span<const vid> tree_owner,
                                LowHighMethod method,
                                const ChildrenCsr* children,
                                const LevelStructure* levels,
                                SvMode sv_mode = SvMode::kAuto,
                                AuxMode aux_mode = AuxMode::kFused,
                                TvCoreTimes* times = nullptr);

}  // namespace parbcc
