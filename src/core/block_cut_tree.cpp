#include "core/block_cut_tree.hpp"

#include <algorithm>
#include <stdexcept>

#include "sort/radix_sort.hpp"

namespace parbcc {

BlockCutTree build_block_cut_tree(Executor& ex, const EdgeList& g,
                                  const BccResult& result) {
  if (result.is_articulation.size() != g.n) {
    throw std::invalid_argument(
        "build_block_cut_tree: result lacks cut info (compute_cut_info)");
  }
  return build_block_cut_tree(ex, g, result.edge_component,
                              result.num_components, result.is_articulation);
}

BlockCutTree build_block_cut_tree(Executor& ex, const EdgeList& g,
                                  std::span<const vid> edge_component,
                                  vid num_components,
                                  std::span<const std::uint8_t> is_articulation) {
  if (edge_component.size() != g.edges.size() ||
      is_articulation.size() != g.n) {
    throw std::invalid_argument(
        "build_block_cut_tree: arrays do not match the graph");
  }
  BlockCutTree tree;
  tree.num_blocks = num_components;
  tree.cut_node_of.assign(g.n, kNoVertex);
  for (vid v = 0; v < g.n; ++v) {
    if (is_articulation[v]) {
      tree.cut_node_of[v] = static_cast<vid>(tree.cut_vertex.size());
      tree.cut_vertex.push_back(v);
    }
  }
  tree.num_cut_nodes = static_cast<vid>(tree.cut_vertex.size());

  // Distinct (block, vertex) incidences: sort the 2m endpoint pairs and
  // deduplicate.  Keys pack (block, vertex), so runs group by block in
  // ascending vertex order.
  std::vector<std::uint64_t> keys(2 * static_cast<std::size_t>(g.m()));
  ex.parallel_for(g.m(), [&](std::size_t e) {
    const std::uint64_t block = edge_component[e];
    keys[2 * e] = (block << 32) | g.edges[e].u;
    keys[2 * e + 1] = (block << 32) | g.edges[e].v;
  });
  radix_sort_u64(ex, keys);
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());

  tree.block_offsets.assign(tree.num_blocks + 1, 0);
  tree.block_vertices.resize(keys.size());
  tree.cut_degree_.assign(tree.num_blocks, 0);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    const vid block = static_cast<vid>(keys[i] >> 32);
    const vid v = static_cast<vid>(keys[i] & 0xffffffffu);
    ++tree.block_offsets[block + 1];
    tree.block_vertices[i] = v;
    if (tree.cut_node_of[v] != kNoVertex) {
      tree.edges.push_back(
          {block, tree.num_blocks + tree.cut_node_of[v]});
      ++tree.cut_degree_[block];
    }
  }
  for (vid b = 0; b < tree.num_blocks; ++b) {
    tree.block_offsets[b + 1] += tree.block_offsets[b];
  }
  return tree;
}

}  // namespace parbcc
