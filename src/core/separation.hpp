#pragma once

#include <vector>

#include "core/block_cut_tree.hpp"
#include "eulertour/tree_computations.hpp"
#include "graph/edge_list.hpp"
#include "rmq/lca.hpp"
#include "util/thread_pool.hpp"

/// \file separation.hpp
/// Constant-time separation queries on top of a biconnectivity result —
/// the operational form of the paper's fault-tolerance motivation:
/// "does the failure of router v disconnect a from b?"
///
/// Removing v disconnects a from b exactly when v is a cut vertex whose
/// block-cut-tree node lies on the tree path between a's and b's nodes.
/// The index roots the block-cut forest (plus one virtual super-root,
/// so a single Euler-tour LCA structure covers all components) and
/// answers each query with two LCA probes.

namespace parbcc {

class SeparationIndex {
 public:
  /// Build from a finished BCC run (cut info required).
  SeparationIndex(Executor& ex, const EdgeList& g, const BccResult& result);

  /// True iff removing `v` leaves no a-b path.  Requires a != v,
  /// b != v; a == b returns false.  Vertices in different components
  /// (already disconnected) return false.
  bool separates(vid v, vid a, vid b) const;

  /// True iff a and b are in one connected component (isolated
  /// vertices are their own components).
  bool connected(vid a, vid b) const;

 private:
  vid node_of(vid vertex) const;  // BC-forest node of a vertex
  bool on_path(vid x, vid a, vid b) const;

  vid n_ = 0;
  vid num_blocks_ = 0;
  std::vector<vid> cut_node_of_;    // per vertex, kNoVertex if not cut
  std::vector<vid> block_of_;       // a block per non-cut vertex
  std::vector<vid> component_;      // BC-forest component per node
  std::vector<vid> depth_;          // depth in the rooted forest
  RootedSpanningTree tree_;         // over BC nodes + virtual root
  LcaIndex lca_;
};

}  // namespace parbcc
