#include <stdexcept>

#include "connectivity/shiloach_vishkin.hpp"
#include "core/drivers.hpp"
#include "core/tv_core.hpp"
#include "graph/csr.hpp"
#include "spanning/traversal_tree.hpp"
#include "util/timer.hpp"
#include "util/trace.hpp"

namespace parbcc {

BccResult tv_opt_bcc(Executor& ex, const EdgeList& g, const BccOptions& opt) {
  Workspace ws;
  // Representation conversion: the work-stealing traversal needs an
  // adjacency structure; TV-SMP works on the raw edge list.
  const PreparedGraph pg(ex, ws, g);
  return tv_opt_bcc(ex, ws, pg, opt);
}

BccResult tv_opt_bcc(Executor& ex, const PreparedGraph& pg,
                     const BccOptions& opt) {
  Workspace ws;
  return tv_opt_bcc(ex, ws, pg, opt);
}

BccResult tv_opt_bcc(Executor& ex, Workspace& ws, const PreparedGraph& pg,
                     const BccOptions& opt) {
  const EdgeList& g = pg.graph();
  const Csr& csr = pg.csr();
  BccResult result;
  Trace local_trace(ex.threads());
  Trace& tr = opt.trace != nullptr ? *opt.trace : local_trace;
  const Trace::Mark mark = tr.mark();
  Timer total;
  // The conversion happened before this driver ran (possibly amortized
  // by a cache); book it as an externally measured charge.
  if (pg.conversion_seconds() > 0) {
    tr.charge(steps::kConversion, pg.conversion_seconds());
  }

  // Merged Spanning-tree + Root-tree: the traversal sets parents
  // directly.
  TraversalTree traversal;
  {
    TraceSpan span(tr, steps::kSpanningTree);
    traversal = traversal_spanning_tree(ex, csr, opt.root);
  }
  if (traversal.reached != g.n) {
    throw std::invalid_argument("tv_opt_bcc: graph must be connected");
  }

  // Cache-friendly substitute for the Euler tour: child lists + level
  // buckets...
  RootedSpanningTree tree;
  ChildrenCsr children;
  LevelStructure levels;
  {
    TraceSpan span(tr, steps::kEulerTour);
    tree.root = opt.root;
    tree.parent = std::move(traversal.parent);
    tree.parent_edge = std::move(traversal.parent_edge);
    children = build_children(ex, ws, tree.parent, tree.root, &tr);
    levels = build_levels(ex, children, tree.root, &tr);
  }

  // ...and prefix-sum tree computations instead of list ranking.
  {
    TraceSpan span(tr, steps::kRootTree);
    preorder_and_size(ex, children, levels, tree.root, tree.pre, tree.sub,
                      &tr);
  }

  std::vector<vid> owner;
  {
    TraceSpan span(tr, "tree_owner");
    owner = make_tree_owner(ex, g.edges.size(), tree);
  }
  result.edge_component =
      tv_label_edges(ex, ws, g.edges, tree, owner, LowHighMethod::kLevelSweep,
                     &children, &levels, opt.sv_mode, opt.aux_mode, nullptr,
                     &tr);

  {
    TraceSpan span(tr, "normalize");
    result.num_components = normalize_labels(result.edge_component);
  }
  result.trace = tr.report_since(mark);
  result.times = derive_step_times(result.trace,
                                   total.seconds() + pg.conversion_seconds());
  return result;
}

}  // namespace parbcc
