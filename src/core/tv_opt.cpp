#include <stdexcept>

#include "connectivity/shiloach_vishkin.hpp"
#include "core/drivers.hpp"
#include "core/tv_core.hpp"
#include "graph/csr.hpp"
#include "spanning/traversal_tree.hpp"
#include "util/timer.hpp"

namespace parbcc {

BccResult tv_opt_bcc(Executor& ex, const EdgeList& g, const BccOptions& opt) {
  Workspace ws;
  // Representation conversion: the work-stealing traversal needs an
  // adjacency structure; TV-SMP works on the raw edge list.
  const PreparedGraph pg(ex, ws, g);
  return tv_opt_bcc(ex, ws, pg, opt);
}

BccResult tv_opt_bcc(Executor& ex, const PreparedGraph& pg,
                     const BccOptions& opt) {
  Workspace ws;
  return tv_opt_bcc(ex, ws, pg, opt);
}

BccResult tv_opt_bcc(Executor& ex, Workspace& ws, const PreparedGraph& pg,
                     const BccOptions& opt) {
  const EdgeList& g = pg.graph();
  const Csr& csr = pg.csr();
  BccResult result;
  result.times.conversion = pg.conversion_seconds();
  Timer total;
  Timer step;

  // Merged Spanning-tree + Root-tree: the traversal sets parents
  // directly.
  const TraversalTree traversal = traversal_spanning_tree(ex, csr, opt.root);
  if (traversal.reached != g.n) {
    throw std::invalid_argument("tv_opt_bcc: graph must be connected");
  }
  result.times.spanning_tree = step.lap();

  // Cache-friendly substitute for the Euler tour: child lists + level
  // buckets...
  RootedSpanningTree tree;
  tree.root = opt.root;
  tree.parent = traversal.parent;
  tree.parent_edge = traversal.parent_edge;
  const ChildrenCsr children = build_children(ex, ws, tree.parent, tree.root);
  const LevelStructure levels = build_levels(ex, children, tree.root);
  result.times.euler_tour = step.lap();

  // ...and prefix-sum tree computations instead of list ranking.
  preorder_and_size(ex, children, levels, tree.root, tree.pre, tree.sub);
  result.times.root_tree = step.lap();

  const std::vector<vid> owner = make_tree_owner(ex, g.edges.size(), tree);
  TvCoreTimes core_times;
  result.edge_component =
      tv_label_edges(ex, ws, g.edges, tree, owner, LowHighMethod::kLevelSweep,
                     &children, &levels, opt.sv_mode, &core_times);
  result.times.low_high = core_times.low_high;
  result.times.label_edge = core_times.label_edge;
  result.times.connected_components = core_times.connected_components;

  result.num_components = normalize_labels(result.edge_component);
  result.times.total = total.seconds() + result.times.conversion;
  return result;
}

}  // namespace parbcc
