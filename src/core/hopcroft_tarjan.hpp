#pragma once

#include "core/bcc_result.hpp"
#include "graph/csr.hpp"
#include "graph/edge_list.hpp"
#include "util/thread_pool.hpp"
#include "util/workspace.hpp"

/// \file hopcroft_tarjan.hpp
/// Sequential biconnected components by depth-first search with an
/// auxiliary edge stack (Tarjan 1972) — the linear-time baseline every
/// speedup in the paper is measured against.
///
/// Iterative (explicit DFS stack), so million-vertex chains do not
/// overflow the call stack.  Handles disconnected inputs and parallel
/// edges; self-loops are rejected upstream by the public API.

namespace parbcc {

/// Label the edges of `g` with biconnected component ids.
/// `csr` must be the adjacency of `g`.  Fills edge_component,
/// num_components and (optionally) cut info; times.total only.
/// The DFS itself is sequential; `ex`/`ws` only serve the cut-info
/// annotation, so callers that already hold an executor (the
/// dispatcher, benchmarks) don't pay for a throwaway pool.
/// `trace`, when given, receives a "dfs" span (and "cut_info" when
/// annotating) — the sequential baseline's slice of a trace artifact.
BccResult hopcroft_tarjan_bcc(Executor& ex, Workspace& ws, const EdgeList& g,
                              const Csr& csr, bool compute_cut_info = true,
                              Trace* trace = nullptr);
BccResult hopcroft_tarjan_bcc(Executor& ex, const EdgeList& g, const Csr& csr,
                              bool compute_cut_info = true);
BccResult hopcroft_tarjan_bcc(const EdgeList& g, const Csr& csr,
                              bool compute_cut_info = true);

}  // namespace parbcc
