#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "graph/edge_list.hpp"
#include "util/types.hpp"

/// \file incremental.hpp
/// Insertion-only (incremental) biconnectivity — a natural extension of
/// the paper's fault-tolerance application: as redundant links are
/// added to a network one at a time, keep the block structure, cut
/// vertices and bridges current without recomputing from scratch
/// (Westbrook-Tarjan style block-cut forest maintenance).
///
/// Representation: the block-cut forest as parent pointers over an
/// alternating tree of vertex nodes and block nodes, plus a union-find
/// over block ids so path contractions are O(1) merges.  An edge
/// insertion either
///   - joins two components: the smaller tree is re-rooted and hung off
///     the new bridge block (amortized O(log) re-rootings by size), or
///   - closes a cycle: the tree path between the endpoints is located
///     by an alternating marked walk and all blocks on it merge into
///     one.
/// Contractions permanently shrink the forest, so total insertion work
/// is near-linear for typical sequences; a single insertion can cost
/// O(tree depth) in the worst case.  Queries are O(alpha).

namespace parbcc {

class IncrementalBiconnectivity {
 public:
  explicit IncrementalBiconnectivity(vid n);

  /// Insert undirected edge {u, v}.  Self-loops are ignored.  Parallel
  /// edges are honoured (a doubled bridge stops being a bridge).
  void insert_edge(vid u, vid v);

  /// Bulk insertion: reserves the block arrays and the LCA-walk scratch
  /// map for the whole batch up front, then inserts in order.  The
  /// batch-dynamic engine's connectivity tracking feeds thousands of
  /// edges at once; without the reservation every few insertions pay a
  /// vector reallocation or a mark_ rehash, which dominates the cheap
  /// per-edge forest work on large batches.
  void insert_edges(std::span<const Edge> batch);

  bool same_component(vid u, vid v);
  /// Canonical representative of v's connected component.  The
  /// batch-dynamic engine seeds its exact component labeling from
  /// these roots after bulk-loading a tracker with the standing edge
  /// list (at construction and after every fallback re-solve).
  vid component_root(vid v) { return comp_find(v); }
  /// Do u and v lie in a common biconnected component?  (True for u ==
  /// v iff v is in any block, i.e. has an incident edge.)
  bool same_block(vid u, vid v);
  bool is_cut_vertex(vid v) const { return blocks_of_[v] >= 2; }

  /// Number of blocks (= biconnected components of the edge set).
  vid num_blocks() const { return num_blocks_; }
  /// Blocks that consist of a single edge.
  vid num_bridges() const { return num_bridges_; }
  vid num_components() const { return num_components_; }
  vid num_cut_vertices() const;

 private:
  using node = std::uint32_t;  // vertex nodes [0, n); block nodes >= n
  static constexpr node kNoNode = ~node{0};

  bool is_block(node x) const { return x >= n_; }
  node resolve(node x);           // block ids resolve through the UF
  node block_find(node b);        // UF find over block indices
  node make_block();              // fresh block node
  node merge_blocks(node a, node b);
  void reroot(vid v);             // make v the root of its BC tree

  vid n_;
  std::vector<node> parent_;        // per node (vertices then blocks)
  std::vector<node> block_uf_;      // parent index per block
  std::vector<vid> block_size_;     // UF by size
  std::vector<eid> edge_count_;     // edges per block (representative)
  std::vector<vid> blocks_of_;      // #blocks containing each vertex

  // Connectivity UF over vertices with component sizes.
  std::vector<vid> comp_parent_;
  std::vector<vid> comp_size_;
  vid comp_find(vid v);

  vid num_blocks_ = 0;
  vid num_bridges_ = 0;
  vid num_components_;

  // Scratch for the alternating LCA walk (cleared per insertion).
  std::unordered_map<node, int> mark_;
};

}  // namespace parbcc
