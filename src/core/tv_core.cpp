#include "core/tv_core.hpp"

#include <cassert>
#include <stdexcept>

#include "connectivity/shiloach_vishkin.hpp"
#include "core/aux_graph.hpp"
#include "util/timer.hpp"

namespace parbcc {

std::vector<vid> make_tree_owner(Executor& ex, std::size_t num_edges,
                                 const RootedSpanningTree& tree) {
  std::vector<vid> owner(num_edges, kNoVertex);
  ex.parallel_for(tree.parent.size(), [&](std::size_t v) {
    const eid e = tree.parent_edge[v];
    if (e != kNoEdge) {
      // Each tree edge has exactly one child endpoint, so slots are
      // written at most once.
      owner[e] = static_cast<vid>(v);
    }
  });
  return owner;
}

std::vector<vid> tv_label_edges(Executor& ex, Workspace& ws,
                                std::span<const Edge> edges,
                                const RootedSpanningTree& tree,
                                std::span<const vid> tree_owner,
                                LowHighMethod method,
                                const ChildrenCsr* children,
                                const LevelStructure* levels,
                                SvMode sv_mode, AuxMode aux_mode,
                                TvCoreTimes* times, Trace* trace) {
  Timer timer;

  // Step 4: low/high.
  LowHigh lh;
  {
    TraceSpan span(trace, "low_high");
    switch (method) {
      case LowHighMethod::kRmq:
        lh = compute_low_high_rmq(ex, ws, edges, tree, tree_owner, trace);
        break;
      case LowHighMethod::kLevelSweep:
        if (children == nullptr || levels == nullptr) {
          throw std::invalid_argument(
              "tv_label_edges: level sweep needs children/levels");
        }
        lh = compute_low_high_levels(ex, edges, tree, tree_owner, *children,
                                     *levels, trace);
        break;
    }
  }
  if (times) times->low_high = timer.lap();

  // Steps 5+6 fused: hook aux pairs straight into a concurrent
  // union-find as conditions 1-3 emit them, then read labels back in
  // one sweep.  The kernel opens the label_edge /
  // connected_components spans itself and reports their split.
  if (aux_mode == AuxMode::kFused) {
    FusedAuxStats stats;
    std::vector<vid> labels =
        fused_aux_components(ex, ws, edges, tree, tree_owner, lh, trace,
                             &stats);
    if (times) {
      times->label_edge = stats.label_edge_seconds;
      times->connected_components = stats.connected_components_seconds;
    }
    return labels;
  }

  // Step 5: Label-edge (Alg. 1).
  TraceSpan label_span(trace, "label_edge");
  const AuxGraph aux =
      build_aux_graph(ex, ws, edges, tree, tree_owner, lh, trace);
  label_span.close();
  if (times) times->label_edge = timer.lap();

  // Step 6: connected components of G' via Shiloach-Vishkin, read back
  // through each edge's aux image.  The aux label array is scratch —
  // only its gather through aux_id survives.
  TraceSpan cc_span(trace, "connected_components");
  Workspace::Frame frame(ws);
  std::span<vid> aux_labels = ws.alloc<vid>(aux.num_vertices);
  SvStats sv_stats;
  connected_components_sv(ex, ws, aux.num_vertices, aux.edges, aux_labels,
                          sv_mode, &sv_stats);
  if (trace != nullptr) {
    trace->counter("sv_rounds", static_cast<double>(sv_stats.rounds));
  }
  std::vector<vid> labels(edges.size());
  ex.parallel_for(edges.size(), [&](std::size_t e) {
    labels[e] = aux_labels[aux.aux_id[e]];
  });
  cc_span.close();
  if (times) times->connected_components = timer.lap();
  return labels;
}

std::vector<vid> tv_label_edges(Executor& ex, std::span<const Edge> edges,
                                const RootedSpanningTree& tree,
                                std::span<const vid> tree_owner,
                                LowHighMethod method,
                                const ChildrenCsr* children,
                                const LevelStructure* levels,
                                SvMode sv_mode, AuxMode aux_mode,
                                TvCoreTimes* times) {
  Workspace ws;
  return tv_label_edges(ex, ws, edges, tree, tree_owner, method, children,
                        levels, sv_mode, aux_mode, times);
}

}  // namespace parbcc
