#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/bcc_context.hpp"
#include "core/bcc_result.hpp"
#include "graph/edge_list.hpp"
#include "util/trace.hpp"

/// \file batch_dynamic.hpp
/// Batch-dynamic biconnectivity: apply a batch of edge insertions and
/// deletions to a standing graph and republish its BCC labels without
/// re-solving from scratch.
///
/// The engine keeps the previous solve's edge labels and exploits the
/// locality of block structure under edits:
///
///  - a deletion can only split the block containing the deleted edge;
///  - an insertion can only merge the blocks along the block-cut-tree
///    path between its endpoints (or mint a fresh bridge block when the
///    endpoints were disconnected).
///
/// Alongside the labels it maintains *exact* connected-component ids
/// across batches (see comp_id_ below): an insertion joining two
/// components is an O(alpha) union; a deletion that disconnects its
/// endpoints is detected by a bidirectional BFS over the engine's
/// incidence lists whose cost is the size of the detached side — the
/// first side to run out of frontier *is* the split-off component and
/// is relabeled under a fresh id.  Exact ids make insertion
/// classification free: two finds decide same-component vs
/// cross-component, no search.
///
/// Per batch the engine (1) collects the *affected region* — the union
/// of complete blocks that any batch edge can touch.  Deletions flag
/// the block holding the deleted edge.  A same-component insertion
/// flags a path: the block-decomposition fact is that *any* simple u-v
/// path crosses exactly the blocks on the block-cut-tree path between
/// u and v (an excursion out of a block must re-enter through the same
/// articulation vertex, so it is never simple), so a capped
/// bidirectional BFS meeting in the middle flags such a path in work
/// proportional to the meeting balls — no per-batch CSR build and no
/// whole-component traversal.  Cross-component insertions merge
/// nothing on their own — the new edge becomes a bridge block — unless
/// the batch closes a cycle over standing components; a union-find
/// over the per-batch component multigraph (keyed by the exact
/// component ids) detects that, and the response flags, for every
/// endpoint group of the cyclic classes, the paths from one
/// representative to each other member — which covers all pairwise
/// block-cut-tree paths, and the union of per-edge tree paths is
/// exactly the set of blocks any added-edge combination can merge.
/// (2) It extracts that region plus the inserted edges as a compact
/// subgraph and solves only it, going through a sparse
/// 2-vertex-connectivity certificate (`sparse_certificate_vertex`)
/// first when the region is dense — the omitted edges are labeled
/// afterwards by the certificate's F1 scatter rule; and (3) splices
/// the region's fresh labels back with previously unused label values,
/// patching the cut info only where it can change.
///
/// Everything the splice path touches is O(batch + region) plus a few
/// sequential O(m) sweeps with tiny constants (region collection, the
/// damage numerator, the ascending bridge list) — never an O(n + m)
/// rebuild, re-normalization, or full cut-info recomputation:
///
///  - deletions compact `graph().edges` by swapping the last edge into
///    the hole, so the incidence lists need only O(degree) surgery at
///    the four affected endpoints (ids of unaffected edges never move
///    en masse);
///  - spliced region labels take fresh ids from a monotone counter
///    (`label_bound()` is the exclusive upper bound); the published
///    array is renormalized opportunistically only when the id space
///    outgrows ~2(n + m), so labels are *partition*-canonical but not
///    contiguous — exactly the guarantee bcc_result.hpp already limits
///    callers to.  `num_components` stays exact by arithmetic: flagged
///    blocks vanish with the region, the region solve's blocks appear;
///  - `is_articulation` is recomputed only for vertices incident to the
///    region or the batch (no other vertex's incident label multiset
///    changed), and bridges are maintained as a per-edge mask patched
///    by the splice, from which the ascending id list is re-emitted.
///
/// Region growth is the damage model: when the touched-vertex fraction
/// passes `BatchDynamicOptions::damage_threshold`, patching would cost
/// as much as solving, so the engine falls back to a full solve through
/// the shared `BccContext` path (counter `batch_fallbacks`).  The
/// fallback also reseeds the component ids, bulk-loading an
/// `IncrementalBiconnectivity` tracker with the whole edge list.
///
/// Tracing: every batch opens a `batch_apply` span with `damage_probe`
/// and (on the incremental path) `certificate_solve` nested inside, and
/// charges the `batch_touched_vertices` / `batch_fallbacks` counters —
/// the streaming bench's segments are validated against exactly these
/// names by tools/validate_trace.py.

namespace parbcc {

/// Label values above this bound trigger the opportunistic
/// renormalization (labels are partition-canonical but sparse between
/// renormalizations, and per-label scratch sizes by the bound).  The
/// arithmetic is 64-bit on purpose: computed in 32-bit `vid`, the
/// 2(n + m) product wraps once n + m passes 2^31 and the comparison
/// silently misfires on exactly the graphs whose label space most
/// needs compacting.
inline constexpr std::uint64_t renormalize_label_threshold(std::uint64_t n,
                                                           std::uint64_t m) {
  return 2 * (n + m) + 1024;
}

struct BatchDynamicOptions {
  /// Fall back to a full re-solve when the affected region touches more
  /// than this fraction of the graph's vertices.  The default is the
  /// measured crossover of the streaming bench (see EXPERIMENTS.md A6):
  /// below ~15% damage the region solve plus the O(batch + region)
  /// splice beats the full pipeline; above it the region solve
  /// converges to the full solve while still paying the probe.
  double damage_threshold = 0.15;
  /// Route the region solve through a sparse k=2 BFS certificate when
  /// the region has more than this many edges per vertex; sparser
  /// regions are solved directly (the certificate could not drop enough
  /// edges to pay for its construction).
  double certificate_density = 3.0;
  /// Algorithm for the region and fallback solves.
  BccAlgorithm algorithm = BccAlgorithm::kAuto;
  /// Maintain `BccResult::is_articulation` / `bridges` after each batch
  /// (patched incrementally where the region touches them).
  bool compute_cut_info = true;
  /// Per-side exploration cap of the bidirectional searches (both the
  /// insertion path searches and the deletion split checks).  A search
  /// whose both sides hit the cap without a verdict is undecidable
  /// within budget and forces a full re-solve (counted as a fallback).
  /// The default covers meets across the bulk of a power-law giant
  /// component while bounding the worst batch.
  vid search_cap = 1u << 16;
  /// Renormalize the published labels once label_bound() exceeds this;
  /// 0 means renormalize_label_threshold(n, m) of the standing graph.
  /// Tests and churn benches set a tiny limit to force the
  /// copy-on-renormalize path on every batch.
  std::uint64_t renorm_label_limit = 0;
  /// Event sink shared by every batch (spans + counters as above).
  Trace* trace = nullptr;
};

/// Telemetry of the most recent apply_batch call.
struct BatchStats {
  /// Vertices incident to the affected region (the damage numerator).
  vid touched_vertices = 0;
  /// Edges of the extracted region subgraph (insertions included).
  eid region_edges = 0;
  /// Edges of the sparse certificate the region solve ran on; 0 when
  /// the region was solved directly or the batch fell back.
  eid certificate_edges = 0;
  /// True when the damage threshold forced a full re-solve.
  bool fell_back = false;
};

class BatchDynamicBcc {
 public:
  /// Take ownership of `base` (must be loop-free) and solve it once to
  /// seed the standing labels.  The context supplies the executor, the
  /// scratch arena and the conversion cache for every later batch.
  BatchDynamicBcc(BccContext& ctx, EdgeList base,
                  const BatchDynamicOptions& options = {});

  /// The standing graph after all batches so far.  A deletion swaps the
  /// last edge into the freed slot (ids of the swapped edges change;
  /// everything else keeps its id); insertions append.  The result's
  /// labels, bridges and stats are always in this numbering.
  const EdgeList& graph() const { return g_; }

  /// The standing result: labels (and cut info) of graph(), updated by
  /// every apply_batch.  Labels are partition-canonical with values in
  /// [0, label_bound()) — contiguous right after construction or a
  /// fallback, sparse after splices until the opportunistic
  /// renormalization (bcc_result.hpp already limits callers to the
  /// partition); num_components is always exact.
  const BccResult& result() const { return result_; }

  /// Exclusive upper bound of the label values in result(); size
  /// per-label scratch by this, not by num_components.
  vid label_bound() const { return next_label_; }

  const BatchStats& last_batch() const { return stats_; }

  /// Full re-solves forced by the damage threshold since construction.
  std::uint64_t fallbacks() const { return fallbacks_; }

  /// Monotone epoch counter: 0 after construction, +1 per apply_batch
  /// (splice or fallback alike).  This is the snapshot-publication
  /// hook: a serving layer that republishes result() as an immutable
  /// snapshot stamps each published epoch with this value, so readers
  /// can tell stale answers from fresh ones without touching the
  /// engine.  result()'s buffers are engine-owned and rewritten by the
  /// next apply_batch — publishers must deep-copy what they serve.
  std::uint64_t version() const { return version_; }

  /// Apply one batch: drop `deletions` (edge ids into graph().edges as
  /// numbered *before* this call; duplicates rejected), append
  /// `insertions` (loop-free; parallel edges allowed), and republish
  /// the labels.  Returns the updated standing result.
  const BccResult& apply_batch(std::span<const Edge> insertions,
                               std::span<const eid> deletions);

 private:
  /// Verdict of one bidirectional path search (see search_pair).
  enum class Probe { kMeet, kUndecided };

  void full_solve();
  /// Rebuild the bridge mask and the label counter after a full solve.
  void reset_bookkeeping();
  /// Rebuild comp_id_ / the component union-find from scratch by
  /// bulk-loading an IncrementalBiconnectivity tracker with the whole
  /// standing edge list (construction and fallback re-solves; the
  /// incremental path maintains the ids exactly instead).
  void reseed_components();
  vid comp_find(vid c);
  /// Exact component id of vertex v (find over comp_id_[v]).
  vid comp_of(vid v) { return comp_find(comp_id_[v]); }
  /// Union the components of u and v (by size).  No-op if equal.
  void comp_join(vid u, vid v);
  /// Did deleting {u, v} disconnect them?  Bidirectional BFS over the
  /// post-deletion incidence lists: a meet proves them still connected;
  /// the first side to exhaust is the detached component and is
  /// relabeled under a fresh id (cost = its size).  Returns false —
  /// component ids unreliable — when both sides hit opt_.search_cap;
  /// the caller must then force a full re-solve, which reseeds.
  bool split_check(vid u, vid v);
  /// Flags the labels of every block a batch edge can touch: deleted
  /// edges flag their own block; each same-component insertion flags
  /// the blocks met by its bidirectional-search path (exactly the
  /// block-cut-tree path plus at most the meeting balls); and
  /// component-joining insertions that close a cycle over standing
  /// components flag representative paths inside each endpoint group.
  /// Returns the region's touched-vertex count (the touched vertices
  /// are also collected into touched_ for the cut-info patch); counts
  /// distinct flagged labels in flagged_count_; sets force_full_ when a
  /// search was undecidable.
  vid probe_damage(std::span<const Edge> insertions,
                   std::span<const eid> deletions,
                   std::vector<std::uint8_t>& label_in_region);
  /// Capped bidirectional BFS between u and v (same component by the
  /// exact ids) over adj_.  On kMeet the labels of a simple u-v path
  /// have been flagged into label_in_region.  kUndecided means the cap
  /// was hit first — or a side exhausted without contact, which would
  /// contradict the ids and is treated as undecidable for safety.
  Probe search_pair(vid u, vid v, std::vector<std::uint8_t>& label_in_region);
  /// Applies the batch to g_.edges, the aligned label / bridge-mask
  /// arrays and the incidence lists: deletions swap-compact (O(degree)
  /// surgery per affected endpoint), insertions append with fresh ids.
  /// With maintain_components, each deletion runs its split check right
  /// after its arcs are dropped and each insertion joins its endpoints'
  /// components — sequential semantics, so the ids stay exact at every
  /// step; pass false when a fallback re-solve (which reseeds) is
  /// already decided.  Fills `region_ids` with the region's edge ids in
  /// the new numbering (insertions get a placeholder label; they are
  /// always in the region).
  void rebuild_edges(std::span<const Edge> insertions,
                     std::span<const eid> deletions,
                     const std::vector<std::uint8_t>& label_in_region,
                     std::vector<eid>& region_ids, bool maintain_components);
  /// Labels of a compact region subgraph, by a direct solve or (when
  /// dense enough) a sparse-certificate solve plus the F1 scatter rule.
  std::vector<vid> solve_region(const EdgeList& region);
  /// Recompute is_articulation for the touched vertices (no other
  /// vertex's incident label multiset changed) and re-emit the
  /// ascending bridge list from the patched mask.
  void patch_cut_info();

  BccContext& ctx_;
  BatchDynamicOptions opt_;
  EdgeList g_;
  BccResult result_;
  BatchStats stats_;
  std::uint64_t fallbacks_ = 0;
  std::uint64_t version_ = 0;
  Trace* trace_ = nullptr;  // opt_.trace, or null (spans become no-ops)
  /// Set by the probe or a split check when a search was undecidable
  /// within opt_.search_cap; apply_batch then falls back regardless of
  /// damage.
  bool force_full_ = false;

  /// Incidence lists (neighbor, edge id) of the standing graph, kept
  /// current across batches by rebuild_edges' per-endpoint surgery.
  std::vector<std::vector<std::pair<vid, eid>>> adj_;

  /// Exact connected-component ids, maintained across batches: splits
  /// relabel the detached (smaller) side under a fresh id appended to
  /// the union-find arrays; joins union by size.  Ids are indices into
  /// comp_parent_ / comp_size_, compacted back to [0, n) whenever
  /// splits have grown the id space past ~2n.
  std::vector<vid> comp_id_;
  std::vector<vid> comp_parent_;
  std::vector<vid> comp_size_;

  /// One past the largest label value in result_.edge_component; fresh
  /// splice labels are drawn from here so unchanged blocks keep their
  /// values (which is what makes the cut-info patch local).
  vid next_label_ = 0;
  /// Distinct labels flagged by the last probe == blocks that vanish
  /// with the region (every flagged label's edges are region members or
  /// deleted), which keeps num_components exact without a scan.
  vid flagged_count_ = 0;
  /// Per-edge bridge flags, aligned with g_.edges across swaps and
  /// splices; the ascending result_.bridges list is re-emitted from it.
  std::vector<std::uint8_t> bridge_mask_;

  // Search scratch, persistent across batches and epoch-stamped so a
  // batch initializes O(visited), not O(n).  touch_mark_ de-duplicates
  // the damage numerator; mark_a_/mark_b_ with par_a_/par_b_ are the
  // two search sides' visit stamps and discovery edges; visits_a_/
  // visits_b_ replay a side's marked set so a split check can relabel
  // the detached side without re-traversal.
  std::uint32_t epoch_ = 0;
  std::vector<std::uint32_t> touch_mark_;
  std::vector<vid> touched_;
  std::uint32_t search_epoch_ = 0;
  std::vector<std::uint32_t> mark_a_, mark_b_;
  std::vector<eid> par_a_, par_b_;
  std::vector<vid> front_a_, front_b_, next_a_, next_b_;
  std::vector<vid> visits_a_, visits_b_;
  std::vector<eid> del_scratch_;
  std::vector<vid> sub_count_;
};

}  // namespace parbcc
