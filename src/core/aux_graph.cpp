#include "core/aux_graph.hpp"

#include "connectivity/concurrent_union_find.hpp"
#include "scan/compact.hpp"
#include "scan/scan.hpp"
#include "util/padded.hpp"
#include "util/timer.hpp"

namespace parbcc {

AuxGraph build_aux_graph(Executor& ex, Workspace& ws,
                         std::span<const Edge> edges,
                         const RootedSpanningTree& tree,
                         std::span<const vid> tree_owner, const LowHigh& lh,
                         Trace* trace) {
  const std::size_t m = edges.size();
  const vid n = tree.n();
  AuxGraph out;
  Workspace::Frame frame(ws);

  // --- Map edges to aux vertices (prefix sum over nontree flags). ----
  out.aux_id.resize(m);
  {
    TraceSpan span(trace, "aux_vertex_map");
    std::span<vid> nontree_rank = ws.alloc<vid>(m);
    ex.parallel_for(m, [&](std::size_t e) {
      nontree_rank[e] = tree_owner[e] == kNoVertex ? 1 : 0;
    });
    const vid num_nontree = exclusive_scan(ex, ws, nontree_rank.data(),
                                           nontree_rank.data(), m, vid{0});
    out.num_vertices = n + num_nontree;
    ex.parallel_for(m, [&](std::size_t e) {
      out.aux_id[e] =
          tree_owner[e] == kNoVertex ? n + nontree_rank[e] : tree_owner[e];
    });
  }

  // --- Stage candidate pairs: slot e, m+e, 2m+e per condition. -------
  TraceSpan stage_span(trace, "aux_stage");
  const Edge kEmpty{kNoVertex, kNoVertex};
  std::span<Edge> staged = ws.alloc<Edge>(3 * m);
  ex.parallel_for(3 * m, [&](std::size_t i) { staged[i] = kEmpty; });
  ex.parallel_for(m, [&](std::size_t e) {
    const vid u = edges[e].u;
    const vid v = edges[e].v;
    const vid owner = tree_owner[e];
    if (owner == kNoVertex) {
      // Condition 1: nontree (u,v) with pre(v) < pre(u) pairs with the
      // tree edge below u (i.e. aux vertex u).
      const vid hi_end = tree.pre[u] > tree.pre[v] ? u : v;
      staged[e] = {out.aux_id[e], hi_end};
      // Condition 2: endpoints unrelated pairs (u,p(u)) with (v,p(v)).
      if (!tree.is_ancestor(u, v) && !tree.is_ancestor(v, u)) {
        staged[m + e] = {u, v};
      }
    } else {
      // Condition 3: tree edge below `owner`; its parent's tree edge is
      // in the same component iff some nontree edge escapes the
      // parent's subtree from owner's subtree.
      const vid parent = tree.parent[owner];
      if (parent != tree.root) {
        if (lh.low[owner] < tree.pre[parent] ||
            lh.high[owner] >= tree.pre[parent] + tree.sub[parent]) {
          staged[2 * m + e] = {owner, parent};
        }
      }
    }
  });

  stage_span.close();

  // --- Compact into E'. -----------------------------------------------
  TraceSpan compact_span(trace, "aux_compact");
  out.edges.resize(3 * m);
  const std::size_t count = pack_into(
      ex, ws, staged.size(),
      [&](std::size_t i) { return staged[i].u != kNoVertex; },
      [&](std::size_t dst, std::size_t i) { out.edges[dst] = staged[i]; });
  out.edges.resize(count);
  out.edges.shrink_to_fit();
  compact_span.close();
  if (trace != nullptr) {
    trace->counter("aux_vertices", static_cast<double>(out.num_vertices));
    trace->counter("aux_edges", static_cast<double>(out.edges.size()));
  }
  return out;
}

AuxGraph build_aux_graph(Executor& ex, std::span<const Edge> edges,
                         const RootedSpanningTree& tree,
                         std::span<const vid> tree_owner, const LowHigh& lh) {
  Workspace ws;
  return build_aux_graph(ex, ws, edges, tree, tree_owner, lh);
}

std::vector<vid> fused_aux_components(Executor& ex, Workspace& ws,
                                      std::span<const Edge> edges,
                                      const RootedSpanningTree& tree,
                                      std::span<const vid> tree_owner,
                                      const LowHigh& lh, Trace* trace,
                                      FusedAuxStats* stats) {
  const std::size_t m = edges.size();
  const vid n = tree.n();
  const int p = ex.threads();
  std::vector<vid> labels(m);
  Workspace::Frame frame(ws);

  Timer timer;
  TraceSpan label_span(trace, "label_edge");

  // --- Map edges to aux vertices (prefix sum over nontree flags), as
  // in the materialized route; the map is the one edge-sized scratch
  // the fused pipeline keeps.
  std::span<vid> aux_id = ws.alloc<vid>(m);
  vid num_vertices = n;
  {
    TraceSpan span(trace, "aux_vertex_map");
    std::span<vid> nontree_rank = ws.alloc<vid>(m);
    ex.parallel_for(m, [&](std::size_t e) {
      nontree_rank[e] = tree_owner[e] == kNoVertex ? 1 : 0;
    });
    const vid num_nontree = exclusive_scan(ex, ws, nontree_rank.data(),
                                           nontree_rank.data(), m, vid{0});
    num_vertices = n + num_nontree;
    ex.parallel_for(m, [&](std::size_t e) {
      aux_id[e] =
          tree_owner[e] == kNoVertex ? n + nontree_rank[e] : tree_owner[e];
    });
  }

  // --- Hook sweep: conditions 1-3 unite aux-id pairs on the fly.  No
  // staged slots, no zero-fill, no compaction — each generated pair
  // goes straight into the concurrent forest.
  std::span<vid> parent = ws.alloc<vid>(num_vertices);
  std::span<Padded<std::uint64_t>> thread_hooks =
      ws.alloc<Padded<std::uint64_t>>(static_cast<std::size_t>(p));
  std::span<Padded<std::uint64_t>> thread_depth =
      ws.alloc<Padded<std::uint64_t>>(static_cast<std::size_t>(p));
  const ConcurrentUnionFind uf{parent};
  for (int t = 0; t < p; ++t) {
    thread_hooks[static_cast<std::size_t>(t)].value = 0;
    thread_depth[static_cast<std::size_t>(t)].value = 0;
  }
  // Both sweeps run as chunked grained loops with the chunk totals
  // flushed into the executing worker's padded slot (exclusive under
  // either scheduler): work-stealing can then rebalance chunks, which
  // matters because hook/find depth is data-dependent and the flat
  // per-thread blocks serialized on the unluckiest block.
  constexpr std::size_t kSweepGrain = 2048;
  const std::size_t chunks = (m + kSweepGrain - 1) / kSweepGrain;
  {
    TraceSpan span(trace, "aux_hook");
    ConcurrentUnionFind::init(ex, parent);
    ex.parallel_for(0, chunks, 1, [&](std::size_t c) {
      const std::size_t begin = c * kSweepGrain;
      const std::size_t end = std::min(m, begin + kSweepGrain);
      std::uint64_t hooks = 0;
      std::uint64_t depth = 0;
      for (std::size_t e = begin; e < end; ++e) {
        const vid u = edges[e].u;
        const vid v = edges[e].v;
        const vid owner = tree_owner[e];
        if (owner == kNoVertex) {
          // Condition 1: nontree (u,v) with pre(v) < pre(u) pairs with
          // the tree edge below u (i.e. aux vertex u).
          const vid hi_end = tree.pre[u] > tree.pre[v] ? u : v;
          hooks += uf.unite(aux_id[e], hi_end, depth) ? 1 : 0;
          // Condition 2: endpoints unrelated pairs (u,p(u)) with
          // (v,p(v)).
          if (!tree.is_ancestor(u, v) && !tree.is_ancestor(v, u)) {
            hooks += uf.unite(u, v, depth) ? 1 : 0;
          }
        } else {
          // Condition 3: tree edge below `owner`; its parent's tree
          // edge is in the same component iff some nontree edge
          // escapes the parent's subtree from owner's subtree.
          const vid par = tree.parent[owner];
          if (par != tree.root) {
            if (lh.low[owner] < tree.pre[par] ||
                lh.high[owner] >= tree.pre[par] + tree.sub[par]) {
              hooks += uf.unite(owner, par, depth) ? 1 : 0;
            }
          }
        }
      }
      const auto w = static_cast<std::size_t>(ex.worker_id());
      thread_hooks[w].value += hooks;
      thread_depth[w].value += depth;
    });
  }
  label_span.close();
  const double label_seconds = timer.lap();

  // --- Label sweep: the quiescent forest's roots are the component
  // minima; read each edge's label through its aux image, halving as
  // we go (the sweep doubles as the flattening pass).
  TraceSpan cc_span(trace, "connected_components");
  {
    TraceSpan span(trace, "aux_gather");
    ex.parallel_for(0, chunks, 1, [&](std::size_t c) {
      const std::size_t begin = c * kSweepGrain;
      const std::size_t end = std::min(m, begin + kSweepGrain);
      std::uint64_t depth = 0;
      for (std::size_t e = begin; e < end; ++e) {
        labels[e] = uf.find(aux_id[e], depth);
      }
      thread_depth[static_cast<std::size_t>(ex.worker_id())].value += depth;
    });
  }
  cc_span.close();
  const double cc_seconds = timer.lap();

  std::uint64_t total_hooks = 0;
  std::uint64_t total_depth = 0;
  for (int t = 0; t < p; ++t) {
    total_hooks += thread_hooks[static_cast<std::size_t>(t)].value;
    total_depth += thread_depth[static_cast<std::size_t>(t)].value;
  }
  if (trace != nullptr) {
    trace->counter("aux_vertices", static_cast<double>(num_vertices));
    trace->counter("aux_hooks", static_cast<double>(total_hooks));
    trace->counter("aux_find_depth", static_cast<double>(total_depth));
  }
  if (stats != nullptr) {
    stats->num_vertices = num_vertices;
    stats->hooks = total_hooks;
    stats->find_depth = total_depth;
    stats->label_edge_seconds = label_seconds;
    stats->connected_components_seconds = cc_seconds;
  }
  return labels;
}

std::vector<vid> fused_aux_components(Executor& ex,
                                      std::span<const Edge> edges,
                                      const RootedSpanningTree& tree,
                                      std::span<const vid> tree_owner,
                                      const LowHigh& lh,
                                      FusedAuxStats* stats) {
  Workspace ws;
  return fused_aux_components(ex, ws, edges, tree, tree_owner, lh, nullptr,
                              stats);
}

}  // namespace parbcc
