#include "core/aux_graph.hpp"

#include "scan/compact.hpp"
#include "scan/scan.hpp"

namespace parbcc {

AuxGraph build_aux_graph(Executor& ex, Workspace& ws,
                         std::span<const Edge> edges,
                         const RootedSpanningTree& tree,
                         std::span<const vid> tree_owner, const LowHigh& lh,
                         Trace* trace) {
  const std::size_t m = edges.size();
  const vid n = tree.n();
  AuxGraph out;
  Workspace::Frame frame(ws);

  // --- Map edges to aux vertices (prefix sum over nontree flags). ----
  out.aux_id.resize(m);
  {
    TraceSpan span(trace, "aux_vertex_map");
    std::span<vid> nontree_rank = ws.alloc<vid>(m);
    ex.parallel_for(m, [&](std::size_t e) {
      nontree_rank[e] = tree_owner[e] == kNoVertex ? 1 : 0;
    });
    const vid num_nontree = exclusive_scan(ex, ws, nontree_rank.data(),
                                           nontree_rank.data(), m, vid{0});
    out.num_vertices = n + num_nontree;
    ex.parallel_for(m, [&](std::size_t e) {
      out.aux_id[e] =
          tree_owner[e] == kNoVertex ? n + nontree_rank[e] : tree_owner[e];
    });
  }

  // --- Stage candidate pairs: slot e, m+e, 2m+e per condition. -------
  TraceSpan stage_span(trace, "aux_stage");
  const Edge kEmpty{kNoVertex, kNoVertex};
  std::span<Edge> staged = ws.alloc<Edge>(3 * m);
  ex.parallel_for(3 * m, [&](std::size_t i) { staged[i] = kEmpty; });
  ex.parallel_for(m, [&](std::size_t e) {
    const vid u = edges[e].u;
    const vid v = edges[e].v;
    const vid owner = tree_owner[e];
    if (owner == kNoVertex) {
      // Condition 1: nontree (u,v) with pre(v) < pre(u) pairs with the
      // tree edge below u (i.e. aux vertex u).
      const vid hi_end = tree.pre[u] > tree.pre[v] ? u : v;
      staged[e] = {out.aux_id[e], hi_end};
      // Condition 2: endpoints unrelated pairs (u,p(u)) with (v,p(v)).
      if (!tree.is_ancestor(u, v) && !tree.is_ancestor(v, u)) {
        staged[m + e] = {u, v};
      }
    } else {
      // Condition 3: tree edge below `owner`; its parent's tree edge is
      // in the same component iff some nontree edge escapes the
      // parent's subtree from owner's subtree.
      const vid parent = tree.parent[owner];
      if (parent != tree.root) {
        if (lh.low[owner] < tree.pre[parent] ||
            lh.high[owner] >= tree.pre[parent] + tree.sub[parent]) {
          staged[2 * m + e] = {owner, parent};
        }
      }
    }
  });

  stage_span.close();

  // --- Compact into E'. -----------------------------------------------
  TraceSpan compact_span(trace, "aux_compact");
  out.edges.resize(3 * m);
  const std::size_t count = pack_into(
      ex, ws, staged.size(),
      [&](std::size_t i) { return staged[i].u != kNoVertex; },
      [&](std::size_t dst, std::size_t i) { out.edges[dst] = staged[i]; });
  out.edges.resize(count);
  out.edges.shrink_to_fit();
  compact_span.close();
  if (trace != nullptr) {
    trace->counter("aux_vertices", static_cast<double>(out.num_vertices));
    trace->counter("aux_edges", static_cast<double>(out.edges.size()));
  }
  return out;
}

AuxGraph build_aux_graph(Executor& ex, std::span<const Edge> edges,
                         const RootedSpanningTree& tree,
                         std::span<const vid> tree_owner, const LowHigh& lh) {
  Workspace ws;
  return build_aux_graph(ex, ws, edges, tree, tree_owner, lh);
}

}  // namespace parbcc
