#pragma once

#include "core/bcc_result.hpp"
#include "graph/edge_list.hpp"
#include "util/thread_pool.hpp"

/// \file drivers.hpp
/// The three parallel biconnected-components drivers.  Each assumes a
/// connected input without self-loops (enforced/arranged by the public
/// dispatcher in bcc.hpp), fills edge_component with contiguous labels,
/// num_components, and the per-step times of the paper's Fig. 4.
/// Cut info (articulation points, bridges) is annotated by the caller.

namespace parbcc {

/// Direct SMP emulation of Tarjan-Vishkin (paper §3.1): SV spanning
/// tree, sort-built Euler tour, list-ranked rooting, RMQ low/high.
BccResult tv_smp_bcc(Executor& ex, const EdgeList& g, const BccOptions& opt);

/// Optimized adaptation (paper §3.2): work-stealing rooted spanning
/// tree (merging Spanning-tree and Root-tree), DFS-order tree
/// computations via level sweeps and prefix sums.
BccResult tv_opt_bcc(Executor& ex, const EdgeList& g, const BccOptions& opt);

/// The paper's Alg. 2: BFS tree T, spanning forest F of G - T, TV-opt
/// machinery on T u F (at most 2(n-1) edges), condition-1 labels for
/// the filtered edges.
BccResult tv_filter_bcc(Executor& ex, const EdgeList& g,
                        const BccOptions& opt);

}  // namespace parbcc
