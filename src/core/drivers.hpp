#pragma once

#include <optional>

#include "core/bcc_result.hpp"
#include "graph/compressed_csr.hpp"
#include "graph/csr.hpp"
#include "graph/edge_list.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"
#include "util/workspace.hpp"

/// \file drivers.hpp
/// The three parallel biconnected-components drivers.  Each assumes a
/// connected input without self-loops (enforced/arranged by the public
/// dispatcher in bcc.hpp), fills edge_component with contiguous labels,
/// num_components, and the per-step times of the paper's Fig. 4.
/// Cut info (articulation points, bridges) is annotated by the caller.
/// Every driver has a Workspace-threaded primary — all O(n + m)
/// scratch along the pipeline is drawn from (and returned to) the
/// caller's arena — plus a legacy overload owning a private arena.

namespace parbcc {

/// An edge list together with its adjacency structure (CSR), built at
/// most once and shared by every consumer.  The edge-list -> adjacency
/// conversion is the representation-discrepancy cost the paper's §1
/// highlights; it is charged to whoever triggers the build and recorded
/// here so drivers can report it in StepTimes::conversion without ever
/// rebuilding the CSR.  The referenced edge list must outlive the
/// PreparedGraph.
class PreparedGraph {
 public:
  /// Convert `g`, recording the wall-clock conversion cost.  The
  /// builder's staging memory comes from `ws`.
  PreparedGraph(Executor& ex, Workspace& ws, const EdgeList& g) : graph_(&g) {
    Timer timer;
    owned_ = Csr::build(ex, ws, g);
    csr_ = &owned_;
    conversion_seconds_ = timer.seconds();
  }

  PreparedGraph(Executor& ex, const EdgeList& g) : graph_(&g) {
    Timer timer;
    owned_ = Csr::build(ex, g);
    csr_ = &owned_;
    conversion_seconds_ = timer.seconds();
  }

  /// Adopt a caller-built adjacency (no conversion charged).  `csr`
  /// must be the adjacency of exactly `g`, e.g. from a prior
  /// Csr::build on the same edge list.
  PreparedGraph(const EdgeList& g, const Csr& csr)
      : graph_(&g), csr_(&csr) {}

  PreparedGraph(const PreparedGraph&) = delete;
  PreparedGraph& operator=(const PreparedGraph&) = delete;

  const EdgeList& graph() const { return *graph_; }
  const Csr& csr() const { return *csr_; }
  /// Seconds spent building the CSR (0 when the caller supplied it).
  double conversion_seconds() const { return conversion_seconds_; }
  /// Charge the conversion to nobody: BccContext zeroes this on cache
  /// hits so repeat solves report conversion = 0.
  void waive_conversion_charge() { conversion_seconds_ = 0; }

  /// The compressed-adjacency companion (BccOptions::csr_backend ==
  /// kCompressed), built from the plain CSR on first demand and kept
  /// for the PreparedGraph's lifetime — repeat solves of a cached
  /// graph reuse it like they reuse the CSR.  Mutable + const because
  /// drivers hold the PreparedGraph by const reference and the
  /// context is single-orchestrator (one solve at a time).
  const CompressedCsr& ensure_compressed(Executor& ex) const {
    if (!compressed_) compressed_.emplace(CompressedCsr::build(ex, *csr_));
    return *compressed_;
  }
  /// Attach an externally built/adopted compressed adjacency (the mmap
  /// loader adopts the file's compressed section; its storage must
  /// outlive the PreparedGraph).
  void attach_compressed(CompressedCsr c) const {
    compressed_.emplace(std::move(c));
  }
  const CompressedCsr* compressed() const {
    return compressed_ ? &*compressed_ : nullptr;
  }

 private:
  const EdgeList* graph_;
  const Csr* csr_ = nullptr;
  Csr owned_;
  double conversion_seconds_ = 0;
  mutable std::optional<CompressedCsr> compressed_;
};

/// Direct SMP emulation of Tarjan-Vishkin (paper §3.1): SV spanning
/// tree, sort-built Euler tour, list-ranked rooting, RMQ low/high.
/// Works on the raw edge list; it never needs (or charges) adjacency.
BccResult tv_smp_bcc(Executor& ex, Workspace& ws, const EdgeList& g,
                     const BccOptions& opt);
BccResult tv_smp_bcc(Executor& ex, const EdgeList& g, const BccOptions& opt);

/// Optimized adaptation (paper §3.2): work-stealing rooted spanning
/// tree (merging Spanning-tree and Root-tree), DFS-order tree
/// computations via level sweeps and prefix sums.
BccResult tv_opt_bcc(Executor& ex, Workspace& ws, const PreparedGraph& pg,
                     const BccOptions& opt);
BccResult tv_opt_bcc(Executor& ex, const EdgeList& g, const BccOptions& opt);
BccResult tv_opt_bcc(Executor& ex, const PreparedGraph& pg,
                     const BccOptions& opt);

/// The paper's Alg. 2: BFS tree T, spanning forest F of G - T, TV-opt
/// machinery on T u F (at most 2(n-1) edges), condition-1 labels for
/// the filtered edges.
BccResult tv_filter_bcc(Executor& ex, Workspace& ws, const PreparedGraph& pg,
                        const BccOptions& opt);
BccResult tv_filter_bcc(Executor& ex, const EdgeList& g,
                        const BccOptions& opt);
BccResult tv_filter_bcc(Executor& ex, const PreparedGraph& pg,
                        const BccOptions& opt);

/// FastBCC (Dong, Wang, Gu & Sun, PPoPP 2023): BFS spanning tree,
/// preorder-interval tagging with subtree low/high sweeps, then one
/// concurrent-union-find pass over the skeleton — non-critical tree
/// edges and cross edges hook, back edges are implied — and each edge
/// is labeled by its deeper endpoint's cluster.  O(n) arena scratch
/// beyond the tree structures; never materializes an auxiliary graph.
BccResult fast_bcc(Executor& ex, Workspace& ws, const PreparedGraph& pg,
                   const BccOptions& opt);
BccResult fast_bcc(Executor& ex, const EdgeList& g, const BccOptions& opt);
BccResult fast_bcc(Executor& ex, const PreparedGraph& pg,
                   const BccOptions& opt);

}  // namespace parbcc
