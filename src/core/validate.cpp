#include "core/validate.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <set>
#include <vector>

#include "connectivity/union_find.hpp"
#include "core/hopcroft_tarjan.hpp"
#include "graph/csr.hpp"

namespace parbcc {
namespace {

std::string fmt(const char* what, std::uint64_t a, std::uint64_t b) {
  return std::string(what) + " (" + std::to_string(a) + ", " +
         std::to_string(b) + ")";
}

/// Edges of one block stay connected after deleting any single vertex
/// — exact check used for small blocks.
bool block_biconnected_brute(const EdgeList& g,
                             const std::vector<eid>& block_edges) {
  std::set<vid> vertices;
  for (const eid e : block_edges) {
    vertices.insert(g.edges[e].u);
    vertices.insert(g.edges[e].v);
  }
  if (block_edges.size() == 1) return true;  // a bridge block
  for (const vid removed : vertices) {
    // Union the surviving edges; all surviving vertices must join up.
    std::map<vid, vid> local;
    for (const vid v : vertices) {
      if (v != removed) local.emplace(v, static_cast<vid>(local.size()));
    }
    UnionFind uf(static_cast<vid>(local.size()));
    vid components = static_cast<vid>(local.size());
    for (const eid e : block_edges) {
      const vid u = g.edges[e].u;
      const vid v = g.edges[e].v;
      if (u == removed || v == removed) continue;
      if (uf.unite(local[u], local[v])) --components;
    }
    if (components != 1) return false;
  }
  return true;
}

}  // namespace

ValidationReport validate_bcc(Executor& ex, const EdgeList& g,
                              const BccResult& result) {
  ValidationReport report;
  const auto fail = [&](std::string msg) {
    report.ok = false;
    report.message = std::move(msg);
    return report;
  };

  const eid m = g.m();
  const vid k = result.num_components;
  if (result.edge_component.size() != m) {
    return fail("label array size != edge count");
  }

  // (1) totality and contiguity.
  std::vector<std::uint8_t> used(k, 0);
  for (eid e = 0; e < m; ++e) {
    const vid c = result.edge_component[e];
    if (c >= k) return fail(fmt("label out of range at edge", e, c));
    used[c] = 1;
  }
  for (vid c = 0; c < k; ++c) {
    if (!used[c]) return fail(fmt("unused label", c, k));
  }
  if (m == 0) return report;

  // Bucket edges by block.
  std::vector<std::vector<eid>> blocks(k);
  for (eid e = 0; e < m; ++e) blocks[result.edge_component[e]].push_back(e);

  // (2) + (3): every block is a connected, biconnected subgraph.
  constexpr std::size_t kBruteCap = 64;
  for (vid c = 0; c < k; ++c) {
    const auto& block = blocks[c];
    if (block.size() == 1) continue;  // bridge or self-loop: fine
    if (block.size() <= kBruteCap) {
      if (!block_biconnected_brute(g, block)) {
        return fail(fmt("block fails vertex-deletion check", c,
                        block.size()));
      }
      continue;
    }
    // Large block: extract the subgraph and check with the (separately
    // brute-force-verified) sequential Hopcroft-Tarjan.
    std::map<vid, vid> local;
    EdgeList sub;
    for (const eid e : block) {
      for (const vid v : {g.edges[e].u, g.edges[e].v}) {
        local.emplace(v, static_cast<vid>(local.size()));
      }
    }
    sub.n = static_cast<vid>(local.size());
    sub.edges.reserve(block.size());
    for (const eid e : block) {
      sub.edges.push_back({local[g.edges[e].u], local[g.edges[e].v]});
    }
    Executor seq(1);
    const Csr csr = Csr::build(seq, sub);
    const BccResult ht = hopcroft_tarjan_bcc(sub, csr, false);
    if (ht.num_components != 1) {
      return fail(fmt("block is not biconnected", c, ht.num_components));
    }
  }

  // (4) block-vertex incidence graph must be a forest (two blocks can
  // share at most one vertex, and no cyclic chain of sharings).
  {
    std::vector<std::pair<vid, vid>> incidences;
    incidences.reserve(2 * m);
    for (eid e = 0; e < m; ++e) {
      const vid c = result.edge_component[e];
      incidences.push_back({c, g.edges[e].u});
      incidences.push_back({c, g.edges[e].v});
    }
    std::sort(incidences.begin(), incidences.end());
    incidences.erase(std::unique(incidences.begin(), incidences.end()),
                     incidences.end());
    UnionFind uf(k + g.n);
    for (const auto& [c, v] : incidences) {
      if (!uf.unite(c, k + v)) {
        return fail(fmt("blocks share two vertices near block", c, v));
      }
    }
  }

  // (5) fundamental cycles are monochromatic: BFS forest, then walk
  // each nontree edge's tree path comparing labels.
  {
    const Csr csr = Csr::build(ex, g);
    std::vector<vid> parent(g.n, kNoVertex);
    std::vector<eid> parent_edge(g.n, kNoEdge);
    std::vector<vid> depth(g.n, 0);
    std::vector<std::uint8_t> in_tree(m, 0);
    for (vid r = 0; r < g.n; ++r) {
      if (parent[r] != kNoVertex) continue;
      parent[r] = r;
      std::deque<vid> queue{r};
      while (!queue.empty()) {
        const vid v = queue.front();
        queue.pop_front();
        const auto nbrs = csr.neighbors(v);
        const auto eids = csr.incident_edges(v);
        for (std::size_t j = 0; j < nbrs.size(); ++j) {
          if (parent[nbrs[j]] == kNoVertex) {
            parent[nbrs[j]] = v;
            parent_edge[nbrs[j]] = eids[j];
            in_tree[eids[j]] = 1;
            depth[nbrs[j]] = depth[v] + 1;
            queue.push_back(nbrs[j]);
          }
        }
      }
    }
    for (eid e = 0; e < m; ++e) {
      if (in_tree[e] || g.edges[e].u == g.edges[e].v) continue;
      const vid label = result.edge_component[e];
      vid a = g.edges[e].u;
      vid b = g.edges[e].v;
      while (a != b) {
        vid& deeper = depth[a] >= depth[b] ? a : b;
        if (result.edge_component[parent_edge[deeper]] != label) {
          return fail(fmt("fundamental cycle is not monochromatic at edge",
                          e, parent_edge[deeper]));
        }
        deeper = parent[deeper];
      }
    }
  }

  // Cut info consistency, when present.
  if (!result.is_articulation.empty()) {
    std::vector<vid> first(g.n, kNoVertex);
    std::vector<std::uint8_t> art(g.n, 0);
    for (eid e = 0; e < m; ++e) {
      if (g.edges[e].u == g.edges[e].v) continue;
      const vid c = result.edge_component[e];
      for (const vid v : {g.edges[e].u, g.edges[e].v}) {
        if (first[v] == kNoVertex) {
          first[v] = c;
        } else if (first[v] != c) {
          art[v] = 1;
        }
      }
    }
    for (vid v = 0; v < g.n; ++v) {
      if (art[v] != result.is_articulation[v]) {
        return fail(fmt("articulation flag mismatch at vertex", v, art[v]));
      }
    }
    std::vector<eid> bridges;
    for (vid c = 0; c < k; ++c) {
      if (blocks[c].size() == 1) {
        const eid e = blocks[c][0];
        if (g.edges[e].u != g.edges[e].v) bridges.push_back(e);
      }
    }
    std::sort(bridges.begin(), bridges.end());
    if (bridges != result.bridges) {
      return fail(fmt("bridge list mismatch", bridges.size(),
                      result.bridges.size()));
    }
  }

  return report;
}

}  // namespace parbcc
