#include "core/chains.hpp"

#include <algorithm>
#include <stdexcept>

namespace parbcc {

ChainDecomposition chain_decomposition(const EdgeList& g) {
  const vid n = g.n;
  const eid m = g.m();
  if (!g.validate()) {
    throw std::invalid_argument("chain_decomposition: invalid graph");
  }

  // Adjacency with edge ids.
  std::vector<std::vector<std::pair<vid, eid>>> adj(n);
  for (eid e = 0; e < m; ++e) {
    adj[g.edges[e].u].push_back({g.edges[e].v, e});
    adj[g.edges[e].v].push_back({g.edges[e].u, e});
  }

  // DFS forest: preorder, parents, and the DFS visit order.
  std::vector<vid> pre(n, 0);
  std::vector<vid> parent(n, kNoVertex);
  std::vector<eid> parent_edge(n, kNoEdge);
  std::vector<vid> order;
  std::vector<vid> component(n, kNoVertex);
  order.reserve(n);
  std::vector<std::pair<vid, std::size_t>> stack;
  vid counter = 1;
  vid num_components = 0;

  for (vid r = 0; r < n; ++r) {
    if (pre[r] != 0) continue;
    const vid comp = num_components++;
    pre[r] = counter++;
    parent[r] = r;
    component[r] = comp;
    order.push_back(r);
    stack.push_back({r, 0});
    while (!stack.empty()) {
      auto& [v, next] = stack.back();
      if (next < adj[v].size()) {
        const auto [w, e] = adj[v][next++];
        if (pre[w] == 0) {
          pre[w] = counter++;
          parent[w] = v;
          parent_edge[w] = e;
          component[w] = comp;
          order.push_back(w);
          stack.push_back({w, 0});
        }
        continue;
      }
      stack.pop_back();
    }
  }

  ChainDecomposition out;
  out.chain_of_edge.assign(m, kNoVertex);
  out.is_articulation.assign(n, 0);

  std::vector<std::uint8_t> visited(n, 0);
  std::vector<vid> chains_in_component(num_components, 0);
  for (const vid r : order) {
    if (parent[r] == r) visited[r] = 1;  // DFS roots start visited
  }

  // Walk vertices in DFS order; each back edge whose *ancestor*
  // endpoint is the current vertex starts a chain.
  for (const vid u : order) {
    for (const auto& [w, e] : adj[u]) {
      if (out.chain_of_edge[e] != kNoVertex) continue;      // consumed
      if (parent_edge[w] == e || parent_edge[u] == e) continue;  // tree
      if (pre[w] < pre[u]) continue;  // we are the descendant endpoint
      const vid chain = out.num_chains++;
      out.chain_of_edge[e] = chain;
      // The chain starts at u, so u counts as visited before the walk;
      // otherwise the walk could run past u and swallow bridges above.
      visited[u] = 1;
      vid x = w;
      while (!visited[x]) {
        visited[x] = 1;
        out.chain_of_edge[parent_edge[x]] = chain;
        x = parent[x];
      }
      const bool cycle = (x == u);
      out.chain_is_cycle.push_back(cycle ? 1 : 0);
      const vid idx_in_component = chains_in_component[component[u]]++;
      // Schmidt: the start of any cycle chain except the component's
      // first chain is a cut vertex.
      if (cycle && idx_in_component > 0) out.is_articulation[u] = 1;
    }
  }

  // Bridges: tree edges on no chain; their endpoints of degree >= 2
  // are cut vertices.
  for (eid e = 0; e < m; ++e) {
    if (out.chain_of_edge[e] == kNoVertex) out.bridges.push_back(e);
  }
  std::sort(out.bridges.begin(), out.bridges.end());
  for (const eid e : out.bridges) {
    for (const vid v : {g.edges[e].u, g.edges[e].v}) {
      if (adj[v].size() >= 2) out.is_articulation[v] = 1;
    }
  }
  return out;
}

}  // namespace parbcc
