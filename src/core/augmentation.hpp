#pragma once

#include <vector>

#include "core/bcc_result.hpp"
#include "graph/edge_list.hpp"
#include "util/thread_pool.hpp"

/// \file augmentation.hpp
/// Biconnectivity augmentation: propose edges whose addition makes the
/// graph biconnected — the "smallest augmentation" problem the paper
/// cites ([11], Hsu & Ramachandran) as an application of biconnected
/// components.
///
/// This is the classic block-cut-tree heuristic: take one attachment
/// vertex from every leaf block (plus every isolated vertex) and join
/// the attachments in a ring.  The ring gives every pendant part of the
/// block-cut forest a second disjoint route, so the result is
/// biconnected; it uses at most twice the optimal ceil(L/2) edges,
/// trading optimality for a construction that is easy to audit.

namespace parbcc {

/// Edges to add to make `g` biconnected (empty if it already is).
/// Requires n >= 3 and `result` computed with cut info.
std::vector<Edge> biconnectivity_augmentation(Executor& ex, const EdgeList& g,
                                              const BccResult& result);

}  // namespace parbcc
