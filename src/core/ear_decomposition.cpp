#include "core/ear_decomposition.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>

#include "connectivity/union_find.hpp"
#include "eulertour/tree_computations.hpp"
#include "graph/csr.hpp"
#include "rmq/lca.hpp"
#include "scan/scan.hpp"
#include "spanning/bfs_tree.hpp"

namespace parbcc {

EarDecomposition ear_decomposition(Executor& ex, const EdgeList& g,
                                   vid root) {
  const vid n = g.n;
  const eid m = g.m();
  if (n < 3 || !g.validate()) {
    throw std::invalid_argument(
        "ear_decomposition: need a simple graph with >= 3 vertices");
  }

  // Rooted spanning tree (BFS keeps the level machinery shallow).
  const Csr csr = Csr::build(ex, g);
  const BfsTree bfs = bfs_tree(ex, csr, root);
  if (bfs.reached != n) {
    throw std::invalid_argument("ear_decomposition: graph disconnected");
  }
  RootedSpanningTree tree;
  tree.root = root;
  tree.parent = bfs.parent;
  tree.parent_edge = bfs.parent_edge;
  const ChildrenCsr children = build_children(ex, tree.parent, root);
  const LevelStructure levels = build_levels(ex, children, root);
  preorder_and_size(ex, children, levels, root, tree.pre, tree.sub);
  const LcaIndex lca(ex, tree, children, levels);

  // Key every nontree edge by (depth of lca, nontree rank): ears with
  // shallower apexes come first, which puts every ear's endpoints on
  // earlier ears.
  std::vector<std::uint8_t> in_tree(m, 0);
  ex.parallel_for(n, [&](std::size_t v) {
    if (bfs.parent_edge[v] != kNoEdge) in_tree[bfs.parent_edge[v]] = 1;
  });
  std::vector<vid> nontree_rank(m);
  ex.parallel_for(m, [&](std::size_t e) {
    nontree_rank[e] = in_tree[e] ? 0 : 1;
  });
  const vid num_nontree =
      exclusive_scan(ex, nontree_rank.data(), nontree_rank.data(), m, vid{0});

  constexpr std::uint64_t kInf = ~std::uint64_t{0};
  std::vector<std::uint64_t> key_of_nontree(num_nontree, kInf);
  std::vector<std::uint64_t> val(n, kInf);
  // Per-vertex gather over the CSR (no atomics needed: one writer per
  // vertex).
  ex.parallel_for(n, [&](std::size_t v) {
    const auto eids = csr.incident_edges(v);
    std::uint64_t best = kInf;
    for (const eid e : eids) {
      if (in_tree[e]) continue;
      const vid apex = lca.lca(g.edges[e].u, g.edges[e].v);
      const std::uint64_t key =
          (static_cast<std::uint64_t>(levels.depth[apex]) << 32) |
          nontree_rank[e];
      best = std::min(best, key);
    }
    val[v] = best;
  });
  ex.parallel_for(m, [&](std::size_t e) {
    if (in_tree[e]) return;
    const vid apex = lca.lca(g.edges[e].u, g.edges[e].v);
    key_of_nontree[nontree_rank[e]] =
        (static_cast<std::uint64_t>(levels.depth[apex]) << 32) |
        nontree_rank[e];
  });

  // Subtree minimum: tree edge (v, p(v)) joins the ear of the smallest
  // covering key.  A covering nontree edge has its apex strictly above
  // v, so a winning key with depth >= depth(v) means a bridge.
  for (vid d = levels.num_levels; d-- > 0;) {
    const auto level = levels.level(d);
    const auto body = [&](std::size_t k) {
      const vid v = level[k];
      std::uint64_t acc = val[v];
      for (const vid c : children.children(v)) acc = std::min(acc, val[c]);
      val[v] = acc;
    };
    if (level.size() < 2048) {
      for (std::size_t k = 0; k < level.size(); ++k) body(k);
    } else {
      ex.parallel_for(level.size(), body);
    }
  }

  // Ear numbers: nontree edges sorted by key (keys are unique — the
  // low bits carry the nontree rank).
  std::vector<vid> ear_number(num_nontree);
  {
    std::vector<std::uint64_t> order(key_of_nontree);
    std::sort(order.begin(), order.end());
    std::map<std::uint64_t, vid> position;
    for (vid i = 0; i < num_nontree; ++i) position.emplace(order[i], i);
    for (vid r = 0; r < num_nontree; ++r) {
      ear_number[r] = position.at(key_of_nontree[r]);
    }
  }

  EarDecomposition out;
  out.num_ears = num_nontree;
  out.ear_of_edge.assign(m, kNoVertex);
  for (vid v = 0; v < n; ++v) {
    if (v == root) continue;
    const std::uint64_t key = val[v];
    if (key == kInf || (key >> 32) >= levels.depth[v]) {
      throw std::invalid_argument(
          "ear_decomposition: graph has a bridge (not 2-edge-connected)");
    }
    out.ear_of_edge[bfs.parent_edge[v]] =
        ear_number[static_cast<vid>(key & 0xffffffffu)];
  }
  ex.parallel_for(m, [&](std::size_t e) {
    if (!in_tree[e]) out.ear_of_edge[e] = ear_number[nontree_rank[e]];
  });

  // Count closed ears (valid, but callers interested in openness —
  // e.g. st-numbering — need to know).
  {
    std::vector<vid> edge_count(out.num_ears, 0);
    std::vector<vid> vertex_count(out.num_ears, 0);
    std::map<std::pair<vid, vid>, int> seen;  // (ear, vertex) dedup
    for (eid e = 0; e < m; ++e) {
      const vid id = out.ear_of_edge[e];
      ++edge_count[id];
      for (const vid v : {g.edges[e].u, g.edges[e].v}) {
        if (seen.emplace(std::make_pair(id, v), 0).second) {
          ++vertex_count[id];
        }
      }
    }
    for (vid id = 1; id < out.num_ears; ++id) {
      // A path has one more vertex than edges; a cycle has equal.
      if (vertex_count[id] == edge_count[id]) ++out.num_closed_ears;
    }
  }

  if (!is_ear_decomposition(g, out)) {
    throw std::invalid_argument(
        "ear_decomposition: input is not 2-edge-connected");
  }
  return out;
}

bool is_ear_decomposition(const EdgeList& g, const EarDecomposition& ears,
                          bool require_open) {
  const eid m = g.m();
  if (ears.ear_of_edge.size() != m || ears.num_ears == 0) return false;
  std::vector<std::vector<eid>> by_ear(ears.num_ears);
  for (eid e = 0; e < m; ++e) {
    const vid id = ears.ear_of_edge[e];
    if (id >= ears.num_ears) return false;
    by_ear[id].push_back(e);
  }

  std::vector<std::uint8_t> visited(g.n, 0);
  std::map<vid, int> degree;  // within the current ear
  for (vid id = 0; id < ears.num_ears; ++id) {
    const auto& ear = by_ear[id];
    if (ear.empty()) return false;
    degree.clear();
    UnionFind uf(g.n);
    std::size_t merges = 0;
    for (const eid e : ear) {
      ++degree[g.edges[e].u];
      ++degree[g.edges[e].v];
      if (uf.unite(g.edges[e].u, g.edges[e].v)) ++merges;
    }
    if (merges != degree.size() - 1) return false;  // must be connected

    if (id == 0) {
      // E0: simple cycle over fresh vertices.
      if (degree.size() != ear.size()) return false;
      for (const auto& [v, d] : degree) {
        if (d != 2 || visited[v]) return false;
      }
    } else if (degree.size() == ear.size() + 1) {
      // Open ear: simple path, both (distinct) endpoints visited,
      // internal vertices fresh.
      vid endpoints = 0;
      for (const auto& [v, d] : degree) {
        if (d == 1) {
          ++endpoints;
          if (!visited[v]) return false;
        } else if (d == 2) {
          if (visited[v]) return false;
        } else {
          return false;
        }
      }
      if (endpoints != 2) return false;
    } else if (degree.size() == ear.size()) {
      // Closed ear: simple cycle attached at exactly one visited vertex.
      if (require_open) return false;
      vid attachments = 0;
      for (const auto& [v, d] : degree) {
        if (d != 2) return false;
        if (visited[v]) ++attachments;
      }
      if (attachments != 1) return false;
    } else {
      return false;
    }
    for (const auto& [v, d] : degree) visited[v] = 1;
  }
  return true;
}

}  // namespace parbcc
