#include "core/articulation.hpp"

#include <atomic>
#include <span>

#include "scan/compact.hpp"

namespace parbcc {

void annotate_cut_info(Executor& ex, Workspace& ws, const EdgeList& g,
                       BccResult& result) {
  const vid n = g.n;
  const eid m = g.m();
  const vid k = result.num_components;
  Workspace::Frame frame(ws);

  // --- Articulation points: incident to >= 2 distinct labels. --------
  // The articulation flags are set in place on the result vector via
  // atomic_ref; only the first-seen label per vertex needs scratch.
  result.is_articulation.assign(n, 0);
  std::span<vid> first_label = ws.alloc<vid>(n);
  ex.parallel_for(n, [&](std::size_t v) { first_label[v] = kNoVertex; });

  ex.parallel_for(m, [&](std::size_t e) {
    if (g.edges[e].u == g.edges[e].v) return;  // loops never articulate
    const vid label = result.edge_component[e];
    for (const vid v : {g.edges[e].u, g.edges[e].v}) {
      vid expected = kNoVertex;
      if (!std::atomic_ref(first_label[v])
               .compare_exchange_strong(expected, label,
                                        std::memory_order_acq_rel) &&
          expected != label) {
        std::atomic_ref(result.is_articulation[v])
            .store(1, std::memory_order_relaxed);
      }
    }
  });

  // --- Bridges: components of size one. -------------------------------
  std::span<eid> comp_size = ws.alloc<eid>(k);
  ex.parallel_for(k, [&](std::size_t c) { comp_size[c] = 0; });
  ex.parallel_for(m, [&](std::size_t e) {
    std::atomic_ref(comp_size[result.edge_component[e]])
        .fetch_add(1, std::memory_order_relaxed);
  });
  result.bridges.resize(m);
  const std::size_t bridge_count = pack_into(
      ex, ws, m,
      [&](std::size_t e) {
        // A single-edge component that is not a self-loop is a bridge.
        return comp_size[result.edge_component[e]] == 1 &&
               g.edges[e].u != g.edges[e].v;
      },
      [&](std::size_t dst, std::size_t e) {
        result.bridges[dst] = static_cast<eid>(e);
      });
  result.bridges.resize(bridge_count);
}

void annotate_cut_info(Executor& ex, const EdgeList& g, BccResult& result) {
  Workspace ws;
  annotate_cut_info(ex, ws, g, result);
}

}  // namespace parbcc
