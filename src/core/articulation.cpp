#include "core/articulation.hpp"

#include <atomic>

#include "scan/compact.hpp"

namespace parbcc {

void annotate_cut_info(Executor& ex, const EdgeList& g, BccResult& result) {
  const vid n = g.n;
  const eid m = g.m();
  const vid k = result.num_components;

  // --- Articulation points: incident to >= 2 distinct labels. --------
  result.is_articulation.assign(n, 0);
  std::vector<std::atomic<vid>> first_label(n);
  ex.parallel_for(n, [&](std::size_t v) {
    first_label[v].store(kNoVertex, std::memory_order_relaxed);
  });
  std::vector<std::atomic<std::uint8_t>> art(n);
  ex.parallel_for(n, [&](std::size_t v) {
    art[v].store(0, std::memory_order_relaxed);
  });

  ex.parallel_for(m, [&](std::size_t e) {
    if (g.edges[e].u == g.edges[e].v) return;  // loops never articulate
    const vid label = result.edge_component[e];
    for (const vid v : {g.edges[e].u, g.edges[e].v}) {
      vid expected = kNoVertex;
      if (!first_label[v].compare_exchange_strong(
              expected, label, std::memory_order_acq_rel) &&
          expected != label) {
        art[v].store(1, std::memory_order_relaxed);
      }
    }
  });
  ex.parallel_for(n, [&](std::size_t v) {
    result.is_articulation[v] = art[v].load(std::memory_order_relaxed);
  });

  // --- Bridges: components of size one. -------------------------------
  std::vector<std::atomic<eid>> comp_size(k);
  ex.parallel_for(k, [&](std::size_t c) {
    comp_size[c].store(0, std::memory_order_relaxed);
  });
  ex.parallel_for(m, [&](std::size_t e) {
    comp_size[result.edge_component[e]].fetch_add(1,
                                                  std::memory_order_relaxed);
  });
  result.bridges.resize(m);
  const std::size_t bridge_count = pack_into(
      ex, m,
      [&](std::size_t e) {
        // A single-edge component that is not a self-loop is a bridge.
        return comp_size[result.edge_component[e]].load(
                   std::memory_order_relaxed) == 1 &&
               g.edges[e].u != g.edges[e].v;
      },
      [&](std::size_t dst, std::size_t e) {
        result.bridges[dst] = static_cast<eid>(e);
      });
  result.bridges.resize(bridge_count);
}

}  // namespace parbcc
