#pragma once

#include <vector>

#include "graph/edge_list.hpp"
#include "util/types.hpp"

/// \file st_numbering.hpp
/// st-numbering (Even-Tarjan 1976) — the bridge from biconnectivity to
/// the planarity-testing application the paper names in its
/// introduction: every classic planarity algorithm (LEC, PQ-trees)
/// consumes an st-numbered biconnected graph.
///
/// An st-numbering for an edge {s, t} assigns 1..n to the vertices so
/// that s gets 1, t gets n, and every other vertex has both a
/// lower-numbered and a higher-numbered neighbour.  One exists iff the
/// graph is biconnected (Lempel-Even-Cederbaum).
///
/// The implementation is the Even-Tarjan pathfinding algorithm: one
/// DFS from s whose first tree edge is (s, t) computes lowpoints, then
/// a stack-driven pathfinder consumes each edge once, so the whole
/// construction is O(n + m).  (This consumer-side step is inherently
/// sequential; the parallel part of the pipeline is producing the
/// biconnectivity certificate that feeds it.)

namespace parbcc {

struct StNumbering {
  /// number[v] in [1, n]; number[s] == 1, number[t] == n.
  std::vector<vid> number;
};

/// Requires: g connected, biconnected, simple (no self-loops; parallel
/// edges are tolerated), n >= 2, and {s, t} an edge of g.
/// Throws std::invalid_argument otherwise.
StNumbering st_number(const EdgeList& g, vid s, vid t);

/// Check the defining property directly (s lowest, t highest, everyone
/// else has a smaller and a larger neighbour).
bool is_valid_st_numbering(const EdgeList& g, vid s, vid t,
                           const StNumbering& st);

}  // namespace parbcc
