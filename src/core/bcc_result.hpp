#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "connectivity/shiloach_vishkin.hpp"
#include "core/aux_graph.hpp"
#include "eulertour/euler_tour.hpp"
#include "spanning/bfs_tree.hpp"
#include "util/thread_pool.hpp"
#include "util/trace.hpp"
#include "util/types.hpp"

/// \file bcc_result.hpp
/// Public result and option types of the biconnected-components API.

namespace parbcc {

class Csr;

/// Which implementation to run (paper nomenclature).
enum class BccAlgorithm {
  /// Hopcroft-Tarjan DFS, the paper's "best sequential implementation".
  kSequential,
  /// Direct SMP emulation of Tarjan-Vishkin (paper §3.1).
  kTvSmp,
  /// Engineered TV: merged spanning/root steps, level-sweep tree
  /// computations (paper §3.2).
  kTvOpt,
  /// The paper's new edge-filtering algorithm (Alg. 2, §4).
  kTvFilter,
  /// Connectivity-first skeleton algorithm (Dong, Wang, Gu & Sun 2023):
  /// BFS spanning tree, compressed Euler-tour tagging (preorder
  /// intervals + subtree low/high), and BCC labels straight out of a
  /// concurrent union-find over the skeleton — no auxiliary graph, no
  /// per-edge TV machinery.
  kFastBcc,
  /// Measured cost model over cheap probes: Hopcroft-Tarjan for tiny
  /// inputs, TV-opt when the distinct-edge count is at most 4n (the
  /// paper's §4 fallback rule), and otherwise whichever of FastBCC /
  /// TV-filter the fitted per-element costs predict faster (degree
  /// skew penalizes FastBCC's union-find hooking).  Degenerate inputs
  /// (no edges after self-loop stripping) dispatch without probing.
  kAuto,
};

const char* to_string(BccAlgorithm algorithm);

/// Adjacency storage the CSR-hot loops read (the BFS tree's
/// top-down/bottom-up sweeps and FastBCC's low/high tagging sweep).
/// kCompressed streams delta-compressed rows (~0.45x the bytes of the
/// plain 4-byte arcs, see compressed_csr.hpp) and decodes on the fly —
/// a bandwidth-for-cycles trade that pays on high-degree graphs.  The
/// edge-list sweeps (aux graph, skeleton hooks, labeling) are
/// unaffected: they read the EdgeList, not the CSR.
enum class CsrBackend {
  kPlain,
  kCompressed,
};

/// Canonical span names of the paper's Fig. 4 steps.  The drivers open
/// TraceSpans under these names and derive_step_times matches rollup
/// phases against them, so StepTimes can never drift from the trace.
/// Substrate files spell the same strings as literals (they sit below
/// core/ in the layering); trace_test pins the two spellings together.
namespace steps {
inline constexpr const char kConversion[] = "conversion";
inline constexpr const char kSpanningTree[] = "spanning_tree";
inline constexpr const char kEulerTour[] = "euler_tour";
inline constexpr const char kRootTree[] = "root_tree";
inline constexpr const char kLowHigh[] = "low_high";
inline constexpr const char kLabelEdge[] = "label_edge";
inline constexpr const char kConnectedComponents[] = "connected_components";
inline constexpr const char kFiltering[] = "filtering";
}  // namespace steps

/// Wall-clock seconds per algorithm step, named after the bars of the
/// paper's Fig. 4.  Steps an algorithm does not perform stay 0.
struct StepTimes {
  /// Input-representation conversion (edge list -> adjacency): the
  /// cost the paper highlights as "the discrepancy among the input
  /// representations ... brings non-negligible conversion cost".
  /// Charged by TV-opt and TV-filter, whose traversals need adjacency.
  double conversion = 0;
  double spanning_tree = 0;
  double euler_tour = 0;
  double root_tree = 0;
  double low_high = 0;
  double label_edge = 0;
  double connected_components = 0;
  double filtering = 0;
  /// Wall-clock the trace rollup could not attribute to any Fig. 4
  /// step: dispatch overhead, cut-info annotation, label
  /// normalization, scatter-backs.  accounted() + unattributed == total
  /// up to clock granularity — the books balance by construction.
  double unattributed = 0;
  double total = 0;

  double accounted() const {
    return conversion + spanning_tree + euler_tour + root_tree + low_high +
           label_edge + connected_components + filtering;
  }
};

/// Fill StepTimes from a trace rollup: each step is the summed
/// inclusive time of the same-named phases (at any nesting depth),
/// `total` is the caller's wall clock, and the gap lands in
/// `unattributed` (clamped at 0 — charges can make accounted time
/// exceed the measured wall by clock granularity).
StepTimes derive_step_times(const TraceReport& report, double total_seconds);

struct BccOptions {
  BccAlgorithm algorithm = BccAlgorithm::kAuto;
  /// SPMD width for the parallel algorithms (>= 1).
  int threads = 1;
  /// Root vertex for spanning trees (only its component's numbering
  /// changes; results are root-independent as partitions).
  vid root = 0;
  /// Also compute per-vertex articulation flags and the bridge list.
  bool compute_cut_info = true;
  /// List-ranking algorithm for TV-SMP's Root-tree step.
  ListRanker ranker = ListRanker::kHelmanJaja;
  /// Arc-sorting strategy for TV-SMP's Euler-tour step.  The bucket
  /// scatter is the default everywhere; the paper-faithful sample sort
  /// stays opt-in (paper_fidelity_test pins it).
  ArcSort arc_sort = ArcSort::kCountingSort;
  /// Frontier policy for TV-filter's BFS tree (kAuto = Beamer's
  /// direction-optimizing hybrid; forced modes for the ablation bench).
  BfsMode bfs_mode = BfsMode::kAuto;
  /// Hooking/shortcut scheme for every Shiloach-Vishkin use — the
  /// spanning forests of TV-SMP/TV-opt/TV-filter and, under
  /// kMaterialized aux_mode, the auxiliary-graph components of all
  /// three (kAuto = FastSV).
  SvMode sv_mode = SvMode::kAuto;
  /// Alg. 1 route for the TV drivers: kFused hooks aux pairs into a
  /// concurrent union-find as they are generated (no staged 3m buffer,
  /// no compaction); kMaterialized builds G' explicitly and solves it
  /// with Shiloach-Vishkin — the paper-faithful reference kept for
  /// fidelity tests and the ablation bench.
  AuxMode aux_mode = AuxMode::kFused;
  /// Loop scheduling model for the solve.  kWorkSteal (default) runs
  /// the parallel loops on the lazy-splitting fork-join scheduler with
  /// nested per-vertex regions in the skew-sensitive hot paths; kSpmd
  /// pins the paper's flat static-partition/shared-counter schedule
  /// (the printed algorithm — paper_fidelity_test runs under it).
  ExecMode exec_mode = ExecMode::kWorkSteal;
  /// Adjacency backend for the CSR-hot traversals (BFS + FastBCC's
  /// low/high sweep).  kCompressed builds (or reuses — a mapped .pbg
  /// with a compressed section, or a PreparedGraph that solved with it
  /// before) the delta-compressed rows and emits the bytes actually
  /// streamed as the csr_decode_bytes counter.  Algorithms that never
  /// touch the CSR (TV-SMP, the sequential driver) ignore it.
  CsrBackend csr_backend = CsrBackend::kPlain;
  /// Adjacency the caller already holds for the input graph, so the
  /// dispatcher never rebuilds it (StepTimes::conversion then reports
  /// 0).  Must be the Csr::build of exactly the edge list passed in;
  /// ignored when it cannot apply (size mismatch, input with
  /// self-loops, or a disconnected input that is decomposed into
  /// relabeled subproblems).
  const Csr* prebuilt_csr = nullptr;
  /// Event sink for the solve.  When null each driver records into a
  /// private Trace just long enough to derive StepTimes; point this at
  /// a caller-owned Trace to keep the raw events (Chrome export, span
  /// inspection across repeated solves).
  Trace* trace = nullptr;
};

/// Biconnected components of a graph, as a labeling of its edges.
struct BccResult {
  /// Number of biconnected components.
  vid num_components = 0;
  /// Component label per edge, contiguous in [0, num_components).
  /// Two edges share a label iff they lie in the same biconnected
  /// component.  Label values themselves depend on the algorithm and
  /// root; only the partition is canonical.
  std::vector<vid> edge_component;
  /// Per-vertex articulation flags (empty unless compute_cut_info).
  std::vector<std::uint8_t> is_articulation;
  /// Edge ids of bridges, ascending (empty unless compute_cut_info).
  /// A bridge is exactly a single-edge biconnected component.
  std::vector<eid> bridges;
  /// Per-step timing of the run, derived from `trace` (see
  /// derive_step_times) — never measured separately.
  StepTimes times;
  /// Rollup of the solve's trace slice: per-phase inclusive/exclusive
  /// seconds, call counts, and counter totals (SV rounds, BFS
  /// inspections, arena peak, ...).
  TraceReport trace;
  /// High-water mark of the context's Workspace arena during this solve
  /// (bytes).  0 when the solve never touched the arena (e.g. serial
  /// fast paths).
  std::size_t peak_workspace_bytes = 0;
  /// Arena allocations served from existing capacity during this solve.
  /// On a warm BccContext every allocation is a hit; a cold context
  /// additionally grows backing blocks (visible as hits < allocations).
  std::uint64_t arena_reuse_hits = 0;
};

}  // namespace parbcc
