#pragma once

#include <span>
#include <vector>

#include "eulertour/tree_computations.hpp"
#include "graph/edge_list.hpp"
#include "util/thread_pool.hpp"
#include "util/trace.hpp"
#include "util/workspace.hpp"

/// \file lowhigh.hpp
/// TV step 4: low(v) / high(v) values.
///
/// low(v) is the smallest preorder number reachable from v's subtree in
/// one hop — the minimum over the subtree's own preorder numbers and
/// the preorder numbers of nontree neighbours of subtree vertices;
/// high(v) is the corresponding maximum.  Computed in two stages:
/// per-vertex local extrema over incident nontree edges (atomic
/// min/max, one sweep over the edge list), then a subtree aggregation.
///
/// Two aggregation back-ends mirror the paper's two pipelines:
///  - kRmq (TV-SMP): scatter local values into preorder order and query
///    each subtree's interval on a sparse table — O(n log n) build.
///  - kLevelSweep (TV-opt): bottom-up min/max along tree levels — O(n).
///
/// The RMQ variant's preorder scatter buffers and the O(n log n) sparse
/// tables themselves are Workspace scratch.

namespace parbcc {

struct LowHigh {
  std::vector<vid> low;   // in preorder-number space (1-based)
  std::vector<vid> high;
};

/// Sparse-table variant.  `tree_owner[e]` is the child endpoint of tree
/// edge e, kNoVertex when e is a nontree edge.  Both variants split
/// their trace into "lh_local" (edge sweep) and "lh_aggregate"
/// (sparse-table build+query / level sweeps).
LowHigh compute_low_high_rmq(Executor& ex, Workspace& ws,
                             std::span<const Edge> edges,
                             const RootedSpanningTree& tree,
                             std::span<const vid> tree_owner,
                             Trace* trace = nullptr);
LowHigh compute_low_high_rmq(Executor& ex, std::span<const Edge> edges,
                             const RootedSpanningTree& tree,
                             std::span<const vid> tree_owner);

/// Level-sweep variant; `children`/`levels` come from the TV-opt
/// rooting pipeline.  Aggregation runs in place over the result
/// vectors, so no workspace scratch is needed.
LowHigh compute_low_high_levels(Executor& ex, std::span<const Edge> edges,
                                const RootedSpanningTree& tree,
                                std::span<const vid> tree_owner,
                                const ChildrenCsr& children,
                                const LevelStructure& levels,
                                Trace* trace = nullptr);

}  // namespace parbcc
