#pragma once

#include "core/bcc_result.hpp"
#include "graph/edge_list.hpp"
#include "util/thread_pool.hpp"

/// \file bcc.hpp
/// Public entry point of parbcc: biconnected components of an
/// undirected graph.
///
///   #include "core/bcc.hpp"
///   parbcc::BccOptions opt;
///   opt.algorithm = parbcc::BccAlgorithm::kTvFilter;
///   opt.threads = 8;
///   parbcc::BccResult r = parbcc::biconnected_components(graph, opt);
///
/// The dispatcher accepts any undirected graph: disconnected inputs are
/// decomposed into connected components first (each is solved with the
/// selected algorithm), parallel edges are handled natively, and
/// self-loops are split off as their own single-edge components.
/// kAuto applies the paper's rule: TV-filter when m > 4n, else TV-opt.

namespace parbcc {

/// Compute biconnected components using a caller-provided executor
/// (its thread count wins over options.threads).
BccResult biconnected_components(Executor& ex, const EdgeList& g,
                                 const BccOptions& options = {});

/// Convenience overload creating an Executor(options.threads).
BccResult biconnected_components(const EdgeList& g,
                                 const BccOptions& options = {});

}  // namespace parbcc
