#pragma once

#include "core/bcc_context.hpp"
#include "core/bcc_result.hpp"
#include "graph/edge_list.hpp"
#include "util/thread_pool.hpp"

/// \file bcc.hpp
/// Public entry point of parbcc: biconnected components of an
/// undirected graph.
///
///   #include "core/bcc.hpp"
///   parbcc::BccContext ctx(/*threads=*/8);
///   parbcc::BccOptions opt;
///   opt.algorithm = parbcc::BccAlgorithm::kTvFilter;
///   parbcc::BccResult r = parbcc::biconnected_components(ctx, graph, opt);
///   // ...further solves on ctx reuse the thread pool, the scratch
///   // arena and (for the same graph object) the adjacency cache.
///
/// The dispatcher accepts any undirected graph: disconnected inputs are
/// decomposed into connected components first (each is solved with the
/// selected algorithm), parallel edges are handled natively, and
/// self-loops are split off as their own single-edge components.
/// kAuto applies the paper's rule: TV-filter when m > 4n, else TV-opt.

namespace parbcc {

/// Compute biconnected components inside a reusable solve session.
/// All O(n + m) scratch is drawn from the context's arena; the result
/// reports the arena high-water mark and reuse telemetry.
BccResult biconnected_components(BccContext& ctx, const EdgeList& g,
                                 const BccOptions& options = {});

/// Compute biconnected components using a caller-provided executor
/// (its thread count wins over options.threads).  Owns a transient
/// context per call.
BccResult biconnected_components(Executor& ex, const EdgeList& g,
                                 const BccOptions& options = {});

/// Convenience overload creating an Executor(options.threads).
BccResult biconnected_components(const EdgeList& g,
                                 const BccOptions& options = {});

}  // namespace parbcc
