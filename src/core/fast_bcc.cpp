#include <algorithm>
#include <stdexcept>

#include "connectivity/concurrent_union_find.hpp"
#include "connectivity/shiloach_vishkin.hpp"
#include "core/drivers.hpp"
#include "eulertour/tree_computations.hpp"
#include "graph/csr.hpp"
#include "spanning/bfs_tree.hpp"
#include "util/padded.hpp"
#include "util/timer.hpp"
#include "util/trace.hpp"

/// \file fast_bcc.cpp
/// FastBCC (Dong, Wang, Gu & Sun, PPoPP 2023) adapted to this
/// codebase's primitives.  The pipeline replaces the whole
/// Tarjan-Vishkin chain (Euler tour / low-high per edge / auxiliary
/// graph) with tags on the spanning tree itself:
///
///  1. Spanning-tree: direction-optimizing BFS (shared with TV-filter).
///  2. Compressed Euler-tour tagging: 1-based preorder `first[v]` and
///     interval end `last[v] = first[v] + sub[v] - 1` from the level
///     sweeps; then low[v] / high[v] = min / max neighbour preorder
///     over v's whole subtree (one CSR sweep + subtree min/max).
///  3. Skeleton connectivity via the concurrent union-find: the tree
///     edge (parent(v), v) hooks unless it is *critical* — every edge
///     out of subtree(v) stays inside parent(v)'s preorder interval
///     (low[v] >= first[parent], high[v] <= last[parent]), in which
///     case parent(v) is the head of the BCC containing that tree edge
///     and v seeds a new cluster.  Non-tree *cross* edges (neither
///     endpoint an ancestor of the other) hook their endpoints; back
///     edges are skipped — the tree path below them is non-critical
///     edge by edge, so they add nothing the tree sweep did not.
///  4. Label-edge: every edge belongs to the cluster of its deeper
///     endpoint (the one that is not the BCC head); for cross edges
///     both endpoints share a cluster by step 3, so either works.
///
/// Correctness of the criticality rule does not need a DFS tree: the
/// test reads only preorder intervals, which any rooted spanning tree
/// provides, and BFS trees merely add cross edges — handled in step 3.
/// Root children are always critical (every preorder lies inside the
/// root's interval), so the root is the head of each of its BCCs and
/// never labels an edge.

namespace parbcc {
namespace {

/// Out-of-line hub reduction for the low/high sweep: min/max neighbour
/// preorder over a high-degree adjacency via a nested parallel region
/// (the per-vertex inner parallel_for of PASGAL's euler_tour_tree).
/// Deliberately noinline and value-in / value-out: inlining it put an
/// inner closure inside the per-vertex lambda that captured the common
/// path's lo/hi accumulators by reference, pinning them to the stack
/// and blocking vectorization of the tight degree loop — a 4x low_high
/// regression on graphs that never take the hub path at all.
[[gnu::noinline]] std::pair<vid, vid> hub_pre_minmax(
    Executor& ex, const vid* pre, std::span<const vid> nbrs, vid seed) {
  constexpr std::size_t kInnerGrain = 1024;
  constexpr std::size_t kMaxChunks = 64;
  const std::size_t deg = nbrs.size();
  const std::size_t chunks = std::min(kMaxChunks, deg / kInnerGrain);
  Padded<std::pair<vid, vid>> part[kMaxChunks];
  ex.parallel_for(0, chunks, 1, [&](std::size_t c) {
    const auto [cb, ce] = Executor::block_range(deg, static_cast<int>(chunks),
                                                static_cast<int>(c));
    vid l = seed;
    vid h = seed;
    for (std::size_t j = cb; j < ce; ++j) {
      const vid pw = pre[nbrs[j]];
      l = std::min(l, pw);
      h = std::max(h, pw);
    }
    part[c].value = {l, h};
  });
  vid lo = seed;
  vid hi = seed;
  for (std::size_t c = 0; c < chunks; ++c) {
    lo = std::min(lo, part[c].value.first);
    hi = std::max(hi, part[c].value.second);
  }
  return {lo, hi};
}

}  // namespace

BccResult fast_bcc(Executor& ex, const EdgeList& g, const BccOptions& opt) {
  Workspace ws;
  // Representation conversion, as in TV-opt / TV-filter: the BFS and
  // the tagging sweep both need adjacency.
  const PreparedGraph pg(ex, ws, g);
  return fast_bcc(ex, ws, pg, opt);
}

BccResult fast_bcc(Executor& ex, const PreparedGraph& pg,
                   const BccOptions& opt) {
  Workspace ws;
  return fast_bcc(ex, ws, pg, opt);
}

BccResult fast_bcc(Executor& ex, Workspace& ws, const PreparedGraph& pg,
                   const BccOptions& opt) {
  const EdgeList& g = pg.graph();
  const Csr& csr = pg.csr();
  BccResult result;
  Trace local_trace(ex.threads());
  Trace& tr = opt.trace != nullptr ? *opt.trace : local_trace;
  const Trace::Mark mark = tr.mark();
  Timer total;
  if (pg.conversion_seconds() > 0) {
    tr.charge(steps::kConversion, pg.conversion_seconds());
  }
  const vid n = g.n;
  const eid m = g.m();
  const int p = ex.threads();

  // Compressed backend: build (first use) or reuse the delta-coded
  // rows; the build is a representation-conversion cost, booked like
  // the CSR build itself.
  const CompressedCsr* cc = nullptr;
  if (opt.csr_backend == CsrBackend::kCompressed) {
    Timer ctimer;
    cc = &pg.ensure_compressed(ex);
    const double built = ctimer.seconds();
    if (built > 0) tr.charge(steps::kConversion, built);
  }

  // Step 1: BFS spanning tree (Beamer hybrid, as TV-filter).
  BfsTree bfs;
  {
    TraceSpan span(tr, steps::kSpanningTree);
    bfs = cc != nullptr ? bfs_tree(ex, ws, *cc, opt.root, opt.bfs_mode, &tr)
                        : bfs_tree(ex, ws, csr, opt.root, opt.bfs_mode, &tr);
  }
  if (bfs.reached != n) {
    throw std::invalid_argument("fast_bcc: graph must be connected");
  }

  // Step 2a: rooted-tree structure (child lists + level buckets), the
  // compressed substitute for materializing the Euler circuit.
  RootedSpanningTree tree;
  ChildrenCsr children;
  LevelStructure levels;
  {
    TraceSpan span(tr, steps::kEulerTour);
    tree.root = opt.root;
    tree.parent = std::move(bfs.parent);
    tree.parent_edge = std::move(bfs.parent_edge);
    children = build_children(ex, ws, tree.parent, tree.root, &tr);
    levels = build_levels(ex, children, tree.root, &tr);
  }
  {
    TraceSpan span(tr, steps::kRootTree);
    preorder_and_size(ex, children, levels, tree.root, tree.pre, tree.sub,
                      &tr);
  }

  // All per-vertex scratch for the rest of the solve: low/high tags and
  // the union-find parent array — 3n vids, the whole reason this
  // driver's high-water mark undercuts TV-filter's per-edge buffers.
  Workspace::Frame frame(ws);
  std::span<vid> low = ws.alloc<vid>(n);
  std::span<vid> high = ws.alloc<vid>(n);
  std::span<vid> cluster = ws.alloc<vid>(n);

  // Step 2b: low/high tagging.  Tree neighbours may participate: their
  // preorders always lie inside the parent interval the criticality
  // test checks against, so they never flip a verdict and filtering
  // them would only cost branches.  The per-vertex scan is
  // degree-skewed, so the chunks are claimed dynamically — and under
  // work-stealing a heavy hub's adjacency itself becomes a nested
  // parallel region (the per-vertex inner parallel_for of PASGAL's
  // euler_tour_tree), so one vertex owning a quarter of the edges no
  // longer strands its whole scan on a single worker.
  {
    TraceSpan span(tr, steps::kLowHigh);
    const vid* pre = tree.pre.data();
    if (cc != nullptr) {
      // Compressed rows stream sequentially; hubs stay on their worker
      // (no nested split into a bitstream), which the dynamic chunk
      // claiming absorbs.  The decoded bytes are the sweep's whole
      // memory traffic on the adjacency — the counter the bench's
      // bytes-streamed gate reads.
      std::span<Padded<std::uint64_t>> t_decode =
          ws.alloc<Padded<std::uint64_t>>(static_cast<std::size_t>(p));
      for (int t = 0; t < p; ++t) {
        t_decode[static_cast<std::size_t>(t)].value = 0;
      }
      ex.parallel_for_dynamic(n, /*grain=*/512, [&](std::size_t v) {
        vid lo = pre[v];
        vid hi = lo;
        const std::size_t bytes =
            cc->decode_row(static_cast<vid>(v), [&](vid w, eid) {
              const vid pw = pre[w];
              lo = std::min(lo, pw);
              hi = std::max(hi, pw);
              return false;
            });
        low[v] = lo;
        high[v] = hi;
        t_decode[static_cast<std::size_t>(ex.worker_id())].value += bytes;
      });
      std::uint64_t decoded = 0;
      for (int t = 0; t < p; ++t) {
        decoded += t_decode[static_cast<std::size_t>(t)].value;
      }
      tr.counter("csr_decode_bytes", static_cast<double>(decoded));
    } else {
      constexpr std::size_t kHubDegree = 2048;  // 2x the helper's grain
      const bool nest =
          ex.mode() == ExecMode::kWorkSteal && ex.threads() > 1;
      ex.parallel_for_dynamic(n, /*grain=*/512, [&](std::size_t v) {
        const std::span<const vid> nbrs = csr.neighbors(static_cast<vid>(v));
        vid lo = pre[v];
        vid hi = lo;
        if (nest && nbrs.size() > kHubDegree) {
          const std::pair<vid, vid> lh = hub_pre_minmax(ex, pre, nbrs, lo);
          lo = lh.first;
          hi = lh.second;
        } else {
          for (const vid w : nbrs) {
            const vid pw = pre[w];
            lo = std::min(lo, pw);
            hi = std::max(hi, pw);
          }
        }
        low[v] = lo;
        high[v] = hi;
      });
    }
    subtree_min(ex, children, levels, low.data());
    subtree_max(ex, children, levels, high.data());
  }

  // Step 3: skeleton connectivity.  Two hook sweeps into one
  // concurrent union-find: non-critical tree edges, then cross edges
  // (the parallel_for boundaries are the barriers separating hook and
  // read phases the structure requires).
  const ConcurrentUnionFind uf(cluster);
  {
    TraceSpan span(tr, steps::kConnectedComponents);
    ConcurrentUnionFind::init(ex, cluster);
    std::span<Padded<std::uint64_t>> thread_hooks =
        ws.alloc<Padded<std::uint64_t>>(static_cast<std::size_t>(p));
    std::span<Padded<std::uint64_t>> thread_depth =
        ws.alloc<Padded<std::uint64_t>>(static_cast<std::size_t>(p));
    std::span<Padded<std::uint64_t>> thread_critical =
        ws.alloc<Padded<std::uint64_t>>(static_cast<std::size_t>(p));
    std::span<Padded<std::uint64_t>> thread_cross =
        ws.alloc<Padded<std::uint64_t>>(static_cast<std::size_t>(p));
    for (int t = 0; t < p; ++t) {
      thread_hooks[static_cast<std::size_t>(t)].value = 0;
      thread_depth[static_cast<std::size_t>(t)].value = 0;
      thread_critical[static_cast<std::size_t>(t)].value = 0;
      thread_cross[static_cast<std::size_t>(t)].value = 0;
    }
    // Both sweeps run as chunked grained loops: chunk-local register
    // accumulation flushed into the executing worker's padded slot
    // (exclusive per slot under either scheduler), so work-stealing can
    // rebalance chunks — union-find hook depth is data-dependent and
    // the SPMD blocks serialized on the unluckiest block.
    TraceSpan hook_span(tr, "skeleton_hook");
    constexpr std::size_t kHookGrain = 2048;
    const std::size_t vchunks = (n + kHookGrain - 1) / kHookGrain;
    ex.parallel_for(0, vchunks, 1, [&](std::size_t c) {
      const std::size_t begin = c * kHookGrain;
      const std::size_t end = std::min<std::size_t>(n, begin + kHookGrain);
      std::uint64_t hooks = 0;
      std::uint64_t depth = 0;
      std::uint64_t critical = 0;
      for (std::size_t v = begin; v < end; ++v) {
        if (v == tree.root) continue;
        const vid par = tree.parent[v];
        const vid par_first = tree.pre[par];
        const vid par_last = par_first + tree.sub[par] - 1;
        if (low[v] >= par_first && high[v] <= par_last) {
          ++critical;  // parent(v) heads this BCC: v seeds the cluster
          continue;
        }
        if (uf.unite(static_cast<vid>(v), par, depth)) ++hooks;
      }
      const auto w = static_cast<std::size_t>(ex.worker_id());
      thread_hooks[w].value += hooks;
      thread_depth[w].value += depth;
      thread_critical[w].value += critical;
    });
    const std::size_t echunks = (m + kHookGrain - 1) / kHookGrain;
    ex.parallel_for(0, echunks, 1, [&](std::size_t c) {
      const std::size_t begin = c * kHookGrain;
      const std::size_t end = std::min<std::size_t>(m, begin + kHookGrain);
      std::uint64_t hooks = 0;
      std::uint64_t depth = 0;
      std::uint64_t cross = 0;
      for (std::size_t e = begin; e < end; ++e) {
        const vid u = g.edges[e].u;
        const vid v = g.edges[e].v;
        // Ancestor-related pairs cover tree edges, their parallel
        // copies and genuine back edges alike: all skipped.
        if (tree.is_ancestor(u, v) || tree.is_ancestor(v, u)) continue;
        ++cross;
        if (uf.unite(u, v, depth)) ++hooks;
      }
      const auto w = static_cast<std::size_t>(ex.worker_id());
      thread_hooks[w].value += hooks;
      thread_depth[w].value += depth;
      thread_cross[w].value += cross;
    });
    hook_span.close();
    uf.flatten(ex);
    std::uint64_t total_hooks = 0;
    std::uint64_t total_depth = 0;
    std::uint64_t total_critical = 0;
    std::uint64_t total_cross = 0;
    for (int t = 0; t < p; ++t) {
      total_hooks += thread_hooks[static_cast<std::size_t>(t)].value;
      total_depth += thread_depth[static_cast<std::size_t>(t)].value;
      total_critical += thread_critical[static_cast<std::size_t>(t)].value;
      total_cross += thread_cross[static_cast<std::size_t>(t)].value;
    }
    tr.counter("fastbcc_hooks", static_cast<double>(total_hooks));
    tr.counter("fastbcc_find_depth", static_cast<double>(total_depth));
    tr.counter("fastbcc_critical", static_cast<double>(total_critical));
    tr.counter("fastbcc_cross_edges", static_cast<double>(total_cross));
  }

  // Step 4: per-edge labels off the flattened clusters.
  {
    TraceSpan span(tr, steps::kLabelEdge);
    result.edge_component.resize(m);
    ex.parallel_for(m, [&](std::size_t e) {
      const vid u = g.edges[e].u;
      const vid v = g.edges[e].v;
      const vid deeper = tree.is_ancestor(u, v) ? v : u;
      result.edge_component[e] = cluster[deeper];
    });
  }

  {
    TraceSpan span(tr, "normalize");
    result.num_components = normalize_labels(result.edge_component);
  }
  result.trace = tr.report_since(mark);
  result.times = derive_step_times(result.trace,
                                   total.seconds() + pg.conversion_seconds());
  return result;
}

}  // namespace parbcc
