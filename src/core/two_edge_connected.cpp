#include "core/two_edge_connected.hpp"

#include <stdexcept>

#include "connectivity/shiloach_vishkin.hpp"
#include "core/bcc.hpp"
#include "scan/compact.hpp"

namespace parbcc {

TwoEdgeConnected two_edge_connected_components(Executor& ex,
                                               const EdgeList& g,
                                               const BccResult& result) {
  if (result.edge_component.size() != g.edges.size()) {
    throw std::invalid_argument(
        "two_edge_connected_components: result does not match graph");
  }
  if (result.is_articulation.size() != g.n && g.m() > 0) {
    throw std::invalid_argument(
        "two_edge_connected_components: result lacks cut info");
  }
  TwoEdgeConnected out;
  out.bridges = result.bridges;

  // Mark bridges, then one connectivity pass over the surviving edges.
  std::vector<std::uint8_t> is_bridge(g.m(), 0);
  ex.parallel_for(out.bridges.size(), [&](std::size_t k) {
    is_bridge[out.bridges[k]] = 1;
  });
  std::vector<eid> survivors;
  pack_indices(ex, g.m(),
               [&](std::size_t e) { return is_bridge[e] == 0; }, survivors);

  std::vector<Edge> kept;
  kept.reserve(survivors.size());
  for (const eid e : survivors) kept.push_back(g.edges[e]);
  out.vertex_component = connected_components_sv(ex, g.n, kept);
  out.num_components = normalize_labels(out.vertex_component);
  return out;
}

TwoEdgeConnected two_edge_connected_components(Executor& ex,
                                               const EdgeList& g) {
  BccOptions opt;
  opt.algorithm = BccAlgorithm::kAuto;
  opt.threads = ex.threads();
  opt.compute_cut_info = true;
  const BccResult result = biconnected_components(ex, g, opt);
  return two_edge_connected_components(ex, g, result);
}

}  // namespace parbcc
