#pragma once

#include <vector>

#include "graph/edge_list.hpp"
#include "util/thread_pool.hpp"

/// \file ear_decomposition.hpp
/// Ear decomposition of a bridgeless graph — the classic downstream
/// consumer of the machinery this library builds (the paper names
/// graph planarity testing as an application; planarity and
/// st-numbering algorithms are built on ear decompositions).
///
/// An ear decomposition E0, E1, ..., Ek partitions the edges so that
/// E0 is a simple cycle and each Ei (i >= 1) is a simple path or cycle
/// whose endpoints lie on earlier ears but whose internal vertices do
/// not.  A graph has an ear decomposition iff it is 2-edge-connected,
/// and an *open* one (every Ei a path with distinct endpoints) iff it
/// is biconnected (Whitney).
///
/// Parallel construction after Maon-Schieber-Vishkin: root a spanning
/// tree, key every nontree edge by the depth of its endpoints' LCA
/// (ties by edge id), and give each tree edge the minimum key among the
/// nontree edges covering it — a subtree-min computation identical in
/// shape to TV's low/high step.  Nontree edge i plus the tree edges
/// labeled i form ear i; renumbering by key order makes every ear's
/// endpoints land on earlier ears.  This construction may emit a
/// closed ear even on biconnected inputs (turning every ear open
/// requires the extra Miller-Ramachandran phase, which is out of
/// scope); `num_closed_ears` reports how many.

namespace parbcc {

struct EarDecomposition {
  /// Ear id per edge, contiguous in [0, num_ears); ear 0 is the cycle.
  std::vector<vid> ear_of_edge;
  vid num_ears = 0;
  /// Ears (other than E0) that are cycles rather than open paths.
  vid num_closed_ears = 0;
};

/// Requires `g` connected, 2-edge-connected (no bridges), with >= 3
/// vertices and no self-loops; throws std::invalid_argument otherwise.
EarDecomposition ear_decomposition(Executor& ex, const EdgeList& g,
                                   vid root = 0);

/// Structural check used by tests and callers: verifies the ear
/// properties directly against the graph (E0 a simple cycle, later
/// ears simple paths or cycles attached to earlier ears with fresh
/// internal vertices).  Pass require_open to also reject closed ears.
bool is_ear_decomposition(const EdgeList& g, const EarDecomposition& ears,
                          bool require_open = false);

}  // namespace parbcc
