#include <stdexcept>

#include "connectivity/shiloach_vishkin.hpp"
#include "core/drivers.hpp"
#include "core/tv_core.hpp"
#include "graph/csr.hpp"
#include "scan/compact.hpp"
#include "spanning/bfs_tree.hpp"
#include "spanning/sv_tree.hpp"
#include "util/bitvector.hpp"
#include "util/timer.hpp"
#include "util/trace.hpp"

namespace parbcc {

BccResult tv_filter_bcc(Executor& ex, const EdgeList& g,
                        const BccOptions& opt) {
  Workspace ws;
  // Representation conversion, as in TV-opt.
  const PreparedGraph pg(ex, ws, g);
  return tv_filter_bcc(ex, ws, pg, opt);
}

BccResult tv_filter_bcc(Executor& ex, const PreparedGraph& pg,
                        const BccOptions& opt) {
  Workspace ws;
  return tv_filter_bcc(ex, ws, pg, opt);
}

BccResult tv_filter_bcc(Executor& ex, Workspace& ws, const PreparedGraph& pg,
                        const BccOptions& opt) {
  const EdgeList& g = pg.graph();
  const Csr& csr = pg.csr();
  BccResult result;
  Trace local_trace(ex.threads());
  Trace& tr = opt.trace != nullptr ? *opt.trace : local_trace;
  const Trace::Mark mark = tr.mark();
  Timer total;
  if (pg.conversion_seconds() > 0) {
    tr.charge(steps::kConversion, pg.conversion_seconds());
  }
  const vid n = g.n;
  const eid m = g.m();

  // Alg. 2 step 1: T must be a BFS tree (Lemma 1 needs its level
  // structure).  Under the compressed backend the traversal decodes
  // delta-coded rows on the fly; building the compressed form (first
  // use only — cached on the PreparedGraph afterwards) is a
  // representation-conversion cost and is booked as such.
  const CompressedCsr* cc = nullptr;
  if (opt.csr_backend == CsrBackend::kCompressed) {
    Timer ctimer;
    cc = &pg.ensure_compressed(ex);
    const double built = ctimer.seconds();
    if (built > 0) tr.charge(steps::kConversion, built);
  }
  BfsTree bfs;
  {
    TraceSpan span(tr, steps::kSpanningTree);
    bfs = cc != nullptr ? bfs_tree(ex, ws, *cc, opt.root, opt.bfs_mode, &tr)
                        : bfs_tree(ex, ws, csr, opt.root, opt.bfs_mode, &tr);
  }
  if (bfs.reached != n) {
    throw std::invalid_argument("tv_filter_bcc: graph must be connected");
  }

  // Alg. 2 step 2: spanning forest F of G - T.
  // Candidates exclude edges parallel to a tree edge: such an edge is
  // always labeled by condition 1 with its tree twin's component, and
  // keeping it out of F preserves Lemma 1 (no ancestral relationship
  // between F-edge endpoints) on multigraph inputs.
  // The tree-membership flags and the candidate list are dead once F
  // is built, so they live in one workspace frame.  Membership is a
  // packed bitmap (one word per 64 edges, not one byte per edge); the
  // marking scatter hits arbitrary edge ids, so bits in a shared word
  // are set atomically.
  SpanningForest forest;
  {
    TraceSpan span(tr, steps::kFiltering);
    Workspace::Frame frame(ws);
    BitSpan in_tree(ws.alloc<std::uint64_t>(BitSpan::words_for(m)));
    ex.parallel_for(in_tree.words().size(),
                    [&](std::size_t w) { in_tree.words()[w] = 0; });
    ex.parallel_for(n, [&](std::size_t v) {
      if (bfs.parent_edge[v] != kNoEdge) in_tree.set_atomic(bfs.parent_edge[v]);
    });
    std::span<eid> candidates = ws.alloc<eid>(m);
    const std::size_t num_candidates = pack_indices_span(
        ex, ws, m,
        [&](std::size_t e) {
          if (in_tree.get(e)) return false;
          const vid u = g.edges[e].u;
          const vid v = g.edges[e].v;
          return bfs.parent[u] != v && bfs.parent[v] != u;
        },
        candidates);
    forest = sv_spanning_forest(ex, ws, n, g.edges,
                                candidates.first(num_candidates), opt.sv_mode);
    tr.counter("filter_candidates", static_cast<double>(num_candidates));
    tr.counter("sv_rounds", static_cast<double>(forest.rounds));
  }

  // Assemble H = T u F, remembering each H edge's original id.  Tree
  // edges occupy slots [0, n-1) in a fixed per-vertex layout so the
  // local parent_edge column is computable in parallel.  The H edge
  // list and its bookkeeping stay live until the final scatter, so
  // their frame spans the rest of the solve.
  TraceSpan euler_span(tr, steps::kEulerTour);
  TraceSpan assemble_span(tr, "assemble_h");
  const std::size_t t_count = n - 1;
  const std::size_t h_count = t_count + forest.tree_edges.size();
  Workspace::Frame frame(ws);
  std::span<Edge> h_edges = ws.alloc<Edge>(h_count);
  std::span<eid> orig_of = ws.alloc<eid>(h_count);
  BitSpan in_h(ws.alloc<std::uint64_t>(BitSpan::words_for(m)));
  ex.parallel_for(in_h.words().size(),
                  [&](std::size_t w) { in_h.words()[w] = 0; });

  RootedSpanningTree tree;
  tree.root = opt.root;
  tree.parent = bfs.parent;
  tree.parent_edge.assign(n, kNoEdge);
  ex.parallel_for(n, [&](std::size_t v) {
    if (v == opt.root) return;
    const std::size_t slot = v < opt.root ? v : v - 1;
    const eid e = bfs.parent_edge[v];
    h_edges[slot] = g.edges[e];
    orig_of[slot] = e;
    in_h.set_atomic(e);
    tree.parent_edge[v] = static_cast<eid>(slot);
  });
  ex.parallel_for(forest.tree_edges.size(), [&](std::size_t k) {
    const eid e = forest.tree_edges[k];
    h_edges[t_count + k] = g.edges[e];
    orig_of[t_count + k] = e;
    in_h.set_atomic(e);
  });
  tr.counter("h_edges", static_cast<double>(h_count));
  assemble_span.close();

  // Rooted-tree computations over T (TV-opt pipeline).
  const ChildrenCsr children =
      build_children(ex, ws, tree.parent, tree.root, &tr);
  const LevelStructure levels = build_levels(ex, children, tree.root, &tr);
  euler_span.close();
  {
    TraceSpan span(tr, steps::kRootTree);
    preorder_and_size(ex, children, levels, tree.root, tree.pre, tree.sub,
                      &tr);
  }

  // Alg. 2 step 3: TV on H (at most 2(n-1) edges).
  std::vector<vid> owner;
  {
    TraceSpan span(tr, "tree_owner");
    owner = make_tree_owner(ex, h_count, tree);
  }
  const std::vector<vid> h_labels =
      tv_label_edges(ex, ws, h_edges, tree, owner, LowHighMethod::kLevelSweep,
                     &children, &levels, opt.sv_mode, opt.aux_mode, nullptr,
                     &tr);

  // Alg. 2 step 4: scatter H labels back; every filtered edge (u,v)
  // joins the component of the tree edge below its higher-preorder
  // endpoint (condition 1, valid for any rooted spanning tree).
  // Same step name as the forest build above: the rollup aggregates
  // both occurrences into one "filtering" phase (calls == 2), matching
  // the paper's single Filtering bar.
  {
    TraceSpan span(tr, steps::kFiltering);
    result.edge_component.assign(m, kNoVertex);
    ex.parallel_for(h_count, [&](std::size_t h) {
      result.edge_component[orig_of[h]] = h_labels[h];
    });
    ex.parallel_for(m, [&](std::size_t e) {
      if (in_h.get(e)) return;
      const vid u = g.edges[e].u;
      const vid v = g.edges[e].v;
      const vid hi_end = tree.pre[u] > tree.pre[v] ? u : v;
      result.edge_component[e] = h_labels[tree.parent_edge[hi_end]];
    });
  }

  {
    TraceSpan span(tr, "normalize");
    result.num_components = normalize_labels(result.edge_component);
  }
  result.trace = tr.report_since(mark);
  result.times = derive_step_times(result.trace,
                                   total.seconds() + pg.conversion_seconds());
  return result;
}

}  // namespace parbcc
