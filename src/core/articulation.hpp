#pragma once

#include "core/bcc_result.hpp"
#include "graph/edge_list.hpp"
#include "util/thread_pool.hpp"
#include "util/workspace.hpp"

/// \file articulation.hpp
/// Cut vertices and bridges derived from an edge labeling.
///
/// Once every edge carries its biconnected-component label, both kinds
/// of cut element fall out in O(n + m) parallel work:
///  - a vertex is an articulation point iff it is incident to edges of
///    two different components;
///  - a bridge is exactly a component containing a single edge.
/// This uniform derivation is shared by all four algorithms, so their
/// cut reports are directly comparable in tests.

namespace parbcc {

/// Fill result.is_articulation and result.bridges from
/// result.edge_component (labels must be contiguous in
/// [0, num_components)).  First-label and component-size side arrays
/// are Workspace scratch.
void annotate_cut_info(Executor& ex, Workspace& ws, const EdgeList& g,
                       BccResult& result);
void annotate_cut_info(Executor& ex, const EdgeList& g, BccResult& result);

}  // namespace parbcc
