#pragma once

#include <span>
#include <vector>

#include "core/bcc_result.hpp"
#include "graph/edge_list.hpp"
#include "util/thread_pool.hpp"

/// \file block_cut_tree.hpp
/// Block-cut tree: the bipartite tree (forest, for disconnected inputs)
/// whose nodes are the biconnected components ("blocks") and the
/// articulation vertices, with a tree edge whenever a cut vertex lies
/// in a block.  This is the structure behind the paper's motivating
/// application — fault-tolerant network design — and drives the
/// biconnectivity augmentation in augmentation.hpp.

namespace parbcc {

struct BlockCutTree {
  /// == BccResult::num_components.
  vid num_blocks = 0;
  /// Number of articulation vertices.
  vid num_cut_nodes = 0;
  /// Graph vertex of each cut node (ascending vertex order).
  std::vector<vid> cut_vertex;
  /// Per graph vertex: its cut-node index, or kNoVertex.
  std::vector<vid> cut_node_of;
  /// Tree edges {block, num_blocks + cut_node}.
  std::vector<Edge> edges;
  /// CSR of the distinct vertices inside each block.
  std::vector<eid> block_offsets;   // num_blocks + 1
  std::vector<vid> block_vertices;  // sum over blocks of |V(block)|

  std::span<const vid> vertices_of_block(vid b) const {
    return {block_vertices.data() + block_offsets[b],
            block_vertices.data() + block_offsets[b + 1]};
  }

  /// Cut vertices inside block b (count of tree edges at b).
  vid cut_degree(vid b) const { return cut_degree_[b]; }
  /// Leaf blocks: at most one cut vertex (isolated blocks included).
  bool is_leaf_block(vid b) const { return cut_degree_[b] <= 1; }

  std::vector<vid> cut_degree_;  // per block
};

/// Requires result.edge_component/num_components and
/// result.is_articulation (i.e. compute_cut_info was on).
BlockCutTree build_block_cut_tree(Executor& ex, const EdgeList& g,
                                  const BccResult& result);

/// Same, from bare arrays: `edge_component` must be contiguous in
/// [0, num_components) (normalize_labels first when the labels come
/// from a sparse batch-dynamic standing result) and one entry per
/// edge; `is_articulation` one flag per vertex.  This is the overload
/// the server's snapshot builder uses — it normalizes a private label
/// copy and has no BccResult to hand over.
BlockCutTree build_block_cut_tree(Executor& ex, const EdgeList& g,
                                  std::span<const vid> edge_component,
                                  vid num_components,
                                  std::span<const std::uint8_t> is_articulation);

}  // namespace parbcc
