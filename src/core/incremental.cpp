#include "core/incremental.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace parbcc {

IncrementalBiconnectivity::IncrementalBiconnectivity(vid n)
    : n_(n),
      parent_(n, kNoNode),
      blocks_of_(n, 0),
      comp_parent_(n),
      comp_size_(n, 1),
      num_components_(n) {
  for (vid v = 0; v < n; ++v) comp_parent_[v] = v;
}

vid IncrementalBiconnectivity::comp_find(vid v) {
  while (comp_parent_[v] != v) {
    comp_parent_[v] = comp_parent_[comp_parent_[v]];
    v = comp_parent_[v];
  }
  return v;
}

auto IncrementalBiconnectivity::block_find(node b) -> node {
  // b is a block INDEX (id - n_).
  while (block_uf_[b] != b) {
    block_uf_[b] = block_uf_[block_uf_[b]];
    b = block_uf_[b];
  }
  return b;
}

auto IncrementalBiconnectivity::resolve(node x) -> node {
  if (x == kNoNode || !is_block(x)) return x;
  return n_ + block_find(x - n_);
}

auto IncrementalBiconnectivity::make_block() -> node {
  const node idx = static_cast<node>(block_uf_.size());
  block_uf_.push_back(idx);
  block_size_.push_back(1);
  edge_count_.push_back(0);
  parent_.push_back(kNoNode);
  ++num_blocks_;
  return n_ + idx;
}

auto IncrementalBiconnectivity::merge_blocks(node a, node b) -> node {
  node ia = block_find(a - n_);
  node ib = block_find(b - n_);
  if (ia == ib) return n_ + ia;
  if (block_size_[ia] < block_size_[ib]) std::swap(ia, ib);
  block_uf_[ib] = ia;
  block_size_[ia] += block_size_[ib];
  edge_count_[ia] += edge_count_[ib];
  --num_blocks_;
  return n_ + ia;
}

void IncrementalBiconnectivity::reroot(vid v) {
  // Reverse the parent pointers on v's root path.
  node prev = kNoNode;
  node cur = v;
  while (cur != kNoNode) {
    const node nxt = resolve(parent_[cur]);
    parent_[cur] = prev;
    prev = cur;
    cur = nxt;
  }
}

vid IncrementalBiconnectivity::num_cut_vertices() const {
  vid count = 0;
  for (vid v = 0; v < n_; ++v) count += blocks_of_[v] >= 2 ? 1 : 0;
  return count;
}

bool IncrementalBiconnectivity::same_component(vid u, vid v) {
  return comp_find(u) == comp_find(v);
}

bool IncrementalBiconnectivity::same_block(vid u, vid v) {
  const node pu = resolve(parent_[u]);
  const node pv = resolve(parent_[v]);
  if (u == v) {
    return blocks_of_[v] > 0;
  }
  // A block containing both is the parent of at least one of them.
  if (pu != kNoNode && is_block(pu)) {
    if (pu == pv) return true;
    if (resolve(parent_[pu]) == static_cast<node>(v)) return true;
  }
  if (pv != kNoNode && is_block(pv)) {
    if (resolve(parent_[pv]) == static_cast<node>(u)) return true;
  }
  return false;
}

void IncrementalBiconnectivity::insert_edges(std::span<const Edge> batch) {
  // Worst case each insertion mints one fresh block (one slot in each
  // block array, one node in parent_), so one reservation covers the
  // whole batch.  mark_ is cleared per insertion but clear() keeps the
  // bucket array, so a single bucket reservation here removes the
  // rehash cascade the first long walks would otherwise pay mid-batch.
  const std::size_t extra = batch.size();
  block_uf_.reserve(block_uf_.size() + extra);
  block_size_.reserve(block_size_.size() + extra);
  edge_count_.reserve(edge_count_.size() + extra);
  parent_.reserve(parent_.size() + extra);
  mark_.reserve(std::min<std::size_t>(extra + 64, 1u << 16));
  for (const Edge& e : batch) insert_edge(e.u, e.v);
}

void IncrementalBiconnectivity::insert_edge(vid u, vid v) {
  if (u >= n_ || v >= n_) {
    throw std::invalid_argument("insert_edge: vertex out of range");
  }
  if (u == v) return;  // self-loops carry no biconnectivity information

  const vid cu = comp_find(u);
  const vid cv = comp_find(v);
  if (cu != cv) {
    // New bridge block joining two components; re-root the smaller
    // tree at its endpoint and hang it under the new block.
    vid small = v, large = u;
    if (comp_size_[cu] < comp_size_[cv]) std::swap(small, large);
    reroot(small);
    const node b = make_block();
    edge_count_[b - n_] = 1;
    ++num_bridges_;
    parent_[b] = large;
    parent_[small] = b;
    ++blocks_of_[u];
    ++blocks_of_[v];
    // Union the components (by size).
    vid ra = cu, rb = cv;
    if (comp_size_[ra] < comp_size_[rb]) std::swap(ra, rb);
    comp_parent_[rb] = ra;
    comp_size_[ra] += comp_size_[rb];
    --num_components_;
    return;
  }

  // Same component: find the BC-tree path u..v by an alternating
  // marked walk, then contract every block on it.
  mark_.clear();
  std::vector<node> path_a{static_cast<node>(u)};
  std::vector<node> path_b{static_cast<node>(v)};
  mark_[u] = 0;
  mark_[v] = 1;
  node meeting = kNoNode;
  bool exhausted_a = false, exhausted_b = false;
  int side = 0;
  while (meeting == kNoNode) {
    std::vector<node>& path = side == 0 ? path_a : path_b;
    bool& exhausted = side == 0 ? exhausted_a : exhausted_b;
    if (!exhausted) {
      const node nxt = resolve(parent_[path.back()]);
      if (nxt == kNoNode) {
        exhausted = true;
      } else {
        const auto it = mark_.find(nxt);
        if (it != mark_.end() && it->second != side) {
          meeting = nxt;
          path.push_back(nxt);
        } else if (it == mark_.end()) {
          mark_[nxt] = side;
          path.push_back(nxt);
        } else {
          // Marked by our own side: cannot happen in a tree.
          throw std::logic_error("insert_edge: BC forest corrupted");
        }
      }
    }
    if (exhausted_a && exhausted_b) {
      throw std::logic_error("insert_edge: endpoints not connected");
    }
    side ^= 1;
  }

  // Truncate the other side at the meeting node.
  std::vector<node>& other = mark_[meeting] == 0 ? path_a : path_b;
  while (other.back() != meeting) other.pop_back();

  // Combined path u .. meeting .. v (meeting once).
  std::vector<node> path(path_a.begin(), path_a.end());
  if (path.back() != meeting) {
    // path_a stopped early (meeting discovered from side b); it already
    // ends at meeting only when truncated above.
  }
  // Ensure path_a ends at meeting.
  while (path.back() != meeting) path.pop_back();
  for (auto it = path_b.rbegin(); it != path_b.rend(); ++it) {
    if (*it == meeting) continue;
    path.push_back(*it);
  }

  // Capture where the merged block will hang before mutating anything.
  const node top_parent = is_block(meeting)
                              ? resolve(parent_[meeting])
                              : meeting;

  // Merge all blocks on the path; count the bridges that disappear.
  node merged = kNoNode;
  vid touched_bridges = 0;
  for (const node x : path) {
    if (!is_block(x)) continue;
    if (edge_count_[block_find(x - n_)] == 1) ++touched_bridges;
    merged = merged == kNoNode ? x : merge_blocks(merged, x);
  }
  if (merged == kNoNode) {
    throw std::logic_error("insert_edge: cycle path without blocks");
  }
  const node rep = resolve(merged);
  edge_count_[rep - n_] += 1;  // the new edge itself
  if (edge_count_[rep - n_] > 1) num_bridges_ -= touched_bridges;

  // Each vertex interior to the path sat between two now-merged
  // blocks: it loses one block membership per extra adjacency.
  for (std::size_t i = 0; i < path.size(); ++i) {
    if (is_block(path[i])) continue;
    int touches = 0;
    if (i > 0 && is_block(path[i - 1])) ++touches;
    if (i + 1 < path.size() && is_block(path[i + 1])) ++touches;
    if (touches > 1) blocks_of_[path[i]] -= touches - 1;
  }

  // Rehang: the merged block keeps the topmost position; stale parent
  // pointers into consumed blocks resolve through the union-find.
  if (is_block(meeting)) {
    parent_[rep] = top_parent;
  } else {
    parent_[rep] = meeting;
  }
}

}  // namespace parbcc
