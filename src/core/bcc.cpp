#include "core/bcc.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <optional>
#include <stdexcept>

#include "connectivity/shiloach_vishkin.hpp"
#include "core/articulation.hpp"
#include "core/drivers.hpp"
#include "core/hopcroft_tarjan.hpp"
#include "graph/csr.hpp"
#include "util/padded.hpp"
#include "util/timer.hpp"

namespace parbcc {
namespace {

/// Number of distinct non-loop undirected edges, counted off the
/// adjacency with a per-thread stamp array: each edge {u, w} with
/// u < w is counted at u, and a neighbour already stamped with u is a
/// parallel copy.  O(n·p + m) work, arena scratch only.
std::uint64_t count_unique_edges(Executor& ex, Workspace& ws, const Csr& g) {
  const vid n = g.num_vertices();
  if (n == 0) return 0;
  const int p = ex.threads();
  Workspace::Frame frame(ws);
  std::span<vid> stamp =
      ws.alloc<vid>(static_cast<std::size_t>(n) * static_cast<std::size_t>(p));
  std::span<Padded<std::uint64_t>> count =
      ws.alloc<Padded<std::uint64_t>>(static_cast<std::size_t>(p));
  ex.parallel_blocks(n, [&](int tid, std::size_t begin, std::size_t end) {
    std::span<vid> mine = stamp.subspan(
        static_cast<std::size_t>(tid) * static_cast<std::size_t>(n), n);
    for (std::size_t v = 0; v < n; ++v) mine[v] = kNoVertex;
    std::uint64_t c = 0;
    for (std::size_t u = begin; u < end; ++u) {
      const vid stamp_u = static_cast<vid>(u);
      for (const vid w : g.neighbors(static_cast<vid>(u))) {
        if (w <= u) continue;  // count once at the smaller endpoint; skip loops
        if (mine[w] != stamp_u) {
          mine[w] = stamp_u;
          ++c;
        }
      }
    }
    count[static_cast<std::size_t>(tid)].value = c;
  });
  std::uint64_t total = 0;
  for (int t = 0; t < p; ++t) {
    total += count[static_cast<std::size_t>(t)].value;
  }
  return total;
}

/// Maximum vertex degree, reduced per thread block off the CSR offsets.
eid max_degree(Executor& ex, Workspace& ws, const Csr& g) {
  const vid n = g.num_vertices();
  if (n == 0) return 0;
  const int p = ex.threads();
  Workspace::Frame frame(ws);
  std::span<Padded<eid>> best =
      ws.alloc<Padded<eid>>(static_cast<std::size_t>(p));
  ex.parallel_blocks(n, [&](int tid, std::size_t begin, std::size_t end) {
    eid d = 0;
    for (std::size_t v = begin; v < end; ++v) {
      d = std::max(d, g.degree(static_cast<vid>(v)));
    }
    best[static_cast<std::size_t>(tid)].value = d;
  });
  eid out = 0;
  for (int t = 0; t < p; ++t) {
    out = std::max(out, best[static_cast<std::size_t>(t)].value);
  }
  return out;
}

/// kAuto's measured cost model.
///
/// Below the tiny cutoff any parallel pipeline loses to plain
/// Hopcroft-Tarjan on barrier overhead alone.  At or above it the
/// paper's §4 rule applies first (distinct m <= 4n -> TV-opt); in the
/// genuinely dense regime the choice between FastBCC and TV-filter
/// comes from per-element costs fitted to BENCH_fastbcc.json runs on
/// the 12-way dev host (least squares over the n = 200k cells at
/// m = 4n..20n; the ratio is what matters, and it is stable across
/// p = 1 and p = 12 because both pipelines parallelize the same
/// sweeps).  Degree skew taxes FastBCC: its union-find hook sweep
/// serializes on hub roots, while TV-filter only ever runs the
/// union-find on the 2(n-1)-edge graph H.
inline constexpr std::uint64_t kTinySolveCutoff = 2048;  // n + m
inline constexpr double kFastBccNsPerVertex = 330.0;
inline constexpr double kFastBccNsPerEdge = 36.0;
inline constexpr double kFilterNsPerVertex = 390.0;
inline constexpr double kFilterNsPerEdge = 48.0;
inline constexpr double kFastBccSkewPenalty = 0.05;  // per log2 of skew

/// Solve a connected, loop-free graph, building adjacency on demand
/// for the drivers that need it.
BccResult run_connected(Executor& ex, Workspace& ws, const EdgeList& g,
                        const BccOptions& opt, BccAlgorithm algorithm) {
  switch (algorithm) {
    case BccAlgorithm::kTvSmp:
      return tv_smp_bcc(ex, ws, g, opt);
    case BccAlgorithm::kTvOpt: {
      const PreparedGraph pg(ex, ws, g);
      return tv_opt_bcc(ex, ws, pg, opt);
    }
    case BccAlgorithm::kTvFilter: {
      const PreparedGraph pg(ex, ws, g);
      return tv_filter_bcc(ex, ws, pg, opt);
    }
    case BccAlgorithm::kFastBcc: {
      const PreparedGraph pg(ex, ws, g);
      return fast_bcc(ex, ws, pg, opt);
    }
    case BccAlgorithm::kSequential:
    case BccAlgorithm::kAuto:
      break;
  }
  throw std::logic_error("run_connected: unexpected algorithm");
}

/// As run_connected, but with a shared conversion cache for the
/// adjacency-hungry drivers; TV-SMP never needs (or pays for) it.
BccResult run_connected(Executor& ex, Workspace& ws, const PreparedGraph& pg,
                        const BccOptions& opt, BccAlgorithm algorithm) {
  switch (algorithm) {
    case BccAlgorithm::kTvSmp:
      return tv_smp_bcc(ex, ws, pg.graph(), opt);
    case BccAlgorithm::kTvOpt:
      return tv_opt_bcc(ex, ws, pg, opt);
    case BccAlgorithm::kTvFilter:
      return tv_filter_bcc(ex, ws, pg, opt);
    case BccAlgorithm::kFastBcc:
      return fast_bcc(ex, ws, pg, opt);
    case BccAlgorithm::kSequential:
    case BccAlgorithm::kAuto:
      break;
  }
  throw std::logic_error("run_connected: unexpected algorithm");
}

/// Parallel path for general (possibly disconnected) inputs: decompose
/// into connected components, relabel each as a compact subproblem, and
/// solve them one after another (each solve is internally parallel).
/// `pg`, when non-null, is a conversion cache for `g` itself; it only
/// applies on the connected fast path (subproblems are relabeled graphs
/// with their own adjacency).  `cache`, when non-null, is a context
/// whose conversion cache may be used for `g` on that same fast path.
/// Per-step times are not assembled here: every driver records into
/// opt.trace, and the dispatcher derives StepTimes from the combined
/// rollup once.
BccResult run_general(Executor& ex, Workspace& ws, const EdgeList& g,
                      const BccOptions& opt, BccAlgorithm algorithm,
                      const PreparedGraph* pg, BccContext* cache) {
  const vid n = g.n;
  const eid m = g.m();

  std::vector<vid> comp;
  vid k = 0;
  {
    TraceSpan span(opt.trace, "component_check");
    comp = connected_components_sv(ex, ws, n, g.edges);
    k = normalize_labels(comp);
  }

  if (k <= 1) {
    BccOptions connected_opt = opt;
    if (connected_opt.root >= n) connected_opt.root = 0;
    if (algorithm == BccAlgorithm::kTvSmp) {
      // TV-SMP runs on the raw edge list; never build adjacency for it.
      return run_connected(ex, ws, g, connected_opt, algorithm);
    }
    if (pg) return run_connected(ex, ws, *pg, connected_opt, algorithm);
    if (cache) {
      return run_connected(ex, ws, cache->prepare(g), connected_opt,
                           algorithm);
    }
    const PreparedGraph built(ex, ws, g);
    return run_connected(ex, ws, built, connected_opt, algorithm);
  }

  // Bucket vertices and edges by component (counting sort).  This path
  // is sequential bookkeeping over a rare input shape; the subproblem
  // solves below still draw their scratch from the shared arena.
  std::vector<vid> vertex_offset(k + 1, 0);
  std::vector<vid> new_id(n);
  for (vid v = 0; v < n; ++v) ++vertex_offset[comp[v] + 1];
  for (vid c = 0; c < k; ++c) vertex_offset[c + 1] += vertex_offset[c];
  {
    std::vector<vid> cursor(vertex_offset.begin(), vertex_offset.end() - 1);
    for (vid v = 0; v < n; ++v) {
      new_id[v] = cursor[comp[v]]++ - vertex_offset[comp[v]];
    }
  }
  std::vector<eid> edge_offset(k + 1, 0);
  std::vector<eid> edge_bucket(m);
  for (eid e = 0; e < m; ++e) ++edge_offset[comp[g.edges[e].u] + 1];
  for (vid c = 0; c < k; ++c) edge_offset[c + 1] += edge_offset[c];
  {
    std::vector<eid> cursor(edge_offset.begin(), edge_offset.end() - 1);
    for (eid e = 0; e < m; ++e) edge_bucket[cursor[comp[g.edges[e].u]]++] = e;
  }

  BccResult result;
  result.edge_component.assign(m, kNoVertex);
  vid label_base = 0;

  for (vid c = 0; c < k; ++c) {
    const eid e_begin = edge_offset[c];
    const eid e_end = edge_offset[c + 1];
    if (e_begin == e_end) continue;  // isolated vertex: nothing to label
    EdgeList sub;
    sub.n = vertex_offset[c + 1] - vertex_offset[c];
    sub.edges.reserve(e_end - e_begin);
    for (eid j = e_begin; j < e_end; ++j) {
      const Edge& e = g.edges[edge_bucket[j]];
      sub.edges.push_back({new_id[e.u], new_id[e.v]});
    }
    BccOptions sub_opt = opt;
    sub_opt.root = 0;
    sub_opt.compute_cut_info = false;
    BccResult sub_result = run_connected(ex, ws, sub, sub_opt, algorithm);
    for (eid j = e_begin; j < e_end; ++j) {
      result.edge_component[edge_bucket[j]] =
          label_base + sub_result.edge_component[j - e_begin];
    }
    label_base += sub_result.num_components;
  }
  result.num_components = label_base;
  return result;
}

}  // namespace

const char* to_string(BccAlgorithm algorithm) {
  switch (algorithm) {
    case BccAlgorithm::kSequential:
      return "sequential";
    case BccAlgorithm::kTvSmp:
      return "TV-SMP";
    case BccAlgorithm::kTvOpt:
      return "TV-opt";
    case BccAlgorithm::kTvFilter:
      return "TV-filter";
    case BccAlgorithm::kFastBcc:
      return "FastBCC";
    case BccAlgorithm::kAuto:
      return "auto";
  }
  return "unknown";
}

StepTimes derive_step_times(const TraceReport& report, double total_seconds) {
  StepTimes out;
  out.conversion = report.inclusive_seconds(steps::kConversion);
  out.spanning_tree = report.inclusive_seconds(steps::kSpanningTree);
  out.euler_tour = report.inclusive_seconds(steps::kEulerTour);
  out.root_tree = report.inclusive_seconds(steps::kRootTree);
  out.low_high = report.inclusive_seconds(steps::kLowHigh);
  out.label_edge = report.inclusive_seconds(steps::kLabelEdge);
  out.connected_components =
      report.inclusive_seconds(steps::kConnectedComponents);
  out.filtering = report.inclusive_seconds(steps::kFiltering);
  out.total = total_seconds;
  out.unattributed = std::max(0.0, total_seconds - out.accounted());
  return out;
}

BccResult biconnected_components(BccContext& ctx, const EdgeList& g,
                                 const BccOptions& options) {
  Executor& ex = ctx.executor();
  Workspace& ws = ctx.workspace();

  for (const Edge& e : g.edges) {
    if (e.u >= g.n || e.v >= g.n) {
      throw std::invalid_argument(
          "biconnected_components: edge endpoint out of range");
    }
  }
  if (options.root >= g.n && g.n > 0) {
    throw std::invalid_argument("biconnected_components: root out of range");
  }

  Timer total;
  BccResult result;
  if (g.n == 0) return result;

  // Apply the requested loop scheduling model for this solve only and
  // zero the scheduler counters, so the sched_* telemetry below
  // describes exactly this call.
  struct ModeGuard {
    Executor& ex;
    ExecMode prev;
    ModeGuard(Executor& e, ExecMode m) : ex(e), prev(e.mode()) {
      ex.set_mode(m);
    }
    ~ModeGuard() { ex.set_mode(prev); }
  } mode_guard(ex, options.exec_mode);
  ex.reset_scheduler_stats();

  Trace local_trace(ex.threads());
  Trace& tr = options.trace != nullptr ? *options.trace : local_trace;
  const Trace::Mark trace_mark = tr.mark();

  // Arena telemetry: peak is measured per solve, reuse hits as a delta
  // so the result describes this call only.
  ws.reset_peak();
  const std::uint64_t reuse_before = ws.reuse_hits();

  // Self-loops never participate in biconnectivity: split them off as
  // their own components and solve the stripped graph.  The loop-free
  // copy lives in the context, keyed on the caller's graph identity,
  // so a warm re-solve of a loopy graph reuses both the copy and the
  // conversion cache built over it instead of rebuilding per call.
  const bool has_loops = [&] {
    for (const Edge& e : g.edges) {
      if (e.u == e.v) return true;
    }
    return false;
  }();
  const BccContext::StrippedGraph* stripped =
      has_loops ? &ctx.strip(g) : nullptr;
  const EdgeList& work = stripped != nullptr ? stripped->graph : g;

  // A caller-supplied adjacency applies only when `work` is the exact
  // graph it was built from (stripping self-loops renumbers edges).
  std::optional<PreparedGraph> built;
  const PreparedGraph* pg = nullptr;
  if (options.prebuilt_csr && !has_loops &&
      options.prebuilt_csr->num_vertices() == work.n &&
      options.prebuilt_csr->num_edges() == work.m()) {
    built.emplace(work, *options.prebuilt_csr);
    pg = &*built;
  }

  // Both the raw and the stripped graph live long enough to key the
  // context's conversion cache (the stripped copy is context-owned).
  BccContext* cache = &ctx;

  // kAuto's decision cascade, cheapest probe first:
  //  - degenerate (no effective edges) and tiny inputs go straight to
  //    Hopcroft-Tarjan — no adjacency probe, no "dispatch" span;
  //  - paper §4: "if m <= 4n, we can always fall back to TV-opt" — on
  //    the *effective* edge count.  m <= 4n needs no adjacency
  //    (duplicates only shrink the count); past it, distinct edges are
  //    counted off the adjacency both candidate engines need anyway;
  //  - genuinely dense inputs pick between FastBCC and TV-filter from
  //    the measured per-element costs, with a degree-skew penalty on
  //    FastBCC's hub-contended hook sweep.
  BccAlgorithm algorithm = options.algorithm;
  if (algorithm == BccAlgorithm::kAuto) {
    if (work.m() == 0 ||
        static_cast<std::uint64_t>(work.n) + work.m() < kTinySolveCutoff) {
      algorithm = BccAlgorithm::kSequential;
    } else if (work.m() <= 4ull * work.n) {
      algorithm = BccAlgorithm::kTvOpt;
    } else {
      TraceSpan span(tr, "dispatch");
      if (!pg) {
        if (cache) {
          pg = &cache->prepare(work);
        } else {
          built.emplace(ex, ws, work);
          pg = &*built;
        }
      }
      const std::uint64_t unique = count_unique_edges(ex, ws, pg->csr());
      tr.counter("dispatch_unique_edges", static_cast<double>(unique));
      if (unique <= 4ull * work.n) {
        algorithm = BccAlgorithm::kTvOpt;
      } else {
        const double nn = static_cast<double>(work.n);
        const double mm = static_cast<double>(work.m());
        const eid dmax = max_degree(ex, ws, pg->csr());
        const double skew = static_cast<double>(dmax) * nn / (2.0 * mm);
        const double fast_ns =
            (kFastBccNsPerVertex * nn + kFastBccNsPerEdge * mm) *
            (1.0 + kFastBccSkewPenalty * std::log2(std::max(1.0, skew)));
        const double filter_ns = kFilterNsPerVertex * nn + kFilterNsPerEdge * mm;
        tr.counter("dispatch_max_degree", static_cast<double>(dmax));
        tr.counter("dispatch_pred_fastbcc_ms", fast_ns * 1e-6);
        tr.counter("dispatch_pred_filter_ms", filter_ns * 1e-6);
        algorithm = fast_ns <= filter_ns ? BccAlgorithm::kFastBcc
                                         : BccAlgorithm::kTvFilter;
      }
    }
  }

  BccOptions traced = options;
  traced.trace = &tr;

  {
    TraceSpan root_span(tr, to_string(algorithm));

    if (algorithm == BccAlgorithm::kSequential) {
      if (!pg) {
        if (cache) {
          pg = &cache->prepare(work);
        } else {
          built.emplace(ex, ws, work);
          pg = &*built;
        }
      }
      if (pg->conversion_seconds() > 0) {
        tr.charge(steps::kConversion, pg->conversion_seconds());
      }
      result = hopcroft_tarjan_bcc(ex, ws, work, pg->csr(),
                                   /*compute_cut_info=*/false, &tr);
    } else {
      result = run_general(ex, ws, work, traced, algorithm, pg, cache);
    }

    if (has_loops) {
      TraceSpan span(tr, "loop_components");
      const std::vector<eid>& kept = stripped->kept;
      std::vector<vid> full(g.m());
      for (eid j = 0; j < kept.size(); ++j) {
        full[kept[j]] = result.edge_component[j];
      }
      vid next = result.num_components;
      for (eid e = 0; e < g.m(); ++e) {
        if (g.edges[e].u == g.edges[e].v) full[e] = next++;
      }
      result.edge_component = std::move(full);
      result.num_components = next;
    }

    if (options.compute_cut_info) {
      TraceSpan span(tr, "cut_info");
      annotate_cut_info(ex, ws, g, result);
    }
  }

  // Scheduler telemetry: populated only when the work-stealing model
  // actually forked (kSpmd solves and pure-serial paths emit nothing,
  // which is what validate_trace.py asserts per segment).
  if (options.exec_mode == ExecMode::kWorkSteal) {
    const SchedulerStats sched = ex.scheduler_stats();
    if (sched.tasks > 0) {
      tr.counter("sched_tasks", static_cast<double>(sched.tasks));
      tr.counter("sched_splits", static_cast<double>(sched.splits));
      tr.counter("sched_steals", static_cast<double>(sched.steals));
    }
  }

  result.peak_workspace_bytes = ws.peak_bytes();
  result.arena_reuse_hits = ws.reuse_hits() - reuse_before;
  tr.counter("peak_workspace_bytes",
             static_cast<double>(result.peak_workspace_bytes));
  tr.counter("arena_reuse_hits",
             static_cast<double>(result.arena_reuse_hits));

  // One rollup covers the whole call — dispatch, the (possibly many)
  // driver solves, loop scatter-back and cut info — so the derived
  // steps and the dispatcher's own wall clock can no longer disagree.
  result.trace = tr.report_since(trace_mark);
  result.times = derive_step_times(result.trace, total.seconds());
  return result;
}

BccResult biconnected_components(Executor& ex, const EdgeList& g,
                                 const BccOptions& options) {
  BccContext ctx(ex);
  return biconnected_components(ctx, g, options);
}

BccResult biconnected_components(const EdgeList& g,
                                 const BccOptions& options) {
  BccContext ctx(options.threads < 1 ? 1 : options.threads);
  return biconnected_components(ctx, g, options);
}

}  // namespace parbcc
