#include "core/augmentation.hpp"

#include <stdexcept>

#include "connectivity/shiloach_vishkin.hpp"
#include "core/block_cut_tree.hpp"

namespace parbcc {

std::vector<Edge> biconnectivity_augmentation(Executor& ex, const EdgeList& g,
                                              const BccResult& result) {
  if (g.n < 3) {
    throw std::invalid_argument(
        "biconnectivity_augmentation: need at least 3 vertices");
  }
  const BlockCutTree tree = build_block_cut_tree(ex, g, result);
  const std::vector<vid> comp = connected_components_seq(g.n, g.edges);

  // Group attachment vertices by connected component.
  //  - component with >= 2 blocks: one non-cut vertex per leaf block
  //    (the leaf's cut vertex keeps the remainder attached if the
  //    chosen vertex is ever removed);
  //  - component that is a single block: two distinct vertices, so the
  //    component hangs off the ring by two disjoint contacts;
  //  - isolated vertex: itself (a ring node already has two edges).
  std::vector<std::vector<vid>> per_comp(g.n);
  std::vector<vid> blocks_in_comp(g.n, 0);
  for (vid b = 0; b < tree.num_blocks; ++b) {
    ++blocks_in_comp[comp[tree.vertices_of_block(b)[0]]];
  }
  for (vid b = 0; b < tree.num_blocks; ++b) {
    const auto members = tree.vertices_of_block(b);
    const vid c = comp[members[0]];
    if (blocks_in_comp[c] == 1) {
      // Island block: wire in two of its vertices back to back.
      per_comp[c].push_back(members[0]);
      per_comp[c].push_back(members[1]);
      continue;
    }
    if (!tree.is_leaf_block(b)) continue;
    for (const vid v : members) {
      if (tree.cut_node_of[v] == kNoVertex) {
        per_comp[c].push_back(v);
        break;
      }
    }
  }
  {
    std::vector<std::uint8_t> has_edge(g.n, 0);
    for (const Edge& e : g.edges) {
      has_edge[e.u] = 1;
      has_edge[e.v] = 1;
    }
    for (vid v = 0; v < g.n; ++v) {
      if (!has_edge[v]) per_comp[comp[v]].push_back(v);
    }
  }

  std::vector<vid> attachments;
  vid num_components = 0;
  for (vid c = 0; c < g.n; ++c) {
    if (comp[c] != c) continue;
    ++num_components;
    attachments.insert(attachments.end(), per_comp[c].begin(),
                       per_comp[c].end());
  }

  std::vector<Edge> added;
  // Already biconnected: one component, one block, nothing isolated.
  if (num_components == 1 && tree.num_blocks == 1 &&
      tree.num_cut_nodes == 0 && attachments.size() == 2 &&
      g.m() > 0) {
    return added;
  }
  if (attachments.size() < 2) return added;
  for (std::size_t i = 0; i + 1 < attachments.size(); ++i) {
    added.push_back({attachments[i], attachments[i + 1]});
  }
  if (attachments.size() > 2) {
    added.push_back({attachments.back(), attachments.front()});
  }
  return added;
}

}  // namespace parbcc
