#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "core/drivers.hpp"
#include "graph/edge_list.hpp"
#include "graph/io_binary.hpp"
#include "util/thread_pool.hpp"
#include "util/workspace.hpp"

/// \file bcc_context.hpp
/// A reusable biconnected-components solve session.
///
/// One solve allocates O(n + m) of scratch across a dozen pipeline
/// stages.  BccContext bundles the three things worth keeping warm
/// between solves:
///
///  - an Executor (thread pool) — spawning p threads per call is the
///    kind of overhead the paper's SMP methodology explicitly avoids;
///  - a Workspace arena — after the first solve the arena owns the
///    high-water capacity, so repeat solves allocate nothing from the
///    system (BccResult::arena_reuse_hits makes this observable);
///  - the edge-list -> adjacency conversion cache (PreparedGraph) —
///    the representation-discrepancy cost of paper §1 is paid at most
///    once per distinct input graph.
///
/// The context is single-threaded from the caller's perspective: one
/// solve at a time, matching the Workspace single-orchestrator rule.

namespace parbcc {

class BccContext {
 public:
  /// Own an Executor with `threads` SPMD participants (>= 1).
  explicit BccContext(int threads = 1)
      : owned_(std::in_place, threads < 1 ? 1 : threads), ex_(&*owned_) {}

  /// Borrow a caller-managed Executor (must outlive the context).
  explicit BccContext(Executor& ex) : ex_(&ex) {}

  BccContext(const BccContext&) = delete;
  BccContext& operator=(const BccContext&) = delete;

  Executor& executor() { return *ex_; }
  Workspace& workspace() { return ws_; }

  /// Adjacency for `g`, building it on first use and caching it keyed
  /// on the graph's address plus a content fingerprint — address alone
  /// is unsafe (a freed graph's storage can be reused by a different
  /// graph of the same size), and the fingerprint also makes in-place
  /// edge edits safe: a mutated graph simply misses and reconverts.
  /// On a cache hit the PreparedGraph's conversion charge is waived,
  /// so StepTimes::conversion reports 0 for repeat solves of the same
  /// graph.
  const PreparedGraph& prepare(const EdgeList& g);

  /// Take ownership of a mapped .pbg file and seed the conversion
  /// cache with its on-disk arrays: the cache entry's EdgeList borrows
  /// the edges section, its Csr adopts the offsets/targets/eids
  /// sections, and a compressed section (if present) is attached for
  /// the kCompressed backend — no CSR rebuild, no copy, conversion
  /// reported as 0.  The mapping lives as long as the cache entry
  /// does; prepare()/solve calls on adopt(...)'s graph() are cache
  /// hits.  Replaces any previously adopted mapping.
  const PreparedGraph& adopt(io::MappedGraph&& mapped);

  /// The adopted mapping's graph view (nullptr when none) — what
  /// callers pass to solve_bcc after io::map_prepared_graph.
  const EdgeList* mapped_graph() const {
    return mapped_ ? &mapped_->graph() : nullptr;
  }

  /// A context-owned loop-free copy of an input graph, plus the map
  /// from surviving edges back to their original indices.
  struct StrippedGraph {
    EdgeList graph;
    std::vector<eid> kept;
  };

  /// Loop-free view of `g`, built on first use and cached keyed
  /// exactly like prepare() (address + content fingerprint) — so the
  /// dispatcher's warm re-solve of a loop-containing graph skips both
  /// the strip pass and the stripped adjacency rebuild.
  const StrippedGraph& strip(const EdgeList& g);

  /// Drop the conversion and stripped-graph caches (keeps the Executor
  /// and the arena).
  void invalidate() {
    cache_.reset();
    cached_graph_ = nullptr;
    strip_.reset();
    strip_source_ = nullptr;
    mapped_.reset();
  }

 private:
  std::optional<Executor> owned_;
  Executor* ex_;
  Workspace ws_;
  std::optional<io::MappedGraph> mapped_;
  std::optional<PreparedGraph> cache_;
  const EdgeList* cached_graph_ = nullptr;
  std::uint64_t cached_fp_ = 0;
  std::optional<StrippedGraph> strip_;
  const EdgeList* strip_source_ = nullptr;
  std::uint64_t strip_fp_ = 0;
};

namespace io {

/// One-call zero-copy ingestion: map + validate the .pbg at `path` and
/// adopt it into `ctx`'s conversion cache.  Solve afterwards with
/// `solve_bcc(ctx, *ctx.mapped_graph(), opt)` — the prepare step is a
/// guaranteed cache hit and conversion reports 0.
const PreparedGraph& map_prepared_graph(BccContext& ctx,
                                        const std::string& path,
                                        const MapOptions& opt = {});

}  // namespace io

}  // namespace parbcc
