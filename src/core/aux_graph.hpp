#pragma once

#include <span>
#include <vector>

#include "core/lowhigh.hpp"
#include "eulertour/tree_computations.hpp"
#include "graph/edge_list.hpp"
#include "util/thread_pool.hpp"
#include "util/workspace.hpp"

/// \file aux_graph.hpp
/// TV step 5 (Label-edge): build the auxiliary graph G' = (V', E')
/// whose vertices are the edges of G and whose connected components are
/// the biconnected components — the paper's Alg. 1.
///
/// Vertex mapping (paper §2): tree edge (u, p(u)) |-> u; the j-th
/// nontree edge |-> n + j, with j assigned by a prefix sum.  Candidate
/// pairs are staged into a 3m-slot array — one m-slot region per R''c
/// condition — and compacted with a prefix sum, so the construction is
/// write-conflict free (EREW), matching Theorem 1.
///
/// The 3m-slot staging array and the nontree-rank prefix array — the
/// largest per-solve scratch in the whole TV pipeline — come from the
/// Workspace.

namespace parbcc {

struct AuxGraph {
  /// n + (number of nontree edges); ids below n are tree-edge images.
  vid num_vertices = 0;
  /// Compacted E' (endpoints are aux vertex ids).
  std::vector<Edge> edges;
  /// Image of each original edge in V'.
  std::vector<vid> aux_id;
};

/// `tree_owner[e]` = child endpoint if e is a tree edge else kNoVertex;
/// `lh` from compute_low_high_*.  `trace` gets sub-spans for the three
/// stages (aux_vertex_map, aux_stage, aux_compact) plus aux_vertices /
/// aux_edges counters — the size of G' explains the
/// Connected-components bar that follows it.
AuxGraph build_aux_graph(Executor& ex, Workspace& ws,
                         std::span<const Edge> edges,
                         const RootedSpanningTree& tree,
                         std::span<const vid> tree_owner, const LowHigh& lh,
                         Trace* trace = nullptr);
AuxGraph build_aux_graph(Executor& ex, std::span<const Edge> edges,
                         const RootedSpanningTree& tree,
                         std::span<const vid> tree_owner, const LowHigh& lh);

}  // namespace parbcc
