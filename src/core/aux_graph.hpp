#pragma once

#include <span>
#include <vector>

#include "core/lowhigh.hpp"
#include "eulertour/tree_computations.hpp"
#include "graph/edge_list.hpp"
#include "util/thread_pool.hpp"
#include "util/workspace.hpp"

/// \file aux_graph.hpp
/// TV step 5 (Label-edge): the auxiliary graph G' = (V', E') whose
/// vertices are the edges of G and whose connected components are the
/// biconnected components — the paper's Alg. 1 — in two forms.
///
/// Vertex mapping (paper §2): tree edge (u, p(u)) |-> u; the j-th
/// nontree edge |-> n + j, with j assigned by a prefix sum.
///
/// **Materialized** (`build_aux_graph`, the paper-faithful route):
/// candidate pairs are staged into a 3m-slot array — one m-slot region
/// per R''c condition — and compacted with a prefix sum, so the
/// construction is write-conflict free (EREW), matching Theorem 1.
/// The caller then runs connected components over the compacted edge
/// list.  That is three full passes over edge-sized arrays (zero-fill,
/// stage, compact) before a single component is labeled, plus the CC
/// passes themselves.
///
/// **Fused** (`fused_aux_components`): E' is never materialized.  A
/// lock-free union-find (connectivity/concurrent_union_find.hpp) over
/// the |V'| aux vertices consumes the condition 1-3 pairs *as they are
/// generated* — one sweep over the original edge list hooks every
/// pair — and a second sweep reads each edge's final component label
/// through its aux image.  The 3m staged buffer, its zero-fill and the
/// compaction pass disappear; the only edge-sized scratch is the
/// aux-id map.  The fixpoint label is the component's minimum aux id,
/// identical to the SV contract on the materialized graph, so the two
/// routes agree up to nothing at all — labels match exactly.
///
/// All scratch (staging array, nontree-rank prefix array, union-find
/// parent array) comes from the Workspace under the usual frame
/// discipline; both routes are single-orchestrator (only the
/// Executor-driving thread allocates or opens spans).

namespace parbcc {

/// Which Alg. 1 route the TV core runs (BccOptions::aux_mode).
/// kFused is the default; kMaterialized remains as the paper-faithful
/// reference for fidelity tests and the ablation bench.
enum class AuxMode {
  kMaterialized,
  kFused,
};

struct AuxGraph {
  /// n + (number of nontree edges); ids below n are tree-edge images.
  vid num_vertices = 0;
  /// Compacted E' (endpoints are aux vertex ids).
  std::vector<Edge> edges;
  /// Image of each original edge in V'.
  std::vector<vid> aux_id;
};

/// `tree_owner[e]` = child endpoint if e is a tree edge else kNoVertex;
/// `lh` from compute_low_high_*.  `trace` gets sub-spans for the three
/// stages (aux_vertex_map, aux_stage, aux_compact) plus aux_vertices /
/// aux_edges counters — the size of G' explains the
/// Connected-components bar that follows it.
AuxGraph build_aux_graph(Executor& ex, Workspace& ws,
                         std::span<const Edge> edges,
                         const RootedSpanningTree& tree,
                         std::span<const vid> tree_owner, const LowHigh& lh,
                         Trace* trace = nullptr);
AuxGraph build_aux_graph(Executor& ex, std::span<const Edge> edges,
                         const RootedSpanningTree& tree,
                         std::span<const vid> tree_owner, const LowHigh& lh);

/// Telemetry of one fused run, mirrored into the trace counters.
struct FusedAuxStats {
  /// |V'| = n + #nontree (same count the materialized route reports).
  vid num_vertices = 0;
  /// Successful union-find hooks — the fused stand-in for |E'|: every
  /// generated pair costs one unite, but only spanning ones hook.
  std::uint64_t hooks = 0;
  /// Total parent-chain links traversed across every find, hook and
  /// label sweep included — the fused pipeline's "extra pass" budget.
  std::uint64_t find_depth = 0;
  /// Wall seconds of the two paper-step spans the kernel opens
  /// (label_edge = vertex map + hook sweep, connected_components =
  /// label read-back), so callers fill TvCoreTimes without
  /// double-instrumenting the call.
  double label_edge_seconds = 0;
  double connected_components_seconds = 0;
};

/// Fused Alg. 1 + TV step 6: component label per original edge,
/// without materializing E'.  Opens the paper-step spans itself —
/// "label_edge" (nesting "aux_vertex_map" and "aux_hook") and
/// "connected_components" (nesting "aux_gather") — and emits the
/// aux_vertices / aux_hooks / aux_find_depth counters, so drivers need
/// no stopwatch or span around this call.  Labels are aux-vertex root
/// ids (component minima over V'), exactly what the materialized route
/// + connected_components_sv produces.
std::vector<vid> fused_aux_components(Executor& ex, Workspace& ws,
                                      std::span<const Edge> edges,
                                      const RootedSpanningTree& tree,
                                      std::span<const vid> tree_owner,
                                      const LowHigh& lh,
                                      Trace* trace = nullptr,
                                      FusedAuxStats* stats = nullptr);
std::vector<vid> fused_aux_components(Executor& ex,
                                      std::span<const Edge> edges,
                                      const RootedSpanningTree& tree,
                                      std::span<const vid> tree_owner,
                                      const LowHigh& lh,
                                      FusedAuxStats* stats = nullptr);

}  // namespace parbcc
