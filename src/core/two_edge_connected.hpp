#pragma once

#include <vector>

#include "core/bcc_result.hpp"
#include "graph/edge_list.hpp"
#include "util/thread_pool.hpp"

/// \file two_edge_connected.hpp
/// 2-edge-connected components — the bridge-based companion of
/// biconnectivity (the paper's fault-tolerance motivation concerns
/// both: articulation points are router failures, bridges are link
/// failures).
///
/// A 2-edge-connected component is a maximal vertex set where every
/// pair stays connected after any single edge failure; equivalently,
/// the connected components left after deleting all bridges.  Computed
/// here by reusing a biconnectivity result (bridges are the single-edge
/// blocks) plus one Shiloach-Vishkin pass over the non-bridge edges.

namespace parbcc {

struct TwoEdgeConnected {
  /// Component label per vertex, contiguous in [0, num_components).
  std::vector<vid> vertex_component;
  vid num_components = 0;
  /// The bridges, as edge ids (same as BccResult::bridges).
  std::vector<eid> bridges;
};

/// Derive the 2-edge-connected components from a finished BCC run
/// (`result` must carry cut info so the bridge list is populated).
TwoEdgeConnected two_edge_connected_components(Executor& ex,
                                               const EdgeList& g,
                                               const BccResult& result);

/// Convenience: run BCC (kAuto) and derive.
TwoEdgeConnected two_edge_connected_components(Executor& ex,
                                               const EdgeList& g);

}  // namespace parbcc
