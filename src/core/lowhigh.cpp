#include "core/lowhigh.hpp"

#include <atomic>

#include "rmq/sparse_table.hpp"

namespace parbcc {
namespace {

void atomic_min(std::atomic_ref<vid> slot, vid v) {
  vid cur = slot.load(std::memory_order_relaxed);
  while (v < cur &&
         !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic_ref<vid> slot, vid v) {
  vid cur = slot.load(std::memory_order_relaxed);
  while (v > cur &&
         !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

/// Per-vertex extrema over {pre(v)} and {pre(w) : (v,w) nontree}.
/// Works in place on the result vectors via atomic_ref, so it needs no
/// shadow atomic arrays (and no copy-out pass).
void local_extrema(Executor& ex, std::span<const Edge> edges,
                   const RootedSpanningTree& tree,
                   std::span<const vid> tree_owner, std::vector<vid>& lo,
                   std::vector<vid>& hi) {
  const std::size_t n = tree.parent.size();
  lo.resize(n);
  hi.resize(n);
  ex.parallel_for(n, [&](std::size_t v) {
    lo[v] = tree.pre[v];
    hi[v] = tree.pre[v];
  });
  ex.parallel_for(edges.size(), [&](std::size_t e) {
    if (tree_owner[e] != kNoVertex) return;  // tree edges don't contribute
    const vid u = edges[e].u;
    const vid v = edges[e].v;
    atomic_min(std::atomic_ref(lo[u]), tree.pre[v]);
    atomic_min(std::atomic_ref(lo[v]), tree.pre[u]);
    atomic_max(std::atomic_ref(hi[u]), tree.pre[v]);
    atomic_max(std::atomic_ref(hi[v]), tree.pre[u]);
  });
}

}  // namespace

LowHigh compute_low_high_rmq(Executor& ex, Workspace& ws,
                             std::span<const Edge> edges,
                             const RootedSpanningTree& tree,
                             std::span<const vid> tree_owner, Trace* trace) {
  const std::size_t n = tree.parent.size();
  LowHigh out;
  {
    TraceSpan span(trace, "lh_local");
    local_extrema(ex, edges, tree, tree_owner, out.low, out.high);
  }
  if (n == 0) return out;

  TraceSpan span(trace, "lh_aggregate");
  // Subtree(v) is the preorder interval [pre(v), pre(v)+sub(v)): lay
  // the local values out in preorder and answer each vertex with one
  // range query.  The scatter buffers and both O(n log n) tables are
  // frame scratch; the frame stays open across every query.
  Workspace::Frame frame(ws);
  std::span<vid> lo_by_pre = ws.alloc<vid>(n);
  std::span<vid> hi_by_pre = ws.alloc<vid>(n);
  ex.parallel_for(n, [&](std::size_t v) {
    lo_by_pre[tree.pre[v] - 1] = out.low[v];
    hi_by_pre[tree.pre[v] - 1] = out.high[v];
  });
  const MinTable<vid> min_table(ex, ws, lo_by_pre.data(), n);
  const MaxTable<vid> max_table(ex, ws, hi_by_pre.data(), n);
  ex.parallel_for(n, [&](std::size_t v) {
    const std::size_t l = tree.pre[v] - 1;
    const std::size_t r = l + tree.sub[v] - 1;
    out.low[v] = min_table.query(l, r);
    out.high[v] = max_table.query(l, r);
  });
  return out;
}

LowHigh compute_low_high_rmq(Executor& ex, std::span<const Edge> edges,
                             const RootedSpanningTree& tree,
                             std::span<const vid> tree_owner) {
  Workspace ws;
  return compute_low_high_rmq(ex, ws, edges, tree, tree_owner);
}

LowHigh compute_low_high_levels(Executor& ex, std::span<const Edge> edges,
                                const RootedSpanningTree& tree,
                                std::span<const vid> tree_owner,
                                const ChildrenCsr& children,
                                const LevelStructure& levels, Trace* trace) {
  LowHigh out;
  {
    TraceSpan span(trace, "lh_local");
    local_extrema(ex, edges, tree, tree_owner, out.low, out.high);
  }
  TraceSpan span(trace, "lh_aggregate");
  subtree_min(ex, children, levels, out.low.data());
  subtree_max(ex, children, levels, out.high.data());
  return out;
}

}  // namespace parbcc
