#include "core/hopcroft_tarjan.hpp"

#include <cassert>

#include "core/articulation.hpp"
#include "util/timer.hpp"

namespace parbcc {
namespace {

struct Frame {
  vid v;
  eid parent_edge;  // edge id leading here; kNoEdge at a DFS root
  eid next;         // cursor into v's adjacency
};

}  // namespace

BccResult hopcroft_tarjan_bcc(Executor& ex, Workspace& ws, const EdgeList& g,
                              const Csr& csr, bool compute_cut_info,
                              Trace* trace) {
  Timer timer;
  const vid n = g.n;
  const eid m = g.m();
  BccResult result;
  result.edge_component.assign(m, kNoVertex);

  TraceSpan dfs_span(trace, "dfs");
  std::vector<vid> disc(n, kNoVertex);
  std::vector<vid> low(n, 0);
  std::vector<Frame> stack;
  std::vector<eid> edge_stack;
  stack.reserve(64);
  edge_stack.reserve(64);

  vid timer_v = 0;
  vid next_label = 0;

  for (vid r = 0; r < n; ++r) {
    if (disc[r] != kNoVertex) continue;
    disc[r] = low[r] = timer_v++;
    stack.push_back({r, kNoEdge, 0});

    while (!stack.empty()) {
      Frame& frame = stack.back();
      const vid v = frame.v;
      const auto nbrs = csr.neighbors(v);
      const auto eids = csr.incident_edges(v);

      if (frame.next < nbrs.size()) {
        const eid k = frame.next++;
        const vid w = nbrs[k];
        const eid e = eids[k];
        if (e == frame.parent_edge || w == v) continue;  // tree edge up / loop
        if (disc[w] == kNoVertex) {
          edge_stack.push_back(e);
          disc[w] = low[w] = timer_v++;
          stack.push_back({w, e, 0});
        } else if (disc[w] < disc[v]) {
          // Back edge to a proper ancestor (or a parallel copy of the
          // tree edge); it opens no new vertex but joins the cycle.
          edge_stack.push_back(e);
          if (disc[w] < low[v]) low[v] = disc[w];
        }
        // disc[w] > disc[v]: the edge was already handled from w.
        continue;
      }

      // v's adjacency exhausted: retreat.
      const eid up_edge = frame.parent_edge;
      stack.pop_back();
      if (stack.empty()) break;  // DFS root finished
      Frame& parent = stack.back();
      const vid u = parent.v;
      if (low[v] < low[u]) low[u] = low[v];
      if (low[v] >= disc[u]) {
        // u separates v's subtree: everything stacked above (and
        // including) the tree edge u-v is one biconnected component.
        const vid label = next_label++;
        for (;;) {
          assert(!edge_stack.empty());
          const eid e = edge_stack.back();
          edge_stack.pop_back();
          result.edge_component[e] = label;
          if (e == up_edge) break;
        }
      }
    }
    assert(edge_stack.empty());
  }

  // Self-loops never enter the DFS; give each its own component so the
  // labeling is total even on unsanitized inputs.
  for (eid e = 0; e < m; ++e) {
    if (result.edge_component[e] == kNoVertex) {
      assert(g.edges[e].u == g.edges[e].v);
      result.edge_component[e] = next_label++;
    }
  }

  result.num_components = next_label;
  dfs_span.close();
  result.times.total = timer.seconds();

  if (compute_cut_info) {
    TraceSpan span(trace, "cut_info");
    annotate_cut_info(ex, ws, g, result);
  }
  return result;
}

BccResult hopcroft_tarjan_bcc(Executor& ex, const EdgeList& g, const Csr& csr,
                              bool compute_cut_info) {
  Workspace ws;
  return hopcroft_tarjan_bcc(ex, ws, g, csr, compute_cut_info);
}

BccResult hopcroft_tarjan_bcc(const EdgeList& g, const Csr& csr,
                              bool compute_cut_info) {
  // Executor(1) runs inline with no worker threads, so this legacy
  // entry point stays cheap; prefer the borrowing overloads.
  Executor ex(1);
  return hopcroft_tarjan_bcc(ex, g, csr, compute_cut_info);
}

}  // namespace parbcc
