#include "core/bcc_context.hpp"

namespace parbcc {
namespace {

/// Order-dependent content hash of an edge list.  (address, n, m)
/// alone is not a safe cache key: a destroyed graph's address can be
/// reused by a different graph of the same size, and an (n, m)
/// collision then serves a stale adjacency for the wrong input.  The
/// fingerprint closes that hole (and catches in-place edge edits) for
/// one O(m) scan — noise next to the conversion it guards.
std::uint64_t fingerprint(const EdgeList& g) {
  std::uint64_t h = 0x9e3779b97f4a7c15ull ^
                    ((std::uint64_t{g.n} << 32) | g.m());
  for (const Edge& e : g.edges) {
    std::uint64_t x = (std::uint64_t{e.u} << 32) | e.v;
    x *= 0xbf58476d1ce4e5b9ull;
    x ^= x >> 31;
    h = (h ^ x) * 0x94d049bb133111ebull;
  }
  return h;
}

}  // namespace

const PreparedGraph& BccContext::prepare(const EdgeList& g) {
  const std::uint64_t fp = fingerprint(g);
  if (cache_ && cached_graph_ == &g && cached_fp_ == fp) {
    // Repeat solve of the same graph: the conversion was already paid
    // (and charged) by the build below; report it as free from now on.
    cache_->waive_conversion_charge();
    return *cache_;
  }
  cache_.reset();
  cache_.emplace(*ex_, ws_, g);
  cached_graph_ = &g;
  cached_fp_ = fp;
  return *cache_;
}

const PreparedGraph& BccContext::adopt(io::MappedGraph&& mapped) {
  // Drop the old cache entry before its backing mapping: the entry's
  // views point into the mapped bytes.
  cache_.reset();
  cached_graph_ = nullptr;
  mapped_.reset();
  mapped_.emplace(std::move(mapped));
  cache_.emplace(mapped_->graph(), mapped_->csr());
  if (mapped_->has_compressed()) {
    cache_->attach_compressed(mapped_->compressed());
  }
  // Key the cache like prepare() would, so solving the mapped graph
  // through the ordinary dispatcher is a hit (the fingerprint pass
  // also warms the edges section).
  cached_graph_ = &mapped_->graph();
  cached_fp_ = fingerprint(mapped_->graph());
  return *cache_;
}

namespace io {

const PreparedGraph& map_prepared_graph(BccContext& ctx,
                                        const std::string& path,
                                        const MapOptions& opt) {
  return ctx.adopt(MappedGraph::map(path, opt));
}

}  // namespace io

const BccContext::StrippedGraph& BccContext::strip(const EdgeList& g) {
  const std::uint64_t fp = fingerprint(g);
  if (strip_ && strip_source_ == &g && strip_fp_ == fp) {
    return *strip_;
  }
  // The storage is rebuilt in place (same address), so a conversion
  // cache keyed on the old stripped graph could serve a stale CSR if
  // the new one happened to match on (n, m); drop it first.
  if (strip_ && cached_graph_ == &strip_->graph) {
    cache_.reset();
    cached_graph_ = nullptr;
  }
  strip_.emplace();
  strip_->graph = remove_self_loops(g, &strip_->kept);
  strip_source_ = &g;
  strip_fp_ = fp;
  return *strip_;
}

}  // namespace parbcc
