#include "core/bcc_context.hpp"

namespace parbcc {

const PreparedGraph& BccContext::prepare(const EdgeList& g) {
  if (cache_ && cached_graph_ == &g && cached_n_ == g.n &&
      cached_m_ == g.m()) {
    // Repeat solve of the same graph: the conversion was already paid
    // (and charged) by the build below; report it as free from now on.
    cache_->waive_conversion_charge();
    return *cache_;
  }
  cache_.reset();
  cache_.emplace(*ex_, ws_, g);
  cached_graph_ = &g;
  cached_n_ = g.n;
  cached_m_ = g.m();
  return *cache_;
}

const BccContext::StrippedGraph& BccContext::strip(const EdgeList& g) {
  if (strip_ && strip_source_ == &g && strip_n_ == g.n &&
      strip_m_ == g.m()) {
    return *strip_;
  }
  // The storage is rebuilt in place (same address), so a conversion
  // cache keyed on the old stripped graph could serve a stale CSR if
  // the new one happened to match on (n, m); drop it first.
  if (strip_ && cached_graph_ == &strip_->graph) {
    cache_.reset();
    cached_graph_ = nullptr;
  }
  strip_.emplace();
  strip_->graph = remove_self_loops(g, &strip_->kept);
  strip_source_ = &g;
  strip_n_ = g.n;
  strip_m_ = g.m();
  return *strip_;
}

}  // namespace parbcc
