#include "core/bcc_context.hpp"

namespace parbcc {

const PreparedGraph& BccContext::prepare(const EdgeList& g) {
  if (cache_ && cached_graph_ == &g && cached_n_ == g.n &&
      cached_m_ == g.m()) {
    // Repeat solve of the same graph: the conversion was already paid
    // (and charged) by the build below; report it as free from now on.
    cache_->waive_conversion_charge();
    return *cache_;
  }
  cache_.reset();
  cache_.emplace(*ex_, ws_, g);
  cached_graph_ = &g;
  cached_n_ = g.n;
  cached_m_ = g.m();
  return *cache_;
}

}  // namespace parbcc
