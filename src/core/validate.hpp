#pragma once

#include <string>

#include "core/bcc_result.hpp"
#include "graph/edge_list.hpp"
#include "util/thread_pool.hpp"

/// \file validate.hpp
/// Certificate checking for a biconnected-components result.
///
/// The checker verifies, without re-running any BCC algorithm, the
/// local exchange properties that characterise the block partition:
///
///  (1) labels are total and contiguous in [0, num_components);
///  (2) every component's edge set is connected (blocks are connected
///      subgraphs);
///  (3) within one block of >= 2 edges, removing any single vertex
///      leaves the block's edges connected (verified exactly on blocks
///      up to a size cap, spot-checked above it);
///  (4) two blocks never share more than one vertex;
///  (5) every cycle stays inside one block: for a spanning forest of
///      the graph, each nontree edge's fundamental-cycle tree path
///      carries a single label.
///
/// Together (2), (4) and (5) pin the partition exactly: (5) forces
/// cycle-mates together, (2)+(4) forbid over-merging.  O((n + m) log n)
/// and independent of the TV machinery, so it doubles as a test oracle
/// at scales where the brute-force references are too slow.

namespace parbcc {

struct ValidationReport {
  bool ok = true;
  std::string message;  // first violation found, empty when ok
};

ValidationReport validate_bcc(Executor& ex, const EdgeList& g,
                              const BccResult& result);

}  // namespace parbcc
