#include "core/st_numbering.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

namespace parbcc {
namespace {

struct DfsData {
  std::vector<vid> pre;        // preorder number, 1-based
  std::vector<vid> parent;     // parent vertex
  std::vector<vid> low;        // lowpoint VERTEX (minimum preorder reachable)
  std::vector<vid> order;      // vertices in preorder
};

/// Iterative DFS from s whose first tree edge is (s, t); computes
/// preorder, parents and lowpoint vertices, and verifies biconnectivity
/// on the way (root with one child, no child subtree trapped below its
/// parent).
DfsData dfs_with_first_child(const EdgeList& g,
                             const std::vector<std::vector<std::pair<vid, eid>>>& adj,
                             vid s, vid t) {
  const vid n = g.n;
  DfsData d;
  d.pre.assign(n, 0);
  d.parent.assign(n, kNoVertex);
  d.low.assign(n, kNoVertex);
  d.order.reserve(n);

  struct Frame {
    vid v;
    eid parent_edge;
    std::size_t next;
  };
  std::vector<Frame> stack;
  vid counter = 1;

  d.pre[s] = counter++;
  d.parent[s] = s;
  d.low[s] = s;
  d.order.push_back(s);
  stack.push_back({s, kNoEdge, 0});
  vid root_children = 0;

  while (!stack.empty()) {
    Frame& frame = stack.back();
    const vid v = frame.v;
    if (frame.next < adj[v].size()) {
      const auto [w, e] = adj[v][frame.next++];
      if (e == frame.parent_edge || w == v) continue;
      if (d.pre[w] == 0) {
        if (v == s && ++root_children > 1) {
          throw std::invalid_argument(
              "st_number: s is an articulation point (graph not "
              "biconnected)");
        }
        d.pre[w] = counter++;
        d.parent[w] = v;
        d.low[w] = w;
        d.order.push_back(w);
        stack.push_back({w, e, 0});
      } else if (d.pre[w] < d.pre[v]) {
        if (d.pre[w] < d.pre[d.low[v]]) d.low[v] = w;
      }
      continue;
    }
    stack.pop_back();
    if (stack.empty()) break;
    const vid u = stack.back().v;
    if (d.pre[d.low[v]] < d.pre[d.low[u]]) d.low[u] = d.low[v];
    // Biconnectivity: a non-root parent must see every child subtree
    // escape above it.
    if (u != s && d.pre[d.low[v]] >= d.pre[u]) {
      throw std::invalid_argument(
          "st_number: articulation point found (graph not biconnected)");
    }
  }
  if (d.order.size() != n) {
    throw std::invalid_argument("st_number: graph is disconnected");
  }
  if (n >= 2 && d.order[1] != t) {
    throw std::logic_error("st_number: t was not the first child");
  }
  return d;
}

}  // namespace

StNumbering st_number(const EdgeList& g, vid s, vid t) {
  const vid n = g.n;
  if (s >= n || t >= n || s == t) {
    throw std::invalid_argument("st_number: bad s/t");
  }
  if (!g.validate()) {
    throw std::invalid_argument("st_number: invalid graph (self-loops?)");
  }
  bool st_edge = false;
  for (const Edge& e : g.edges) {
    if ((e.u == s && e.v == t) || (e.u == t && e.v == s)) {
      st_edge = true;
      break;
    }
  }
  if (!st_edge) {
    throw std::invalid_argument("st_number: {s, t} must be an edge");
  }

  StNumbering out;
  out.number.assign(n, 0);
  if (n == 2) {
    out.number[s] = 1;
    out.number[t] = 2;
    return out;
  }

  // Adjacency with t forced first at s.
  std::vector<std::vector<std::pair<vid, eid>>> adj(n);
  for (eid e = 0; e < g.m(); ++e) {
    adj[g.edges[e].u].push_back({g.edges[e].v, e});
    adj[g.edges[e].v].push_back({g.edges[e].u, e});
  }
  for (std::size_t k = 0; k < adj[s].size(); ++k) {
    if (adj[s][k].first == t) {
      std::swap(adj[s][0], adj[s][k]);
      break;
    }
  }

  const DfsData d = dfs_with_first_child(g, adj, s, t);

  // Tarjan's streamlined Even-Tarjan construction: keep an ordered
  // list, initially [s, t]; insert every other vertex in preorder
  // either directly before or directly after its parent, steered by
  // the +/- sign of its lowpoint vertex.  The final list order is an
  // st-order.
  std::vector<vid> next(n, kNoVertex), prev(n, kNoVertex);
  std::vector<std::int8_t> sign(n, 0);  // -1 or +1
  next[s] = t;
  prev[t] = s;
  sign[s] = -1;

  const auto insert_before = [&](vid v, vid at) {
    const vid p = prev[at];
    prev[v] = p;
    next[v] = at;
    prev[at] = v;
    if (p != kNoVertex) next[p] = v;
  };
  const auto insert_after = [&](vid v, vid at) {
    const vid nx = next[at];
    next[v] = nx;
    prev[v] = at;
    next[at] = v;
    if (nx != kNoVertex) prev[nx] = v;
  };

  for (const vid v : d.order) {
    if (v == s || v == t) continue;
    const vid p = d.parent[v];
    if (sign[d.low[v]] < 0) {
      insert_before(v, p);
      sign[p] = +1;
    } else {
      insert_after(v, p);
      sign[p] = -1;
    }
  }

  // Walk the list; the head may have moved in front of s? No: nothing
  // is ever inserted before s, because insert_before targets a parent,
  // and s's children insert relative to s only via sign(low)=..., with
  // low(child of s) == s and sign(s) flipping.  Still, find the head
  // defensively.
  vid head = s;
  while (prev[head] != kNoVertex) head = prev[head];
  vid counter = 1;
  for (vid v = head; v != kNoVertex; v = next[v]) {
    out.number[v] = counter++;
  }
  if (counter != n + 1) {
    throw std::logic_error("st_number: list walk did not cover all vertices");
  }
  return out;
}

bool is_valid_st_numbering(const EdgeList& g, vid s, vid t,
                           const StNumbering& st) {
  const vid n = g.n;
  if (st.number.size() != n) return false;
  if (st.number[s] != 1 || st.number[t] != n) return false;
  std::vector<bool> used(n + 1, false);
  for (vid v = 0; v < n; ++v) {
    const vid x = st.number[v];
    if (x < 1 || x > n || used[x]) return false;
    used[x] = true;
  }
  std::vector<std::uint8_t> has_lower(n, 0), has_higher(n, 0);
  for (const Edge& e : g.edges) {
    if (e.u == e.v) continue;
    const vid a = st.number[e.u] < st.number[e.v] ? e.u : e.v;
    const vid b = a == e.u ? e.v : e.u;
    has_higher[a] = 1;
    has_lower[b] = 1;
  }
  for (vid v = 0; v < n; ++v) {
    if (v != s && !has_lower[v]) return false;
    if (v != t && !has_higher[v]) return false;
  }
  return true;
}

}  // namespace parbcc
