#include "spanning/forest.hpp"

#include <deque>

#include "connectivity/union_find.hpp"

namespace parbcc {

std::vector<eid> sequential_spanning_forest(vid n,
                                            std::span<const Edge> edges) {
  UnionFind uf(n);
  std::vector<eid> out;
  for (eid i = 0; i < edges.size(); ++i) {
    if (uf.unite(edges[i].u, edges[i].v)) out.push_back(i);
  }
  return out;
}

SeqBfsResult sequential_bfs(const Csr& g, vid root) {
  const vid n = g.num_vertices();
  SeqBfsResult out;
  out.parent.assign(n, kNoVertex);
  out.level.assign(n, kNoVertex);
  if (n == 0) return out;
  out.parent[root] = root;
  out.level[root] = 0;
  out.reached = 1;
  std::deque<vid> queue{root};
  while (!queue.empty()) {
    const vid v = queue.front();
    queue.pop_front();
    for (const vid w : g.neighbors(v)) {
      if (out.parent[w] == kNoVertex) {
        out.parent[w] = v;
        out.level[w] = out.level[v] + 1;
        ++out.reached;
        queue.push_back(w);
      }
    }
  }
  return out;
}

bool is_forest(vid n, std::span<const Edge> edges,
               std::span<const eid> subset) {
  UnionFind uf(n);
  for (const eid i : subset) {
    if (!uf.unite(edges[i].u, edges[i].v)) return false;
  }
  return true;
}

bool is_valid_rooted_tree(std::span<const vid> parent, vid root) {
  const std::size_t n = parent.size();
  if (root >= n || parent[root] != root) return false;
  // Walk to the root from every vertex, marking the path's "epoch" to
  // detect cycles in O(n) total (each vertex resolved once).
  std::vector<vid> state(n, kNoVertex);  // kNoVertex = unvisited; else epoch id
  std::vector<bool> ok(n, false);
  ok[root] = true;
  state[root] = root;
  for (std::size_t start = 0; start < n; ++start) {
    if (parent[start] == kNoVertex || state[start] != kNoVertex) continue;
    // Follow parents, marking with this walk's epoch.
    std::vector<vid> path;
    vid v = static_cast<vid>(start);
    while (state[v] == kNoVertex) {
      if (parent[v] == kNoVertex) return false;  // dangles off the tree
      state[v] = static_cast<vid>(start);
      path.push_back(v);
      v = parent[v];
    }
    if (state[v] == static_cast<vid>(start) && !ok[v]) {
      return false;  // hit our own path: a cycle
    }
    if (!ok[v]) return false;  // reached a vertex known to be broken
    for (const vid w : path) ok[w] = true;
  }
  return true;
}

}  // namespace parbcc
