#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/edge_list.hpp"
#include "util/thread_pool.hpp"
#include "util/types.hpp"
#include "util/workspace.hpp"

/// \file boruvka_msf.hpp
/// Parallel minimum spanning forest by Borůvka rounds — the companion
/// primitive study the paper cites ([4], Bader & Cong, "Fast
/// shared-memory algorithms for computing the minimum spanning forest
/// of sparse graphs", IPDPS 2004).
///
/// Each round every component finds its minimum-weight incident edge
/// (atomic min over packed (weight, edge) keys), winners hook exactly
/// as in the Shiloach-Vishkin spanning tree (CAS on the root, strictly
/// decreasing labels), then labels shortcut.  Components at least halve
/// per round, so there are O(log n) rounds of O(m) work.
///
/// Ties are broken by edge id, so the MSF weight is always minimal and
/// the forest itself is unique when weights are distinct.

namespace parbcc {

struct MsfResult {
  /// Indices of the forest edges (n - #components of them).
  std::vector<eid> tree_edges;
  /// Total weight of the forest.
  std::uint64_t total_weight = 0;
  vid num_components = 0;
};

/// Minimum spanning forest of (edges, weights) over n vertices.
/// Requires weights[e] < 2^32 and edges.size() == weights.size().
MsfResult boruvka_msf(Executor& ex, Workspace& ws, vid n,
                      std::span<const Edge> edges,
                      std::span<const std::uint32_t> weights);
MsfResult boruvka_msf(Executor& ex, vid n, std::span<const Edge> edges,
                      std::span<const std::uint32_t> weights);

/// Sequential Kruskal (sort + union-find), the correctness oracle.
MsfResult kruskal_msf(vid n, std::span<const Edge> edges,
                      std::span<const std::uint32_t> weights);

}  // namespace parbcc
