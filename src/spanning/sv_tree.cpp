#include "spanning/sv_tree.hpp"

#include <atomic>

#include "scan/compact.hpp"
#include "util/padded.hpp"

namespace parbcc {
namespace {

/// Core graft-and-shortcut with hook recording.  `edge_at(k)` maps the
/// dense iteration index k in [0, count) to an edge id in `edges`.
/// `comp` (the output label array) is the working array, updated in
/// place through std::atomic_ref; the hook slots are Workspace scratch.
///
/// `fast` selects stride-2 hooking plus full per-round pointer
/// jumping.  The graft CAS itself is the same in both modes: hook[du]
/// can only be recorded by the one thread that flips label[du] off its
/// self-loop, and labels never return to self (they only decrease), so
/// each root grafts at most once in either mode.
template <class EdgeAt>
SpanningForest sv_forest_impl(Executor& ex, Workspace& ws, vid n,
                              std::span<const Edge> edges, std::size_t count,
                              EdgeAt edge_at, bool fast) {
  SpanningForest out;
  out.comp.resize(n);
  std::span<vid> label(out.comp);

  Workspace::Frame frame(ws);
  std::span<eid> hook = ws.alloc<eid>(n);
  ex.parallel_for(n, [&](std::size_t v) {
    label[v] = static_cast<vid>(v);
    hook[v] = kNoEdge;
  });

  const int p = ex.threads();
  std::span<Padded<bool>> thread_changed =
      ws.alloc<Padded<bool>>(static_cast<std::size_t>(p));

  const auto any_changed = [&] {
    bool any = false;
    for (const auto& c : thread_changed) any = any || c.value;
    return any;
  };

  for (;;) {
    ++out.rounds;
    for (auto& c : thread_changed) c.value = false;

    ex.parallel_blocks(count, [&](int tid, std::size_t begin,
                                  std::size_t end) {
      bool changed = false;
      for (std::size_t k = begin; k < end; ++k) {
        const eid i = edge_at(k);
        const vid u = edges[i].u;
        const vid v = edges[i].v;
        vid du = std::atomic_ref(label[u]).load(std::memory_order_relaxed);
        vid dv = std::atomic_ref(label[v]).load(std::memory_order_relaxed);
        if (fast) {
          // Stride-2: hook between the grandparent labels, which the
          // previous round's full shortcut flattened to roots — so the
          // CAS below rarely hits a stale chain interior and fails.
          du = std::atomic_ref(label[du]).load(std::memory_order_relaxed);
          dv = std::atomic_ref(label[dv]).load(std::memory_order_relaxed);
        }
        if (du == dv) continue;
        if (du < dv) std::swap(du, dv);
        vid expected = du;
        if (std::atomic_ref(label[du])
                .compare_exchange_strong(expected, dv,
                                         std::memory_order_acq_rel)) {
          // This thread owns root du's single graft: record its edge.
          std::atomic_ref(hook[du]).store(i, std::memory_order_relaxed);
          changed = true;
        }
      }
      if (changed) thread_changed[static_cast<std::size_t>(tid)].value = true;
    });
    bool round_changed = any_changed();

    // Shortcut: pointer-jump every vertex — once in classic mode, to a
    // fully flattened fixpoint in fast mode.
    for (;;) {
      for (auto& c : thread_changed) c.value = false;
      ex.parallel_blocks(n, [&](int tid, std::size_t begin, std::size_t end) {
        bool changed = false;
        for (std::size_t v = begin; v < end; ++v) {
          const vid l = std::atomic_ref(label[v]).load(std::memory_order_relaxed);
          const vid ll =
              std::atomic_ref(label[l]).load(std::memory_order_relaxed);
          if (ll != l) {
            std::atomic_ref(label[v]).store(ll, std::memory_order_relaxed);
            changed = true;
          }
        }
        if (changed) thread_changed[static_cast<std::size_t>(tid)].value = true;
      });
      if (!any_changed()) break;
      round_changed = true;
      if (!fast) break;
    }

    if (!round_changed) break;
  }

  // Forest edges: hooks of all grafted roots, compacted in vertex order.
  out.tree_edges.resize(n);
  const std::size_t tree_count = pack_into(
      ex, ws, n,
      [&](std::size_t v) { return hook[v] != kNoEdge; },
      [&](std::size_t dst, std::size_t v) {
        out.tree_edges[dst] = hook[v];
      });
  out.tree_edges.resize(tree_count);
  out.num_components = static_cast<vid>(n - tree_count);
  return out;
}

}  // namespace

SpanningForest sv_spanning_forest(Executor& ex, Workspace& ws, vid n,
                                  std::span<const Edge> edges, SvMode mode) {
  return sv_forest_impl(ex, ws, n, edges, edges.size(),
                        [](std::size_t k) { return static_cast<eid>(k); },
                        mode != SvMode::kClassic);
}

SpanningForest sv_spanning_forest(Executor& ex, Workspace& ws, vid n,
                                  std::span<const Edge> edges,
                                  std::span<const eid> subset, SvMode mode) {
  return sv_forest_impl(ex, ws, n, edges, subset.size(),
                        [subset](std::size_t k) { return subset[k]; },
                        mode != SvMode::kClassic);
}

SpanningForest sv_spanning_forest(Executor& ex, vid n,
                                  std::span<const Edge> edges, SvMode mode) {
  Workspace ws;
  return sv_spanning_forest(ex, ws, n, edges, mode);
}

SpanningForest sv_spanning_forest(Executor& ex, vid n,
                                  std::span<const Edge> edges,
                                  std::span<const eid> subset, SvMode mode) {
  Workspace ws;
  return sv_spanning_forest(ex, ws, n, edges, subset, mode);
}

}  // namespace parbcc
