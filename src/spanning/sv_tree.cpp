#include "spanning/sv_tree.hpp"

#include <atomic>

#include "scan/compact.hpp"
#include "util/padded.hpp"

namespace parbcc {
namespace {

/// Core graft-and-shortcut with hook recording.  `edge_at(k)` maps the
/// dense iteration index k in [0, count) to an edge id in `edges`.
/// `comp` (the output label array) is the working array, updated in
/// place through std::atomic_ref; the hook slots are Workspace scratch.
template <class EdgeAt>
SpanningForest sv_forest_impl(Executor& ex, Workspace& ws, vid n,
                              std::span<const Edge> edges, std::size_t count,
                              EdgeAt edge_at) {
  SpanningForest out;
  out.comp.resize(n);
  std::span<vid> label(out.comp);

  Workspace::Frame frame(ws);
  std::span<eid> hook = ws.alloc<eid>(n);
  ex.parallel_for(n, [&](std::size_t v) {
    label[v] = static_cast<vid>(v);
    hook[v] = kNoEdge;
  });

  const int p = ex.threads();
  std::span<Padded<bool>> thread_changed =
      ws.alloc<Padded<bool>>(static_cast<std::size_t>(p));

  for (;;) {
    for (auto& c : thread_changed) c.value = false;

    ex.parallel_blocks(count, [&](int tid, std::size_t begin,
                                  std::size_t end) {
      bool changed = false;
      for (std::size_t k = begin; k < end; ++k) {
        const eid i = edge_at(k);
        const vid u = edges[i].u;
        const vid v = edges[i].v;
        vid du = std::atomic_ref(label[u]).load(std::memory_order_relaxed);
        vid dv = std::atomic_ref(label[v]).load(std::memory_order_relaxed);
        if (du == dv) continue;
        if (du < dv) std::swap(du, dv);
        vid expected = du;
        if (std::atomic_ref(label[du])
                .compare_exchange_strong(expected, dv,
                                         std::memory_order_acq_rel)) {
          // This thread owns root du's single graft: record its edge.
          std::atomic_ref(hook[du]).store(i, std::memory_order_relaxed);
          changed = true;
        }
      }
      if (changed) thread_changed[static_cast<std::size_t>(tid)].value = true;
    });

    ex.parallel_blocks(n, [&](int tid, std::size_t begin, std::size_t end) {
      bool changed = false;
      for (std::size_t v = begin; v < end; ++v) {
        const vid l = std::atomic_ref(label[v]).load(std::memory_order_relaxed);
        const vid ll =
            std::atomic_ref(label[l]).load(std::memory_order_relaxed);
        if (ll != l) {
          std::atomic_ref(label[v]).store(ll, std::memory_order_relaxed);
          changed = true;
        }
      }
      if (changed) thread_changed[static_cast<std::size_t>(tid)].value = true;
    });

    bool any = false;
    for (const auto& c : thread_changed) any = any || c.value;
    if (!any) break;
  }

  // Forest edges: hooks of all grafted roots, compacted in vertex order.
  out.tree_edges.resize(n);
  const std::size_t tree_count = pack_into(
      ex, ws, n,
      [&](std::size_t v) { return hook[v] != kNoEdge; },
      [&](std::size_t dst, std::size_t v) {
        out.tree_edges[dst] = hook[v];
      });
  out.tree_edges.resize(tree_count);
  out.num_components = static_cast<vid>(n - tree_count);
  return out;
}

}  // namespace

SpanningForest sv_spanning_forest(Executor& ex, Workspace& ws, vid n,
                                  std::span<const Edge> edges) {
  return sv_forest_impl(ex, ws, n, edges, edges.size(),
                        [](std::size_t k) { return static_cast<eid>(k); });
}

SpanningForest sv_spanning_forest(Executor& ex, Workspace& ws, vid n,
                                  std::span<const Edge> edges,
                                  std::span<const eid> subset) {
  return sv_forest_impl(ex, ws, n, edges, subset.size(),
                        [subset](std::size_t k) { return subset[k]; });
}

SpanningForest sv_spanning_forest(Executor& ex, vid n,
                                  std::span<const Edge> edges) {
  Workspace ws;
  return sv_spanning_forest(ex, ws, n, edges);
}

SpanningForest sv_spanning_forest(Executor& ex, vid n,
                                  std::span<const Edge> edges,
                                  std::span<const eid> subset) {
  Workspace ws;
  return sv_spanning_forest(ex, ws, n, edges, subset);
}

}  // namespace parbcc
