#include "spanning/certificate.hpp"

#include <atomic>
#include <stdexcept>

#include "graph/csr.hpp"
#include "spanning/sv_tree.hpp"
#include "scan/compact.hpp"
#include "util/concat.hpp"
#include "util/padded.hpp"

namespace parbcc {

SparseCertificate sparse_certificate_edge(Executor& ex, const EdgeList& g,
                                          unsigned k) {
  if (k == 0) {
    throw std::invalid_argument("sparse_certificate_edge: k >= 1");
  }
  SparseCertificate out;
  out.forest_offsets.push_back(0);
  std::vector<std::uint8_t> used(g.m(), 0);
  std::vector<eid> candidates;
  for (unsigned round = 0; round < k; ++round) {
    pack_indices(ex, g.m(),
                 [&](std::size_t e) { return used[e] == 0; }, candidates);
    const SpanningForest forest =
        sv_spanning_forest(ex, g.n, g.edges, candidates);
    for (const eid e : forest.tree_edges) {
      used[e] = 1;
      out.edges.push_back(e);
    }
    out.forest_offsets.push_back(static_cast<eid>(out.edges.size()));
  }
  return out;
}

SparseCertificate sparse_certificate_vertex(Executor& ex, const EdgeList& g,
                                            unsigned k) {
  if (k == 0) {
    throw std::invalid_argument("sparse_certificate_vertex: k >= 1");
  }
  const Csr csr = Csr::build(ex, g);
  SparseCertificate out;
  out.forest_offsets.push_back(0);
  std::vector<std::uint8_t> used(g.m(), 0);

  const int p = ex.threads();
  std::vector<std::atomic<vid>> parent(g.n);
  std::vector<eid> parent_edge(g.n, kNoEdge);
  std::vector<vid> level(g.n, 0);
  std::vector<Padded<std::vector<vid>>> local(static_cast<std::size_t>(p));
  // One frontier buffer serves every component and round: a frontier
  // never exceeds n, and each traversal drains its own entries.
  std::vector<vid> frontier(g.n);
  std::vector<std::size_t> concat_offset(static_cast<std::size_t>(p) + 1);

  for (unsigned round = 0; round < k; ++round) {
    ex.parallel_for(g.n, [&](std::size_t v) {
      parent[v].store(kNoVertex, std::memory_order_relaxed);
      parent_edge[v] = kNoEdge;
    });
    // BFS forest over the unused edges: every still-unvisited vertex in
    // id order seeds a level-synchronous traversal of its component.
    for (vid r = 0; r < g.n; ++r) {
      if (parent[r].load(std::memory_order_relaxed) != kNoVertex) continue;
      parent[r].store(r, std::memory_order_relaxed);
      level[r] = 0;
      frontier[0] = r;
      std::size_t frontier_size = 1;
      while (frontier_size != 0) {
        for (auto& buf : local) buf.value.clear();
        ex.parallel_blocks(
            frontier_size, [&](int tid, std::size_t begin,
                               std::size_t end) {
              auto& next = local[static_cast<std::size_t>(tid)].value;
              for (std::size_t i = begin; i < end; ++i) {
                const vid v = frontier[i];
                const auto nbrs = csr.neighbors(v);
                const auto eids = csr.incident_edges(v);
                for (std::size_t j = 0; j < nbrs.size(); ++j) {
                  if (used[eids[j]]) continue;
                  vid expected = kNoVertex;
                  if (parent[nbrs[j]].compare_exchange_strong(
                          expected, v, std::memory_order_acq_rel)) {
                    // CAS winner is the sole writer of these slots.
                    parent_edge[nbrs[j]] = eids[j];
                    level[nbrs[j]] = level[v] + 1;
                    next.push_back(nbrs[j]);
                  }
                }
              }
            });
        frontier_size = concat_thread_buffers(
            ex,
            [&](int t) -> const std::vector<vid>& {
              return local[static_cast<std::size_t>(t)].value;
            },
            std::span<std::size_t>(concat_offset), frontier.data());
      }
    }
    // Harvest this round's forest and retire its edges.
    for (vid v = 0; v < g.n; ++v) {
      if (parent_edge[v] != kNoEdge) {
        used[parent_edge[v]] = 1;
        out.edges.push_back(parent_edge[v]);
      }
    }
    out.forest_offsets.push_back(static_cast<eid>(out.edges.size()));
    if (round == 0) {
      // Keep F1's exact BFS structure for the omitted-edge scatter
      // rule (see the header); later rounds reuse the arrays.
      out.f1_level = level;
      out.f1_parent_edge = parent_edge;
    }
  }
  return out;
}

}  // namespace parbcc
