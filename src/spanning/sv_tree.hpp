#pragma once

#include <span>
#include <vector>

#include "connectivity/shiloach_vishkin.hpp"
#include "graph/edge_list.hpp"
#include "util/thread_pool.hpp"
#include "util/types.hpp"
#include "util/workspace.hpp"

/// \file sv_tree.hpp
/// Spanning forest from Shiloach-Vishkin graft-and-shortcut, recording
/// hook edges — TV step 1 ("a spanning tree algorithm derived from the
/// Shiloach-Vishkin connected components algorithm").
///
/// Whenever a root is grafted (CAS-arbitrated, hence at most once), the
/// edge that triggered the graft is recorded; the recorded edges form a
/// spanning forest: each successful hook joins two previously separate
/// trees, and the strictly-decreasing label order excludes cycles.
///
/// The SvMode knob selects the convergence scheme (see
/// shiloach_vishkin.hpp).  In kFastSV the graft stays CAS-arbitrated —
/// the witness recording *requires* one winner per root — but it reads
/// stride-2 (grandparent) labels, so hooks land on fresher, smaller
/// roots, and each round ends with a full pointer-jumping loop instead
/// of a single jump.  Both shrink the round count without touching the
/// forest argument: hooks still strictly decrease and still fire
/// exactly once per grafted root, so exactly n - num_components edges
/// are recorded in every mode.

namespace parbcc {

struct SpanningForest {
  /// Indices (into the input edge sequence) of the forest edges;
  /// exactly n - num_components of them.
  std::vector<eid> tree_edges;
  /// Component label per vertex (minimum vertex id of the component).
  std::vector<vid> comp;
  vid num_components = 0;
  /// Graft+shortcut passes until convergence (including the final
  /// no-change pass), for the frontier ablation.
  vid rounds = 0;
};

/// Spanning forest over all edges.
SpanningForest sv_spanning_forest(Executor& ex, Workspace& ws, vid n,
                                  std::span<const Edge> edges,
                                  SvMode mode = SvMode::kAuto);
SpanningForest sv_spanning_forest(Executor& ex, vid n,
                                  std::span<const Edge> edges,
                                  SvMode mode = SvMode::kAuto);

/// Spanning forest over the subset `subset` (edge indices into
/// `edges`); returned tree_edges are indices into `edges`, not into
/// `subset`.  Lets TV-filter build F over G - T without copying edges.
SpanningForest sv_spanning_forest(Executor& ex, Workspace& ws, vid n,
                                  std::span<const Edge> edges,
                                  std::span<const eid> subset,
                                  SvMode mode = SvMode::kAuto);
SpanningForest sv_spanning_forest(Executor& ex, vid n,
                                  std::span<const Edge> edges,
                                  std::span<const eid> subset,
                                  SvMode mode = SvMode::kAuto);

}  // namespace parbcc
