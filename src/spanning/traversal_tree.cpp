#include "spanning/traversal_tree.hpp"

#include <atomic>
#include <mutex>
#include <span>
#include <thread>

#include "util/padded.hpp"

namespace parbcc {
namespace {

/// A mutex-guarded vertex stack; the owner pushes/pops at the back,
/// thieves take half from the front.  Contention is negligible at SMP
/// scale (p <= a few dozen), which keeps this far simpler than a
/// lock-free deque without changing the measured behaviour.
struct alignas(kCacheLine) WorkStack {
  std::mutex mu;
  std::vector<vid> items;

  void push(vid v) {
    std::lock_guard<std::mutex> lock(mu);
    items.push_back(v);
  }

  bool pop(vid& v) {
    std::lock_guard<std::mutex> lock(mu);
    if (items.empty()) return false;
    v = items.back();
    items.pop_back();
    return true;
  }

  /// Steal up to half the victim's items into `out`; returns count.
  std::size_t steal_half(std::vector<vid>& out) {
    std::lock_guard<std::mutex> lock(mu);
    const std::size_t take = items.size() / 2;
    if (take == 0) return 0;
    out.assign(items.begin(), items.begin() + static_cast<std::ptrdiff_t>(take));
    items.erase(items.begin(), items.begin() + static_cast<std::ptrdiff_t>(take));
    return take;
  }
};

}  // namespace

TraversalTree traversal_spanning_tree(Executor& ex, const Csr& g, vid root) {
  const vid n = g.num_vertices();
  TraversalTree out;
  out.root = root;
  out.parent.assign(n, kNoVertex);
  out.parent_edge.assign(n, kNoEdge);
  if (n == 0) return out;

  // Ownership claims CAS the output parent array in place through
  // atomic_ref — the former shadow vector of atomics (an O(n) scratch
  // allocation plus a copy-out pass) is gone entirely.
  std::span<vid> parent(out.parent);
  parent[root] = root;

  const int p = ex.threads();
  std::vector<WorkStack> stacks(static_cast<std::size_t>(p));
  stacks[0].items.push_back(root);

  // pending counts vertices discovered but not yet scanned; the
  // traversal is complete exactly when it reaches zero.
  std::atomic<std::int64_t> pending{1};
  std::atomic<vid> reached{1};

  ex.run([&](int tid) {
    WorkStack& mine = stacks[static_cast<std::size_t>(tid)];
    std::vector<vid> loot;
    int next_victim = (tid + 1) % p;
    for (;;) {
      vid v;
      if (mine.pop(v)) {
        const auto nbrs = g.neighbors(v);
        const auto eids = g.incident_edges(v);
        std::int64_t discovered = 0;
        for (std::size_t k = 0; k < nbrs.size(); ++k) {
          const vid w = nbrs[k];
          // Cheap load filters the common already-claimed case before
          // paying for a lock-prefixed CAS (dense graphs lose most
          // races: 2m - (n-1) arcs see a claimed endpoint).
          if (std::atomic_ref(parent[w]).load(std::memory_order_relaxed) !=
              kNoVertex) {
            continue;
          }
          vid expected = kNoVertex;
          if (std::atomic_ref(parent[w])
                  .compare_exchange_strong(expected, v,
                                           std::memory_order_acq_rel)) {
            out.parent_edge[w] = eids[k];  // sole writer: CAS winner
            mine.push(w);
            ++discovered;
          }
        }
        if (discovered != 0) {
          pending.fetch_add(discovered, std::memory_order_relaxed);
          reached.fetch_add(static_cast<vid>(discovered),
                            std::memory_order_relaxed);
        }
        pending.fetch_sub(1, std::memory_order_acq_rel);
        continue;
      }
      // Out of local work: try to steal, then check for termination.
      bool stole = false;
      for (int attempt = 0; attempt < p - 1; ++attempt) {
        WorkStack& victim = stacks[static_cast<std::size_t>(next_victim)];
        next_victim = (next_victim + 1) % p;
        if (next_victim == tid) next_victim = (next_victim + 1) % p;
        if (&victim == &mine) continue;
        if (victim.steal_half(loot) > 0) {
          std::lock_guard<std::mutex> lock(mine.mu);
          mine.items.insert(mine.items.end(), loot.begin(), loot.end());
          stole = true;
          break;
        }
      }
      if (stole) continue;
      if (pending.load(std::memory_order_acquire) == 0) break;
      std::this_thread::yield();
    }
  });

  out.reached = reached.load(std::memory_order_relaxed);
  return out;
}

}  // namespace parbcc
