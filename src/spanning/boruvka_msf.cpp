#include "spanning/boruvka_msf.hpp"

#include <algorithm>
#include <atomic>
#include <numeric>
#include <stdexcept>

#include "connectivity/union_find.hpp"
#include "scan/compact.hpp"
#include "util/padded.hpp"

namespace parbcc {
namespace {

constexpr std::uint64_t kInf = ~std::uint64_t{0};

void atomic_min_u64(std::atomic_ref<std::uint64_t> slot, std::uint64_t v) {
  std::uint64_t cur = slot.load(std::memory_order_relaxed);
  while (v < cur &&
         !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

MsfResult boruvka_msf(Executor& ex, Workspace& ws, vid n,
                      std::span<const Edge> edges,
                      std::span<const std::uint32_t> weights) {
  if (edges.size() != weights.size()) {
    throw std::invalid_argument("boruvka_msf: edges/weights size mismatch");
  }
  const std::size_t m = edges.size();

  Workspace::Frame frame(ws);
  std::span<vid> label = ws.alloc<vid>(n);
  std::span<std::uint64_t> best = ws.alloc<std::uint64_t>(n);
  std::span<vid> target = ws.alloc<vid>(n);
  std::span<eid> hook_edge = ws.alloc<eid>(n);
  ex.parallel_for(n, [&](std::size_t v) {
    label[v] = static_cast<vid>(v);
    hook_edge[v] = kNoEdge;
  });

  const int p = ex.threads();
  std::span<Padded<bool>> thread_changed =
      ws.alloc<Padded<bool>>(static_cast<std::size_t>(p));
  std::span<Padded<bool>> jumped =
      ws.alloc<Padded<bool>>(static_cast<std::size_t>(p));

  for (;;) {
    // Phase 1: per-component minimum incident edge, keyed
    // (weight, edge id) so ties break consistently — the property that
    // limits hook cycles to mutual pairs.
    ex.parallel_for(n, [&](std::size_t v) {
      best[v] = kInf;
      target[v] = kNoVertex;
    });
    ex.parallel_for(m, [&](std::size_t e) {
      const vid lu = label[edges[e].u];
      const vid lv = label[edges[e].v];
      if (lu == lv) return;
      const std::uint64_t key =
          (static_cast<std::uint64_t>(weights[e]) << 32) | e;
      atomic_min_u64(std::atomic_ref(best[lu]), key);
      atomic_min_u64(std::atomic_ref(best[lv]), key);
    });

    // Phase 2: each winning root records the root on the other side
    // (labels are frozen until phase 3 writes).
    ex.parallel_for(n, [&](std::size_t r) {
      const std::uint64_t key = best[r];
      if (key == kInf) return;
      const eid e = static_cast<eid>(key & 0xffffffffu);
      const vid lu = label[edges[e].u];
      const vid lv = label[edges[e].v];
      target[r] = (lu == static_cast<vid>(r)) ? lv : lu;
    });

    // Phase 3: hook.  Mutual pairs (r <-> s) hook only the larger side
    // so the pair contributes one edge and no cycle.
    for (auto& c : thread_changed) c.value = false;
    ex.parallel_blocks(n, [&](int tid, std::size_t begin, std::size_t end) {
      bool changed = false;
      for (std::size_t r = begin; r < end; ++r) {
        const vid s = target[r];
        if (s == kNoVertex) continue;
        if (target[s] == static_cast<vid>(r) && s > static_cast<vid>(r)) {
          continue;  // the larger of the mutual pair hooks, not us
        }
        std::atomic_ref(label[r]).store(s, std::memory_order_relaxed);
        hook_edge[r] = static_cast<eid>(best[r] & 0xffffffffu);
        changed = true;
      }
      if (changed) thread_changed[static_cast<std::size_t>(tid)].value = true;
    });

    bool any = false;
    for (const auto& c : thread_changed) any = any || c.value;
    if (!any) break;

    // Shortcut to fixpoint (hook chains may be several deep).
    for (;;) {
      for (auto& j : jumped) j.value = false;
      ex.parallel_blocks(n, [&](int tid, std::size_t begin, std::size_t end) {
        bool changed = false;
        for (std::size_t v = begin; v < end; ++v) {
          const vid l = std::atomic_ref(label[v]).load(std::memory_order_relaxed);
          const vid ll =
              std::atomic_ref(label[l]).load(std::memory_order_relaxed);
          if (ll != l) {
            std::atomic_ref(label[v]).store(ll, std::memory_order_relaxed);
            changed = true;
          }
        }
        if (changed) jumped[static_cast<std::size_t>(tid)].value = true;
      });
      bool any_jump = false;
      for (const auto& j : jumped) any_jump = any_jump || j.value;
      if (!any_jump) break;
    }
  }

  MsfResult out;
  out.tree_edges.resize(n);
  const std::size_t count = pack_into(
      ex, ws, n, [&](std::size_t v) { return hook_edge[v] != kNoEdge; },
      [&](std::size_t dst, std::size_t v) {
        out.tree_edges[dst] = hook_edge[v];
      });
  out.tree_edges.resize(count);
  out.num_components = static_cast<vid>(n - count);
  for (const eid e : out.tree_edges) out.total_weight += weights[e];
  return out;
}

MsfResult boruvka_msf(Executor& ex, vid n, std::span<const Edge> edges,
                      std::span<const std::uint32_t> weights) {
  Workspace ws;
  return boruvka_msf(ex, ws, n, edges, weights);
}

MsfResult kruskal_msf(vid n, std::span<const Edge> edges,
                      std::span<const std::uint32_t> weights) {
  if (edges.size() != weights.size()) {
    throw std::invalid_argument("kruskal_msf: edges/weights size mismatch");
  }
  std::vector<eid> order(edges.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](eid a, eid b) {
    return std::make_pair(weights[a], a) < std::make_pair(weights[b], b);
  });
  UnionFind uf(n);
  MsfResult out;
  for (const eid e : order) {
    if (edges[e].u != edges[e].v && uf.unite(edges[e].u, edges[e].v)) {
      out.tree_edges.push_back(e);
      out.total_weight += weights[e];
    }
  }
  out.num_components = static_cast<vid>(n - out.tree_edges.size());
  std::sort(out.tree_edges.begin(), out.tree_edges.end());
  return out;
}

}  // namespace parbcc
