#pragma once

#include <vector>

#include "graph/csr.hpp"
#include "util/thread_pool.hpp"
#include "util/types.hpp"

/// \file traversal_tree.hpp
/// Work-stealing graph-traversal rooted spanning tree — the algorithm
/// TV-opt uses to merge the paper's Spanning-tree and Root-tree steps
/// (after Bader & Cong, IPDPS 2004): parents are set directly during a
/// parallel traversal, so no Euler-tour rooting pass is needed.
///
/// Each thread keeps a private stack of discovered vertices whose
/// adjacency is still unscanned; idle threads steal half a victim's
/// stack.  Vertex ownership is claimed by a CAS on the parent slot, so
/// each vertex is discovered exactly once and the parent pointers form
/// a tree rooted at `root` by construction (a vertex's parent is always
/// discovered earlier).

namespace parbcc {

struct TraversalTree {
  /// parent[v]; parent[root] == root; kNoVertex for vertices
  /// unreachable from root.
  std::vector<vid> parent;
  /// parent_edge[v] = index of the edge (v, parent[v]) in the graph's
  /// edge list; kNoEdge for the root and unreachable vertices.
  std::vector<eid> parent_edge;
  vid root = 0;
  /// Number of vertices reached (== n iff the graph is connected).
  vid reached = 0;
};

TraversalTree traversal_spanning_tree(Executor& ex, const Csr& g, vid root);

}  // namespace parbcc
