#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"
#include "util/thread_pool.hpp"
#include "util/trace.hpp"
#include "util/types.hpp"
#include "util/workspace.hpp"

/// \file bfs_tree.hpp
/// Parallel direction-optimizing breadth-first-search tree.
///
/// TV-filter (paper Alg. 2, step 1) requires T to be a *BFS* tree:
/// Lemma 1 — no ancestral relationship between the endpoints of a
/// forest edge of G - T — holds only because BFS trees have no
/// intra-tree edges spanning more than one level.  Level-synchronous
/// expansion guarantees exact BFS levels: a vertex's parent is always
/// on the previous level.
///
/// Each level is expanded in one of two ways:
///  - top-down (sparse): threads scan a dense array of frontier
///    vertices and claim undiscovered neighbours with a CAS — O(sum of
///    frontier degrees) inspections;
///  - bottom-up (dense): threads scan the *undiscovered* vertices and
///    stop at the first neighbour found in a frontier bitmap — on the
///    wide middle levels of a low-diameter graph most vertices stop
///    after one or two probes, so the level costs far fewer
///    inspections than its degree sum.
/// The hybrid mode switches with Beamer's alpha/beta heuristic: go
/// dense when the frontier's unexplored-edge estimate passes
/// m_unexplored / alpha (and the frontier itself is at least n / beta
/// vertices — smaller frontiers would bounce straight back), back to
/// sparse when the frontier shrinks below n / beta.  Frontier bitmaps are Workspace words; the sparse
/// next-frontier is gathered by a prefix-summed parallel scatter, not
/// a serial concatenation.
///
/// Runs in O(d) rounds, which is the `O(d + log n)` term in Alg. 2's
/// complexity and the reason the paper calls out the pathological
/// chain case (see bench_pathological).

namespace parbcc {

/// Frontier expansion policy.  kAuto is the direction-optimizing
/// hybrid; the forced modes exist for the ablation bench and tests
/// (all three produce identical level arrays).
enum class BfsMode {
  kAuto,      // alpha/beta switching between the two step kinds
  kTopDown,   // sparse CAS expansion every level
  kBottomUp,  // dense bitmap sweeps every level
};

struct BfsTree {
  /// parent[v]; parent[root] == root; kNoVertex if unreachable.
  std::vector<vid> parent;
  /// parent_edge[v] = edge index of (v, parent[v]); kNoEdge for root
  /// and unreachable vertices.
  std::vector<eid> parent_edge;
  /// BFS depth; kNoVertex for unreachable vertices, 0 for the root.
  std::vector<vid> level;
  vid root = 0;
  /// Vertices reached (== n iff connected).
  vid reached = 0;
  /// Number of BFS levels (eccentricity of root + 1), 0 if n == 0.
  vid num_levels = 0;
  /// Telemetry: arcs inspected across all rounds.  Top-down charges
  /// every neighbour scanned from the frontier (a connected top-down
  /// run inspects exactly 2m); bottom-up charges neighbours probed
  /// until a frontier member is found.  The hybrid's win over
  /// top-down-only is exactly this count shrinking.
  std::uint64_t inspected_edges = 0;
  /// inspected_edges split by the worker slot that scanned each arc
  /// (size == Executor::threads()).  Under kSpmd this is the static
  /// schedule's per-thread work assignment in machine-independent
  /// units — the ablation bench gates load skew on it because wall or
  /// CPU-time profiles are polluted by oversubscription on small
  /// hosts.  Under kWorkSteal it shows where stolen chunks landed.
  std::vector<std::uint64_t> slot_inspected;
  /// Rounds executed per step kind (their sum counts the final empty
  /// round that detects termination).
  vid top_down_rounds = 0;
  vid bottom_up_rounds = 0;
  /// Diameter estimate of the traversed component: the root's
  /// eccentricity (num_levels - 1), a lower bound within a factor 2 of
  /// the true diameter.  Exposed so a cost model can recognize
  /// high-diameter (torus/chain-like) inputs, whose O(d) round count
  /// dominates the BFS term, without a second traversal.
  vid diameter_estimate = 0;
  /// Encoded adjacency bytes decoded during the traversal — nonzero
  /// only on the CompressedCsr overload, where it is what the run
  /// actually streamed from the rows (early-exiting bottom-up probes
  /// charge only the decoded prefix).  The plain overload's streamed
  /// bytes are 4 * inspected_edges by construction.
  std::uint64_t decode_bytes = 0;
};

class CompressedCsr;

/// `trace`, when given, receives the run's telemetry as counters
/// (bfs_inspected_edges, bfs_top_down_rounds, bfs_bottom_up_rounds;
/// csr_decode_bytes on the compressed overload) — per-round spans
/// would cost a clock read on pathological (diameter-bound) inputs, so
/// only aggregates are emitted.
BfsTree bfs_tree(Executor& ex, Workspace& ws, const Csr& g, vid root,
                 BfsMode mode = BfsMode::kAuto, Trace* trace = nullptr);
BfsTree bfs_tree(Executor& ex, const Csr& g, vid root,
                 BfsMode mode = BfsMode::kAuto, Trace* trace = nullptr);

/// Same traversal over delta-compressed adjacency: rows decode on the
/// fly (serially per row — no nested hub split), trading decode cycles
/// for ~2x fewer bytes streamed.  Level arrays are identical to the
/// plain overload's; parents may differ where a row's canonical order
/// reaches a different same-level neighbour first, which no consumer
/// distinguishes (any BFS tree of the graph is valid).
BfsTree bfs_tree(Executor& ex, Workspace& ws, const CompressedCsr& g,
                 vid root, BfsMode mode = BfsMode::kAuto,
                 Trace* trace = nullptr);

}  // namespace parbcc
