#pragma once

#include <vector>

#include "graph/csr.hpp"
#include "util/thread_pool.hpp"
#include "util/types.hpp"
#include "util/workspace.hpp"

/// \file bfs_tree.hpp
/// Parallel level-synchronous breadth-first-search tree.
///
/// TV-filter (paper Alg. 2, step 1) requires T to be a *BFS* tree:
/// Lemma 1 — no ancestral relationship between the endpoints of a
/// forest edge of G - T — holds only because BFS trees have no
/// intra-tree edges spanning more than one level.  Level-synchronous
/// expansion guarantees exact BFS levels: a vertex's parent is always
/// on the previous level.
///
/// Runs in O(d) rounds of O((n+m)/p) work, which is the `O(d + log n)`
/// term in Alg. 2's complexity and the reason the paper calls out the
/// pathological chain case (see bench_pathological).

namespace parbcc {

struct BfsTree {
  /// parent[v]; parent[root] == root; kNoVertex if unreachable.
  std::vector<vid> parent;
  /// parent_edge[v] = edge index of (v, parent[v]); kNoEdge for root
  /// and unreachable vertices.
  std::vector<eid> parent_edge;
  /// BFS depth; kNoVertex for unreachable vertices, 0 for the root.
  std::vector<vid> level;
  vid root = 0;
  /// Vertices reached (== n iff connected).
  vid reached = 0;
  /// Number of BFS levels (eccentricity of root + 1), 0 if n == 0.
  vid num_levels = 0;
};

BfsTree bfs_tree(Executor& ex, Workspace& ws, const Csr& g, vid root);
BfsTree bfs_tree(Executor& ex, const Csr& g, vid root);

}  // namespace parbcc
