#include "spanning/bfs_tree.hpp"

#include <atomic>

#include "scan/compact.hpp"
#include "util/bitvector.hpp"
#include "util/concat.hpp"
#include "util/padded.hpp"

namespace parbcc {
namespace {

/// Beamer's switching constants: go bottom-up when the frontier's
/// degree sum exceeds 1/alpha of the arcs still incident to
/// undiscovered vertices; return top-down when the frontier shrinks
/// below n/beta vertices.  The classic GAP/Beamer values work well
/// here: the cost model (inspections saved vs. a full pass over the
/// unvisited set) is machine-independent.
constexpr std::uint64_t kAlpha = 14;
constexpr std::uint64_t kBeta = 24;

}  // namespace

BfsTree bfs_tree(Executor& ex, Workspace& ws, const Csr& g, vid root,
                 BfsMode mode, Trace* trace) {
  const vid n = g.num_vertices();
  BfsTree out;
  out.root = root;
  out.parent.assign(n, kNoVertex);
  out.parent_edge.assign(n, kNoEdge);
  out.level.assign(n, kNoVertex);
  if (n == 0) return out;

  // The output parent array doubles as the discovery array: top-down
  // claims are CAS-arbitrated through atomic_ref; bottom-up rounds
  // write each slot from its single owning thread.
  std::span<vid> parent(out.parent);
  parent[root] = root;
  out.level[root] = 0;

  const int p = ex.threads();
  const std::size_t num_words = BitSpan::words_for(n);
  const std::uint64_t num_arcs = g.offsets()[n];

  Workspace::Frame frame(ws);
  std::span<vid> frontier = ws.alloc<vid>(n);
  BitSpan cur_bits(ws.alloc<std::uint64_t>(num_words));
  BitSpan next_bits(ws.alloc<std::uint64_t>(num_words));
  std::span<std::size_t> concat_offset =
      ws.alloc<std::size_t>(static_cast<std::size_t>(p) + 1);
  std::span<Padded<std::uint64_t>> t_inspected =
      ws.alloc<Padded<std::uint64_t>>(static_cast<std::size_t>(p));
  std::span<Padded<std::uint64_t>> t_degree =
      ws.alloc<Padded<std::uint64_t>>(static_cast<std::size_t>(p));
  std::span<Padded<std::size_t>> t_count =
      ws.alloc<Padded<std::size_t>>(static_cast<std::size_t>(p));
  // Per-thread discovery buffers grow dynamically: they are thread-local
  // state, which the single-orchestrator Workspace cannot hand out.
  std::vector<Padded<std::vector<vid>>> local(static_cast<std::size_t>(p));

  frontier[0] = root;
  std::size_t frontier_size = 1;
  std::uint64_t frontier_degree = g.degree(root);
  std::uint64_t unexplored_arcs = num_arcs - frontier_degree;

  bool dense = mode == BfsMode::kBottomUp;
  if (dense) {
    ex.parallel_for(num_words, [&](std::size_t w) { cur_bits.words()[w] = 0; });
    cur_bits.set(root);
  }

  vid depth = 0;
  vid reached = 1;
  while (frontier_size != 0) {
    ++depth;

    if (mode == BfsMode::kAuto) {
      // The frontier-size guard is hysteresis: a frontier already below
      // the beta back-switch threshold would bounce straight back to
      // sparse after paying the full bitmap sweep (the alpha test alone
      // fires on any frontier once unexplored_arcs is nearly drained —
      // e.g. the tail of a long path).
      if (!dense && frontier_degree > unexplored_arcs / kAlpha &&
          frontier_size >= n / kBeta) {
        // Sparse -> dense: scatter the frontier into a fresh bitmap.
        // Distinct frontier vertices may share a word, hence the
        // atomic OR.
        ex.parallel_for(num_words,
                        [&](std::size_t w) { cur_bits.words()[w] = 0; });
        ex.parallel_for(frontier_size,
                        [&](std::size_t k) { cur_bits.set_atomic(frontier[k]); });
        dense = true;
      } else if (dense && frontier_size < n / kBeta) {
        // Dense -> sparse: compact the bitmap back into vertex ids.
        const std::size_t packed = pack_into(
            ex, ws, n, [&](std::size_t v) { return cur_bits.get(v); },
            [&](std::size_t dst, std::size_t v) {
              frontier[dst] = static_cast<vid>(v);
            });
        frontier_size = packed;
        dense = false;
      }
    }

    for (int t = 0; t < p; ++t) {
      t_inspected[static_cast<std::size_t>(t)].value = 0;
      t_degree[static_cast<std::size_t>(t)].value = 0;
      t_count[static_cast<std::size_t>(t)].value = 0;
    }

    if (!dense) {
      // Top-down: each thread scans a slice of the frontier and claims
      // undiscovered neighbours with a CAS on the parent slot.
      for (auto& buf : local) buf.value.clear();
      ex.parallel_blocks(
          frontier_size, [&](int tid, std::size_t begin, std::size_t end) {
            std::vector<vid>& next = local[static_cast<std::size_t>(tid)].value;
            std::uint64_t inspected = 0;
            std::uint64_t claimed_degree = 0;
            for (std::size_t k = begin; k < end; ++k) {
              const vid v = frontier[k];
              const auto nbrs = g.neighbors(v);
              const auto eids = g.incident_edges(v);
              inspected += nbrs.size();
              for (std::size_t j = 0; j < nbrs.size(); ++j) {
                const vid w = nbrs[j];
                vid expected = kNoVertex;
                if (std::atomic_ref(parent[w])
                        .compare_exchange_strong(expected, v,
                                                 std::memory_order_acq_rel)) {
                  out.parent_edge[w] = eids[j];
                  out.level[w] = depth;
                  claimed_degree += g.degree(w);
                  next.push_back(w);
                }
              }
            }
            t_inspected[static_cast<std::size_t>(tid)].value = inspected;
            t_degree[static_cast<std::size_t>(tid)].value = claimed_degree;
          });
      // Gather the next frontier with a prefix-summed parallel scatter
      // (each thread writes its own buffer to a disjoint range).
      frontier_size = concat_thread_buffers(
          ex, [&](int t) -> const std::vector<vid>& {
            return local[static_cast<std::size_t>(t)].value;
          },
          concat_offset, frontier.data());
      ++out.top_down_rounds;
    } else {
      // Bottom-up: threads own whole bitmap words, so every write —
      // parent, level, next-frontier bit — has exactly one writer and
      // needs no atomics.  Undiscovered vertices probe their adjacency
      // until they find a parent on the current frontier.
      ex.parallel_blocks(
          num_words, [&](int tid, std::size_t wbegin, std::size_t wend) {
            std::uint64_t inspected = 0;
            std::uint64_t claimed_degree = 0;
            std::size_t claimed = 0;
            for (std::size_t w = wbegin; w < wend; ++w) {
              std::uint64_t next_word = 0;
              const std::size_t base = w << 6;
              const std::size_t limit =
                  base + 64 < n ? base + 64 : static_cast<std::size_t>(n);
              for (std::size_t v = base; v < limit; ++v) {
                if (parent[v] != kNoVertex) continue;
                const auto nbrs = g.neighbors(v);
                const auto eids = g.incident_edges(v);
                for (std::size_t j = 0; j < nbrs.size(); ++j) {
                  ++inspected;
                  if (cur_bits.get(nbrs[j])) {
                    parent[v] = nbrs[j];
                    out.parent_edge[v] = eids[j];
                    out.level[v] = depth;
                    next_word |= std::uint64_t{1} << (v & 63);
                    claimed_degree += nbrs.size();
                    ++claimed;
                    break;
                  }
                }
              }
              next_bits.words()[w] = next_word;
            }
            t_inspected[static_cast<std::size_t>(tid)].value = inspected;
            t_degree[static_cast<std::size_t>(tid)].value = claimed_degree;
            t_count[static_cast<std::size_t>(tid)].value = claimed;
          });
      std::size_t total = 0;
      for (int t = 0; t < p; ++t) {
        total += t_count[static_cast<std::size_t>(t)].value;
      }
      frontier_size = total;
      std::swap(cur_bits, next_bits);
      ++out.bottom_up_rounds;
    }

    frontier_degree = 0;
    for (int t = 0; t < p; ++t) {
      out.inspected_edges += t_inspected[static_cast<std::size_t>(t)].value;
      frontier_degree += t_degree[static_cast<std::size_t>(t)].value;
    }
    unexplored_arcs -= frontier_degree;
    reached += static_cast<vid>(frontier_size);
  }

  out.reached = reached;
  out.num_levels = depth;  // last round discovered nothing: depth-1 levels past root
  if (trace != nullptr) {
    trace->counter("bfs_inspected_edges",
                   static_cast<double>(out.inspected_edges));
    trace->counter("bfs_top_down_rounds",
                   static_cast<double>(out.top_down_rounds));
    trace->counter("bfs_bottom_up_rounds",
                   static_cast<double>(out.bottom_up_rounds));
  }
  return out;
}

BfsTree bfs_tree(Executor& ex, const Csr& g, vid root, BfsMode mode,
                 Trace* trace) {
  Workspace ws;
  return bfs_tree(ex, ws, g, root, mode, trace);
}

}  // namespace parbcc
