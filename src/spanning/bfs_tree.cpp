#include "spanning/bfs_tree.hpp"

#include <atomic>

#include "util/padded.hpp"

namespace parbcc {

BfsTree bfs_tree(Executor& ex, Workspace& ws, const Csr& g, vid root) {
  const vid n = g.num_vertices();
  BfsTree out;
  out.root = root;
  out.parent.assign(n, kNoVertex);
  out.parent_edge.assign(n, kNoEdge);
  out.level.assign(n, kNoVertex);
  if (n == 0) return out;

  // The output parent array doubles as the discovery array: claims are
  // CAS-arbitrated through atomic_ref, so there is no separate atomic
  // copy and no copy-out pass.
  std::span<vid> parent(out.parent);
  parent[root] = root;
  out.level[root] = 0;

  const int p = ex.threads();
  Workspace::Frame frame(ws);
  std::span<vid> frontier = ws.alloc<vid>(n);
  frontier[0] = root;
  std::size_t frontier_size = 1;
  // Per-thread discovery buffers grow dynamically: they are thread-local
  // state, which the single-orchestrator Workspace cannot hand out.
  std::vector<Padded<std::vector<vid>>> local(static_cast<std::size_t>(p));

  vid depth = 0;
  vid reached = 1;
  while (frontier_size != 0) {
    ++depth;
    for (auto& buf : local) buf.value.clear();

    // Expand: each thread scans a slice of the frontier and claims
    // undiscovered neighbours with a CAS on the parent slot.
    ex.parallel_blocks(
        frontier_size, [&](int tid, std::size_t begin, std::size_t end) {
          std::vector<vid>& next = local[static_cast<std::size_t>(tid)].value;
          for (std::size_t k = begin; k < end; ++k) {
            const vid v = frontier[k];
            const auto nbrs = g.neighbors(v);
            const auto eids = g.incident_edges(v);
            for (std::size_t j = 0; j < nbrs.size(); ++j) {
              const vid w = nbrs[j];
              vid expected = kNoVertex;
              if (std::atomic_ref(parent[w])
                      .compare_exchange_strong(expected, v,
                                               std::memory_order_acq_rel)) {
                out.parent_edge[w] = eids[j];
                out.level[w] = depth;
                next.push_back(w);
              }
            }
          }
        });

    // Concatenate per-thread buffers into the next frontier.
    std::size_t total = 0;
    for (const auto& buf : local) {
      std::copy(buf.value.begin(), buf.value.end(),
                frontier.begin() + static_cast<std::ptrdiff_t>(total));
      total += buf.value.size();
    }
    frontier_size = total;
    reached += static_cast<vid>(total);
  }

  out.reached = reached;
  out.num_levels = depth;  // last round discovered nothing: depth-1 levels past root
  return out;
}

BfsTree bfs_tree(Executor& ex, const Csr& g, vid root) {
  Workspace ws;
  return bfs_tree(ex, ws, g, root);
}

}  // namespace parbcc
