#include "spanning/bfs_tree.hpp"

#include <algorithm>
#include <atomic>
#include <type_traits>

#include "graph/compressed_csr.hpp"
#include "scan/compact.hpp"
#include "util/bitvector.hpp"
#include "util/concat.hpp"
#include "util/padded.hpp"

namespace parbcc {
namespace {

/// Beamer's switching constants: go bottom-up when the frontier's
/// degree sum exceeds 1/alpha of the arcs still incident to
/// undiscovered vertices; return top-down when the frontier shrinks
/// below n/beta vertices.  The classic GAP/Beamer values work well
/// here: the cost model (inspections saved vs. a full pass over the
/// unvisited set) is machine-independent.
constexpr std::uint64_t kAlpha = 14;
constexpr std::uint64_t kBeta = 24;

/// Under work-stealing, a vertex whose degree exceeds twice this grain
/// has its edge loop run as a nested parallel region (per-vertex inner
/// parallel_for, the parlay/PASGAL idiom) instead of serially on the
/// worker that drew it.  Plain adjacency only: a compressed row is a
/// sequential bitstream, so hubs decode serially on their worker.
constexpr std::size_t kInnerGrain = 1024;

struct HubProbe {
  std::size_t hit;
  std::uint64_t probes;
};

/// Out-of-line hub probe for bottom-up rounds: chunks of a high-degree
/// adjacency race to the *minimum-index* frontier hit, so the chosen
/// parent matches the serial scan.  Deliberately noinline and
/// value-in / value-out: inlined into the per-word lambda, its inner
/// closure captured the hot probe loop's accumulators by reference,
/// which pinned them to the stack for every word — including the vast
/// majority that never see a hub.
[[gnu::noinline]] HubProbe hub_probe(Executor& ex, const BitSpan& bits,
                                     std::span<const vid> nbrs) {
  const std::size_t deg = nbrs.size();
  const std::size_t chunks = deg / kInnerGrain;
  std::atomic<std::size_t> first_hit{deg};
  std::atomic<std::uint64_t> probes{0};
  ex.parallel_for(0, chunks, 1, [&](std::size_t c) {
    const auto [jb, je] = Executor::block_range(deg, static_cast<int>(chunks),
                                                static_cast<int>(c));
    std::uint64_t local_probes = 0;
    for (std::size_t j = jb; j < je; ++j) {
      ++local_probes;
      if (bits.get(nbrs[j])) {
        // Minimum over each chunk's first hit == the global first
        // hit, so the parent choice is schedule-free.
        std::size_t cur = first_hit.load(std::memory_order_relaxed);
        while (j < cur && !first_hit.compare_exchange_weak(
                              cur, j, std::memory_order_relaxed)) {
        }
        break;
      }
    }
    probes.fetch_add(local_probes, std::memory_order_relaxed);
  });
  return {first_hit.load(std::memory_order_relaxed),
          probes.load(std::memory_order_relaxed)};
}

/// The traversal, shared by both adjacency backends.  `G` is Csr
/// (random-access rows: spans, nested hub regions) or CompressedCsr
/// (sequential per-row decode, bytes-streamed accounting).
template <typename G>
BfsTree bfs_tree_impl(Executor& ex, Workspace& ws, const G& g, vid root,
                      BfsMode mode, Trace* trace) {
  constexpr bool kPlainAdj = std::is_same_v<G, Csr>;
  const vid n = g.num_vertices();
  BfsTree out;
  out.root = root;
  out.parent.assign(n, kNoVertex);
  out.parent_edge.assign(n, kNoEdge);
  out.level.assign(n, kNoVertex);
  out.slot_inspected.assign(static_cast<std::size_t>(ex.threads()), 0);
  if (n == 0) return out;

  // The output parent array doubles as the discovery array: top-down
  // claims are CAS-arbitrated through atomic_ref; bottom-up rounds
  // write each slot from its single owning thread.
  std::span<vid> parent(out.parent);
  parent[root] = root;
  out.level[root] = 0;

  const int p = ex.threads();
  const std::size_t num_words = BitSpan::words_for(n);
  const std::uint64_t num_arcs = 2 * static_cast<std::uint64_t>(g.num_edges());

  const bool nest = kPlainAdj && ex.mode() == ExecMode::kWorkSteal && p > 1;

  Workspace::Frame frame(ws);
  std::span<vid> frontier = ws.alloc<vid>(n);
  BitSpan cur_bits(ws.alloc<std::uint64_t>(num_words));
  BitSpan next_bits(ws.alloc<std::uint64_t>(num_words));
  std::span<std::size_t> concat_offset =
      ws.alloc<std::size_t>(static_cast<std::size_t>(p) + 1);
  std::span<Padded<std::uint64_t>> t_inspected =
      ws.alloc<Padded<std::uint64_t>>(static_cast<std::size_t>(p));
  std::span<Padded<std::uint64_t>> t_degree =
      ws.alloc<Padded<std::uint64_t>>(static_cast<std::size_t>(p));
  std::span<Padded<std::size_t>> t_count =
      ws.alloc<Padded<std::size_t>>(static_cast<std::size_t>(p));
  std::span<Padded<std::uint64_t>> t_decode =
      ws.alloc<Padded<std::uint64_t>>(static_cast<std::size_t>(p));
  for (int t = 0; t < p; ++t) t_decode[static_cast<std::size_t>(t)].value = 0;
  // Per-thread discovery buffers grow dynamically: they are thread-local
  // state, which the single-orchestrator Workspace cannot hand out.
  std::vector<Padded<std::vector<vid>>> local(static_cast<std::size_t>(p));

  frontier[0] = root;
  std::size_t frontier_size = 1;
  std::uint64_t frontier_degree = g.degree(root);
  std::uint64_t unexplored_arcs = num_arcs - frontier_degree;

  bool dense = mode == BfsMode::kBottomUp;
  if (dense) {
    ex.parallel_for(num_words, [&](std::size_t w) { cur_bits.words()[w] = 0; });
    cur_bits.set(root);
  }

  vid depth = 0;
  vid reached = 1;
  while (frontier_size != 0) {
    ++depth;

    if (mode == BfsMode::kAuto) {
      // The frontier-size guard is hysteresis: a frontier already below
      // the beta back-switch threshold would bounce straight back to
      // sparse after paying the full bitmap sweep (the alpha test alone
      // fires on any frontier once unexplored_arcs is nearly drained —
      // e.g. the tail of a long path).
      if (!dense && frontier_degree > unexplored_arcs / kAlpha &&
          frontier_size >= n / kBeta) {
        // Sparse -> dense: scatter the frontier into a fresh bitmap.
        // Distinct frontier vertices may share a word, hence the
        // atomic OR.
        ex.parallel_for(num_words,
                        [&](std::size_t w) { cur_bits.words()[w] = 0; });
        ex.parallel_for(frontier_size,
                        [&](std::size_t k) { cur_bits.set_atomic(frontier[k]); });
        dense = true;
      } else if (dense && frontier_size < n / kBeta) {
        // Dense -> sparse: compact the bitmap back into vertex ids.
        const std::size_t packed = pack_into(
            ex, ws, n, [&](std::size_t v) { return cur_bits.get(v); },
            [&](std::size_t dst, std::size_t v) {
              frontier[dst] = static_cast<vid>(v);
            });
        frontier_size = packed;
        dense = false;
      }
    }

    for (int t = 0; t < p; ++t) {
      t_inspected[static_cast<std::size_t>(t)].value = 0;
      t_degree[static_cast<std::size_t>(t)].value = 0;
      t_count[static_cast<std::size_t>(t)].value = 0;
    }

    if (!dense) {
      // Top-down: workers scan frontier chunks and claim undiscovered
      // neighbours with a CAS on the parent slot.  Buffers and
      // accumulators are indexed by the *executing worker* (exclusive
      // under either scheduler; == tid under kSpmd), which is what
      // makes the nested split legal: a hub's adjacency goes through an
      // inner parallel region whose pieces land on other workers and
      // append to those workers' own buffers.
      for (auto& buf : local) buf.value.clear();
      // auto_grain floors at 64 (tiny frontiers run serially rather
      // than shatter) and targets ~8 chunks per worker on wide rounds;
      // a chunk that drew a hub anyway re-splits through the nested
      // region below, so coarse chunks stay stealable where it counts.
      const std::size_t td_grain = ex.auto_grain(frontier_size);
      ex.parallel_for(0, frontier_size, td_grain, [&](std::size_t k) {
        const vid v = frontier[k];
        const std::size_t deg = g.degree(v);
        if constexpr (kPlainAdj) {
          const auto nbrs = g.neighbors(v);
          const auto eids = g.incident_edges(v);
          const auto scan = [&](std::size_t jb, std::size_t je) {
            const auto slot = static_cast<std::size_t>(ex.worker_id());
            std::vector<vid>& next = local[slot].value;
            std::uint64_t claimed_degree = 0;
            for (std::size_t j = jb; j < je; ++j) {
              const vid w = nbrs[j];
              vid expected = kNoVertex;
              if (std::atomic_ref(parent[w])
                      .compare_exchange_strong(expected, v,
                                               std::memory_order_acq_rel)) {
                out.parent_edge[w] = eids[j];
                out.level[w] = depth;
                claimed_degree += g.degree(w);
                next.push_back(w);
              }
            }
            t_degree[slot].value += claimed_degree;
          };
          if (nest && deg > 2 * kInnerGrain) {
            const std::size_t chunks = deg / kInnerGrain;
            ex.parallel_for(0, chunks, 1, [&](std::size_t c) {
              const auto [jb, je] = Executor::block_range(
                  deg, static_cast<int>(chunks), static_cast<int>(c));
              scan(jb, je);
            });
          } else {
            scan(0, deg);
          }
        } else {
          const auto slot = static_cast<std::size_t>(ex.worker_id());
          std::vector<vid>& next = local[slot].value;
          std::uint64_t claimed_degree = 0;
          const std::size_t bytes =
              g.decode_row(v, [&](vid w, eid edge) {
                vid expected = kNoVertex;
                if (std::atomic_ref(parent[w])
                        .compare_exchange_strong(expected, v,
                                                 std::memory_order_acq_rel)) {
                  out.parent_edge[w] = edge;
                  out.level[w] = depth;
                  claimed_degree += g.degree(w);
                  next.push_back(w);
                }
                return false;
              });
          t_degree[slot].value += claimed_degree;
          t_decode[slot].value += bytes;
        }
        t_inspected[static_cast<std::size_t>(ex.worker_id())].value += deg;
      });
      // Gather the next frontier with a prefix-summed parallel scatter
      // (each worker's buffer lands in a disjoint range).
      frontier_size = concat_thread_buffers(
          ex, [&](int t) -> const std::vector<vid>& {
            return local[static_cast<std::size_t>(t)].value;
          },
          concat_offset, frontier.data());
      ++out.top_down_rounds;
    } else {
      // Bottom-up: whoever executes word w owns it outright, so every
      // write — parent, level, next-frontier word — has exactly one
      // writer and needs no atomics.  Undiscovered vertices probe
      // their adjacency until they find a parent on the current
      // frontier; a hub's probe is nested-split into chunks that race
      // to the *first* frontier hit (minimum index, so the chosen
      // parent matches the serial scan).
      // Each word is 64 vertices, so 16 words per task amortizes the
      // fork while still letting thieves grab skewed word runs.
      constexpr std::size_t bu_grain = 16;
      ex.parallel_for(0, num_words, bu_grain, [&](std::size_t w) {
        std::uint64_t inspected = 0;
        std::uint64_t claimed_degree = 0;
        std::size_t claimed = 0;
        std::uint64_t decode_bytes = 0;
        std::uint64_t next_word = 0;
        const std::size_t base = w << 6;
        const std::size_t limit =
            base + 64 < n ? base + 64 : static_cast<std::size_t>(n);
        for (std::size_t v = base; v < limit; ++v) {
          if (parent[v] != kNoVertex) continue;
          const std::size_t deg = g.degree(static_cast<vid>(v));
          vid hit_nbr = kNoVertex;
          eid hit_edge = kNoEdge;
          if constexpr (kPlainAdj) {
            const auto nbrs = g.neighbors(static_cast<vid>(v));
            const auto eids = g.incident_edges(static_cast<vid>(v));
            std::size_t hit = deg;
            if (nest && deg > 2 * kInnerGrain) {
              const HubProbe hp = hub_probe(ex, cur_bits, nbrs);
              hit = hp.hit;
              inspected += hp.probes;
            } else {
              for (std::size_t j = 0; j < deg; ++j) {
                ++inspected;
                if (cur_bits.get(nbrs[j])) {
                  hit = j;
                  break;
                }
              }
            }
            if (hit < deg) {
              hit_nbr = nbrs[hit];
              hit_edge = eids[hit];
            }
          } else {
            decode_bytes += g.decode_row(
                static_cast<vid>(v), [&](vid nbr, eid edge) {
                  ++inspected;
                  if (cur_bits.get(nbr)) {
                    hit_nbr = nbr;
                    hit_edge = edge;
                    return true;
                  }
                  return false;
                });
          }
          if (hit_nbr != kNoVertex) {
            parent[v] = hit_nbr;
            out.parent_edge[v] = hit_edge;
            out.level[v] = depth;
            next_word |= std::uint64_t{1} << (v & 63);
            claimed_degree += deg;
            ++claimed;
          }
        }
        next_bits.words()[w] = next_word;
        const auto slot = static_cast<std::size_t>(ex.worker_id());
        t_inspected[slot].value += inspected;
        t_degree[slot].value += claimed_degree;
        t_count[slot].value += claimed;
        t_decode[slot].value += decode_bytes;
      });
      std::size_t total = 0;
      for (int t = 0; t < p; ++t) {
        total += t_count[static_cast<std::size_t>(t)].value;
      }
      frontier_size = total;
      std::swap(cur_bits, next_bits);
      ++out.bottom_up_rounds;
    }

    frontier_degree = 0;
    for (int t = 0; t < p; ++t) {
      out.inspected_edges += t_inspected[static_cast<std::size_t>(t)].value;
      out.slot_inspected[static_cast<std::size_t>(t)] +=
          t_inspected[static_cast<std::size_t>(t)].value;
      frontier_degree += t_degree[static_cast<std::size_t>(t)].value;
    }
    unexplored_arcs -= frontier_degree;
    reached += static_cast<vid>(frontier_size);
  }

  for (int t = 0; t < p; ++t) {
    out.decode_bytes += t_decode[static_cast<std::size_t>(t)].value;
  }
  out.reached = reached;
  out.num_levels = depth;  // last round discovered nothing: depth-1 levels past root
  out.diameter_estimate = depth > 0 ? depth - 1 : 0;
  if (trace != nullptr) {
    trace->counter("bfs_inspected_edges",
                   static_cast<double>(out.inspected_edges));
    trace->counter("bfs_top_down_rounds",
                   static_cast<double>(out.top_down_rounds));
    trace->counter("bfs_bottom_up_rounds",
                   static_cast<double>(out.bottom_up_rounds));
    trace->counter("bfs_diameter_estimate",
                   static_cast<double>(out.diameter_estimate));
    if constexpr (!kPlainAdj) {
      trace->counter("csr_decode_bytes",
                     static_cast<double>(out.decode_bytes));
    }
  }
  return out;
}

}  // namespace

BfsTree bfs_tree(Executor& ex, Workspace& ws, const Csr& g, vid root,
                 BfsMode mode, Trace* trace) {
  return bfs_tree_impl(ex, ws, g, root, mode, trace);
}

BfsTree bfs_tree(Executor& ex, Workspace& ws, const CompressedCsr& g,
                 vid root, BfsMode mode, Trace* trace) {
  return bfs_tree_impl(ex, ws, g, root, mode, trace);
}

BfsTree bfs_tree(Executor& ex, const Csr& g, vid root, BfsMode mode,
                 Trace* trace) {
  Workspace ws;
  return bfs_tree_impl(ex, ws, g, root, mode, trace);
}

}  // namespace parbcc
