#include "spanning/bfs_tree.hpp"

#include <atomic>

#include "util/padded.hpp"

namespace parbcc {

BfsTree bfs_tree(Executor& ex, const Csr& g, vid root) {
  const vid n = g.num_vertices();
  BfsTree out;
  out.root = root;
  out.parent.assign(n, kNoVertex);
  out.parent_edge.assign(n, kNoEdge);
  out.level.assign(n, kNoVertex);
  if (n == 0) return out;

  std::vector<std::atomic<vid>> parent(n);
  ex.parallel_for(n, [&](std::size_t v) {
    parent[v].store(kNoVertex, std::memory_order_relaxed);
  });
  parent[root].store(root, std::memory_order_relaxed);
  out.level[root] = 0;

  const int p = ex.threads();
  std::vector<vid> frontier{root};
  std::vector<Padded<std::vector<vid>>> local(static_cast<std::size_t>(p));

  vid depth = 0;
  vid reached = 1;
  while (!frontier.empty()) {
    ++depth;
    for (auto& buf : local) buf.value.clear();

    // Expand: each thread scans a slice of the frontier and claims
    // undiscovered neighbours with a CAS on the parent slot.
    ex.parallel_blocks(
        frontier.size(), [&](int tid, std::size_t begin, std::size_t end) {
          std::vector<vid>& next = local[static_cast<std::size_t>(tid)].value;
          for (std::size_t k = begin; k < end; ++k) {
            const vid v = frontier[k];
            const auto nbrs = g.neighbors(v);
            const auto eids = g.incident_edges(v);
            for (std::size_t j = 0; j < nbrs.size(); ++j) {
              const vid w = nbrs[j];
              vid expected = kNoVertex;
              if (parent[w].compare_exchange_strong(
                      expected, v, std::memory_order_acq_rel)) {
                out.parent_edge[w] = eids[j];
                out.level[w] = depth;
                next.push_back(w);
              }
            }
          }
        });

    // Concatenate per-thread buffers into the next frontier.
    std::size_t total = 0;
    for (const auto& buf : local) total += buf.value.size();
    frontier.clear();
    frontier.reserve(total);
    for (const auto& buf : local) {
      frontier.insert(frontier.end(), buf.value.begin(), buf.value.end());
    }
    reached += static_cast<vid>(total);
  }

  ex.parallel_for(n, [&](std::size_t v) {
    out.parent[v] = parent[v].load(std::memory_order_relaxed);
  });
  out.reached = reached;
  out.num_levels = depth;  // last round discovered nothing: depth-1 levels past root
  return out;
}

}  // namespace parbcc
