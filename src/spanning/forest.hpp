#pragma once

#include <span>
#include <vector>

#include "graph/csr.hpp"
#include "graph/edge_list.hpp"
#include "util/types.hpp"

/// \file forest.hpp
/// Sequential spanning-forest reference and structural validators.
///
/// The sequential routines are oracles for the parallel spanning-tree
/// algorithms, and the validators are shared by tests and by debug
/// assertions inside the BCC drivers.

namespace parbcc {

/// Sequential DFS spanning forest; roots chosen in ascending id order.
/// Returns indices into `edges` of the forest edges.
std::vector<eid> sequential_spanning_forest(vid n, std::span<const Edge> edges);

/// Sequential BFS rooted tree: parent array (parent[root] == root,
/// kNoVertex when unreachable) and levels; oracle for bfs_tree.
struct SeqBfsResult {
  std::vector<vid> parent;
  std::vector<vid> level;
  vid reached = 0;
};
SeqBfsResult sequential_bfs(const Csr& g, vid root);

/// True iff the given edge subset is acyclic (i.e. a forest) on n
/// vertices.
bool is_forest(vid n, std::span<const Edge> edges, std::span<const eid> subset);

/// True iff `parent` encodes a tree rooted at `root` covering every
/// vertex with parent != kNoVertex: exactly one self-parent (the root)
/// and no cycles.
bool is_valid_rooted_tree(std::span<const vid> parent, vid root);

}  // namespace parbcc
