#pragma once

#include <vector>

#include "graph/edge_list.hpp"
#include "util/thread_pool.hpp"

/// \file certificate.hpp
/// Sparse connectivity certificates by successive spanning forests —
/// the general principle behind TV-filter's edge filtering.
///
/// Let F1 be a spanning forest of G, F2 a spanning forest of G - F1,
/// and so on.  Classic results:
///
///  - Nagamochi-Ibaraki / Thurimella: F1 u ... u Fk preserves
///    k-EDGE-connectivity (for any choice of forests), with at most
///    k(n-1) edges.
///  - Cheriyan-Kanevsky-Maheshwari / Thurimella: if each Fi is a
///    *BFS* forest, F1 u ... u Fk also preserves k-VERTEX-connectivity.
///
/// TV-filter (paper Alg. 2 and Theorem 2) is exactly the k = 2 BFS
/// case plus a labeling argument: T u F keeps the whole biconnected
/// component structure, not just the yes/no property.  This module
/// exposes the construction for general k, so downstream users can
/// sparsify before any connectivity-style computation.

namespace parbcc {

struct SparseCertificate {
  /// Edge ids of F1 u ... u Fk, grouped by forest.
  std::vector<eid> edges;
  /// forest_offsets[i] .. forest_offsets[i+1] delimit Fi+1 in `edges`.
  std::vector<eid> forest_offsets;

  /// Materialize the certificate as its own EdgeList over g's vertices.
  EdgeList subgraph(const EdgeList& g) const {
    EdgeList out;
    out.n = g.n;
    out.edges.reserve(edges.size());
    for (const eid e : edges) out.edges.push_back(g.edges[e]);
    return out;
  }
};

/// k successive spanning forests via Shiloach-Vishkin
/// (k-edge-connectivity certificate; <= k(n-1) edges).
SparseCertificate sparse_certificate_edge(Executor& ex, const EdgeList& g,
                                          unsigned k);

/// k successive *BFS* spanning forests (k-vertex-connectivity
/// certificate).  Forest i is built by BFS restricted to the edges not
/// used by forests 1..i-1, rooted per component.
SparseCertificate sparse_certificate_vertex(Executor& ex, const EdgeList& g,
                                            unsigned k);

}  // namespace parbcc
