#pragma once

#include <vector>

#include "graph/edge_list.hpp"
#include "util/thread_pool.hpp"

/// \file certificate.hpp
/// Sparse connectivity certificates by successive spanning forests —
/// the general principle behind TV-filter's edge filtering.
///
/// Let F1 be a spanning forest of G, F2 a spanning forest of G - F1,
/// and so on.  Classic results:
///
///  - Nagamochi-Ibaraki / Thurimella: F1 u ... u Fk preserves
///    k-EDGE-connectivity (for any choice of forests), with at most
///    k(n-1) edges.
///  - Cheriyan-Kanevsky-Maheshwari / Thurimella: if each Fi is a
///    *BFS* forest, F1 u ... u Fk also preserves k-VERTEX-connectivity.
///
/// TV-filter (paper Alg. 2 and Theorem 2) is exactly the k = 2 BFS
/// case plus a labeling argument: T u F keeps the whole biconnected
/// component structure, not just the yes/no property.  This module
/// exposes the construction for general k, so downstream users can
/// sparsify before any connectivity-style computation.

namespace parbcc {

struct SparseCertificate {
  /// Edge ids of F1 u ... u Fk, grouped by forest.
  std::vector<eid> edges;
  /// forest_offsets[i] .. forest_offsets[i+1] delimit Fi+1 in `edges`.
  std::vector<eid> forest_offsets;
  /// BFS metadata of the first forest F1, filled by
  /// sparse_certificate_vertex only (empty from the edge variant):
  /// exact BFS depth per vertex (roots 0) and the tree edge to the
  /// parent (kNoEdge for roots).  Callers use this to label the edges
  /// the certificate omits without re-traversing: an omitted edge
  /// {u, v} closes a cycle with its F1 tree path, so it lies in one
  /// biconnected component with the parent tree edge of its deeper
  /// endpoint — and BFS levels across an edge differ by at most one,
  /// so the deeper (or, on a tie, either) endpoint is never the top
  /// vertex of that cycle.  The batch-dynamic engine's
  /// certificate-bounded region solve relies on this scatter rule.
  std::vector<vid> f1_level;
  std::vector<eid> f1_parent_edge;

  /// Materialize the certificate as its own EdgeList over g's vertices.
  EdgeList subgraph(const EdgeList& g) const {
    EdgeList out;
    out.n = g.n;
    out.edges.reserve(edges.size());
    for (const eid e : edges) out.edges.push_back(g.edges[e]);
    return out;
  }
};

/// k successive spanning forests via Shiloach-Vishkin
/// (k-edge-connectivity certificate; <= k(n-1) edges).
SparseCertificate sparse_certificate_edge(Executor& ex, const EdgeList& g,
                                          unsigned k);

/// k successive *BFS* spanning forests (k-vertex-connectivity
/// certificate).  Forest i is built by BFS restricted to the edges not
/// used by forests 1..i-1, rooted per component.
SparseCertificate sparse_certificate_vertex(Executor& ex, const EdgeList& g,
                                            unsigned k);

}  // namespace parbcc
