#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "util/thread_pool.hpp"
#include "util/workspace.hpp"

/// \file sparse_table.hpp
/// Parallel-built sparse table for idempotent range queries (min/max).
///
/// Tarjan-Vishkin reduces low(v)/high(v) to range minima/maxima over
/// the preorder-indexed array of per-vertex local values: v's subtree
/// is exactly the preorder interval [pre(v), pre(v) + size(v)).  The
/// table costs O(n log n) space and build work — one of the overheads
/// TV-opt removes by aggregating along tree levels instead (see
/// eulertour/tree_computations.hpp), which the ablation bench measures.
///
/// The O(n log n) table — the single largest scratch object of TV-SMP's
/// low-high step — can be placed in a Workspace: the table then lives
/// only as long as the caller's enclosing frame, which must stay open
/// for every query.

namespace parbcc {

template <class T, class Combine>
class SparseTable {
 public:
  SparseTable() = default;
  // Moving keeps table_ valid (vector moves preserve the buffer);
  // copying would not, so it is disabled.
  SparseTable(SparseTable&&) = default;
  SparseTable& operator=(SparseTable&&) = default;
  SparseTable(const SparseTable&) = delete;
  SparseTable& operator=(const SparseTable&) = delete;

  /// Build over a[0, n).  `combine(x, y)` must be associative and
  /// idempotent (min, max).  Table storage is heap-owned.
  SparseTable(Executor& ex, const T* a, std::size_t n,
              Combine combine = Combine{})
      : n_(n), combine_(combine) {
    if (n == 0) return;
    levels_ = static_cast<std::size_t>(std::bit_width(n));  // floor(log2 n)+1
    owned_.resize(levels_ * n);
    table_ = owned_.data();
    build(ex, a);
  }

  /// Same, with the table drawn from `ws`.  The caller must keep its
  /// frame open (and the table alive) across every query() — the table
  /// does not own the storage.
  SparseTable(Executor& ex, Workspace& ws, const T* a, std::size_t n,
              Combine combine = Combine{})
      : n_(n), combine_(combine) {
    if (n == 0) return;
    levels_ = static_cast<std::size_t>(std::bit_width(n));
    table_ = ws.alloc<T>(levels_ * n).data();
    build(ex, a);
  }

  /// Combined value over the inclusive range [l, r]; requires l <= r < n.
  T query(std::size_t l, std::size_t r) const {
    const std::size_t len = r - l + 1;
    const std::size_t k = static_cast<std::size_t>(std::bit_width(len)) - 1;
    const T* row = table_ + k * n_;
    return combine_(row[l], row[r + 1 - (std::size_t{1} << k)]);
  }

  std::size_t size() const { return n_; }

 private:
  void build(Executor& ex, const T* a) {
    ex.parallel_for(n_, [&](std::size_t i) { table_[i] = a[i]; });
    for (std::size_t k = 1; k < levels_; ++k) {
      const std::size_t half = std::size_t{1} << (k - 1);
      const T* prev = table_ + (k - 1) * n_;
      T* cur = table_ + k * n_;
      const std::size_t count = n_ - (std::size_t{1} << k) + 1;
      ex.parallel_for(count, [&, prev, cur, half](std::size_t i) {
        cur[i] = combine_(prev[i], prev[i + half]);
      });
    }
  }

  std::size_t n_ = 0;
  std::size_t levels_ = 0;
  Combine combine_{};
  T* table_ = nullptr;
  std::vector<T> owned_;
};

template <class T>
struct MinCombine {
  T operator()(T a, T b) const { return a < b ? a : b; }
};
template <class T>
struct MaxCombine {
  T operator()(T a, T b) const { return a > b ? a : b; }
};

template <class T>
using MinTable = SparseTable<T, MinCombine<T>>;
template <class T>
using MaxTable = SparseTable<T, MaxCombine<T>>;

}  // namespace parbcc
