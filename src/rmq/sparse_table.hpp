#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "util/thread_pool.hpp"

/// \file sparse_table.hpp
/// Parallel-built sparse table for idempotent range queries (min/max).
///
/// Tarjan-Vishkin reduces low(v)/high(v) to range minima/maxima over
/// the preorder-indexed array of per-vertex local values: v's subtree
/// is exactly the preorder interval [pre(v), pre(v) + size(v)).  The
/// table costs O(n log n) space and build work — one of the overheads
/// TV-opt removes by aggregating along tree levels instead (see
/// eulertour/tree_computations.hpp), which the ablation bench measures.

namespace parbcc {

template <class T, class Combine>
class SparseTable {
 public:
  SparseTable() = default;

  /// Build over a[0, n).  `combine(x, y)` must be associative and
  /// idempotent (min, max).
  SparseTable(Executor& ex, const T* a, std::size_t n,
              Combine combine = Combine{})
      : n_(n), combine_(combine) {
    if (n == 0) return;
    levels_ = static_cast<std::size_t>(std::bit_width(n));  // floor(log2 n)+1
    table_.resize(levels_ * n);
    ex.parallel_for(n, [&](std::size_t i) { table_[i] = a[i]; });
    for (std::size_t k = 1; k < levels_; ++k) {
      const std::size_t half = std::size_t{1} << (k - 1);
      const T* prev = table_.data() + (k - 1) * n;
      T* cur = table_.data() + k * n;
      const std::size_t count = n - (std::size_t{1} << k) + 1;
      ex.parallel_for(count, [&, prev, cur, half](std::size_t i) {
        cur[i] = combine_(prev[i], prev[i + half]);
      });
    }
  }

  /// Combined value over the inclusive range [l, r]; requires l <= r < n.
  T query(std::size_t l, std::size_t r) const {
    const std::size_t len = r - l + 1;
    const std::size_t k = static_cast<std::size_t>(std::bit_width(len)) - 1;
    const T* row = table_.data() + k * n_;
    return combine_(row[l], row[r + 1 - (std::size_t{1} << k)]);
  }

  std::size_t size() const { return n_; }

 private:
  std::size_t n_ = 0;
  std::size_t levels_ = 0;
  Combine combine_{};
  std::vector<T> table_;
};

template <class T>
struct MinCombine {
  T operator()(T a, T b) const { return a < b ? a : b; }
};
template <class T>
struct MaxCombine {
  T operator()(T a, T b) const { return a > b ? a : b; }
};

template <class T>
using MinTable = SparseTable<T, MinCombine<T>>;
template <class T>
using MaxTable = SparseTable<T, MaxCombine<T>>;

}  // namespace parbcc
