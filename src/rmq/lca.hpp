#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

#include "eulertour/tree_computations.hpp"
#include "rmq/sparse_table.hpp"
#include "util/thread_pool.hpp"

/// \file lca.hpp
/// Lowest common ancestors by the Euler-tour + range-minimum reduction.
///
/// The paper's structural proofs (Lemma 2, Theorem 2) reason about
/// lca(u, v) of nontree-edge endpoints; this module makes those queries
/// a first-class O(1) operation so tests can check the proofs' cycle
/// constructions directly, and downstream users get the classic
/// companion utility of an Euler-tour library.
///
/// Build: O(n log n) work (parallel sparse table over the 2n-1 entry
/// depth sequence of the DFS tour); query: O(1).

namespace parbcc {

class LcaIndex {
 public:
  LcaIndex() = default;

  /// Build from a rooted tree (pre/sub filled) and its level structure.
  LcaIndex(Executor& ex, const RootedSpanningTree& tree,
           const ChildrenCsr& children, const LevelStructure& levels) {
    const std::size_t n = tree.parent.size();
    if (n == 0) return;
    // The DFS visit sequence: vertex v first appears at tour index
    // in(v) = 2*pre(v) - 2 - depth(v) and is revisited after each child
    // subtree.  For LCA the standard 2n-1 "visit on entry and after
    // every child" sequence is generated per vertex from its pre/size
    // arithmetic, sequentially per level to keep O(n) work.
    seq_.assign(2 * n - 1, 0);
    first_.assign(n, 0);
    depth_ = levels.depth;

    // Position of v's k-th visit: entry at entry(v), then one visit
    // after each child's subtree completes.  entry(v) in the 2n-1
    // sequence equals 2*(pre(v)-1) - depth(v).
    ex.parallel_for(n, [&](std::size_t v) {
      const std::size_t entry =
          2 * (static_cast<std::size_t>(tree.pre[v]) - 1) - depth_[v];
      first_[v] = static_cast<vid>(entry);
      seq_[entry] = static_cast<vid>(v);
      // Revisit after each child subtree: child c occupies 2*sub(c)-1
      // sequence slots starting right after its own entry.
      std::size_t cursor = entry;
      for (const vid c : children.children(v)) {
        cursor += 2 * static_cast<std::size_t>(tree.sub[c]);
        seq_[cursor] = static_cast<vid>(v);
      }
    });

    // Range-minimum over depths, carrying the vertex.
    std::vector<std::uint64_t> keyed(seq_.size());
    ex.parallel_for(seq_.size(), [&](std::size_t i) {
      keyed[i] = (static_cast<std::uint64_t>(depth_[seq_[i]]) << 32) | seq_[i];
    });
    table_ = MinTable<std::uint64_t>(ex, keyed.data(), keyed.size());
  }

  /// Lowest common ancestor of u and v.
  vid lca(vid u, vid v) const {
    std::size_t a = first_[u];
    std::size_t b = first_[v];
    if (a > b) std::swap(a, b);
    return static_cast<vid>(table_.query(a, b) & 0xffffffffu);
  }

  /// Tree distance (number of edges) between u and v.
  vid distance(vid u, vid v) const {
    const vid a = lca(u, v);
    return depth_[u] + depth_[v] - 2 * depth_[a];
  }

  bool empty() const { return seq_.empty(); }

 private:
  std::vector<vid> seq_;    // 2n-1 visit sequence
  std::vector<vid> first_;  // first visit index per vertex
  std::vector<vid> depth_;
  MinTable<std::uint64_t> table_;
};

}  // namespace parbcc
