#pragma once

#include <string>
#include <string_view>

#include "graph/edge_list.hpp"
#include "util/thread_pool.hpp"

/// \file text_parse.hpp
/// Chunked parallel parsing of text graph formats.
///
/// The serial readers in io.hpp stream through an istream one token at
/// a time — correct, hardened, and the bottleneck the moment the input
/// is hundreds of megabytes (bench_io measures the gap).  These
/// parsers split the byte range into newline-aligned chunks, parse
/// each chunk into a thread-private edge buffer with a branch-light
/// integer scanner, and concatenate the buffers with a prefix-summed
/// parallel copy, so edge order (and therefore edge ids) still matches
/// the serial reader line for line.
///
/// Inputs stay untrusted: the same caps the serial readers enforce
/// (n/m within the 32-bit id space, endpoints < n, no oversized
/// speculative allocation) apply, with errors naming the format and
/// the offending line.  Parse errors inside a chunk are collected and
/// rethrown on the orchestrator — worker threads never throw.

namespace parbcc::io {

/// Formats the parallel front end understands.  kMetis is
/// line-position-dependent (row i lists vertex i's neighbours), so it
/// delegates to the serial reader rather than fake a parallel parse.
enum class TextFormat {
  kAuto,      // sniff: DIMACS "p edge", "# "-commented SNAP, else edge list
  kEdgeList,  // io.hpp plain format: "n m" header, "u v" lines, # comments
  kDimacs,    // "c" comments, "p edge n m", "e u v" 1-based
  kSnap,      // headerless "u v" lines with arbitrary ids, # comments
  kMetis,     // serial fallback (see io.hpp)
};

/// Parse the io.hpp plain edge-list format from an in-memory buffer.
EdgeList parse_edge_list(Executor& ex, std::string_view text);

/// Parse DIMACS from an in-memory buffer.
EdgeList parse_dimacs(Executor& ex, std::string_view text);

/// Parse a SNAP-style headerless edge list: arbitrary (possibly
/// sparse, possibly 64-bit) ids densified by sorted order, one
/// direction kept per undirected pair (SNAP ships directed arc lists;
/// keeping both directions would double every edge and erase every
/// bridge), self-loops dropped.  The result is a simple graph.
EdgeList parse_snap(Executor& ex, std::string_view text);

/// Read `path` and parse as `format` (kAuto sniffs).  Throws
/// std::runtime_error on unreadable files and malformed input.
EdgeList read_text_graph(Executor& ex, const std::string& path,
                         TextFormat format = TextFormat::kAuto);

}  // namespace parbcc::io
