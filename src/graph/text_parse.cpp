#include "graph/text_parse.hpp"

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "graph/io.hpp"
#include "util/padded.hpp"

namespace parbcc::io {

namespace {

constexpr std::uint64_t kMaxEdges = 0x7fffffffull;
constexpr std::uint64_t kMaxVertices = 0xfffffffeull;

inline bool is_space(char c) {
  return c == ' ' || c == '\t' || c == '\r' || c == '\n' || c == '\v' ||
         c == '\f';
}

/// Scan an unsigned decimal at `p`; advances past it.  Returns false
/// on no digits or overflow past 2^64 / value cap.
inline bool scan_u64(const char*& p, const char* end, std::uint64_t& out) {
  const char* start = p;
  std::uint64_t v = 0;
  while (p < end && *p >= '0' && *p <= '9') {
    const std::uint64_t digit = static_cast<std::uint64_t>(*p - '0');
    if (v > (~std::uint64_t{0} - digit) / 10) return false;
    v = v * 10 + digit;
    ++p;
  }
  if (p == start) return false;
  out = v;
  return true;
}

inline void skip_blanks(const char*& p, const char* end) {
  while (p < end && (*p == ' ' || *p == '\t' || *p == '\r')) ++p;
}

/// Newline-aligned chunk boundaries over text[begin, text.size()):
/// chunk c covers [bounds[c], bounds[c+1]), every boundary sits just
/// past a '\n' (or at either extreme), so no line spans two chunks.
std::vector<std::size_t> chunk_bounds(std::string_view text,
                                      std::size_t begin, int chunks) {
  std::vector<std::size_t> bounds(static_cast<std::size_t>(chunks) + 1);
  const std::size_t body = text.size() - begin;
  bounds[0] = begin;
  for (int c = 1; c < chunks; ++c) {
    std::size_t pos =
        begin + (body * static_cast<std::size_t>(c)) /
                    static_cast<std::size_t>(chunks);
    // Align forward to the byte after the next newline.
    while (pos < text.size() && text[pos] != '\n') ++pos;
    if (pos < text.size()) ++pos;
    bounds[static_cast<std::size_t>(c)] = pos;
  }
  bounds[static_cast<std::size_t>(chunks)] = text.size();
  for (int c = 1; c <= chunks; ++c) {
    bounds[static_cast<std::size_t>(c)] = std::max(
        bounds[static_cast<std::size_t>(c)], bounds[static_cast<std::size_t>(c - 1)]);
  }
  return bounds;
}

int pick_chunks(Executor& ex, std::size_t body_bytes) {
  // ~4 chunks per worker amortizes the fork; tiny bodies parse in one.
  constexpr std::size_t kMinChunkBytes = 1 << 14;
  const std::size_t by_size = body_bytes / kMinChunkBytes;
  const std::size_t by_threads = static_cast<std::size_t>(ex.threads()) * 4;
  return static_cast<int>(std::clamp<std::size_t>(
      std::min(by_size, by_threads), 1, 256));
}

struct ChunkError {
  bool failed = false;
  std::string message;
};

/// Run `parse_line(p, line_end, chunk_sink)` over every nonempty line
/// of every chunk in parallel; chunk-ordered sinks preserve file
/// order.  The first error per chunk is captured, the earliest chunk's
/// error rethrown (workers never throw across the pool).
template <typename Sink, typename ParseLine>
void parse_chunks(Executor& ex, std::string_view text, std::size_t begin,
                  int chunks, std::vector<Sink>& sinks,
                  const ParseLine& parse_line, const char* format_name) {
  const std::vector<std::size_t> bounds = chunk_bounds(text, begin, chunks);
  sinks.assign(static_cast<std::size_t>(chunks), Sink{});
  std::vector<ChunkError> errors(static_cast<std::size_t>(chunks));
  ex.parallel_for(0, static_cast<std::size_t>(chunks), 1,
                  [&](std::size_t c) {
    const char* p = text.data() + bounds[c];
    const char* chunk_end = text.data() + bounds[c + 1];
    Sink& sink = sinks[c];
    while (p < chunk_end) {
      const char* line_end = p;
      while (line_end < chunk_end && *line_end != '\n') ++line_end;
      const char* q = p;
      skip_blanks(q, line_end);
      if (q < line_end && *q != '#') {
        if (!parse_line(q, line_end, sink)) {
          errors[c].failed = true;
          errors[c].message =
              std::string(format_name) + ": malformed line \"" +
              std::string(p, static_cast<std::size_t>(
                                 std::min<std::ptrdiff_t>(line_end - p, 80))) +
              "\"";
          return;
        }
      }
      p = line_end < chunk_end ? line_end + 1 : chunk_end;
    }
  });
  for (const ChunkError& e : errors) {
    if (e.failed) throw std::runtime_error(e.message);
  }
}

/// Concatenate per-chunk edge buffers in chunk order.
std::vector<Edge> concat_edges(Executor& ex,
                               const std::vector<std::vector<Edge>>& parts) {
  std::vector<std::size_t> offset(parts.size() + 1, 0);
  for (std::size_t c = 0; c < parts.size(); ++c) {
    offset[c + 1] = offset[c] + parts[c].size();
  }
  std::vector<Edge> out(offset.back());
  ex.parallel_for(0, parts.size(), 1, [&](std::size_t c) {
    std::copy(parts[c].begin(), parts[c].end(), out.begin() + offset[c]);
  });
  return out;
}

/// First non-comment, non-blank line of `text`; start receives its
/// begin offset, the return is one past its newline (body start).
bool header_line(std::string_view text, std::size_t& start,
                 std::size_t& body) {
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t line_end = text.find('\n', pos);
    if (line_end == std::string_view::npos) line_end = text.size();
    const char* q = text.data() + pos;
    const char* qe = text.data() + line_end;
    skip_blanks(q, qe);
    if (q < qe && *q != '#') {
      start = static_cast<std::size_t>(q - text.data());
      body = line_end < text.size() ? line_end + 1 : text.size();
      return true;
    }
    pos = line_end + 1;
  }
  return false;
}

}  // namespace

EdgeList parse_edge_list(Executor& ex, std::string_view text) {
  std::size_t header_at = 0;
  std::size_t body = 0;
  if (!header_line(text, header_at, body)) {
    throw std::runtime_error("edge list: missing header line");
  }
  const char* hp = text.data() + header_at;
  const char* hend = text.data() + text.size();
  std::uint64_t n64 = 0;
  std::uint64_t m64 = 0;
  if (!scan_u64(hp, hend, n64)) {
    throw std::runtime_error("edge list: bad vertex count in header");
  }
  skip_blanks(hp, hend);
  if (!scan_u64(hp, hend, m64)) {
    throw std::runtime_error("edge list: bad edge count in header");
  }
  if (n64 > kMaxVertices) {
    throw std::runtime_error("edge list: vertex count " +
                             std::to_string(n64) +
                             " exceeds the 32-bit id space");
  }
  if (m64 > kMaxEdges) {
    throw std::runtime_error("edge list: edge count " + std::to_string(m64) +
                             " exceeds 2^31 - 1");
  }
  const vid n = static_cast<vid>(n64);

  const int chunks = pick_chunks(ex, text.size() - body);
  std::vector<std::vector<Edge>> parts;
  parse_chunks(
      ex, text, body, chunks, parts,
      [n](const char*& q, const char* line_end, std::vector<Edge>& sink) {
        std::uint64_t u = 0;
        std::uint64_t v = 0;
        if (!scan_u64(q, line_end, u)) return false;
        skip_blanks(q, line_end);
        if (!scan_u64(q, line_end, v)) return false;
        skip_blanks(q, line_end);
        if (q != line_end) return false;
        if (u >= n || v >= n) return false;
        sink.push_back({static_cast<vid>(u), static_cast<vid>(v)});
        return true;
      },
      "edge list");

  EdgeList g;
  g.n = n;
  g.edges = EdgeStore(concat_edges(ex, parts));
  if (g.m() != m64) {
    throw std::runtime_error("edge list: header declares " +
                             std::to_string(m64) + " edges but the body has " +
                             std::to_string(g.m()));
  }
  return g;
}

EdgeList parse_dimacs(Executor& ex, std::string_view text) {
  // DIMACS comments are 'c' lines, the header is "p edge n m"; find it
  // serially (it is one line), then parse the 'e' body in parallel.
  std::size_t pos = 0;
  std::uint64_t n64 = 0;
  std::uint64_t m64 = 0;
  bool have_p = false;
  std::size_t body = 0;
  while (pos < text.size() && !have_p) {
    std::size_t line_end = text.find('\n', pos);
    if (line_end == std::string_view::npos) line_end = text.size();
    const char* q = text.data() + pos;
    const char* qe = text.data() + line_end;
    skip_blanks(q, qe);
    if (q < qe && *q == 'p') {
      ++q;
      skip_blanks(q, qe);
      while (q < qe && !is_space(*q)) ++q;  // the "edge" tag
      skip_blanks(q, qe);
      if (!scan_u64(q, qe, n64)) {
        throw std::runtime_error("dimacs: bad vertex count in p line");
      }
      skip_blanks(q, qe);
      if (!scan_u64(q, qe, m64)) {
        throw std::runtime_error("dimacs: bad edge count in p line");
      }
      have_p = true;
      body = line_end < text.size() ? line_end + 1 : text.size();
    } else if (q < qe && *q != 'c' && *q != '#') {
      throw std::runtime_error("dimacs: expected 'c' or 'p' before body");
    }
    pos = line_end + 1;
  }
  if (!have_p) throw std::runtime_error("dimacs: missing p line");
  if (n64 > kMaxVertices) {
    throw std::runtime_error("dimacs: vertex count " + std::to_string(n64) +
                             " exceeds the 32-bit id space");
  }
  if (m64 > kMaxEdges) {
    throw std::runtime_error("dimacs: edge count " + std::to_string(m64) +
                             " exceeds 2^31 - 1");
  }
  const vid n = static_cast<vid>(n64);

  const int chunks = pick_chunks(ex, text.size() - body);
  std::vector<std::vector<Edge>> parts;
  parse_chunks(
      ex, text, body, chunks, parts,
      [n](const char*& q, const char* line_end, std::vector<Edge>& sink) {
        if (*q == 'c') return true;  // body comments allowed
        if (*q != 'e') return false;
        ++q;
        skip_blanks(q, line_end);
        std::uint64_t u = 0;
        std::uint64_t v = 0;
        if (!scan_u64(q, line_end, u)) return false;
        skip_blanks(q, line_end);
        if (!scan_u64(q, line_end, v)) return false;
        if (u == 0 || v == 0 || u > n || v > n) return false;  // 1-based
        sink.push_back({static_cast<vid>(u - 1), static_cast<vid>(v - 1)});
        return true;
      },
      "dimacs");

  EdgeList g;
  g.n = n;
  g.edges = EdgeStore(concat_edges(ex, parts));
  if (g.m() != m64) {
    throw std::runtime_error("dimacs: p line declares " +
                             std::to_string(m64) + " edges but the body has " +
                             std::to_string(g.m()));
  }
  return g;
}

EdgeList parse_snap(Executor& ex, std::string_view text) {
  struct RawEdge {
    std::uint64_t u;
    std::uint64_t v;
  };
  const int chunks = pick_chunks(ex, text.size());
  std::vector<std::vector<RawEdge>> parts;
  parse_chunks(
      ex, text, 0, chunks, parts,
      [](const char*& q, const char* line_end, std::vector<RawEdge>& sink) {
        std::uint64_t u = 0;
        std::uint64_t v = 0;
        if (!scan_u64(q, line_end, u)) return false;
        skip_blanks(q, line_end);
        if (!scan_u64(q, line_end, v)) return false;
        sink.push_back({u, v});
        return true;
      },
      "snap");

  // Densify: sorted unique ids become [0, n).  The id table and the
  // packed dedupe sort are the whole cost of accepting arbitrary ids.
  std::size_t total = 0;
  for (const auto& part : parts) total += part.size();
  if (total > kMaxEdges) {
    throw std::runtime_error("snap: edge count " + std::to_string(total) +
                             " exceeds 2^31 - 1");
  }
  std::vector<std::uint64_t> ids;
  ids.reserve(2 * total);
  for (const auto& part : parts) {
    for (const RawEdge& e : part) {
      ids.push_back(e.u);
      ids.push_back(e.v);
    }
  }
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  if (ids.size() > kMaxVertices) {
    throw std::runtime_error("snap: distinct id count " +
                             std::to_string(ids.size()) +
                             " exceeds the 32-bit id space");
  }
  const vid n = static_cast<vid>(ids.size());
  const auto remap = [&](std::uint64_t raw) {
    return static_cast<vid>(
        std::lower_bound(ids.begin(), ids.end(), raw) - ids.begin());
  };

  // Canonicalize each arc as (min, max), drop loops, dedupe: SNAP arc
  // lists carry both directions of an undirected edge.
  std::vector<std::uint64_t> packed;
  packed.reserve(total);
  for (const auto& part : parts) {
    for (const RawEdge& e : part) {
      const vid u = remap(e.u);
      const vid v = remap(e.v);
      if (u == v) continue;
      const vid lo = std::min(u, v);
      const vid hi = std::max(u, v);
      packed.push_back((static_cast<std::uint64_t>(lo) << 32) | hi);
    }
  }
  std::sort(packed.begin(), packed.end());
  packed.erase(std::unique(packed.begin(), packed.end()), packed.end());

  EdgeList g;
  g.n = n;
  std::vector<Edge> edges(packed.size());
  ex.parallel_for(packed.size(), [&](std::size_t i) {
    edges[i] = {static_cast<vid>(packed[i] >> 32),
                static_cast<vid>(packed[i])};
  });
  g.edges = EdgeStore(std::move(edges));
  return g;
}

EdgeList read_text_graph(Executor& ex, const std::string& path,
                         TextFormat format) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = std::move(buf).str();

  if (format == TextFormat::kAuto) {
    // DIMACS announces itself with c/p lines; a '#'-commented file
    // with no "n m" header is SNAP; a bare two-column body with no
    // header is SNAP too (an edge-list header is two ints, but so is
    // an edge — the header-count cross-check disambiguates: try edge
    // list first, fall back).
    std::size_t at = 0;
    std::size_t body = 0;
    if (!text.empty() && (text[0] == 'c' || text[0] == 'p')) {
      format = TextFormat::kDimacs;
    } else if (header_line(text, at, body)) {
      try {
        return parse_edge_list(ex, text);
      } catch (const std::runtime_error&) {
        format = TextFormat::kSnap;
      }
    } else {
      format = TextFormat::kSnap;
    }
  }
  switch (format) {
    case TextFormat::kEdgeList:
      return parse_edge_list(ex, text);
    case TextFormat::kDimacs:
      return parse_dimacs(ex, text);
    case TextFormat::kSnap:
      return parse_snap(ex, text);
    case TextFormat::kMetis: {
      std::istringstream stream(text);
      return read_metis(stream);
    }
    case TextFormat::kAuto:
      break;  // unreachable
  }
  throw std::runtime_error("unreachable text format");
}

}  // namespace parbcc::io
