#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>
#include <span>

#include "graph/csr.hpp"
#include "util/thread_pool.hpp"
#include "util/types.hpp"
#include "util/uninit.hpp"

/// \file compressed_csr.hpp
/// Delta-compressed adjacency: each vertex's neighbour row is sorted,
/// the first neighbour is stored as a byte varint, and the remaining
/// gaps are Rice-coded with a per-row parameter k (unary quotient, k
/// raw remainder bits, 8-ones escape to a raw 32-bit gap for
/// outliers).  Rows are byte-aligned and located by a per-vertex byte
/// index, so decoding is row-local and parallel sweeps need no shared
/// cursor.  On the m = 20n benchmark family this streams ~0.45x the
/// bytes of the plain 4-byte-per-arc row, trading decode cycles for
/// memory bandwidth in the BFS and low/high sweeps (BccOptions::
/// csr_backend selects it; see DESIGN.md "Zero-copy ingestion").
///
/// Canonical row order.  Compression sorts each row by (neighbour,
/// edge id), so the edge-id array here is permuted to match decode
/// order.  A built CompressedCsr owns that permuted copy; the .pbg
/// converter instead writes *canonical* (sorted) plain rows to disk so
/// the file's single eids section serves both backends, and the
/// mmap-adopted CompressedCsr borrows it (Csr's contract that no
/// algorithm depends on adjacency order makes canonicalization legal).
///
/// Like Csr, storage is owning-or-borrowed: build() owns its arrays,
/// adopt() wraps the index/data/eids sections of a mapped .pbg file.

namespace parbcc {

class CompressedCsr {
 public:
  /// Escape sentinel: a quotient of 8+ unary ones is followed by the
  /// raw 32-bit gap instead of a remainder.
  static constexpr unsigned kEscapeQ = 8;

  /// Compress the rows of `csr` in parallel.  The result owns all
  /// storage (including the permuted eids) and is independent of the
  /// source Csr except for the offsets array, which it copies.
  static CompressedCsr build(Executor& ex, const Csr& csr);

  /// Adopt caller-managed sections of a mapped .pbg file: `offsets` is
  /// the plain CSR offsets section (degrees + eid subranges), `index`
  /// the n + 1 row byte index, `data` the packed row bytes, `eids` the
  /// plain eids section (canonical order on disk).  Storage must
  /// outlive the CompressedCsr.  The index/offsets shapes must already
  /// be structurally valid (the loader always checks them); row *bytes*
  /// need not be — decode_row bounds every read by the row's byte range
  /// and clamps every neighbour to [0, n), and the loader's verify pass
  /// checks full decode-vs-targets equality on demand.
  static CompressedCsr adopt(vid n, eid m, std::span<const eid> offsets,
                             std::span<const std::uint64_t> index,
                             std::span<const std::uint8_t> data,
                             std::span<const eid> eids) {
    CompressedCsr c;
    c.n_ = n;
    c.m_ = m;
    c.offsets_view_ = offsets;
    c.index_view_ = index;
    c.data_view_ = data;
    c.eids_view_ = eids;
    return c;
  }

  CompressedCsr() = default;
  CompressedCsr(const CompressedCsr&) = delete;
  CompressedCsr& operator=(const CompressedCsr&) = delete;
  CompressedCsr(CompressedCsr&&) = default;
  CompressedCsr& operator=(CompressedCsr&&) = default;

  vid num_vertices() const { return n_; }
  eid num_edges() const { return m_; }
  eid degree(vid v) const { return offsets_view_[v + 1] - offsets_view_[v]; }

  /// Encoded bytes of row v (what a full decode of the row streams).
  std::size_t row_bytes(vid v) const {
    return static_cast<std::size_t>(index_view_[v + 1] - index_view_[v]);
  }

  /// Total encoded adjacency bytes (rows only, excludes the index).
  std::size_t data_bytes() const { return data_view_.size(); }

  /// Edge ids of row v in decode order.
  std::span<const eid> incident_edges(vid v) const {
    return eids_view_.subspan(offsets_view_[v], degree(v));
  }

  /// Raw section views, in the shapes the .pbg writer serializes.
  std::span<const std::uint64_t> row_index() const { return index_view_; }
  std::span<const std::uint8_t> row_data() const { return data_view_; }
  std::span<const eid> edge_ids() const { return eids_view_; }

  /// Decode row v, calling `f(neighbour, edge_id)` per arc in sorted
  /// neighbour order; `f` returns true to stop early.  Returns the
  /// encoded bytes consumed (whole row when not stopped; the
  /// byte-rounded prefix when stopped early) — the hot loops charge
  /// this to the csr_decode_bytes counter.
  ///
  /// Every read is bounded by the row's own [cindex[v], cindex[v+1])
  /// byte range and every emitted neighbour is clamped to [0, n), so
  /// corrupt or hostile row bytes in an adopted mapping produce
  /// garbage-but-defined in-range values — never an out-of-bounds
  /// read here or an out-of-bounds index in a consumer.  Semantic
  /// integrity (decode == targets section) is the loader's verify
  /// pass; the clamp is defence in depth behind it.
  template <typename F>
  std::size_t decode_row(vid v, F&& f) const {
    const eid deg = degree(v);
    if (deg == 0) return 0;
    const std::uint8_t* p = data_view_.data() + index_view_[v];
    const std::uint8_t* row_begin = p;
    const std::uint8_t* row_end = row_begin + row_bytes(v);
    if (p == row_end) return 0;  // malformed: nonempty row, zero bytes
    const eid* eids = eids_view_.data() + offsets_view_[v];
    const vid max_nbr = n_ - 1;
    // The encoder never writes k > 24; the min caps a corrupted byte
    // in a mapped file so the shifts below stay defined (garbage in,
    // garbage out — never undefined behaviour).
    const unsigned k = std::min<unsigned>(*p++, 31);
    // Varint first neighbour.  Bounded by row_end, and the OR is
    // skipped once the shift leaves the 32-bit value (hostile
    // continuation bits would otherwise run past the row and the
    // mapping itself).
    vid nbr = 0;
    unsigned shift = 0;
    while (p < row_end) {
      const std::uint8_t b = *p++;
      if (shift < 32) nbr |= static_cast<vid>(b & 0x7f) << shift;
      if (!(b & 0x80)) break;
      shift += 7;
    }
    if (f(std::min(nbr, max_nbr), eids[0])) {
      return static_cast<std::size_t>(p - row_begin);
    }
    // Rice-coded gaps, MSB-first.  The 64-bit buffer keeps codes in
    // its top bits; refills never read past the row's own bytes.
    std::uint64_t buf = 0;
    unsigned nbits = 0;
    for (eid j = 1; j < deg; ++j) {
      while (nbits <= 56 && p < row_end) {
        buf |= static_cast<std::uint64_t>(*p++) << (56 - nbits);
        nbits += 8;
      }
      const unsigned q = static_cast<unsigned>(std::countl_one(buf));
      vid gap;
      if (q >= kEscapeQ) {  // escape: 8 ones + raw 32-bit gap
        buf <<= kEscapeQ;
        nbits -= kEscapeQ;
        while (nbits <= 56 && p < row_end) {
          buf |= static_cast<std::uint64_t>(*p++) << (56 - nbits);
          nbits += 8;
        }
        gap = static_cast<vid>(buf >> 32);
        buf <<= 32;
        nbits -= 32;
      } else {
        buf <<= q + 1;  // quotient ones + terminating zero
        gap = static_cast<vid>(q) << k;
        if (k > 0) {
          gap |= static_cast<vid>(buf >> (64 - k));
          buf <<= k;
        }
        nbits -= q + 1 + k;
      }
      nbr += gap;
      if (f(std::min(nbr, max_nbr), eids[j])) {
        // Bytes pulled into the buffer, minus whole unconsumed bytes
        // (the min guards the count when a malformed row exhausted its
        // bytes and nbits wrapped).
        const auto pulled = static_cast<std::size_t>(p - row_begin);
        return pulled - std::min<std::size_t>(nbits / 8, pulled);
      }
    }
    return static_cast<std::size_t>(p - row_begin);
  }

 private:
  vid n_ = 0;
  eid m_ = 0;
  // Owned storage (empty when adopted); the views are the live arrays.
  uvector<eid> offsets_;           // n + 1 (copy of the source Csr's)
  uvector<std::uint64_t> index_;   // n + 1 row byte index
  uvector<std::uint8_t> data_;     // packed rows
  uvector<eid> eids_;              // 2m, permuted to decode order
  std::span<const eid> offsets_view_;
  std::span<const std::uint64_t> index_view_;
  std::span<const std::uint8_t> data_view_;
  std::span<const eid> eids_view_;
};

}  // namespace parbcc
