#include "graph/compressed_csr.hpp"

#include <algorithm>
#include <cstring>

namespace parbcc {

namespace {

// MSB-first bit packer used by the per-row encoder.  Codes go into the
// top bits of a 64-bit staging buffer; whole bytes spill to `p`.
struct BitWriter {
  std::uint8_t* p;
  std::uint64_t buf = 0;
  unsigned nbits = 0;

  void put(std::uint32_t value, unsigned bits) {
    buf |= static_cast<std::uint64_t>(value) << (64 - nbits - bits);
    nbits += bits;
    while (nbits >= 8) {
      *p++ = static_cast<std::uint8_t>(buf >> 56);
      buf <<= 8;
      nbits -= 8;
    }
  }
  void flush() {
    if (nbits > 0) {
      *p++ = static_cast<std::uint8_t>(buf >> 56);
      buf = 0;
      nbits = 0;
    }
  }
};

constexpr unsigned kMaxRiceK = 24;

inline unsigned rice_bits(vid gap, unsigned k) {
  const unsigned q = gap >> k;
  return q >= CompressedCsr::kEscapeQ ? CompressedCsr::kEscapeQ + 32
                                      : q + 1 + k;
}

inline unsigned varint_size(vid v) {
  return 1 + (std::bit_width(v | 1u) - 1) / 7;
}

// Pick the Rice parameter for a row of gaps: seed from the mean gap,
// then try the neighbouring values — the exact cost is a cheap sum and
// the m = 20n bytes-streamed gate is sensitive to a wasted bit per arc.
unsigned choose_k(const vid* nbrs, eid deg) {
  if (deg < 2) return 0;
  const vid span = nbrs[deg - 1] - nbrs[0];
  const vid mean = span / (deg - 1);
  const unsigned k0 =
      mean == 0 ? 0
                : std::min<unsigned>(std::bit_width(mean) - 1, kMaxRiceK);
  unsigned best_k = k0;
  std::uint64_t best_cost = ~std::uint64_t{0};
  for (unsigned k = k0 > 0 ? k0 - 1 : 0;
       k <= std::min(k0 + 1, kMaxRiceK); ++k) {
    std::uint64_t cost = 0;
    for (eid j = 1; j < deg; ++j) {
      cost += rice_bits(nbrs[j] - nbrs[j - 1], k);
    }
    if (cost < best_cost) {
      best_cost = cost;
      best_k = k;
    }
  }
  return best_k;
}

std::uint64_t row_encoded_bytes(const vid* nbrs, eid deg, unsigned k) {
  if (deg == 0) return 0;
  std::uint64_t bits = 0;
  for (eid j = 1; j < deg; ++j) {
    bits += rice_bits(nbrs[j] - nbrs[j - 1], k);
  }
  return 1 + varint_size(nbrs[0]) + (bits + 7) / 8;
}

void encode_row(std::uint8_t* out, const vid* nbrs, eid deg, unsigned k) {
  *out++ = static_cast<std::uint8_t>(k);
  vid first = nbrs[0];
  while (first >= 0x80) {
    *out++ = static_cast<std::uint8_t>(first) | 0x80;
    first >>= 7;
  }
  *out++ = static_cast<std::uint8_t>(first);
  BitWriter bw{out};
  for (eid j = 1; j < deg; ++j) {
    const vid gap = nbrs[j] - nbrs[j - 1];
    const unsigned q = gap >> k;
    if (q >= CompressedCsr::kEscapeQ) {
      bw.put((1u << CompressedCsr::kEscapeQ) - 1, CompressedCsr::kEscapeQ);
      bw.put(gap, 32);
    } else {
      bw.put((1u << (q + 1)) - 2, q + 1);  // q ones, then a zero
      if (k > 0) bw.put(gap & ((1u << k) - 1), k);
    }
  }
  bw.flush();
}

}  // namespace

CompressedCsr CompressedCsr::build(Executor& ex, const Csr& csr) {
  CompressedCsr c;
  const vid n = csr.num_vertices();
  const eid m = csr.num_edges();
  c.n_ = n;
  c.m_ = m;
  const std::size_t num_arcs = 2 * static_cast<std::size_t>(m);

  c.offsets_.resize(n + 1);
  std::memcpy(c.offsets_.data(), csr.offsets().data(),
              (n + 1) * sizeof(eid));
  c.index_.resize(n + 1);
  c.eids_.resize(num_arcs);

  // Canonicalize every row: sorted by (neighbour, edge id).  Packed
  // u64 keys sort both halves of the pair in one comparison; the
  // sorted neighbours feed the size and encode passes, the sorted eids
  // become the owned decode-order eid array.
  uvector<std::uint64_t> packed(num_arcs);
  uvector<vid> sorted_nbrs(num_arcs);
  uvector<std::uint8_t> ks(n);
  const std::span<const eid> offsets = csr.offsets();
  ex.parallel_for(n, [&](std::size_t v) {
    const eid lo = offsets[v];
    const eid deg = offsets[v + 1] - lo;
    const auto nbrs = csr.neighbors(static_cast<vid>(v));
    const auto eids = csr.incident_edges(static_cast<vid>(v));
    for (eid j = 0; j < deg; ++j) {
      packed[lo + j] =
          (static_cast<std::uint64_t>(nbrs[j]) << 32) | eids[j];
    }
    std::sort(packed.begin() + lo, packed.begin() + lo + deg);
    for (eid j = 0; j < deg; ++j) {
      sorted_nbrs[lo + j] = static_cast<vid>(packed[lo + j] >> 32);
      c.eids_[lo + j] = static_cast<eid>(packed[lo + j]);
    }
    const unsigned k = choose_k(sorted_nbrs.data() + lo, deg);
    ks[v] = static_cast<std::uint8_t>(k);
    c.index_[v + 1] = row_encoded_bytes(sorted_nbrs.data() + lo, deg, k);
  });

  c.index_[0] = 0;
  for (vid v = 0; v < n; ++v) c.index_[v + 1] += c.index_[v];

  c.data_.resize(c.index_[n]);
  ex.parallel_for(n, [&](std::size_t v) {
    const eid deg = offsets[v + 1] - offsets[v];
    if (deg == 0) return;
    encode_row(c.data_.data() + c.index_[v], &sorted_nbrs[offsets[v]], deg,
               ks[v]);
  });

  c.offsets_view_ = {c.offsets_.data(), c.offsets_.size()};
  c.index_view_ = {c.index_.data(), c.index_.size()};
  c.data_view_ = {c.data_.data(), c.data_.size()};
  c.eids_view_ = {c.eids_.data(), c.eids_.size()};
  return c;
}

}  // namespace parbcc
