#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <span>
#include <utility>
#include <vector>

#include "util/types.hpp"

/// \file edge_list.hpp
/// The library's interchange representation: a flat list of undirected
/// edges.  Tarjan-Vishkin takes an edge list as input (paper §2), and
/// every result labels edges by their index in this list.

namespace parbcc {

/// One undirected edge {u, v}.  Orientation is storage only.
struct Edge {
  vid u;
  vid v;

  friend bool operator==(const Edge&, const Edge&) = default;

  /// The endpoint that is not `x` (precondition: x is an endpoint).
  vid other(vid x) const { return x == u ? v : u; }
};

/// Storage for an edge array that either owns a vector or borrows a
/// read-only span (e.g. the edges section of an mmap'd .pbg file — see
/// io_binary.hpp).  Borrowing is what makes zero-copy ingestion
/// possible: a mapped graph's edges flow through every solver without
/// ever being copied into the heap.
///
/// The interface is the vector subset the codebase uses.  Const access
/// reads the active view; any mutating call on a borrowed store first
/// materializes a private owning copy (copy-on-write), so existing
/// mutation-heavy code (batch_dynamic's standing graph, generators,
/// readers) is correct regardless of where the edges came from.
/// Because overload resolution picks the non-const accessors on any
/// non-const EdgeStore, an accidental mutable iteration silently pays
/// that copy — materialize_count() makes it observable.  The
/// referenced storage of a borrowed store must outlive every read —
/// callers adopting mapped memory keep the mapping alive (see
/// BccContext::adopt).
class EdgeStore {
 public:
  using value_type = Edge;
  using iterator = Edge*;
  using const_iterator = const Edge*;

  EdgeStore() = default;
  EdgeStore(std::vector<Edge> v)
      : own_(std::move(v)), view_(own_.data(), own_.size()) {}

  /// A non-owning view over caller-managed storage.
  static EdgeStore borrow(std::span<const Edge> s) {
    EdgeStore e;
    e.view_ = s;
    e.borrowed_ = true;
    return e;
  }

  // A copy of an owning store deep-copies (and re-points the view at
  // the copy); a copy of a borrowed store stays a borrow of the same
  // storage — copies share the original's lifetime obligation.
  EdgeStore(const EdgeStore& o) : own_(o.own_), borrowed_(o.borrowed_) {
    view_ = borrowed_ ? o.view_ : std::span<const Edge>(own_);
  }
  EdgeStore& operator=(const EdgeStore& o) {
    if (this != &o) {
      own_ = o.own_;
      borrowed_ = o.borrowed_;
      view_ = borrowed_ ? o.view_ : std::span<const Edge>(own_);
    }
    return *this;
  }
  // Vector moves keep their heap buffer, so the moved view stays valid.
  EdgeStore(EdgeStore&& o) noexcept
      : own_(std::move(o.own_)), view_(o.view_), borrowed_(o.borrowed_) {
    o.view_ = {};
    o.own_.clear();
    o.borrowed_ = false;
  }
  EdgeStore& operator=(EdgeStore&& o) noexcept {
    if (this != &o) {
      own_ = std::move(o.own_);
      view_ = o.view_;
      borrowed_ = o.borrowed_;
      o.view_ = {};
      o.own_.clear();
      o.borrowed_ = false;
    }
    return *this;
  }

  bool is_borrowed() const { return borrowed_; }

  /// Process-wide count of borrow -> own materializations.  Each one is
  /// an O(m) heap copy of a mapped edges section, so a rising count on
  /// a zero-copy path means some caller reached a *non-const* accessor
  /// on an adopted graph (e.g. `for (Edge& e : g.edges)` on a non-const
  /// EdgeList) — pass the graph const to keep the borrow.  io_test
  /// pins this at zero across mmap-backed solves.
  static std::size_t materialize_count() {
    return materialize_count_.load(std::memory_order_relaxed);
  }

  const Edge* data() const { return view_.data(); }
  std::size_t size() const { return view_.size(); }
  bool empty() const { return view_.empty(); }
  const Edge& operator[](std::size_t i) const { return view_[i]; }
  const Edge& back() const { return view_.back(); }
  const_iterator begin() const { return view_.data(); }
  const_iterator end() const { return view_.data() + view_.size(); }
  operator std::span<const Edge>() const { return view_; }

  friend bool operator==(const EdgeStore& a, const EdgeStore& b) {
    return a.size() == b.size() &&
           std::equal(a.begin(), a.end(), b.begin());
  }

  Edge* data() { return materialize().data(); }
  Edge& operator[](std::size_t i) { return materialize()[i]; }
  Edge& back() { return materialize().back(); }
  iterator begin() { return materialize().data(); }
  iterator end() {
    std::vector<Edge>& v = materialize();
    return v.data() + v.size();
  }
  void push_back(Edge e) {
    materialize().push_back(e);
    view_ = {own_.data(), own_.size()};
  }
  void pop_back() {
    materialize().pop_back();
    view_ = {own_.data(), own_.size()};
  }
  void reserve(std::size_t c) {
    materialize().reserve(c);
    view_ = {own_.data(), own_.size()};
  }
  void resize(std::size_t s) {
    materialize().resize(s);
    view_ = {own_.data(), own_.size()};
  }
  void clear() {
    own_.clear();
    borrowed_ = false;
    view_ = {};
  }

 private:
  /// Switch to owning storage, copying the borrowed view if needed.
  std::vector<Edge>& materialize() {
    if (borrowed_) {
      own_.assign(view_.begin(), view_.end());
      borrowed_ = false;
      view_ = {own_.data(), own_.size()};
      materialize_count_.fetch_add(1, std::memory_order_relaxed);
    }
    return own_;
  }

  static inline std::atomic<std::size_t> materialize_count_{0};

  std::vector<Edge> own_;
  std::span<const Edge> view_;
  bool borrowed_ = false;
};

/// An undirected graph as n vertices plus an edge list.
/// Vertices are [0, n).  Parallel edges are permitted (they are
/// biconnectivity-relevant: a doubled edge is never a bridge);
/// self-loops are rejected by validate() — strip them first with
/// remove_self_loops() if an input may contain any.
struct EdgeList {
  vid n = 0;
  EdgeStore edges;

  EdgeList() = default;
  EdgeList(vid num_vertices, std::vector<Edge> e)
      : n(num_vertices), edges(std::move(e)) {}

  eid m() const { return static_cast<eid>(edges.size()); }

  void add_edge(vid u, vid v) { edges.push_back({u, v}); }

  /// True iff all endpoints are in range and there are no self-loops.
  bool validate() const {
    for (const Edge& e : edges) {
      if (e.u >= n || e.v >= n || e.u == e.v) return false;
    }
    return true;
  }
};

/// Copy of `g` without self-loops; `kept[i]` gets the original index of
/// surviving edge i when non-null.
inline EdgeList remove_self_loops(const EdgeList& g,
                                  std::vector<eid>* kept = nullptr) {
  EdgeList out;
  out.n = g.n;
  out.edges.reserve(g.edges.size());
  if (kept) kept->clear();
  for (eid i = 0; i < g.m(); ++i) {
    if (g.edges[i].u != g.edges[i].v) {
      out.edges.push_back(g.edges[i]);
      if (kept) kept->push_back(i);
    }
  }
  return out;
}

}  // namespace parbcc
