#pragma once

#include <cstddef>
#include <vector>

#include "util/types.hpp"

/// \file edge_list.hpp
/// The library's interchange representation: a flat list of undirected
/// edges.  Tarjan-Vishkin takes an edge list as input (paper §2), and
/// every result labels edges by their index in this list.

namespace parbcc {

/// One undirected edge {u, v}.  Orientation is storage only.
struct Edge {
  vid u;
  vid v;

  friend bool operator==(const Edge&, const Edge&) = default;

  /// The endpoint that is not `x` (precondition: x is an endpoint).
  vid other(vid x) const { return x == u ? v : u; }
};

/// An undirected graph as n vertices plus an edge list.
/// Vertices are [0, n).  Parallel edges are permitted (they are
/// biconnectivity-relevant: a doubled edge is never a bridge);
/// self-loops are rejected by validate() — strip them first with
/// remove_self_loops() if an input may contain any.
struct EdgeList {
  vid n = 0;
  std::vector<Edge> edges;

  EdgeList() = default;
  EdgeList(vid num_vertices, std::vector<Edge> e)
      : n(num_vertices), edges(std::move(e)) {}

  eid m() const { return static_cast<eid>(edges.size()); }

  void add_edge(vid u, vid v) { edges.push_back({u, v}); }

  /// True iff all endpoints are in range and there are no self-loops.
  bool validate() const {
    for (const Edge& e : edges) {
      if (e.u >= n || e.v >= n || e.u == e.v) return false;
    }
    return true;
  }
};

/// Copy of `g` without self-loops; `kept[i]` gets the original index of
/// surviving edge i when non-null.
inline EdgeList remove_self_loops(const EdgeList& g,
                                  std::vector<eid>* kept = nullptr) {
  EdgeList out;
  out.n = g.n;
  out.edges.reserve(g.edges.size());
  if (kept) kept->clear();
  for (eid i = 0; i < g.m(); ++i) {
    if (g.edges[i].u != g.edges[i].v) {
      out.edges.push_back(g.edges[i]);
      if (kept) kept->push_back(i);
    }
  }
  return out;
}

}  // namespace parbcc
