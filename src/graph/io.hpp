#pragma once

#include <iosfwd>
#include <string>

#include "graph/edge_list.hpp"

/// \file io.hpp
/// Plain-text edge-list serialization.
///
/// Format (whitespace separated, '#' starts a comment line):
///   n m
///   u v          (m lines, 0-based endpoints)
///
/// This is deliberately minimal: the paper's inputs are synthetic, and
/// the examples use files only to show round-tripping a workload.
///
/// All readers treat their input as untrusted: declared vertex/edge
/// counts are validated against the 32-bit id space before any
/// narrowing cast, endpoints are range-checked against the declared n,
/// and a hostile edge count cannot force a large up-front allocation
/// (the speculative reserve is capped; the body must actually deliver
/// the edges).  Violations throw std::runtime_error naming the format
/// and the offending value.

namespace parbcc::io {

void write_edge_list(std::ostream& os, const EdgeList& g);
void write_edge_list_file(const std::string& path, const EdgeList& g);

/// Throws std::runtime_error on malformed input.
EdgeList read_edge_list(std::istream& is);
EdgeList read_edge_list_file(const std::string& path);

/// DIMACS challenge format: "c" comments, one "p edge <n> <m>" header,
/// then m lines "e <u> <v>" with 1-based endpoints.
void write_dimacs(std::ostream& os, const EdgeList& g);
EdgeList read_dimacs(std::istream& is);

/// METIS graph format (unweighted, fmt field absent or 0): header
/// "<n> <m>", then line i lists the 1-based neighbours of vertex i;
/// every edge appears in both endpoint lines.  Self-loops are not
/// representable and are rejected on write.
void write_metis(std::ostream& os, const EdgeList& g);
EdgeList read_metis(std::istream& is);

}  // namespace parbcc::io
