#include "graph/csr.hpp"

#include <atomic>
#include <stdexcept>

#include "scan/scan.hpp"
#include "sort/radix_sort.hpp"

namespace parbcc {

Csr Csr::build(Executor& ex, const EdgeList& g) {
  if (!g.validate()) {
    throw std::invalid_argument(
        "Csr::build: edge list has out-of-range endpoints or self-loops");
  }
  Csr csr;
  csr.n_ = g.n;
  csr.m_ = g.m();
  const std::size_t n = g.n;
  const std::size_t m = g.edges.size();
  const std::size_t num_arcs = 2 * m;

  // Row boundaries from a degree count.
  {
    std::vector<std::atomic<eid>> degree(n);
    ex.parallel_for(n, [&](std::size_t v) {
      degree[v].store(0, std::memory_order_relaxed);
    });
    ex.parallel_for(m, [&](std::size_t i) {
      degree[g.edges[i].u].fetch_add(1, std::memory_order_relaxed);
      degree[g.edges[i].v].fetch_add(1, std::memory_order_relaxed);
    });
    std::vector<eid> deg(n);
    ex.parallel_for(n, [&](std::size_t v) {
      deg[v] = degree[v].load(std::memory_order_relaxed);
    });
    csr.offsets_.resize(n + 1);
    const eid total =
        exclusive_scan(ex, deg.data(), csr.offsets_.data(), n, eid{0});
    csr.offsets_[n] = total;
  }

  // Row contents by a stable by-source radix sort.  A direct per-vertex
  // cursor scatter costs two dependent cache misses per arc (latency
  // bound); the sort's distribution passes stream sequentially instead,
  // which is several times faster at the paper's densities.
  std::vector<std::uint64_t> keys(num_arcs);
  std::vector<std::uint64_t> payload(num_arcs);  // (neighbour << 32) | edge
  ex.parallel_for(m, [&](std::size_t i) {
    const Edge e = g.edges[i];
    keys[2 * i] = e.u;
    payload[2 * i] = (static_cast<std::uint64_t>(e.v) << 32) | i;
    keys[2 * i + 1] = e.v;
    payload[2 * i + 1] = (static_cast<std::uint64_t>(e.u) << 32) | i;
  });
  radix_sort_kv64(ex, keys, payload);

  csr.nbrs_.resize(num_arcs);
  csr.eids_.resize(num_arcs);
  ex.parallel_for(num_arcs, [&](std::size_t s) {
    csr.nbrs_[s] = static_cast<vid>(payload[s] >> 32);
    csr.eids_[s] = static_cast<eid>(payload[s] & 0xffffffffu);
  });

  return csr;
}

}  // namespace parbcc
