#include "graph/csr.hpp"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <stdexcept>

#include "sort/radix_sort.hpp"

namespace parbcc {
namespace {

/// Inputs at or below this many arcs (and a comparable vertex count)
/// are built by one thread; the parallel machinery costs more than the
/// work.
constexpr std::size_t kSequentialArcCutoff = std::size_t{1} << 13;

/// Bucket sizing for the scatter builder, tuned empirically: larger
/// buckets amortise the per-bucket cursor reset and keep the stage-1
/// write streams few enough to sit in L1, while the per-bucket window
/// (staged records + final rows) must not fall out of L2 during the
/// counting scatter.  64k arcs/bucket was the minimum over the density
/// sweep on the reference container; the shape is flat within 2^±1.
constexpr std::size_t kTargetArcsPerBucket = std::size_t{1} << 16;

/// Cap on the bucket count so the per-thread histogram matrix and the
/// scatter's open write streams stay inside L2.
constexpr std::size_t kMaxBuckets = std::size_t{1} << 12;

/// Staged arc record: source row, neighbour, originating edge.  Kept
/// as one 12-byte record — splitting into parallel arrays doubles the
/// stage-1 write streams and loses at large bucket counts.
struct Arc {
  vid src;
  vid nbr;
  eid edge;
};

/// Single-threaded cursor scatter; everything fits in cache at the
/// sizes this is used for.
void build_rows_sequential(const EdgeList& g, uvector<eid>& offsets,
                           uvector<vid>& nbrs, uvector<eid>& eids) {
  const std::size_t n = g.n;
  std::fill(offsets.begin(), offsets.end(), eid{0});
  for (const Edge& e : g.edges) {
    ++offsets[e.u + 1];
    ++offsets[e.v + 1];
  }
  for (std::size_t v = 0; v < n; ++v) offsets[v + 1] += offsets[v];
  for (std::size_t i = 0; i < g.edges.size(); ++i) {
    const Edge e = g.edges[i];
    eid dst = offsets[e.u]++;
    nbrs[dst] = e.v;
    eids[dst] = static_cast<eid>(i);
    dst = offsets[e.v]++;
    nbrs[dst] = e.u;
    eids[dst] = static_cast<eid>(i);
  }
  // The cursors left offsets[v] holding row v's end, which is row
  // v + 1's start: shift down to restore.
  for (std::size_t v = n; v > 0; --v) offsets[v] = offsets[v - 1];
  offsets[0] = 0;
}

/// Fallback for degenerately sparse inputs (arcs << vertices, i.e.
/// mostly isolated vertices): a stable by-source radix sort whose
/// passes cover only the significant bytes of the largest vertex id,
/// with row boundaries read off the sorted keys afterwards.  Here the
/// scatter builder loses because its per-bucket cursor initialisation
/// touches far more memory than the arcs themselves.
void build_rows_radix(Executor& ex, Workspace& ws, const EdgeList& g,
                      uvector<eid>& offsets, uvector<vid>& nbrs,
                      uvector<eid>& eids) {
  const std::size_t n = g.n;
  const std::size_t m = g.edges.size();
  const std::size_t num_arcs = 2 * m;

  Workspace::Frame frame(ws);
  std::span<std::uint64_t> keys = ws.alloc<std::uint64_t>(num_arcs);
  std::span<std::uint64_t> payload =
      ws.alloc<std::uint64_t>(num_arcs);  // (neighbour << 32) | edge
  ex.parallel_for(m, [&](std::size_t i) {
    const Edge e = g.edges[i];
    keys[2 * i] = e.u;
    payload[2 * i] = (static_cast<std::uint64_t>(e.v) << 32) | i;
    keys[2 * i + 1] = e.v;
    payload[2 * i + 1] = (static_cast<std::uint64_t>(e.u) << 32) | i;
  });
  radix_sort_kv64(ex, ws, keys, payload);

  // offsets[v] = first arc position with source >= v.  Consecutive
  // sorted keys delimit disjoint ranges of row starts, so the fills
  // below never overlap.
  ex.parallel_for(num_arcs, [&](std::size_t s) {
    const vid v = static_cast<vid>(keys[s]);
    if (s == 0) {
      for (vid u = 0; u <= v; ++u) offsets[u] = 0;
      return;
    }
    const vid prev = static_cast<vid>(keys[s - 1]);
    for (vid u = prev; u < v; ++u) offsets[u + 1] = static_cast<eid>(s);
  });
  const vid last = static_cast<vid>(keys[num_arcs - 1]);
  ex.parallel_for(n - last, [&](std::size_t i) {
    offsets[last + 1 + i] = static_cast<eid>(num_arcs);
  });

  ex.parallel_for(num_arcs, [&](std::size_t s) {
    nbrs[s] = static_cast<vid>(payload[s] >> 32);
    eids[s] = static_cast<eid>(payload[s] & 0xffffffffu);
  });
}

/// The main builder: a counting scatter in two sequential-friendly
/// passes, no sort and no per-vertex atomics.
///
///   1. Partition edges into per-thread blocks and vertices into
///      contiguous buckets; count arcs per (thread block, bucket).
///   2. Column-major prefix-sum the histogram matrix, giving every
///      (thread, bucket) pair a disjoint destination range, then each
///      thread streams its arcs into those mostly-sequential ranges,
///      grouping arcs by bucket.
///   3. Per bucket (dynamically scheduled): count local degrees, turn
///      them into global row offsets (bucket arc regions are already
///      globally contiguous and in vertex order), and scatter the
///      bucket's arcs into their final rows.  All writes of one bucket
///      land in one cache-resident window.
///
/// Compared with sorting 2m 64-bit keys this reads the edge list twice
/// and the staged arcs twice (once from cache) instead of paying
/// several full distribution passes plus a final unpack.
void build_rows_scatter(Executor& ex, Workspace& ws, const EdgeList& g,
                        uvector<eid>& offsets, uvector<vid>& nbrs,
                        uvector<eid>& eids) {
  const std::size_t n = g.n;
  const std::size_t m = g.edges.size();
  const std::size_t num_arcs = 2 * m;
  const int p = ex.threads();
  const std::size_t np = static_cast<std::size_t>(p);

  std::size_t num_buckets = std::max(
      (num_arcs + kTargetArcsPerBucket - 1) / kTargetArcsPerBucket, np * 4);
  num_buckets = std::min({num_buckets, kMaxBuckets, n});
  // Power-of-two bucket width: the bucket of a vertex is looked up
  // 4m times below, and a shift beats the integer division a runtime
  // divisor would cost.
  const std::size_t min_width = (n + num_buckets - 1) / num_buckets;
  unsigned bucket_shift = 0;
  while ((std::size_t{1} << bucket_shift) < min_width) ++bucket_shift;
  const std::size_t bucket_width = std::size_t{1} << bucket_shift;
  num_buckets = (n + bucket_width - 1) >> bucket_shift;

  // hist[t * num_buckets + b]: thread t's arc count for bucket b,
  // reused as the scatter cursor after the prefix-sum step.  The
  // staged arc records are the builder's dominant scratch (12 bytes
  // per arc); like the histogram they are workspace memory.
  Workspace::Frame frame(ws);
  std::span<std::size_t> hist = ws.alloc<std::size_t>(np * num_buckets);
  std::span<std::size_t> bucket_start =
      ws.alloc<std::size_t>(num_buckets + 1);
  std::span<Arc> arcs = ws.alloc<Arc>(num_arcs);
  ex.parallel_for(np * num_buckets, [&](std::size_t i) { hist[i] = 0; });

  ex.run([&](int tid) {
    const auto [begin, end] = Executor::block_range(m, p, tid);
    std::size_t* h = hist.data() + static_cast<std::size_t>(tid) * num_buckets;
    for (std::size_t i = begin; i < end; ++i) {
      ++h[g.edges[i].u >> bucket_shift];
      ++h[g.edges[i].v >> bucket_shift];
    }
    ex.barrier().wait();
    if (tid == 0) {
      // Bucket-major, then thread-major: bucket regions come out
      // contiguous and in vertex order.
      std::size_t running = 0;
      for (std::size_t b = 0; b < num_buckets; ++b) {
        bucket_start[b] = running;
        for (std::size_t t = 0; t < np; ++t) {
          const std::size_t c = hist[t * num_buckets + b];
          hist[t * num_buckets + b] = running;
          running += c;
        }
      }
      bucket_start[num_buckets] = running;
    }
    ex.barrier().wait();
    for (std::size_t i = begin; i < end; ++i) {
      const Edge e = g.edges[i];
      const eid id = static_cast<eid>(i);
      std::size_t dst = h[e.u >> bucket_shift]++;
      arcs[dst] = {e.u, e.v, id};
      dst = h[e.v >> bucket_shift]++;
      arcs[dst] = {e.v, e.u, id};
    }
  });

  if (ex.mode() == ExecMode::kSpmd || p == 1) {
    // The printed schedule: each participant claims buckets off a
    // shared counter, with one cursor array hoisted per thread.
    std::atomic<std::size_t> next{0};
    ex.run([&](int) {
      std::vector<eid> cursor(bucket_width);
      for (;;) {
        const std::size_t b = next.fetch_add(1, std::memory_order_relaxed);
        if (b >= num_buckets) break;
        const std::size_t lo = b * bucket_width;
        const std::size_t hi = std::min(lo + bucket_width, n);
        const std::size_t s_begin = bucket_start[b];
        const std::size_t s_end = bucket_start[b + 1];

        std::fill(cursor.begin(), cursor.begin() + (hi - lo), eid{0});
        for (std::size_t s = s_begin; s < s_end; ++s) {
          ++cursor[arcs[s].src - lo];
        }
        eid running = static_cast<eid>(s_begin);
        for (std::size_t v = lo; v < hi; ++v) {
          const eid degree = cursor[v - lo];
          offsets[v] = running;
          cursor[v - lo] = running;
          running += degree;
        }
        for (std::size_t s = s_begin; s < s_end; ++s) {
          const Arc a = arcs[s];
          const eid dst = cursor[a.src - lo]++;
          nbrs[dst] = a.nbr;
          eids[dst] = a.edge;
        }
      }
    });
  } else {
    // Work-stealing: buckets are fine-grained tasks, and a bucket that
    // swallowed a hub's arc mass (buckets are vertex ranges, so one
    // heavy vertex concentrates its whole adjacency here) runs its
    // count and scatter as nested parallel regions over the staged
    // arcs, claiming destinations with atomic cursor bumps.  The
    // cursor is task-local, not per-worker: a worker stealing another
    // bucket while joining a nested region would otherwise re-enter
    // the same scratch mid-phase.  Row order becomes schedule
    // dependent, which Csr's contract allows (rows are multisets).
    constexpr std::size_t kHeavyBucketArcs = 4 * kTargetArcsPerBucket;
    constexpr std::size_t kInnerGrain = 4096;
    ex.parallel_for_dynamic(num_buckets, 1, [&](std::size_t b) {
      const std::size_t lo = b * bucket_width;
      const std::size_t hi = std::min(lo + bucket_width, n);
      const std::size_t s_begin = bucket_start[b];
      const std::size_t s_end = bucket_start[b + 1];
      std::vector<eid> cursor(hi - lo, eid{0});
      const bool heavy = s_end - s_begin > kHeavyBucketArcs;
      if (heavy) {
        ex.parallel_for(s_begin, s_end, kInnerGrain, [&](std::size_t s) {
          std::atomic_ref(cursor[arcs[s].src - lo])
              .fetch_add(1, std::memory_order_relaxed);
        });
      } else {
        for (std::size_t s = s_begin; s < s_end; ++s) {
          ++cursor[arcs[s].src - lo];
        }
      }
      eid running = static_cast<eid>(s_begin);
      for (std::size_t v = lo; v < hi; ++v) {
        const eid degree = cursor[v - lo];
        offsets[v] = running;
        cursor[v - lo] = running;
        running += degree;
      }
      if (heavy) {
        ex.parallel_for(s_begin, s_end, kInnerGrain, [&](std::size_t s) {
          const Arc a = arcs[s];
          const eid dst = std::atomic_ref(cursor[a.src - lo])
                              .fetch_add(1, std::memory_order_relaxed);
          nbrs[dst] = a.nbr;
          eids[dst] = a.edge;
        });
      } else {
        for (std::size_t s = s_begin; s < s_end; ++s) {
          const Arc a = arcs[s];
          const eid dst = cursor[a.src - lo]++;
          nbrs[dst] = a.nbr;
          eids[dst] = a.edge;
        }
      }
    });
  }
  offsets[n] = static_cast<eid>(num_arcs);
}

}  // namespace

Csr Csr::build(Executor& ex, Workspace& ws, const EdgeList& g) {
  if (!g.validate()) {
    throw std::invalid_argument(
        "Csr::build: edge list has out-of-range endpoints or self-loops");
  }
  Csr csr;
  csr.n_ = g.n;
  csr.m_ = g.m();
  const std::size_t n = g.n;
  const std::size_t m = g.edges.size();
  const std::size_t num_arcs = 2 * m;
  csr.offsets_.resize(n + 1);
  csr.nbrs_.resize(num_arcs);
  csr.eids_.resize(num_arcs);
  csr.offsets_view_ = {csr.offsets_.data(), csr.offsets_.size()};
  csr.nbrs_view_ = {csr.nbrs_.data(), csr.nbrs_.size()};
  csr.eids_view_ = {csr.eids_.data(), csr.eids_.size()};

  if (m == 0) {
    std::fill(csr.offsets_.begin(), csr.offsets_.end(), eid{0});
    return csr;
  }
  if (num_arcs <= kSequentialArcCutoff && n <= 2 * kSequentialArcCutoff) {
    build_rows_sequential(g, csr.offsets_, csr.nbrs_, csr.eids_);
  } else if (num_arcs < n / 4) {
    build_rows_radix(ex, ws, g, csr.offsets_, csr.nbrs_, csr.eids_);
  } else {
    build_rows_scatter(ex, ws, g, csr.offsets_, csr.nbrs_, csr.eids_);
  }
  return csr;
}

Csr Csr::build(Executor& ex, const EdgeList& g) {
  Workspace ws;
  return build(ex, ws, g);
}

}  // namespace parbcc
