#pragma once

#include <span>
#include <vector>

#include "graph/edge_list.hpp"
#include "util/thread_pool.hpp"
#include "util/types.hpp"
#include "util/uninit.hpp"
#include "util/workspace.hpp"

/// \file csr.hpp
/// Compressed sparse row adjacency built in parallel from an edge list.
///
/// Each undirected edge {u, v} contributes the arc u->v to u's row and
/// v->u to v's row; every arc remembers the index of the edge it came
/// from so per-edge results (BCC labels) can be read off during
/// traversals.  The builder is a counting scatter: arcs are grouped by
/// contiguous vertex bucket via per-thread (thread block, bucket)
/// histograms and a prefix sum, then each bucket's arcs are placed into
/// their final rows by a thread-private counting sort — no 64-bit key
/// sort, no per-vertex atomics.  Degenerately sparse inputs (arcs <<
/// vertices) fall back to a by-source radix sort whose passes cover
/// only the significant bytes of the largest vertex id.  The order of
/// arcs within a row depends on the thread count — no algorithm in
/// this library depends on adjacency order, and tests compare label
/// partitions, not labels.
///
/// Storage is span-based: a built Csr owns its arrays, while an adopted
/// Csr (Csr::adopt) borrows caller-managed storage — the offsets /
/// targets / edge-id sections of an mmap'd .pbg file flow straight into
/// the solvers with no rebuild and no copy (see io_binary.hpp).
/// Consumers must never assume offsets().data() is heap-owned.

namespace parbcc {

class Csr {
 public:
  /// Build the adjacency structure of `g` using `ex`.  The builder's
  /// staging arrays (histograms, staged arc records, radix buffers)
  /// come from `ws`; the Csr itself owns its storage.
  static Csr build(Executor& ex, Workspace& ws, const EdgeList& g);
  static Csr build(Executor& ex, const EdgeList& g);

  /// Adopt caller-managed adjacency arrays without copying: `offsets`
  /// (n + 1 entries, offsets[n] == 2m), `nbrs` and `eids` (2m entries
  /// each, aligned).  The storage must outlive the Csr and every
  /// structure derived from it; contents are trusted (the mmap loader
  /// validates before adopting).
  static Csr adopt(vid n, eid m, std::span<const eid> offsets,
                   std::span<const vid> nbrs, std::span<const eid> eids) {
    Csr csr;
    csr.n_ = n;
    csr.m_ = m;
    csr.offsets_view_ = offsets;
    csr.nbrs_view_ = nbrs;
    csr.eids_view_ = eids;
    return csr;
  }

  Csr() = default;
  Csr(const Csr&) = delete;
  Csr& operator=(const Csr&) = delete;
  // Vector moves keep their heap buffers, so views into owned storage
  // survive a move unchanged.
  Csr(Csr&&) = default;
  Csr& operator=(Csr&&) = default;

  vid num_vertices() const { return n_; }
  eid num_edges() const { return m_; }

  /// True when the arrays are borrowed (mmap-backed) rather than owned.
  bool is_borrowed() const { return offsets_.empty() && n_ > 0; }

  eid degree(vid v) const {
    return offsets_view_[v + 1] - offsets_view_[v];
  }

  /// Neighbours of v (one entry per incident edge).
  std::span<const vid> neighbors(vid v) const {
    return nbrs_view_.subspan(offsets_view_[v], degree(v));
  }

  /// Edge indices aligned with neighbors(v).
  std::span<const eid> incident_edges(vid v) const {
    return eids_view_.subspan(offsets_view_[v], degree(v));
  }

  std::span<const eid> offsets() const { return offsets_view_; }
  std::span<const vid> targets() const { return nbrs_view_; }
  std::span<const eid> edge_ids() const { return eids_view_; }

 private:
  vid n_ = 0;
  eid m_ = 0;
  // uvector: every element is written by the builder before any read,
  // so the zero-fill of an ordinary vector resize (an extra pass over
  // ~16m bytes) is skipped.  Empty when the Csr borrows its storage.
  uvector<eid> offsets_;  // n + 1
  uvector<vid> nbrs_;     // 2m
  uvector<eid> eids_;     // 2m
  // The active storage, pointing at the owned arrays or at borrowed
  // memory.  All accessors read these.
  std::span<const eid> offsets_view_;
  std::span<const vid> nbrs_view_;
  std::span<const eid> eids_view_;
};

}  // namespace parbcc
