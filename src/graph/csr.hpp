#pragma once

#include <span>
#include <vector>

#include "graph/edge_list.hpp"
#include "util/thread_pool.hpp"
#include "util/types.hpp"
#include "util/uninit.hpp"
#include "util/workspace.hpp"

/// \file csr.hpp
/// Compressed sparse row adjacency built in parallel from an edge list.
///
/// Each undirected edge {u, v} contributes the arc u->v to u's row and
/// v->u to v's row; every arc remembers the index of the edge it came
/// from so per-edge results (BCC labels) can be read off during
/// traversals.  The builder is a counting scatter: arcs are grouped by
/// contiguous vertex bucket via per-thread (thread block, bucket)
/// histograms and a prefix sum, then each bucket's arcs are placed into
/// their final rows by a thread-private counting sort — no 64-bit key
/// sort, no per-vertex atomics.  Degenerately sparse inputs (arcs <<
/// vertices) fall back to a by-source radix sort whose passes cover
/// only the significant bytes of the largest vertex id.  The order of
/// arcs within a row depends on the thread count — no algorithm in
/// this library depends on adjacency order, and tests compare label
/// partitions, not labels.

namespace parbcc {

class Csr {
 public:
  /// Build the adjacency structure of `g` using `ex`.  The builder's
  /// staging arrays (histograms, staged arc records, radix buffers)
  /// come from `ws`; the Csr itself owns its storage.
  static Csr build(Executor& ex, Workspace& ws, const EdgeList& g);
  static Csr build(Executor& ex, const EdgeList& g);

  vid num_vertices() const { return n_; }
  eid num_edges() const { return m_; }

  eid degree(vid v) const { return offsets_[v + 1] - offsets_[v]; }

  /// Neighbours of v (one entry per incident edge).
  std::span<const vid> neighbors(vid v) const {
    return {nbrs_.data() + offsets_[v], nbrs_.data() + offsets_[v + 1]};
  }

  /// Edge indices aligned with neighbors(v).
  std::span<const eid> incident_edges(vid v) const {
    return {eids_.data() + offsets_[v], eids_.data() + offsets_[v + 1]};
  }

  std::span<const eid> offsets() const { return offsets_; }

 private:
  vid n_ = 0;
  eid m_ = 0;
  // uvector: every element is written by the builder before any read,
  // so the zero-fill of an ordinary vector resize (an extra pass over
  // ~16m bytes) is skipped.
  uvector<eid> offsets_;  // n + 1
  uvector<vid> nbrs_;     // 2m
  uvector<eid> eids_;     // 2m
};

}  // namespace parbcc
