#pragma once

#include <span>
#include <vector>

#include "graph/edge_list.hpp"
#include "util/types.hpp"

/// \file subgraph.hpp
/// Subgraph extraction with vertex relabeling — shared by the
/// disconnected-graph dispatcher, the certificate validator and the
/// examples, which all need to lift an edge subset into a compact
/// standalone graph and map results back.

namespace parbcc {

struct Subgraph {
  /// The extracted graph over compact vertex ids [0, sub.n).
  EdgeList graph;
  /// original vertex id per compact id.
  std::vector<vid> vertex_of;
  /// original edge id per extracted edge.
  std::vector<eid> edge_of;
};

/// Extract the subgraph induced by the given edges (vertices are those
/// incident to at least one selected edge, numbered by first
/// appearance).
Subgraph extract_edges(const EdgeList& g, std::span<const eid> edges);

/// Extract the subgraph of all edges whose label matches `label`.
Subgraph extract_label(const EdgeList& g, std::span<const vid> labels,
                       vid label);

/// Degree of every vertex (each parallel edge and both self-loop ends
/// counted).
std::vector<eid> degrees(const EdgeList& g);

}  // namespace parbcc
