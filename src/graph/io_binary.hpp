#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>

#include "graph/compressed_csr.hpp"
#include "graph/csr.hpp"
#include "graph/edge_list.hpp"
#include "util/thread_pool.hpp"
#include "util/trace.hpp"

/// \file io_binary.hpp
/// The .pbg binary graph format and its zero-copy mmap loader.
///
/// A .pbg file is a prepared graph: the edge list *and* its finished
/// CSR (plus, optionally, the delta-compressed rows), laid out so the
/// solvers can run on the mapped bytes directly — no parse, no CSR
/// rebuild, no copy.  Loading is one mmap plus O(n) validation; the
/// real cost moves to page faults, which the optional prefault pass
/// spreads across threads.
///
/// Layout (little-endian, all section offsets 64-byte aligned):
///
///   [0x00] u64  magic "PBGRAPH1"
///   [0x08] u32  version (= 1)
///   [0x0c] u32  flags   (bit 0: compressed sections present)
///   [0x10] u32  n
///   [0x14] u32  reserved (0)
///   [0x18] u64  m
///   [0x20] section table: 7 x { u64 offset, u64 bytes, u64 checksum }
///            [0] edges    m     x Edge  {u32 u, u32 v}
///            [1] offsets  n + 1 x u32   CSR row offsets (offsets[n] == 2m)
///            [2] targets  2m    x u32   neighbour per arc
///            [3] eids     2m    x u32   edge id per arc
///            [4] cindex   n + 1 x u64   compressed row byte index
///            [5] cdata    var   x u8    Rice-coded rows (compressed_csr.hpp)
///            [6] reserved (all zero)
///   [0xc8] u64  header checksum (bytes [0x00, 0xc8))
///   ...    zero pad to 0x100, then the sections
///
/// CSR rows in the file are *canonical*: sorted by (neighbour, edge
/// id).  That makes the one eids section serve both backends — the
/// compressed rows decode in exactly this order (adjacency order is
/// unspecified by contract, so canonicalization is invisible to the
/// algorithms).
///
/// The loader treats the file as untrusted, exactly like
/// io::read_edge_list treats text: magic/version/header-checksum,
/// hostile n/m (ids must fit the 32-bit space, 2m must fit an eid),
/// section bounds vs. the real file size, and offsets monotonicity are
/// all rejected with a named error *before any allocation*.  Section
/// checksums, per-element range checks (edges/targets < n, eids < m),
/// and a full decode of every compressed row against the targets
/// section are O(data) and opt-in via MapOptions::verify — the
/// converter always writes checksums, so paranoid callers can demand
/// end-to-end integrity, including that the compressed backend decodes
/// to exactly the same adjacency the plain backend reads.  (Even
/// without verify, CompressedCsr::decode_row bounds every read by the
/// row byte index and clamps neighbours to [0, n), so hostile row
/// bytes can corrupt results but never memory.)

namespace parbcc::io {

inline constexpr std::uint64_t kPbgMagic = 0x3148504152474250ull;  // "PBGRAPH1"
inline constexpr std::uint32_t kPbgVersion = 1;
inline constexpr std::size_t kPbgHeaderBytes = 256;
inline constexpr std::uint32_t kPbgFlagCompressed = 1u << 0;

struct PbgWriteOptions {
  /// Also emit the cindex/cdata sections (the compressed backend's
  /// mmap path needs them; costs the encode pass and ~0.45x of the
  /// targets section in extra file bytes).
  bool include_compressed = true;
};

/// Convert `g` to a .pbg file at `path`: builds the CSR (parallel
/// bucket scatter), canonicalizes the rows, optionally Rice-encodes
/// them, checksums every section, and writes atomically (temp file +
/// rename).  Throws std::runtime_error on I/O failure.
void write_pbg(const std::string& path, Executor& ex, const EdgeList& g,
               const PbgWriteOptions& opt = {});

struct MapOptions {
  /// Touch every mapped page up front.  With `executor` set the touch
  /// loop is a parallel_for, so the kernel's fault-in work is spread
  /// across cores instead of serializing on the first traversal.
  bool prefault = false;
  Executor* executor = nullptr;
  /// Deep integrity pass: recompute section checksums, range-check
  /// every element, and decode every compressed row against the
  /// targets section (O(file bytes), faults everything in).
  bool verify = false;
  /// Receives io_map / io_prefault spans and io_mapped_bytes /
  /// io_prefault_bytes counters.  Orchestrator-only, like the solver
  /// drivers' traces.
  Trace* trace = nullptr;
};

/// A .pbg file mapped into memory, exposing the graph views the
/// solver stack consumes: an EdgeList whose EdgeStore borrows the
/// edges section, a Csr adopting the offsets/targets/eids sections,
/// and (when the file carries one) a CompressedCsr over cindex/cdata.
/// All views point into the mapping — the MappedGraph must outlive
/// every solve and every cache entry built on it (BccContext::adopt
/// takes ownership for exactly that reason).  Move-only; unmaps on
/// destruction.
class MappedGraph {
 public:
  /// Map and validate `path`.  Throws std::runtime_error naming the
  /// defect on any malformed input (see file comment for the taxonomy).
  static MappedGraph map(const std::string& path, const MapOptions& opt = {});

  MappedGraph(MappedGraph&& o) noexcept { *this = std::move(o); }
  MappedGraph& operator=(MappedGraph&& o) noexcept;
  MappedGraph(const MappedGraph&) = delete;
  MappedGraph& operator=(const MappedGraph&) = delete;
  ~MappedGraph();

  const EdgeList& graph() const { return graph_; }
  const Csr& csr() const { return csr_; }
  bool has_compressed() const { return has_compressed_; }
  /// A fresh adopted view over the file's compressed sections
  /// (precondition: has_compressed()).  Cheap — spans only.
  CompressedCsr compressed() const {
    return CompressedCsr::adopt(graph_.n, graph_.m(), csr_.offsets(),
                                cindex_, cdata_, csr_.edge_ids());
  }
  std::size_t file_bytes() const { return length_; }

 private:
  MappedGraph() = default;

  void* base_ = nullptr;
  std::size_t length_ = 0;
  EdgeList graph_;
  Csr csr_;
  bool has_compressed_ = false;
  std::span<const std::uint64_t> cindex_;
  std::span<const std::uint8_t> cdata_;
};

/// Mixing checksum over a byte range (8-byte stride + splitmix finale)
/// — the integrity primitive of both the writer and the verifier.
/// Not cryptographic; it exists to catch truncation and bit rot.
std::uint64_t pbg_checksum(const void* data, std::size_t bytes);

}  // namespace parbcc::io
