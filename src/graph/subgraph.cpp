#include "graph/subgraph.hpp"

namespace parbcc {

Subgraph extract_edges(const EdgeList& g, std::span<const eid> edges) {
  Subgraph out;
  std::vector<vid> compact(g.n, kNoVertex);
  out.edge_of.reserve(edges.size());
  out.graph.edges.reserve(edges.size());
  const auto map = [&](vid v) {
    if (compact[v] == kNoVertex) {
      compact[v] = static_cast<vid>(out.vertex_of.size());
      out.vertex_of.push_back(v);
    }
    return compact[v];
  };
  for (const eid e : edges) {
    const vid u = map(g.edges[e].u);
    const vid v = map(g.edges[e].v);
    out.graph.edges.push_back({u, v});
    out.edge_of.push_back(e);
  }
  out.graph.n = static_cast<vid>(out.vertex_of.size());
  return out;
}

Subgraph extract_label(const EdgeList& g, std::span<const vid> labels,
                       vid label) {
  std::vector<eid> selected;
  for (eid e = 0; e < g.m(); ++e) {
    if (labels[e] == label) selected.push_back(e);
  }
  return extract_edges(g, selected);
}

std::vector<eid> degrees(const EdgeList& g) {
  std::vector<eid> deg(g.n, 0);
  for (const Edge& e : g.edges) {
    ++deg[e.u];
    ++deg[e.v];
  }
  return deg;
}

}  // namespace parbcc
