#include "graph/io_binary.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "util/uninit.hpp"
#include "util/workspace.hpp"

namespace parbcc::io {

namespace {

static_assert(sizeof(Edge) == 8 && alignof(Edge) == 4,
              "the edges section assumes Edge is two packed u32s");
static_assert(sizeof(eid) == 4 && sizeof(vid) == 4,
              "the .pbg layout is specified for 32-bit ids");

enum Section : std::size_t {
  kSecEdges = 0,
  kSecOffsets = 1,
  kSecTargets = 2,
  kSecEids = 3,
  kSecCindex = 4,
  kSecCdata = 5,
  kSecReserved = 6,
  kSecCount = 7,
};

constexpr std::size_t kOffMagic = 0x00;
constexpr std::size_t kOffVersion = 0x08;
constexpr std::size_t kOffFlags = 0x0c;
constexpr std::size_t kOffN = 0x10;
constexpr std::size_t kOffM = 0x18;
constexpr std::size_t kOffSections = 0x20;
constexpr std::size_t kOffHeaderChecksum =
    kOffSections + kSecCount * 24;  // 0xc8
static_assert(kOffHeaderChecksum + 8 <= kPbgHeaderBytes);

/// 2m arcs must fit an eid, and n must stay clear of the kNoVertex
/// sentinel — the same 32-bit-id-space rules io::read_edge_list
/// enforces on text input.
constexpr std::uint64_t kMaxEdges = 0x7fffffffull;
constexpr std::uint64_t kMaxVertices = 0xfffffffeull;

struct SectionDesc {
  std::uint64_t offset = 0;
  std::uint64_t bytes = 0;
  std::uint64_t checksum = 0;
};

template <typename T>
void store(std::uint8_t* base, std::size_t off, T value) {
  std::memcpy(base + off, &value, sizeof(T));
}

template <typename T>
T load(const std::uint8_t* base, std::size_t off) {
  T value;
  std::memcpy(&value, base + off, sizeof(T));
  return value;
}

[[noreturn]] void fail(const std::string& path, const std::string& what) {
  throw std::runtime_error("pbg: " + path + ": " + what);
}

constexpr std::uint64_t align64(std::uint64_t x) { return (x + 63) & ~63ull; }

/// Canonical per-row order: (neighbour, edge id) ascending, the order
/// the compressed rows decode in.  Sorting both halves through one
/// packed u64 keeps the nbr/eid pairing intact.
void canonicalize_rows(Executor& ex, const Csr& csr, uvector<vid>& nbrs_out,
                       uvector<eid>& eids_out) {
  const vid n = csr.num_vertices();
  const std::span<const eid> offsets = csr.offsets();
  const std::size_t num_arcs = offsets.empty() ? 0 : offsets[n];
  uvector<std::uint64_t> packed(num_arcs);
  nbrs_out.resize(num_arcs);
  eids_out.resize(num_arcs);
  ex.parallel_for(n, [&](std::size_t v) {
    const eid lo = offsets[v];
    const eid deg = offsets[v + 1] - lo;
    const auto nbrs = csr.neighbors(static_cast<vid>(v));
    const auto eids = csr.incident_edges(static_cast<vid>(v));
    for (eid j = 0; j < deg; ++j) {
      packed[lo + j] =
          (static_cast<std::uint64_t>(nbrs[j]) << 32) | eids[j];
    }
    std::sort(packed.begin() + lo, packed.begin() + lo + deg);
    for (eid j = 0; j < deg; ++j) {
      nbrs_out[lo + j] = static_cast<vid>(packed[lo + j] >> 32);
      eids_out[lo + j] = static_cast<eid>(packed[lo + j]);
    }
  });
}

/// Closes fd / unmaps on scope exit unless released.
struct MapGuard {
  int fd = -1;
  void* base = nullptr;
  std::size_t length = 0;
  ~MapGuard() {
    if (base != nullptr) ::munmap(base, length);
    if (fd >= 0) ::close(fd);
  }
  void release_mapping() { base = nullptr; }
};

}  // namespace

std::uint64_t pbg_checksum(const void* data, std::size_t bytes) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::uint64_t h = 0x9e3779b97f4a7c15ull ^ bytes;
  std::size_t i = 0;
  for (; i + 8 <= bytes; i += 8) {
    std::uint64_t x;
    std::memcpy(&x, p + i, 8);
    x *= 0xbf58476d1ce4e5b9ull;
    x ^= x >> 31;
    h = (h ^ x) * 0x94d049bb133111ebull;
  }
  if (i < bytes) {
    std::uint64_t tail = 0;
    std::memcpy(&tail, p + i, bytes - i);
    tail *= 0xbf58476d1ce4e5b9ull;
    tail ^= tail >> 31;
    h = (h ^ tail) * 0x94d049bb133111ebull;
  }
  h ^= h >> 29;
  h *= 0xbf58476d1ce4e5b9ull;
  h ^= h >> 32;
  return h;
}

void write_pbg(const std::string& path, Executor& ex, const EdgeList& g,
               const PbgWriteOptions& opt) {
  if (!g.validate()) {
    fail(path, "edge list invalid (out-of-range endpoint or self-loop)");
  }
  if (g.n > kMaxVertices) fail(path, "vertex count exceeds the 32-bit id space");
  if (g.m() > kMaxEdges) fail(path, "edge count exceeds 2^31 - 1");

  Workspace ws;
  const Csr built = Csr::build(ex, ws, g);
  uvector<vid> nbrs;
  uvector<eid> eids;
  canonicalize_rows(ex, built, nbrs, eids);
  const Csr canonical =
      Csr::adopt(g.n, g.m(), built.offsets(), {nbrs.data(), nbrs.size()},
                 {eids.data(), eids.size()});
  CompressedCsr compressed;
  if (opt.include_compressed) {
    compressed = CompressedCsr::build(ex, canonical);
  }

  std::array<std::pair<const void*, std::uint64_t>, kSecCount> payload{};
  payload[kSecEdges] = {g.edges.data(), g.edges.size() * sizeof(Edge)};
  payload[kSecOffsets] = {built.offsets().data(),
                          built.offsets().size() * sizeof(eid)};
  payload[kSecTargets] = {nbrs.data(), nbrs.size() * sizeof(vid)};
  payload[kSecEids] = {eids.data(), eids.size() * sizeof(eid)};
  if (opt.include_compressed) {
    payload[kSecCindex] = {compressed.row_index().data(),
                           compressed.row_index().size() * sizeof(std::uint64_t)};
    payload[kSecCdata] = {compressed.row_data().data(),
                          compressed.row_data().size()};
  }

  std::array<SectionDesc, kSecCount> sections{};
  std::uint64_t cursor = kPbgHeaderBytes;
  for (std::size_t s = 0; s < kSecCount; ++s) {
    const auto [ptr, bytes] = payload[s];
    if (ptr == nullptr && bytes == 0 && s != kSecOffsets) {
      // Absent section (compressed pair when not requested, reserved):
      // all-zero descriptor.
      continue;
    }
    sections[s].offset = cursor;
    sections[s].bytes = bytes;
    sections[s].checksum = pbg_checksum(ptr, bytes);
    cursor = align64(cursor + bytes);
  }

  std::array<std::uint8_t, kPbgHeaderBytes> header{};
  store<std::uint64_t>(header.data(), kOffMagic, kPbgMagic);
  store<std::uint32_t>(header.data(), kOffVersion, kPbgVersion);
  store<std::uint32_t>(header.data(), kOffFlags,
                       opt.include_compressed ? kPbgFlagCompressed : 0);
  store<std::uint32_t>(header.data(), kOffN, g.n);
  store<std::uint64_t>(header.data(), kOffM, g.m());
  for (std::size_t s = 0; s < kSecCount; ++s) {
    store<std::uint64_t>(header.data(), kOffSections + s * 24,
                         sections[s].offset);
    store<std::uint64_t>(header.data(), kOffSections + s * 24 + 8,
                         sections[s].bytes);
    store<std::uint64_t>(header.data(), kOffSections + s * 24 + 16,
                         sections[s].checksum);
  }
  store<std::uint64_t>(header.data(), kOffHeaderChecksum,
                       pbg_checksum(header.data(), kOffHeaderChecksum));

  // Atomic publish: write a sibling temp file, rename over the target.
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) fail(tmp, std::strerror(errno));
  const auto put = [&](const void* p, std::size_t bytes) {
    if (bytes != 0 && std::fwrite(p, 1, bytes, f) != bytes) {
      std::fclose(f);
      std::remove(tmp.c_str());
      fail(tmp, "short write");
    }
  };
  static constexpr std::uint8_t zeros[64] = {};
  put(header.data(), header.size());
  std::uint64_t written = kPbgHeaderBytes;
  for (std::size_t s = 0; s < kSecCount; ++s) {
    if (sections[s].offset == 0) continue;
    put(zeros, sections[s].offset - written);
    put(payload[s].first, sections[s].bytes);
    written = sections[s].offset + sections[s].bytes;
  }
  if (std::fclose(f) != 0) {
    std::remove(tmp.c_str());
    fail(tmp, "close failed");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    fail(path, "rename failed");
  }
}

MappedGraph& MappedGraph::operator=(MappedGraph&& o) noexcept {
  if (this != &o) {
    if (base_ != nullptr) ::munmap(base_, length_);
    base_ = o.base_;
    length_ = o.length_;
    graph_ = std::move(o.graph_);
    csr_ = std::move(o.csr_);
    has_compressed_ = o.has_compressed_;
    cindex_ = o.cindex_;
    cdata_ = o.cdata_;
    o.base_ = nullptr;
    o.length_ = 0;
    o.has_compressed_ = false;
    o.cindex_ = {};
    o.cdata_ = {};
  }
  return *this;
}

MappedGraph::~MappedGraph() {
  if (base_ != nullptr) ::munmap(base_, length_);
}

MappedGraph MappedGraph::map(const std::string& path, const MapOptions& opt) {
  Trace* tr = opt.trace;
  if (tr != nullptr) tr->begin("io_map");
  // Close the span on every exit, including the throwing ones — the
  // bench traces failed loads too.
  struct SpanGuard {
    Trace* tr;
    ~SpanGuard() {
      if (tr != nullptr) tr->end("io_map");
    }
  } span_guard{tr};

  MapGuard guard;
  guard.fd = ::open(path.c_str(), O_RDONLY);
  if (guard.fd < 0) fail(path, std::strerror(errno));
  struct stat st{};
  if (::fstat(guard.fd, &st) != 0) fail(path, std::strerror(errno));
  const auto file_bytes = static_cast<std::uint64_t>(st.st_size);
  if (file_bytes < kPbgHeaderBytes) {
    fail(path, "truncated: file smaller than the 256-byte header");
  }
  void* base = ::mmap(nullptr, file_bytes, PROT_READ, MAP_PRIVATE, guard.fd,
                      0);
  if (base == MAP_FAILED) fail(path, std::strerror(errno));
  guard.base = base;
  guard.length = file_bytes;
  const auto* bytes = static_cast<const std::uint8_t*>(base);

  // --- Header validation: everything below runs before any allocation
  // and before trusting a single section byte. ---
  if (load<std::uint64_t>(bytes, kOffMagic) != kPbgMagic) {
    fail(path, "bad magic (not a .pbg file)");
  }
  const auto version = load<std::uint32_t>(bytes, kOffVersion);
  if (version != kPbgVersion) {
    fail(path, "unsupported version " + std::to_string(version));
  }
  if (load<std::uint64_t>(bytes, kOffHeaderChecksum) !=
      pbg_checksum(bytes, kOffHeaderChecksum)) {
    fail(path, "header checksum mismatch");
  }
  const auto flags = load<std::uint32_t>(bytes, kOffFlags);
  const bool has_compressed = (flags & kPbgFlagCompressed) != 0;
  if ((flags & ~kPbgFlagCompressed) != 0) {
    fail(path, "unknown flag bits set");
  }
  const auto n64 = static_cast<std::uint64_t>(load<std::uint32_t>(bytes, kOffN));
  const auto m64 = load<std::uint64_t>(bytes, kOffM);
  if (n64 > kMaxVertices) {
    fail(path, "vertex count " + std::to_string(n64) +
                   " exceeds the 32-bit id space");
  }
  if (m64 > kMaxEdges) {
    fail(path, "edge count " + std::to_string(m64) + " exceeds 2^31 - 1");
  }
  const auto n = static_cast<vid>(n64);
  const auto m = static_cast<eid>(m64);
  const std::uint64_t num_arcs = 2 * m64;

  std::array<SectionDesc, kSecCount> sections{};
  for (std::size_t s = 0; s < kSecCount; ++s) {
    sections[s].offset = load<std::uint64_t>(bytes, kOffSections + s * 24);
    sections[s].bytes = load<std::uint64_t>(bytes, kOffSections + s * 24 + 8);
    sections[s].checksum =
        load<std::uint64_t>(bytes, kOffSections + s * 24 + 16);
  }
  const std::array<std::uint64_t, kSecCount> expected_bytes = {
      m64 * sizeof(Edge),         (n64 + 1) * sizeof(eid),
      num_arcs * sizeof(vid),     num_arcs * sizeof(eid),
      has_compressed ? (n64 + 1) * sizeof(std::uint64_t) : 0,
      has_compressed ? sections[kSecCdata].bytes : 0,  // variable length
      0};
  static constexpr const char* kSectionNames[kSecCount] = {
      "edges", "offsets", "targets", "eids", "cindex", "cdata", "reserved"};
  for (std::size_t s = 0; s < kSecCount; ++s) {
    const SectionDesc& sec = sections[s];
    const bool present =
        s == kSecReserved ? false
        : (s == kSecCindex || s == kSecCdata) ? has_compressed
                                              : true;
    if (!present) {
      if (sec.offset != 0 || sec.bytes != 0) {
        fail(path, std::string("unexpected ") + kSectionNames[s] +
                       " section present");
      }
      continue;
    }
    if (sec.bytes != expected_bytes[s]) {
      fail(path, std::string(kSectionNames[s]) + " section size " +
                     std::to_string(sec.bytes) + " does not match header n/m");
    }
    // A present zero-length section (empty graph) may sit at offset 0.
    if (sec.bytes == 0) continue;
    if (sec.offset < kPbgHeaderBytes || (sec.offset & 63) != 0) {
      fail(path, std::string(kSectionNames[s]) + " section misaligned");
    }
    if (sec.offset > file_bytes || sec.bytes > file_bytes - sec.offset) {
      fail(path, std::string(kSectionNames[s]) + " section extends past EOF");
    }
  }

  // --- Structural validation (O(n), still allocation-free): the
  // offsets/cindex shapes everything downstream indexes by. ---
  const auto* offsets =
      reinterpret_cast<const eid*>(bytes + sections[kSecOffsets].offset);
  if (offsets[0] != 0 || offsets[n] != num_arcs) {
    fail(path, "offsets section does not span 2m arcs");
  }
  for (vid v = 0; v < n; ++v) {
    if (offsets[v] > offsets[v + 1]) {
      fail(path, "offsets section is not monotone at vertex " +
                     std::to_string(v));
    }
  }
  const std::uint64_t* cindex = nullptr;
  if (has_compressed) {
    cindex = reinterpret_cast<const std::uint64_t*>(
        bytes + sections[kSecCindex].offset);
    if (cindex[0] != 0 || cindex[n] != sections[kSecCdata].bytes) {
      fail(path, "cindex section does not span the cdata section");
    }
    for (vid v = 0; v < n; ++v) {
      if (cindex[v] > cindex[v + 1]) {
        fail(path,
             "cindex section is not monotone at vertex " + std::to_string(v));
      }
      // A nonempty row is at least a k byte plus one varint byte.
      const eid deg = offsets[v + 1] - offsets[v];
      if (deg > 0 && cindex[v + 1] - cindex[v] < 2) {
        fail(path, "compressed row shorter than its minimum at vertex " +
                       std::to_string(v));
      }
    }
  }

  // --- Optional deep verification: section checksums, per-element
  // range checks, and a full decode of every compressed row (faults
  // the whole file in). ---
  if (opt.verify) {
    for (std::size_t s = 0; s < kSecCount; ++s) {
      if (sections[s].offset == 0 && sections[s].bytes == 0) continue;
      if (pbg_checksum(bytes + sections[s].offset, sections[s].bytes) !=
          sections[s].checksum) {
        fail(path,
             std::string(kSectionNames[s]) + " section checksum mismatch");
      }
    }
    const auto* edges =
        reinterpret_cast<const Edge*>(bytes + sections[kSecEdges].offset);
    for (eid e = 0; e < m; ++e) {
      if (edges[e].u >= n || edges[e].v >= n || edges[e].u == edges[e].v) {
        fail(path, "edge " + std::to_string(e) +
                       " has an out-of-range endpoint or is a self-loop");
      }
    }
    const auto* targets =
        reinterpret_cast<const vid*>(bytes + sections[kSecTargets].offset);
    const auto* arc_eids =
        reinterpret_cast<const eid*>(bytes + sections[kSecEids].offset);
    for (std::uint64_t a = 0; a < num_arcs; ++a) {
      if (targets[a] >= n) {
        fail(path, "targets section has an out-of-range vertex at arc " +
                       std::to_string(a));
      }
      if (arc_eids[a] >= m) {
        fail(path, "eids section has an out-of-range edge id at arc " +
                       std::to_string(a));
      }
    }
    // Decode every compressed row and require it to reproduce the
    // (already range-checked) targets row exactly.  Checksums alone
    // only prove the bytes match what the header claims — a hostile
    // file with self-consistent checksums could still encode
    // out-of-range or wrong neighbours, which the kCompressed sweeps
    // would then feed to parent[]/pre[] indexing.  This is what makes
    // verify=true end-to-end for the compressed backend.
    if (has_compressed) {
      const CompressedCsr rows = CompressedCsr::adopt(
          n, m, {offsets, static_cast<std::size_t>(n) + 1},
          {cindex, static_cast<std::size_t>(n) + 1},
          {bytes + sections[kSecCdata].offset,
           static_cast<std::size_t>(sections[kSecCdata].bytes)},
          {arc_eids, static_cast<std::size_t>(num_arcs)});
      for (vid v = 0; v < n; ++v) {
        const eid lo = offsets[v];
        const eid deg = offsets[v + 1] - lo;
        eid matched = 0;
        rows.decode_row(v, [&](vid w, eid) {
          if (w >= n || w != targets[lo + matched]) return true;  // stop
          ++matched;
          return false;
        });
        if (matched != deg) {
          fail(path, "compressed row does not decode to the targets row "
                     "at vertex " +
                         std::to_string(v));
        }
      }
    }
  }

  MappedGraph out;
  out.base_ = base;
  out.length_ = file_bytes;
  guard.release_mapping();
  out.graph_.n = n;
  out.graph_.edges = EdgeStore::borrow(
      {reinterpret_cast<const Edge*>(bytes + sections[kSecEdges].offset), m});
  out.csr_ = Csr::adopt(
      n, m, {offsets, static_cast<std::size_t>(n) + 1},
      {reinterpret_cast<const vid*>(bytes + sections[kSecTargets].offset),
       static_cast<std::size_t>(num_arcs)},
      {reinterpret_cast<const eid*>(bytes + sections[kSecEids].offset),
       static_cast<std::size_t>(num_arcs)});
  out.has_compressed_ = has_compressed;
  if (has_compressed) {
    out.cindex_ = {cindex, static_cast<std::size_t>(n) + 1};
    out.cdata_ = {bytes + sections[kSecCdata].offset,
                  static_cast<std::size_t>(sections[kSecCdata].bytes)};
  }
  if (tr != nullptr) {
    tr->counter("io_mapped_bytes", static_cast<double>(file_bytes));
  }

  if (opt.prefault) {
    if (tr != nullptr) tr->begin("io_prefault");
    constexpr std::size_t kPage = 4096;
    const std::size_t pages = (out.length_ + kPage - 1) / kPage;
    const auto* touch_base = static_cast<const std::uint8_t*>(out.base_);
    const auto touch = [&](std::size_t pg) {
      // Volatile read defeats dead-load elimination; one byte per page
      // is enough to fault it in.
      (void)*static_cast<const volatile std::uint8_t*>(touch_base +
                                                       pg * kPage);
    };
    if (opt.executor != nullptr) {
      opt.executor->parallel_for(0, pages, /*grain=*/64, touch);
    } else {
      for (std::size_t pg = 0; pg < pages; ++pg) touch(pg);
    }
    if (tr != nullptr) {
      tr->counter("io_prefault_bytes", static_cast<double>(out.length_));
      tr->end("io_prefault");
    }
  }
  return out;
}

}  // namespace parbcc::io
