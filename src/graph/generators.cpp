#include "graph/generators.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "util/rng.hpp"

namespace parbcc::gen {
namespace {

std::uint64_t pack(vid u, vid v) {
  if (u > v) std::swap(u, v);
  return (static_cast<std::uint64_t>(u) << 32) | v;
}

Edge unpack(std::uint64_t key) {
  return {static_cast<vid>(key >> 32), static_cast<vid>(key & 0xffffffffu)};
}

std::uint64_t max_edges(vid n) {
  return static_cast<std::uint64_t>(n) * (n - 1) / 2;
}

/// Draw `count` distinct undirected non-loop edges on [0, n), excluding
/// the (sorted) keys in `exclude`.  Uniform over all valid edge sets:
/// iid draws deduplicated are exchangeable, and a seeded shuffle picks
/// a uniform subset when overdrawn.
std::vector<std::uint64_t> distinct_edges(vid n, std::uint64_t count,
                                          std::uint64_t seed,
                                          const std::vector<std::uint64_t>& exclude) {
  Xoshiro256 rng(seed);
  std::vector<std::uint64_t> pool;
  pool.reserve(count + count / 8 + 16);
  std::uint64_t need = count;
  while (pool.size() < count) {
    const std::uint64_t batch = need + need / 8 + 16;
    std::vector<std::uint64_t> cand;
    cand.reserve(pool.size() + batch);
    cand = std::move(pool);
    for (std::uint64_t i = 0; i < batch; ++i) {
      vid u = static_cast<vid>(rng.below(n));
      vid v = static_cast<vid>(rng.below(n - 1));
      if (v >= u) ++v;  // uniform over v != u
      cand.push_back(pack(u, v));
    }
    std::sort(cand.begin(), cand.end());
    cand.erase(std::unique(cand.begin(), cand.end()), cand.end());
    if (!exclude.empty()) {
      std::vector<std::uint64_t> kept;
      kept.reserve(cand.size());
      std::set_difference(cand.begin(), cand.end(), exclude.begin(),
                          exclude.end(), std::back_inserter(kept));
      cand = std::move(kept);
    }
    pool = std::move(cand);
    need = count > pool.size() ? count - pool.size() : 0;
  }
  if (pool.size() > count) {
    std::shuffle(pool.begin(), pool.end(), rng);
    pool.resize(count);
  }
  return pool;
}

}  // namespace

EdgeList random_gnm(vid n, eid m, std::uint64_t seed) {
  if (m > max_edges(n)) {
    throw std::invalid_argument("random_gnm: m exceeds n*(n-1)/2");
  }
  EdgeList g;
  g.n = n;
  if (m == 0) return g;
  const auto keys = distinct_edges(n, m, splitmix64(seed), {});
  g.edges.reserve(m);
  for (const auto key : keys) g.edges.push_back(unpack(key));
  return g;
}

EdgeList random_connected_gnm(vid n, eid m, std::uint64_t seed) {
  if (n >= 1 && m + 1 < n) {
    throw std::invalid_argument("random_connected_gnm: m < n-1");
  }
  if (m > max_edges(n)) {
    throw std::invalid_argument("random_connected_gnm: m exceeds n*(n-1)/2");
  }
  EdgeList g;
  g.n = n;
  if (n <= 1) return g;

  // Uniform-attachment random tree backbone.
  Xoshiro256 rng(splitmix64(seed ^ 0x7265656eULL));
  std::vector<std::uint64_t> tree_keys;
  tree_keys.reserve(n - 1);
  g.edges.reserve(m);
  for (vid v = 1; v < n; ++v) {
    const vid parent = static_cast<vid>(rng.below(v));
    g.edges.push_back({parent, v});
    tree_keys.push_back(pack(parent, v));
  }
  std::sort(tree_keys.begin(), tree_keys.end());

  const std::uint64_t extra = m - (n - 1);
  if (extra > 0) {
    const auto keys =
        distinct_edges(n, extra, splitmix64(seed ^ 0x65646765ULL), tree_keys);
    for (const auto key : keys) g.edges.push_back(unpack(key));
  }
  return g;
}

EdgeList random_power_law(vid n, eid m, double alpha, std::uint64_t seed) {
  if (!(alpha > 1.0)) {
    throw std::invalid_argument("random_power_law: alpha must be > 1");
  }
  if (n >= 1 && m + 1 < n) {
    throw std::invalid_argument("random_power_law: m < n-1");
  }
  if (m > max_edges(n)) {
    throw std::invalid_argument("random_power_law: m exceeds n*(n-1)/2");
  }
  EdgeList g;
  g.n = n;
  if (n <= 1) return g;

  // Chung-Lu weights w_v = (v+1)^(-1/(alpha-1)): sampling endpoints in
  // proportion to w yields expected degrees proportional to w, whose
  // rank-size decay corresponds to a degree-tail exponent of alpha.
  // The running prefix sum doubles as the inverse-CDF table.
  const double gamma = 1.0 / (alpha - 1.0);
  std::vector<double> cum(n);
  double total = 0.0;
  for (vid v = 0; v < n; ++v) {
    total += std::pow(static_cast<double>(v) + 1.0, -gamma);
    cum[v] = total;
  }

  Xoshiro256 rng(splitmix64(seed ^ 0x706c6177ULL));
  const auto draw_unit = [&] {
    return static_cast<double>(rng() >> 11) * 0x1.0p-53;
  };
  // Inverse-CDF draw restricted to vertices [0, k).
  const auto draw_below = [&](vid k) {
    const double r = draw_unit() * cum[k - 1];
    const auto it = std::upper_bound(cum.begin(), cum.begin() + k, r);
    const auto idx = static_cast<vid>(it - cum.begin());
    return idx < k ? idx : static_cast<vid>(k - 1);
  };

  // Weighted-attachment spanning-tree backbone: vertex v picks a
  // parent among its predecessors in proportion to their weights, so
  // the connectivity guarantee itself feeds the hubs rather than
  // diluting them the way a uniform-attachment tree would.
  std::vector<std::uint64_t> tree_keys;
  tree_keys.reserve(n - 1);
  g.edges.reserve(m);
  for (vid v = 1; v < n; ++v) {
    const vid parent = draw_below(v);
    g.edges.push_back({parent, v});
    tree_keys.push_back(pack(parent, v));
  }
  std::sort(tree_keys.begin(), tree_keys.end());

  // Extra edges: both endpoints weighted draws, deduplicated against
  // themselves and the backbone.  Hub-hub collisions are common by
  // design, so refill rounds follow the same oversample/dedupe/trim
  // pattern as the uniform and R-MAT paths.
  const std::uint64_t extra = m - (n - 1);
  if (extra > 0) {
    std::vector<std::uint64_t> pool;
    pool.reserve(extra + extra / 8 + 16);
    while (pool.size() < extra) {
      const std::uint64_t need = extra - pool.size();
      std::vector<std::uint64_t> cand = std::move(pool);
      cand.reserve(cand.size() + need + need / 4 + 16);
      for (std::uint64_t i = 0; i < need + need / 4 + 16; ++i) {
        const vid u = draw_below(n);
        const vid v = draw_below(n);
        if (u == v) continue;
        cand.push_back(pack(u, v));
      }
      std::sort(cand.begin(), cand.end());
      cand.erase(std::unique(cand.begin(), cand.end()), cand.end());
      std::vector<std::uint64_t> kept;
      kept.reserve(cand.size());
      std::set_difference(cand.begin(), cand.end(), tree_keys.begin(),
                          tree_keys.end(), std::back_inserter(kept));
      pool = std::move(kept);
    }
    if (pool.size() > extra) {
      std::shuffle(pool.begin(), pool.end(), rng);
      pool.resize(extra);
    }
    for (const auto key : pool) g.edges.push_back(unpack(key));
  }
  return g;
}

EdgeList path(vid n) {
  EdgeList g;
  g.n = n;
  g.edges.reserve(n > 0 ? n - 1 : 0);
  for (vid v = 1; v < n; ++v) g.edges.push_back({static_cast<vid>(v - 1), v});
  return g;
}

EdgeList cycle(vid n) {
  if (n < 3) throw std::invalid_argument("cycle: n must be >= 3");
  EdgeList g = path(n);
  g.edges.push_back({static_cast<vid>(n - 1), 0});
  return g;
}

EdgeList complete(vid n) {
  EdgeList g;
  g.n = n;
  g.edges.reserve(max_edges(n));
  for (vid u = 0; u < n; ++u) {
    for (vid v = u + 1; v < n; ++v) g.edges.push_back({u, v});
  }
  return g;
}

EdgeList star(vid n) {
  EdgeList g;
  g.n = n;
  for (vid v = 1; v < n; ++v) g.edges.push_back({0, v});
  return g;
}

EdgeList binary_tree(vid n) {
  EdgeList g;
  g.n = n;
  for (vid v = 1; v < n; ++v) g.edges.push_back({(v - 1) / 2, v});
  return g;
}

EdgeList grid_torus(vid rows, vid cols) {
  if (rows < 3 || cols < 3) {
    throw std::invalid_argument("grid_torus: rows and cols must be >= 3");
  }
  EdgeList g;
  g.n = rows * cols;
  g.edges.reserve(2ull * rows * cols);
  const auto at = [cols](vid r, vid c) { return r * cols + c; };
  for (vid r = 0; r < rows; ++r) {
    for (vid c = 0; c < cols; ++c) {
      g.edges.push_back({at(r, c), at(r, (c + 1) % cols)});
      g.edges.push_back({at(r, c), at((r + 1) % rows, c)});
    }
  }
  return g;
}

EdgeList clique_chain(vid blocks, vid clique_size) {
  if (blocks < 1 || clique_size < 2) {
    throw std::invalid_argument("clique_chain: blocks >= 1, clique_size >= 2");
  }
  EdgeList g;
  // Consecutive cliques share one vertex.
  g.n = blocks * (clique_size - 1) + 1;
  for (vid b = 0; b < blocks; ++b) {
    const vid base = b * (clique_size - 1);
    for (vid i = 0; i < clique_size; ++i) {
      for (vid j = i + 1; j < clique_size; ++j) {
        g.edges.push_back({base + i, base + j});
      }
    }
  }
  return g;
}

EdgeList cycle_chain(vid blocks, vid cycle_len) {
  if (blocks < 1 || cycle_len < 3) {
    throw std::invalid_argument("cycle_chain: blocks >= 1, cycle_len >= 3");
  }
  EdgeList g;
  g.n = blocks * (cycle_len - 1) + 1;
  for (vid b = 0; b < blocks; ++b) {
    const vid base = b * (cycle_len - 1);
    for (vid i = 0; i + 1 < cycle_len; ++i) {
      g.edges.push_back({base + i, base + i + 1});
    }
    g.edges.push_back({base + cycle_len - 1, base});
  }
  return g;
}

EdgeList random_cactus(vid blocks, vid max_cycle_len, std::uint64_t seed) {
  if (blocks < 1 || max_cycle_len < 3) {
    throw std::invalid_argument(
        "random_cactus: blocks >= 1, max_cycle_len >= 3");
  }
  Xoshiro256 rng(splitmix64(seed ^ 0x63616374ULL));
  const auto draw_len = [&] {
    return static_cast<vid>(3 + rng.below(max_cycle_len - 2));
  };
  EdgeList g;
  vid next_vertex = 0;
  for (vid b = 0; b < blocks; ++b) {
    const vid len = draw_len();
    const vid anchor =
        (b == 0) ? next_vertex++ : static_cast<vid>(rng.below(next_vertex));
    vid prev = anchor;
    for (vid i = 1; i < len; ++i) {
      const vid v = next_vertex++;
      g.edges.push_back({prev, v});
      prev = v;
    }
    g.edges.push_back({prev, anchor});
  }
  g.n = next_vertex;
  return g;
}

EdgeList dense_retain(vid n, unsigned permille, std::uint64_t seed) {
  if (permille < 1 || permille > 1000) {
    throw std::invalid_argument("dense_retain: permille in [1, 1000]");
  }
  const std::uint64_t all = max_edges(n);
  std::vector<std::uint64_t> keys;
  keys.reserve(all);
  for (vid u = 0; u < n; ++u) {
    for (vid v = u + 1; v < n; ++v) keys.push_back(pack(u, v));
  }
  Xoshiro256 rng(splitmix64(seed ^ 0x64656e73ULL));
  std::shuffle(keys.begin(), keys.end(), rng);
  const std::uint64_t keep = all * permille / 1000;
  keys.resize(keep);

  EdgeList g;
  g.n = n;
  g.edges.reserve(keep);
  for (const auto key : keys) g.edges.push_back(unpack(key));
  return g;
}

EdgeList rmat(unsigned scale, eid edge_factor, std::uint64_t seed, double a,
              double b, double c) {
  if (scale < 1 || scale > 31) {
    throw std::invalid_argument("rmat: scale in [1, 31]");
  }
  if (a + b + c >= 1.0 || a <= 0 || b <= 0 || c <= 0) {
    throw std::invalid_argument("rmat: need a, b, c > 0 and a + b + c < 1");
  }
  const vid n = vid{1} << scale;
  const std::uint64_t target = static_cast<std::uint64_t>(edge_factor) * n;
  Xoshiro256 rng(splitmix64(seed ^ 0x726d6174ULL));
  const auto draw_unit = [&] {
    return static_cast<double>(rng() >> 11) * 0x1.0p-53;
  };

  std::vector<std::uint64_t> keys;
  keys.reserve(target + target / 8);
  // Oversample, deduplicate, and trim; R-MAT resamples collide often on
  // the dense quadrant, so a couple of refill rounds may be needed.
  while (keys.size() < target) {
    const std::uint64_t want = target - keys.size();
    for (std::uint64_t i = 0; i < want + want / 4 + 16; ++i) {
      vid u = 0, v = 0;
      for (unsigned bit = 0; bit < scale; ++bit) {
        const double r = draw_unit();
        u <<= 1;
        v <<= 1;
        if (r < a) {
          // top-left: nothing set
        } else if (r < a + b) {
          v |= 1;
        } else if (r < a + b + c) {
          u |= 1;
        } else {
          u |= 1;
          v |= 1;
        }
      }
      if (u == v) continue;
      keys.push_back(pack(u, v));
    }
    std::sort(keys.begin(), keys.end());
    keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
    if (keys.size() >= max_edges(n)) break;  // graph is saturated
  }
  if (keys.size() > target) {
    std::shuffle(keys.begin(), keys.end(), rng);
    keys.resize(target);
  }

  EdgeList g;
  g.n = n;
  g.edges.reserve(keys.size());
  for (const auto key : keys) g.edges.push_back(unpack(key));
  return g;
}

EdgeList wheel(vid n) {
  if (n < 4) throw std::invalid_argument("wheel: n must be >= 4");
  EdgeList g;
  g.n = n;
  for (vid v = 1; v < n; ++v) {
    g.edges.push_back({0, v});
    g.edges.push_back({v, v + 1 == n ? vid{1} : v + 1});
  }
  return g;
}

EdgeList complete_bipartite(vid a, vid b) {
  if (a < 1 || b < 1) {
    throw std::invalid_argument("complete_bipartite: a, b >= 1");
  }
  EdgeList g;
  g.n = a + b;
  g.edges.reserve(static_cast<std::size_t>(a) * b);
  for (vid u = 0; u < a; ++u) {
    for (vid v = 0; v < b; ++v) g.edges.push_back({u, a + v});
  }
  return g;
}

EdgeList barbell(vid k, vid path_len) {
  if (k < 3 || path_len < 1) {
    throw std::invalid_argument("barbell: k >= 3, path_len >= 1");
  }
  EdgeList g;
  // Vertices: [0, k) left clique, [k, k + path_len - 1) path interior,
  // [k + path_len - 1, 2k + path_len - 1) right clique.
  g.n = 2 * k + path_len - 1;
  const vid right = k + path_len - 1;
  for (vid i = 0; i < k; ++i) {
    for (vid j = i + 1; j < k; ++j) {
      g.edges.push_back({i, j});
      g.edges.push_back({right + i, right + j});
    }
  }
  // Path from left-clique vertex k-1 to right-clique vertex `right`.
  vid prev = k - 1;
  for (vid s = 0; s < path_len; ++s) {
    const vid next = (s + 1 == path_len) ? right : k + s;
    g.edges.push_back({prev, next});
    prev = next;
  }
  return g;
}

}  // namespace parbcc::gen
