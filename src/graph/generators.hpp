#pragma once

#include <cstdint>

#include "graph/edge_list.hpp"

/// \file generators.hpp
/// Deterministic workload generators.
///
/// `random_connected_gnm` reproduces the paper's instances: "We create
/// a random graph of n vertices and m edges by randomly adding m unique
/// edges to the vertex set" (§5), plus a uniformly attached random tree
/// backbone so the instance is connected, as the paper's inputs are.
/// The structured families back tests (known BCC structure) and the
/// pathological/dense experiments (chain, Woo-Sahni dense graphs).
/// Every generator is a pure function of its arguments.

namespace parbcc::gen {

/// m distinct random edges (no self-loops) on n vertices; may be
/// disconnected.  Requires m <= n*(n-1)/2.
EdgeList random_gnm(vid n, eid m, std::uint64_t seed);

/// Connected: a uniform-attachment random spanning tree plus
/// m - (n-1) distinct random extra edges.  Requires m >= n-1.
EdgeList random_connected_gnm(vid n, eid m, std::uint64_t seed);

/// Connected Chung-Lu power-law graph: endpoint v is drawn with
/// probability proportional to (v+1)^(-1/(alpha-1)), so the degree
/// tail follows exponent `alpha` and the low-id vertices become hubs.
/// Connectivity comes from a weighted-attachment spanning-tree
/// backbone (each vertex picks a weighted parent among its
/// predecessors); the remaining m - (n-1) edges are distinct weighted
/// draws.  Requires alpha > 1 and n-1 <= m <= n*(n-1)/2.  The skew is
/// the scheduler stress case: a static edge partition puts most of
/// the arc mass on whichever thread owns the hubs.
EdgeList random_power_law(vid n, eid m, double alpha, std::uint64_t seed);

/// Path 0-1-...-n-1 (every edge is a bridge; n-1 BCCs).
EdgeList path(vid n);

/// Simple cycle on n >= 3 vertices (one BCC, no articulation points).
EdgeList cycle(vid n);

/// Complete graph K_n (one BCC for n >= 3).
EdgeList complete(vid n);

/// Star: center 0 joined to 1..n-1 (n-1 bridges; center articulates).
EdgeList star(vid n);

/// Complete binary tree on n vertices, heap-indexed (all bridges).
EdgeList binary_tree(vid n);

/// rows x cols torus grid (biconnected for rows, cols >= 3).
EdgeList grid_torus(vid rows, vid cols);

/// `blocks` cliques of `clique_size` >= 2 vertices chained end to end,
/// consecutive cliques sharing one cut vertex.
/// BCCs = blocks; articulation points = blocks - 1 shared vertices.
EdgeList clique_chain(vid blocks, vid clique_size);

/// `blocks` simple cycles of length `cycle_len` >= 3 chained end to end
/// through shared cut vertices (a cactus path).
EdgeList cycle_chain(vid blocks, vid cycle_len);

/// Random cactus/block tree: `blocks` cycles of random length in
/// [3, max_cycle_len] attached at random existing vertices.
/// Exactly `blocks` BCCs; used as a known-answer fixture.
EdgeList random_cactus(vid blocks, vid max_cycle_len, std::uint64_t seed);

/// Woo-Sahni style dense instance: retain `permille`/1000 of K_n's
/// edges, chosen uniformly (permille in [1, 1000]).
EdgeList dense_retain(vid n, unsigned permille, std::uint64_t seed);

/// R-MAT recursive-matrix graph on 2^scale vertices with roughly
/// edge_factor * 2^scale distinct edges (skewed degrees, may be
/// disconnected) — the scale-free family used by later SMP graph
/// studies from the same group.  Quadrant probabilities default to the
/// common (0.45, 0.15, 0.15, 0.25).
EdgeList rmat(unsigned scale, eid edge_factor, std::uint64_t seed,
              double a = 0.45, double b = 0.15, double c = 0.15);

/// Wheel: hub 0 joined to an (n-1)-cycle; biconnected for n >= 4.
EdgeList wheel(vid n);

/// Complete bipartite K_{a,b}; biconnected for a, b >= 2.
EdgeList complete_bipartite(vid a, vid b);

/// Barbell: two k-cliques joined by a path of `path_len` edges
/// (2 clique blocks + path_len bridge blocks for k >= 3,
/// path_len >= 1).
EdgeList barbell(vid k, vid path_len);

}  // namespace parbcc::gen
