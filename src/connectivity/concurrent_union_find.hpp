#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <utility>

#include "util/thread_pool.hpp"
#include "util/types.hpp"

/// \file concurrent_union_find.hpp
/// Lock-free disjoint-set forest over a caller-owned parent array —
/// the hooking structure behind the fused auxiliary-graph pipeline
/// (core/aux_graph.hpp, AuxMode::kFused).
///
/// Scheme: union-by-minimum-id with CAS-arbitrated root hooking and
/// path-halving finds (the "simple" concurrent algorithm of
/// Jayanti-Tarjan, specialised to deterministic min-id priority
/// instead of random priorities).  Invariants:
///
///  - parent[v] <= v at all times: a hook installs parent[b] = a with
///    a < b, and halving replaces a parent with a (smaller or equal)
///    grandparent, so the parent digraph is acyclic by construction.
///  - Hooks CAS on a *root* slot (expected parent[b] == b), so a root
///    is captured by exactly one winner; losers re-run find over the
///    merged forest and retry.
///  - Halving CASes parent[v] from the exact parent it read to that
///    parent's parent — both ancestors of v — so a concurrent lower
///    hook is never overwritten with a stale pointer.
///
/// Because every hook strictly decreases the root id, the quiescent
/// fixpoint is schedule-independent: each tree's root is the minimum
/// id of its component, matching connected_components_sv's label
/// contract exactly.  Callers separate the hook phase from the read
/// phase with an Executor barrier (any parallel_for boundary); within
/// a phase all accesses go through relaxed atomic_ref, so the
/// structure is safe under ThreadSanitizer at full SPMD width.
///
/// Telemetry: unite/find take an accumulator for parent-chain steps
/// traversed, and unite returns whether it performed the hook — the
/// fused pipeline sums these per thread into the `aux_hooks` /
/// `aux_find_depth` trace counters.

namespace parbcc {

class ConcurrentUnionFind {
 public:
  /// Wrap a parent array; call init (or fill parent[v] = v) before use.
  explicit ConcurrentUnionFind(std::span<vid> parent) : parent_(parent) {}

  vid size() const { return static_cast<vid>(parent_.size()); }

  /// parent[v] = v for all v, in parallel.
  static void init(Executor& ex, std::span<vid> parent) {
    ex.parallel_for(parent.size(),
                    [&](std::size_t v) { parent[v] = static_cast<vid>(v); });
  }

  /// Current root of v's tree, halving the path as it walks.  `steps`
  /// accumulates the number of parent links traversed.
  vid find(vid v, std::uint64_t& steps) const {
    for (;;) {
      const vid p = load(v);
      if (p == v) return v;
      const vid gp = load(p);
      ++steps;
      if (gp == p) return p;
      // Halve: re-point v at its grandparent.  CAS from the exact
      // parent read keeps the invariant that we only ever install
      // ancestors; on failure someone else already lowered it.
      vid expected = p;
      std::atomic_ref(parent_[v]).compare_exchange_weak(
          expected, gp, std::memory_order_relaxed);
      v = gp;
      ++steps;
    }
  }

  /// Merge the sets of a and b; returns true iff this call performed
  /// the hook (false when they were already connected).  The winning
  /// hook always points the larger root at the smaller one.
  bool unite(vid a, vid b, std::uint64_t& steps) const {
    for (;;) {
      a = find(a, steps);
      b = find(b, steps);
      if (a == b) return false;
      if (a > b) std::swap(a, b);
      vid expected = b;
      if (std::atomic_ref(parent_[b]).compare_exchange_strong(
              expected, a, std::memory_order_relaxed)) {
        return true;
      }
      // Lost the race for root b: rerun find over the merged forest.
    }
  }

  /// Quiescent read: parent[v] = find(v) for all v, leaving a star
  /// forest whose roots are the component minima.  Only valid after
  /// all unite calls have been barrier-separated from this call.
  void flatten(Executor& ex) const {
    ex.parallel_for(parent_.size(), [&](std::size_t v) {
      std::uint64_t steps = 0;
      const vid r = find(static_cast<vid>(v), steps);
      std::atomic_ref(parent_[v]).store(r, std::memory_order_relaxed);
    });
  }

 private:
  vid load(vid v) const {
    return std::atomic_ref(parent_[v]).load(std::memory_order_relaxed);
  }

  std::span<vid> parent_;
};

}  // namespace parbcc
