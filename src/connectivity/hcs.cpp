#include "connectivity/hcs.hpp"

#include <atomic>

#include "util/padded.hpp"

namespace parbcc {
namespace {

void atomic_min(std::atomic_ref<vid> slot, vid v) {
  vid cur = slot.load(std::memory_order_relaxed);
  while (v < cur &&
         !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

void connected_components_hcs(Executor& ex, Workspace& ws, vid n,
                              std::span<const Edge> edges,
                              std::span<vid> label) {
  Workspace::Frame frame(ws);
  std::span<vid> best = ws.alloc<vid>(n);  // per-root minimum seen this round
  ex.parallel_for(n, [&](std::size_t v) {
    label[v] = static_cast<vid>(v);
  });

  const std::size_t m = edges.size();
  const int p = ex.threads();
  std::span<Padded<bool>> thread_changed =
      ws.alloc<Padded<bool>>(static_cast<std::size_t>(p));
  std::span<Padded<bool>> jumped =
      ws.alloc<Padded<bool>>(static_cast<std::size_t>(p));

  for (;;) {
    ex.parallel_for(n, [&](std::size_t v) {
      best[v] = label[v];
    });

    // Gather: every edge offers each endpoint's label to the other
    // endpoint's current root.
    ex.parallel_for(m, [&](std::size_t i) {
      const vid du =
          std::atomic_ref(label[edges[i].u]).load(std::memory_order_relaxed);
      const vid dv =
          std::atomic_ref(label[edges[i].v]).load(std::memory_order_relaxed);
      if (du == dv) return;
      if (dv < du) {
        atomic_min(std::atomic_ref(best[du]), dv);
      } else {
        atomic_min(std::atomic_ref(best[dv]), du);
      }
    });

    // Graft: roots adopt the minimum offered label.  Only genuine
    // roots move, and only downward, so the pointer digraph remains
    // acyclic.
    for (auto& c : thread_changed) c.value = false;
    ex.parallel_blocks(n, [&](int tid, std::size_t begin, std::size_t end) {
      bool changed = false;
      for (std::size_t v = begin; v < end; ++v) {
        const vid b = best[v];
        if (b < label[v] && label[v] == static_cast<vid>(v)) {
          label[v] = b;
          changed = true;
        }
      }
      if (changed) thread_changed[static_cast<std::size_t>(tid)].value = true;
    });

    // Shortcut to fixpoint (full pointer jumping, HCS style).
    for (;;) {
      bool any_jump = false;
      for (auto& j : jumped) j.value = false;
      ex.parallel_blocks(n, [&](int tid, std::size_t begin, std::size_t end) {
        bool changed = false;
        for (std::size_t v = begin; v < end; ++v) {
          const vid l =
              std::atomic_ref(label[v]).load(std::memory_order_relaxed);
          const vid ll =
              std::atomic_ref(label[l]).load(std::memory_order_relaxed);
          if (ll != l) {
            std::atomic_ref(label[v]).store(ll, std::memory_order_relaxed);
            changed = true;
          }
        }
        if (changed) jumped[static_cast<std::size_t>(tid)].value = true;
      });
      for (const auto& j : jumped) any_jump = any_jump || j.value;
      if (!any_jump) break;
    }

    bool any = false;
    for (const auto& c : thread_changed) any = any || c.value;
    if (!any) break;
  }
}

std::vector<vid> connected_components_hcs(Executor& ex, Workspace& ws, vid n,
                                          std::span<const Edge> edges) {
  std::vector<vid> out(n);
  connected_components_hcs(ex, ws, n, edges, out);
  return out;
}

std::vector<vid> connected_components_hcs(Executor& ex, vid n,
                                          std::span<const Edge> edges) {
  Workspace ws;
  return connected_components_hcs(ex, ws, n, edges);
}

}  // namespace parbcc
