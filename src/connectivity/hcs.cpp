#include "connectivity/hcs.hpp"

#include <atomic>

#include "util/padded.hpp"

namespace parbcc {
namespace {

void atomic_min(std::atomic<vid>& slot, vid v) {
  vid cur = slot.load(std::memory_order_relaxed);
  while (v < cur &&
         !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

std::vector<vid> connected_components_hcs(Executor& ex, vid n,
                                          std::span<const Edge> edges) {
  std::vector<std::atomic<vid>> label(n);
  std::vector<std::atomic<vid>> best(n);  // per-root minimum seen this round
  ex.parallel_for(n, [&](std::size_t v) {
    label[v].store(static_cast<vid>(v), std::memory_order_relaxed);
  });

  const std::size_t m = edges.size();
  const int p = ex.threads();
  std::vector<Padded<bool>> thread_changed(static_cast<std::size_t>(p));

  for (;;) {
    ex.parallel_for(n, [&](std::size_t v) {
      best[v].store(label[v].load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
    });

    // Gather: every edge offers each endpoint's label to the other
    // endpoint's current root.
    ex.parallel_for(m, [&](std::size_t i) {
      const vid du = label[edges[i].u].load(std::memory_order_relaxed);
      const vid dv = label[edges[i].v].load(std::memory_order_relaxed);
      if (du == dv) return;
      if (dv < du) {
        atomic_min(best[du], dv);
      } else {
        atomic_min(best[dv], du);
      }
    });

    // Graft: roots adopt the minimum offered label.  Only genuine
    // roots move, and only downward, so the pointer digraph remains
    // acyclic.
    for (auto& c : thread_changed) c.value = false;
    ex.parallel_blocks(n, [&](int tid, std::size_t begin, std::size_t end) {
      bool changed = false;
      for (std::size_t v = begin; v < end; ++v) {
        const vid b = best[v].load(std::memory_order_relaxed);
        if (b < label[v].load(std::memory_order_relaxed) &&
            label[v].load(std::memory_order_relaxed) == static_cast<vid>(v)) {
          label[v].store(b, std::memory_order_relaxed);
          changed = true;
        }
      }
      if (changed) thread_changed[static_cast<std::size_t>(tid)].value = true;
    });

    // Shortcut to fixpoint (full pointer jumping, HCS style).
    for (;;) {
      bool any_jump = false;
      std::vector<Padded<bool>> jumped(static_cast<std::size_t>(p));
      ex.parallel_blocks(n, [&](int tid, std::size_t begin, std::size_t end) {
        bool changed = false;
        for (std::size_t v = begin; v < end; ++v) {
          const vid l = label[v].load(std::memory_order_relaxed);
          const vid ll = label[l].load(std::memory_order_relaxed);
          if (ll != l) {
            label[v].store(ll, std::memory_order_relaxed);
            changed = true;
          }
        }
        if (changed) jumped[static_cast<std::size_t>(tid)].value = true;
      });
      for (const auto& j : jumped) any_jump = any_jump || j.value;
      if (!any_jump) break;
    }

    bool any = false;
    for (const auto& c : thread_changed) any = any || c.value;
    if (!any) break;
  }

  std::vector<vid> out(n);
  ex.parallel_for(n, [&](std::size_t v) {
    out[v] = label[v].load(std::memory_order_relaxed);
  });
  return out;
}

}  // namespace parbcc
