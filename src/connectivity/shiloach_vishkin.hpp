#pragma once

#include <span>
#include <vector>

#include "graph/edge_list.hpp"
#include "util/thread_pool.hpp"
#include "util/types.hpp"
#include "util/workspace.hpp"

/// \file shiloach_vishkin.hpp
/// Parallel connected components by graft-and-shortcut, the SMP
/// adaptation of Shiloach-Vishkin the paper uses twice: as TV step 6
/// (components of the auxiliary graph) and — extended with hook-edge
/// recording in spanning/sv_tree.hpp — as TV step 1.
///
/// Two hooking/shortcut schemes share the entry point:
///
///  - kClassic: each pass grafts current roots onto strictly smaller
///    neighbouring labels (CAS-arbitrated, so a root moves exactly
///    once) and then pointer-jumps every label one step.  O(log n)
///    passes in practice.
///  - kFastSV (Zhang, Azad & Hu 2020): stride-2 hooking — labels are
///    lowered toward the *grandparent* label of the opposite endpoint
///    with priority min-writes (stochastic hooking on label[label[u]],
///    aggressive hooking on label[u] itself) — followed by a full
///    pointer-jumping loop that flattens every label chain to a star
///    before the next pass.  Both changes shrink the label chains a
///    pass has to fight, cutting the pass count 2-4x on long-chain
///    structures (torus, meshes) and by 1-2 passes on random graphs.
///
/// Both schemes converge to the same fixpoint — label[v] is the
/// minimum vertex id of v's component — so they are interchangeable
/// everywhere; kAuto resolves to kFastSV.
///
/// The labels are updated in place through std::atomic_ref, so the
/// output array doubles as the working array — no separate atomic
/// vector and no copy-out pass; the only scratch is the O(p)
/// convergence flags, drawn from the Workspace.

namespace parbcc {

/// Hooking/shortcut scheme for the SV engines (components and
/// spanning forest).  kAuto resolves to kFastSV; kClassic exists for
/// the ablation bench and tests.
enum class SvMode {
  kAuto,
  kClassic,
  kFastSV,
};

/// Convergence telemetry for one SV run.
struct SvStats {
  /// Graft+shortcut passes until the labels stopped changing
  /// (including the final no-change pass that detects convergence).
  vid rounds = 0;
};

/// Component labels for vertices [0, n) written into `label` (size n):
/// label[v] is the smallest vertex id of v's component, with
/// label[root] == root.
void connected_components_sv(Executor& ex, Workspace& ws, vid n,
                             std::span<const Edge> edges,
                             std::span<vid> label,
                             SvMode mode = SvMode::kAuto,
                             SvStats* stats = nullptr);

std::vector<vid> connected_components_sv(Executor& ex, Workspace& ws, vid n,
                                         std::span<const Edge> edges,
                                         SvMode mode = SvMode::kAuto,
                                         SvStats* stats = nullptr);

std::vector<vid> connected_components_sv(Executor& ex, vid n,
                                         std::span<const Edge> edges,
                                         SvMode mode = SvMode::kAuto,
                                         SvStats* stats = nullptr);

inline std::vector<vid> connected_components_sv(Executor& ex,
                                                const EdgeList& g) {
  return connected_components_sv(ex, g.n, g.edges);
}

/// Sequential union-find components with the same root-label contract.
std::vector<vid> connected_components_seq(vid n, std::span<const Edge> edges);

/// Number of distinct components in a root-labeled array
/// (label[v] == v exactly for roots).
vid count_components(std::span<const vid> labels);

/// Remap arbitrary labels to contiguous [0, k); returns k.
/// Order: by first appearance of each label, so results are
/// deterministic given a deterministic labeling.
vid normalize_labels(std::vector<vid>& labels);
vid normalize_labels(std::span<vid> labels);

}  // namespace parbcc
