#include "connectivity/shiloach_vishkin.hpp"

#include <algorithm>
#include <atomic>

#include "connectivity/union_find.hpp"
#include "util/padded.hpp"

namespace parbcc {

void connected_components_sv(Executor& ex, Workspace& ws, vid n,
                             std::span<const Edge> edges,
                             std::span<vid> label) {
  ex.parallel_for(n, [&](std::size_t v) {
    label[v] = static_cast<vid>(v);
  });

  const std::size_t m = edges.size();
  const int p = ex.threads();
  Workspace::Frame frame(ws);
  std::span<Padded<bool>> thread_changed =
      ws.alloc<Padded<bool>>(static_cast<std::size_t>(p));

  for (;;) {
    for (auto& c : thread_changed) c.value = false;

    // Graft: hook current roots onto strictly smaller neighbour labels.
    // The CAS guarantees each root is hooked at most once, and the
    // strict decrease makes the label digraph acyclic.
    ex.parallel_blocks(m, [&](int tid, std::size_t begin, std::size_t end) {
      bool changed = false;
      for (std::size_t i = begin; i < end; ++i) {
        const vid u = edges[i].u;
        const vid v = edges[i].v;
        vid du = std::atomic_ref(label[u]).load(std::memory_order_relaxed);
        vid dv = std::atomic_ref(label[v]).load(std::memory_order_relaxed);
        if (du == dv) continue;
        if (du < dv) std::swap(du, dv);
        // Hook root du onto the smaller label dv.
        vid expected = du;
        if (std::atomic_ref(label[du])
                .compare_exchange_strong(expected, dv,
                                         std::memory_order_relaxed)) {
          changed = true;
        }
      }
      if (changed) thread_changed[static_cast<std::size_t>(tid)].value = true;
    });

    // Shortcut: one pointer jump for every vertex.
    ex.parallel_blocks(n, [&](int tid, std::size_t begin, std::size_t end) {
      bool changed = false;
      for (std::size_t v = begin; v < end; ++v) {
        const vid l = std::atomic_ref(label[v]).load(std::memory_order_relaxed);
        const vid ll = std::atomic_ref(label[l]).load(std::memory_order_relaxed);
        if (ll != l) {
          std::atomic_ref(label[v]).store(ll, std::memory_order_relaxed);
          changed = true;
        }
      }
      if (changed) thread_changed[static_cast<std::size_t>(tid)].value = true;
    });

    bool any = false;
    for (const auto& c : thread_changed) any = any || c.value;
    if (!any) break;
  }
}

std::vector<vid> connected_components_sv(Executor& ex, Workspace& ws, vid n,
                                         std::span<const Edge> edges) {
  std::vector<vid> out(n);
  connected_components_sv(ex, ws, n, edges, out);
  return out;
}

std::vector<vid> connected_components_sv(Executor& ex, vid n,
                                         std::span<const Edge> edges) {
  Workspace ws;
  return connected_components_sv(ex, ws, n, edges);
}

std::vector<vid> connected_components_seq(vid n, std::span<const Edge> edges) {
  UnionFind uf(n);
  for (const Edge& e : edges) uf.unite(e.u, e.v);
  // Convert to the same contract as the parallel version: the label is
  // the minimum vertex id of the component.
  std::vector<vid> min_of_root(n, kNoVertex);
  for (vid v = 0; v < n; ++v) {
    const vid r = uf.find(v);
    if (min_of_root[r] == kNoVertex) min_of_root[r] = v;  // v ascending
  }
  std::vector<vid> out(n);
  for (vid v = 0; v < n; ++v) out[v] = min_of_root[uf.find(v)];
  return out;
}

vid count_components(std::span<const vid> labels) {
  vid count = 0;
  for (std::size_t v = 0; v < labels.size(); ++v) {
    if (labels[v] == v) ++count;
  }
  return count;
}

vid normalize_labels(std::span<vid> labels) {
  vid domain = 0;
  for (const vid l : labels) domain = std::max(domain, l + 1);
  std::vector<vid> remap(domain, kNoVertex);
  vid next = 0;
  for (auto& l : labels) {
    if (remap[l] == kNoVertex) remap[l] = next++;
    l = remap[l];
  }
  return next;
}

vid normalize_labels(std::vector<vid>& labels) {
  return normalize_labels(std::span<vid>(labels));
}

}  // namespace parbcc
