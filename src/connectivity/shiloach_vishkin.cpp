#include "connectivity/shiloach_vishkin.hpp"

#include <algorithm>
#include <atomic>

#include "connectivity/union_find.hpp"
#include "util/padded.hpp"

namespace parbcc {
namespace {

/// Priority min-write: lower `slot` to `val` if val is smaller.
/// Returns true iff this call lowered it.  The CAS loop makes
/// concurrent writers converge on the minimum instead of the last one
/// winning.
inline bool write_min(vid& slot, vid val) {
  std::atomic_ref ref(slot);
  vid cur = ref.load(std::memory_order_relaxed);
  while (val < cur) {
    if (ref.compare_exchange_weak(cur, val, std::memory_order_relaxed)) {
      return true;
    }
  }
  return false;
}

/// Pointer-jump every label until a full pass changes nothing, leaving
/// label[label[v]] == label[v] for all v — so the next hooking pass
/// reads roots, not chain interiors.  Returns true iff any jump fired.
bool shortcut_to_fixpoint(Executor& ex, std::span<vid> label, vid n,
                          std::span<Padded<bool>> thread_changed) {
  bool any = false;
  for (;;) {
    for (auto& c : thread_changed) c.value = false;
    ex.parallel_blocks(n, [&](int tid, std::size_t begin, std::size_t end) {
      bool changed = false;
      for (std::size_t v = begin; v < end; ++v) {
        const vid l = std::atomic_ref(label[v]).load(std::memory_order_relaxed);
        const vid ll = std::atomic_ref(label[l]).load(std::memory_order_relaxed);
        if (ll != l) {
          std::atomic_ref(label[v]).store(ll, std::memory_order_relaxed);
          changed = true;
        }
      }
      if (changed) thread_changed[static_cast<std::size_t>(tid)].value = true;
    });
    bool pass = false;
    for (const auto& c : thread_changed) pass = pass || c.value;
    if (!pass) break;
    any = true;
  }
  return any;
}

void components_classic(Executor& ex, vid n, std::span<const Edge> edges,
                        std::span<vid> label,
                        std::span<Padded<bool>> thread_changed,
                        SvStats* stats) {
  const std::size_t m = edges.size();
  for (;;) {
    if (stats != nullptr) ++stats->rounds;
    for (auto& c : thread_changed) c.value = false;

    // Graft: hook current roots onto strictly smaller neighbour labels.
    // The CAS guarantees each root is hooked at most once, and the
    // strict decrease makes the label digraph acyclic.
    ex.parallel_blocks(m, [&](int tid, std::size_t begin, std::size_t end) {
      bool changed = false;
      for (std::size_t i = begin; i < end; ++i) {
        const vid u = edges[i].u;
        const vid v = edges[i].v;
        vid du = std::atomic_ref(label[u]).load(std::memory_order_relaxed);
        vid dv = std::atomic_ref(label[v]).load(std::memory_order_relaxed);
        if (du == dv) continue;
        if (du < dv) std::swap(du, dv);
        // Hook root du onto the smaller label dv.
        vid expected = du;
        if (std::atomic_ref(label[du])
                .compare_exchange_strong(expected, dv,
                                         std::memory_order_relaxed)) {
          changed = true;
        }
      }
      if (changed) thread_changed[static_cast<std::size_t>(tid)].value = true;
    });

    // Shortcut: one pointer jump for every vertex.
    ex.parallel_blocks(n, [&](int tid, std::size_t begin, std::size_t end) {
      bool changed = false;
      for (std::size_t v = begin; v < end; ++v) {
        const vid l = std::atomic_ref(label[v]).load(std::memory_order_relaxed);
        const vid ll = std::atomic_ref(label[l]).load(std::memory_order_relaxed);
        if (ll != l) {
          std::atomic_ref(label[v]).store(ll, std::memory_order_relaxed);
          changed = true;
        }
      }
      if (changed) thread_changed[static_cast<std::size_t>(tid)].value = true;
    });

    bool any = false;
    for (const auto& c : thread_changed) any = any || c.value;
    if (!any) break;
  }
}

void components_fastsv(Executor& ex, vid n, std::span<const Edge> edges,
                       std::span<vid> label,
                       std::span<Padded<bool>> thread_changed,
                       SvStats* stats) {
  const std::size_t m = edges.size();
  for (;;) {
    if (stats != nullptr) ++stats->rounds;
    for (auto& c : thread_changed) c.value = false;

    // Hooking pass, stride-2: every write target and every written
    // value is a *grandparent* label, which the preceding full
    // shortcut has flattened to a root.  Stochastic hooking lowers
    // the opposite root (label[du] <- gdv); aggressive hooking lowers
    // the endpoint itself (label[u] <- gdv) so chains never regrow.
    // Labels only decrease and only to ids inside the same component,
    // so the fixpoint is the component minimum — identical to the
    // classic scheme's contract.
    ex.parallel_blocks(m, [&](int tid, std::size_t begin, std::size_t end) {
      bool changed = false;
      for (std::size_t i = begin; i < end; ++i) {
        const vid u = edges[i].u;
        const vid v = edges[i].v;
        const vid du = std::atomic_ref(label[u]).load(std::memory_order_relaxed);
        const vid dv = std::atomic_ref(label[v]).load(std::memory_order_relaxed);
        const vid gdu =
            std::atomic_ref(label[du]).load(std::memory_order_relaxed);
        const vid gdv =
            std::atomic_ref(label[dv]).load(std::memory_order_relaxed);
        if (gdu == gdv) continue;
        bool hooked = false;
        if (gdv < gdu) {
          hooked |= write_min(label[du], gdv);
          hooked |= write_min(label[u], gdv);
        } else {
          hooked |= write_min(label[dv], gdu);
          hooked |= write_min(label[v], gdu);
        }
        if (hooked) changed = true;
      }
      if (changed) thread_changed[static_cast<std::size_t>(tid)].value = true;
    });
    bool any = false;
    for (const auto& c : thread_changed) any = any || c.value;

    // Full pointer jumping: flatten all chains before the next pass.
    any = shortcut_to_fixpoint(ex, label, n, thread_changed) || any;
    if (!any) break;
  }
}

}  // namespace

void connected_components_sv(Executor& ex, Workspace& ws, vid n,
                             std::span<const Edge> edges, std::span<vid> label,
                             SvMode mode, SvStats* stats) {
  ex.parallel_for(n, [&](std::size_t v) {
    label[v] = static_cast<vid>(v);
  });

  const int p = ex.threads();
  Workspace::Frame frame(ws);
  std::span<Padded<bool>> thread_changed =
      ws.alloc<Padded<bool>>(static_cast<std::size_t>(p));

  if (mode == SvMode::kClassic) {
    components_classic(ex, n, edges, label, thread_changed, stats);
  } else {
    components_fastsv(ex, n, edges, label, thread_changed, stats);
  }
}

std::vector<vid> connected_components_sv(Executor& ex, Workspace& ws, vid n,
                                         std::span<const Edge> edges,
                                         SvMode mode, SvStats* stats) {
  std::vector<vid> out(n);
  connected_components_sv(ex, ws, n, edges, out, mode, stats);
  return out;
}

std::vector<vid> connected_components_sv(Executor& ex, vid n,
                                         std::span<const Edge> edges,
                                         SvMode mode, SvStats* stats) {
  Workspace ws;
  return connected_components_sv(ex, ws, n, edges, mode, stats);
}

std::vector<vid> connected_components_seq(vid n, std::span<const Edge> edges) {
  UnionFind uf(n);
  for (const Edge& e : edges) uf.unite(e.u, e.v);
  // Convert to the same contract as the parallel version: the label is
  // the minimum vertex id of the component.
  std::vector<vid> min_of_root(n, kNoVertex);
  for (vid v = 0; v < n; ++v) {
    const vid r = uf.find(v);
    if (min_of_root[r] == kNoVertex) min_of_root[r] = v;  // v ascending
  }
  std::vector<vid> out(n);
  for (vid v = 0; v < n; ++v) out[v] = min_of_root[uf.find(v)];
  return out;
}

vid count_components(std::span<const vid> labels) {
  vid count = 0;
  for (std::size_t v = 0; v < labels.size(); ++v) {
    if (labels[v] == v) ++count;
  }
  return count;
}

vid normalize_labels(std::span<vid> labels) {
  vid domain = 0;
  for (const vid l : labels) domain = std::max(domain, l + 1);
  std::vector<vid> remap(domain, kNoVertex);
  vid next = 0;
  for (auto& l : labels) {
    if (remap[l] == kNoVertex) remap[l] = next++;
    l = remap[l];
  }
  return next;
}

vid normalize_labels(std::vector<vid>& labels) {
  return normalize_labels(std::span<vid>(labels));
}

}  // namespace parbcc
