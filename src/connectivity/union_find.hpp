#pragma once

#include <cstdint>
#include <vector>

#include "util/types.hpp"

/// \file union_find.hpp
/// Sequential disjoint-set forest (union by rank, path halving).
///
/// Used as the correctness oracle for the parallel Shiloach-Vishkin
/// implementations and as the cycle filter when assembling spanning
/// forests from hook edges.

namespace parbcc {

class UnionFind {
 public:
  explicit UnionFind(vid n) : parent_(n), rank_(n, 0) {
    for (vid v = 0; v < n; ++v) parent_[v] = v;
  }

  vid find(vid v) {
    while (parent_[v] != v) {
      parent_[v] = parent_[parent_[v]];  // path halving
      v = parent_[v];
    }
    return v;
  }

  /// Union the sets of a and b; returns true iff they were distinct.
  bool unite(vid a, vid b) {
    vid ra = find(a);
    vid rb = find(b);
    if (ra == rb) return false;
    if (rank_[ra] < rank_[rb]) std::swap(ra, rb);
    parent_[rb] = ra;
    if (rank_[ra] == rank_[rb]) ++rank_[ra];
    return true;
  }

  bool same(vid a, vid b) { return find(a) == find(b); }

  vid size() const { return static_cast<vid>(parent_.size()); }

 private:
  std::vector<vid> parent_;
  std::vector<std::uint8_t> rank_;
};

}  // namespace parbcc
