#pragma once

#include <span>
#include <vector>

#include "graph/edge_list.hpp"
#include "util/thread_pool.hpp"
#include "util/types.hpp"
#include "util/workspace.hpp"

/// \file hcs.hpp
/// Connected components in the style of Hirschberg, Chandra and
/// Sarwate (CACM 1979) — the second classic graft-and-shortcut
/// algorithm the paper cites ([10]) alongside Shiloach-Vishkin as a
/// source of rooted spanning trees.
///
/// Differences from the SV implementation in shiloach_vishkin.hpp:
/// HCS grafts every root onto the *minimum* label seen across all its
/// tree's edges (gathered with atomic min into a per-root slot), then
/// shortcuts to a full fixpoint each round, giving O(log n) rounds
/// deterministically at the cost of heavier rounds.  Both produce the
/// same labels (component minima), so they are interchangeable and
/// directly comparable in the primitive benchmarks.
///
/// The per-root minimum slots and convergence flags are Workspace
/// scratch; labels are CASed in place through std::atomic_ref.

namespace parbcc {

/// Component labels written into `label` (size n): label[v] == minimum
/// vertex id of v's component.
void connected_components_hcs(Executor& ex, Workspace& ws, vid n,
                              std::span<const Edge> edges,
                              std::span<vid> label);

std::vector<vid> connected_components_hcs(Executor& ex, Workspace& ws, vid n,
                                          std::span<const Edge> edges);

std::vector<vid> connected_components_hcs(Executor& ex, vid n,
                                          std::span<const Edge> edges);

inline std::vector<vid> connected_components_hcs(Executor& ex,
                                                 const EdgeList& g) {
  return connected_components_hcs(ex, g.n, g.edges);
}

}  // namespace parbcc
