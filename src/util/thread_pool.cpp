#include "util/thread_pool.hpp"

#include <time.h>

#include <cassert>
#include <chrono>
#include <stdexcept>

namespace parbcc {

thread_local Executor* Executor::tls_executor_ = nullptr;
thread_local int Executor::tls_slot_ = -1;

Executor::Executor(int threads) : threads_(threads), barrier_(threads) {
  if (threads < 1) {
    throw std::invalid_argument("Executor: thread count must be >= 1");
  }
  state_.reserve(static_cast<std::size_t>(threads));
  for (int tid = 0; tid < threads; ++tid) {
    state_.push_back(std::make_unique<WorkerState>());
  }
  workers_.reserve(static_cast<std::size_t>(threads - 1));
  for (int tid = 1; tid < threads; ++tid) {
    workers_.emplace_back([this, tid] { worker_loop(tid); });
  }
}

Executor::~Executor() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::uint64_t Executor::thread_cpu_ns() {
#if defined(__linux__)
  timespec ts;
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1000000000ull +
         static_cast<std::uint64_t>(ts.tv_nsec);
#else
  return static_cast<std::uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
#endif
}

SchedulerStats Executor::scheduler_stats() const {
  SchedulerStats s;
  bool any_busy = false;
  s.busy_ns.reserve(state_.size());
  for (const auto& w : state_) {
    s.steals += w->steals.load(std::memory_order_relaxed);
    s.splits += w->splits.load(std::memory_order_relaxed);
    s.tasks += w->tasks.load(std::memory_order_relaxed);
    const std::uint64_t busy = w->busy_ns.load(std::memory_order_relaxed);
    any_busy = any_busy || busy != 0;
    s.busy_ns.push_back(busy);
  }
  if (!any_busy) s.busy_ns.clear();
  return s;
}

void Executor::reset_scheduler_stats() {
  for (auto& w : state_) {
    w->steals.store(0, std::memory_order_relaxed);
    w->splits.store(0, std::memory_order_relaxed);
    w->tasks.store(0, std::memory_order_relaxed);
    w->busy_ns.store(0, std::memory_order_relaxed);
  }
}

void Executor::run(const std::function<void(int)>& f) {
  if (threads_ == 1) {
    f(0);
    return;
  }
  assert(!fj_active_.load(std::memory_order_relaxed) &&
         "Executor::run must not be called from inside a fork-join task");
  first_error_ = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    assert(job_ == nullptr && "Executor::run is not reentrant");
    job_ = &f;
    pending_.store(threads_ - 1, std::memory_order_relaxed);
    ++epoch_;
  }
  cv_.notify_all();

  // The caller participates as tid 0.
  try {
    f(0);
  } catch (...) {
    std::lock_guard<std::mutex> lock(error_mu_);
    if (!first_error_) first_error_ = std::current_exception();
  }

  std::unique_lock<std::mutex> lock(done_mu_);
  done_cv_.wait(lock,
                [this] { return pending_.load(std::memory_order_acquire) == 0; });
  lock.unlock();
  {
    std::lock_guard<std::mutex> jl(mu_);
    job_ = nullptr;
  }
  if (first_error_) std::rethrow_exception(first_error_);
}

void Executor::run_task_body(ForkTask* t, WorkerState& me) {
  try {
    t->run_task();
  } catch (...) {
    t->error = std::current_exception();
  }
  me.tasks.fetch_add(1, std::memory_order_relaxed);
  // Publishes the result (and the frame-may-die handshake) to the
  // joiner; after this store the task object must not be touched.
  t->done.store(true, std::memory_order_release);
}

bool Executor::try_steal_once(WorkerState& me) {
  const int p = threads_;
  const int self = tls_slot_;
  ForkTask* grabbed[WorkDeque::kMaxSteal];
  for (int k = 1; k <= p; ++k) {
    const int victim = (self + k) % p;
    if (victim == self) continue;
    const std::size_t got =
        state_[static_cast<std::size_t>(victim)]->deque.steal_half(
            grabbed, WorkDeque::kMaxSteal);
    if (got == 0) continue;
    me.steals.fetch_add(1, std::memory_order_relaxed);
    // Park the surplus on our own deque before running the first
    // (largest) task: earlier pushes sit closer to our top, so further
    // thieves relieve us of the bigger subranges first.  A full deque
    // degrades to running the surplus inline.
    for (std::size_t i = 1; i < got; ++i) {
      if (!me.deque.push(grabbed[i])) run_task_body(grabbed[i], me);
    }
    run_task_body(grabbed[0], me);
    return true;
  }
  return false;
}

void Executor::join_task(ForkTask* t, WorkerState& me) {
  int idle = 0;
  while (!t->done.load(std::memory_order_acquire)) {
    // Drain our own bottom first.  Under steal-half the deque may hold
    // surplus tasks a steal parked above the task being joined, so the
    // old pop==t LIFO identity no longer holds; everything above `t`
    // is ours to run, and popping `t` itself completes the join.
    // Nothing *below* `t` is ever reached: tasks from outer frames sit
    // deeper, and running `t` exits the loop before they surface.
    if (ForkTask* popped = me.deque.pop()) {
      run_task_body(popped, me);
      idle = 0;
      continue;
    }
    // Stolen: help with other work while the thief finishes it.
    if (try_steal_once(me)) {
      idle = 0;
      continue;
    }
    if (++idle >= 8) {
      // Nothing to steal: let the thief (possibly sharing this core)
      // run.  Thread CPU-time accounting ignores this wait either
      // way, but on an oversubscribed host yielding is what lets the
      // steal make progress at all.
      std::this_thread::yield();
      idle = 0;
    }
  }
  if (t->error) std::rethrow_exception(t->error);
}

void Executor::steal_loop(WorkerState& me) {
  int idle = 0;
  while (fj_active_.load(std::memory_order_acquire)) {
    if (try_steal_once(me)) {
      idle = 0;
      continue;
    }
    if (++idle >= 8) {
      std::this_thread::yield();
      idle = 0;
    }
  }
}

void Executor::worker_loop(int tid) {
  tls_executor_ = this;
  tls_slot_ = tid;
  WorkerState& me = *state_[static_cast<std::size_t>(tid)];
  std::uint64_t seen_epoch = 0;
  for (;;) {
    const std::function<void(int)>* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] {
        return stop_ || epoch_ != seen_epoch ||
               fj_active_.load(std::memory_order_relaxed);
      });
      if (stop_) return;
      if (epoch_ != seen_epoch) {
        seen_epoch = epoch_;
        job = job_;
      }
    }
    if (job) {
      try {
        (*job)(tid);
      } catch (...) {
        std::lock_guard<std::mutex> elock(error_mu_);
        if (!first_error_) first_error_ = std::current_exception();
      }
      if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        // Last worker out wakes the caller.  The lock pairs with the
        // caller's wait() so the notify cannot be lost.
        std::lock_guard<std::mutex> lock(done_mu_);
        done_cv_.notify_one();
      }
    } else {
      // Woken for a fork-join region: steal until it closes.
      steal_loop(me);
    }
  }
}

}  // namespace parbcc
