#include "util/thread_pool.hpp"

#include <cassert>
#include <stdexcept>

namespace parbcc {

Executor::Executor(int threads) : threads_(threads), barrier_(threads) {
  if (threads < 1) {
    throw std::invalid_argument("Executor: thread count must be >= 1");
  }
  workers_.reserve(static_cast<std::size_t>(threads - 1));
  for (int tid = 1; tid < threads; ++tid) {
    workers_.emplace_back([this, tid] { worker_loop(tid); });
  }
}

Executor::~Executor() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void Executor::run(const std::function<void(int)>& f) {
  if (threads_ == 1) {
    f(0);
    return;
  }
  first_error_ = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    assert(job_ == nullptr && "Executor::run is not reentrant");
    job_ = &f;
    pending_.store(threads_ - 1, std::memory_order_relaxed);
    ++epoch_;
  }
  cv_.notify_all();

  // The caller participates as tid 0.
  try {
    f(0);
  } catch (...) {
    std::lock_guard<std::mutex> lock(error_mu_);
    if (!first_error_) first_error_ = std::current_exception();
  }

  std::unique_lock<std::mutex> lock(done_mu_);
  done_cv_.wait(lock,
                [this] { return pending_.load(std::memory_order_acquire) == 0; });
  lock.unlock();
  {
    std::lock_guard<std::mutex> jl(mu_);
    job_ = nullptr;
  }
  if (first_error_) std::rethrow_exception(first_error_);
}

void Executor::worker_loop(int tid) {
  std::uint64_t seen_epoch = 0;
  for (;;) {
    const std::function<void(int)>* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] { return stop_ || epoch_ != seen_epoch; });
      if (stop_) return;
      seen_epoch = epoch_;
      job = job_;
    }
    try {
      (*job)(tid);
    } catch (...) {
      std::lock_guard<std::mutex> elock(error_mu_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      // Last worker out wakes the caller.  The lock pairs with the
      // caller's wait() so the notify cannot be lost.
      std::lock_guard<std::mutex> lock(done_mu_);
      done_cv_.notify_one();
    }
  }
}

}  // namespace parbcc
