#pragma once

#include <cstdint>

/// \file rng.hpp
/// Small deterministic PRNGs for workload generation.
///
/// Benchmarks and property tests must be reproducible across runs and
/// thread counts, so graph generators take explicit 64-bit seeds and
/// use these engines rather than std::random_device.  SplitMix64 seeds
/// and also serves as a cheap stateless hash; Xoshiro256** is the
/// workhorse stream generator.

namespace parbcc {

/// SplitMix64 step: also usable as an avalanche hash of `x`.
inline std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Xoshiro256** by Blackman & Vigna: fast, 256-bit state, passes BigCrush.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed) {
    // Expand the seed through SplitMix64 as the authors recommend.
    std::uint64_t sm = seed;
    for (auto& word : s_) {
      sm += 0x9e3779b97f4a7c15ULL;
      word = splitmix64(sm);
    }
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  result_type operator()() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform draw from [0, bound) without modulo bias (Lemire's method).
  std::uint64_t below(std::uint64_t bound) {
    // 128-bit multiply keeps the mapping unbiased enough for workload
    // generation (bias < 2^-64 per draw).
    const unsigned __int128 wide =
        static_cast<unsigned __int128>((*this)()) * bound;
    return static_cast<std::uint64_t>(wide >> 64);
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

}  // namespace parbcc
