#pragma once

#include <algorithm>
#include <cstddef>
#include <span>

#include "scan/scan.hpp"
#include "util/thread_pool.hpp"

/// \file concat.hpp
/// Parallel concatenation of per-thread buffers.
///
/// Frontier-style loops (BFS expansion, level sweeps, certificate
/// forests) let each thread collect discoveries into a private growing
/// buffer and then glue the buffers into one dense array.  Doing the
/// glue with a serial copy loop re-serializes the very step the
/// expansion parallelized: at a wide BFS level the concatenation moves
/// as many bytes as the expansion wrote.  Here the buffer sizes are
/// prefix-summed into disjoint destination offsets and every thread
/// scatters its own buffer — O(total/p) per thread, no overlap, no
/// atomics.

namespace parbcc {

/// Concatenate `ex.threads()` per-thread buffers into `dst` in tid
/// order.  `buf_of(tid)` returns a container with contiguous
/// `begin()/end()/size()` (e.g. std::vector).  `offset` is caller
/// scratch of at least threads()+1 elements, so round-based loops can
/// allocate it once; on return offset[t] is buffer t's start position.
/// Returns the total number of elements written.
template <class T, class BufOf>
std::size_t concat_thread_buffers(Executor& ex, BufOf&& buf_of,
                                  std::span<std::size_t> offset, T* dst) {
  const int p = ex.threads();
  if (p == 1) {
    const auto& buf = buf_of(0);
    std::copy(buf.begin(), buf.end(), dst);
    offset[0] = 0;
    return buf.size();
  }
  for (int t = 0; t < p; ++t) {
    offset[static_cast<std::size_t>(t)] = buf_of(t).size();
  }
  // p is tiny, so the scan runs on its serial fast path; the copies are
  // what matters and they run one-buffer-per-thread below.
  const std::size_t total = exclusive_scan(
      ex, offset.data(), offset.data(), static_cast<std::size_t>(p));
  ex.run([&](int tid) {
    const auto& buf = buf_of(tid);
    std::copy(buf.begin(), buf.end(),
              dst + offset[static_cast<std::size_t>(tid)]);
  });
  return total;
}

}  // namespace parbcc
