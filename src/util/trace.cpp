#include "util/trace.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>

#include "util/concat.hpp"
#include "util/thread_pool.hpp"

namespace parbcc {
namespace {

/// Rollup node: one (parent, name) pair of the span tree.  The tree is
/// tiny (a solve opens a few dozen distinct paths), so children are a
/// linear-scanned vector.
struct Node {
  int parent = -1;
  const char* name = nullptr;
  int depth = 0;
  std::uint64_t calls = 0;
  std::int64_t incl_ns = 0;   // measured wall time inside the span
  std::int64_t child_ns = 0;  // measured wall time of direct children
  double charge_s = 0;        // externally charged seconds
  std::vector<int> children;
};

int find_or_add_child(std::vector<Node>& nodes, std::vector<int>& roots,
                      int parent, const char* name) {
  for (const int c : parent < 0 ? roots : nodes[parent].children) {
    // Names are static literals, but different TUs may hold distinct
    // copies of the same spelling — compare by content.
    if (nodes[c].name == name ||
        std::string_view(nodes[c].name) == std::string_view(name)) {
      return c;
    }
  }
  Node node;
  node.parent = parent;
  node.name = name;
  node.depth = parent < 0 ? 0 : nodes[parent].depth + 1;
  nodes.push_back(std::move(node));
  const int id = static_cast<int>(nodes.size()) - 1;
  // Re-take the sibling list: the push_back may have reallocated nodes.
  (parent < 0 ? roots : nodes[parent].children).push_back(id);
  return id;
}

void append_phases(const std::vector<Node>& nodes, const std::vector<int>& ids,
                   const std::string& prefix, TraceReport& report) {
  for (const int id : ids) {
    const Node& node = nodes[id];
    TracePhase phase;
    phase.name = node.name;
    phase.path = prefix.empty() ? phase.name : prefix + "/" + phase.name;
    phase.depth = node.depth;
    phase.calls = node.calls;
    phase.inclusive_seconds = 1e-9 * static_cast<double>(node.incl_ns) +
                              node.charge_s;
    phase.exclusive_seconds =
        1e-9 * static_cast<double>(node.incl_ns - node.child_ns) +
        node.charge_s;
    phase.charged_seconds = node.charge_s;
    const std::string path = phase.path;
    report.phases.push_back(std::move(phase));
    append_phases(nodes, node.children, path, report);
  }
}

void add_counter(TraceReport& report, const char* name, double value) {
  for (TraceCounterTotal& c : report.counters) {
    if (c.name == name) {
      c.total += value;
      ++c.samples;
      return;
    }
  }
  report.counters.push_back({name, value, 1});
}

TraceReport roll_up(std::span<const TraceEvent> events) {
  TraceReport report;
  std::vector<Node> nodes;
  std::vector<int> roots;
  // Open-span stack: node id + begin timestamp.
  std::vector<std::pair<int, std::int64_t>> open;
  std::int64_t last_ts = 0;

  auto close_top = [&](std::int64_t ts) {
    const auto [id, begin_ts] = open.back();
    open.pop_back();
    const std::int64_t dt = ts > begin_ts ? ts - begin_ts : 0;
    nodes[id].calls += 1;
    nodes[id].incl_ns += dt;
    if (nodes[id].parent >= 0) nodes[nodes[id].parent].child_ns += dt;
  };

  for (const TraceEvent& e : events) {
    if (e.ts_ns > last_ts) last_ts = e.ts_ns;
    switch (e.kind) {
      case TraceEventKind::kBegin: {
        const int parent = open.empty() ? -1 : open.back().first;
        open.emplace_back(find_or_add_child(nodes, roots, parent, e.name),
                          e.ts_ns);
        break;
      }
      case TraceEventKind::kEnd:
        // A mismatched name means an exception unwound intermediate
        // spans in an order we did not see; closing the top span is the
        // best-effort recovery and keeps the books balanced.
        if (!open.empty()) close_top(e.ts_ns);
        break;
      case TraceEventKind::kCharge: {
        const int parent = open.empty() ? -1 : open.back().first;
        const int id = find_or_add_child(nodes, roots, parent, e.name);
        nodes[id].calls += 1;
        nodes[id].charge_s += e.value;
        break;
      }
      case TraceEventKind::kCounter:
        add_counter(report, e.name, e.value);
        break;
    }
  }
  // Spans still open at the end of the slice (e.g. a report taken
  // mid-solve) close at the last observed timestamp.
  while (!open.empty()) close_top(last_ts);

  append_phases(nodes, roots, std::string(), report);
  return report;
}

void append_json_string(std::string& out, std::string_view s) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void append_double(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6f", v);
  out += buf;
}

}  // namespace

const TracePhase* TraceReport::find_path(std::string_view path) const {
  for (const TracePhase& p : phases) {
    if (p.path == path) return &p;
  }
  return nullptr;
}

double TraceReport::inclusive_seconds(std::string_view name) const {
  double total = 0;
  for (const TracePhase& p : phases) {
    if (p.name == name) total += p.inclusive_seconds;
  }
  return total;
}

double TraceReport::counter_total(std::string_view name) const {
  for (const TraceCounterTotal& c : counters) {
    if (c.name == name) return c.total;
  }
  return 0;
}

Trace::Trace(int threads) : buffers_(threads < 1 ? 1 : threads) {}

void Trace::push(int tid, TraceEvent e) {
  if (tid < 0 || tid >= static_cast<int>(buffers_.size())) {
    assert(false && "Trace: tid outside the width given at construction");
    return;
  }
  e.tid = static_cast<std::uint16_t>(tid);
  buffers_[static_cast<std::size_t>(tid)].value.push_back(e);
}

void Trace::begin(const char* name) {
  if (!enabled_) return;
  push(0, {name, now_ns(), 0, TraceEventKind::kBegin, 0});
}

void Trace::end(const char* name) {
  if (!enabled_) return;
  push(0, {name, now_ns(), 0, TraceEventKind::kEnd, 0});
}

void Trace::charge(const char* name, double seconds) {
  if (!enabled_) return;
  push(0, {name, now_ns(), seconds, TraceEventKind::kCharge, 0});
}

void Trace::counter(const char* name, double value, int tid) {
  if (!enabled_) return;
  push(tid, {name, now_ns(), value, TraceEventKind::kCounter, 0});
}

Trace::Mark Trace::mark() const {
  Mark m;
  m.size.reserve(buffers_.size());
  for (const auto& buf : buffers_) m.size.push_back(buf.value.size());
  return m;
}

std::vector<TraceEvent> Trace::events_since(const Mark& mark) const {
  std::vector<TraceEvent> out;
  for (std::size_t t = 0; t < buffers_.size(); ++t) {
    const std::vector<TraceEvent>& buf = buffers_[t].value;
    const std::size_t from = t < mark.size.size() ? mark.size[t] : 0;
    out.insert(out.end(), buf.begin() + static_cast<std::ptrdiff_t>(
                              std::min(from, buf.size())),
               buf.end());
  }
  return out;
}

std::vector<TraceEvent> Trace::events() const {
  return events_since(Mark{});
}

std::vector<TraceEvent> Trace::drain(Executor& ex) {
  const int p = threads();
  std::size_t total = 0;
  for (const auto& buf : buffers_) total += buf.value.size();
  std::vector<TraceEvent> out(total);
  if (ex.threads() >= p) {
    static const std::vector<TraceEvent> kEmpty;
    std::vector<std::size_t> offset(
        static_cast<std::size_t>(ex.threads()) + 1);
    // The concatenation visits buffers in tid order, matching events().
    concat_thread_buffers(
        ex,
        [&](int t) -> const std::vector<TraceEvent>& {
          return t < p ? buffers_[static_cast<std::size_t>(t)].value : kEmpty;
        },
        std::span<std::size_t>(offset), out.data());
  } else {
    out = events();
  }
  reset();
  return out;
}

TraceReport Trace::report_since(const Mark& mark) const {
  return roll_up(events_since(mark));
}

TraceReport Trace::report() const { return roll_up(events()); }

void Trace::reset() {
  for (auto& buf : buffers_) buf.value.clear();
}

std::string chrome_trace_json(std::span<const TraceSegment> segments) {
  std::string out;
  out += "{\"traceEvents\": [";
  bool first = true;
  auto sep = [&] {
    if (!first) out += ",";
    first = false;
    out += "\n  ";
  };
  for (std::size_t s = 0; s < segments.size(); ++s) {
    const int pid = static_cast<int>(s) + 1;
    sep();
    out += "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": " +
           std::to_string(pid) + ", \"args\": {\"name\": ";
    append_json_string(out, segments[s].label);
    out += "}}";
    for (const TraceEvent& e : segments[s].events) {
      sep();
      out += "{\"name\": ";
      append_json_string(out, e.name);
      out += ", \"pid\": " + std::to_string(pid) +
             ", \"tid\": " + std::to_string(e.tid) + ", \"ts\": ";
      // Chrome timestamps are microseconds.
      append_double(out, 1e-3 * static_cast<double>(e.ts_ns));
      switch (e.kind) {
        case TraceEventKind::kBegin:
          out += ", \"ph\": \"B\"";
          break;
        case TraceEventKind::kEnd:
          out += ", \"ph\": \"E\"";
          break;
        case TraceEventKind::kCounter:
          out += ", \"ph\": \"C\", \"args\": {";
          append_json_string(out, e.name);
          out += ": ";
          append_double(out, e.value);
          out += "}";
          break;
        case TraceEventKind::kCharge:
          out += ", \"ph\": \"X\", \"dur\": ";
          append_double(out, 1e6 * e.value);
          out += ", \"args\": {\"charged\": true}";
          break;
      }
      out += "}";
    }
  }
  out += "\n],\n\"parbccReports\": [";
  for (std::size_t s = 0; s < segments.size(); ++s) {
    out += s == 0 ? "\n" : ",\n";
    out += "  {\"label\": ";
    append_json_string(out, segments[s].label);
    out += ", \"phases\": [";
    const TraceReport& report = segments[s].report;
    for (std::size_t i = 0; i < report.phases.size(); ++i) {
      const TracePhase& p = report.phases[i];
      out += i == 0 ? "\n" : ",\n";
      out += "    {\"path\": ";
      append_json_string(out, p.path);
      out += ", \"name\": ";
      append_json_string(out, p.name);
      out += ", \"depth\": " + std::to_string(p.depth) +
             ", \"calls\": " + std::to_string(p.calls) + ", \"inclusive\": ";
      append_double(out, p.inclusive_seconds);
      out += ", \"exclusive\": ";
      append_double(out, p.exclusive_seconds);
      out += "}";
    }
    out += "\n  ], \"counters\": {";
    for (std::size_t i = 0; i < report.counters.size(); ++i) {
      out += i == 0 ? "" : ", ";
      append_json_string(out, report.counters[i].name);
      out += ": ";
      append_double(out, report.counters[i].total);
    }
    out += "}}";
  }
  out += "\n]}\n";
  return out;
}

bool write_chrome_json(const std::string& path,
                       std::span<const TraceSegment> segments) {
  const std::string json = chrome_trace_json(segments);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "!! cannot open %s for writing\n", path.c_str());
    return false;
  }
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  std::fclose(f);
  if (!ok) std::fprintf(stderr, "!! short write to %s\n", path.c_str());
  return ok;
}

}  // namespace parbcc
