#pragma once

#include <chrono>

/// \file timer.hpp
/// Wall-clock timing used by the per-step breakdowns (paper Fig. 4).

namespace parbcc {

/// Monotonic wall-clock stopwatch measured in seconds.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Seconds elapsed since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  void reset() { start_ = Clock::now(); }

  /// seconds() followed by reset(): elapsed time of the step just run.
  double lap() {
    const auto now = Clock::now();
    const double s = std::chrono::duration<double>(now - start_).count();
    start_ = now;
    return s;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace parbcc
