#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <exception>

#include "util/types.hpp"

/// \file work_deque.hpp
/// Bounded Chase–Lev work-stealing deque, one per Executor worker slot.
///
/// The owner pushes and pops fork-join task descriptors at the bottom
/// (LIFO, cache-warm); thieves steal from the top (FIFO, largest
/// remaining range first under lazy binary splitting), taking up to
/// half of the visible tasks per steal so one migration rebalances a
/// loaded victim instead of draining it leaf by leaf.  All operations
/// use seq_cst atomics on `top_` / `bottom_` and atomic buffer slots —
/// deliberately *not* the fence-optimized published variant, because
/// ThreadSanitizer does not model standalone atomic_thread_fence and
/// the TSan tree is a tier-1 gate here.  The deque moves pointers, not
/// work, so the stronger ordering is noise next to task execution.
///
/// Capacity is fixed: fork-join recursion depth is logarithmic in the
/// range being split, so a full deque means runaway forking — callers
/// handle a failed push by executing the task inline (serial fallback),
/// never by blocking.

namespace parbcc {

/// A fork-join task descriptor.  Tasks are stack-allocated in the
/// forking frame: fork-join is strictly nested, so the joiner's stack
/// outlives the task, and `done` is the handshake that keeps the thief
/// from touching a dead frame (release store after execution, acquire
/// load in join).  An exception thrown by a stolen task is captured in
/// `error` and rethrown at the join point.
struct ForkTask {
  std::atomic<bool> done{false};
  std::exception_ptr error;

  virtual void run_task() = 0;

 protected:
  ~ForkTask() = default;
};

class WorkDeque {
 public:
  static constexpr std::size_t kCapacity = 8192;  // power of two

  /// Owner-only.  Returns false when full (caller runs inline).
  bool push(ForkTask* task) {
    const std::uint64_t b = bottom_.load(std::memory_order_seq_cst);
    const std::uint64_t t = top_.load(std::memory_order_seq_cst);
    if (b - t >= kCapacity) return false;
    buffer_[b & kMask].store(task, std::memory_order_seq_cst);
    bottom_.store(b + 1, std::memory_order_seq_cst);
    return true;
  }

  /// Owner-only.  Pops the most recently pushed task, or nullptr if the
  /// deque is empty (possibly because a thief won the last element).
  ForkTask* pop() {
    std::uint64_t b = bottom_.load(std::memory_order_seq_cst);
    std::uint64_t t = top_.load(std::memory_order_seq_cst);
    if (t >= b) return nullptr;  // empty — avoid underflowing bottom_
    b -= 1;
    bottom_.store(b, std::memory_order_seq_cst);
    t = top_.load(std::memory_order_seq_cst);
    if (t > b) {  // a thief emptied it under us; restore
      bottom_.store(b + 1, std::memory_order_seq_cst);
      return nullptr;
    }
    ForkTask* task = buffer_[b & kMask].load(std::memory_order_seq_cst);
    if (t == b) {
      // Last element: race the thieves for it via top_.
      const bool won = top_.compare_exchange_strong(
          t, t + 1, std::memory_order_seq_cst, std::memory_order_seq_cst);
      bottom_.store(b + 1, std::memory_order_seq_cst);
      return won ? task : nullptr;
    }
    return task;
  }

  /// Upper bound on tasks transferred by one steal_half call (bounds
  /// the thief's stack-side receive buffer).
  static constexpr std::size_t kMaxSteal = 32;

  /// Thief-side.  Claims up to half of the tasks visible in the deque
  /// (at least 1, at most `max_out`), oldest first — under lazy binary
  /// splitting the top of the deque holds the largest remaining
  /// subranges, so one steal rebalances half the victim's outstanding
  /// work instead of a single leaf.  Writes the claimed pointers to
  /// `out` and returns the count; 0 on empty or lost race.
  ///
  /// Elements are claimed one CAS at a time with `bottom_` re-read
  /// before every claim.  A single k-wide CAS of `top_` would be
  /// unsound: the owner pops non-last elements without touching
  /// `top_`, so a thief working from a stale `bottom_` could claim an
  /// element the owner already consumed.  Re-validating per element
  /// makes each claim exactly the proven single-steal protocol — the
  /// slot is read *before* the CAS and only handed out after the CAS
  /// succeeds; top_ is monotonic, so a stale read always loses the CAS
  /// and the dead pointer is discarded.
  std::size_t steal_half(ForkTask** out, std::size_t max_out) {
    std::uint64_t t = top_.load(std::memory_order_seq_cst);
    std::size_t got = 0;
    std::size_t want = max_out;
    for (;;) {
      const std::uint64_t b = bottom_.load(std::memory_order_seq_cst);
      if (t >= b) break;
      if (got == 0) {
        // Half of what is visible now, rounded up so one task still
        // transfers.  Fixed on the first claim: later bottom_ re-reads
        // only guard against racing the owner, they don't grow the bite.
        const std::size_t half = static_cast<std::size_t>((b - t + 1) / 2);
        if (half < want) want = half;
      }
      ForkTask* task = buffer_[t & kMask].load(std::memory_order_seq_cst);
      if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                        std::memory_order_seq_cst)) {
        break;  // lost to another thief or the owner's last-element pop
      }
      out[got++] = task;
      ++t;
      if (got >= want) break;
    }
    return got;
  }

  bool empty() const {
    return top_.load(std::memory_order_seq_cst) >=
           bottom_.load(std::memory_order_seq_cst);
  }

 private:
  static constexpr std::uint64_t kMask = kCapacity - 1;
  static_assert((kCapacity & kMask) == 0, "capacity must be a power of two");

  alignas(kCacheLine) std::atomic<std::uint64_t> top_{0};
  alignas(kCacheLine) std::atomic<std::uint64_t> bottom_{0};
  std::array<std::atomic<ForkTask*>, kCapacity> buffer_{};
};

}  // namespace parbcc
