#pragma once

#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

/// \file uninit.hpp
/// std::vector without the memset: an allocator adaptor whose
/// value-less construct() default-initializes, leaving primitive
/// elements uninitialized.  For multi-hundred-MB scratch and output
/// buffers that are fully overwritten before first read (CSR rows,
/// staged arc records), the zero-fill an ordinary vector(n) pays is a
/// complete extra memory pass.

namespace parbcc {

template <class T, class A = std::allocator<T>>
class DefaultInitAllocator : public A {
  using traits = std::allocator_traits<A>;

 public:
  template <class U>
  struct rebind {
    using other =
        DefaultInitAllocator<U, typename traits::template rebind_alloc<U>>;
  };

  using A::A;

  template <class U>
  void construct(U* ptr) noexcept(
      std::is_nothrow_default_constructible_v<U>) {
    ::new (static_cast<void*>(ptr)) U;
  }
  template <class U, class... Args>
  void construct(U* ptr, Args&&... args) {
    traits::construct(static_cast<A&>(*this), ptr,
                      std::forward<Args>(args)...);
  }
};

/// Vector whose sized construction / resize leaves primitives
/// uninitialized.  Only use when every element is written before read.
template <class T>
using uvector = std::vector<T, DefaultInitAllocator<T>>;

}  // namespace parbcc
