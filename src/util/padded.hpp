#pragma once

#include <cstddef>

#include "util/types.hpp"

/// \file padded.hpp
/// Cache-line padded wrapper for per-thread mutable state.
///
/// Arrays of per-thread counters/accumulators must not share cache
/// lines, or the coherence traffic serializes the very loops we are
/// trying to parallelize.  `Padded<T>` gives each element its own line.

namespace parbcc {

template <class T>
struct alignas(kCacheLine) Padded {
  T value{};

  Padded() = default;
  explicit Padded(const T& v) : value(v) {}

  T& operator*() { return value; }
  const T& operator*() const { return value; }
  T* operator->() { return &value; }
  const T* operator->() const { return &value; }
};

static_assert(alignof(Padded<int>) == kCacheLine);
static_assert(sizeof(Padded<char>) == kCacheLine);

}  // namespace parbcc
