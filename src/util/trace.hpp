#pragma once

#include <chrono>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/padded.hpp"

/// \file trace.hpp
/// Low-overhead hierarchical span tracer — the one timing substrate
/// behind every StepTimes figure and every Fig. 3/4 table.
///
/// The old scheme measured each paper step with a hand-advanced Timer
/// in every driver and kept `total` on a separate stopwatch, so the sum
/// of the steps could silently drift from the total (untimed stretches
/// like tree_owner construction or label normalization were charged to
/// nobody).  Here the drivers open RAII `TraceSpan`s instead; the span
/// rollup (`TraceReport`) *derives* the per-step times, and whatever
/// wall-clock no span claims lands in an explicit `unattributed`
/// bucket — the books always balance.
///
/// Model:
///  - Spans nest and are orchestrator-only: begin/end/charge may be
///    called from the thread driving the solve (the Executor's tid 0 —
///    the SPMD regions themselves never open spans).  Timestamps come
///    from the monotonic steady clock.
///  - Counters (`counter`) may be emitted from any SPMD participant;
///    each tid appends to its own cache-line-padded buffer, so
///    recording is race-free without atomics.
///  - Charges (`charge`) attribute seconds measured *outside* the
///    trace's own wall-clock — e.g. a CSR conversion served from a
///    cache, whose cost was paid by an earlier solve.  A charge shows
///    up as a child phase but never subtracts from its parent's
///    exclusive time.
///
/// Two sinks: `report()` aggregates events into per-phase
/// inclusive/exclusive seconds + call counts + counter totals (what
/// BccResult carries), and `chrome_trace_json` emits the Chrome
/// `chrome://tracing` / Perfetto event-array format for interactive
/// inspection (`bench --trace-out=<path>`).
///
/// Tracing is enabled per Trace instance; a disabled instance reduces
/// every record call to one branch (no clock read, no allocation).

namespace parbcc {

enum class TraceEventKind : std::uint8_t {
  kBegin,    // span opened
  kEnd,      // span closed
  kCounter,  // value sample, attributed by name only
  kCharge,   // externally measured seconds, booked as a child phase
};

/// One record in a per-thread event buffer.  `name` must be a string
/// with static storage duration (the tracer stores the pointer).
struct TraceEvent {
  const char* name = nullptr;
  std::int64_t ts_ns = 0;  // steady-clock nanoseconds
  double value = 0;        // counter value / charged seconds
  TraceEventKind kind = TraceEventKind::kBegin;
  std::uint16_t tid = 0;
};

/// One aggregated phase of the rollup: all span occurrences sharing the
/// same path (the "/"-joined names from the outermost span down).
struct TracePhase {
  std::string path;
  std::string name;  // last path segment
  int depth = 0;     // 0 for top-level spans
  std::uint64_t calls = 0;
  /// Measured wall seconds inside the span plus charged seconds.
  double inclusive_seconds = 0;
  /// Inclusive minus the measured (not charged) child-span seconds.
  double exclusive_seconds = 0;
  /// The externally charged portion of inclusive_seconds.
  double charged_seconds = 0;
};

struct TraceCounterTotal {
  std::string name;
  double total = 0;
  std::uint64_t samples = 0;
};

/// Aggregated view of a trace slice: phases in order of first
/// appearance (a preorder of the span tree) and global counter totals.
struct TraceReport {
  std::vector<TracePhase> phases;
  std::vector<TraceCounterTotal> counters;

  /// Phase with exactly this path, or nullptr.
  const TracePhase* find_path(std::string_view path) const;
  /// Sum of inclusive seconds over every phase named `name`, at any
  /// depth — how StepTimes fields are derived (e.g. TV-filter opens
  /// "filtering" twice; both occurrences belong to the one step).
  double inclusive_seconds(std::string_view name) const;
  /// Total of the named counter (0 when never emitted).
  double counter_total(std::string_view name) const;
};

class Executor;

/// Event recorder.  Sized for a fixed SPMD width at construction;
/// counter() calls with tid outside [0, threads) are dropped.
class Trace {
 public:
  explicit Trace(int threads = 1);

  bool enabled() const { return enabled_; }
  void set_enabled(bool on) { enabled_ = on; }
  int threads() const { return static_cast<int>(buffers_.size()); }

  /// Orchestrator-only (call from the thread that drives the solve).
  void begin(const char* name);
  void end(const char* name);
  void charge(const char* name, double seconds);
  /// Any SPMD participant; `tid` selects the private buffer.
  void counter(const char* name, double value, int tid = 0);

  /// Cursor into the per-thread buffers; report_since/events_since
  /// replay only events recorded after the mark, so one long-lived
  /// Trace can serve many solves without cross-talk.
  struct Mark {
    std::vector<std::size_t> size;
  };
  Mark mark() const;

  TraceReport report() const;
  TraceReport report_since(const Mark& mark) const;

  /// All events, tid-0 buffer first (its append order is the span
  /// order), then the other tids' counters.
  std::vector<TraceEvent> events() const;
  std::vector<TraceEvent> events_since(const Mark& mark) const;

  /// As events(), but the per-thread buffers are concatenated with the
  /// prefix-summed parallel scatter (concat_thread_buffers) and then
  /// cleared — the bulk path for exporting a long trace.  `ex` must
  /// have at least as many participants as this Trace has buffers.
  std::vector<TraceEvent> drain(Executor& ex);

  void reset();

  static std::int64_t now_ns() {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

 private:
  void push(int tid, TraceEvent e);

  bool enabled_ = true;
  std::vector<Padded<std::vector<TraceEvent>>> buffers_;
};

/// RAII span.  The null-Trace* form lets substrates take an optional
/// tracer and open spans unconditionally.  The enabled decision is
/// taken once at construction.
class TraceSpan {
 public:
  TraceSpan(Trace* trace, const char* name) {
    if (trace != nullptr && trace->enabled()) {
      trace_ = trace;
      name_ = name;
      trace_->begin(name);
    }
  }
  TraceSpan(Trace& trace, const char* name) : TraceSpan(&trace, name) {}
  ~TraceSpan() { close(); }

  /// End the span before scope exit (idempotent).
  void close() {
    if (trace_ != nullptr) {
      trace_->end(name_);
      trace_ = nullptr;
    }
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  Trace* trace_ = nullptr;
  const char* name_ = nullptr;
};

/// One traced run in a Chrome export (rendered as its own process row).
struct TraceSegment {
  std::string label;
  std::vector<TraceEvent> events;
  TraceReport report;
};

/// Chrome trace-event JSON: `{"traceEvents": [...], "parbccReports":
/// [...]}`.  Spans become B/E pairs, counters "C" events, charges "X"
/// complete events flagged `"charged": true`; the rollup of each
/// segment rides along under the (viewer-ignored) "parbccReports" key.
std::string chrome_trace_json(std::span<const TraceSegment> segments);

/// Write chrome_trace_json to `path`; false (with a message on stderr)
/// on I/O failure.
bool write_chrome_json(const std::string& path,
                       std::span<const TraceSegment> segments);

}  // namespace parbcc
