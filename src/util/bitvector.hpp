#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

/// \file bitvector.hpp
/// Three flavours of packed bit sets:
///  - `BitVector`: plain single-writer-per-phase bit set (owning).
///  - `AtomicBitVector`: concurrent test-and-set, used by traversal
///    algorithms to claim vertices (8x denser than a byte array, which
///    matters for the bandwidth-bound BFS frontier expansion).
///  - `BitSpan`: non-owning view over caller-provided words (typically
///    a Workspace span), so hot-path membership flags — BFS frontier
///    bitmaps, TV-filter's tree/H membership — pack 8x denser than the
///    byte arrays they replace without the view owning any storage.

namespace parbcc {

/// Non-owning packed bit view over `(n + 63) / 64` caller-provided
/// words.  Reads and `set()` are single-writer-per-phase like
/// BitVector; `set_atomic()` supports concurrent marking phases where
/// distinct indices may share a word (scatter loops partitioned by
/// anything other than word boundaries must use it).
class BitSpan {
 public:
  static constexpr std::size_t words_for(std::size_t n) {
    return (n + 63) / 64;
  }

  BitSpan() = default;
  explicit BitSpan(std::span<std::uint64_t> words) : words_(words) {}

  bool get(std::size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1u;
  }
  void set(std::size_t i) { words_[i >> 6] |= std::uint64_t{1} << (i & 63); }
  void set_atomic(std::size_t i) {
    std::atomic_ref(words_[i >> 6])
        .fetch_or(std::uint64_t{1} << (i & 63), std::memory_order_relaxed);
  }

  std::span<std::uint64_t> words() const { return words_; }

 private:
  std::span<std::uint64_t> words_;
};

class BitVector {
 public:
  BitVector() = default;
  explicit BitVector(std::size_t n) : n_(n), words_((n + 63) / 64, 0) {}

  std::size_t size() const { return n_; }

  bool get(std::size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1u;
  }
  void set(std::size_t i) { words_[i >> 6] |= std::uint64_t{1} << (i & 63); }
  void clear(std::size_t i) {
    words_[i >> 6] &= ~(std::uint64_t{1} << (i & 63));
  }
  void reset() { std::fill(words_.begin(), words_.end(), 0); }

  /// Number of set bits.
  std::size_t count() const {
    std::size_t c = 0;
    for (auto w : words_) c += static_cast<std::size_t>(__builtin_popcountll(w));
    return c;
  }

 private:
  std::size_t n_ = 0;
  std::vector<std::uint64_t> words_;
};

class AtomicBitVector {
 public:
  explicit AtomicBitVector(std::size_t n)
      : n_(n), words_((n + 63) / 64) {
    for (auto& w : words_) w.store(0, std::memory_order_relaxed);
  }

  std::size_t size() const { return n_; }

  bool get(std::size_t i) const {
    return (words_[i >> 6].load(std::memory_order_acquire) >> (i & 63)) & 1u;
  }

  /// Atomically set bit i; returns true iff this call flipped it 0 -> 1.
  bool test_and_set(std::size_t i) {
    const std::uint64_t mask = std::uint64_t{1} << (i & 63);
    const std::uint64_t prev =
        words_[i >> 6].fetch_or(mask, std::memory_order_acq_rel);
    return (prev & mask) == 0;
  }

 private:
  std::size_t n_;
  std::vector<std::atomic<std::uint64_t>> words_;
};

}  // namespace parbcc
