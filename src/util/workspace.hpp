#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <span>
#include <type_traits>
#include <vector>

#include "util/types.hpp"

/// \file workspace.hpp
/// Bump/arena allocator for the scratch memory of a solve.
///
/// The paper's Fig. 4 step costs are dominated by memory traffic, and
/// before this arena existed every primitive in the stack allocated and
/// zero-filled its own O(n + m) std::vector temporaries on each call —
/// several hundred MB of allocator churn and redundant memset per solve
/// at full scale.  A `Workspace` turns that into pointer bumps over a
/// few long-lived blocks: the first solve on a context grows the arena
/// to its high-water mark, and every later solve of comparable size
/// reuses the same cache-warm pages with zero allocation and zero fill.
///
/// Usage contract (the frame discipline):
///
///   void step(Executor& ex, Workspace& ws, ...) {
///     Workspace::Frame frame(ws);              // LIFO scope
///     std::span<vid> tmp = ws.alloc<vid>(n);   // uninitialized
///     ...                                      // tmp dies with frame
///   }
///
///  - alloc() returns default-initialized (i.e. uninitialized for
///    primitive types) cache-line-aligned storage: write before read.
///  - No span may outlive the frame it was allocated under; a function
///    that returns workspace memory must allocate it before opening its
///    own frame (i.e. in the caller's frame).
///  - A Workspace is single-orchestrator: only the thread driving the
///    Executor may call alloc()/Frame; worker threads may freely read
///    and write the spans handed to them.
///
/// Telemetry (peak_bytes, reuse_hits, growth_count) feeds the
/// `peak_workspace_bytes` / `arena_reuse_hits` fields of BccResult so
/// benches can report memory next to time.

namespace parbcc {

class Workspace {
 public:
  Workspace() = default;
  Workspace(const Workspace&) = delete;
  Workspace& operator=(const Workspace&) = delete;

  /// Allocation mark; see Frame.
  struct Mark {
    std::size_t block = 0;
    std::size_t used = 0;
    std::size_t live = 0;
  };

  /// LIFO scope: rewinds the arena to the construction point when it
  /// goes out of scope (exception-safe — a throwing solve releases its
  /// scratch on unwind).
  class Frame {
   public:
    explicit Frame(Workspace& ws) : ws_(ws), mark_(ws.mark()) {}
    ~Frame() { ws_.rewind(mark_); }
    Frame(const Frame&) = delete;
    Frame& operator=(const Frame&) = delete;

   private:
    Workspace& ws_;
    Mark mark_;
  };

  /// `count` default-initialized Ts, aligned to a cache line.  For
  /// trivially-default-constructible Ts the elements are uninitialized
  /// (no memset); otherwise they are default-constructed in place.  T
  /// must be trivially destructible — nothing is destroyed on rewind.
  template <class T>
  std::span<T> alloc(std::size_t count) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "Workspace frames never run destructors");
    static_assert(alignof(T) <= kCacheLine,
                  "Workspace alignment is one cache line");
    if (count == 0) return {};
    T* p = reinterpret_cast<T*>(raw_alloc(count * sizeof(T)));
    if constexpr (!std::is_trivially_default_constructible_v<T>) {
      for (std::size_t i = 0; i < count; ++i) ::new (p + i) T;
    }
    return {p, count};
  }

  Mark mark() const {
    return {cur_, blocks_.empty() ? 0 : blocks_[cur_].used, live_};
  }

  void rewind(const Mark& m) {
    for (std::size_t i = m.block + 1; i < blocks_.size(); ++i) {
      blocks_[i].used = 0;
    }
    if (!blocks_.empty()) blocks_[m.block].used = m.used;
    cur_ = m.block;
    live_ = m.live;
  }

  /// --- Telemetry. ----------------------------------------------------
  /// Total bytes of backing storage currently owned.
  std::size_t capacity_bytes() const { return capacity_; }
  /// Bytes currently handed out (inside open frames).
  std::size_t live_bytes() const { return live_; }
  /// High-water mark of live_bytes() since construction / reset_peak().
  std::size_t peak_bytes() const { return peak_; }
  /// Allocations served from existing capacity (no system allocation).
  std::uint64_t reuse_hits() const { return reuse_hits_; }
  /// Number of backing-block allocations; a warm workspace solving a
  /// previously-seen problem size performs zero further growth.
  std::uint64_t growth_count() const { return growth_count_; }

  /// Restart the peak high-water mark at the current live size.
  void reset_peak() { peak_ = live_; }

  /// Free all backing storage (must be called with no open frames).
  void release() {
    blocks_.clear();
    cur_ = 0;
    capacity_ = 0;
    live_ = 0;
    peak_ = 0;
  }

 private:
  struct Deleter {
    void operator()(std::byte* p) const {
      ::operator delete[](p, std::align_val_t{kCacheLine});
    }
  };
  struct Block {
    std::unique_ptr<std::byte[], Deleter> data;
    std::size_t capacity = 0;
    std::size_t used = 0;
  };

  static constexpr std::size_t kMinBlockBytes = std::size_t{1} << 16;

  static std::size_t round_up(std::size_t bytes) {
    return (bytes + kCacheLine - 1) & ~(kCacheLine - 1);
  }

  std::byte* raw_alloc(std::size_t bytes) {
    bytes = round_up(bytes);
    bool grew = false;
    for (;;) {
      // Scan forward from the bump position: blocks past cur_ hold no
      // live data (allocation only moves forward and rewind resets
      // them), so skipping a block merely wastes its remainder until
      // the enclosing frame rewinds.  Capacity is never discarded —
      // that is what makes a warm workspace growth-free.
      while (cur_ < blocks_.size() &&
             blocks_[cur_].capacity - blocks_[cur_].used < bytes) {
        if (cur_ + 1 == blocks_.size()) break;
        ++cur_;
      }
      if (cur_ < blocks_.size()) {
        Block& b = blocks_[cur_];
        if (b.capacity - b.used >= bytes) {
          std::byte* p = b.data.get() + b.used;
          b.used += bytes;
          live_ += bytes;
          if (live_ > peak_) peak_ = live_;
          if (!grew) ++reuse_hits_;
          return p;
        }
      }
      grow(bytes);
      grew = true;
    }
  }

  void grow(std::size_t bytes) {
    // Geometric growth: at least as big as everything owned so far, so
    // a cold solve settles into O(log n) blocks.
    std::size_t cap = kMinBlockBytes;
    if (capacity_ > cap) cap = capacity_;
    if (bytes > cap) cap = bytes;
    Block b;
    b.data.reset(static_cast<std::byte*>(
        ::operator new[](cap, std::align_val_t{kCacheLine})));
    b.capacity = cap;
    blocks_.push_back(std::move(b));
    cur_ = blocks_.size() - 1;
    capacity_ += cap;
    ++growth_count_;
  }

  std::vector<Block> blocks_;
  std::size_t cur_ = 0;
  std::size_t capacity_ = 0;
  std::size_t live_ = 0;
  std::size_t peak_ = 0;
  std::uint64_t reuse_hits_ = 0;
  std::uint64_t growth_count_ = 0;
};

}  // namespace parbcc
