#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>

/// \file types.hpp
/// Fundamental integer types shared by every parbcc subsystem.
///
/// Vertices and edges are 32-bit: the paper's largest instance is 1M
/// vertices / 20M edges, and the auxiliary graph built by the
/// Tarjan-Vishkin label-edge step has at most n + m vertices and 3m
/// staged edges, all comfortably below 2^32.  32-bit ids halve the
/// memory traffic of the bandwidth-bound parallel loops.

namespace parbcc {

/// Vertex identifier, 0-based.
using vid = std::uint32_t;
/// Edge identifier (index into an edge list), 0-based.
using eid = std::uint32_t;

/// Sentinel for "no vertex" (also used for unset parents).
inline constexpr vid kNoVertex = std::numeric_limits<vid>::max();
/// Sentinel for "no edge".
inline constexpr eid kNoEdge = std::numeric_limits<eid>::max();

/// Destination cache line size used for padding shared mutable state.
inline constexpr std::size_t kCacheLine = 64;

}  // namespace parbcc
