#pragma once

#include <atomic>
#include <cstdint>
#include <thread>

#include "util/types.hpp"

/// \file barrier.hpp
/// Centralized sense-reversing spin barrier.
///
/// The paper implements its SMP algorithms with POSIX threads and
/// "software-based barriers"; this is the standard centralized
/// sense-reversing design: the last thread to arrive flips a global
/// sense flag that all spinning threads are watching.  Arrival uses a
/// single fetch_sub, so the barrier is O(p) traffic per episode and has
/// no syscalls on the fast path; spinners yield to stay fair on
/// machines with fewer cores than threads (like this container).

namespace parbcc {

class Barrier {
 public:
  explicit Barrier(int participants)
      : participants_(participants), remaining_(participants), sense_(false) {}

  Barrier(const Barrier&) = delete;
  Barrier& operator=(const Barrier&) = delete;

  /// Number of threads that must call wait() per episode.
  int participants() const { return participants_; }

  /// Block until all participants have arrived.
  void wait() {
    const bool my_sense = !sense_.load(std::memory_order_relaxed);
    if (remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      // Last arrival: reset the count and release everyone.
      remaining_.store(participants_, std::memory_order_relaxed);
      sense_.store(my_sense, std::memory_order_release);
    } else {
      // Spin with a bounded busy phase, then yield: with oversubscribed
      // threads a pure spin would livelock the only core.
      int spins = 0;
      while (sense_.load(std::memory_order_acquire) != my_sense) {
        if (++spins > 64) {
          std::this_thread::yield();
        }
      }
    }
  }

 private:
  const int participants_;
  alignas(kCacheLine) std::atomic<int> remaining_;
  alignas(kCacheLine) std::atomic<bool> sense_;
};

}  // namespace parbcc
