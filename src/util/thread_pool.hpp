#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "util/barrier.hpp"
#include "util/types.hpp"

/// \file thread_pool.hpp
/// Persistent SPMD worker pool — the execution substrate for every
/// parallel algorithm in parbcc.
///
/// The paper's implementations follow the classic SMP style: spawn p
/// POSIX threads once, then run a sequence of data-parallel steps
/// separated by software barriers.  `Executor` reproduces that model:
///
///   Executor ex(p);
///   ex.run([&](int tid) {          // all p threads execute the body
///     ... step 1, partitioned by tid ...
///     ex.barrier().wait();
///     ... step 2 ...
///   });
///
/// The calling thread participates as tid 0, so `Executor(1)` runs
/// everything inline with zero threading overhead — the p = 1 data
/// points in the benchmarks measure pure algorithmic work.

namespace parbcc {

class Executor {
 public:
  /// Create a pool that runs SPMD regions with `threads` participants
  /// (the caller plus `threads - 1` persistent workers).
  explicit Executor(int threads);
  ~Executor();

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  /// Number of SPMD participants.
  int threads() const { return threads_; }

  /// The barrier shared by all participants of the current run().
  /// Only meaningful inside the body passed to run().
  Barrier& barrier() { return barrier_; }

  /// Execute `f(tid)` on every participant and wait for all of them.
  /// Not reentrant: the body must not call run() on the same Executor.
  /// If any participant throws, one of the exceptions is rethrown on
  /// the caller after every participant has finished.  The body must
  /// not throw across a barrier it still owes other participants —
  /// partition work so that throwing regions need no barrier.
  void run(const std::function<void(int)>& f);

  /// Half-open block of [0, n) owned by `tid` out of `p` under the
  /// balanced static partition used throughout the library.
  static std::pair<std::size_t, std::size_t> block_range(std::size_t n, int p,
                                                         int tid) {
    const std::size_t begin = n * static_cast<std::size_t>(tid) / p;
    const std::size_t end = n * (static_cast<std::size_t>(tid) + 1) / p;
    return {begin, end};
  }

  /// Statically partitioned parallel loop: `f(i)` for each i in [0, n).
  template <class F>
  void parallel_for(std::size_t n, F&& f) {
    if (threads_ == 1 || n < 2) {
      for (std::size_t i = 0; i < n; ++i) f(i);
      return;
    }
    run([&](int tid) {
      auto [begin, end] = block_range(n, threads_, tid);
      for (std::size_t i = begin; i < end; ++i) f(i);
    });
  }

  /// Statically partitioned loop handing each thread its whole block:
  /// `f(tid, begin, end)`.  Use when per-thread setup matters.
  template <class F>
  void parallel_blocks(std::size_t n, F&& f) {
    if (threads_ == 1) {
      f(0, std::size_t{0}, n);
      return;
    }
    run([&](int tid) {
      auto [begin, end] = block_range(n, threads_, tid);
      f(tid, begin, end);
    });
  }

  /// Dynamically scheduled loop over chunks of `grain` indices; use for
  /// irregular per-index work (e.g. vertices with skewed degrees).
  template <class F>
  void parallel_for_dynamic(std::size_t n, std::size_t grain, F&& f) {
    if (threads_ == 1 || n < 2) {
      for (std::size_t i = 0; i < n; ++i) f(i);
      return;
    }
    if (grain == 0) grain = 1;
    // Cap the grain at n: the shared counter advances by `grain` once
    // per claim, and an oversized grain could wrap it past SIZE_MAX,
    // handing out bogus chunk starts (duplicated or skipped indices).
    if (grain > n) grain = n;
    std::atomic<std::size_t> next{0};
    run([&](int) {
      for (;;) {
        const std::size_t begin =
            next.fetch_add(grain, std::memory_order_relaxed);
        if (begin >= n) break;
        // Clamp via the distance to n — `begin + grain` itself could
        // overflow, yielding end < begin and a silently empty chunk.
        const std::size_t end = begin + std::min(grain, n - begin);
        for (std::size_t i = begin; i < end; ++i) f(i);
      }
    });
  }

 private:
  void worker_loop(int tid);

  const int threads_;
  Barrier barrier_;

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_;
  const std::function<void(int)>* job_ = nullptr;
  std::uint64_t epoch_ = 0;
  bool stop_ = false;

  std::atomic<int> pending_{0};
  std::condition_variable done_cv_;
  std::mutex done_mu_;

  std::mutex error_mu_;
  std::exception_ptr first_error_;
};

}  // namespace parbcc
