#pragma once

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "util/barrier.hpp"
#include "util/types.hpp"
#include "util/work_deque.hpp"

/// \file thread_pool.hpp
/// The execution substrate for every parallel algorithm in parbcc: one
/// persistent pool of p participants serving two scheduling models.
///
/// **SPMD** (the paper's model): `run(f)` executes `f(tid)` on all p
/// participants with the sense-reversing `barrier()` available between
/// steps.  The hand-written barrier-phased substrates (scan, sort,
/// list-ranking, CSR conversion) use this path, and
/// `ExecMode::kSpmd` routes the `parallel_*` loops through it too so
/// the paper-faithful drivers run the printed algorithm:
///
///   Executor ex(p);
///   ex.run([&](int tid) {          // all p threads execute the body
///     ... step 1, partitioned by tid ...
///     ex.barrier().wait();
///     ... step 2 ...
///   });
///
/// **Work-stealing fork-join** (the default): the `parallel_for` /
/// `parallel_blocks` / `parallel_for_dynamic` loops lazily binary-split
/// their range into tasks on per-worker Chase–Lev deques
/// (`work_deque.hpp`); idle workers steal the largest outstanding
/// subrange.  Regions are *nestable*: a `parallel_for` issued from
/// inside a task forks onto the executing worker's own deque, which is
/// what lets a per-vertex edge loop go parallel when one vertex owns a
/// quarter of the graph (the skewed-degree regime flat SPMD chunking
/// cannot balance).  The `grain` knob bounds the smallest task.
///
/// The calling thread participates as slot 0 in both models, so
/// `Executor(1)` runs everything inline with zero threading overhead —
/// the p = 1 data points in the benchmarks measure pure algorithmic
/// work.
namespace parbcc {

/// Scheduling model for the `parallel_*` loops.  `run()` is always
/// SPMD; the mode only selects how loops are decomposed.
enum class ExecMode {
  kWorkSteal,  ///< lazy binary splitting onto Chase–Lev deques (default)
  kSpmd,       ///< static block partition / shared-counter chunks, as printed
};

/// Aggregated scheduler telemetry since the last reset (work-stealing
/// loops only; SPMD loops fork no tasks so they contribute nothing).
struct SchedulerStats {
  std::uint64_t steals = 0;  ///< successful steals across all slots
  std::uint64_t splits = 0;  ///< forks (one binary range split each)
  std::uint64_t tasks = 0;   ///< task bodies executed (stolen or popped)
  /// Per-slot busy CPU time (CLOCK_THREAD_CPUTIME_ID, so immune to
  /// descheduling under oversubscription) accumulated inside
  /// `parallel_*` loop bodies while `set_busy_accounting(true)`.
  /// Index = worker slot.  Empty unless accounting was enabled.
  std::vector<std::uint64_t> busy_ns;
};

class Executor {
 public:
  /// Create a pool that runs parallel regions with `threads`
  /// participants (the caller plus `threads - 1` persistent workers).
  explicit Executor(int threads);
  ~Executor();

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  /// Number of participants (== worker slots).
  int threads() const { return threads_; }

  /// Scheduling model used by the `parallel_*` loops.
  ExecMode mode() const { return mode_.load(std::memory_order_relaxed); }

  /// Select the loop scheduling model.  Call between regions only (the
  /// dispatcher sets it from `BccOptions::exec_mode` before a solve).
  void set_mode(ExecMode m) { mode_.store(m, std::memory_order_relaxed); }

  /// The barrier shared by all participants of the current run().
  /// Only meaningful inside the body passed to run().
  Barrier& barrier() { return barrier_; }

  /// Execute `f(tid)` on every participant and wait for all of them.
  /// Not reentrant: the body must not call run() on the same Executor,
  /// and fork-join tasks must never call run() (the workers are busy
  /// stealing).  If any participant throws, one of the exceptions is
  /// rethrown on the caller after every participant has finished.  The
  /// body must not throw across a barrier it still owes other
  /// participants — partition work so throwing regions need no barrier.
  void run(const std::function<void(int)>& f);

  /// Slot of the worker executing the current task / SPMD body, in
  /// [0, threads()).  Returns 0 outside any parallel region.  Inside a
  /// work-stealing region each slot executes serially, so indexing
  /// per-slot scratch by worker_id() is race-free even when nested
  /// splitting moves a vertex's edge loop across workers.
  int worker_id() const {
    return (tls_executor_ == this && tls_slot_ >= 0) ? tls_slot_ : 0;
  }

  /// Half-open block of [0, n) owned by `tid` out of `p` under the
  /// balanced static partition used throughout the library.  The
  /// products are taken in 128-bit so the exact floor(n*t/p) cut
  /// points survive n close to SIZE_MAX (n * tid wraps 64-bit for
  /// n > SIZE_MAX / p).
  static std::pair<std::size_t, std::size_t> block_range(std::size_t n, int p,
                                                         int tid) {
    using u128 = unsigned __int128;
    const std::size_t begin = static_cast<std::size_t>(
        static_cast<u128>(n) * static_cast<unsigned>(tid) /
        static_cast<unsigned>(p));
    const std::size_t end = static_cast<std::size_t>(
        static_cast<u128>(n) * (static_cast<unsigned>(tid) + 1) /
        static_cast<unsigned>(p));
    return {begin, end};
  }

  /// Default task granularity for an n-iteration loop: coarse enough
  /// to amortize the fork (~8 tasks per worker), capped above so a
  /// huge loop still yields enough tasks to steal, and floored at 64
  /// iterations so small loops (per-level BFS rounds, short zero
  /// fills) don't shatter into single-index tasks whose fork/join
  /// handshakes dwarf the bodies.  Loops with heavy per-index bodies
  /// that want finer tasks pass an explicit grain instead.
  std::size_t auto_grain(std::size_t n) const {
    const std::size_t per =
        n / (8 * static_cast<std::size_t>(threads_) + 1);
    return std::max<std::size_t>(64, std::min<std::size_t>(2048, per));
  }

  /// Parallel loop: `f(i)` for each i in [0, n).  Work-stealing mode
  /// lazily splits the range at auto_grain(); kSpmd uses the static
  /// block partition.
  template <class F>
  void parallel_for(std::size_t n, F&& f) {
    if (threads_ == 1 || n < 2) {
      for (std::size_t i = 0; i < n; ++i) f(i);
      return;
    }
    if (mode() == ExecMode::kSpmd) {
      run([&](int tid) {
        auto [begin, end] = block_range(n, threads_, tid);
        BusyScope busy(this, tid);
        for (std::size_t i = begin; i < end; ++i) f(i);
      });
      return;
    }
    ws_loop(0, n, auto_grain(n), f);
  }

  /// Parallel loop over [lo, hi) with an explicit `grain`: the lazy
  /// splitter never creates a task smaller than `grain` iterations.
  /// This is the nested-region entry point — legal from inside another
  /// parallel loop's body, where it forks onto the executing worker's
  /// own deque (per-vertex edge loops in the skewed hot paths).  In
  /// kSpmd mode (or on a 1-thread pool) it degrades to a serial loop
  /// when nested and a static partition at top level.
  template <class F>
  void parallel_for(std::size_t lo, std::size_t hi, std::size_t grain,
                    F&& f) {
    if (hi <= lo) return;
    const std::size_t n = hi - lo;
    if (grain == 0) grain = 1;
    if (threads_ == 1 || n <= grain) {
      for (std::size_t i = lo; i < hi; ++i) f(i);
      return;
    }
    if (mode() == ExecMode::kSpmd) {
      if (tls_executor_ == this && tls_slot_ > 0) {
        // Nested inside an SPMD participant: stay serial, the outer
        // static partition already owns this thread.
        for (std::size_t i = lo; i < hi; ++i) f(i);
        return;
      }
      run([&](int tid) {
        auto [begin, end] = block_range(n, threads_, tid);
        BusyScope busy(this, tid);
        for (std::size_t i = lo + begin; i < lo + end; ++i) f(i);
      });
      return;
    }
    ws_loop(lo, hi, grain, f);
  }

  /// Statically partitioned loop handing each participant its whole
  /// block: exactly threads() invocations of `f(tid, begin, end)`,
  /// distinct tid each, empty blocks included.  Use when per-thread
  /// setup matters.  Work-stealing mode forks exactly p block tasks
  /// (tid = block index) so idle workers can steal a straggler block,
  /// preserving the exactly-once-per-tid contract the per-tid scratch
  /// at the call sites depends on.
  template <class F>
  void parallel_blocks(std::size_t n, F&& f) {
    if (threads_ == 1) {
      f(0, std::size_t{0}, n);
      return;
    }
    if (mode() == ExecMode::kSpmd) {
      run([&](int tid) {
        auto [begin, end] = block_range(n, threads_, tid);
        BusyScope busy(this, tid);
        f(tid, begin, end);
      });
      return;
    }
    const std::size_t p = static_cast<std::size_t>(threads_);
    ws_loop(0, p, 1, [&](std::size_t t) {
      auto [begin, end] = block_range(n, threads_, static_cast<int>(t));
      f(static_cast<int>(t), begin, end);
    });
  }

  /// Dynamically scheduled loop over chunks of `grain` indices; use for
  /// irregular per-index work (e.g. vertices with skewed degrees).  In
  /// work-stealing mode this is the same lazy splitter as
  /// parallel_for(lo, hi, grain, f) — stealing subsumes the shared
  /// counter; kSpmd keeps the printed atomic-counter loop.
  template <class F>
  void parallel_for_dynamic(std::size_t n, std::size_t grain, F&& f) {
    if (threads_ == 1 || n < 2) {
      for (std::size_t i = 0; i < n; ++i) f(i);
      return;
    }
    if (grain == 0) grain = 1;
    // Cap the grain at n: the shared counter advances by `grain` once
    // per claim, and an oversized grain could wrap it past SIZE_MAX,
    // handing out bogus chunk starts (duplicated or skipped indices).
    if (grain > n) grain = n;
    if (mode() == ExecMode::kWorkSteal) {
      ws_loop(0, n, grain, f);
      return;
    }
    std::atomic<std::size_t> next{0};
    run([&](int tid) {
      BusyScope busy(this, tid);
      for (;;) {
        const std::size_t begin =
            next.fetch_add(grain, std::memory_order_relaxed);
        if (begin >= n) break;
        // Clamp via the distance to n — `begin + grain` itself could
        // overflow, yielding end < begin and a silently empty chunk.
        const std::size_t end = begin + std::min(grain, n - begin);
        for (std::size_t i = begin; i < end; ++i) f(i);
      }
    });
  }

  /// Enable per-slot busy-CPU accounting inside `parallel_*` bodies
  /// (both modes).  Off by default: each leaf pays two clock_gettime
  /// calls when on.  The scheduler-ablation bench uses the resulting
  /// per-slot busy profile as its machine-independent imbalance metric.
  void set_busy_accounting(bool on) {
    busy_accounting_.store(on, std::memory_order_relaxed);
  }

  /// Snapshot of steal/split/task counters (and busy profile, if
  /// accounting is on) accumulated since the last reset.  Call between
  /// regions.
  SchedulerStats scheduler_stats() const;

  /// Zero the scheduler counters and busy profile.
  void reset_scheduler_stats();

 private:
  struct alignas(kCacheLine) WorkerState {
    WorkDeque deque;
    std::atomic<std::uint64_t> steals{0};
    std::atomic<std::uint64_t> splits{0};
    std::atomic<std::uint64_t> tasks{0};
    std::atomic<std::uint64_t> busy_ns{0};
  };

  /// Accumulates CLOCK_THREAD_CPUTIME_ID across a loop-body scope into
  /// the slot's busy counter when accounting is enabled.  Thread CPU
  /// time (not wall time) so a 12-on-1-core oversubscribed run still
  /// reports what each worker actually executed.
  class BusyScope {
   public:
    BusyScope(Executor* ex, int slot)
        : ex_(ex),
          slot_(slot),
          on_(ex->busy_accounting_.load(std::memory_order_relaxed)) {
      if (on_) start_ = thread_cpu_ns();
    }
    ~BusyScope() {
      if (on_) {
        ex_->state_[static_cast<std::size_t>(slot_)]->busy_ns.fetch_add(
            thread_cpu_ns() - start_, std::memory_order_relaxed);
      }
    }

   private:
    Executor* ex_;
    int slot_;
    bool on_;
    std::uint64_t start_ = 0;
  };

  /// Opens a top-level fork-join region: claims slot 0 for the calling
  /// (orchestrator) thread and flips workers from cv-wait into their
  /// steal loops.  Destructor closes the region after the root range is
  /// fully joined.
  class RegionScope {
   public:
    explicit RegionScope(Executor* ex) : ex_(ex) {
      tls_executor_ = ex;
      tls_slot_ = 0;
      {
        std::lock_guard<std::mutex> lock(ex_->mu_);
        ex_->fj_active_.store(true, std::memory_order_relaxed);
      }
      ex_->cv_.notify_all();
    }
    ~RegionScope() {
      ex_->fj_active_.store(false, std::memory_order_release);
      tls_executor_ = nullptr;
      tls_slot_ = -1;
    }

   private:
    Executor* ex_;
  };

  /// Range task for the lazy binary splitter: a stolen right half
  /// re-enters ws_range on the thief with its own lazy splitting.
  template <class F>
  struct RangeTask final : ForkTask {
    Executor* ex;
    const F* f;
    std::size_t lo, hi, grain;
    void run_task() override { ex->ws_range(lo, hi, grain, *f); }
  };

  /// Work-stealing loop entry: opens a region if called from the
  /// orchestrator, or forks in place if already inside one (nesting).
  template <class F>
  void ws_loop(std::size_t lo, std::size_t hi, std::size_t grain,
               const F& f) {
    if (tls_executor_ == this && tls_slot_ >= 0) {
      ws_range(lo, hi, grain, f);  // nested region: same deque
      return;
    }
    RegionScope region(this);
    ws_range(lo, hi, grain, f);
  }

  /// Lazy binary splitting: fork the right half (largest-first in the
  /// deque, so thieves take the biggest piece), recurse into the left,
  /// join.  A full deque runs the task inline — graceful serial
  /// degradation instead of blocking.
  template <class F>
  void ws_range(std::size_t lo, std::size_t hi, std::size_t grain,
                const F& f) {
    WorkerState& me = *state_[static_cast<std::size_t>(tls_slot_)];
    while (hi - lo > grain) {
      const std::size_t mid = lo + (hi - lo) / 2;
      RangeTask<F> right;
      right.ex = this;
      right.f = &f;
      right.lo = mid;
      right.hi = hi;
      right.grain = grain;
      if (!me.deque.push(&right)) break;  // full: finish [lo, hi) inline
      me.splits.fetch_add(1, std::memory_order_relaxed);
      try {
        ws_range(lo, mid, grain, f);
      } catch (...) {
        // The forked half may already be stolen; it must finish before
        // this frame (which owns it) unwinds.
        join_task(&right, me);
        throw;
      }
      join_task(&right, me);
      return;
    }
    BusyScope busy(this, tls_slot_);
    for (std::size_t i = lo; i < hi; ++i) f(i);
  }

  void run_task_body(ForkTask* t, WorkerState& me);
  void join_task(ForkTask* t, WorkerState& me);
  bool try_steal_once(WorkerState& me);
  void steal_loop(WorkerState& me);
  void worker_loop(int tid);

  static std::uint64_t thread_cpu_ns();

  const int threads_;
  Barrier barrier_;
  std::atomic<ExecMode> mode_{ExecMode::kWorkSteal};

  std::vector<std::unique_ptr<WorkerState>> state_;
  std::atomic<bool> fj_active_{false};
  std::atomic<bool> busy_accounting_{false};

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_;
  const std::function<void(int)>* job_ = nullptr;
  std::uint64_t epoch_ = 0;
  bool stop_ = false;

  std::atomic<int> pending_{0};
  std::condition_variable done_cv_;
  std::mutex done_mu_;

  std::mutex error_mu_;
  std::exception_ptr first_error_;

  static thread_local Executor* tls_executor_;
  static thread_local int tls_slot_;
};

}  // namespace parbcc
