#pragma once

#include <span>
#include <vector>

#include "util/thread_pool.hpp"
#include "util/trace.hpp"
#include "util/types.hpp"
#include "util/workspace.hpp"

/// \file tree_computations.hpp
/// Rooted-tree computations without list ranking.
///
/// TV-opt's key engineering change (paper §3.2): once parents are known
/// directly (work-stealing traversal tree), preorder numbers, subtree
/// sizes and the subtree min/max aggregates behind low/high can all be
/// computed with cache-friendly level sweeps and prefix sums instead of
/// ranking the Euler circuit.  Each sweep touches every vertex once via
/// a level-bucketed order, so total work is O(n) with perfect spatial
/// locality inside a level.

namespace parbcc {

/// The rooted spanning tree interface consumed by the Tarjan-Vishkin
/// core, produced by either pipeline (Euler-tour rooting in TV-SMP,
/// level sweeps in TV-opt).
struct RootedSpanningTree {
  vid root = 0;
  /// parent[root] == root.
  std::vector<vid> parent;
  /// Graph edge id of {v, parent[v]}; kNoEdge for the root.
  std::vector<eid> parent_edge;
  /// 1-based DFS preorder number (root gets 1).
  std::vector<vid> pre;
  /// Subtree size (sub[root] == n).
  std::vector<vid> sub;

  vid n() const { return static_cast<vid>(parent.size()); }

  /// Ancestor test in O(1) via the preorder interval.
  bool is_ancestor(vid anc, vid v) const {
    return pre[anc] <= pre[v] && pre[v] < pre[anc] + sub[anc];
  }
};

/// Child adjacency (CSR over the parent array).
struct ChildrenCsr {
  std::vector<eid> offsets;  // n + 1
  std::vector<vid> child;    // n - 1 entries for a tree

  std::span<const vid> children(vid v) const {
    return {child.data() + offsets[v], child.data() + offsets[v + 1]};
  }
};

/// The `trace` parameters open self-named sub-spans
/// ("build_children", "build_levels", "preorder_size") under whatever
/// step span the caller holds — the TV-opt substitute for the Euler
/// tour shows up structured in a trace artifact.
ChildrenCsr build_children(Executor& ex, Workspace& ws,
                           std::span<const vid> parent, vid root,
                           Trace* trace = nullptr);
ChildrenCsr build_children(Executor& ex, std::span<const vid> parent,
                           vid root);

/// Vertices bucketed by depth, plus the depth array itself.
struct LevelStructure {
  std::vector<vid> depth;          // depth[root] == 0
  std::vector<vid> order;          // vertices sorted by depth
  std::vector<eid> level_offsets;  // num_levels + 1 boundaries into order
  vid num_levels = 0;

  std::span<const vid> level(vid d) const {
    return {order.data() + level_offsets[d],
            order.data() + level_offsets[d + 1]};
  }
};

LevelStructure build_levels(Executor& ex, const ChildrenCsr& children,
                            vid root, Trace* trace = nullptr);

/// Fill `pre` (1-based preorder) and `sub` (subtree sizes) by a
/// bottom-up size sweep followed by a top-down numbering sweep.
void preorder_and_size(Executor& ex, const ChildrenCsr& children,
                       const LevelStructure& levels, vid root,
                       std::vector<vid>& pre, std::vector<vid>& sub,
                       Trace* trace = nullptr);

/// In place: val[v] := min over v's subtree of the initial val values.
void subtree_min(Executor& ex, const ChildrenCsr& children,
                 const LevelStructure& levels, vid* val);

/// In place: val[v] := max over v's subtree of the initial val values.
void subtree_max(Executor& ex, const ChildrenCsr& children,
                 const LevelStructure& levels, vid* val);

/// Analytic DFS-order Euler tour positions (paper §3.2's cache-friendly
/// tour): for each non-root v, the tour index of the arc parent(v)->v
/// and of v->parent(v), derived in O(1) per vertex from pre/sub/depth.
/// down[root] and up[root] are set to kNoVertex.
struct DfsTourPositions {
  std::vector<vid> down;
  std::vector<vid> up;
};
DfsTourPositions dfs_tour_positions(Executor& ex,
                                    const RootedSpanningTree& tree,
                                    std::span<const vid> depth);

}  // namespace parbcc
