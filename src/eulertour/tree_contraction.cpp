#include "eulertour/tree_contraction.hpp"

#include <stdexcept>

#include "util/padded.hpp"
#include "util/rng.hpp"

namespace parbcc {
namespace {

using Op = ExpressionTree::Op;

std::uint64_t apply(Op op, std::uint64_t a, std::uint64_t b) {
  return op == Op::kAdd ? a + b : a * b;
}

}  // namespace

std::uint64_t evaluate_sequential(const ExpressionTree& tree) {
  if (tree.size() == 0) {
    throw std::invalid_argument("evaluate_sequential: empty tree");
  }
  // Iterative post-order with an explicit stack (chains can be deep).
  std::vector<std::uint64_t> result(tree.size());
  std::vector<std::pair<vid, int>> stack{{tree.root, 0}};
  while (!stack.empty()) {
    auto& [v, phase] = stack.back();
    if (tree.is_leaf(v)) {
      result[v] = tree.value[v];
      stack.pop_back();
    } else if (phase == 0) {
      phase = 1;
      stack.push_back({tree.left[v], 0});
    } else if (phase == 1) {
      phase = 2;
      stack.push_back({tree.right[v], 0});
    } else {
      result[v] = apply(tree.op[v], result[tree.left[v]],
                        result[tree.right[v]]);
      stack.pop_back();
    }
  }
  return result[tree.root];
}

std::uint64_t evaluate_tree_contraction(Executor& ex, Workspace& ws,
                                        const ExpressionTree& tree) {
  const vid n = tree.size();
  if (n == 0) {
    throw std::invalid_argument("evaluate_tree_contraction: empty tree");
  }
  if (n == 1) return tree.value[tree.root];

  // Mutable working copy of the shape plus affine labels.
  Workspace::Frame frame(ws);
  std::span<vid> left = ws.alloc<vid>(n);
  std::span<vid> right = ws.alloc<vid>(n);
  std::span<vid> parent = ws.alloc<vid>(n);
  std::span<std::uint64_t> fa = ws.alloc<std::uint64_t>(n);
  std::span<std::uint64_t> fb = ws.alloc<std::uint64_t>(n);  // f(x)=fa*x+fb
  ex.parallel_for(n, [&](std::size_t v) {
    left[v] = tree.left[v];
    right[v] = tree.right[v];
    parent[v] = tree.parent[v];
    fa[v] = 1;
    fb[v] = 0;
  });
  vid root = tree.root;

  // Leaves in left-to-right (in-order) order.
  std::vector<vid> leaves;
  leaves.reserve((n + 1) / 2);
  {
    std::vector<vid> stack{root};
    while (!stack.empty()) {
      const vid v = stack.back();
      stack.pop_back();
      if (tree.is_leaf(v)) {
        leaves.push_back(v);
      } else {
        stack.push_back(right[v]);  // right pushed first -> left visited first
        stack.push_back(left[v]);
      }
    }
  }

  // Rake leaf l: fold f_l(value) through parent's op into the sibling's
  // label and splice the sibling up.  Returns the new root if the
  // parent was the root (at most one rake per sub-round can do that,
  // since the root has a single pair of children).
  const auto rake = [&](vid l) -> vid {
    const vid p = parent[l];
    const vid s = left[p] == l ? right[p] : left[p];
    const std::uint64_t c = fa[l] * tree.value[l] + fb[l];
    // f_p(c op f_s(x)) expanded; + and * are commutative, so the side
    // of l does not matter.
    std::uint64_t a2, b2;
    if (tree.op[p] == Op::kAdd) {
      a2 = fa[p] * fa[s];
      b2 = fa[p] * (c + fb[s]) + fb[p];
    } else {
      a2 = fa[p] * c * fa[s];
      b2 = fa[p] * c * fb[s] + fb[p];
    }
    fa[s] = a2;
    fb[s] = b2;
    if (p == root) {
      parent[s] = s;
      return s;
    }
    const vid gp = parent[p];
    if (left[gp] == p) {
      left[gp] = s;
    } else {
      right[gp] = s;
    }
    parent[s] = gp;
    return kNoVertex;
  };

  std::span<std::uint8_t> raked = ws.alloc<std::uint8_t>(n);
  ex.parallel_for(n, [&](std::size_t v) { raked[v] = 0; });
  while (leaves.size() > 1) {
    // Sub-round A: odd-indexed leaves that are left children.
    // Sub-round B: odd-indexed leaves that are right children.
    // (Odd and even leaves alternate in tree order, so the sibling
    // chains touched by two simultaneous rakes never overlap.)
    for (const bool want_left : {true, false}) {
      std::vector<vid> batch;
      for (std::size_t i = 1; i < leaves.size(); i += 2) {
        const vid l = leaves[i];
        if (raked[l]) continue;
        const bool is_left = left[parent[l]] == l;
        if (is_left == want_left) batch.push_back(l);
      }
      Padded<vid> new_root{kNoVertex};
      ex.parallel_for(batch.size(), [&](std::size_t k) {
        const vid r = rake(batch[k]);
        if (r != kNoVertex) new_root.value = r;
        raked[batch[k]] = 1;
      });
      if (new_root.value != kNoVertex) root = new_root.value;
    }
    // Compact the surviving leaves, preserving order.
    std::vector<vid> next;
    next.reserve(leaves.size() / 2 + 1);
    for (const vid l : leaves) {
      if (!raked[l]) next.push_back(l);
    }
    leaves = std::move(next);
  }

  const vid last = leaves[0];
  return fa[last] * tree.value[last] + fb[last];
}

std::uint64_t evaluate_tree_contraction(Executor& ex,
                                        const ExpressionTree& tree) {
  Workspace ws;
  return evaluate_tree_contraction(ex, ws, tree);
}

ExpressionTree random_expression_tree(vid leaves, std::uint64_t seed) {
  if (leaves < 1) {
    throw std::invalid_argument("random_expression_tree: leaves >= 1");
  }
  Xoshiro256 rng(splitmix64(seed ^ 0x74726565ULL));
  ExpressionTree t;
  const vid n = 2 * leaves - 1;
  t.left.assign(n, kNoVertex);
  t.right.assign(n, kNoVertex);
  t.parent.assign(n, kNoVertex);
  t.op.assign(n, Op::kAdd);
  t.value.assign(n, 0);
  // Grow by random leaf expansion: pick a leaf, give it two children.
  std::vector<vid> frontier{0};
  vid next_node = 1;
  t.root = 0;
  t.parent[0] = 0;
  for (vid grown = 1; grown < leaves; ++grown) {
    const std::size_t pick = rng.below(frontier.size());
    const vid v = frontier[pick];
    frontier[pick] = frontier.back();
    frontier.pop_back();
    const vid a = next_node++;
    const vid b = next_node++;
    t.left[v] = a;
    t.right[v] = b;
    t.parent[a] = v;
    t.parent[b] = v;
    t.op[v] = rng.below(2) == 0 ? Op::kAdd : Op::kMul;
    frontier.push_back(a);
    frontier.push_back(b);
  }
  for (vid v = 0; v < n; ++v) {
    if (t.is_leaf(v)) t.value[v] = rng.below(1000);
  }
  return t;
}

ExpressionTree chain_expression_tree(vid leaves, std::uint64_t seed) {
  if (leaves < 1) {
    throw std::invalid_argument("chain_expression_tree: leaves >= 1");
  }
  Xoshiro256 rng(splitmix64(seed ^ 0x636861696eULL));
  ExpressionTree t;
  const vid n = 2 * leaves - 1;
  t.left.assign(n, kNoVertex);
  t.right.assign(n, kNoVertex);
  t.parent.assign(n, kNoVertex);
  t.op.assign(n, Op::kAdd);
  t.value.assign(n, 0);
  t.root = 0;
  t.parent[0] = 0;
  // Internal spine 0..leaves-2; each spine node's right child is a
  // leaf, its left child the next spine node (the last gets a leaf).
  vid next_leaf = leaves - 1;  // leaves occupy [leaves-1, 2*leaves-1)
  for (vid s = 0; s + 1 < leaves; ++s) {
    const vid leaf = next_leaf++;
    t.right[s] = leaf;
    t.parent[leaf] = s;
    t.op[s] = rng.below(2) == 0 ? Op::kAdd : Op::kMul;
    const vid child = (s + 2 < leaves) ? s + 1 : next_leaf++;
    t.left[s] = child;
    t.parent[child] = s;
  }
  if (leaves == 1) {
    // Single node tree.
    t.left.assign(1, kNoVertex);
    t.right.assign(1, kNoVertex);
  }
  for (vid v = 0; v < n; ++v) {
    if (t.is_leaf(v)) t.value[v] = rng.below(1000);
  }
  return t;
}

}  // namespace parbcc
