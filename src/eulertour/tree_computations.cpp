#include "eulertour/tree_computations.hpp"

#include <atomic>
#include <stdexcept>

#include "scan/scan.hpp"
#include "util/concat.hpp"

namespace parbcc {
namespace {

/// Narrow levels are processed serially: a traversal spanning tree of a
/// sparse graph can be DFS-deep (hundreds of thousands of levels of a
/// few vertices each), and paying a fork/barrier per level would
/// dominate.  Wide levels — the BFS trees TV-filter uses — still fan
/// out across threads.
constexpr std::size_t kSerialLevelCutoff = 2048;

}  // namespace

ChildrenCsr build_children(Executor& ex, Workspace& ws,
                           std::span<const vid> parent, vid root,
                           Trace* trace) {
  TraceSpan span(trace, "build_children");
  const std::size_t n = parent.size();
  ChildrenCsr out;
  out.offsets.assign(n + 1, 0);
  if (n == 0) return out;

  // One workspace cursor array serves both the degree count and the
  // scatter cursor; cross-thread increments go through atomic_ref.
  Workspace::Frame frame(ws);
  std::span<eid> cursor = ws.alloc<eid>(n);
  ex.parallel_for(n, [&](std::size_t v) { cursor[v] = 0; });
  ex.parallel_for(n, [&](std::size_t v) {
    if (v != root) {
      std::atomic_ref(cursor[parent[v]]).fetch_add(1,
                                                   std::memory_order_relaxed);
    }
  });

  const eid total =
      exclusive_scan(ex, ws, cursor.data(), out.offsets.data(), n, eid{0});
  out.offsets[n] = total;

  out.child.resize(total);
  ex.parallel_for(n, [&](std::size_t v) { cursor[v] = out.offsets[v]; });
  ex.parallel_for(n, [&](std::size_t v) {
    if (v != root) {
      const eid slot = std::atomic_ref(cursor[parent[v]])
                           .fetch_add(1, std::memory_order_relaxed);
      out.child[slot] = static_cast<vid>(v);
    }
  });
  return out;
}

ChildrenCsr build_children(Executor& ex, std::span<const vid> parent,
                           vid root) {
  Workspace ws;
  return build_children(ex, ws, parent, root);
}

LevelStructure build_levels(Executor& ex, const ChildrenCsr& children,
                            vid root, Trace* trace) {
  TraceSpan span(trace, "build_levels");
  const std::size_t n = children.offsets.size() - 1;
  LevelStructure out;
  out.depth.assign(n, kNoVertex);
  if (n == 0) {
    out.level_offsets.assign(1, 0);
    return out;
  }

  // Every vertex enters `order` exactly once (each appears in one
  // child list), so the array is sized upfront and levels append at
  // the `filled` cursor — the parallel path can then scatter straight
  // into its final slots.
  out.order.resize(n);
  out.level_offsets.push_back(0);
  out.depth[root] = 0;
  out.order[0] = root;
  std::size_t filled = 1;

  // Top-down frontier sweep over the child lists.  The frontier for
  // depth d+1 is gathered from per-thread buffers with a prefix-summed
  // parallel scatter; the concatenation order inside a level is
  // irrelevant to every consumer.
  std::size_t level_begin = 0;
  vid depth = 0;
  const int p = ex.threads();
  std::vector<std::vector<vid>> local(static_cast<std::size_t>(p));
  std::vector<std::size_t> concat_offset(static_cast<std::size_t>(p) + 1);
  while (level_begin < filled) {
    const std::size_t level_end = filled;
    out.level_offsets.push_back(static_cast<eid>(level_end));
    ++depth;

    const std::size_t width = level_end - level_begin;
    if (p == 1 || width < kSerialLevelCutoff) {
      for (std::size_t k = 0; k < width; ++k) {
        const vid v = out.order[level_begin + k];
        for (const vid c : children.children(v)) {
          out.depth[c] = depth;
          out.order[filled++] = c;
        }
      }
    } else {
      for (auto& buf : local) buf.clear();
      ex.parallel_blocks(width,
                         [&](int tid, std::size_t begin, std::size_t end) {
                           auto& buf = local[static_cast<std::size_t>(tid)];
                           for (std::size_t k = begin; k < end; ++k) {
                             const vid v = out.order[level_begin + k];
                             for (const vid c : children.children(v)) {
                               out.depth[c] = depth;
                               buf.push_back(c);
                             }
                           }
                         });
      filled += concat_thread_buffers(
          ex,
          [&](int t) -> const std::vector<vid>& {
            return local[static_cast<std::size_t>(t)];
          },
          std::span<std::size_t>(concat_offset), out.order.data() + filled);
    }
    level_begin = level_end;
  }
  // The loop pushed one boundary per processed level; the final
  // boundary (== n for a tree) was pushed when the last non-empty
  // level produced no children.
  out.num_levels = static_cast<vid>(out.level_offsets.size() - 1);
  if (filled != n) {
    throw std::invalid_argument(
        "build_levels: parent structure does not span all vertices");
  }
  return out;
}

void preorder_and_size(Executor& ex, const ChildrenCsr& children,
                       const LevelStructure& levels, vid root,
                       std::vector<vid>& pre, std::vector<vid>& sub,
                       Trace* trace) {
  TraceSpan span(trace, "preorder_size");
  const std::size_t n = children.offsets.size() - 1;
  pre.assign(n, 0);
  sub.assign(n, 1);
  if (n == 0) return;

  // Bottom-up: subtree sizes, one level at a time (children are always
  // exactly one level below, so each sweep reads finished values).
  for (vid d = levels.num_levels; d-- > 0;) {
    const auto level = levels.level(d);
    const auto body = [&](std::size_t k) {
      const vid v = level[k];
      vid size = 1;
      for (const vid c : children.children(v)) size += sub[c];
      sub[v] = size;
    };
    if (level.size() < kSerialLevelCutoff) {
      for (std::size_t k = 0; k < level.size(); ++k) body(k);
    } else {
      ex.parallel_for(level.size(), body);
    }
  }

  // Top-down: preorder numbers.  A child's number is its parent's plus
  // one plus the sizes of the siblings that precede it.
  pre[root] = 1;
  for (vid d = 0; d < levels.num_levels; ++d) {
    const auto level = levels.level(d);
    const auto body = [&](std::size_t k) {
      const vid v = level[k];
      vid running = pre[v] + 1;
      for (const vid c : children.children(v)) {
        pre[c] = running;
        running += sub[c];
      }
    };
    if (level.size() < kSerialLevelCutoff) {
      for (std::size_t k = 0; k < level.size(); ++k) body(k);
    } else {
      ex.parallel_for(level.size(), body);
    }
  }
}

namespace {

template <class Combine>
void subtree_combine(Executor& ex, const ChildrenCsr& children,
                     const LevelStructure& levels, vid* val,
                     Combine combine) {
  for (vid d = levels.num_levels; d-- > 0;) {
    const auto level = levels.level(d);
    const auto body = [&](std::size_t k) {
      const vid v = level[k];
      vid acc = val[v];
      for (const vid c : children.children(v)) acc = combine(acc, val[c]);
      val[v] = acc;
    };
    if (level.size() < kSerialLevelCutoff) {
      for (std::size_t k = 0; k < level.size(); ++k) body(k);
    } else {
      ex.parallel_for(level.size(), body);
    }
  }
}

}  // namespace

void subtree_min(Executor& ex, const ChildrenCsr& children,
                 const LevelStructure& levels, vid* val) {
  subtree_combine(ex, children, levels, val,
                  [](vid a, vid b) { return a < b ? a : b; });
}

void subtree_max(Executor& ex, const ChildrenCsr& children,
                 const LevelStructure& levels, vid* val) {
  subtree_combine(ex, children, levels, val,
                  [](vid a, vid b) { return a > b ? a : b; });
}

DfsTourPositions dfs_tour_positions(Executor& ex,
                                    const RootedSpanningTree& tree,
                                    std::span<const vid> depth) {
  const std::size_t n = tree.parent.size();
  DfsTourPositions out;
  out.down.assign(n, kNoVertex);
  out.up.assign(n, kNoVertex);
  // Count of arcs before the down-arc of v: preorder predecessors that
  // are not ancestors contribute both their arcs, non-root ancestors
  // contribute only their down arc.  depth(v) counts ancestors
  // including the root, which has no arcs.
  ex.parallel_for(n, [&](std::size_t v) {
    if (v == tree.root) return;
    const vid d = depth[v];
    const vid before = 2 * (tree.pre[v] - 1 - d) + (d - 1);
    out.down[v] = before;
    out.up[v] = before + 2 * tree.sub[v] - 1;
  });
  return out;
}

}  // namespace parbcc
