#pragma once

#include <cstdint>
#include <vector>

#include "util/thread_pool.hpp"
#include "util/types.hpp"
#include "util/workspace.hpp"

/// \file tree_contraction.hpp
/// Parallel expression evaluation by tree contraction (leaf raking) —
/// the tree-computation substrate the paper cites from Bader, Sreshta
/// and Weisse-Bernstein (HiPC 2002, reference [2]).
///
/// The input is a full binary expression tree (every internal node has
/// exactly two children) over the ring Z/2^64 with + and *.  Each
/// node carries an affine label f(x) = a*x + b (initially the
/// identity); raking a leaf folds its value through its parent's
/// operation into its sibling's label, so the tree halves its leaves
/// every round and evaluates in O(log n) barrier-synchronised rounds.
/// The classic schedule — odd-numbered left-child leaves first, then
/// odd-numbered right-child leaves — makes every rake in a sub-round
/// touch disjoint nodes, so no synchronisation beyond the round
/// barrier is needed.

namespace parbcc {

struct ExpressionTree {
  enum class Op : std::uint8_t { kAdd, kMul };

  /// kNoVertex for leaves.
  std::vector<vid> left;
  std::vector<vid> right;
  std::vector<vid> parent;  // parent[root] == root
  std::vector<Op> op;       // meaningful for internal nodes
  std::vector<std::uint64_t> value;  // meaningful for leaves
  vid root = 0;

  vid size() const { return static_cast<vid>(left.size()); }
  bool is_leaf(vid v) const { return left[v] == kNoVertex; }
};

/// Straightforward iterative post-order evaluation (the baseline).
std::uint64_t evaluate_sequential(const ExpressionTree& tree);

/// Parallel evaluation by rake-based tree contraction.  The mutable
/// shape copy and affine labels are Workspace scratch.
std::uint64_t evaluate_tree_contraction(Executor& ex, Workspace& ws,
                                        const ExpressionTree& tree);
std::uint64_t evaluate_tree_contraction(Executor& ex,
                                        const ExpressionTree& tree);

/// Random full binary expression tree with `leaves` leaves (ops and
/// values seeded deterministically).
ExpressionTree random_expression_tree(vid leaves, std::uint64_t seed);

/// Left-leaning caterpillar ("chain") tree: the depth worst case.
ExpressionTree chain_expression_tree(vid leaves, std::uint64_t seed);

}  // namespace parbcc
