#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "eulertour/tree_computations.hpp"
#include "scan/scan.hpp"
#include "util/thread_pool.hpp"
#include "util/workspace.hpp"

/// \file tree_aggregates.hpp
/// Group-valued tree computations via the analytic DFS Euler tour —
/// the textbook "tour + prefix sums" applications (JáJá §3.2) that
/// complement the min/max level sweeps in tree_computations.hpp:
///
///  - subtree_sums: weight of every subtree, from one prefix sum over
///    the tour (down-arcs carry +w(v), up-arcs carry -... actually the
///    standard trick: scatter w(v) at v's down position, prefix-sum,
///    and subtract the tour prefix at the subtree boundary);
///  - root_path_sums: sum of weights on the path root..v, using the
///    +w / -w arc encoding.
///
/// Both run as two O(n) parallel passes plus one scan; because the
/// positions come from dfs_tour_positions they need no list ranking.
/// Scatter buffers and scan prefixes are Workspace scratch.

namespace parbcc {

/// out[v] = sum of weights[w] over w in subtree(v).
/// (Group trick: lay weights out in preorder; subtree(v) is the
/// contiguous interval [pre(v), pre(v)+sub(v)), so a prefix sum gives
/// every subtree total by subtraction.)
template <class T>
std::vector<T> subtree_sums(Executor& ex, Workspace& ws,
                            const RootedSpanningTree& tree,
                            std::span<const T> weights) {
  const std::size_t n = tree.parent.size();
  std::vector<T> out(n);
  Workspace::Frame frame(ws);
  std::span<T> by_pre = ws.alloc<T>(n + 1);
  ex.parallel_for(n + 1, [&](std::size_t i) { by_pre[i] = T{}; });
  ex.parallel_for(n, [&](std::size_t v) {
    by_pre[tree.pre[v] - 1] = weights[v];
  });
  // Inclusive scan, then interval subtraction.
  std::span<T> prefix = ws.alloc<T>(n + 1);
  exclusive_scan(ex, ws, by_pre.data(), prefix.data(), n + 1, T{});
  ex.parallel_for(n, [&](std::size_t v) {
    const std::size_t begin = tree.pre[v] - 1;
    const std::size_t end = begin + tree.sub[v];
    out[v] = prefix[end] - prefix[begin];
  });
  return out;
}

template <class T>
std::vector<T> subtree_sums(Executor& ex, const RootedSpanningTree& tree,
                            std::span<const T> weights) {
  Workspace ws;
  return subtree_sums(ex, ws, tree, weights);
}

/// out[v] = sum of weights[w] over w on the root..v tree path
/// (inclusive of both ends).
/// (Arc encoding on the Euler tour: entering v adds w(v), leaving
/// subtracts it; the prefix at v's down arc is the path sum.)
template <class T>
std::vector<T> root_path_sums(Executor& ex, Workspace& ws,
                              const RootedSpanningTree& tree,
                              std::span<const vid> depth,
                              std::span<const T> weights) {
  const std::size_t n = tree.parent.size();
  std::vector<T> out(n);
  if (n == 0) return out;
  const DfsTourPositions pos = dfs_tour_positions(ex, tree, depth);
  const std::size_t arcs = 2 * (n - 1);
  Workspace::Frame frame(ws);
  std::span<T> arc_val = ws.alloc<T>(arcs);
  ex.parallel_for(arcs, [&](std::size_t a) { arc_val[a] = T{}; });
  ex.parallel_for(n, [&](std::size_t v) {
    if (v == tree.root) return;
    arc_val[pos.down[v]] = weights[v];
    arc_val[pos.up[v]] = T{} - weights[v];
  });
  std::span<T> prefix = ws.alloc<T>(arcs);
  inclusive_scan(ex, ws, arc_val.data(), prefix.data(), arcs, T{});
  ex.parallel_for(n, [&](std::size_t v) {
    if (v == tree.root) {
      out[v] = weights[v];
    } else {
      out[v] = prefix[pos.down[v]] + weights[tree.root];
    }
  });
  return out;
}

template <class T>
std::vector<T> root_path_sums(Executor& ex, const RootedSpanningTree& tree,
                              std::span<const vid> depth,
                              std::span<const T> weights) {
  Workspace ws;
  return root_path_sums(ex, ws, tree, depth, weights);
}

}  // namespace parbcc
