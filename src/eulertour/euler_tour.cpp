#include "eulertour/euler_tour.hpp"

#include <atomic>
#include <stdexcept>

#include "listrank/list_ranking.hpp"
#include "scan/scan.hpp"
#include "sort/sample_sort.hpp"
#include "util/timer.hpp"

namespace parbcc {
namespace {

/// Per-arc source endpoints, materialized once per circuit build:
/// ends[a] is the tail of arc a and ends[a ^ 1] its head.  Every sweep
/// below walks this flat array instead of chasing the
/// edges[tree_edges[a >> 1]] double indirection per access.
std::span<vid> materialize_arc_ends(Executor& ex, Workspace& ws,
                                    std::span<const Edge> edges,
                                    std::span<const eid> tree_edges) {
  std::span<vid> ends = ws.alloc<vid>(2 * tree_edges.size());
  ex.parallel_for(tree_edges.size(), [&](std::size_t t) {
    const Edge& e = edges[tree_edges[t]];
    ends[2 * t] = e.u;
    ends[2 * t + 1] = e.v;
  });
  return ends;
}

}  // namespace

EulerCircuit build_euler_circuit(Executor& ex, Workspace& ws, vid n,
                                 std::span<const Edge> edges,
                                 std::span<const eid> tree_edges, vid root,
                                 ArcSort sort, Trace* trace) {
  const std::size_t num_arcs = 2 * tree_edges.size();
  EulerCircuit out;
  if (num_arcs == 0) return out;

  Workspace::Frame frame(ws);
  std::span<const vid> ends = materialize_arc_ends(ex, ws, edges, tree_edges);

  // --- Group arcs by source vertex. ----------------------------------
  // offsets[v] .. offsets[v+1] delimit v's arc group in sorted_arcs.
  std::span<eid> offsets = ws.alloc<eid>(static_cast<std::size_t>(n) + 1);
  {
    std::span<eid> deg = ws.alloc<eid>(n);
    ex.parallel_for(n, [&](std::size_t v) { deg[v] = 0; });
    ex.parallel_for(num_arcs, [&](std::size_t a) {
      std::atomic_ref(deg[ends[a]]).fetch_add(1, std::memory_order_relaxed);
    });
    const eid total =
        exclusive_scan(ex, ws, deg.data(), offsets.data(), n, eid{0});
    offsets[n] = total;
  }

  std::span<vid> sorted_arcs = ws.alloc<vid>(num_arcs);
  TraceSpan sort_span(trace, "arc_sort");
  if (sort == ArcSort::kSampleSort) {
    // The paper's route: sort the arcs with the parallel sample sort.
    // Key = (source vertex, arc id); any within-group order yields a
    // valid circular adjacency.
    std::span<std::uint64_t> items = ws.alloc<std::uint64_t>(num_arcs);
    ex.parallel_for(num_arcs, [&](std::size_t a) {
      items[a] = (static_cast<std::uint64_t>(ends[a]) << 32) | a;
    });
    sample_sort(ex, ws, items.data(), num_arcs);
    ex.parallel_for(num_arcs, [&](std::size_t i) {
      sorted_arcs[i] = static_cast<vid>(items[i] & 0xffffffffu);
    });
  } else {
    // Bucket scatter; order within a group is arrival order.
    std::span<eid> cursor = ws.alloc<eid>(n);
    ex.parallel_for(n, [&](std::size_t v) { cursor[v] = offsets[v]; });
    ex.parallel_for(num_arcs, [&](std::size_t a) {
      const eid slot = std::atomic_ref(cursor[ends[a]])
                           .fetch_add(1, std::memory_order_relaxed);
      sorted_arcs[slot] = static_cast<vid>(a);
    });
  }

  sort_span.close();

  std::span<eid> arc_pos = ws.alloc<eid>(num_arcs);
  ex.parallel_for(num_arcs, [&](std::size_t i) {
    arc_pos[sorted_arcs[i]] = static_cast<eid>(i);
  });

  // --- Successor: succ(u->v) = arc after (v->u) in v's circular group.
  out.succ.resize(num_arcs);
  ex.parallel_for(num_arcs, [&](std::size_t a) {
    const vid twin = static_cast<vid>(a ^ 1);
    const vid v = ends[twin];
    const eid idx = arc_pos[twin];
    const eid next = (idx + 1 == offsets[v + 1]) ? offsets[v] : idx + 1;
    out.succ[a] = sorted_arcs[next];
  });

  // --- Break the circuit at the root. ---------------------------------
  if (offsets[root + 1] == offsets[root]) {
    throw std::invalid_argument(
        "build_euler_circuit: root has no incident tree edge");
  }
  out.head = sorted_arcs[offsets[root]];
  const vid last_out = sorted_arcs[offsets[root + 1] - 1];
  out.succ[last_out ^ 1] = kNoVertex;  // the tour's final arc enters root
  return out;
}

EulerCircuit build_euler_circuit(Executor& ex, vid n,
                                 std::span<const Edge> edges,
                                 std::span<const eid> tree_edges, vid root,
                                 ArcSort sort) {
  Workspace ws;
  return build_euler_circuit(ex, ws, n, edges, tree_edges, root, sort);
}

RootedSpanningTree root_tree_via_euler_tour(Executor& ex, Workspace& ws,
                                            vid n, std::span<const Edge> edges,
                                            std::span<const eid> tree_edges,
                                            vid root, ListRanker ranker,
                                            ArcSort sort,
                                            EulerTourTimes* times,
                                            Trace* trace) {
  if (n >= 1 && tree_edges.size() + 1 != n) {
    throw std::invalid_argument(
        "root_tree_via_euler_tour: tree must span all vertices");
  }
  RootedSpanningTree tree;
  tree.root = root;
  tree.parent.assign(n, kNoVertex);
  tree.parent_edge.assign(n, kNoEdge);
  tree.pre.assign(n, 0);
  tree.sub.assign(n, 0);
  if (n == 0) return tree;
  tree.parent[root] = root;
  tree.pre[root] = 1;
  tree.sub[root] = n;
  if (n == 1) return tree;

  Timer timer;
  TraceSpan circuit_span(trace, "euler_tour");
  const EulerCircuit circuit =
      build_euler_circuit(ex, ws, n, edges, tree_edges, root, sort, trace);
  circuit_span.close();
  if (times) times->circuit = timer.lap();
  const std::size_t num_arcs = 2 * tree_edges.size();

  TraceSpan rooting_span(trace, "root_tree");
  Workspace::Frame frame(ws);
  std::span<const vid> ends = materialize_arc_ends(ex, ws, edges, tree_edges);
  std::span<vid> rank = ws.alloc<vid>(num_arcs);
  {
    TraceSpan span(trace, "list_ranking");
    switch (ranker) {
      case ListRanker::kSequential:
        list_rank_sequential(circuit.succ.data(), rank.data(), num_arcs,
                             circuit.head);
        break;
      case ListRanker::kWyllie:
        list_rank_wyllie(ex, ws, circuit.succ.data(), rank.data(), num_arcs,
                         circuit.head);
        break;
      case ListRanker::kHelmanJaja:
        list_rank_hj(ex, ws, circuit.succ.data(), rank.data(), num_arcs,
                     circuit.head);
        break;
    }
  }
  TraceSpan values_span(trace, "tree_values");

  // An arc is a "descending" (tree) arc iff it is ranked before its twin.
  // Its head's parent, preorder and subtree size follow from the ranks.
  ex.parallel_for(tree_edges.size(), [&](std::size_t t) {
    const vid down = rank[2 * t] < rank[2 * t + 1] ? static_cast<vid>(2 * t)
                                                   : static_cast<vid>(2 * t + 1);
    const vid child = ends[static_cast<std::size_t>(down) ^ 1];
    tree.parent[child] = ends[down];
    tree.parent_edge[child] = tree_edges[t];
    // sub = (rank(up) - rank(down) + 1) / 2: the arcs strictly between
    // the two are exactly the 2(sub-1) arcs inside the subtree.
    tree.sub[child] =
        (rank[static_cast<std::size_t>(down) ^ 1] - rank[down] + 1) / 2;
  });

  // Preorder = 1 + number of descending arcs ranked at or before the
  // vertex's down arc: scatter descending flags into tour order, scan.
  std::span<vid> by_rank = ws.alloc<vid>(num_arcs);
  ex.parallel_for(num_arcs, [&](std::size_t a) {
    const bool down = rank[a] < rank[a ^ 1];
    by_rank[rank[a]] = down ? 1 : 0;
  });
  inclusive_scan(ex, ws, by_rank.data(), by_rank.data(), num_arcs, vid{0});
  ex.parallel_for(tree_edges.size(), [&](std::size_t t) {
    const vid down = rank[2 * t] < rank[2 * t + 1] ? static_cast<vid>(2 * t)
                                                   : static_cast<vid>(2 * t + 1);
    tree.pre[ends[static_cast<std::size_t>(down) ^ 1]] = by_rank[rank[down]] + 1;
  });
  if (times) times->rooting = timer.lap();
  return tree;
}

RootedSpanningTree root_tree_via_euler_tour(Executor& ex, vid n,
                                            std::span<const Edge> edges,
                                            std::span<const eid> tree_edges,
                                            vid root, ListRanker ranker,
                                            ArcSort sort,
                                            EulerTourTimes* times) {
  Workspace ws;
  return root_tree_via_euler_tour(ex, ws, n, edges, tree_edges, root, ranker,
                                  sort, times);
}

}  // namespace parbcc
