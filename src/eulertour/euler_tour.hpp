#pragma once

#include <span>
#include <vector>

#include "eulertour/tree_computations.hpp"
#include "graph/edge_list.hpp"
#include "util/thread_pool.hpp"
#include "util/trace.hpp"
#include "util/types.hpp"
#include "util/workspace.hpp"

/// \file euler_tour.hpp
/// Classic Euler-tour construction and tree rooting — TV steps 2 and 3
/// as TV-SMP runs them (paper §3.1).
///
/// The circuit is built over the 2(n-1) arcs of the spanning tree: arc
/// 2t is tree_edges[t] traversed u->v and arc 2t+1 is its anti-parallel
/// mate, so twin(a) == a ^ 1.  The paper's implementation discovers the
/// mates by sample-sorting arcs keyed (min, max); `kSampleSort` keeps
/// that cost in the measured pipeline (opt-in, for the paper-fidelity
/// path), while `kCountingSort` — the default — is the cheap bucket
/// scatter.  Both yield valid circuits and identical rooted trees; only
/// the within-group arc order differs.  Rooting then ranks the circuit
/// with a list-ranking algorithm and reads preorder numbers and subtree
/// sizes off the arc ranks.

namespace parbcc {

enum class ListRanker { kSequential, kWyllie, kHelmanJaja };
enum class ArcSort { kSampleSort, kCountingSort };

/// The Euler circuit as a successor list over arc ids [0, 2T).
struct EulerCircuit {
  /// succ[a] = next arc; the circuit is broken at the root so the arc
  /// ending the tour has succ == kNoVertex.
  std::vector<vid> succ;
  /// First arc of the tour (an arc leaving `root`).
  vid head = kNoVertex;
};

/// Build the circuit for the spanning tree given by `tree_edges`
/// (indices into `edges`), rooted/broken at `root`.
/// Requires the tree to span all n vertices (T == n-1 >= 1).
/// `trace`, when given, gets an "arc_sort" sub-span around the mate
/// discovery (the cost the paper's §3.1 pipeline is dominated by).
EulerCircuit build_euler_circuit(Executor& ex, Workspace& ws, vid n,
                                 std::span<const Edge> edges,
                                 std::span<const eid> tree_edges, vid root,
                                 ArcSort sort = ArcSort::kCountingSort,
                                 Trace* trace = nullptr);
EulerCircuit build_euler_circuit(Executor& ex, vid n,
                                 std::span<const Edge> edges,
                                 std::span<const eid> tree_edges, vid root,
                                 ArcSort sort = ArcSort::kCountingSort);

/// Wall-clock split of the rooting pipeline, matching the paper's
/// Euler-tour vs Root-tree bars in Fig. 4.
struct EulerTourTimes {
  double circuit = 0;   // arc sort + successor construction
  double rooting = 0;   // list ranking + preorder/size derivation
};

/// Full TV-SMP rooting pipeline: circuit, list ranking, then parent /
/// preorder / subtree size from arc ranks.  With a `trace`, the
/// pipeline opens the paper-step spans itself — "euler_tour" (with the
/// circuit's sub-spans) and "root_tree" (nesting "list_ranking" and
/// "tree_values") — so drivers need no stopwatch around this call.
RootedSpanningTree root_tree_via_euler_tour(
    Executor& ex, Workspace& ws, vid n, std::span<const Edge> edges,
    std::span<const eid> tree_edges, vid root,
    ListRanker ranker = ListRanker::kHelmanJaja,
    ArcSort sort = ArcSort::kCountingSort, EulerTourTimes* times = nullptr,
    Trace* trace = nullptr);
RootedSpanningTree root_tree_via_euler_tour(
    Executor& ex, vid n, std::span<const Edge> edges,
    std::span<const eid> tree_edges, vid root,
    ListRanker ranker = ListRanker::kHelmanJaja,
    ArcSort sort = ArcSort::kCountingSort, EulerTourTimes* times = nullptr);

}  // namespace parbcc
