#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/thread_pool.hpp"
#include "util/types.hpp"
#include "util/workspace.hpp"

/// \file list_ranking.hpp
/// List ranking: given a linked list over nodes [0, n) described by a
/// successor array (tail's successor = kNoVertex), compute each node's
/// distance from the head (head gets rank 0).
///
/// This is the primitive TV-SMP leans on to root the spanning tree from
/// its Euler circuit, and — per the paper — a major source of parallel
/// overhead: the traversal order has no spatial locality.  Three
/// implementations are provided so the benchmarks can show exactly
/// that trade-off:
///
///  - `list_rank_sequential`: the pointer-chasing baseline, O(n).
///  - `list_rank_wyllie`: textbook pointer jumping, O(n log n) work.
///  - `list_rank_hj`: Helman-JáJá sparse ruling set, O(n) work; the
///    variant used inside TV-SMP.
///
/// All nodes in [0, n) must lie on the single list starting at `head`.
/// The parallel variants draw their O(n) working arrays from the
/// Workspace; the Executor-only overloads bring their own arena.

namespace parbcc {

void list_rank_sequential(const vid* succ, vid* rank, std::size_t n, vid head);

void list_rank_wyllie(Executor& ex, Workspace& ws, const vid* succ, vid* rank,
                      std::size_t n, vid head);
void list_rank_wyllie(Executor& ex, const vid* succ, vid* rank, std::size_t n,
                      vid head);

void list_rank_hj(Executor& ex, Workspace& ws, const vid* succ, vid* rank,
                  std::size_t n, vid head,
                  std::uint64_t seed = 0x9e3779b97f4a7c15ULL);
void list_rank_hj(Executor& ex, const vid* succ, vid* rank, std::size_t n,
                  vid head, std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

/// Randomized independent-set contraction (Anderson-Miller style):
/// every round each node flips a coin, and nodes whose predecessor
/// flipped the other way splice themselves out (an independent set, so
/// all splices commute); ~n/4 nodes leave per round, O(n) total work,
/// O(log n) rounds.  The removal log replays in reverse to assign
/// ranks.  A third PRAM-era design point next to Wyllie and
/// Helman-JáJá for the primitive benchmarks.
void list_rank_independent_set(Executor& ex, Workspace& ws, const vid* succ,
                               vid* rank, std::size_t n, vid head,
                               std::uint64_t seed = 0x5bd1e995c6b7ULL);
void list_rank_independent_set(Executor& ex, const vid* succ, vid* rank,
                               std::size_t n, vid head,
                               std::uint64_t seed = 0x5bd1e995c6b7ULL);

}  // namespace parbcc
