#include "listrank/list_ranking.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "util/bitvector.hpp"
#include "util/rng.hpp"

namespace parbcc {

void list_rank_sequential(const vid* succ, vid* rank, std::size_t n,
                          vid head) {
  if (n == 0) return;
  vid v = head;
  for (std::size_t r = 0; r < n; ++r) {
    rank[v] = static_cast<vid>(r);
    v = succ[v];
    if (v == kNoVertex) {
      if (r + 1 != n) {
        throw std::invalid_argument(
            "list_rank_sequential: list does not cover all nodes");
      }
      return;
    }
  }
  throw std::invalid_argument("list_rank_sequential: list has a cycle");
}

void list_rank_wyllie(Executor& ex, const vid* succ, vid* rank, std::size_t n,
                      vid head) {
  if (n == 0) return;
  if (n == 1) {
    rank[head] = 0;
    return;
  }
  // Pointer jumping computes distance-to-tail; two buffers per array
  // keep every round race-free (reads from generation g, writes g+1).
  std::vector<vid> dist_a(n), dist_b(n);
  std::vector<vid> next_a(succ, succ + n), next_b(n);
  ex.parallel_for(n, [&](std::size_t i) {
    dist_a[i] = (succ[i] == kNoVertex) ? 0 : 1;
  });

  vid* dist = dist_a.data();
  vid* dist_nx = dist_b.data();
  vid* next = next_a.data();
  vid* next_nx = next_b.data();

  // ceil(log2(n)) rounds suffice: the hop length doubles every round.
  for (std::size_t span = 1; span < n; span *= 2) {
    ex.parallel_for(n, [&](std::size_t i) {
      const vid nx = next[i];
      if (nx == kNoVertex) {
        dist_nx[i] = dist[i];
        next_nx[i] = kNoVertex;
      } else {
        dist_nx[i] = dist[i] + dist[nx];
        next_nx[i] = next[nx];
      }
    });
    std::swap(dist, dist_nx);
    std::swap(next, next_nx);
  }

  const vid total = dist[head];  // = n - 1: head's distance to the tail
  ex.parallel_for(n, [&](std::size_t i) {
    rank[i] = total - dist[i];
  });
}

void list_rank_hj(Executor& ex, const vid* succ, vid* rank, std::size_t n,
                  vid head, std::uint64_t seed) {
  if (n == 0) return;
  const int p = ex.threads();
  // Target sublists: enough to balance the walks even when splitters
  // land unevenly; the classic recommendation is Theta(p log n).
  std::size_t want = static_cast<std::size_t>(p) * 16 + 8;
  want = std::min(want, n);
  if (p == 1 || n < 2048) {
    list_rank_sequential(succ, rank, n, head);
    return;
  }

  // --- Select splitters (deterministic from `seed`). -----------------
  BitVector is_splitter(n);
  std::vector<vid> splitters;
  splitters.reserve(want + 1);
  is_splitter.set(head);
  splitters.push_back(head);
  for (std::size_t k = 0; splitters.size() < want; ++k) {
    const vid v = static_cast<vid>(splitmix64(seed + k) % n);
    if (!is_splitter.get(v)) {
      is_splitter.set(v);
      splitters.push_back(v);
    }
    if (k > 4 * want) break;  // collisions ate the budget; fewer is fine
  }
  const std::size_t s = splitters.size();

  // splitter_index[v] = k for splitters[k] == v.
  std::vector<vid> splitter_index(n, kNoVertex);
  for (std::size_t k = 0; k < s; ++k) {
    splitter_index[splitters[k]] = static_cast<vid>(k);
  }

  // --- Parallel sublist walks. ---------------------------------------
  // Each splitter owns the chain up to (excluding) the next splitter.
  std::vector<vid> sublist(n);      // sublist id per node
  std::vector<vid> local_rank(n);   // rank within the sublist
  std::vector<vid> next_splitter(s, kNoVertex);
  std::vector<vid> sublist_len(s, 0);

  ex.parallel_for_dynamic(s, 1, [&](std::size_t k) {
    vid v = splitters[k];
    vid local = 0;
    for (;;) {
      sublist[v] = static_cast<vid>(k);
      local_rank[v] = local++;
      const vid w = succ[v];
      if (w == kNoVertex) {
        next_splitter[k] = kNoVertex;
        break;
      }
      if (is_splitter.get(w)) {
        next_splitter[k] = w;
        break;
      }
      v = w;
    }
    sublist_len[k] = local;
  });

  // --- Sequential prefix over the s sublists in list order. ----------
  std::vector<vid> offset(s, 0);
  {
    vid running = 0;
    vid k = splitter_index[head];
    std::size_t guard = 0;
    for (;;) {
      offset[k] = running;
      running += sublist_len[k];
      const vid nxt = next_splitter[k];
      if (nxt == kNoVertex) break;
      k = splitter_index[nxt];
      if (++guard > s) {
        throw std::invalid_argument("list_rank_hj: splitter chain has a cycle");
      }
    }
    if (running != n) {
      throw std::invalid_argument(
          "list_rank_hj: list does not cover all nodes");
    }
  }

  // --- Final parallel combine. ---------------------------------------
  ex.parallel_for(n, [&](std::size_t i) {
    rank[i] = offset[sublist[i]] + local_rank[i];
  });
}

void list_rank_independent_set(Executor& ex, const vid* succ, vid* rank,
                               std::size_t n, vid head, std::uint64_t seed) {
  if (n == 0) return;
  if (ex.threads() == 1 || n < 2048) {
    list_rank_sequential(succ, rank, n, head);
    return;
  }

  // Doubly linked working copy; dist[i] = hops from i to cur_succ[i].
  std::vector<vid> cur_succ(succ, succ + n);
  std::vector<vid> pred(n, kNoVertex);
  std::vector<vid> dist(n, 1);
  ex.parallel_for(n, [&](std::size_t i) {
    if (cur_succ[i] != kNoVertex) pred[cur_succ[i]] = static_cast<vid>(i);
  });

  std::vector<vid> live;
  live.reserve(n);
  for (vid i = 0; i < n; ++i) live.push_back(i);

  // Removal log: (node, predecessor, hops predecessor -> node).
  struct Removal {
    vid node;
    vid pred;
    vid hops;
  };
  std::vector<Removal> log;
  log.reserve(n);
  std::vector<std::uint8_t> coin(n);
  std::vector<std::uint8_t> spliced(n, 0);

  std::uint64_t round = 0;
  while (live.size() > 1) {
    ++round;
    ex.parallel_for(live.size(), [&](std::size_t k) {
      const vid i = live[k];
      coin[i] = splitmix64(seed ^ (round << 32) ^ i) & 1;
    });
    // Select: coin(i)=1 and coin(pred)=0 (head has no pred: never
    // selected, so it survives to the end).  The selected set is
    // independent, so each splice touches only unselected neighbours.
    std::vector<vid> batch;
    for (const vid i : live) {
      if (i == head || coin[i] == 0) continue;
      const vid p = pred[i];
      if (coin[p] == 1) continue;
      batch.push_back(i);
    }
    // Record the log serially (order within a round is irrelevant),
    // then apply the splices in parallel.
    const std::size_t log_base = log.size();
    for (const vid i : batch) {
      log.push_back({i, pred[i], dist[pred[i]]});
    }
    ex.parallel_for(batch.size(), [&](std::size_t k) {
      const vid i = batch[k];
      const vid p = pred[i];
      const vid s = cur_succ[i];
      cur_succ[p] = s;
      dist[p] += dist[i];
      if (s != kNoVertex) pred[s] = p;
      spliced[i] = 1;
    });
    (void)log_base;
    std::vector<vid> next;
    next.reserve(live.size());
    for (const vid i : live) {
      if (!spliced[i]) next.push_back(i);
    }
    live = std::move(next);
  }

  // Replay: the head has rank 0; every spliced node sits `hops` after
  // its predecessor-at-splice-time (whose rank is known by then,
  // because predecessors are spliced strictly later or never).
  rank[head] = 0;
  for (auto it = log.rbegin(); it != log.rend(); ++it) {
    rank[it->node] = rank[it->pred] + it->hops;
  }
}

}  // namespace parbcc
