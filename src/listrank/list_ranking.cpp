#include "listrank/list_ranking.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <stdexcept>

#include "util/rng.hpp"

namespace parbcc {

void list_rank_sequential(const vid* succ, vid* rank, std::size_t n,
                          vid head) {
  if (n == 0) return;
  vid v = head;
  for (std::size_t r = 0; r < n; ++r) {
    rank[v] = static_cast<vid>(r);
    v = succ[v];
    if (v == kNoVertex) {
      if (r + 1 != n) {
        throw std::invalid_argument(
            "list_rank_sequential: list does not cover all nodes");
      }
      return;
    }
  }
  throw std::invalid_argument("list_rank_sequential: list has a cycle");
}

void list_rank_wyllie(Executor& ex, Workspace& ws, const vid* succ, vid* rank,
                      std::size_t n, vid head) {
  if (n == 0) return;
  if (n == 1) {
    rank[head] = 0;
    return;
  }
  // Pointer jumping computes distance-to-tail; two buffers per array
  // keep every round race-free (reads from generation g, writes g+1).
  Workspace::Frame frame(ws);
  std::span<vid> dist_a = ws.alloc<vid>(n);
  std::span<vid> dist_b = ws.alloc<vid>(n);
  std::span<vid> next_a = ws.alloc<vid>(n);
  std::span<vid> next_b = ws.alloc<vid>(n);
  ex.parallel_for(n, [&](std::size_t i) {
    next_a[i] = succ[i];
    dist_a[i] = (succ[i] == kNoVertex) ? 0 : 1;
  });

  vid* dist = dist_a.data();
  vid* dist_nx = dist_b.data();
  vid* next = next_a.data();
  vid* next_nx = next_b.data();

  // ceil(log2(n)) rounds suffice: the hop length doubles every round.
  for (std::size_t span = 1; span < n; span *= 2) {
    ex.parallel_for(n, [&](std::size_t i) {
      const vid nx = next[i];
      if (nx == kNoVertex) {
        dist_nx[i] = dist[i];
        next_nx[i] = kNoVertex;
      } else {
        dist_nx[i] = dist[i] + dist[nx];
        next_nx[i] = next[nx];
      }
    });
    std::swap(dist, dist_nx);
    std::swap(next, next_nx);
  }

  const vid total = dist[head];  // = n - 1: head's distance to the tail
  ex.parallel_for(n, [&](std::size_t i) {
    rank[i] = total - dist[i];
  });
}

void list_rank_wyllie(Executor& ex, const vid* succ, vid* rank, std::size_t n,
                      vid head) {
  Workspace ws;
  list_rank_wyllie(ex, ws, succ, rank, n, head);
}

void list_rank_hj(Executor& ex, Workspace& ws, const vid* succ, vid* rank,
                  std::size_t n, vid head, std::uint64_t seed) {
  if (n == 0) return;
  const int p = ex.threads();
  // Target sublists: enough to balance the walks even when splitters
  // land unevenly; the classic recommendation is Theta(p log n).
  std::size_t want = static_cast<std::size_t>(p) * 16 + 8;
  want = std::min(want, n);
  if (p == 1 || n < 2048) {
    list_rank_sequential(succ, rank, n, head);
    return;
  }

  Workspace::Frame frame(ws);

  // --- Select splitters (deterministic from `seed`). -----------------
  std::span<std::uint8_t> is_splitter = ws.alloc<std::uint8_t>(n);
  std::memset(is_splitter.data(), 0, n);
  std::span<vid> splitters = ws.alloc<vid>(want + 1);
  std::size_t s = 0;
  is_splitter[head] = 1;
  splitters[s++] = head;
  for (std::size_t k = 0; s < want; ++k) {
    const vid v = static_cast<vid>(splitmix64(seed + k) % n);
    if (!is_splitter[v]) {
      is_splitter[v] = 1;
      splitters[s++] = v;
    }
    if (k > 4 * want) break;  // collisions ate the budget; fewer is fine
  }

  // splitter_index[v] = k for splitters[k] == v.
  std::span<vid> splitter_index = ws.alloc<vid>(n);
  ex.parallel_for(n, [&](std::size_t i) { splitter_index[i] = kNoVertex; });
  for (std::size_t k = 0; k < s; ++k) {
    splitter_index[splitters[k]] = static_cast<vid>(k);
  }

  // --- Parallel sublist walks. ---------------------------------------
  // Each splitter owns the chain up to (excluding) the next splitter.
  std::span<vid> sublist = ws.alloc<vid>(n);     // sublist id per node
  std::span<vid> local_rank = ws.alloc<vid>(n);  // rank within the sublist
  std::span<vid> next_splitter = ws.alloc<vid>(s);
  std::span<vid> sublist_len = ws.alloc<vid>(s);

  ex.parallel_for_dynamic(s, 1, [&](std::size_t k) {
    vid v = splitters[k];
    vid local = 0;
    for (;;) {
      sublist[v] = static_cast<vid>(k);
      local_rank[v] = local++;
      const vid w = succ[v];
      if (w == kNoVertex) {
        next_splitter[k] = kNoVertex;
        break;
      }
      if (is_splitter[w]) {
        next_splitter[k] = w;
        break;
      }
      v = w;
    }
    sublist_len[k] = local;
  });

  // --- Sequential prefix over the s sublists in list order. ----------
  std::span<vid> offset = ws.alloc<vid>(s);
  {
    vid running = 0;
    vid k = splitter_index[head];
    std::size_t guard = 0;
    for (;;) {
      offset[k] = running;
      running += sublist_len[k];
      const vid nxt = next_splitter[k];
      if (nxt == kNoVertex) break;
      k = splitter_index[nxt];
      if (++guard > s) {
        throw std::invalid_argument("list_rank_hj: splitter chain has a cycle");
      }
    }
    if (running != n) {
      throw std::invalid_argument(
          "list_rank_hj: list does not cover all nodes");
    }
  }

  // --- Final parallel combine. ---------------------------------------
  ex.parallel_for(n, [&](std::size_t i) {
    rank[i] = offset[sublist[i]] + local_rank[i];
  });
}

void list_rank_hj(Executor& ex, const vid* succ, vid* rank, std::size_t n,
                  vid head, std::uint64_t seed) {
  Workspace ws;
  list_rank_hj(ex, ws, succ, rank, n, head, seed);
}

void list_rank_independent_set(Executor& ex, Workspace& ws, const vid* succ,
                               vid* rank, std::size_t n, vid head,
                               std::uint64_t seed) {
  if (n == 0) return;
  if (ex.threads() == 1 || n < 2048) {
    list_rank_sequential(succ, rank, n, head);
    return;
  }

  Workspace::Frame frame(ws);

  // Doubly linked working copy; dist[i] = hops from i to cur_succ[i].
  std::span<vid> cur_succ = ws.alloc<vid>(n);
  std::span<vid> pred = ws.alloc<vid>(n);
  std::span<vid> dist = ws.alloc<vid>(n);
  ex.parallel_for(n, [&](std::size_t i) {
    cur_succ[i] = succ[i];
    pred[i] = kNoVertex;
    dist[i] = 1;
  });
  ex.parallel_for(n, [&](std::size_t i) {
    if (cur_succ[i] != kNoVertex) pred[cur_succ[i]] = static_cast<vid>(i);
  });

  std::span<vid> live = ws.alloc<vid>(n);
  std::span<vid> live_next = ws.alloc<vid>(n);
  std::size_t num_live = n;
  ex.parallel_for(n, [&](std::size_t i) { live[i] = static_cast<vid>(i); });

  // Removal log: (node, predecessor, hops predecessor -> node).  At
  // most n - 1 nodes are ever spliced out.
  struct Removal {
    vid node;
    vid pred;
    vid hops;
  };
  std::span<Removal> log = ws.alloc<Removal>(n);
  std::size_t log_size = 0;
  std::span<vid> batch = ws.alloc<vid>(n);
  std::span<std::uint8_t> coin = ws.alloc<std::uint8_t>(n);
  std::span<std::uint8_t> spliced = ws.alloc<std::uint8_t>(n);
  std::memset(spliced.data(), 0, n);

  std::uint64_t round = 0;
  while (num_live > 1) {
    ++round;
    ex.parallel_for(num_live, [&](std::size_t k) {
      const vid i = live[k];
      coin[i] = splitmix64(seed ^ (round << 32) ^ i) & 1;
    });
    // Select: coin(i)=1 and coin(pred)=0 (head has no pred: never
    // selected, so it survives to the end).  The selected set is
    // independent, so each splice touches only unselected neighbours.
    std::size_t batch_size = 0;
    for (std::size_t k = 0; k < num_live; ++k) {
      const vid i = live[k];
      if (i == head || coin[i] == 0) continue;
      const vid p = pred[i];
      if (coin[p] == 1) continue;
      batch[batch_size++] = i;
    }
    // Record the log serially (order within a round is irrelevant),
    // then apply the splices in parallel.
    for (std::size_t k = 0; k < batch_size; ++k) {
      const vid i = batch[k];
      log[log_size++] = {i, pred[i], dist[pred[i]]};
    }
    ex.parallel_for(batch_size, [&](std::size_t k) {
      const vid i = batch[k];
      const vid p = pred[i];
      const vid s = cur_succ[i];
      cur_succ[p] = s;
      dist[p] += dist[i];
      if (s != kNoVertex) pred[s] = p;
      spliced[i] = 1;
    });
    std::size_t next_live = 0;
    for (std::size_t k = 0; k < num_live; ++k) {
      const vid i = live[k];
      if (!spliced[i]) live_next[next_live++] = i;
    }
    std::swap(live, live_next);
    num_live = next_live;
  }

  // Replay: the head has rank 0; every spliced node sits `hops` after
  // its predecessor-at-splice-time (whose rank is known by then,
  // because predecessors are spliced strictly later or never).
  rank[head] = 0;
  for (std::size_t k = log_size; k > 0; --k) {
    rank[log[k - 1].node] = rank[log[k - 1].pred] + log[k - 1].hops;
  }
}

void list_rank_independent_set(Executor& ex, const vid* succ, vid* rank,
                               std::size_t n, vid head, std::uint64_t seed) {
  Workspace ws;
  list_rank_independent_set(ex, ws, succ, rank, n, head, seed);
}

}  // namespace parbcc
