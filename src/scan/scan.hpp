#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "util/padded.hpp"
#include "util/thread_pool.hpp"
#include "util/workspace.hpp"

/// \file scan.hpp
/// Parallel prefix sums and reductions (Helman-JáJá two-pass scheme).
///
/// Prefix sum is the paper's most heavily used primitive: it numbers
/// nontree edges, compacts the staged auxiliary-graph edge list
/// (Alg. 1), and replaces list ranking for tree computations in TV-opt.
/// The blocked two-pass algorithm does 2n work regardless of p and
/// touches each element with unit stride, so it runs at memory
/// bandwidth — exactly the behaviour the paper's SMP studies report.
///
/// Every primitive takes a Workspace for its per-thread block-sum
/// scratch; the Executor-only overloads are conveniences that bring
/// their own arena (serial fast paths never touch it).

namespace parbcc {

/// Reduce `in[0, n)` with `op`, seeded by `init`.
/// `op` must be associative; blocks are combined in tid order so
/// non-commutative ops are fine.
template <class T, class Op = std::plus<T>>
T reduce(Executor& ex, Workspace& ws, const T* in, std::size_t n, T init = T{},
         Op op = Op{}) {
  const int p = ex.threads();
  if (p == 1 || n < 1024) {
    T acc = init;
    for (std::size_t i = 0; i < n; ++i) acc = op(acc, in[i]);
    return acc;
  }
  Workspace::Frame frame(ws);
  std::span<Padded<T>> partial = ws.alloc<Padded<T>>(static_cast<std::size_t>(p));
  ex.run([&](int tid) {
    auto [begin, end] = Executor::block_range(n, p, tid);
    T acc{};
    bool first = true;
    for (std::size_t i = begin; i < end; ++i) {
      acc = first ? in[i] : op(acc, in[i]);
      first = false;
    }
    if (!first) partial[static_cast<std::size_t>(tid)].value = acc;
  });
  T acc = init;
  for (int t = 0; t < p; ++t) {
    auto [begin, end] = Executor::block_range(n, p, t);
    if (begin != end) acc = op(acc, partial[static_cast<std::size_t>(t)].value);
  }
  return acc;
}

template <class T, class Op = std::plus<T>>
T reduce(Executor& ex, const T* in, std::size_t n, T init = T{}, Op op = Op{}) {
  Workspace ws;
  return reduce(ex, ws, in, n, init, op);
}

/// Exclusive prefix sum: out[i] = init + in[0] + ... + in[i-1].
/// Returns the grand total (init + sum of all inputs).
/// `out` may alias `in`.
template <class T>
T exclusive_scan(Executor& ex, Workspace& ws, const T* in, T* out,
                 std::size_t n, T init = T{}) {
  const int p = ex.threads();
  if (p == 1 || n < 1024) {
    T running = init;
    for (std::size_t i = 0; i < n; ++i) {
      const T x = in[i];
      out[i] = running;
      running += x;
    }
    return running;
  }

  Workspace::Frame frame(ws);
  std::span<Padded<T>> block_sum =
      ws.alloc<Padded<T>>(static_cast<std::size_t>(p));
  Padded<T> grand_total;
  ex.run([&](int tid) {
    auto [begin, end] = Executor::block_range(n, p, tid);
    // Pass 1: per-block totals.
    T acc{};
    for (std::size_t i = begin; i < end; ++i) acc += in[i];
    block_sum[static_cast<std::size_t>(tid)].value = acc;
    ex.barrier().wait();
    // Thread 0 turns block totals into block offsets (p is tiny).
    if (tid == 0) {
      T running = init;
      for (int t = 0; t < p; ++t) {
        const T s = block_sum[static_cast<std::size_t>(t)].value;
        block_sum[static_cast<std::size_t>(t)].value = running;
        running += s;
      }
      grand_total.value = running;
    }
    ex.barrier().wait();
    // Pass 2: local exclusive scan shifted by the block offset.
    T running = block_sum[static_cast<std::size_t>(tid)].value;
    for (std::size_t i = begin; i < end; ++i) {
      const T x = in[i];
      out[i] = running;
      running += x;
    }
  });
  return grand_total.value;
}

template <class T>
T exclusive_scan(Executor& ex, const T* in, T* out, std::size_t n,
                 T init = T{}) {
  Workspace ws;
  return exclusive_scan(ex, ws, in, out, n, init);
}

/// Inclusive prefix sum: out[i] = init + in[0] + ... + in[i].
/// Returns the grand total.  `out` may alias `in`.
template <class T>
T inclusive_scan(Executor& ex, Workspace& ws, const T* in, T* out,
                 std::size_t n, T init = T{}) {
  const int p = ex.threads();
  if (p == 1 || n < 1024) {
    T running = init;
    for (std::size_t i = 0; i < n; ++i) {
      running += in[i];
      out[i] = running;
    }
    return running;
  }

  Workspace::Frame frame(ws);
  std::span<Padded<T>> block_sum =
      ws.alloc<Padded<T>>(static_cast<std::size_t>(p));
  ex.run([&](int tid) {
    auto [begin, end] = Executor::block_range(n, p, tid);
    T acc{};
    for (std::size_t i = begin; i < end; ++i) acc += in[i];
    block_sum[static_cast<std::size_t>(tid)].value = acc;
    ex.barrier().wait();
    if (tid == 0) {
      T running = init;
      for (int t = 0; t < p; ++t) {
        const T s = block_sum[static_cast<std::size_t>(t)].value;
        block_sum[static_cast<std::size_t>(t)].value = running;
        running += s;
      }
    }
    ex.barrier().wait();
    T running = block_sum[static_cast<std::size_t>(tid)].value;
    for (std::size_t i = begin; i < end; ++i) {
      running += in[i];
      out[i] = running;
    }
  });

  return n == 0 ? init : out[n - 1];
}

template <class T>
T inclusive_scan(Executor& ex, const T* in, T* out, std::size_t n,
                 T init = T{}) {
  Workspace ws;
  return inclusive_scan(ex, ws, in, out, n, init);
}

}  // namespace parbcc
