#pragma once

#include <cstdint>
#include <vector>

#include "util/padded.hpp"
#include "util/thread_pool.hpp"
#include "util/workspace.hpp"

/// \file segmented_scan.hpp
/// Segmented prefix sums — the variant of the prefix-computation
/// primitive (Helman-JáJá, paper reference [9]) that PRAM tree and
/// list algorithms use to reduce over many independent sequences in
/// one pass.
///
/// A set flag starts a new segment; the scan never crosses a flag.  The
/// parallel version lifts the trick that (value, flag) pairs under
///    (a, fa) . (b, fb) = (fb ? b : a + b, fa | fb)
/// form an associative operator, so the blocked two-pass scheme from
/// scan.hpp applies unchanged.

namespace parbcc {

/// out[i] = sum of in[j..i] where j is the latest index <= i with
/// flags[j] set (or the segment start at 0).  `out` may alias `in`.
template <class T>
void segmented_inclusive_scan(Executor& ex, Workspace& ws, const T* in,
                              const std::uint8_t* flags, T* out,
                              std::size_t n) {
  const int p = ex.threads();
  if (p == 1 || n < 2048) {
    T running{};
    for (std::size_t i = 0; i < n; ++i) {
      running = flags[i] ? in[i] : running + in[i];
      out[i] = running;
    }
    return;
  }

  struct Carry {
    T sum{};
    bool flagged = false;
  };
  Workspace::Frame frame(ws);
  std::span<Padded<Carry>> block =
      ws.alloc<Padded<Carry>>(static_cast<std::size_t>(p));

  ex.run([&](int tid) {
    auto [begin, end] = Executor::block_range(n, p, tid);
    // Pass 1: the block's combined (sum, flag) pair.
    Carry acc;
    for (std::size_t i = begin; i < end; ++i) {
      if (flags[i]) {
        acc.sum = in[i];
        acc.flagged = true;
      } else {
        acc.sum += in[i];
      }
    }
    block[static_cast<std::size_t>(tid)].value = acc;
    ex.barrier().wait();
    if (tid == 0) {
      // Exclusive scan of the block pairs with the segmented operator.
      Carry running;
      for (int t = 0; t < p; ++t) {
        const Carry b = block[static_cast<std::size_t>(t)].value;
        block[static_cast<std::size_t>(t)].value = running;
        if (b.flagged) {
          running = b;
        } else {
          running.sum += b.sum;
        }
      }
    }
    ex.barrier().wait();
    // Pass 2: rescan seeded with the carry; a flag inside the block
    // naturally discards it.
    T running = block[static_cast<std::size_t>(tid)].value.sum;
    for (std::size_t i = begin; i < end; ++i) {
      running = flags[i] ? in[i] : running + in[i];
      out[i] = running;
    }
  });
}

template <class T>
void segmented_inclusive_scan(Executor& ex, const T* in,
                              const std::uint8_t* flags, T* out,
                              std::size_t n) {
  Workspace ws;
  segmented_inclusive_scan(ex, ws, in, flags, out, n);
}

}  // namespace parbcc
