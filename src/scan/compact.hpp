#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "scan/scan.hpp"
#include "util/padded.hpp"
#include "util/thread_pool.hpp"
#include "util/workspace.hpp"

/// \file compact.hpp
/// Prefix-sum based stream compaction.
///
/// The paper's Alg. 1 stages candidate auxiliary-graph edges in a 3m
/// slot array and "compacts L' into G' using prefix sums"; these
/// helpers implement that order-preserving compaction without any
/// concurrent writes: pass 1 counts survivors per block, an exclusive
/// scan turns counts into destinations, pass 2 writes.

namespace parbcc {

/// Call `emit(dst, i)` for every i in [0, n) with pred(i), where dst is
/// i's rank among selected indices (so output order matches input
/// order).  Returns the number of selected indices.
/// `pred` is evaluated twice per index and must be pure.
template <class Pred, class Emit>
std::size_t pack_into(Executor& ex, Workspace& ws, std::size_t n, Pred pred,
                      Emit emit) {
  const int p = ex.threads();
  if (p == 1 || n < 2048) {
    std::size_t dst = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (pred(i)) emit(dst++, i);
    }
    return dst;
  }

  Workspace::Frame frame(ws);
  std::span<Padded<std::size_t>> offset =
      ws.alloc<Padded<std::size_t>>(static_cast<std::size_t>(p));
  Padded<std::size_t> total;
  ex.run([&](int tid) {
    auto [begin, end] = Executor::block_range(n, p, tid);
    std::size_t count = 0;
    for (std::size_t i = begin; i < end; ++i) count += pred(i) ? 1 : 0;
    offset[static_cast<std::size_t>(tid)].value = count;
    ex.barrier().wait();
    if (tid == 0) {
      std::size_t running = 0;
      for (int t = 0; t < p; ++t) {
        const std::size_t c = offset[static_cast<std::size_t>(t)].value;
        offset[static_cast<std::size_t>(t)].value = running;
        running += c;
      }
      total.value = running;
    }
    ex.barrier().wait();
    std::size_t dst = offset[static_cast<std::size_t>(tid)].value;
    for (std::size_t i = begin; i < end; ++i) {
      if (pred(i)) emit(dst++, i);
    }
  });
  return total.value;
}

template <class Pred, class Emit>
std::size_t pack_into(Executor& ex, std::size_t n, Pred pred, Emit emit) {
  Workspace ws;
  return pack_into(ex, ws, n, pred, emit);
}

/// Pack the selected indices themselves: out = [i : pred(i)], ascending.
template <class Pred>
std::size_t pack_indices(Executor& ex, Workspace& ws, std::size_t n, Pred pred,
                         std::vector<std::uint32_t>& out) {
  // Sizing pass runs inside pack_into; reserve pessimistically only for
  // small inputs to avoid touching memory twice on the big ones.
  out.resize(n);
  const std::size_t count = pack_into(
      ex, ws, n, pred,
      [&](std::size_t dst, std::size_t i) {
        out[dst] = static_cast<std::uint32_t>(i);
      });
  out.resize(count);
  return count;
}

template <class Pred>
std::size_t pack_indices(Executor& ex, std::size_t n, Pred pred,
                         std::vector<std::uint32_t>& out) {
  Workspace ws;
  return pack_indices(ex, ws, n, pred, out);
}

/// pack_indices writing into a workspace span allocated by the caller
/// (in the caller's frame).  `out` must have room for n indices; the
/// return value is how many were written.
template <class Pred>
std::size_t pack_indices_span(Executor& ex, Workspace& ws, std::size_t n,
                              Pred pred, std::span<std::uint32_t> out) {
  return pack_into(ex, ws, n, pred, [&](std::size_t dst, std::size_t i) {
    out[dst] = static_cast<std::uint32_t>(i);
  });
}

}  // namespace parbcc
