#include <gtest/gtest.h>

#include <set>

#include "connectivity/shiloach_vishkin.hpp"
#include "connectivity/union_find.hpp"
#include "graph/generators.hpp"
#include "test_util.hpp"
#include "util/thread_pool.hpp"

namespace parbcc {
namespace {

TEST(UnionFind, BasicUniteAndFind) {
  UnionFind uf(6);
  EXPECT_TRUE(uf.unite(0, 1));
  EXPECT_TRUE(uf.unite(2, 3));
  EXPECT_FALSE(uf.unite(1, 0));
  EXPECT_TRUE(uf.same(0, 1));
  EXPECT_FALSE(uf.same(0, 2));
  EXPECT_TRUE(uf.unite(1, 3));
  EXPECT_TRUE(uf.same(0, 2));
  EXPECT_FALSE(uf.same(4, 5));
}

TEST(SvComponents, LabelIsComponentMinimum) {
  Executor ex(4);
  // Two components: {0,1,2} and {3,4}.
  EdgeList g(5, {{2, 1}, {1, 0}, {4, 3}});
  const auto labels = connected_components_sv(ex, g);
  EXPECT_EQ(labels, (std::vector<vid>{0, 0, 0, 3, 3}));
  EXPECT_EQ(count_components(labels), 2u);
}

TEST(SvComponents, IsolatedVerticesAreOwnComponents) {
  Executor ex(2);
  EdgeList g(4, {{1, 2}});
  const auto labels = connected_components_sv(ex, g);
  EXPECT_EQ(labels[0], 0u);
  EXPECT_EQ(labels[1], 1u);
  EXPECT_EQ(labels[2], 1u);
  EXPECT_EQ(labels[3], 3u);
  EXPECT_EQ(count_components(labels), 3u);
}

TEST(SvComponents, EmptyGraph) {
  Executor ex(2);
  EdgeList g(0, {});
  EXPECT_TRUE(connected_components_sv(ex, g).empty());
}

class SvParam : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(SvParam, MatchesSequentialUnionFindOnRandomGraphs) {
  const auto [threads, seed] = GetParam();
  Executor ex(threads);
  // Sparse enough to be well disconnected.
  const EdgeList g = gen::random_gnm(2000, 1500, seed);
  const auto par = connected_components_sv(ex, g);
  const auto seq = connected_components_seq(g.n, g.edges);
  EXPECT_EQ(par, seq);  // same contract: component-minimum labels
}

INSTANTIATE_TEST_SUITE_P(Sweep, SvParam,
                         ::testing::Combine(::testing::Values(1, 2, 4, 8),
                                            ::testing::Values(1, 2, 3, 4, 5)));

TEST(SvComponents, LongPathStressesShortcutting) {
  Executor ex(4);
  const EdgeList g = gen::path(20000);
  const auto labels = connected_components_sv(ex, g);
  for (const vid l : labels) ASSERT_EQ(l, 0u);
}

TEST(SvComponents, DenseSingleComponent) {
  Executor ex(4);
  const EdgeList g = gen::complete(60);
  const auto labels = connected_components_sv(ex, g);
  for (const vid l : labels) ASSERT_EQ(l, 0u);
}

TEST(NormalizeLabels, CompactsByFirstAppearance) {
  std::vector<vid> labels = {7, 3, 7, 9, 3};
  const vid k = normalize_labels(labels);
  EXPECT_EQ(k, 3u);
  EXPECT_EQ(labels, (std::vector<vid>{0, 1, 0, 2, 1}));
}

TEST(NormalizeLabels, HandlesLabelsBeyondArraySize) {
  std::vector<vid> labels = {100, 100, 50};
  const vid k = normalize_labels(labels);
  EXPECT_EQ(k, 2u);
  EXPECT_EQ(labels, (std::vector<vid>{0, 0, 1}));
}

}  // namespace
}  // namespace parbcc
