#include <gtest/gtest.h>

#include <cstdint>

#include "core/bcc.hpp"
#include "graph/generators.hpp"
#include "test_util.hpp"
#include "util/padded.hpp"
#include "util/thread_pool.hpp"
#include "util/types.hpp"
#include "util/workspace.hpp"

/// Arena semantics (frame discipline, alignment, telemetry) plus the
/// context-level contract the tentpole promises: a second solve on a
/// warm BccContext performs zero arena growth and identical results.

namespace parbcc {
namespace {

TEST(Workspace, DefaultConstructedOwnsNothing) {
  Workspace ws;
  EXPECT_EQ(ws.capacity_bytes(), 0u);
  EXPECT_EQ(ws.live_bytes(), 0u);
  EXPECT_EQ(ws.peak_bytes(), 0u);
  EXPECT_EQ(ws.growth_count(), 0u);
}

TEST(Workspace, AllocIsCacheLineAligned) {
  Workspace ws;
  Workspace::Frame frame(ws);
  const std::span<std::uint8_t> a = ws.alloc<std::uint8_t>(3);
  const std::span<std::uint64_t> b = ws.alloc<std::uint64_t>(5);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(a.data()) % kCacheLine, 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b.data()) % kCacheLine, 0u);
  // The 3-byte span was rounded to a full line: no overlap.
  EXPECT_GE(reinterpret_cast<std::uintptr_t>(b.data()),
            reinterpret_cast<std::uintptr_t>(a.data()) + kCacheLine);
}

TEST(Workspace, ZeroCountAllocIsEmptyAndFree) {
  Workspace ws;
  const std::span<vid> s = ws.alloc<vid>(0);
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(ws.capacity_bytes(), 0u);
}

TEST(Workspace, FrameRewindsLiveBytes) {
  Workspace ws;
  {
    Workspace::Frame outer(ws);
    ws.alloc<vid>(100);
    const std::size_t outer_live = ws.live_bytes();
    {
      Workspace::Frame inner(ws);
      ws.alloc<vid>(1000);
      EXPECT_GT(ws.live_bytes(), outer_live);
    }
    EXPECT_EQ(ws.live_bytes(), outer_live);
  }
  EXPECT_EQ(ws.live_bytes(), 0u);
  EXPECT_GT(ws.peak_bytes(), 0u);  // peak survives the rewind
}

TEST(Workspace, RewindThenReallocReusesCapacityWithoutGrowth) {
  Workspace ws;
  {
    Workspace::Frame frame(ws);
    ws.alloc<std::uint64_t>(1 << 12);
  }
  const std::size_t cap = ws.capacity_bytes();
  const std::uint64_t growth = ws.growth_count();
  const std::uint64_t hits = ws.reuse_hits();
  for (int round = 0; round < 3; ++round) {
    Workspace::Frame frame(ws);
    ws.alloc<std::uint64_t>(1 << 12);
    ws.alloc<std::uint32_t>(1 << 12);
  }
  EXPECT_EQ(ws.capacity_bytes(), cap);
  EXPECT_EQ(ws.growth_count(), growth);
  EXPECT_EQ(ws.reuse_hits(), hits + 6);  // every allocation was a hit
}

TEST(Workspace, GrowthIsGeometric) {
  Workspace ws;
  Workspace::Frame frame(ws);
  // Many small allocations must not translate into many blocks.
  for (int i = 0; i < 1000; ++i) ws.alloc<std::uint64_t>(256);
  EXPECT_LE(ws.growth_count(), 8u);
  EXPECT_GE(ws.capacity_bytes(), ws.live_bytes());
}

TEST(Workspace, PaddedElementsAreDefaultConstructed) {
  Workspace ws;
  // Dirty the arena first so stale bytes would show through if the
  // placement-new path were skipped.
  {
    Workspace::Frame frame(ws);
    const std::span<std::uint8_t> dirt = ws.alloc<std::uint8_t>(4096);
    for (auto& b : dirt) b = 0xAB;
  }
  Workspace::Frame frame(ws);
  const std::span<Padded<std::uint64_t>> p =
      ws.alloc<Padded<std::uint64_t>>(8);
  for (const auto& x : p) EXPECT_EQ(x.value, 0u);
}

TEST(Workspace, ReleaseFreesEverything) {
  Workspace ws;
  {
    Workspace::Frame frame(ws);
    ws.alloc<vid>(1 << 16);
  }
  ws.release();
  EXPECT_EQ(ws.capacity_bytes(), 0u);
  EXPECT_EQ(ws.live_bytes(), 0u);
}

// --- Context-level acceptance: warm solves grow nothing. --------------

TEST(BccContext, SecondSolveOnWarmContextPerformsZeroArenaGrowth) {
  const EdgeList g = gen::random_connected_gnm(20000, 80000, 42);
  BccContext ctx(4);
  BccOptions opt;
  opt.algorithm = BccAlgorithm::kTvSmp;  // heaviest arena user

  const BccResult cold = biconnected_components(ctx, g, opt);
  EXPECT_GT(cold.peak_workspace_bytes, 0u);
  EXPECT_GT(ctx.workspace().capacity_bytes(), 0u);

  const std::uint64_t growth_after_cold = ctx.workspace().growth_count();
  const std::size_t capacity_after_cold = ctx.workspace().capacity_bytes();

  const BccResult warm = biconnected_components(ctx, g, opt);
  // Zero growth: the warm solve was served entirely from capacity.
  EXPECT_EQ(ctx.workspace().growth_count(), growth_after_cold);
  EXPECT_EQ(ctx.workspace().capacity_bytes(), capacity_after_cold);
  EXPECT_GT(warm.arena_reuse_hits, 0u);
  EXPECT_EQ(warm.peak_workspace_bytes, cold.peak_workspace_bytes);

  // And the answers agree exactly (same context, deterministic input).
  EXPECT_EQ(cold.num_components, warm.num_components);
  EXPECT_TRUE(
      testutil::same_partition(cold.edge_component, warm.edge_component));
}

TEST(BccContext, ConversionChargedOnceForRepeatedSolvesOfSameGraph) {
  const EdgeList g = gen::random_connected_gnm(10000, 40000, 7);
  BccContext ctx(4);
  BccOptions opt;
  opt.algorithm = BccAlgorithm::kTvOpt;  // adjacency-hungry driver

  const BccResult first = biconnected_components(ctx, g, opt);
  const BccResult second = biconnected_components(ctx, g, opt);
  EXPECT_GT(first.times.conversion, 0.0);
  EXPECT_EQ(second.times.conversion, 0.0);  // cache hit
  EXPECT_TRUE(
      testutil::same_partition(first.edge_component, second.edge_component));
}

TEST(BccContext, SameAddressSameSizeDifferentGraphMissesCache) {
  // Regression: the conversion cache used to key on (&g, n, m) only.
  // Overwriting a solved graph with a different graph of identical
  // size — the same aliasing a freed-then-reallocated EdgeList
  // produces — matched the stale key and served the old adjacency,
  // silently solving the wrong graph.  The content fingerprint in the
  // key forces a reconversion.
  EdgeList g = gen::random_gnm(2000, 6000, 1);
  BccContext ctx(2);
  BccOptions opt;
  opt.compute_cut_info = true;

  biconnected_components(ctx, g, opt);
  g = gen::random_gnm(2000, 6000, 2);  // same address, n, and m
  const BccResult got = biconnected_components(ctx, g, opt);
  EXPECT_GT(got.times.conversion, 0.0);  // cache miss, not a stale hit

  BccContext fresh(2);
  const BccResult want = biconnected_components(fresh, g, opt);
  EXPECT_EQ(got.num_components, want.num_components);
  EXPECT_TRUE(
      testutil::same_partition(got.edge_component, want.edge_component));
  EXPECT_EQ(got.is_articulation, want.is_articulation);
}

TEST(BccContext, InvalidateForcesReconversion) {
  const EdgeList g = gen::random_connected_gnm(5000, 20000, 3);
  BccContext ctx(2);
  BccOptions opt;
  opt.algorithm = BccAlgorithm::kTvFilter;

  const BccResult first = biconnected_components(ctx, g, opt);
  ctx.invalidate();
  const BccResult again = biconnected_components(ctx, g, opt);
  EXPECT_GT(again.times.conversion, 0.0);  // rebuilt after invalidate
  EXPECT_TRUE(
      testutil::same_partition(first.edge_component, again.edge_component));
}

TEST(BccContext, LoopyGraphWarmSolveHitsBothCaches) {
  // Regression: inputs with self-loops used to bypass the context
  // caches entirely (the dispatcher stripped into a call-local copy and
  // solved cache-less), so every warm solve re-stripped, re-converted,
  // and re-grew the arena.  The stripped copy now lives in the context.
  EdgeList g = gen::random_connected_gnm(20000, 80000, 17);
  for (vid v = 0; v < g.n; v += 97) g.add_edge(v, v);  // sprinkle loops
  BccContext ctx(4);
  BccOptions opt;
  opt.algorithm = BccAlgorithm::kTvOpt;

  const BccResult cold = biconnected_components(ctx, g, opt);
  EXPECT_GT(cold.times.conversion, 0.0);
  const std::uint64_t growth_after_cold = ctx.workspace().growth_count();
  const std::size_t capacity_after_cold = ctx.workspace().capacity_bytes();

  const BccResult warm = biconnected_components(ctx, g, opt);
  EXPECT_EQ(warm.times.conversion, 0.0);  // stripped adjacency cache hit
  EXPECT_EQ(ctx.workspace().growth_count(), growth_after_cold);
  EXPECT_EQ(ctx.workspace().capacity_bytes(), capacity_after_cold);
  EXPECT_GT(warm.arena_reuse_hits, 0u);
  // Strictly below: the cold solve's peak included the conversion
  // scratch the warm solve never touches (cached stripped adjacency).
  EXPECT_LE(warm.peak_workspace_bytes, cold.peak_workspace_bytes);
  EXPECT_EQ(cold.num_components, warm.num_components);
  EXPECT_TRUE(
      testutil::same_partition(cold.edge_component, warm.edge_component));
}

TEST(BccContext, AlternatingLoopyGraphsReKeyTheStripCache) {
  // Two distinct loopy graphs through one context: each switch must
  // rebuild the stripped copy (and drop the conversion cache keyed on
  // its storage) rather than serve the other graph's stripped edges.
  EdgeList a = gen::random_connected_gnm(3000, 12000, 23);
  a.add_edge(1, 1);
  EdgeList b = gen::random_connected_gnm(3000, 12000, 24);
  b.add_edge(2, 2);
  BccContext ctx(2);
  BccOptions opt;
  opt.algorithm = BccAlgorithm::kTvFilter;
  Executor fresh(2);
  for (int round = 0; round < 2; ++round) {
    const BccResult ra = biconnected_components(ctx, a, opt);
    const BccResult rb = biconnected_components(ctx, b, opt);
    const BccResult fa = biconnected_components(fresh, a, opt);
    const BccResult fb = biconnected_components(fresh, b, opt);
    ASSERT_EQ(ra.num_components, fa.num_components);
    ASSERT_EQ(rb.num_components, fb.num_components);
    ASSERT_TRUE(
        testutil::same_partition(ra.edge_component, fa.edge_component));
    ASSERT_TRUE(
        testutil::same_partition(rb.edge_component, fb.edge_component));
  }
}

TEST(BccContext, BorrowedExecutorIsUsed) {
  Executor ex(3);
  BccContext ctx(ex);
  EXPECT_EQ(&ctx.executor(), &ex);
  EXPECT_EQ(ctx.executor().threads(), 3);
  const EdgeList g = gen::random_connected_gnm(2000, 6000, 5);
  const BccResult r = biconnected_components(ctx, g, {});
  EXPECT_GT(r.num_components, 0u);
}

TEST(BccContext, DifferentGraphsOnOneContextStayCorrect) {
  BccContext ctx(4);
  BccOptions opt;
  opt.algorithm = BccAlgorithm::kAuto;
  // Alternate between two graphs; each switch re-keys the conversion
  // cache but must never change answers.
  const EdgeList a = gen::random_connected_gnm(8000, 32000, 21);
  const EdgeList b = gen::random_cactus(1500, 10, 22);
  for (int round = 0; round < 2; ++round) {
    const BccResult ra = biconnected_components(ctx, a, opt);
    const BccResult rb = biconnected_components(ctx, b, opt);
    Executor fresh_ex(4);
    const BccResult fa = biconnected_components(fresh_ex, a, opt);
    const BccResult fb = biconnected_components(fresh_ex, b, opt);
    ASSERT_EQ(ra.num_components, fa.num_components);
    ASSERT_EQ(rb.num_components, fb.num_components);
    ASSERT_TRUE(
        testutil::same_partition(ra.edge_component, fa.edge_component));
    ASSERT_TRUE(
        testutil::same_partition(rb.edge_component, fb.edge_component));
  }
}

}  // namespace
}  // namespace parbcc
