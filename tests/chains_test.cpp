#include <gtest/gtest.h>

#include "core/bcc.hpp"
#include "core/chains.hpp"
#include "graph/generators.hpp"
#include "test_util.hpp"
#include "util/thread_pool.hpp"

namespace parbcc {
namespace {

TEST(Chains, CycleIsOneCycleChainNoCuts) {
  const ChainDecomposition cd = chain_decomposition(gen::cycle(8));
  EXPECT_EQ(cd.num_chains, 1u);
  EXPECT_EQ(cd.chain_is_cycle[0], 1);
  EXPECT_TRUE(cd.bridges.empty());
  for (const auto a : cd.is_articulation) EXPECT_EQ(a, 0);
}

TEST(Chains, PathIsAllBridges) {
  const EdgeList g = gen::path(5);
  const ChainDecomposition cd = chain_decomposition(g);
  EXPECT_EQ(cd.num_chains, 0u);
  EXPECT_EQ(cd.bridges.size(), 4u);
  EXPECT_EQ(cd.is_articulation,
            (std::vector<std::uint8_t>{0, 1, 1, 1, 0}));
}

TEST(Chains, TwoTrianglesSharedVertex) {
  EdgeList g(5, {{0, 1}, {1, 2}, {2, 0}, {2, 3}, {3, 4}, {4, 2}});
  const ChainDecomposition cd = chain_decomposition(g);
  EXPECT_EQ(cd.num_chains, 2u);
  EXPECT_TRUE(cd.bridges.empty());
  // Exactly vertex 2 articulates (second chain is a cycle rooted there).
  EXPECT_EQ(cd.is_articulation,
            (std::vector<std::uint8_t>{0, 0, 1, 0, 0}));
}

TEST(Chains, EveryEdgeCoveredOnBiconnectedGraphs) {
  for (const EdgeList& g :
       {gen::complete(10), gen::grid_torus(4, 5), gen::wheel(9)}) {
    const ChainDecomposition cd = chain_decomposition(g);
    EXPECT_TRUE(cd.bridges.empty());
    for (const vid c : cd.chain_of_edge) EXPECT_NE(c, kNoVertex);
    // Exactly one cycle chain (the first) on a biconnected graph.
    vid cycles = 0;
    for (const auto f : cd.chain_is_cycle) cycles += f;
    EXPECT_EQ(cycles, 1u);
    EXPECT_EQ(cd.num_chains, g.m() - g.n + 1);
  }
}

class ChainsParam : public ::testing::TestWithParam<int> {};

TEST_P(ChainsParam, MatchesBruteForceOnRandomGraphs) {
  const int seed = GetParam();
  // Sparse-to-medium simple random graphs, possibly disconnected.
  const EdgeList g = gen::random_gnm(150, 100 + 40 * seed, seed);
  const ChainDecomposition cd = chain_decomposition(g);
  EXPECT_EQ(cd.bridges, testutil::brute_force_bridges(g));
  EXPECT_EQ(cd.is_articulation, testutil::brute_force_articulation(g));
}

INSTANTIATE_TEST_SUITE_P(Sweep, ChainsParam, ::testing::Range(0, 12));

TEST(Chains, DisconnectedComponentsIndependent) {
  // Triangle + path + isolated vertex.
  EdgeList g(8, {{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 6}});
  const ChainDecomposition cd = chain_decomposition(g);
  EXPECT_EQ(cd.num_chains, 1u);
  EXPECT_EQ(cd.bridges.size(), 3u);
  EXPECT_EQ(cd.is_articulation[4], 1);
  EXPECT_EQ(cd.is_articulation[5], 1);
  EXPECT_EQ(cd.is_articulation[0], 0);
  EXPECT_EQ(cd.is_articulation[7], 0);
}

TEST(Chains, CrossChecksTheParallelPipelinesAtScale) {
  // Chains are an O(n + m) oracle, so this runs at sizes the deletion
  // brute force cannot: compare cut reports against all three parallel
  // algorithms on a 50k-vertex graph.
  const EdgeList g = gen::random_connected_gnm(50000, 120000, 4);
  const ChainDecomposition cd = chain_decomposition(g);
  Executor ex(4);
  for (const BccAlgorithm algorithm :
       {BccAlgorithm::kTvSmp, BccAlgorithm::kTvOpt, BccAlgorithm::kTvFilter}) {
    BccOptions opt;
    opt.algorithm = algorithm;
    const BccResult r = biconnected_components(ex, g, opt);
    ASSERT_EQ(r.bridges, cd.bridges) << to_string(algorithm);
    ASSERT_EQ(r.is_articulation, cd.is_articulation) << to_string(algorithm);
  }
}

TEST(Chains, ChainCountIdentity) {
  // #chains == m - n + #components for any simple graph (every nontree
  // edge starts exactly one chain).
  for (const int seed : {1, 2, 3}) {
    const EdgeList g = gen::random_gnm(200, 400, seed);
    const ChainDecomposition cd = chain_decomposition(g);
    const vid comps = testutil::component_count(g);
    EXPECT_EQ(cd.num_chains, g.m() - g.n + comps);
  }
}

}  // namespace
}  // namespace parbcc
