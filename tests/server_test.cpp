#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <memory>
#include <set>
#include <span>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "core/bcc.hpp"
#include "core/bcc_context.hpp"
#include "graph/generators.hpp"
#include "server/client.hpp"
#include "server/protocol.hpp"
#include "server/server.hpp"
#include "server/service.hpp"
#include "server/snapshot.hpp"
#include "test_util.hpp"
#include "util/rng.hpp"

namespace parbcc {
namespace {

using server::BccClient;
using server::BccServer;
using server::BccService;
using server::InfoReply;
using server::Op;
using server::ProtocolError;
using server::Query;
using server::QueryReply;
using server::Snapshot;

Snapshot make_snapshot(BccContext& ctx, const EdgeList& g,
                       std::uint64_t version = 0) {
  BccOptions opt;
  opt.compute_cut_info = true;
  const BccResult result = biconnected_components(ctx, g, opt);
  return Snapshot(ctx.executor(), g, result, version);
}

// --- Brute-force oracles, deliberately naive (small n only). ---

/// u and v share a block iff some edge label is incident to both.
bool oracle_same_block(const EdgeList& g, const testutil::RefBcc& ref, vid u,
                       vid v) {
  std::set<vid> labels_u, labels_v;
  for (std::size_t e = 0; e < g.edges.size(); ++e) {
    if (g.edges[e].u == u || g.edges[e].v == u) labels_u.insert(ref.edge_comp[e]);
    if (g.edges[e].u == v || g.edges[e].v == v) labels_v.insert(ref.edge_comp[e]);
  }
  for (const vid l : labels_u) {
    if (labels_v.count(l)) return true;
  }
  return false;
}

/// BFS connectivity of u and v with vertex `skip` removed (kNoVertex
/// skips nothing); the per-removal loop makes this the
/// path-articulation oracle.
bool connected_avoiding(const EdgeList& g, vid u, vid v, vid skip) {
  if (u == skip || v == skip) return false;
  std::vector<std::vector<vid>> adj(g.n);
  for (const Edge& e : g.edges) {
    if (e.u == skip || e.v == skip) continue;
    adj[e.u].push_back(e.v);
    adj[e.v].push_back(e.u);
  }
  std::vector<std::uint8_t> seen(g.n, 0);
  std::vector<vid> queue{u};
  seen[u] = 1;
  for (std::size_t head = 0; head < queue.size(); ++head) {
    for (const vid w : adj[queue[head]]) {
      if (!seen[w]) {
        seen[w] = 1;
        queue.push_back(w);
      }
    }
  }
  return seen[v] != 0;
}

vid oracle_path_articulation(const EdgeList& g, vid u, vid v) {
  if (u == v) return 0;
  if (!connected_avoiding(g, u, v, kNoVertex)) return kNoVertex;
  vid count = 0;
  for (vid w = 0; w < g.n; ++w) {
    if (w == u || w == v) continue;
    if (!connected_avoiding(g, u, v, w)) ++count;
  }
  return count;
}

/// 2EC labels: connected components after deleting every bridge.
std::vector<vid> oracle_two_ec(const EdgeList& g) {
  const std::vector<eid> bridges = testutil::brute_force_bridges(g);
  std::vector<std::uint8_t> is_bridge(g.edges.size(), 0);
  for (const eid b : bridges) is_bridge[b] = 1;
  EdgeList rest(g.n, {});
  for (std::size_t e = 0; e < g.edges.size(); ++e) {
    if (!is_bridge[e]) rest.edges.push_back(g.edges[e]);
  }
  std::vector<std::vector<vid>> adj(g.n);
  for (const Edge& e : rest.edges) {
    adj[e.u].push_back(e.v);
    adj[e.v].push_back(e.u);
  }
  std::vector<vid> label(g.n, kNoVertex);
  vid next = 0;
  for (vid s = 0; s < g.n; ++s) {
    if (label[s] != kNoVertex) continue;
    label[s] = next;
    std::vector<vid> queue{s};
    for (std::size_t head = 0; head < queue.size(); ++head) {
      for (const vid w : adj[queue[head]]) {
        if (label[w] == kNoVertex) {
          label[w] = next;
          queue.push_back(w);
        }
      }
    }
    ++next;
  }
  return label;
}

void expect_matches_oracles(BccContext& ctx, const EdgeList& g) {
  const Snapshot snap = make_snapshot(ctx, g);
  const testutil::RefBcc ref = testutil::reference_bcc(g);
  const std::vector<std::uint8_t> cuts = testutil::brute_force_articulation(g);
  const std::vector<vid> two_ec = oracle_two_ec(g);

  ASSERT_EQ(snap.num_blocks(), ref.count);
  std::vector<vid> got(g.edges.size()), want = ref.edge_comp;
  for (eid e = 0; e < g.m(); ++e) got[e] = snap.block_id(e);
  EXPECT_TRUE(testutil::same_partition(got, want));

  for (vid v = 0; v < g.n; ++v) {
    EXPECT_EQ(snap.is_cut(v), cuts[v] != 0) << "vertex " << v;
  }
  for (vid u = 0; u < g.n; ++u) {
    for (vid v = u; v < g.n; ++v) {
      EXPECT_EQ(snap.same_block(u, v), oracle_same_block(g, ref, u, v))
          << "same_block(" << u << ", " << v << ")";
      EXPECT_EQ(snap.same_block(v, u), snap.same_block(u, v));
      EXPECT_EQ(snap.same_two_edge(u, v), two_ec[u] == two_ec[v])
          << "same_two_edge(" << u << ", " << v << ")";
    }
  }
}

void expect_path_articulation_matches(BccContext& ctx, const EdgeList& g) {
  const Snapshot snap = make_snapshot(ctx, g);
  for (vid u = 0; u < g.n; ++u) {
    for (vid v = u; v < g.n; ++v) {
      EXPECT_EQ(snap.path_articulation(u, v), oracle_path_articulation(g, u, v))
          << "path_articulation(" << u << ", " << v << ")";
    }
  }
}

TEST(Snapshot, HandCheckedBowtie) {
  // Two triangles sharing vertex 2 (the only cut vertex, two blocks).
  const EdgeList g(5, {{0, 1}, {1, 2}, {2, 0}, {2, 3}, {3, 4}, {4, 2}});
  BccContext ctx(2);
  const Snapshot snap = make_snapshot(ctx, g, 7);

  EXPECT_EQ(snap.version(), 7u);
  EXPECT_EQ(snap.n(), 5u);
  EXPECT_EQ(snap.m(), 6u);
  EXPECT_EQ(snap.num_blocks(), 2u);
  EXPECT_EQ(snap.num_cut_vertices(), 1u);
  EXPECT_EQ(snap.num_two_edge_components(), 1u);

  EXPECT_TRUE(snap.is_cut(2));
  EXPECT_FALSE(snap.is_cut(0));
  EXPECT_TRUE(snap.same_block(0, 1));
  EXPECT_TRUE(snap.same_block(0, 2));
  EXPECT_TRUE(snap.same_block(2, 4));
  EXPECT_FALSE(snap.same_block(0, 3));
  EXPECT_EQ(snap.block_id(0), snap.block_id(1));
  EXPECT_EQ(snap.block_id(0), snap.block_id(2));
  EXPECT_NE(snap.block_id(0), snap.block_id(3));
  EXPECT_EQ(snap.path_articulation(0, 1), 0u);
  EXPECT_EQ(snap.path_articulation(0, 3), 1u);
  EXPECT_EQ(snap.path_articulation(0, 2), 0u);  // endpoint cut not counted
  EXPECT_TRUE(snap.same_two_edge(0, 4));
}

TEST(Snapshot, HandCheckedBridgesAndIsolation) {
  // Path 0-1-2 (both edges bridges) plus isolated vertex 3.
  const EdgeList g(4, {{0, 1}, {1, 2}});
  BccContext ctx(1);
  const Snapshot snap = make_snapshot(ctx, g);

  EXPECT_EQ(snap.num_blocks(), 2u);
  EXPECT_TRUE(snap.is_cut(1));
  EXPECT_FALSE(snap.same_block(0, 2));
  EXPECT_EQ(snap.path_articulation(0, 2), 1u);
  EXPECT_EQ(snap.path_articulation(0, 3), kNoVertex);  // disconnected
  EXPECT_EQ(snap.path_articulation(3, 3), 0u);
  EXPECT_FALSE(snap.same_block(3, 3));  // no incident edge, no block
  EXPECT_TRUE(snap.same_block(0, 0));
  EXPECT_FALSE(snap.same_two_edge(0, 1));  // bridge separates 2ec
  EXPECT_EQ(snap.num_two_edge_components(), 4u);

  // Out-of-range ids degrade to "no", never UB.
  EXPECT_FALSE(snap.is_cut(99));
  EXPECT_FALSE(snap.same_block(0, 99));
  EXPECT_EQ(snap.block_id(77), kNoVertex);
  EXPECT_EQ(snap.path_articulation(99, 0), kNoVertex);
  EXPECT_FALSE(snap.same_two_edge(99, 99));
}

TEST(Snapshot, MatchesBruteForceOnStructuredShapes) {
  BccContext ctx(4);
  expect_matches_oracles(ctx, gen::clique_chain(4, 4));
  expect_matches_oracles(ctx, gen::star(9));
  expect_matches_oracles(ctx, gen::barbell(4, 3));
  expect_matches_oracles(ctx, gen::binary_tree(15));
  expect_matches_oracles(ctx, EdgeList(3, {{0, 1}, {0, 1}, {1, 2}}));
}

TEST(Snapshot, MatchesBruteForceOnRandomGraphs) {
  BccContext ctx(4);
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    expect_matches_oracles(ctx, gen::random_gnm(60, 90, seed));
    expect_matches_oracles(ctx, gen::random_cactus(10, 5, seed));
  }
}

TEST(Snapshot, PathArticulationMatchesRemovalOracle) {
  BccContext ctx(4);
  expect_path_articulation_matches(ctx, gen::clique_chain(5, 3));
  expect_path_articulation_matches(ctx, gen::binary_tree(20));
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    expect_path_articulation_matches(ctx, gen::random_gnm(40, 55, seed));
  }
}

TEST(Service, PublishesEpochsInOrder) {
  BccContext ctx(2);
  BccService svc(ctx, gen::cycle(6));
  EXPECT_EQ(svc.version(), 0u);
  EXPECT_EQ(svc.snapshot()->num_blocks(), 1u);

  const Edge chord{0, 3};
  EXPECT_EQ(svc.apply_batch({&chord, 1}, {}), 1u);
  EXPECT_EQ(svc.version(), 1u);
  EXPECT_EQ(svc.snapshot()->m(), 7u);
  EXPECT_GT(svc.last_publish_seconds(), 0.0);

  const eid victim = 0;
  EXPECT_EQ(svc.apply_batch({}, {&victim, 1}), 2u);
  EXPECT_EQ(svc.snapshot()->m(), 6u);

  // A rejected batch publishes nothing.
  const Edge loop{1, 1};
  EXPECT_THROW(svc.apply_batch({&loop, 1}, {}), std::invalid_argument);
  EXPECT_EQ(svc.version(), 2u);
}

TEST(Service, OldEpochSurvivesRenormalizingBatches) {
  // renorm_label_limit = 1 forces the copy-on-renormalize path on every
  // batch: if renormalization rewrote shared storage in place, the
  // retained epoch's answers would shift under us.
  BccContext ctx(2);
  BatchDynamicOptions opt;
  opt.renorm_label_limit = 1;
  const EdgeList base = gen::random_connected_gnm(80, 160, 11);
  BccService svc(ctx, base, opt);

  const std::shared_ptr<const Snapshot> old = svc.snapshot();
  std::vector<vid> before_labels(old->m());
  for (eid e = 0; e < old->m(); ++e) before_labels[e] = old->block_id(e);
  std::vector<std::uint8_t> before_cuts(old->n());
  for (vid v = 0; v < old->n(); ++v) before_cuts[v] = old->is_cut(v);

  Xoshiro256 rng(11);
  for (int round = 0; round < 6; ++round) {
    std::vector<Edge> ins;
    for (int i = 0; i < 4; ++i) {
      const vid u = static_cast<vid>(rng() % 80);
      ins.push_back({u, static_cast<vid>((u + 1 + rng() % 78) % 80)});
    }
    const eid del = static_cast<eid>(rng() % svc.snapshot()->m());
    svc.apply_batch(ins, {&del, 1});
  }

  EXPECT_EQ(svc.version(), 6u);
  EXPECT_EQ(old->version(), 0u);
  EXPECT_EQ(old->m(), base.m());
  for (eid e = 0; e < old->m(); ++e) {
    ASSERT_EQ(old->block_id(e), before_labels[e]) << "edge " << e;
  }
  for (vid v = 0; v < old->n(); ++v) {
    ASSERT_EQ(old->is_cut(v), before_cuts[v] != 0) << "vertex " << v;
  }
}

TEST(Service, SnapshotMatchesStaticSolveAfterChurn) {
  BccContext ctx(4);
  BccService svc(ctx, gen::random_connected_gnm(150, 320, 3));
  Xoshiro256 rng(3);
  for (int round = 0; round < 5; ++round) {
    std::vector<Edge> ins;
    for (int i = 0; i < 6; ++i) {
      const vid u = static_cast<vid>(rng() % 150);
      ins.push_back({u, static_cast<vid>((u + 1 + rng() % 148) % 150)});
    }
    const eid del = static_cast<eid>(rng() % svc.snapshot()->m());
    svc.apply_batch(ins, {&del, 1});
  }

  const std::shared_ptr<const Snapshot> snap = svc.snapshot();
  const EdgeList& g = svc.engine().graph();
  const Snapshot fresh = make_snapshot(ctx, g, snap->version());
  ASSERT_EQ(snap->num_blocks(), fresh.num_blocks());
  ASSERT_EQ(snap->num_cut_vertices(), fresh.num_cut_vertices());
  std::vector<vid> got(g.m()), want(g.m());
  for (eid e = 0; e < g.m(); ++e) {
    got[e] = snap->block_id(e);
    want[e] = fresh.block_id(e);
  }
  EXPECT_TRUE(testutil::same_partition(got, want));
  for (vid v = 0; v < g.n; ++v) {
    ASSERT_EQ(snap->is_cut(v), fresh.is_cut(v));
  }
}

TEST(Service, ConcurrentReadersNeverBlockOnWriter) {
  // The TSan target of the serving layer: 4 readers hammer snapshot()
  // and query their epochs while the writer churns through batches and
  // publishes.  Readers assert epoch-internal invariants only (their
  // epoch may lag the writer by design).
  const vid n = 200;
  BccContext ctx(4);
  BccService svc(ctx, gen::random_connected_gnm(n, 420, 17));

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> reads{0};
  std::atomic<std::uint64_t> reads_during_write{0};
  std::atomic<bool> writing{false};

  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&, t] {
      Xoshiro256 rng(100 + t);
      while (!stop.load(std::memory_order_relaxed)) {
        const std::shared_ptr<const Snapshot> snap = svc.snapshot();
        const vid u = static_cast<vid>(rng() % n);
        const vid v = static_cast<vid>(rng() % n);
        if (snap->same_block(u, v)) {
          // Sharing a block implies sharing a 2EC component unless the
          // block is a single (bridge) edge.
          EXPECT_TRUE(snap->same_two_edge(u, v) ||
                      snap->path_articulation(u, v) == 0u);
        }
        EXPECT_EQ(snap->same_block(u, v), snap->same_block(v, u));
        const vid cut_count = snap->path_articulation(u, v);
        if (u != v && cut_count != kNoVertex && cut_count > 0) {
          EXPECT_FALSE(snap->same_block(u, v));
        }
        reads.fetch_add(1, std::memory_order_relaxed);
        if (writing.load(std::memory_order_relaxed)) {
          reads_during_write.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  Xoshiro256 rng(17);
  for (int round = 0; round < 10; ++round) {
    std::vector<Edge> ins;
    for (int i = 0; i < 8; ++i) {
      const vid u = static_cast<vid>(rng() % n);
      ins.push_back({u, static_cast<vid>((u + 1 + rng() % (n - 2)) % n)});
    }
    const eid del = static_cast<eid>(rng() % svc.snapshot()->m());
    writing.store(true, std::memory_order_relaxed);
    svc.apply_batch(ins, {&del, 1});
    writing.store(false, std::memory_order_relaxed);
  }

  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(svc.version(), 10u);
  EXPECT_GT(reads.load(), 0u);
}

// --- Wire protocol ---

/// Frames are length prefix + payload; decoders take the payload.
std::span<const std::uint8_t> payload_of(
    const std::vector<std::uint8_t>& frame) {
  return std::span<const std::uint8_t>(frame).subspan(4);
}

TEST(Protocol, QueryRoundTrip) {
  const std::vector<Query> queries{{Op::kSameBlock, 1, 2},
                                   {Op::kIsCut, 7, 0},
                                   {Op::kBlockId, 3, 0},
                                   {Op::kPathArticulation, 4, 9},
                                   {Op::kSameTwoEdge, 0, 0}};
  const std::vector<std::uint8_t> frame = server::encode_query_request(queries);
  EXPECT_EQ(server::decode_request_type(payload_of(frame)),
            server::MsgType::kQuery);
  const std::vector<Query> back =
      server::decode_query_request(payload_of(frame));
  ASSERT_EQ(back.size(), queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(back[i].op, queries[i].op);
    EXPECT_EQ(back[i].a, queries[i].a);
    EXPECT_EQ(back[i].b, queries[i].b);
  }

  const std::vector<std::uint32_t> results{1, 0, 5, kNoVertex, 1};
  const std::vector<std::uint8_t> reply =
      server::encode_query_reply(42, results);
  const QueryReply decoded = server::decode_query_reply(payload_of(reply));
  EXPECT_EQ(decoded.version, 42u);
  EXPECT_EQ(decoded.results, results);
}

TEST(Protocol, MutateAndInfoRoundTrip) {
  const std::vector<Edge> ins{{0, 5}, {3, 2}};
  const std::vector<eid> dels{9, 1, 4};
  const std::vector<std::uint8_t> frame =
      server::encode_mutate_request(ins, dels);
  EXPECT_EQ(server::decode_request_type(payload_of(frame)),
            server::MsgType::kMutate);
  const server::MutateRequest req =
      server::decode_mutate_request(payload_of(frame));
  ASSERT_EQ(req.insertions.size(), 2u);
  EXPECT_EQ(req.insertions[1].u, 3u);
  EXPECT_EQ(req.deletions, dels);

  InfoReply info;
  info.version = 3;
  info.n = 100;
  info.m = 250;
  info.num_blocks = 7;
  info.num_cut_vertices = 5;
  info.num_two_edge_components = 9;
  const std::vector<std::uint8_t> reply = server::encode_info_reply(info);
  const InfoReply back = server::decode_info_reply(payload_of(reply));
  EXPECT_EQ(back.version, 3u);
  EXPECT_EQ(back.m, 250u);
  EXPECT_EQ(back.num_two_edge_components, 9u);
}

TEST(Protocol, ErrorReplySurfacesMessage) {
  const std::vector<std::uint8_t> reply =
      server::encode_error_reply("boom: bad batch");
  try {
    server::decode_query_reply(payload_of(reply));
    FAIL() << "expected ProtocolError";
  } catch (const ProtocolError& e) {
    EXPECT_NE(std::string(e.what()).find("boom: bad batch"),
              std::string::npos);
  }
}

TEST(Protocol, RejectsMalformedPayloads) {
  EXPECT_THROW(server::decode_request_type({}), ProtocolError);
  const std::vector<std::uint8_t> unknown_type{99};
  EXPECT_THROW(server::decode_request_type(unknown_type), ProtocolError);

  // A declared query count larger than the bytes present must be
  // rejected before any allocation sized by it.
  std::vector<std::uint8_t> lying{1, 0xff, 0xff, 0xff, 0x7f};
  EXPECT_THROW(server::decode_query_request(lying), ProtocolError);

  // Truncated body.
  std::vector<std::uint8_t> frame = server::encode_query_request(
      std::vector<Query>{{Op::kIsCut, 1, 0}});
  std::vector<std::uint8_t> truncated(frame.begin() + 4, frame.end() - 2);
  EXPECT_THROW(server::decode_query_request(truncated), ProtocolError);

  // Trailing garbage.
  std::vector<std::uint8_t> padded(frame.begin() + 4, frame.end());
  padded.push_back(0);
  EXPECT_THROW(server::decode_query_request(padded), ProtocolError);

  // Unknown op inside a well-formed envelope.
  std::vector<Query> bad_op{{static_cast<Op>(77), 0, 0}};
  const std::vector<std::uint8_t> bad = server::encode_query_request(bad_op);
  EXPECT_THROW(server::decode_query_request(payload_of(bad)), ProtocolError);

  // Mutation counts past the hard cap.
  std::vector<std::uint8_t> huge{2};
  const std::uint32_t cap = server::kMaxMutationEdges + 1;
  for (int i = 0; i < 4; ++i) huge.push_back((cap >> (8 * i)) & 0xff);
  EXPECT_THROW(server::decode_mutate_request(huge), ProtocolError);
}

// --- TCP end-to-end ---

TEST(TcpServer, EndToEndQueryMutateInfo) {
  BccContext ctx(2);
  BccService svc(ctx, gen::clique_chain(3, 4));
  BccServer srv(svc);
  ASSERT_NE(srv.port(), 0);

  BccClient client("127.0.0.1", srv.port());
  const InfoReply info = client.info();
  EXPECT_EQ(info.version, 0u);
  EXPECT_EQ(info.n, svc.snapshot()->n());
  EXPECT_EQ(info.num_blocks, 3u);

  // Answers over the wire equal direct snapshot evaluation.
  std::vector<Query> queries;
  for (vid u = 0; u < info.n; ++u) {
    queries.push_back({Op::kIsCut, u, 0});
    queries.push_back({Op::kSameBlock, u, (u + 1) % info.n});
    queries.push_back({Op::kPathArticulation, 0, u});
  }
  const QueryReply reply = client.query(queries);
  EXPECT_EQ(reply.version, 0u);
  const std::shared_ptr<const Snapshot> snap = svc.snapshot();
  ASSERT_EQ(reply.results.size(), queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(reply.results[i], server::evaluate_query(*snap, queries[i]));
  }

  // Mutate over the wire; the reply reports the published epoch.
  const std::vector<Edge> ins{{0, static_cast<vid>(info.n - 1)}};
  const InfoReply after = client.apply_batch(ins, {});
  EXPECT_EQ(after.version, 1u);
  EXPECT_EQ(after.m, info.m + 1);
  EXPECT_EQ(svc.version(), 1u);

  // A malformed mutation earns an error reply, not a broken stream.
  const std::vector<Edge> loop{{2, 2}};
  EXPECT_THROW(client.apply_batch(loop, {}), ProtocolError);
  const InfoReply still = client.info();
  EXPECT_EQ(still.version, 1u);

  EXPECT_GE(srv.stats().query_batches.load(), 1u);
  EXPECT_GE(srv.stats().error_replies.load(), 1u);
}

TEST(TcpServer, SurvivesHostileFrames) {
  BccContext ctx(1);
  BccService svc(ctx, gen::cycle(5));
  BccServer srv(svc);

  // A decodable-but-invalid request: error reply, connection lives.
  BccClient client("127.0.0.1", srv.port());
  std::vector<Query> bad{{static_cast<Op>(200), 1, 1}};
  EXPECT_THROW(client.query(bad), ProtocolError);
  EXPECT_EQ(client.info().n, 5u);  // same connection still answers

  // Broken framing: an absurd length prefix closes the connection.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(srv.port());
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  const std::uint8_t hostile[4] = {0xff, 0xff, 0xff, 0xff};
  ASSERT_EQ(::write(fd, hostile, 4), 4);
  std::uint8_t buf[16];
  EXPECT_EQ(::read(fd, buf, sizeof(buf)), 0);  // clean close, no reply
  ::close(fd);

  // The server is still healthy for well-behaved clients.
  BccClient again("127.0.0.1", srv.port());
  EXPECT_EQ(again.info().num_blocks, 1u);
}

TEST(TcpServer, ConcurrentClientsDuringMutation) {
  const vid n = 120;
  BccContext ctx(4);
  BccService svc(ctx, gen::random_connected_gnm(n, 260, 23));
  BccServer srv(svc);

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> batches{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < 3; ++t) {
    clients.emplace_back([&, t] {
      BccClient c("127.0.0.1", srv.port());
      Xoshiro256 rng(40 + t);
      while (!stop.load(std::memory_order_relaxed)) {
        std::vector<Query> qs;
        for (int i = 0; i < 16; ++i) {
          qs.push_back({Op::kSameBlock, static_cast<vid>(rng() % n),
                        static_cast<vid>(rng() % n)});
        }
        const QueryReply r = c.query(qs);
        ASSERT_EQ(r.results.size(), qs.size());
        batches.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  BccClient writer("127.0.0.1", srv.port());
  Xoshiro256 rng(23);
  for (int round = 0; round < 6; ++round) {
    std::vector<Edge> ins;
    for (int i = 0; i < 5; ++i) {
      const vid u = static_cast<vid>(rng() % n);
      ins.push_back({u, static_cast<vid>((u + 1 + rng() % (n - 2)) % n)});
    }
    const InfoReply r = writer.apply_batch(ins, {});
    EXPECT_EQ(r.version, static_cast<std::uint64_t>(round + 1));
  }

  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : clients) t.join();
  EXPECT_GT(batches.load(), 0u);
  EXPECT_EQ(svc.version(), 6u);
  srv.stop();
  EXPECT_GE(srv.stats().connections_accepted.load(), 4u);
}

}  // namespace
}  // namespace parbcc
