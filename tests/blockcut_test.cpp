#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "connectivity/union_find.hpp"
#include "core/augmentation.hpp"
#include "core/bcc.hpp"
#include "core/block_cut_tree.hpp"
#include "graph/generators.hpp"
#include "test_util.hpp"
#include "util/thread_pool.hpp"

namespace parbcc {
namespace {

BccResult solve(Executor& ex, const EdgeList& g) {
  BccOptions opt;
  opt.algorithm = BccAlgorithm::kAuto;
  return biconnected_components(ex, g, opt);
}

TEST(BlockCutTree, CliqueChainShape) {
  Executor ex(2);
  const EdgeList g = gen::clique_chain(4, 4);
  const BccResult r = solve(ex, g);
  const BlockCutTree tree = build_block_cut_tree(ex, g, r);
  EXPECT_EQ(tree.num_blocks, 4u);
  EXPECT_EQ(tree.num_cut_nodes, 3u);
  // A chain of blocks: 2 leaves, 2 interior blocks, 6 tree edges.
  EXPECT_EQ(tree.edges.size(), 6u);
  vid leaves = 0;
  for (vid b = 0; b < tree.num_blocks; ++b) leaves += tree.is_leaf_block(b);
  EXPECT_EQ(leaves, 2u);
  // Each block of a 4-clique has 4 vertices.
  for (vid b = 0; b < tree.num_blocks; ++b) {
    EXPECT_EQ(tree.vertices_of_block(b).size(), 4u);
  }
}

TEST(BlockCutTree, StarShape) {
  Executor ex(1);
  const EdgeList g = gen::star(6);
  const BccResult r = solve(ex, g);
  const BlockCutTree tree = build_block_cut_tree(ex, g, r);
  EXPECT_EQ(tree.num_blocks, 5u);
  EXPECT_EQ(tree.num_cut_nodes, 1u);
  EXPECT_EQ(tree.cut_vertex[0], 0u);
  EXPECT_EQ(tree.edges.size(), 5u);
  for (vid b = 0; b < tree.num_blocks; ++b) {
    EXPECT_TRUE(tree.is_leaf_block(b));
  }
}

TEST(BlockCutTree, BiconnectedGraphIsOneBlockNoCuts) {
  Executor ex(2);
  const EdgeList g = gen::grid_torus(4, 4);
  const BccResult r = solve(ex, g);
  const BlockCutTree tree = build_block_cut_tree(ex, g, r);
  EXPECT_EQ(tree.num_blocks, 1u);
  EXPECT_EQ(tree.num_cut_nodes, 0u);
  EXPECT_TRUE(tree.edges.empty());
  EXPECT_EQ(tree.vertices_of_block(0).size(), g.n);
}

TEST(BlockCutTree, EdgesConnectBlocksToTheirCutVertices) {
  Executor ex(2);
  const EdgeList g = gen::random_connected_gnm(300, 360, 4);
  const BccResult r = solve(ex, g);
  const BlockCutTree tree = build_block_cut_tree(ex, g, r);
  // Validate each tree edge against raw membership.
  for (const Edge& e : tree.edges) {
    const vid block = e.u;
    const vid cut = tree.cut_vertex[e.v - tree.num_blocks];
    const auto members = tree.vertices_of_block(block);
    EXPECT_TRUE(std::find(members.begin(), members.end(), cut) !=
                members.end());
  }
  // Tree edge count = total cut-vertex memberships.
  std::size_t expected = 0;
  for (vid b = 0; b < tree.num_blocks; ++b) {
    for (const vid v : tree.vertices_of_block(b)) {
      expected += r.is_articulation[v] ? 1 : 0;
    }
  }
  EXPECT_EQ(tree.edges.size(), expected);
  // The block-cut structure of a connected graph is a tree: edges =
  // nodes - 1 over blocks + cut nodes.
  EXPECT_EQ(tree.edges.size(), tree.num_blocks + tree.num_cut_nodes - 1u);
}

TEST(BlockCutTree, RequiresCutInfo) {
  Executor ex(1);
  const EdgeList g = gen::cycle(4);
  BccOptions opt;
  opt.compute_cut_info = false;
  const BccResult r = biconnected_components(ex, g, opt);
  EXPECT_THROW(build_block_cut_tree(ex, g, r), std::invalid_argument);
}

void expect_biconnected_after_augmentation(Executor& ex, EdgeList g) {
  const BccResult before = solve(ex, g);
  const auto added = biconnectivity_augmentation(ex, g, before);
  for (const Edge& e : added) g.edges.push_back(e);
  const BccResult after = solve(ex, g);
  EXPECT_EQ(after.num_components, 1u)
      << "still " << after.num_components << " blocks after adding "
      << added.size() << " edges";
  for (const auto a : after.is_articulation) EXPECT_EQ(a, 0);
}

TEST(Augmentation, AlreadyBiconnectedAddsNothing) {
  Executor ex(2);
  const EdgeList g = gen::cycle(12);
  const BccResult r = solve(ex, g);
  EXPECT_TRUE(biconnectivity_augmentation(ex, g, r).empty());
}

TEST(Augmentation, PathBecomesBiconnected) {
  Executor ex(2);
  expect_biconnected_after_augmentation(ex, gen::path(30));
}

TEST(Augmentation, StarBecomesBiconnected) {
  Executor ex(2);
  expect_biconnected_after_augmentation(ex, gen::star(20));
}

TEST(Augmentation, CliqueChainBecomesBiconnected) {
  Executor ex(2);
  expect_biconnected_after_augmentation(ex, gen::clique_chain(6, 5));
}

TEST(Augmentation, CactusBecomesBiconnected) {
  Executor ex(2);
  expect_biconnected_after_augmentation(ex, gen::random_cactus(25, 6, 3));
}

TEST(Augmentation, DisconnectedWithIsolatedVertices) {
  Executor ex(2);
  // Two triangles, a path, and two isolated vertices.
  EdgeList g(12, {{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}, {6, 7},
                  {7, 8}});
  expect_biconnected_after_augmentation(ex, g);
}

TEST(Augmentation, SparseRandomGraphsSweep) {
  Executor ex(2);
  for (const int seed : {1, 2, 3, 4, 5}) {
    expect_biconnected_after_augmentation(
        ex, gen::random_gnm(150, 170, seed));
  }
}

TEST(Augmentation, RejectsTinyGraphs) {
  Executor ex(1);
  const EdgeList g(2, {{0, 1}});
  const BccResult r = solve(ex, g);
  EXPECT_THROW(biconnectivity_augmentation(ex, g, r), std::invalid_argument);
}

}  // namespace
}  // namespace parbcc
