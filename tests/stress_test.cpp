#include <gtest/gtest.h>

#include "core/bcc.hpp"
#include "core/validate.hpp"
#include "graph/generators.hpp"
#include "test_util.hpp"
#include "util/thread_pool.hpp"

/// Larger-scale property sweeps: the certificate validator replaces the
/// brute-force oracles, so these run at sizes where the O(n*m)
/// references would take minutes.

namespace parbcc {
namespace {

void check(Executor& ex, const EdgeList& g, BccAlgorithm algorithm) {
  BccOptions opt;
  opt.algorithm = algorithm;
  const BccResult r = biconnected_components(ex, g, opt);
  const ValidationReport report = validate_bcc(ex, g, r);
  ASSERT_TRUE(report.ok) << to_string(algorithm) << ": " << report.message;
}

class StressParam
    : public ::testing::TestWithParam<std::tuple<BccAlgorithm, int>> {};

TEST_P(StressParam, MediumRandomGraphsValidate) {
  const auto [algorithm, seed] = GetParam();
  Executor ex(4);
  const vid n = 20000;
  const eid m = static_cast<eid>((1 + seed % 4)) * 2 * n;
  check(ex, gen::random_connected_gnm(n, m, seed), algorithm);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, StressParam,
    ::testing::Combine(::testing::Values(BccAlgorithm::kTvSmp,
                                         BccAlgorithm::kTvOpt,
                                         BccAlgorithm::kTvFilter),
                       ::testing::Values(1, 2, 3, 4)));

TEST(Stress, RmatSkewDegreesAllAlgorithms) {
  Executor ex(4);
  const EdgeList g = gen::rmat(14, 8, 3);  // 16k vertices, heavy skew
  for (const BccAlgorithm algorithm :
       {BccAlgorithm::kTvSmp, BccAlgorithm::kTvOpt, BccAlgorithm::kTvFilter}) {
    check(ex, g, algorithm);
  }
}

TEST(Stress, LargeCactusTvFilter) {
  Executor ex(4);
  const EdgeList g = gen::random_cactus(5000, 12, 7);
  check(ex, g, BccAlgorithm::kTvFilter);
  check(ex, g, BccAlgorithm::kTvOpt);
}

TEST(Stress, WideShallowAndNarrowDeep) {
  Executor ex(4);
  // Wide: star-of-cliques; deep: long cycle.
  EdgeList star_cliques(1 + 50 * 4, {});
  for (vid b = 0; b < 50; ++b) {
    const vid base = 1 + 4 * b;
    for (vid i = 0; i < 4; ++i) {
      for (vid j = i + 1; j < 4; ++j) {
        star_cliques.add_edge(base + i, base + j);
      }
      star_cliques.add_edge(0, base + i);
    }
  }
  check(ex, star_cliques, BccAlgorithm::kTvOpt);
  check(ex, star_cliques, BccAlgorithm::kTvFilter);
  check(ex, gen::cycle(100000), BccAlgorithm::kTvOpt);
}

TEST(Stress, CrossAlgorithmPartitionsIdentical) {
  Executor ex(4);
  const EdgeList g = gen::random_connected_gnm(30000, 150000, 9);
  BccOptions opt;
  opt.compute_cut_info = false;
  opt.algorithm = BccAlgorithm::kTvSmp;
  const BccResult a = biconnected_components(ex, g, opt);
  opt.algorithm = BccAlgorithm::kTvOpt;
  const BccResult b = biconnected_components(ex, g, opt);
  opt.algorithm = BccAlgorithm::kTvFilter;
  const BccResult c = biconnected_components(ex, g, opt);
  ASSERT_EQ(a.num_components, b.num_components);
  ASSERT_EQ(a.num_components, c.num_components);
  EXPECT_TRUE(testutil::same_partition(a.edge_component, b.edge_component));
  EXPECT_TRUE(testutil::same_partition(a.edge_component, c.edge_component));
}

TEST(Stress, FullWidthAllAlgorithms) {
  // Full SPMD width (oversubscribed on small hosts, which only widens
  // the interleaving space): the race surface the sanitize-smoke suite
  // is pointed at — work-stealing traversal, CSR bucket scatter, SV
  // hooks under 12-way contention.
  Executor ex(12);
  const EdgeList g = gen::random_connected_gnm(20000, 120000, 13);
  for (const BccAlgorithm algorithm :
       {BccAlgorithm::kTvSmp, BccAlgorithm::kTvOpt, BccAlgorithm::kTvFilter}) {
    check(ex, g, algorithm);
  }
}

TEST(Stress, RepeatedRunsAreDeterministicAtOneThread) {
  Executor ex(1);
  const EdgeList g = gen::random_connected_gnm(5000, 20000, 11);
  BccOptions opt;
  opt.algorithm = BccAlgorithm::kTvOpt;
  const BccResult a = biconnected_components(ex, g, opt);
  const BccResult b = biconnected_components(ex, g, opt);
  EXPECT_EQ(a.edge_component, b.edge_component);  // exact, not just partition
  EXPECT_EQ(a.bridges, b.bridges);
}

}  // namespace
}  // namespace parbcc
