#include <gtest/gtest.h>

#include <cstdint>
#include <iterator>

#include "core/bcc.hpp"
#include "core/validate.hpp"
#include "graph/generators.hpp"
#include "test_util.hpp"
#include "util/thread_pool.hpp"

/// Larger-scale property sweeps: the certificate validator replaces the
/// brute-force oracles, so these run at sizes where the O(n*m)
/// references would take minutes.

namespace parbcc {
namespace {

void check(Executor& ex, const EdgeList& g, BccAlgorithm algorithm) {
  BccOptions opt;
  opt.algorithm = algorithm;
  const BccResult r = biconnected_components(ex, g, opt);
  const ValidationReport report = validate_bcc(ex, g, r);
  ASSERT_TRUE(report.ok) << to_string(algorithm) << ": " << report.message;
}

class StressParam
    : public ::testing::TestWithParam<std::tuple<BccAlgorithm, int>> {};

TEST_P(StressParam, MediumRandomGraphsValidate) {
  const auto [algorithm, seed] = GetParam();
  Executor ex(4);
  const vid n = 20000;
  const eid m = static_cast<eid>((1 + seed % 4)) * 2 * n;
  check(ex, gen::random_connected_gnm(n, m, seed), algorithm);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, StressParam,
    ::testing::Combine(::testing::Values(BccAlgorithm::kTvSmp,
                                         BccAlgorithm::kTvOpt,
                                         BccAlgorithm::kTvFilter,
                                         BccAlgorithm::kFastBcc),
                       ::testing::Values(1, 2, 3, 4)));

TEST(Stress, RmatSkewDegreesAllAlgorithms) {
  Executor ex(4);
  const EdgeList g = gen::rmat(14, 8, 3);  // 16k vertices, heavy skew
  for (const BccAlgorithm algorithm :
       {BccAlgorithm::kTvSmp, BccAlgorithm::kTvOpt, BccAlgorithm::kTvFilter,
        BccAlgorithm::kFastBcc}) {
    check(ex, g, algorithm);
  }
}

TEST(Stress, LargeCactusTvFilter) {
  Executor ex(4);
  const EdgeList g = gen::random_cactus(5000, 12, 7);
  check(ex, g, BccAlgorithm::kTvFilter);
  check(ex, g, BccAlgorithm::kTvOpt);
  check(ex, g, BccAlgorithm::kFastBcc);  // every cycle is its own cluster
}

TEST(Stress, WideShallowAndNarrowDeep) {
  Executor ex(4);
  // Wide: star-of-cliques; deep: long cycle.
  EdgeList star_cliques(1 + 50 * 4, {});
  for (vid b = 0; b < 50; ++b) {
    const vid base = 1 + 4 * b;
    for (vid i = 0; i < 4; ++i) {
      for (vid j = i + 1; j < 4; ++j) {
        star_cliques.add_edge(base + i, base + j);
      }
      star_cliques.add_edge(0, base + i);
    }
  }
  check(ex, star_cliques, BccAlgorithm::kTvOpt);
  check(ex, star_cliques, BccAlgorithm::kTvFilter);
  check(ex, gen::cycle(100000), BccAlgorithm::kTvOpt);
}

TEST(Stress, CrossAlgorithmPartitionsIdentical) {
  Executor ex(4);
  const EdgeList g = gen::random_connected_gnm(30000, 150000, 9);
  BccOptions opt;
  opt.compute_cut_info = false;
  opt.algorithm = BccAlgorithm::kTvSmp;
  const BccResult a = biconnected_components(ex, g, opt);
  opt.algorithm = BccAlgorithm::kTvOpt;
  const BccResult b = biconnected_components(ex, g, opt);
  opt.algorithm = BccAlgorithm::kTvFilter;
  const BccResult c = biconnected_components(ex, g, opt);
  opt.algorithm = BccAlgorithm::kFastBcc;
  const BccResult d = biconnected_components(ex, g, opt);
  ASSERT_EQ(a.num_components, b.num_components);
  ASSERT_EQ(a.num_components, c.num_components);
  ASSERT_EQ(a.num_components, d.num_components);
  EXPECT_TRUE(testutil::same_partition(a.edge_component, b.edge_component));
  EXPECT_TRUE(testutil::same_partition(a.edge_component, c.edge_component));
  EXPECT_TRUE(testutil::same_partition(a.edge_component, d.edge_component));
}

TEST(Stress, FullWidthAllAlgorithms) {
  // Full SPMD width (oversubscribed on small hosts, which only widens
  // the interleaving space): the race surface the sanitize-smoke suite
  // is pointed at — work-stealing traversal, CSR bucket scatter, SV
  // hooks under 12-way contention.
  Executor ex(12);
  const EdgeList g = gen::random_connected_gnm(20000, 120000, 13);
  for (const BccAlgorithm algorithm :
       {BccAlgorithm::kTvSmp, BccAlgorithm::kTvOpt, BccAlgorithm::kTvFilter,
        BccAlgorithm::kFastBcc}) {
    check(ex, g, algorithm);
  }
}

class ContextReuseParam : public ::testing::TestWithParam<int> {};

TEST_P(ContextReuseParam, BackToBackSolvesMatchFreshContexts) {
  // One BccContext carried across solves of different graphs with
  // different algorithms: the arena is rewound and regrown across
  // wildly different problem shapes, and every answer must match a
  // fresh single-use context solving the same problem.
  const int p = GetParam();
  BccContext ctx(p);
  BccOptions opt;
  opt.compute_cut_info = true;

  const EdgeList graphs[] = {
      gen::random_connected_gnm(15000, 60000, 31),
      gen::rmat(13, 8, 32),
      gen::random_cactus(2000, 10, 33),
      gen::cycle(50000),
      gen::random_connected_gnm(10000, 80000, 34),
  };
  const BccAlgorithm algorithms[] = {
      BccAlgorithm::kTvSmp, BccAlgorithm::kTvOpt, BccAlgorithm::kTvFilter,
      BccAlgorithm::kSequential, BccAlgorithm::kFastBcc};

  for (std::size_t i = 0; i < std::size(graphs); ++i) {
    opt.algorithm = algorithms[i % std::size(algorithms)];
    const BccResult reused = biconnected_components(ctx, graphs[i], opt);

    BccContext fresh(p);
    const BccResult baseline = biconnected_components(fresh, graphs[i], opt);

    ASSERT_EQ(reused.num_components, baseline.num_components)
        << "graph " << i << " with " << to_string(opt.algorithm);
    ASSERT_TRUE(testutil::same_partition(reused.edge_component,
                                         baseline.edge_component));
    ASSERT_EQ(reused.is_articulation, baseline.is_articulation);
    ASSERT_EQ(reused.bridges, baseline.bridges);
  }

  // Second lap over the same graphs: the context is now warm at every
  // shape it will see, so the arena must not grow again.
  const std::uint64_t growth = ctx.workspace().growth_count();
  for (std::size_t i = 0; i < std::size(graphs); ++i) {
    opt.algorithm = algorithms[i % std::size(algorithms)];
    const BccResult again = biconnected_components(ctx, graphs[i], opt);
    ASSERT_GT(again.num_components, 0u);
  }
  EXPECT_EQ(ctx.workspace().growth_count(), growth);
}

INSTANTIATE_TEST_SUITE_P(Widths, ContextReuseParam,
                         ::testing::Values(1, 4, 12));

TEST(Stress, RepeatedRunsAreDeterministicAtOneThread) {
  Executor ex(1);
  const EdgeList g = gen::random_connected_gnm(5000, 20000, 11);
  BccOptions opt;
  opt.algorithm = BccAlgorithm::kTvOpt;
  const BccResult a = biconnected_components(ex, g, opt);
  const BccResult b = biconnected_components(ex, g, opt);
  EXPECT_EQ(a.edge_component, b.edge_component);  // exact, not just partition
  EXPECT_EQ(a.bridges, b.bridges);
}

}  // namespace
}  // namespace parbcc
