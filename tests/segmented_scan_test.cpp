#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "scan/segmented_scan.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace parbcc {
namespace {

class SegScanParam
    : public ::testing::TestWithParam<std::tuple<std::size_t, int, int>> {};

TEST_P(SegScanParam, MatchesSerialReference) {
  const auto [n, threads, seg_percent] = GetParam();
  Executor ex(threads);
  Xoshiro256 rng(n * 13 + threads + seg_percent);
  std::vector<std::uint64_t> in(n);
  std::vector<std::uint8_t> flags(n);
  for (std::size_t i = 0; i < n; ++i) {
    in[i] = rng.below(100);
    flags[i] = rng.below(100) < static_cast<std::uint64_t>(seg_percent);
  }
  std::vector<std::uint64_t> out(n);
  segmented_inclusive_scan(ex, in.data(), flags.data(), out.data(), n);
  std::uint64_t running = 0;
  for (std::size_t i = 0; i < n; ++i) {
    running = flags[i] ? in[i] : running + in[i];
    ASSERT_EQ(out[i], running) << "at " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SegScanParam,
    ::testing::Combine(::testing::Values<std::size_t>(1, 100, 2047, 2048,
                                                      100000),
                       ::testing::Values(1, 2, 4, 7),
                       ::testing::Values(0, 3, 50, 100)));

TEST(SegmentedScan, NoFlagsEqualsPlainScan) {
  Executor ex(4);
  const std::size_t n = 50000;
  std::vector<std::uint64_t> in(n, 1);
  std::vector<std::uint8_t> flags(n, 0);
  std::vector<std::uint64_t> out(n);
  segmented_inclusive_scan(ex, in.data(), flags.data(), out.data(), n);
  for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(out[i], i + 1);
}

TEST(SegmentedScan, EveryIndexFlaggedIsIdentity) {
  Executor ex(4);
  const std::size_t n = 30000;
  std::vector<std::uint64_t> in(n);
  for (std::size_t i = 0; i < n; ++i) in[i] = i * 3;
  std::vector<std::uint8_t> flags(n, 1);
  std::vector<std::uint64_t> out(n);
  segmented_inclusive_scan(ex, in.data(), flags.data(), out.data(), n);
  EXPECT_EQ(out, in);
}

TEST(SegmentedScan, InPlaceAliasing) {
  Executor ex(3);
  const std::size_t n = 10000;
  std::vector<std::uint64_t> data(n, 2);
  std::vector<std::uint8_t> flags(n, 0);
  for (std::size_t i = 0; i < n; i += 100) flags[i] = 1;
  auto expect = data;
  {
    std::uint64_t running = 0;
    for (std::size_t i = 0; i < n; ++i) {
      running = flags[i] ? data[i] : running + data[i];
      expect[i] = running;
    }
  }
  segmented_inclusive_scan(ex, data.data(), flags.data(), data.data(), n);
  EXPECT_EQ(data, expect);
}

}  // namespace
}  // namespace parbcc
