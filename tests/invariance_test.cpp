#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "core/bcc.hpp"
#include "graph/generators.hpp"
#include "test_util.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

/// Metamorphic properties: transformations of the input with a known
/// effect on the output.  These catch bugs that equivalence tests
/// against a single oracle can miss (the oracle could share them).

namespace parbcc {
namespace {

BccResult solve(const EdgeList& g, BccAlgorithm algorithm) {
  Executor ex(3);
  BccOptions opt;
  opt.algorithm = algorithm;
  return biconnected_components(ex, g, opt);
}

const BccAlgorithm kParallel[] = {BccAlgorithm::kTvSmp, BccAlgorithm::kTvOpt,
                                  BccAlgorithm::kTvFilter,
                                  BccAlgorithm::kFastBcc};

TEST(Invariance, VertexRelabelingPermutesTheResult) {
  const EdgeList g = gen::random_connected_gnm(400, 1200, 5);
  Xoshiro256 rng(9);
  std::vector<vid> perm(g.n);
  std::iota(perm.begin(), perm.end(), 0);
  std::shuffle(perm.begin(), perm.end(), rng);

  EdgeList h;
  h.n = g.n;
  for (const Edge& e : g.edges) h.edges.push_back({perm[e.u], perm[e.v]});

  for (const auto algorithm : kParallel) {
    const BccResult rg = solve(g, algorithm);
    const BccResult rh = solve(h, algorithm);
    ASSERT_EQ(rg.num_components, rh.num_components) << to_string(algorithm);
    // Edge order is unchanged, so the partitions must coincide.
    EXPECT_TRUE(
        testutil::same_partition(rg.edge_component, rh.edge_component));
    // Articulation flags transport through the permutation.
    for (vid v = 0; v < g.n; ++v) {
      ASSERT_EQ(rg.is_articulation[v], rh.is_articulation[perm[v]]);
    }
  }
}

TEST(Invariance, EdgeOrderShufflePermutesLabelsConsistently) {
  const EdgeList g = gen::random_connected_gnm(300, 900, 6);
  Xoshiro256 rng(10);
  std::vector<eid> perm(g.m());
  std::iota(perm.begin(), perm.end(), 0);
  std::shuffle(perm.begin(), perm.end(), rng);

  EdgeList h;
  h.n = g.n;
  h.edges.resize(g.m());
  for (eid e = 0; e < g.m(); ++e) h.edges[perm[e]] = g.edges[e];

  for (const auto algorithm : kParallel) {
    const BccResult rg = solve(g, algorithm);
    const BccResult rh = solve(h, algorithm);
    ASSERT_EQ(rg.num_components, rh.num_components);
    std::vector<vid> transported(g.m());
    for (eid e = 0; e < g.m(); ++e) transported[e] = rh.edge_component[perm[e]];
    EXPECT_TRUE(testutil::same_partition(rg.edge_component, transported));
    EXPECT_EQ(rg.is_articulation, rh.is_articulation);
  }
}

TEST(Invariance, IntraBlockEdgeDoesNotDisturbOtherBlocks) {
  // Adding an edge between two vertices of one block must not change
  // the rest of the partition (the block absorbs the new edge).
  const EdgeList g = gen::clique_chain(6, 5);
  const BccResult base = solve(g, BccAlgorithm::kTvOpt);

  // Vertices 0 and 1 live in the first clique: re-add an absent pair?
  // Cliques are complete, so use a parallel edge — same block property.
  EdgeList h = g;
  h.add_edge(0, 2);
  for (const auto algorithm : kParallel) {
    const BccResult r = solve(h, algorithm);
    ASSERT_EQ(r.num_components, base.num_components);
    // Old edges keep their grouping.
    std::vector<vid> old_labels(r.edge_component.begin(),
                                r.edge_component.end() - 1);
    EXPECT_TRUE(testutil::same_partition(old_labels, base.edge_component));
    // The new edge joins edge 0's block (both are inside clique 0).
    EXPECT_EQ(r.edge_component.back(), r.edge_component[0]);
  }
}

TEST(Invariance, CrossBlockEdgeMergesExactlyThePathOfBlocks) {
  // A path of b blocks: adding an edge between the two extreme vertices
  // merges ALL blocks into one.
  const EdgeList g = gen::cycle_chain(5, 4);
  EdgeList h = g;
  h.add_edge(0, h.n - 1);
  for (const auto algorithm : kParallel) {
    const BccResult before = solve(g, algorithm);
    const BccResult after = solve(h, algorithm);
    ASSERT_EQ(before.num_components, 5u);
    ASSERT_EQ(after.num_components, 1u) << to_string(algorithm);
  }
}

TEST(Invariance, SubdividingABridgeAddsABlock) {
  // Replacing bridge (u,v) by u-w-v turns one bridge block into two.
  EdgeList g(6, {{0, 1}, {1, 2}, {2, 0}, {2, 3}, {3, 4}, {4, 5}, {5, 3}});
  const BccResult before = solve(g, BccAlgorithm::kTvFilter);
  ASSERT_EQ(before.num_components, 3u);

  EdgeList h(7, {{0, 1}, {1, 2}, {2, 0}, {2, 6}, {6, 3}, {3, 4}, {4, 5},
                 {5, 3}});
  for (const auto algorithm : kParallel) {
    const BccResult after = solve(h, algorithm);
    ASSERT_EQ(after.num_components, 4u) << to_string(algorithm);
    EXPECT_EQ(after.bridges.size(), 2u);
  }
}

TEST(Invariance, DuplicatingABridgeRemovesIt) {
  const EdgeList g = gen::path(5);
  EdgeList h = g;
  h.add_edge(1, 2);  // double one interior edge
  for (const auto algorithm : kParallel) {
    const BccResult r = solve(h, algorithm);
    ASSERT_EQ(r.num_components, 4u) << to_string(algorithm);
    EXPECT_EQ(r.bridges.size(), 3u);
    EXPECT_EQ(r.edge_component[1], r.edge_component.back());
  }
}

TEST(Invariance, ExecModeNeverChangesThePartition) {
  // Work-stealing and the paper's SPMD schedule interleave hooks and
  // CAS claims completely differently; the partition must not care.
  // The power-law instance is the adversarial case: its hub adjacency
  // is exactly what the nested regions re-split at run time.
  for (const EdgeList& g : {gen::random_power_law(1500, 9000, 2.1, 13),
                            gen::random_connected_gnm(800, 4000, 14)}) {
    for (const auto algorithm : kParallel) {
      Executor ex(4);
      BccOptions opt;
      opt.algorithm = algorithm;
      opt.exec_mode = ExecMode::kWorkSteal;
      const BccResult ws = biconnected_components(ex, g, opt);
      opt.exec_mode = ExecMode::kSpmd;
      const BccResult spmd = biconnected_components(ex, g, opt);
      ASSERT_EQ(ws.num_components, spmd.num_components)
          << to_string(algorithm);
      EXPECT_TRUE(testutil::same_partition(ws.edge_component,
                                           spmd.edge_component));
      EXPECT_EQ(ws.is_articulation, spmd.is_articulation);
      EXPECT_EQ(ws.bridges, spmd.bridges);
    }
  }
}

TEST(Invariance, ThreadCountNeverChangesThePartition) {
  const EdgeList g = gen::random_connected_gnm(500, 2500, 12);
  for (const auto algorithm : kParallel) {
    BccOptions opt;
    opt.algorithm = algorithm;
    Executor ex1(1);
    const BccResult base = biconnected_components(ex1, g, opt);
    for (const int threads : {2, 3, 8}) {
      Executor ex(threads);
      const BccResult r = biconnected_components(ex, g, opt);
      ASSERT_EQ(r.num_components, base.num_components)
          << to_string(algorithm) << " threads=" << threads;
      EXPECT_TRUE(testutil::same_partition(r.edge_component,
                                           base.edge_component));
      EXPECT_EQ(r.is_articulation, base.is_articulation);
      EXPECT_EQ(r.bridges, base.bridges);
    }
  }
}

}  // namespace
}  // namespace parbcc
