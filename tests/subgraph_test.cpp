#include <gtest/gtest.h>

#include "core/bcc.hpp"
#include "graph/generators.hpp"
#include "graph/subgraph.hpp"
#include "test_util.hpp"
#include "util/thread_pool.hpp"

namespace parbcc {
namespace {

TEST(Subgraph, ExtractEdgesRelabelsByFirstAppearance) {
  EdgeList g(10, {{7, 3}, {3, 9}, {1, 2}});
  const std::vector<eid> pick = {0, 1};
  const Subgraph sub = extract_edges(g, pick);
  EXPECT_EQ(sub.graph.n, 3u);
  EXPECT_EQ(sub.vertex_of, (std::vector<vid>{7, 3, 9}));
  EXPECT_EQ(sub.edge_of, (std::vector<eid>{0, 1}));
  EXPECT_EQ(sub.graph.edges[0], (Edge{0, 1}));
  EXPECT_EQ(sub.graph.edges[1], (Edge{1, 2}));
}

TEST(Subgraph, ExtractLabelPullsOneBlock) {
  Executor ex(2);
  const EdgeList g = gen::clique_chain(3, 4);
  const BccResult r = biconnected_components(ex, g, {});
  ASSERT_EQ(r.num_components, 3u);
  for (vid b = 0; b < 3; ++b) {
    const Subgraph sub = extract_label(g, r.edge_component, b);
    EXPECT_EQ(sub.graph.n, 4u);
    EXPECT_EQ(sub.graph.m(), 6u);
    // Each extracted clique is itself biconnected.
    const testutil::RefBcc ref = testutil::reference_bcc(sub.graph);
    EXPECT_EQ(ref.count, 1u);
  }
}

TEST(Subgraph, EmptySelection) {
  const EdgeList g = gen::cycle(5);
  const Subgraph sub = extract_edges(g, std::vector<eid>{});
  EXPECT_EQ(sub.graph.n, 0u);
  EXPECT_TRUE(sub.graph.edges.empty());
}

TEST(Subgraph, DegreesCountLoopsAndParallels) {
  EdgeList g(3, {{0, 1}, {0, 1}, {2, 2}});
  const auto deg = degrees(g);
  EXPECT_EQ(deg, (std::vector<eid>{2, 2, 2}));
}

}  // namespace
}  // namespace parbcc
