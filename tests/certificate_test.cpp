#include <gtest/gtest.h>

#include "core/bcc.hpp"
#include "graph/generators.hpp"
#include "spanning/certificate.hpp"
#include "spanning/forest.hpp"
#include "test_util.hpp"
#include "util/thread_pool.hpp"

namespace parbcc {
namespace {

bool has_bridge(Executor& ex, const EdgeList& g) {
  BccOptions opt;
  const BccResult r = biconnected_components(ex, g, opt);
  return !r.bridges.empty();
}

bool is_biconnected(Executor& ex, const EdgeList& g) {
  BccOptions opt;
  const BccResult r = biconnected_components(ex, g, opt);
  if (r.num_components != 1) return false;
  for (const auto a : r.is_articulation) {
    if (a) return false;
  }
  return true;
}

TEST(Certificate, ForestsAreDisjointMaximalAndBounded) {
  Executor ex(3);
  const EdgeList g = gen::random_connected_gnm(500, 4000, 3);
  for (const bool vertex_variant : {false, true}) {
    const SparseCertificate cert =
        vertex_variant ? sparse_certificate_vertex(ex, g, 3)
                       : sparse_certificate_edge(ex, g, 3);
    ASSERT_EQ(cert.forest_offsets.size(), 4u);
    EXPECT_LE(cert.edges.size(), 3u * (g.n - 1));
    std::vector<std::uint8_t> seen(g.m(), 0);
    for (unsigned f = 0; f < 3; ++f) {
      std::vector<eid> forest(
          cert.edges.begin() + cert.forest_offsets[f],
          cert.edges.begin() + cert.forest_offsets[f + 1]);
      EXPECT_TRUE(is_forest(g.n, g.edges, forest)) << "forest " << f;
      // The first forest of a connected graph is spanning.
      if (f == 0) {
        EXPECT_EQ(forest.size(), g.n - 1);
      }
      for (const eid e : forest) {
        EXPECT_FALSE(seen[e]) << "edge reused across forests";
        seen[e] = 1;
      }
    }
  }
}

TEST(Certificate, K1PreservesConnectivity) {
  Executor ex(2);
  const EdgeList g = gen::random_gnm(800, 900, 7);  // disconnected mix
  const SparseCertificate cert = sparse_certificate_edge(ex, g, 1);
  const EdgeList sub = cert.subgraph(g);
  EXPECT_EQ(testutil::component_count(sub), testutil::component_count(g));
}

class CertParam : public ::testing::TestWithParam<int> {};

TEST_P(CertParam, K2EdgeVariantPreservesBridgelessness) {
  const int seed = GetParam();
  Executor ex(3);
  // Dense-ish connected: bridgeless with high probability; also test a
  // bridge-carrying graph below.
  const EdgeList g = gen::random_connected_gnm(300, 1800, seed);
  const SparseCertificate cert = sparse_certificate_edge(ex, g, 2);
  const EdgeList sub = cert.subgraph(g);
  EXPECT_EQ(has_bridge(ex, g), has_bridge(ex, sub));
}

TEST_P(CertParam, K2BfsVariantPreservesBiconnectivity) {
  const int seed = GetParam();
  Executor ex(3);
  const EdgeList g = gen::random_connected_gnm(300, 1800, seed);
  const SparseCertificate cert = sparse_certificate_vertex(ex, g, 2);
  const EdgeList sub = cert.subgraph(g);
  EXPECT_EQ(is_biconnected(ex, g), is_biconnected(ex, sub));
  // Stronger (paper Theorem 2): the BFS-based k=2 certificate keeps the
  // whole block structure — same number of blocks, same articulation
  // vertices.
  BccOptions opt;
  const BccResult full = biconnected_components(ex, g, opt);
  const BccResult sparse = biconnected_components(ex, sub, opt);
  EXPECT_EQ(full.num_components, sparse.num_components);
  EXPECT_EQ(full.is_articulation, sparse.is_articulation);
}

INSTANTIATE_TEST_SUITE_P(Sweep, CertParam, ::testing::Range(1, 9));

TEST(Certificate, BridgeGraphKeepsItsBridge) {
  Executor ex(2);
  // Two cliques joined by one bridge.
  const EdgeList g = gen::barbell(6, 1);
  for (const bool vertex_variant : {false, true}) {
    const SparseCertificate cert =
        vertex_variant ? sparse_certificate_vertex(ex, g, 2)
                       : sparse_certificate_edge(ex, g, 2);
    const EdgeList sub = cert.subgraph(g);
    EXPECT_TRUE(has_bridge(ex, sub));
  }
}

TEST(Certificate, RejectsKZero) {
  Executor ex(1);
  const EdgeList g = gen::cycle(4);
  EXPECT_THROW(sparse_certificate_edge(ex, g, 0), std::invalid_argument);
  EXPECT_THROW(sparse_certificate_vertex(ex, g, 0), std::invalid_argument);
}

}  // namespace
}  // namespace parbcc
