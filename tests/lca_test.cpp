#include <gtest/gtest.h>

#include <functional>

#include "eulertour/tree_computations.hpp"
#include "graph/generators.hpp"
#include "rmq/lca.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace parbcc {
namespace {

struct TreeFixture {
  RootedSpanningTree tree;
  ChildrenCsr children;
  LevelStructure levels;

  TreeFixture(Executor& ex, std::vector<vid> parent, vid root) {
    tree.root = root;
    tree.parent = std::move(parent);
    children = build_children(ex, tree.parent, root);
    levels = build_levels(ex, children, root);
    preorder_and_size(ex, children, levels, root, tree.pre, tree.sub);
  }
};

/// Uniform-attachment random parent array.
std::vector<vid> random_parents(vid n, std::uint64_t seed) {
  std::vector<vid> parent(n);
  parent[0] = 0;
  Xoshiro256 rng(seed);
  for (vid v = 1; v < n; ++v) parent[v] = static_cast<vid>(rng.below(v));
  return parent;
}

vid brute_force_lca(const std::vector<vid>& parent,
                    const std::vector<vid>& depth, vid u, vid v) {
  while (u != v) {
    if (depth[u] >= depth[v]) {
      u = parent[u];
    } else {
      v = parent[v];
    }
  }
  return u;
}

class LcaParam : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(LcaParam, MatchesParentWalk) {
  const auto [threads, n] = GetParam();
  Executor ex(threads);
  TreeFixture fx(ex, random_parents(static_cast<vid>(n), n * 11 + 1), 0);
  const LcaIndex index(ex, fx.tree, fx.children, fx.levels);

  Xoshiro256 rng(n);
  for (int q = 0; q < 1000; ++q) {
    const vid u = static_cast<vid>(rng.below(static_cast<vid>(n)));
    const vid v = static_cast<vid>(rng.below(static_cast<vid>(n)));
    const vid expect =
        brute_force_lca(fx.tree.parent, fx.levels.depth, u, v);
    ASSERT_EQ(index.lca(u, v), expect) << "u=" << u << " v=" << v;
    const vid dist = fx.levels.depth[u] + fx.levels.depth[v] -
                     2 * fx.levels.depth[expect];
    ASSERT_EQ(index.distance(u, v), dist);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, LcaParam,
                         ::testing::Combine(::testing::Values(1, 4),
                                            ::testing::Values(2, 17, 1000,
                                                              20000)));

TEST(Lca, IdentityAndParentChild) {
  Executor ex(1);
  // Path 0 - 1 - 2 - 3.
  TreeFixture fx(ex, {0, 0, 1, 2}, 0);
  const LcaIndex index(ex, fx.tree, fx.children, fx.levels);
  EXPECT_EQ(index.lca(3, 3), 3u);
  EXPECT_EQ(index.lca(3, 2), 2u);
  EXPECT_EQ(index.lca(0, 3), 0u);
  EXPECT_EQ(index.distance(0, 3), 3u);
  EXPECT_EQ(index.distance(2, 2), 0u);
}

TEST(Lca, Siblings) {
  Executor ex(1);
  // Star: 1..4 children of 0.
  TreeFixture fx(ex, {0, 0, 0, 0, 0}, 0);
  const LcaIndex index(ex, fx.tree, fx.children, fx.levels);
  EXPECT_EQ(index.lca(1, 2), 0u);
  EXPECT_EQ(index.lca(3, 4), 0u);
  EXPECT_EQ(index.distance(1, 4), 2u);
}

TEST(Lca, SingleVertexTree) {
  Executor ex(2);
  TreeFixture fx(ex, {0}, 0);
  const LcaIndex index(ex, fx.tree, fx.children, fx.levels);
  EXPECT_EQ(index.lca(0, 0), 0u);
}

}  // namespace
}  // namespace parbcc
