// Tests for the span tracer behind every StepTimes figure: rollup
// structure, counter aggregation across SPMD widths, charge semantics,
// the disabled fast path, StepTimes derivation, and the Chrome export.

#include <gtest/gtest.h>

#include <string>
#include <thread>

#include "core/bcc.hpp"
#include "util/thread_pool.hpp"
#include "util/trace.hpp"

namespace parbcc {
namespace {

void spin_ns(std::int64_t ns) {
  const std::int64_t until = Trace::now_ns() + ns;
  while (Trace::now_ns() < until) {
  }
}

TEST(Trace, NestedSpansRollUpIntoPathsWithCallCounts) {
  Trace tr;
  {
    TraceSpan outer(tr, "solve");
    {
      TraceSpan inner(tr, "spanning_tree");
      spin_ns(200000);
    }
    {
      TraceSpan inner(tr, "label_edge");
      spin_ns(200000);
    }
  }
  const TraceReport report = tr.report();
  ASSERT_EQ(report.phases.size(), 3u);
  EXPECT_EQ(report.phases[0].path, "solve");
  EXPECT_EQ(report.phases[0].depth, 0);
  EXPECT_EQ(report.phases[1].path, "solve/spanning_tree");
  EXPECT_EQ(report.phases[1].depth, 1);
  EXPECT_EQ(report.phases[2].path, "solve/label_edge");

  const TracePhase* solve = report.find_path("solve");
  const TracePhase* st = report.find_path("solve/spanning_tree");
  const TracePhase* le = report.find_path("solve/label_edge");
  ASSERT_NE(solve, nullptr);
  ASSERT_NE(st, nullptr);
  ASSERT_NE(le, nullptr);
  EXPECT_EQ(solve->calls, 1u);
  EXPECT_GT(st->inclusive_seconds, 0.0);
  // Parent inclusive covers both children; its exclusive does not.
  EXPECT_GE(solve->inclusive_seconds,
            st->inclusive_seconds + le->inclusive_seconds);
  EXPECT_NEAR(solve->exclusive_seconds,
              solve->inclusive_seconds - st->inclusive_seconds -
                  le->inclusive_seconds,
              1e-9);
}

TEST(Trace, RepeatedSpansOnTheSamePathAggregate) {
  // TV-filter opens "filtering" twice (forest build + final scatter);
  // the rollup must fold both into one phase so Fig. 4 sees one bar.
  Trace tr;
  {
    TraceSpan root(tr, "TV-filter");
    { TraceSpan f(tr, steps::kFiltering); }
    { TraceSpan e(tr, steps::kEulerTour); }
    { TraceSpan f(tr, steps::kFiltering); }
  }
  const TraceReport report = tr.report();
  const TracePhase* filtering = report.find_path("TV-filter/filtering");
  ASSERT_NE(filtering, nullptr);
  EXPECT_EQ(filtering->calls, 2u);
  int filtering_phases = 0;
  for (const TracePhase& p : report.phases) {
    if (p.name == "filtering") ++filtering_phases;
  }
  EXPECT_EQ(filtering_phases, 1);
}

TEST(Trace, CountersAggregateAcrossThreadWidths) {
  for (const int p : {1, 4, 12}) {
    Executor ex(p);
    Trace tr(p);
    ex.run([&](int tid) {
      for (int i = 0; i < 3; ++i) {
        tr.counter("edges_inspected", 10.0, tid);
      }
    });
    const TraceReport report = tr.report();
    EXPECT_DOUBLE_EQ(report.counter_total("edges_inspected"), 30.0 * p)
        << "p = " << p;
    ASSERT_EQ(report.counters.size(), 1u);
    EXPECT_EQ(report.counters[0].samples, 3u * static_cast<unsigned>(p));
    EXPECT_DOUBLE_EQ(report.counter_total("never_emitted"), 0.0);
  }
}

TEST(Trace, DisabledTraceRecordsNothing) {
  Trace tr(4);
  tr.set_enabled(false);
  {
    TraceSpan span(tr, "solve");
    tr.counter("edges", 5.0);
    tr.charge("conversion", 1.0);
  }
  EXPECT_TRUE(tr.events().empty());
  const TraceReport report = tr.report();
  EXPECT_TRUE(report.phases.empty());
  EXPECT_TRUE(report.counters.empty());
}

TEST(Trace, NullTraceSpanIsANoOp) {
  TraceSpan span(static_cast<Trace*>(nullptr), "solve");
  span.close();  // must not crash
}

TEST(Trace, ChargeBooksAsChildWithoutShrinkingParentExclusive) {
  Trace tr;
  {
    TraceSpan root(tr, "TV-opt");
    tr.charge(steps::kConversion, 1.5);
    spin_ns(100000);
  }
  const TraceReport report = tr.report();
  const TracePhase* conv = report.find_path("TV-opt/conversion");
  const TracePhase* root = report.find_path("TV-opt");
  ASSERT_NE(conv, nullptr);
  ASSERT_NE(root, nullptr);
  EXPECT_DOUBLE_EQ(conv->inclusive_seconds, 1.5);
  EXPECT_DOUBLE_EQ(conv->charged_seconds, 1.5);
  EXPECT_EQ(conv->calls, 1u);
  // The charge was not measured inside the root span's wall clock, so
  // it must not be subtracted from the root's exclusive time.
  EXPECT_GT(root->exclusive_seconds, 0.0);
  EXPECT_NEAR(root->exclusive_seconds, root->inclusive_seconds, 1e-9);
}

TEST(Trace, MarkSlicesOlderEventsOut)
{
  Trace tr;
  { TraceSpan span(tr, "first_solve"); }
  const Trace::Mark mark = tr.mark();
  { TraceSpan span(tr, "second_solve"); }
  const TraceReport report = tr.report_since(mark);
  ASSERT_EQ(report.phases.size(), 1u);
  EXPECT_EQ(report.phases[0].path, "second_solve");
  // The full report still sees both.
  EXPECT_EQ(tr.report().phases.size(), 2u);
}

TEST(Trace, DeriveStepTimesMatchesExactCharges) {
  // Charges have exact, clock-free durations, so the derivation can be
  // checked to the double-precision digit.
  Trace tr;
  tr.charge(steps::kConversion, 0.25);
  {
    TraceSpan root(tr, "TV-filter");
    tr.charge(steps::kSpanningTree, 1.0);
    tr.charge(steps::kFiltering, 0.5);
    tr.charge(steps::kFiltering, 0.25);
    {
      TraceSpan e(tr, steps::kEulerTour);
      tr.charge(steps::kLowHigh, 0.125);
    }
  }
  const TraceReport report = tr.report();
  const double euler = report.inclusive_seconds(steps::kEulerTour);
  const double total = 0.25 + 1.0 + 0.5 + 0.25 + euler + 0.75;
  const StepTimes times = derive_step_times(report, total);
  EXPECT_DOUBLE_EQ(times.conversion, 0.25);
  EXPECT_DOUBLE_EQ(times.spanning_tree, 1.0);
  EXPECT_DOUBLE_EQ(times.filtering, 0.75);
  // A nested charge counts toward its own step, at any depth, but not
  // toward the enclosing span's measured wall clock.
  EXPECT_DOUBLE_EQ(times.low_high, 0.125);
  EXPECT_LT(times.euler_tour, 0.125);
  EXPECT_DOUBLE_EQ(times.total, total);
  EXPECT_NEAR(times.unattributed, 0.75 - 0.125, 1e-9);
  EXPECT_NEAR(times.accounted() + times.unattributed, times.total, 1e-9);
}

TEST(Trace, UnattributedClampsAtZero) {
  Trace tr;
  tr.charge(steps::kConversion, 2.0);
  const StepTimes times = derive_step_times(tr.report(), 1.0);
  EXPECT_DOUBLE_EQ(times.unattributed, 0.0);
  EXPECT_DOUBLE_EQ(times.total, 1.0);
}

TEST(Trace, StepNameConstantsPinTheSubstrateSpellings) {
  // Substrate files (spanning/, eulertour/, the filter driver) spell
  // these as string literals; a renamed constant must fail here, not
  // silently split a Fig. 4 bar in two.
  EXPECT_STREQ(steps::kConversion, "conversion");
  EXPECT_STREQ(steps::kSpanningTree, "spanning_tree");
  EXPECT_STREQ(steps::kEulerTour, "euler_tour");
  EXPECT_STREQ(steps::kRootTree, "root_tree");
  EXPECT_STREQ(steps::kLowHigh, "low_high");
  EXPECT_STREQ(steps::kLabelEdge, "label_edge");
  EXPECT_STREQ(steps::kConnectedComponents, "connected_components");
  EXPECT_STREQ(steps::kFiltering, "filtering");
}

TEST(Trace, UnclosedSpanClosesAtLastTimestamp) {
  Trace tr;
  tr.begin("solve");
  tr.begin("spanning_tree");
  tr.end("spanning_tree");
  // "solve" never ends (e.g. report taken mid-flight): the rollup
  // closes it at the last observed timestamp instead of dropping it.
  const TraceReport report = tr.report();
  const TracePhase* solve = report.find_path("solve");
  ASSERT_NE(solve, nullptr);
  EXPECT_EQ(solve->calls, 1u);
  EXPECT_GE(solve->inclusive_seconds,
            report.find_path("solve/spanning_tree")->inclusive_seconds);
}

TEST(Trace, DrainConcatenatesAndClears) {
  const int p = 4;
  Executor ex(p);
  Trace tr(p);
  {
    TraceSpan span(tr, "solve");
    ex.run([&](int tid) { tr.counter("c", 1.0, tid); });
  }
  std::vector<TraceEvent> events = tr.drain(ex);
  // 2 span events from tid 0 + one counter per tid.
  EXPECT_EQ(events.size(), 2u + p);
  EXPECT_TRUE(tr.events().empty());
}

bool json_braces_balance(const std::string& s) {
  long brace = 0;
  long bracket = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (in_string) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '"':
        in_string = true;
        break;
      case '{':
        ++brace;
        break;
      case '}':
        --brace;
        break;
      case '[':
        ++bracket;
        break;
      case ']':
        --bracket;
        break;
      default:
        break;
    }
    if (brace < 0 || bracket < 0) return false;
  }
  return brace == 0 && bracket == 0 && !in_string;
}

TEST(Trace, ChromeExportIsStructurallyValidJson) {
  Trace tr(2);
  {
    TraceSpan root(tr, "TV-filter");
    tr.charge(steps::kConversion, 0.125);
    { TraceSpan f(tr, steps::kFiltering); }
    tr.counter("sv_rounds", 3.0);
    tr.counter("weird \"name\"\n", 1.0, 1);
  }
  TraceSegment seg;
  seg.label = "TV-filter";
  seg.events = tr.events();
  seg.report = tr.report();
  const std::string json =
      chrome_trace_json(std::span<const TraceSegment>(&seg, 1));

  EXPECT_TRUE(json_braces_balance(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"parbccReports\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"B\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"E\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"C\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"charged\": true"), std::string::npos);
  EXPECT_NE(json.find("process_name"), std::string::npos);
  // The escaped counter name must not have produced a raw newline
  // inside a string (the balance check would still pass).
  EXPECT_NE(json.find("weird \\\"name\\\"\\n"), std::string::npos);
}

TEST(Trace, SolveRollupReachesBccResult) {
  // End-to-end: a traced solve exposes its step spans and telemetry
  // counters through BccResult::trace.
  EdgeList g;
  g.n = 64;
  for (vid v = 0; v + 1 < g.n; ++v) g.edges.push_back({v, v + 1});
  for (vid v = 0; v + 2 < g.n; v += 2) g.edges.push_back({v, v + 2});
  BccOptions opt;
  opt.algorithm = BccAlgorithm::kTvFilter;
  opt.threads = 4;
  const BccResult r = biconnected_components(g, opt);
  EXPECT_NE(r.trace.find_path("TV-filter"), nullptr);
  EXPECT_GT(r.trace.inclusive_seconds(steps::kSpanningTree), 0.0);
  EXPECT_GT(r.trace.counter_total("peak_workspace_bytes"), 0.0);
  EXPECT_GE(r.trace.counter_total("sv_rounds"), 1.0);
  EXPECT_NEAR(r.times.accounted() + r.times.unattributed, r.times.total,
              std::max(0.01 * r.times.total, 1e-6));
}

}  // namespace
}  // namespace parbcc
