#include <gtest/gtest.h>

#include "connectivity/hcs.hpp"
#include "connectivity/shiloach_vishkin.hpp"
#include "graph/generators.hpp"
#include "util/thread_pool.hpp"

namespace parbcc {
namespace {

TEST(HcsComponents, LabelIsComponentMinimum) {
  Executor ex(4);
  EdgeList g(5, {{2, 1}, {1, 0}, {4, 3}});
  const auto labels = connected_components_hcs(ex, g);
  EXPECT_EQ(labels, (std::vector<vid>{0, 0, 0, 3, 3}));
}

TEST(HcsComponents, EmptyAndIsolated) {
  Executor ex(2);
  EXPECT_TRUE(connected_components_hcs(ex, EdgeList(0, {})).empty());
  const auto labels = connected_components_hcs(ex, EdgeList(3, {}));
  EXPECT_EQ(labels, (std::vector<vid>{0, 1, 2}));
}

class HcsParam : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(HcsParam, AgreesWithSvAndSequential) {
  const auto [threads, seed] = GetParam();
  Executor ex(threads);
  const EdgeList g = gen::random_gnm(3000, 2500, seed);
  const auto hcs = connected_components_hcs(ex, g);
  const auto sv = connected_components_sv(ex, g);
  const auto seq = connected_components_seq(g.n, g.edges);
  EXPECT_EQ(hcs, seq);
  EXPECT_EQ(sv, seq);
}

INSTANTIATE_TEST_SUITE_P(Sweep, HcsParam,
                         ::testing::Combine(::testing::Values(1, 2, 4, 8),
                                            ::testing::Values(1, 2, 3, 4)));

TEST(HcsComponents, LongPathConverges) {
  Executor ex(4);
  const EdgeList g = gen::path(30000);
  const auto labels = connected_components_hcs(ex, g);
  for (const vid l : labels) ASSERT_EQ(l, 0u);
}

TEST(HcsComponents, StructuredFamilies) {
  Executor ex(3);
  for (const EdgeList& g :
       {gen::grid_torus(10, 10), gen::complete(50), gen::star(100),
        gen::clique_chain(8, 5)}) {
    const auto labels = connected_components_hcs(ex, g);
    for (const vid l : labels) ASSERT_EQ(l, 0u);
  }
}

}  // namespace
}  // namespace parbcc
