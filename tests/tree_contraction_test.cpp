#include <gtest/gtest.h>

#include "eulertour/tree_contraction.hpp"
#include "util/thread_pool.hpp"

namespace parbcc {
namespace {

using Op = ExpressionTree::Op;

ExpressionTree tiny(Op root_op, std::uint64_t a, std::uint64_t b) {
  ExpressionTree t;
  t.left = {1, kNoVertex, kNoVertex};
  t.right = {2, kNoVertex, kNoVertex};
  t.parent = {0, 0, 0};
  t.op = {root_op, root_op, root_op};
  t.value = {0, a, b};
  t.root = 0;
  return t;
}

TEST(TreeContraction, SingleLeaf) {
  ExpressionTree t;
  t.left = {kNoVertex};
  t.right = {kNoVertex};
  t.parent = {0};
  t.op = {Op::kAdd};
  t.value = {42};
  t.root = 0;
  Executor ex(2);
  EXPECT_EQ(evaluate_sequential(t), 42u);
  EXPECT_EQ(evaluate_tree_contraction(ex, t), 42u);
}

TEST(TreeContraction, SingleOperation) {
  Executor ex(2);
  EXPECT_EQ(evaluate_tree_contraction(ex, tiny(Op::kAdd, 3, 4)), 7u);
  EXPECT_EQ(evaluate_tree_contraction(ex, tiny(Op::kMul, 3, 4)), 12u);
}

TEST(TreeContraction, GeneratorsProduceFullBinaryTrees) {
  for (const vid leaves : {vid{1}, vid{2}, vid{7}, vid{100}}) {
    for (const ExpressionTree& t :
         {random_expression_tree(leaves, 5), chain_expression_tree(leaves, 5)}) {
      ASSERT_EQ(t.size(), 2 * leaves - 1);
      vid leaf_count = 0;
      for (vid v = 0; v < t.size(); ++v) {
        if (t.is_leaf(v)) {
          ++leaf_count;
          ASSERT_EQ(t.right[v], kNoVertex);
        } else {
          ASSERT_NE(t.right[v], kNoVertex);
          ASSERT_EQ(t.parent[t.left[v]], v);
          ASSERT_EQ(t.parent[t.right[v]], v);
        }
      }
      ASSERT_EQ(leaf_count, leaves);
    }
  }
}

class ContractionParam
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(ContractionParam, MatchesSequentialOnRandomTrees) {
  const auto [threads, leaves, seed] = GetParam();
  Executor ex(threads);
  const ExpressionTree t =
      random_expression_tree(static_cast<vid>(leaves), seed);
  EXPECT_EQ(evaluate_tree_contraction(ex, t), evaluate_sequential(t));
}

TEST_P(ContractionParam, MatchesSequentialOnChains) {
  const auto [threads, leaves, seed] = GetParam();
  Executor ex(threads);
  const ExpressionTree t =
      chain_expression_tree(static_cast<vid>(leaves), seed);
  EXPECT_EQ(evaluate_tree_contraction(ex, t), evaluate_sequential(t));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ContractionParam,
    ::testing::Combine(::testing::Values(1, 2, 4),
                       ::testing::Values(2, 3, 10, 1000, 50000),
                       ::testing::Values(1, 2, 3)));

TEST(TreeContraction, DeepChainDoesNotOverflow) {
  Executor ex(2);
  const ExpressionTree t = chain_expression_tree(500000, 9);
  EXPECT_EQ(evaluate_tree_contraction(ex, t), evaluate_sequential(t));
}

TEST(TreeContraction, EmptyTreeThrows) {
  Executor ex(1);
  ExpressionTree t;
  EXPECT_THROW(evaluate_sequential(t), std::invalid_argument);
  EXPECT_THROW(evaluate_tree_contraction(ex, t), std::invalid_argument);
}

}  // namespace
}  // namespace parbcc
