#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "connectivity/concurrent_union_find.hpp"
#include "connectivity/shiloach_vishkin.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"
#include "util/workspace.hpp"

/// Unit tests of the lock-free union-find behind the fused aux-graph
/// kernel.  The contract under test: after any schedule of concurrent
/// unite calls followed by a barrier, every find returns the minimum
/// vertex id of the component — the same labels
/// connected_components_sv and the sequential oracle produce.

namespace parbcc {
namespace {

/// Hook every edge from an SPMD region, one block per thread.
std::uint64_t hook_all(Executor& ex, const ConcurrentUnionFind& uf,
                       std::span<const Edge> edges) {
  std::vector<std::uint64_t> hooks(static_cast<std::size_t>(ex.threads()), 0);
  ex.parallel_blocks(edges.size(),
                     [&](int tid, std::size_t begin, std::size_t end) {
                       std::uint64_t h = 0;
                       std::uint64_t steps = 0;
                       for (std::size_t e = begin; e < end; ++e) {
                         h += uf.unite(edges[e].u, edges[e].v, steps) ? 1 : 0;
                       }
                       hooks[static_cast<std::size_t>(tid)] = h;
                     });
  std::uint64_t total = 0;
  for (const std::uint64_t h : hooks) total += h;
  return total;
}

std::vector<vid> labels_of(const ConcurrentUnionFind& uf, vid n) {
  std::vector<vid> labels(n);
  std::uint64_t steps = 0;
  for (vid v = 0; v < n; ++v) labels[v] = uf.find(v, steps);
  return labels;
}

TEST(ConcurrentUnionFind, SequentialMatchesOracleExactly) {
  Executor ex(1);
  const EdgeList g = gen::random_gnm(500, 700, 11);
  std::vector<vid> parent(g.n);
  const ConcurrentUnionFind uf{parent};
  ConcurrentUnionFind::init(ex, parent);
  hook_all(ex, uf, g.edges);
  EXPECT_EQ(labels_of(uf, g.n), connected_components_seq(g.n, g.edges));
}

class CufParam : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(CufParam, ConcurrentHooksConvergeToComponentMinima) {
  const auto [threads, seed] = GetParam();
  Executor ex(threads);
  // A mix that stresses long chains (paths) and heavy contention on
  // one root (near-star random graphs).
  const EdgeList g = gen::random_gnm(4000, 6000, static_cast<std::uint64_t>(
                                                     seed) *
                                                     31 +
                                                     7);
  std::vector<vid> parent(g.n);
  const ConcurrentUnionFind uf{parent};
  ConcurrentUnionFind::init(ex, parent);
  const std::uint64_t hooks = hook_all(ex, uf, g.edges);

  const std::vector<vid> expect = connected_components_seq(g.n, g.edges);
  EXPECT_EQ(labels_of(uf, g.n), expect);

  // Forest accounting: every successful hook merged two components.
  std::vector<vid> distinct = expect;
  std::sort(distinct.begin(), distinct.end());
  distinct.erase(std::unique(distinct.begin(), distinct.end()),
                 distinct.end());
  EXPECT_EQ(static_cast<std::uint64_t>(g.n) - hooks, distinct.size());

  // parent[v] <= v is the kernel's structural invariant (hooks point
  // larger roots at smaller ids, halving installs ancestors only).
  for (vid v = 0; v < g.n; ++v) EXPECT_LE(parent[v], v);
}

INSTANTIATE_TEST_SUITE_P(Sweep, CufParam,
                         ::testing::Combine(::testing::Values(1, 4, 12),
                                            ::testing::Values(1, 2, 3, 4)));

TEST(ConcurrentUnionFind, FlattenLeavesStarForest) {
  Executor ex(4);
  const EdgeList g = gen::random_gnm(2000, 2500, 77);
  std::vector<vid> parent(g.n);
  const ConcurrentUnionFind uf{parent};
  ConcurrentUnionFind::init(ex, parent);
  hook_all(ex, uf, g.edges);
  uf.flatten(ex);
  for (vid v = 0; v < g.n; ++v) {
    EXPECT_EQ(parent[parent[v]], parent[v]) << "not a star at " << v;
  }
  EXPECT_EQ(labels_of(uf, g.n), connected_components_seq(g.n, g.edges));
}

TEST(ConcurrentUnionFind, UniteReportsEachMergeOnce) {
  // On a path every edge is a spanning edge: exactly n-1 hooks total,
  // no matter how the threads interleave.
  Executor ex(12);
  const vid n = 20000;
  std::vector<Edge> path;
  path.reserve(n - 1);
  for (vid v = 1; v < n; ++v) path.push_back({static_cast<vid>(v - 1), v});
  // Shuffle so adjacent edges land on different threads.
  Xoshiro256 rng(5);
  for (std::size_t i = path.size(); i > 1; --i) {
    std::swap(path[i - 1], path[rng.below(i)]);
  }
  std::vector<vid> parent(n);
  const ConcurrentUnionFind uf{parent};
  ConcurrentUnionFind::init(ex, parent);
  EXPECT_EQ(hook_all(ex, uf, path), static_cast<std::uint64_t>(n) - 1);
  std::uint64_t steps = 0;
  for (vid v = 0; v < n; ++v) EXPECT_EQ(uf.find(v, steps), 0u);
}

}  // namespace
}  // namespace parbcc
