#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>
#include <utility>
#include <vector>

#include "graph/csr.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "test_util.hpp"
#include "util/thread_pool.hpp"

namespace parbcc {
namespace {

std::set<std::pair<vid, vid>> canonical_edge_set(const EdgeList& g) {
  std::set<std::pair<vid, vid>> out;
  for (const Edge& e : g.edges) {
    out.insert({std::min(e.u, e.v), std::max(e.u, e.v)});
  }
  return out;
}

TEST(EdgeList, ValidateCatchesBadEndpointsAndLoops) {
  EdgeList g(3, {{0, 1}});
  EXPECT_TRUE(g.validate());
  g.add_edge(2, 2);
  EXPECT_FALSE(g.validate());
  EdgeList h(2, {{0, 5}});
  EXPECT_FALSE(h.validate());
}

TEST(EdgeList, RemoveSelfLoopsKeepsMapping) {
  EdgeList g(4, {{0, 1}, {2, 2}, {1, 3}, {3, 3}});
  std::vector<eid> kept;
  const EdgeList out = remove_self_loops(g, &kept);
  EXPECT_EQ(out.m(), 2u);
  EXPECT_EQ(kept, (std::vector<eid>{0, 2}));
  EXPECT_EQ(out.edges[0], (Edge{0, 1}));
  EXPECT_EQ(out.edges[1], (Edge{1, 3}));
}

TEST(EdgeStore, BorrowedMutationIsCountedCopyOnWrite) {
  const std::vector<Edge> storage = {{0, 1}, {1, 2}, {2, 0}};
  EdgeStore s = EdgeStore::borrow({storage.data(), storage.size()});
  const std::size_t before = EdgeStore::materialize_count();

  // Const reads keep the borrow and never copy.
  for (const Edge& e : std::as_const(s)) EXPECT_LT(e.u, 3u);
  EXPECT_EQ(std::as_const(s)[1], (Edge{1, 2}));
  ASSERT_TRUE(s.is_borrowed());
  EXPECT_EQ(EdgeStore::materialize_count(), before);

  // A non-const accessor on a borrowed store is the silent O(m) copy
  // the counter exists to surface.
  for (Edge& e : s) (void)e;
  EXPECT_FALSE(s.is_borrowed());
  EXPECT_EQ(EdgeStore::materialize_count(), before + 1);
  EXPECT_EQ(s.data()[0], storage[0]);

  // Already owned: further mutation is free.
  s[0].u = 2;
  s.push_back({0, 1});
  EXPECT_EQ(EdgeStore::materialize_count(), before + 1);
  EXPECT_EQ(storage[0].u, 0u);  // the borrowed storage was never touched
}

TEST(Csr, AdjacencyMatchesEdgeList) {
  for (const int threads : {1, 4}) {
    Executor ex(threads);
    const EdgeList g = gen::random_connected_gnm(500, 2000, 42);
    const Csr csr = Csr::build(ex, g);
    ASSERT_EQ(csr.num_vertices(), g.n);
    ASSERT_EQ(csr.num_edges(), g.m());

    // Every adjacency entry corresponds to its edge id.
    std::size_t entries = 0;
    for (vid v = 0; v < g.n; ++v) {
      const auto nbrs = csr.neighbors(v);
      const auto eids = csr.incident_edges(v);
      ASSERT_EQ(nbrs.size(), eids.size());
      for (std::size_t k = 0; k < nbrs.size(); ++k) {
        const Edge& e = g.edges[eids[k]];
        ASSERT_TRUE((e.u == v && e.v == nbrs[k]) ||
                    (e.v == v && e.u == nbrs[k]));
      }
      entries += nbrs.size();
    }
    EXPECT_EQ(entries, 2ull * g.m());

    // Degrees match a serial count.
    std::vector<eid> deg(g.n, 0);
    for (const Edge& e : g.edges) {
      ++deg[e.u];
      ++deg[e.v];
    }
    for (vid v = 0; v < g.n; ++v) ASSERT_EQ(csr.degree(v), deg[v]);
  }
}

TEST(Csr, EachEdgeAppearsExactlyTwice) {
  Executor ex(4);
  const EdgeList g = gen::random_gnm(200, 800, 7);
  const Csr csr = Csr::build(ex, g);
  std::vector<int> hits(g.m(), 0);
  for (vid v = 0; v < g.n; ++v) {
    for (const eid e : csr.incident_edges(v)) ++hits[e];
  }
  for (eid e = 0; e < g.m(); ++e) ASSERT_EQ(hits[e], 2);
}

TEST(Csr, RejectsSelfLoops) {
  Executor ex(1);
  EdgeList g(2, {{1, 1}});
  EXPECT_THROW(Csr::build(ex, g), std::invalid_argument);
}

TEST(Generators, RandomGnmExactCountDistinctNoLoops) {
  const EdgeList g = gen::random_gnm(100, 700, 3);
  EXPECT_EQ(g.n, 100u);
  EXPECT_EQ(g.m(), 700u);
  EXPECT_TRUE(g.validate());
  EXPECT_EQ(canonical_edge_set(g).size(), 700u);
}

TEST(Generators, RandomGnmDeterministicInSeed) {
  const EdgeList a = gen::random_gnm(50, 200, 11);
  const EdgeList b = gen::random_gnm(50, 200, 11);
  const EdgeList c = gen::random_gnm(50, 200, 12);
  EXPECT_EQ(a.edges, b.edges);
  EXPECT_NE(canonical_edge_set(a), canonical_edge_set(c));
}

TEST(Generators, RandomGnmRejectsOverfull) {
  EXPECT_THROW(gen::random_gnm(4, 7, 0), std::invalid_argument);
  EXPECT_NO_THROW(gen::random_gnm(4, 6, 0));
}

TEST(Generators, RandomConnectedGnmIsConnected) {
  for (const std::uint64_t seed : {1, 2, 3}) {
    const EdgeList g = gen::random_connected_gnm(300, 500, seed);
    EXPECT_EQ(g.m(), 500u);
    EXPECT_TRUE(g.validate());
    EXPECT_EQ(testutil::component_count(g), 1u);
    EXPECT_EQ(canonical_edge_set(g).size(), 500u);
  }
}

TEST(Generators, RandomConnectedGnmTreeOnly) {
  const EdgeList g = gen::random_connected_gnm(64, 63, 5);
  EXPECT_EQ(g.m(), 63u);
  EXPECT_EQ(testutil::component_count(g), 1u);
}

TEST(Generators, PathCycleStarShapes) {
  const EdgeList p = gen::path(5);
  EXPECT_EQ(p.m(), 4u);
  const EdgeList c = gen::cycle(5);
  EXPECT_EQ(c.m(), 5u);
  EXPECT_EQ(testutil::component_count(c), 1u);
  const EdgeList s = gen::star(6);
  EXPECT_EQ(s.m(), 5u);
  for (const Edge& e : s.edges) EXPECT_EQ(e.u, 0u);
  EXPECT_THROW(gen::cycle(2), std::invalid_argument);
}

TEST(Generators, CompleteGraphDegrees) {
  const EdgeList g = gen::complete(7);
  EXPECT_EQ(g.m(), 21u);
  std::vector<int> deg(7, 0);
  for (const Edge& e : g.edges) {
    ++deg[e.u];
    ++deg[e.v];
  }
  for (const int d : deg) EXPECT_EQ(d, 6);
}

TEST(Generators, TorusIsFourRegular) {
  const EdgeList g = gen::grid_torus(4, 5);
  EXPECT_EQ(g.n, 20u);
  EXPECT_EQ(g.m(), 40u);
  std::vector<int> deg(g.n, 0);
  for (const Edge& e : g.edges) {
    ++deg[e.u];
    ++deg[e.v];
  }
  for (const int d : deg) EXPECT_EQ(d, 4);
  EXPECT_EQ(testutil::component_count(g), 1u);
}

TEST(Generators, CliqueChainStructure) {
  const EdgeList g = gen::clique_chain(3, 4);
  EXPECT_EQ(g.n, 10u);  // 3 * (4-1) + 1
  EXPECT_EQ(g.m(), 18u);  // 3 * C(4,2)
  EXPECT_EQ(testutil::component_count(g), 1u);
}

TEST(Generators, CycleChainStructure) {
  const EdgeList g = gen::cycle_chain(4, 5);
  EXPECT_EQ(g.n, 17u);  // 4 * 4 + 1
  EXPECT_EQ(g.m(), 20u);
  EXPECT_EQ(testutil::component_count(g), 1u);
}

TEST(Generators, RandomCactusConnectedAndSized) {
  const EdgeList g = gen::random_cactus(20, 8, 99);
  EXPECT_TRUE(g.validate());
  EXPECT_EQ(testutil::component_count(g), 1u);
  // Each block is a cycle: m == n - 1 + blocks.
  EXPECT_EQ(g.m(), g.n - 1 + 20);
}

TEST(Generators, DenseRetainProportions) {
  const EdgeList g70 = gen::dense_retain(40, 700, 1);
  const EdgeList g90 = gen::dense_retain(40, 900, 1);
  const std::uint64_t all = 40ull * 39 / 2;
  EXPECT_EQ(g70.m(), all * 700 / 1000);
  EXPECT_EQ(g90.m(), all * 900 / 1000);
  EXPECT_EQ(canonical_edge_set(g70).size(), g70.m());
}

TEST(Generators, RmatSkewedButValid) {
  const EdgeList g = gen::rmat(12, 8, 5);
  EXPECT_EQ(g.n, 4096u);
  EXPECT_EQ(g.m(), 8u * 4096u);
  EXPECT_TRUE(g.validate());
  EXPECT_EQ(canonical_edge_set(g).size(), g.m());
  // Degree skew: the maximum degree far exceeds the average.
  std::vector<eid> deg(g.n, 0);
  for (const Edge& e : g.edges) {
    ++deg[e.u];
    ++deg[e.v];
  }
  const eid max_deg = *std::max_element(deg.begin(), deg.end());
  EXPECT_GT(max_deg, 5u * (2u * g.m() / g.n));
}

TEST(Generators, RmatDeterministicAndParamChecked) {
  const EdgeList a = gen::rmat(8, 4, 7);
  const EdgeList b = gen::rmat(8, 4, 7);
  EXPECT_EQ(a.edges, b.edges);
  EXPECT_THROW(gen::rmat(0, 4, 7), std::invalid_argument);
  EXPECT_THROW(gen::rmat(8, 4, 7, 0.5, 0.3, 0.3), std::invalid_argument);
}

TEST(Generators, PowerLawConnectedSkewedAndExactlySized) {
  const vid n = 2000;
  const eid m = 10000;
  const EdgeList g = gen::random_power_law(n, m, 2.1, 7);
  EXPECT_EQ(g.n, n);
  EXPECT_EQ(g.m(), m);
  EXPECT_TRUE(g.validate());
  EXPECT_EQ(canonical_edge_set(g).size(), g.m());
  EXPECT_EQ(testutil::component_count(g), 1u);
  // Hub mass: the maximum degree dwarfs both the average and the
  // n/100 floor the scheduler ablation's skew case relies on.
  std::vector<eid> deg(g.n, 0);
  for (const Edge& e : g.edges) {
    ++deg[e.u];
    ++deg[e.v];
  }
  const eid max_deg = *std::max_element(deg.begin(), deg.end());
  EXPECT_GE(max_deg, n / 100);
  EXPECT_GT(max_deg, 10u * (2u * m / n));
}

TEST(Generators, PowerLawDeterministicAndParamChecked) {
  const EdgeList a = gen::random_power_law(500, 2000, 2.1, 11);
  const EdgeList b = gen::random_power_law(500, 2000, 2.1, 11);
  EXPECT_EQ(a.edges, b.edges);
  const EdgeList c = gen::random_power_law(500, 2000, 2.1, 12);
  EXPECT_NE(a.edges, c.edges);
  // A tree-only instance stays connected with zero extra edges.
  const EdgeList t = gen::random_power_law(300, 299, 2.5, 1);
  EXPECT_EQ(t.m(), 299u);
  EXPECT_EQ(testutil::component_count(t), 1u);
  EXPECT_THROW(gen::random_power_law(100, 98, 2.1, 1), std::invalid_argument);
  EXPECT_THROW(gen::random_power_law(100, 200, 1.0, 1), std::invalid_argument);
  EXPECT_THROW(gen::random_power_law(10, 100, 2.1, 1), std::invalid_argument);
}

TEST(Generators, WheelShape) {
  const EdgeList g = gen::wheel(6);
  EXPECT_EQ(g.n, 6u);
  EXPECT_EQ(g.m(), 10u);  // 5 spokes + 5 rim edges
  std::vector<int> deg(g.n, 0);
  for (const Edge& e : g.edges) {
    ++deg[e.u];
    ++deg[e.v];
  }
  EXPECT_EQ(deg[0], 5);
  for (vid v = 1; v < 6; ++v) EXPECT_EQ(deg[v], 3);
  EXPECT_THROW(gen::wheel(3), std::invalid_argument);
}

TEST(Generators, CompleteBipartiteShape) {
  const EdgeList g = gen::complete_bipartite(3, 4);
  EXPECT_EQ(g.n, 7u);
  EXPECT_EQ(g.m(), 12u);
  for (const Edge& e : g.edges) {
    EXPECT_LT(e.u, 3u);
    EXPECT_GE(e.v, 3u);
  }
}

TEST(Generators, BarbellShape) {
  const EdgeList g = gen::barbell(4, 3);
  EXPECT_EQ(g.n, 10u);         // 4 + 2 interior + 4
  EXPECT_EQ(g.m(), 15u);       // 2 * C(4,2) + 3
  EXPECT_EQ(testutil::component_count(g), 1u);
  EXPECT_TRUE(g.validate());
}

TEST(GraphIo, RoundTrip) {
  const EdgeList g = gen::random_gnm(30, 100, 8);
  std::stringstream ss;
  io::write_edge_list(ss, g);
  const EdgeList back = io::read_edge_list(ss);
  EXPECT_EQ(back.n, g.n);
  EXPECT_EQ(back.edges, g.edges);
}

TEST(GraphIo, CommentsAndBlankLinesIgnored) {
  std::stringstream ss("# header\n\n3 2\n# edge one\n0 1\n\n1 2\n");
  const EdgeList g = io::read_edge_list(ss);
  EXPECT_EQ(g.n, 3u);
  ASSERT_EQ(g.m(), 2u);
  EXPECT_EQ(g.edges[1], (Edge{1, 2}));
}

TEST(GraphIo, DimacsRoundTrip) {
  const EdgeList g = gen::random_gnm(25, 60, 3);
  std::stringstream ss;
  io::write_dimacs(ss, g);
  const EdgeList back = io::read_dimacs(ss);
  EXPECT_EQ(back.n, g.n);
  EXPECT_EQ(back.edges, g.edges);
}

TEST(GraphIo, DimacsMalformedThrows) {
  {
    std::stringstream ss("e 1 2\n");  // edge before header
    EXPECT_THROW(io::read_dimacs(ss), std::runtime_error);
  }
  {
    std::stringstream ss("p edge 3 2\ne 1 2\n");  // missing edge
    EXPECT_THROW(io::read_dimacs(ss), std::runtime_error);
  }
  {
    std::stringstream ss("p edge 3 1\ne 0 2\n");  // 1-based violated
    EXPECT_THROW(io::read_dimacs(ss), std::runtime_error);
  }
  {
    std::stringstream ss("p tour 3 1\ne 1 2\n");  // wrong kind
    EXPECT_THROW(io::read_dimacs(ss), std::runtime_error);
  }
}

TEST(GraphIo, MetisRoundTrip) {
  // Include an isolated vertex (empty adjacency line).
  EdgeList g(5, {{0, 1}, {1, 2}, {2, 0}, {0, 3}});
  std::stringstream ss;
  io::write_metis(ss, g);
  const EdgeList back = io::read_metis(ss);
  EXPECT_EQ(back.n, g.n);
  EXPECT_EQ(canonical_edge_set(back), canonical_edge_set(g));
  EXPECT_EQ(back.m(), g.m());
}

TEST(GraphIo, MetisRejectsSelfLoopsAndWeights) {
  EdgeList looped(2, {{1, 1}});
  std::stringstream out;
  EXPECT_THROW(io::write_metis(out, looped), std::runtime_error);
  std::stringstream weighted("2 1 1\n2 3\n1 3\n");
  EXPECT_THROW(io::read_metis(weighted), std::runtime_error);
  std::stringstream truncated("3 2\n2\n1\n");  // missing third line
  EXPECT_THROW(io::read_metis(truncated), std::runtime_error);
}

TEST(GraphIo, MalformedInputsThrow) {
  {
    std::stringstream ss("");
    EXPECT_THROW(io::read_edge_list(ss), std::runtime_error);
  }
  {
    std::stringstream ss("3 2\n0 1\n");  // missing an edge
    EXPECT_THROW(io::read_edge_list(ss), std::runtime_error);
  }
  {
    std::stringstream ss("3 1\n0 7\n");  // endpoint out of range
    EXPECT_THROW(io::read_edge_list(ss), std::runtime_error);
  }
  {
    std::stringstream ss("bogus\n");
    EXPECT_THROW(io::read_edge_list(ss), std::runtime_error);
  }
}

}  // namespace
}  // namespace parbcc
