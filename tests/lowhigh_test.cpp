#include <gtest/gtest.h>

#include <algorithm>

#include "core/lowhigh.hpp"
#include "core/tv_core.hpp"
#include "eulertour/tree_computations.hpp"
#include "graph/generators.hpp"
#include "spanning/forest.hpp"
#include "util/thread_pool.hpp"

namespace parbcc {
namespace {

/// Build a RootedSpanningTree over `g` using the sequential forest and
/// the level pipeline; also returns children/levels for the sweep
/// variant.
struct Fixture {
  RootedSpanningTree tree;
  ChildrenCsr children;
  LevelStructure levels;
  std::vector<vid> owner;

  Fixture(Executor& ex, const EdgeList& g, vid root) {
    const auto tree_ids = sequential_spanning_forest(g.n, g.edges);
    tree.root = root;
    tree.parent.assign(g.n, kNoVertex);
    tree.parent_edge.assign(g.n, kNoEdge);
    // Orient the forest edges away from the root with a simple DFS.
    std::vector<std::vector<std::pair<vid, eid>>> adj(g.n);
    for (const eid e : tree_ids) {
      adj[g.edges[e].u].push_back({g.edges[e].v, e});
      adj[g.edges[e].v].push_back({g.edges[e].u, e});
    }
    tree.parent[root] = root;
    std::vector<vid> stack = {root};
    while (!stack.empty()) {
      const vid v = stack.back();
      stack.pop_back();
      for (const auto& [w, e] : adj[v]) {
        if (tree.parent[w] == kNoVertex) {
          tree.parent[w] = v;
          tree.parent_edge[w] = e;
          stack.push_back(w);
        }
      }
    }
    children = build_children(ex, tree.parent, root);
    levels = build_levels(ex, children, root);
    preorder_and_size(ex, children, levels, root, tree.pre, tree.sub);
    owner = make_tree_owner(ex, g.m(), tree);
  }
};

/// O(n * m) reference: for every v scan all nontree edges incident to
/// the subtree.
LowHigh brute_force_low_high(const EdgeList& g, const RootedSpanningTree& tree,
                             const std::vector<vid>& owner) {
  const vid n = g.n;
  LowHigh out;
  out.low.resize(n);
  out.high.resize(n);
  for (vid v = 0; v < n; ++v) {
    vid lo = kNoVertex, hi = 0;
    for (vid w = 0; w < n; ++w) {
      if (!tree.is_ancestor(v, w)) continue;
      lo = std::min(lo, tree.pre[w]);
      hi = std::max(hi, tree.pre[w]);
      for (eid e = 0; e < g.m(); ++e) {
        if (owner[e] != kNoVertex) continue;
        vid other = kNoVertex;
        if (g.edges[e].u == w) other = g.edges[e].v;
        if (g.edges[e].v == w) other = g.edges[e].u;
        if (other == kNoVertex) continue;
        lo = std::min(lo, tree.pre[other]);
        hi = std::max(hi, tree.pre[other]);
      }
    }
    out.low[v] = lo;
    out.high[v] = hi;
  }
  return out;
}

class LowHighParam : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(LowHighParam, BothBackEndsMatchBruteForce) {
  const auto [threads, seed] = GetParam();
  Executor ex(threads);
  const EdgeList g = gen::random_connected_gnm(200, 600, seed);
  const Fixture fx(ex, g, 0);
  const LowHigh expect = brute_force_low_high(g, fx.tree, fx.owner);

  const LowHigh rmq = compute_low_high_rmq(ex, g.edges, fx.tree, fx.owner);
  EXPECT_EQ(rmq.low, expect.low);
  EXPECT_EQ(rmq.high, expect.high);

  const LowHigh sweep = compute_low_high_levels(ex, g.edges, fx.tree,
                                                fx.owner, fx.children,
                                                fx.levels);
  EXPECT_EQ(sweep.low, expect.low);
  EXPECT_EQ(sweep.high, expect.high);
}

INSTANTIATE_TEST_SUITE_P(Sweep, LowHighParam,
                         ::testing::Combine(::testing::Values(1, 2, 4),
                                            ::testing::Values(1, 2, 3, 4)));

TEST(LowHigh, TreeOnlyGraphIsPurePreorderIntervals) {
  Executor ex(2);
  // No nontree edges: low(v) = pre(v), high(v) = pre(v) + sub(v) - 1.
  const EdgeList g = gen::path(50);
  const Fixture fx(ex, g, 0);
  const LowHigh lh =
      compute_low_high_levels(ex, g.edges, fx.tree, fx.owner, fx.children,
                              fx.levels);
  for (vid v = 0; v < g.n; ++v) {
    EXPECT_EQ(lh.low[v], fx.tree.pre[v]);
    EXPECT_EQ(lh.high[v], fx.tree.pre[v] + fx.tree.sub[v] - 1);
  }
}

TEST(LowHigh, CycleSubtreesSeeTheRoot) {
  Executor ex(2);
  const EdgeList g = gen::cycle(10);
  const Fixture fx(ex, g, 0);
  const LowHigh lh = compute_low_high_rmq(ex, g.edges, fx.tree, fx.owner);
  // On a cycle rooted anywhere, every subtree is incident to the
  // closing nontree edge's endpoints: low of every non-root vertex
  // reaches pre(root) = 1.
  for (vid v = 0; v < g.n; ++v) {
    if (v == 0) continue;
    EXPECT_EQ(lh.low[v], 1u) << "v=" << v;
  }
}

TEST(MakeTreeOwner, MarksExactlyTheTreeEdges) {
  Executor ex(2);
  const EdgeList g = gen::random_connected_gnm(100, 300, 9);
  const Fixture fx(ex, g, 0);
  vid owned = 0;
  for (eid e = 0; e < g.m(); ++e) {
    if (fx.owner[e] != kNoVertex) {
      ++owned;
      EXPECT_EQ(fx.tree.parent_edge[fx.owner[e]], e);
    }
  }
  EXPECT_EQ(owned, g.n - 1);
}

}  // namespace
}  // namespace parbcc
