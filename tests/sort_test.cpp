#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "sort/radix_sort.hpp"
#include "sort/sample_sort.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace parbcc {
namespace {

std::vector<std::uint64_t> random_keys(std::size_t n, std::uint64_t seed,
                                       std::uint64_t bound) {
  Xoshiro256 rng(seed);
  std::vector<std::uint64_t> v(n);
  for (auto& x : v) x = rng.below(bound);
  return v;
}

class SortParam
    : public ::testing::TestWithParam<std::tuple<std::size_t, int>> {};

TEST_P(SortParam, SampleSortMatchesStdSort) {
  const auto [n, threads] = GetParam();
  Executor ex(threads);
  auto data = random_keys(n, n * 3 + threads, ~std::uint64_t{0});
  auto expect = data;
  std::sort(expect.begin(), expect.end());
  sample_sort(ex, data);
  EXPECT_EQ(data, expect);
}

TEST_P(SortParam, RadixSortMatchesStdSort) {
  const auto [n, threads] = GetParam();
  Executor ex(threads);
  auto data = random_keys(n, n * 5 + threads, ~std::uint64_t{0});
  auto expect = data;
  std::sort(expect.begin(), expect.end());
  radix_sort_u64(ex, data);
  EXPECT_EQ(data, expect);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SortParam,
    ::testing::Combine(::testing::Values<std::size_t>(0, 1, 2, 17, 4095, 4096,
                                                      100000),
                       ::testing::Values(1, 2, 4, 7)));

TEST(SampleSort, AlreadySortedAndReversed) {
  Executor ex(4);
  std::vector<std::uint64_t> asc(20000);
  for (std::size_t i = 0; i < asc.size(); ++i) asc[i] = i;
  auto expect = asc;
  auto desc = asc;
  std::reverse(desc.begin(), desc.end());
  sample_sort(ex, asc);
  EXPECT_EQ(asc, expect);
  sample_sort(ex, desc);
  EXPECT_EQ(desc, expect);
}

TEST(SampleSort, HeavyDuplicates) {
  Executor ex(4);
  auto data = random_keys(50000, 9, 3);  // only keys 0,1,2
  auto expect = data;
  std::sort(expect.begin(), expect.end());
  sample_sort(ex, data);
  EXPECT_EQ(data, expect);
}

TEST(SampleSort, CustomComparatorDescending) {
  Executor ex(3);
  auto data = random_keys(30000, 21, 1000);
  auto expect = data;
  std::sort(expect.begin(), expect.end(), std::greater<>());
  sample_sort(ex, data, std::greater<>());
  EXPECT_EQ(data, expect);
}

TEST(RadixSort, AllEqualKeys) {
  Executor ex(4);
  std::vector<std::uint64_t> data(10000, 42);
  radix_sort_u64(ex, data);
  for (const auto x : data) ASSERT_EQ(x, 42u);
}

TEST(RadixSort, SmallKeyRangeSkipsHighPasses) {
  Executor ex(4);
  auto data = random_keys(50000, 13, 255);  // single byte of entropy
  auto expect = data;
  std::sort(expect.begin(), expect.end());
  radix_sort_u64(ex, data);
  EXPECT_EQ(data, expect);
}

TEST(RadixSort, FullWidthKeys) {
  Executor ex(2);
  std::vector<std::uint64_t> data = {~std::uint64_t{0}, 0, 1,
                                     std::uint64_t{1} << 63, 42};
  radix_sort_u64(ex, data);
  EXPECT_TRUE(std::is_sorted(data.begin(), data.end()));
}

TEST(RadixSortKv, PayloadFollowsKeysStably) {
  for (const int threads : {1, 4}) {
    Executor ex(threads);
    Xoshiro256 rng(77);
    const std::size_t n = 30000;
    std::vector<std::uint64_t> keys(n);
    std::vector<std::uint32_t> vals(n);
    for (std::size_t i = 0; i < n; ++i) {
      keys[i] = rng.below(500);  // many duplicates to exercise stability
      vals[i] = static_cast<std::uint32_t>(i);
    }
    auto keys_copy = keys;
    radix_sort_kv(ex, keys, vals);
    ASSERT_TRUE(std::is_sorted(keys.begin(), keys.end()));
    // Payload correctness: vals[i] is the original index of keys[i].
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(keys[i], keys_copy[vals[i]]);
    }
    // Stability: equal keys keep ascending original indices.
    for (std::size_t i = 1; i < n; ++i) {
      if (keys[i] == keys[i - 1]) {
        ASSERT_LT(vals[i - 1], vals[i]);
      }
    }
  }
}

TEST(RadixSortKv, EmptyAndSingle) {
  Executor ex(4);
  std::vector<std::uint64_t> keys;
  std::vector<std::uint32_t> vals;
  radix_sort_kv(ex, keys, vals);
  EXPECT_TRUE(keys.empty());
  keys = {9};
  vals = {1};
  radix_sort_kv(ex, keys, vals);
  EXPECT_EQ(keys[0], 9u);
  EXPECT_EQ(vals[0], 1u);
}

}  // namespace
}  // namespace parbcc
