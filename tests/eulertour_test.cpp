#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <numeric>

#include "eulertour/euler_tour.hpp"
#include "eulertour/tree_computations.hpp"
#include "graph/generators.hpp"
#include "spanning/forest.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace parbcc {
namespace {

/// Random tree on n vertices (uniform attachment), returned as an edge
/// list whose edges are exactly the tree edges.
EdgeList random_tree(vid n, std::uint64_t seed) {
  EdgeList g;
  g.n = n;
  Xoshiro256 rng(seed);
  for (vid v = 1; v < n; ++v) {
    g.add_edge(static_cast<vid>(rng.below(v)), v);
  }
  return g;
}

std::vector<eid> all_edge_ids(const EdgeList& g) {
  std::vector<eid> ids(g.m());
  std::iota(ids.begin(), ids.end(), 0);
  return ids;
}

/// Sequential recursive DFS reference for pre/sub/parent.
struct DfsRef {
  std::vector<vid> parent, pre, sub, depth;

  explicit DfsRef(const EdgeList& g, vid root) {
    std::vector<std::vector<vid>> adj(g.n);
    for (const Edge& e : g.edges) {
      adj[e.u].push_back(e.v);
      adj[e.v].push_back(e.u);
    }
    parent.assign(g.n, kNoVertex);
    pre.assign(g.n, 0);
    sub.assign(g.n, 1);
    depth.assign(g.n, 0);
    vid counter = 1;
    parent[root] = root;
    std::function<void(vid)> dfs = [&](vid v) {
      pre[v] = counter++;
      for (const vid w : adj[v]) {
        if (parent[w] == kNoVertex) {
          parent[w] = v;
          depth[w] = depth[v] + 1;
          dfs(w);
          sub[v] += sub[w];
        }
      }
    };
    dfs(root);
  }
};

/// pre/sub define a valid DFS numbering of the tree iff: root is 1,
/// sizes telescope, every child interval nests in its parent's.
void expect_consistent_preorder(const RootedSpanningTree& tree) {
  const vid n = tree.n();
  ASSERT_EQ(tree.pre[tree.root], 1u);
  ASSERT_EQ(tree.sub[tree.root], n);
  // Preorder is a permutation of 1..n.
  std::vector<bool> seen(n + 1, false);
  for (vid v = 0; v < n; ++v) {
    ASSERT_GE(tree.pre[v], 1u);
    ASSERT_LE(tree.pre[v], n);
    ASSERT_FALSE(seen[tree.pre[v]]);
    seen[tree.pre[v]] = true;
  }
  // Children intervals nest and sizes telescope.
  std::vector<vid> child_size_sum(n, 0);
  for (vid v = 0; v < n; ++v) {
    if (v == tree.root) continue;
    const vid p = tree.parent[v];
    child_size_sum[p] += tree.sub[v];
    ASSERT_GT(tree.pre[v], tree.pre[p]);
    ASSERT_LT(tree.pre[v] + tree.sub[v] - 1, tree.pre[p] + tree.sub[p]);
  }
  for (vid v = 0; v < n; ++v) {
    ASSERT_EQ(tree.sub[v], child_size_sum[v] + 1);
  }
}

class TourParam : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(TourParam, CircuitIsASingleEulerianTour) {
  const auto [threads, n] = GetParam();
  Executor ex(threads);
  const EdgeList tree = random_tree(n, n * 3 + 1);
  const auto tree_ids = all_edge_ids(tree);
  for (const ArcSort sort : {ArcSort::kSampleSort, ArcSort::kCountingSort}) {
    const EulerCircuit circuit =
        build_euler_circuit(ex, tree.n, tree.edges, tree_ids, 0, sort);
    const std::size_t num_arcs = 2 * tree_ids.size();
    // Walking succ from head visits each arc exactly once, ends at Nil,
    // and consecutive arcs share the middle vertex.
    std::vector<bool> visited(num_arcs, false);
    vid a = circuit.head;
    std::size_t steps = 0;
    while (a != kNoVertex) {
      ASSERT_LT(a, num_arcs);
      ASSERT_FALSE(visited[a]);
      visited[a] = true;
      ++steps;
      const vid nxt = circuit.succ[a];
      if (nxt != kNoVertex) {
        const Edge& ea = tree.edges[tree_ids[a >> 1]];
        const Edge& en = tree.edges[tree_ids[nxt >> 1]];
        const vid head_of_a = (a & 1) ? ea.u : ea.v;
        const vid tail_of_n = (nxt & 1) ? en.v : en.u;
        ASSERT_EQ(head_of_a, tail_of_n);
      }
      a = nxt;
    }
    ASSERT_EQ(steps, num_arcs);
  }
}

TEST_P(TourParam, RootingMatchesSequentialDfsStructure) {
  const auto [threads, n] = GetParam();
  Executor ex(threads);
  const EdgeList tree = random_tree(n, n * 7 + 5);
  const auto tree_ids = all_edge_ids(tree);
  for (const ListRanker ranker :
       {ListRanker::kSequential, ListRanker::kWyllie,
        ListRanker::kHelmanJaja}) {
    const RootedSpanningTree rooted = root_tree_via_euler_tour(
        ex, tree.n, tree.edges, tree_ids, 0, ranker, ArcSort::kCountingSort);
    // Parent structure is root-determined, so it must match exactly.
    const DfsRef ref(tree, 0);
    EXPECT_EQ(rooted.parent, ref.parent);
    // pre/sub depend on adjacency order, so check structural
    // consistency rather than exact values.
    expect_consistent_preorder(rooted);
    // Subtree sizes are order-independent.
    EXPECT_EQ(rooted.sub, ref.sub);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, TourParam,
                         ::testing::Combine(::testing::Values(1, 2, 4, 8),
                                            ::testing::Values(2, 3, 10, 500,
                                                              5000)));

TEST(ArcSortEquivalence, BothOrdersYieldIdenticalTrees) {
  // At p = 1 the bucket scatter fills each source group in arc-id
  // order — exactly the sample sort's (source, arc id) key — so the
  // two circuits, and hence every rank and preorder number, are
  // bit-identical.  At p > 1 the bucket within-group order is arrival
  // order; parent links and subtree sizes are order-independent and
  // must still match exactly, while preorder stays a valid DFS
  // numbering for both.
  const EdgeList tree = random_tree(4000, 99);
  const auto tree_ids = all_edge_ids(tree);
  {
    Executor ex(1);
    const RootedSpanningTree a = root_tree_via_euler_tour(
        ex, tree.n, tree.edges, tree_ids, 0, ListRanker::kHelmanJaja,
        ArcSort::kSampleSort);
    const RootedSpanningTree b = root_tree_via_euler_tour(
        ex, tree.n, tree.edges, tree_ids, 0, ListRanker::kHelmanJaja,
        ArcSort::kCountingSort);
    EXPECT_EQ(a.parent, b.parent);
    EXPECT_EQ(a.parent_edge, b.parent_edge);
    EXPECT_EQ(a.pre, b.pre);
    EXPECT_EQ(a.sub, b.sub);
  }
  for (const int threads : {4, 8}) {
    Executor ex(threads);
    const RootedSpanningTree a = root_tree_via_euler_tour(
        ex, tree.n, tree.edges, tree_ids, 0, ListRanker::kHelmanJaja,
        ArcSort::kSampleSort);
    const RootedSpanningTree b = root_tree_via_euler_tour(
        ex, tree.n, tree.edges, tree_ids, 0, ListRanker::kHelmanJaja,
        ArcSort::kCountingSort);
    EXPECT_EQ(a.parent, b.parent);
    EXPECT_EQ(a.parent_edge, b.parent_edge);
    EXPECT_EQ(a.sub, b.sub);
    expect_consistent_preorder(a);
    expect_consistent_preorder(b);
  }
}

TEST(TreeComputations, LevelPipelineMatchesDfsReference) {
  for (const int threads : {1, 4}) {
    Executor ex(threads);
    const EdgeList tree = random_tree(3000, 17);
    const DfsRef ref(tree, 0);
    const ChildrenCsr children = build_children(ex, ref.parent, 0);
    const LevelStructure levels = build_levels(ex, children, 0);
    EXPECT_EQ(levels.depth, ref.depth);

    std::vector<vid> pre, sub;
    preorder_and_size(ex, children, levels, 0, pre, sub);
    EXPECT_EQ(sub, ref.sub);
    RootedSpanningTree tree_out;
    tree_out.root = 0;
    tree_out.parent = ref.parent;
    tree_out.pre = pre;
    tree_out.sub = sub;
    expect_consistent_preorder(tree_out);
  }
}

TEST(TreeComputations, PreorderFollowsChildListOrder) {
  // Known little tree: 0 -> {1, 2}, 1 -> {3}.
  Executor ex(1);
  const std::vector<vid> parent = {0, 0, 0, 1};
  const ChildrenCsr children = build_children(ex, parent, 0);
  const LevelStructure levels = build_levels(ex, children, 0);
  std::vector<vid> pre, sub;
  preorder_and_size(ex, children, levels, 0, pre, sub);
  EXPECT_EQ(sub, (std::vector<vid>{4, 2, 1, 1}));
  EXPECT_EQ(pre[0], 1u);
  // Single-threaded build keeps child order 1, 2 (insertion order):
  EXPECT_EQ(pre[1], 2u);
  EXPECT_EQ(pre[3], 3u);
  EXPECT_EQ(pre[2], 4u);
}

TEST(TreeComputations, SubtreeMinMaxAggregates) {
  Executor ex(2);
  // Path 0 - 1 - 2 - 3 rooted at 0.
  const std::vector<vid> parent = {0, 0, 1, 2};
  const ChildrenCsr children = build_children(ex, parent, 0);
  const LevelStructure levels = build_levels(ex, children, 0);
  std::vector<vid> val = {5, 9, 2, 7};
  subtree_min(ex, children, levels, val.data());
  EXPECT_EQ(val, (std::vector<vid>{2, 2, 2, 7}));
  val = {5, 9, 2, 7};
  subtree_max(ex, children, levels, val.data());
  EXPECT_EQ(val, (std::vector<vid>{9, 9, 7, 7}));
}

TEST(TreeComputations, DfsTourPositionsMatchSimulatedDfs) {
  Executor ex(2);
  const EdgeList tree = random_tree(500, 31);
  const DfsRef ref(tree, 0);
  const ChildrenCsr children = build_children(ex, ref.parent, 0);
  const LevelStructure levels = build_levels(ex, children, 0);
  RootedSpanningTree rooted;
  rooted.root = 0;
  rooted.parent = ref.parent;
  preorder_and_size(ex, children, levels, 0, rooted.pre, rooted.sub);
  const DfsTourPositions pos = dfs_tour_positions(ex, rooted, levels.depth);

  // Simulate the DFS in child-list order and record arc indices.
  std::vector<vid> down(tree.n, kNoVertex), up(tree.n, kNoVertex);
  vid clock = 0;
  std::function<void(vid)> dfs = [&](vid v) {
    for (const vid c : children.children(v)) {
      down[c] = clock++;
      dfs(c);
      up[c] = clock++;
    }
  };
  dfs(0);
  EXPECT_EQ(pos.down, down);
  EXPECT_EQ(pos.up, up);
  EXPECT_EQ(pos.down[0], kNoVertex);
}

TEST(EulerCircuit, RootWithoutTreeEdgeThrows) {
  Executor ex(1);
  EdgeList tree(2, {{0, 1}});
  const std::vector<eid> ids = {0};
  // Vertex 5 does not exist / has no arcs: the two-vertex tree rooted
  // elsewhere must be rejected.
  EXPECT_THROW(
      build_euler_circuit(ex, 6, tree.edges, ids, 5, ArcSort::kCountingSort),
      std::invalid_argument);
}

TEST(RootTree, RejectsNonSpanningInput) {
  Executor ex(1);
  EdgeList tree(4, {{0, 1}});
  const std::vector<eid> ids = {0};
  EXPECT_THROW(
      root_tree_via_euler_tour(ex, 4, tree.edges, ids, 0),
      std::invalid_argument);
}

TEST(RootTree, SingleVertexTrivial) {
  Executor ex(2);
  EdgeList tree(1, {});
  const RootedSpanningTree rooted =
      root_tree_via_euler_tour(ex, 1, tree.edges, {}, 0);
  EXPECT_EQ(rooted.pre, (std::vector<vid>{1}));
  EXPECT_EQ(rooted.sub, (std::vector<vid>{1}));
  EXPECT_EQ(rooted.parent, (std::vector<vid>{0}));
}

}  // namespace
}  // namespace parbcc
