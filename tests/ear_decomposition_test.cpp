#include <gtest/gtest.h>

#include <set>

#include "core/bcc.hpp"
#include "core/ear_decomposition.hpp"
#include "graph/generators.hpp"
#include "util/thread_pool.hpp"

namespace parbcc {
namespace {

void expect_valid_ears(Executor& ex, const EdgeList& g) {
  const EarDecomposition ears = ear_decomposition(ex, g);
  EXPECT_EQ(ears.num_ears, g.m() - g.n + 1);
  EXPECT_TRUE(is_ear_decomposition(g, ears));
}

TEST(EarDecomposition, CycleIsOneEar) {
  Executor ex(2);
  const EdgeList g = gen::cycle(8);
  const EarDecomposition ears = ear_decomposition(ex, g);
  EXPECT_EQ(ears.num_ears, 1u);
  EXPECT_EQ(ears.num_closed_ears, 0u);
  for (const vid id : ears.ear_of_edge) EXPECT_EQ(id, 0u);
}

TEST(EarDecomposition, ThetaGraphHasTwoEars) {
  Executor ex(1);
  // Two vertices joined by three internally disjoint paths.
  EdgeList g(5, {{0, 2}, {2, 1},    // path A
                 {0, 3}, {3, 1},    // path B
                 {0, 4}, {4, 1}});  // path C
  const EarDecomposition ears = ear_decomposition(ex, g);
  EXPECT_EQ(ears.num_ears, 2u);
  EXPECT_TRUE(is_ear_decomposition(g, ears, /*require_open=*/true));
}

TEST(EarDecomposition, TwoTrianglesSharingAVertex) {
  Executor ex(2);
  // Bridgeless but not biconnected: decomposition exists, and the
  // second triangle is necessarily a closed ear.
  EdgeList g(5, {{0, 1}, {1, 2}, {2, 0}, {2, 3}, {3, 4}, {4, 2}});
  const EarDecomposition ears = ear_decomposition(ex, g);
  EXPECT_EQ(ears.num_ears, 2u);
  EXPECT_EQ(ears.num_closed_ears, 1u);
  EXPECT_TRUE(is_ear_decomposition(g, ears));
  EXPECT_FALSE(is_ear_decomposition(g, ears, /*require_open=*/true));
}

TEST(EarDecomposition, StructuredBiconnectedFamilies) {
  Executor ex(3);
  expect_valid_ears(ex, gen::complete(12));
  expect_valid_ears(ex, gen::grid_torus(5, 6));
  expect_valid_ears(ex, gen::wheel(15));
  expect_valid_ears(ex, gen::complete_bipartite(4, 6));
}

class EarParam : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(EarParam, RandomBiconnectedGraphs) {
  const auto [threads, seed] = GetParam();
  Executor ex(threads);
  const EdgeList g = gen::random_connected_gnm(300, 2400, seed);
  BccOptions opt;
  const BccResult r = biconnected_components(ex, g, opt);
  if (r.num_components != 1) GTEST_SKIP() << "instance not biconnected";
  expect_valid_ears(ex, g);
}

TEST_P(EarParam, CactiAreFullyDecomposable) {
  const auto [threads, seed] = GetParam();
  Executor ex(threads);
  // A cactus of cycles is 2-edge-connected... only if every block is a
  // cycle AND blocks chain without bridges — random_cactus guarantees
  // exactly that.  Every non-first ear attaches at one cut vertex, so
  // all of them are closed.
  const EdgeList g = gen::random_cactus(25, 7, seed);
  const EarDecomposition ears = ear_decomposition(ex, g);
  EXPECT_EQ(ears.num_ears, 25u);
  EXPECT_EQ(ears.num_closed_ears, 24u);
  EXPECT_TRUE(is_ear_decomposition(g, ears));
}

INSTANTIATE_TEST_SUITE_P(Sweep, EarParam,
                         ::testing::Combine(::testing::Values(1, 2, 4),
                                            ::testing::Values(1, 2, 3, 4,
                                                              5)));

TEST(EarDecomposition, RejectsBridges) {
  Executor ex(2);
  EXPECT_THROW(ear_decomposition(ex, gen::path(5)), std::invalid_argument);
  // Two triangles joined by a bridge.
  EdgeList g(6,
             {{0, 1}, {1, 2}, {2, 0}, {2, 3}, {3, 4}, {4, 5}, {5, 3}});
  EXPECT_THROW(ear_decomposition(ex, g), std::invalid_argument);
}

TEST(EarDecomposition, RejectsDisconnectedAndTiny) {
  Executor ex(1);
  EdgeList two_triangles(6,
                         {{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}});
  EXPECT_THROW(ear_decomposition(ex, two_triangles), std::invalid_argument);
  EXPECT_THROW(ear_decomposition(ex, EdgeList(2, {{0, 1}})),
               std::invalid_argument);
}

TEST(EarChecker, RejectsBogusDecompositions) {
  const EdgeList g = gen::cycle(6);
  EarDecomposition ears;
  ears.num_ears = 2;  // a cycle has exactly one ear
  ears.ear_of_edge = {0, 0, 0, 1, 1, 1};
  EXPECT_FALSE(is_ear_decomposition(g, ears));
  ears.num_ears = 1;
  ears.ear_of_edge = {0, 0, 0, 0, 0, 0};
  EXPECT_TRUE(is_ear_decomposition(g, ears));
  ears.ear_of_edge[2] = 7;  // out of range
  EXPECT_FALSE(is_ear_decomposition(g, ears));
}

}  // namespace
}  // namespace parbcc
