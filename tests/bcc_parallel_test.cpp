#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "core/bcc.hpp"
#include "core/hopcroft_tarjan.hpp"
#include "graph/csr.hpp"
#include "graph/generators.hpp"
#include "test_util.hpp"
#include "util/thread_pool.hpp"

namespace parbcc {
namespace {

/// Named graph families for the big equivalence sweep.
EdgeList make_graph(const std::string& family, int seed) {
  const auto s = static_cast<std::uint64_t>(seed);
  if (family == "sparse_random") {
    return gen::random_connected_gnm(800, 1600, s);
  }
  if (family == "dense_random") {
    return gen::random_connected_gnm(300, 4000, s);
  }
  if (family == "tree_random") {
    return gen::random_connected_gnm(1000, 999, s);
  }
  if (family == "cactus") {
    return gen::random_cactus(60, 9, s);
  }
  if (family == "clique_chain") {
    return gen::clique_chain(10 + static_cast<vid>(seed), 5);
  }
  if (family == "cycle_chain") {
    return gen::cycle_chain(20, 3 + static_cast<vid>(seed % 4));
  }
  if (family == "torus") {
    return gen::grid_torus(8, 9 + static_cast<vid>(seed));
  }
  if (family == "path") {
    return gen::path(500);
  }
  if (family == "star") {
    return gen::star(500);
  }
  if (family == "complete") {
    return gen::complete(40);
  }
  ADD_FAILURE() << "unknown family " << family;
  return {};
}

class BccEquivalence
    : public ::testing::TestWithParam<
          std::tuple<BccAlgorithm, std::string, int, int>> {};

TEST_P(BccEquivalence, MatchesSequentialTarjanAsPartition) {
  const auto [algorithm, family, seed, threads] = GetParam();
  const EdgeList g = make_graph(family, seed);

  Executor ex(threads);
  BccOptions opt;
  opt.algorithm = algorithm;
  opt.compute_cut_info = true;
  const BccResult par = biconnected_components(ex, g, opt);

  const Csr csr = Csr::build(ex, g);
  const BccResult seq = hopcroft_tarjan_bcc(g, csr, true);

  ASSERT_EQ(par.num_components, seq.num_components);
  EXPECT_TRUE(
      testutil::same_partition(par.edge_component, seq.edge_component));
  EXPECT_EQ(par.is_articulation, seq.is_articulation);
  EXPECT_EQ(par.bridges, seq.bridges);
}

INSTANTIATE_TEST_SUITE_P(
    Families, BccEquivalence,
    ::testing::Combine(
        ::testing::Values(BccAlgorithm::kTvSmp, BccAlgorithm::kTvOpt,
                          BccAlgorithm::kTvFilter, BccAlgorithm::kFastBcc),
        ::testing::Values("sparse_random", "dense_random", "tree_random",
                          "cactus", "clique_chain", "cycle_chain", "torus",
                          "path", "star", "complete"),
        ::testing::Values(1, 2),
        ::testing::Values(1, 4, 12)),
    [](const auto& info) {
      std::string name = to_string(std::get<0>(info.param));
      for (auto& c : name) {
        if (c == '-') c = '_';
      }
      return name + "_" + std::get<1>(info.param) + "_s" +
             std::to_string(std::get<2>(info.param)) + "_t" +
             std::to_string(std::get<3>(info.param));
    });

class BccSeedSweep
    : public ::testing::TestWithParam<std::tuple<BccAlgorithm, int>> {};

TEST_P(BccSeedSweep, RandomGraphsManySeeds) {
  const auto [algorithm, seed] = GetParam();
  // Mix of densities keyed off the seed.
  const vid n = 200 + 37 * static_cast<vid>(seed);
  const eid m = n + static_cast<eid>((seed % 5) * n);
  const EdgeList g =
      gen::random_connected_gnm(n, std::max<eid>(m, n - 1), seed);

  Executor ex(3);
  BccOptions opt;
  opt.algorithm = algorithm;
  const BccResult par = biconnected_components(ex, g, opt);
  const testutil::RefBcc ref = testutil::reference_bcc(g);
  ASSERT_EQ(par.num_components, ref.count);
  EXPECT_TRUE(testutil::same_partition(par.edge_component, ref.edge_comp));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BccSeedSweep,
    ::testing::Combine(::testing::Values(BccAlgorithm::kTvSmp,
                                         BccAlgorithm::kTvOpt,
                                         BccAlgorithm::kTvFilter,
                                         BccAlgorithm::kFastBcc,
                                         BccAlgorithm::kAuto),
                       ::testing::Range(0, 12)));

TEST(BccParallel, RootChoiceDoesNotChangeThePartition) {
  const EdgeList g = gen::random_connected_gnm(400, 1200, 5);
  Executor ex(4);
  BccOptions opt;
  opt.algorithm = BccAlgorithm::kTvFilter;
  opt.root = 0;
  const BccResult a = biconnected_components(ex, g, opt);
  opt.root = 237;
  const BccResult b = biconnected_components(ex, g, opt);
  EXPECT_EQ(a.num_components, b.num_components);
  EXPECT_TRUE(testutil::same_partition(a.edge_component, b.edge_component));
}

TEST(BccParallel, TvSmpRankerVariantsAgree) {
  const EdgeList g = gen::random_connected_gnm(300, 900, 8);
  Executor ex(4);
  BccOptions opt;
  opt.algorithm = BccAlgorithm::kTvSmp;
  BccResult base;
  bool first = true;
  for (const ListRanker ranker :
       {ListRanker::kSequential, ListRanker::kWyllie,
        ListRanker::kHelmanJaja}) {
    for (const ArcSort sort : {ArcSort::kSampleSort, ArcSort::kCountingSort}) {
      opt.ranker = ranker;
      opt.arc_sort = sort;
      const BccResult r = biconnected_components(ex, g, opt);
      if (first) {
        base = r;
        first = false;
      } else {
        ASSERT_EQ(r.num_components, base.num_components);
        EXPECT_TRUE(testutil::same_partition(r.edge_component,
                                             base.edge_component));
      }
    }
  }
}

TEST(BccParallel, StepTimesArePopulated) {
  const EdgeList g = gen::random_connected_gnm(2000, 8000, 2);
  Executor ex(2);
  for (const BccAlgorithm algorithm :
       {BccAlgorithm::kTvSmp, BccAlgorithm::kTvOpt, BccAlgorithm::kTvFilter,
        BccAlgorithm::kFastBcc}) {
    BccOptions opt;
    opt.algorithm = algorithm;
    const BccResult r = biconnected_components(ex, g, opt);
    EXPECT_GT(r.times.total, 0.0) << to_string(algorithm);
    EXPECT_GT(r.times.accounted(), 0.0) << to_string(algorithm);
    EXPECT_LE(r.times.accounted(), r.times.total * 1.5)
        << to_string(algorithm);
    if (algorithm == BccAlgorithm::kTvFilter) {
      EXPECT_GT(r.times.filtering, 0.0);
    } else {
      EXPECT_EQ(r.times.filtering, 0.0);
    }
  }
}

TEST(BccParallel, StepTimesAccountingBalancesAgainstTotal) {
  // The steps are derived from the same trace rollup for every
  // algorithm, so accounted + unattributed must reproduce the measured
  // wall clock — the drift the old per-driver stopwatches allowed.
  const EdgeList g = gen::random_connected_gnm(3000, 13000, 7);
  Executor ex(4);
  for (const BccAlgorithm algorithm :
       {BccAlgorithm::kSequential, BccAlgorithm::kTvSmp, BccAlgorithm::kTvOpt,
        BccAlgorithm::kTvFilter, BccAlgorithm::kFastBcc,
        BccAlgorithm::kAuto}) {
    BccOptions opt;
    opt.algorithm = algorithm;
    const BccResult r = biconnected_components(ex, g, opt);
    EXPECT_GT(r.times.total, 0.0) << to_string(algorithm);
    EXPECT_GE(r.times.unattributed, 0.0) << to_string(algorithm);
    EXPECT_NEAR(r.times.accounted() + r.times.unattributed, r.times.total,
                std::max(0.01 * r.times.total, 1e-6))
        << to_string(algorithm);
    // The rollup itself rides along on the result.
    EXPECT_FALSE(r.trace.phases.empty()) << to_string(algorithm);
  }
}

TEST(BccParallel, AutoCostModelPicksPerRegime) {
  Executor ex(2);
  BccOptions opt;
  opt.algorithm = BccAlgorithm::kAuto;

  // Tiny (n + m below the cutoff): parallel pipelines lose to plain
  // Hopcroft-Tarjan on barrier overhead alone.
  const EdgeList tiny = gen::random_connected_gnm(200, 1000, 1);
  const BccResult rt = biconnected_components(ex, tiny, opt);
  EXPECT_NE(rt.trace.find_path("sequential"), nullptr);
  EXPECT_EQ(rt.trace.find_path("dispatch"), nullptr);  // no probing either

  // Sparse: m <= 4n -> TV-opt (paper §4 rule), no adjacency probe.
  const EdgeList sparse = gen::random_connected_gnm(3000, 9000, 1);
  const BccResult rs = biconnected_components(ex, sparse, opt);
  EXPECT_EQ(rs.times.filtering, 0.0);
  EXPECT_NE(rs.trace.find_path("TV-opt"), nullptr);
  EXPECT_EQ(rs.trace.find_path("dispatch"), nullptr);

  // Dense, low skew: the measured cost model favours FastBCC (its
  // per-edge cost is one interval test + amortized union-find hook;
  // TV-filter still runs a spanning forest and the TV core over H).
  const EdgeList dense = gen::random_connected_gnm(3000, 15000, 1);
  const BccResult rd = biconnected_components(ex, dense, opt);
  EXPECT_NE(rd.trace.find_path("dispatch"), nullptr);
  EXPECT_NE(rd.trace.find_path("FastBCC"), nullptr);
  EXPECT_GT(rd.trace.counter_total("dispatch_max_degree"), 0.0);
  EXPECT_GT(rd.trace.counter_total("dispatch_pred_fastbcc_ms"), 0.0);
  EXPECT_GT(rd.trace.counter_total("dispatch_pred_filter_ms"), 0.0);

  // All three picks answer identically (as partitions).
  BccOptions seq;
  seq.algorithm = BccAlgorithm::kSequential;
  for (const EdgeList* g : {&tiny, &sparse, &dense}) {
    const BccResult a = biconnected_components(ex, *g, opt);
    const BccResult b = biconnected_components(ex, *g, seq);
    ASSERT_EQ(a.num_components, b.num_components);
    EXPECT_TRUE(
        testutil::same_partition(a.edge_component, b.edge_component));
  }
}

TEST(BccParallel, AutoDispatchIgnoresLoopsAndParallelEdges) {
  // A ring of 300 vertices padded with 1500 copies of one edge and 300
  // self-loops: the raw count (m = 2100) and even the loop-stripped
  // count (1800) both clear the 4n = 1200 bar, but only 300 distinct
  // edges exist — effectively a tree-like density where the paper's
  // rule prescribes the TV-opt fallback, not TV-filter.
  EdgeList g;
  g.n = 300;
  for (vid v = 0; v < g.n; ++v) g.edges.push_back({v, (v + 1) % g.n});
  for (int i = 0; i < 1500; ++i) g.edges.push_back({0, 1});
  for (vid v = 0; v < g.n; ++v) g.edges.push_back({v, v});
  ASSERT_GT(g.m() - g.n, 4ull * g.n);  // still "dense" after loop strip

  Executor ex(4);
  BccOptions opt;
  opt.algorithm = BccAlgorithm::kAuto;
  const BccResult r = biconnected_components(ex, g, opt);
  EXPECT_EQ(r.times.filtering, 0.0);
  EXPECT_NE(r.trace.find_path("TV-opt"), nullptr);
  EXPECT_EQ(r.trace.find_path("TV-filter"), nullptr);
  EXPECT_EQ(r.trace.counter_total("dispatch_unique_edges"), 300.0);

  BccOptions seq;
  seq.algorithm = BccAlgorithm::kSequential;
  const BccResult base = biconnected_components(ex, g, seq);
  ASSERT_EQ(r.num_components, base.num_components);
  EXPECT_TRUE(
      testutil::same_partition(r.edge_component, base.edge_component));

  // Control: a genuinely dense simple graph survives the probe and
  // lands on a dense-regime engine (the cost model, not the fallback).
  const EdgeList dense = gen::random_connected_gnm(2000, 12000, 3);
  const BccResult rd = biconnected_components(ex, dense, opt);
  EXPECT_NE(rd.trace.find_path("FastBCC"), nullptr);
  EXPECT_EQ(rd.trace.find_path("TV-opt"), nullptr);
  EXPECT_GT(rd.trace.counter_total("dispatch_unique_edges"),
            4.0 * static_cast<double>(dense.n));
}

}  // namespace
}  // namespace parbcc
