#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/bcc.hpp"
#include "graph/io_binary.hpp"
#include "graph/text_parse.hpp"
#include "test_util.hpp"

/// Reference-output tests over the committed graph fixtures in
/// tests/data/: four deterministic structured stand-ins for the
/// paper's real-graph families (road / web / social / block-heavy;
/// regenerate with tools/make_refgraphs.py).  Each graph ships as both
/// the text edge list and the converted .pbg, plus a pinned invariant
/// row in refgraphs.tsv (regenerate with `pbgstat --tsv`).  The test
/// loads every graph through BOTH ingestion paths — the parallel text
/// parser and the zero-copy mmap loader — at p in {1, 4, 12}, and
/// asserts the invariants match the table and the label partitions
/// match each other.  A drift in either parser, the .pbg writer, the
/// loader, or any solver shows up as a diff against numbers that are
/// committed to the repo.

#ifndef PARBCC_TEST_DATA_DIR
#error "PARBCC_TEST_DATA_DIR must point at tests/data"
#endif

namespace parbcc {
namespace {

struct RefRow {
  std::string name;
  vid n = 0;
  eid m = 0;
  vid num_components = 0;
  eid largest_block_edges = 0;
  std::uint64_t articulation_points = 0;
  std::uint64_t bridges = 0;
};

std::vector<RefRow> load_table() {
  const std::string path = std::string(PARBCC_TEST_DATA_DIR) +
                           "/refgraphs.tsv";
  std::ifstream in(path);
  EXPECT_TRUE(in.is_open()) << path;
  std::vector<RefRow> rows;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    RefRow r;
    ls >> r.name >> r.n >> r.m >> r.num_components >> r.largest_block_edges >>
        r.articulation_points >> r.bridges;
    EXPECT_FALSE(ls.fail()) << "bad row: " << line;
    rows.push_back(std::move(r));
  }
  return rows;
}

struct Invariants {
  vid num_components;
  eid largest_block_edges;
  std::uint64_t articulation_points;
  std::uint64_t bridges;
};

Invariants invariants_of(const BccResult& r) {
  std::vector<eid> block_edges(r.num_components, 0);
  for (const vid c : r.edge_component) ++block_edges[c];
  const eid largest =
      block_edges.empty()
          ? 0
          : *std::max_element(block_edges.begin(), block_edges.end());
  std::uint64_t cuts = 0;
  for (const std::uint8_t a : r.is_articulation) cuts += a;
  return {r.num_components, largest, cuts, r.bridges.size()};
}

class RealGraph : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(RealGraph, TextAndMmapMatchPinnedInvariants) {
  static const std::vector<RefRow> table = load_table();
  ASSERT_EQ(table.size(), 4u);
  const RefRow& ref = table[std::get<0>(GetParam())];
  const int p = std::get<1>(GetParam());
  const std::string base = std::string(PARBCC_TEST_DATA_DIR) + "/" + ref.name;

  BccOptions opt;
  opt.threads = p;

  // Path 1: parallel text parse.
  Executor ex(p);
  const EdgeList text_graph = io::read_text_graph(ex, base + ".txt");
  ASSERT_EQ(text_graph.n, ref.n);
  ASSERT_EQ(text_graph.m(), ref.m);
  const BccResult from_text = biconnected_components(ex, text_graph, opt);

  // Path 2: zero-copy mmap of the committed .pbg (deep verify on —
  // these are fixtures, a corrupted checkout should fail loudly).
  BccContext ctx(p);
  io::MapOptions mopt;
  mopt.verify = true;
  const PreparedGraph& pg = io::map_prepared_graph(ctx, base + ".pbg", mopt);
  const EdgeList* mapped = ctx.mapped_graph();
  ASSERT_NE(mapped, nullptr);
  ASSERT_EQ(mapped->n, ref.n);
  ASSERT_EQ(mapped->m(), ref.m);
  ASSERT_TRUE(pg.csr().is_borrowed());
  const BccResult from_map = biconnected_components(ctx, *mapped, opt);
  // The adopted CSR was keyed into the context's cache: a connected
  // solve must not have rebuilt adjacency.  (Disconnected fixtures —
  // road-grid has three components — are decomposed into relabeled
  // subproblems, where the mapped CSR legitimately cannot apply.)
  if (testutil::component_count(*mapped) == 1) {
    EXPECT_EQ(from_map.times.conversion, 0.0);
  }

  // Both paths match the committed table...
  for (const BccResult* r : {&from_text, &from_map}) {
    const Invariants inv = invariants_of(*r);
    EXPECT_EQ(inv.num_components, ref.num_components) << ref.name;
    EXPECT_EQ(inv.largest_block_edges, ref.largest_block_edges) << ref.name;
    EXPECT_EQ(inv.articulation_points, ref.articulation_points) << ref.name;
    EXPECT_EQ(inv.bridges, ref.bridges) << ref.name;
  }
  // ...and each other, as labelings.  Both ingestion paths emit edges
  // in the same canonical order, so labels align index for index.
  ASSERT_EQ(from_text.edge_component.size(), from_map.edge_component.size());
  EXPECT_TRUE(testutil::same_partition(from_text.edge_component,
                                       from_map.edge_component))
      << ref.name << " p=" << p;
  EXPECT_EQ(from_text.is_articulation, from_map.is_articulation);
  EXPECT_EQ(from_text.bridges, from_map.bridges);
}

TEST_P(RealGraph, CompressedBackendMatchesTable) {
  static const std::vector<RefRow> table = load_table();
  const RefRow& ref = table[std::get<0>(GetParam())];
  const int p = std::get<1>(GetParam());
  const std::string base = std::string(PARBCC_TEST_DATA_DIR) + "/" + ref.name;

  // The committed .pbg files carry compressed sections; solve through
  // them and pin the same invariants.
  BccContext ctx(p);
  const PreparedGraph& pg = io::map_prepared_graph(ctx, base + ".pbg");
  ASSERT_NE(pg.compressed(), nullptr);
  BccOptions opt;
  opt.threads = p;
  opt.csr_backend = CsrBackend::kCompressed;
  opt.algorithm = BccAlgorithm::kFastBcc;
  const BccResult r = biconnected_components(ctx, *ctx.mapped_graph(), opt);
  const Invariants inv = invariants_of(r);
  EXPECT_EQ(inv.num_components, ref.num_components) << ref.name;
  EXPECT_EQ(inv.largest_block_edges, ref.largest_block_edges) << ref.name;
  EXPECT_EQ(inv.articulation_points, ref.articulation_points) << ref.name;
  EXPECT_EQ(inv.bridges, ref.bridges) << ref.name;
}

std::string fixture_name(
    const ::testing::TestParamInfo<std::tuple<int, int>>& info) {
  static const char* const names[4] = {"road_grid", "web_pa", "social_comm",
                                       "clique_chain"};
  return std::string(names[std::get<0>(info.param)]) + "_p" +
         std::to_string(std::get<1>(info.param));
}

INSTANTIATE_TEST_SUITE_P(Fixtures, RealGraph,
                         ::testing::Combine(::testing::Range(0, 4),
                                            ::testing::Values(1, 4, 12)),
                         fixture_name);

}  // namespace
}  // namespace parbcc
