#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <tuple>
#include <vector>

#include "connectivity/shiloach_vishkin.hpp"
#include "graph/csr.hpp"
#include "graph/generators.hpp"
#include "spanning/bfs_tree.hpp"
#include "spanning/forest.hpp"
#include "spanning/sv_tree.hpp"
#include "test_util.hpp"
#include "util/thread_pool.hpp"

/// \file frontier_test.cpp
/// Property suite for the two frontier engines: the
/// direction-optimizing BFS (top-down / bottom-up / hybrid must be
/// interchangeable) and Shiloach-Vishkin (classic / FastSV must agree
/// on labels, FastSV must converge in strictly fewer rounds).

namespace parbcc {
namespace {

EdgeList family_graph(const std::string& family, int seed) {
  if (family == "random") {
    return gen::random_connected_gnm(2000, 8000,
                                     static_cast<std::uint64_t>(seed));
  }
  if (family == "star") return gen::star(1000);
  if (family == "path") return gen::path(1000);
  return gen::grid_torus(20, 20);  // "torus"
}

class BfsModeParam
    : public ::testing::TestWithParam<std::tuple<int, std::string>> {};

TEST_P(BfsModeParam, AllModesProduceIdenticalLevelsAndValidTrees) {
  const auto [threads, family] = GetParam();
  Executor ex(threads);
  const EdgeList g = family_graph(family, threads);
  const Csr csr = Csr::build(ex, g);
  const SeqBfsResult seq = sequential_bfs(csr, 0);

  for (const BfsMode mode :
       {BfsMode::kTopDown, BfsMode::kBottomUp, BfsMode::kAuto}) {
    const BfsTree tree = bfs_tree(ex, csr, 0, mode);
    EXPECT_EQ(tree.reached, g.n);
    // Levels are shortest-path depths, hence identical across modes
    // even though the parent choices may differ.
    EXPECT_EQ(tree.level, seq.level);
    EXPECT_TRUE(is_valid_rooted_tree(tree.parent, 0));
    for (vid v = 0; v < g.n; ++v) {
      if (v == 0) continue;
      // Parent is exactly one level up, via a real edge.
      ASSERT_EQ(tree.level[v], tree.level[tree.parent[v]] + 1);
      const Edge& e = g.edges[tree.parent_edge[v]];
      ASSERT_TRUE((e.u == v && e.v == tree.parent[v]) ||
                  (e.v == v && e.u == tree.parent[v]));
    }
    // Round telemetry matches the mode that was forced.
    if (mode == BfsMode::kTopDown) {
      EXPECT_EQ(tree.bottom_up_rounds, 0u);
    }
    if (mode == BfsMode::kBottomUp) {
      EXPECT_EQ(tree.top_down_rounds, 0u);
    }
    EXPECT_EQ(tree.top_down_rounds + tree.bottom_up_rounds, tree.num_levels);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BfsModeParam,
    ::testing::Combine(::testing::Values(1, 4, 12),
                       ::testing::Values("random", "star", "path", "torus")));

TEST(BfsDirection, TopDownInspectsEveryArcOnce) {
  Executor ex(4);
  const EdgeList g = gen::random_connected_gnm(3000, 12000, 9);
  const Csr csr = Csr::build(ex, g);
  const BfsTree tree = bfs_tree(ex, csr, 0, BfsMode::kTopDown);
  // On a connected graph every vertex joins the frontier exactly once,
  // so top-down inspections total the arc count 2m.
  EXPECT_EQ(tree.inspected_edges, 2 * static_cast<std::uint64_t>(g.m()));
}

TEST(BfsDirection, HybridInspectsFewerEdgesOnLowDiameterGraphs) {
  Executor ex(4);
  for (const std::uint64_t seed : {1, 2, 3}) {
    const EdgeList g = gen::random_connected_gnm(4000, 32000, seed);
    const Csr csr = Csr::build(ex, g);
    const BfsTree td = bfs_tree(ex, csr, 0, BfsMode::kTopDown);
    const BfsTree hy = bfs_tree(ex, csr, 0, BfsMode::kAuto);
    EXPECT_LT(hy.inspected_edges, td.inspected_edges);
    EXPECT_GT(hy.bottom_up_rounds, 0u);  // the switch actually fired
  }
}

TEST(BfsDirection, HybridStaysSparseOnHighDiameterGraphs) {
  Executor ex(4);
  const EdgeList g = gen::path(5000);
  const Csr csr = Csr::build(ex, g);
  const BfsTree tree = bfs_tree(ex, csr, 0, BfsMode::kAuto);
  // A two-vertex frontier never clears the alpha threshold.
  EXPECT_EQ(tree.bottom_up_rounds, 0u);
}

class SvModeParam : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(SvModeParam, ClassicAndFastSvAgreeWithSequentialUnionFind) {
  const auto [threads, seed] = GetParam();
  Executor ex(threads);
  // Sparse enough to be well disconnected.
  const EdgeList g = gen::random_gnm(2000, 1500, seed);
  const auto seq = connected_components_seq(g.n, g.edges);
  for (const SvMode mode : {SvMode::kClassic, SvMode::kFastSV}) {
    SvStats stats;
    const auto par = connected_components_sv(ex, g.n, g.edges, mode, &stats);
    EXPECT_EQ(par, seq);  // same contract: component-minimum labels
    EXPECT_GE(stats.rounds, 1u);
  }
}

TEST_P(SvModeParam, ForestHasExactlyNMinusCEdgesInEveryMode) {
  const auto [threads, seed] = GetParam();
  Executor ex(threads);
  const EdgeList g = gen::random_gnm(3000, 6000, seed);
  const vid comps = testutil::component_count(g);
  for (const SvMode mode : {SvMode::kClassic, SvMode::kFastSV}) {
    const SpanningForest forest = sv_spanning_forest(ex, g.n, g.edges, mode);
    EXPECT_EQ(forest.num_components, comps);
    EXPECT_EQ(forest.tree_edges.size(), g.n - comps);
    EXPECT_TRUE(is_forest(g.n, g.edges, forest.tree_edges));
    EXPECT_EQ(forest.comp, connected_components_seq(g.n, g.edges));
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, SvModeParam,
                         ::testing::Combine(::testing::Values(1, 4, 12),
                                            ::testing::Values(1, 2, 3)));

TEST(FastSv, ConvergesInFewerRoundsThanClassic) {
  // Round counts are scheduling-sensitive: labels written early in a
  // pass are visible later in the same pass, so a nearly serial
  // interleave — including workers descheduled by a loaded machine —
  // can collapse classic to its 2-round minimum even at full SPMD
  // width.  The stable property is separation under the typical
  // schedule (stride-2 hooking plus full per-round flattening lands
  // FastSV at 2 rounds while classic's single jump needs 4+), so the
  // round assertion gets a small retry budget; label equality stays
  // unconditional.  The separation is a property of the paper's SPMD
  // schedule — work-stealing's lazy splitting executes mostly in index
  // order on an idle machine, which is exactly the nearly serial
  // interleave that collapses classic — so the test pins kSpmd.
  Executor ex(12);
  ex.set_mode(ExecMode::kSpmd);
  const EdgeList torus = gen::grid_torus(141, 141);
  const EdgeList random = gen::random_connected_gnm(20000, 160000, 20050404);
  bool separated = false;
  for (int attempt = 0; attempt < 5 && !separated; ++attempt) {
    separated = true;
    for (const EdgeList* g : {&torus, &random}) {
      SvStats classic, fast;
      const auto lc = connected_components_sv(ex, g->n, g->edges,
                                              SvMode::kClassic, &classic);
      const auto lf =
          connected_components_sv(ex, g->n, g->edges, SvMode::kFastSV, &fast);
      ASSERT_EQ(lc, lf);
      separated = separated && fast.rounds < classic.rounds;
    }
  }
  EXPECT_TRUE(separated);
}

TEST(FastSv, SubsetForestRestrictsEdges) {
  Executor ex(4);
  // A square 0-1-2-3-0 plus diagonal; restrict to the square only.
  EdgeList g(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 2}});
  const std::vector<eid> subset = {0, 1, 2, 3};
  const SpanningForest forest =
      sv_spanning_forest(ex, g.n, g.edges, subset, SvMode::kFastSV);
  EXPECT_EQ(forest.num_components, 1u);
  EXPECT_EQ(forest.tree_edges.size(), 3u);
  for (const eid e : forest.tree_edges) {
    EXPECT_TRUE(std::find(subset.begin(), subset.end(), e) != subset.end());
  }
}

TEST(FastSv, LongPathStressesShortcutting) {
  Executor ex(4);
  const EdgeList g = gen::path(20000);
  SvStats stats;
  const auto labels =
      connected_components_sv(ex, g.n, g.edges, SvMode::kFastSV, &stats);
  for (const vid l : labels) ASSERT_EQ(l, 0u);
}

}  // namespace
}  // namespace parbcc
