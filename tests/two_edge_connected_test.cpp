#include <gtest/gtest.h>

#include "connectivity/shiloach_vishkin.hpp"
#include "connectivity/union_find.hpp"
#include "core/bcc.hpp"
#include "core/two_edge_connected.hpp"
#include "graph/generators.hpp"
#include "test_util.hpp"
#include "util/thread_pool.hpp"

namespace parbcc {
namespace {

/// Oracle: delete brute-force bridges, then union-find.
std::vector<vid> brute_force_tecc(const EdgeList& g) {
  const auto bridges = testutil::brute_force_bridges(g);
  std::vector<std::uint8_t> is_bridge(g.m(), 0);
  for (const eid e : bridges) is_bridge[e] = 1;
  UnionFind uf(g.n);
  for (eid e = 0; e < g.m(); ++e) {
    if (!is_bridge[e] && g.edges[e].u != g.edges[e].v) {
      uf.unite(g.edges[e].u, g.edges[e].v);
    }
  }
  std::vector<vid> labels(g.n);
  for (vid v = 0; v < g.n; ++v) labels[v] = uf.find(v);
  normalize_labels(labels);
  return labels;
}

TEST(TwoEdgeConnected, PathSplitsCompletely) {
  Executor ex(2);
  const EdgeList g = gen::path(6);
  const TwoEdgeConnected r = two_edge_connected_components(ex, g);
  EXPECT_EQ(r.num_components, 6u);
  EXPECT_EQ(r.bridges.size(), 5u);
}

TEST(TwoEdgeConnected, CycleIsOneComponent) {
  Executor ex(2);
  const TwoEdgeConnected r =
      two_edge_connected_components(ex, gen::cycle(10));
  EXPECT_EQ(r.num_components, 1u);
  EXPECT_TRUE(r.bridges.empty());
}

TEST(TwoEdgeConnected, BarbellGroupsCliquesAndPath) {
  Executor ex(2);
  // Two 4-cliques joined by a 3-edge path: cliques are components, the
  // two interior path vertices are singletons.
  const EdgeList g = gen::barbell(4, 3);
  const TwoEdgeConnected r = two_edge_connected_components(ex, g);
  EXPECT_EQ(r.num_components, 4u);
  EXPECT_EQ(r.bridges.size(), 3u);
  // Clique vertices share one label.
  EXPECT_EQ(r.vertex_component[0], r.vertex_component[3]);
  EXPECT_NE(r.vertex_component[0], r.vertex_component[4]);
}

TEST(TwoEdgeConnected, CutVertexIsNotACutEdge) {
  Executor ex(2);
  // Two triangles sharing vertex 2: one articulation point, zero
  // bridges, hence a SINGLE 2-edge-connected component.
  EdgeList g(5, {{0, 1}, {1, 2}, {2, 0}, {2, 3}, {3, 4}, {4, 2}});
  const TwoEdgeConnected r = two_edge_connected_components(ex, g);
  EXPECT_EQ(r.num_components, 1u);
  EXPECT_TRUE(r.bridges.empty());
}

TEST(TwoEdgeConnected, ParallelEdgeNeutralizesABridge) {
  Executor ex(2);
  EdgeList g(3, {{0, 1}, {0, 1}, {1, 2}});
  const TwoEdgeConnected r = two_edge_connected_components(ex, g);
  EXPECT_EQ(r.num_components, 2u);
  EXPECT_EQ(r.vertex_component[0], r.vertex_component[1]);
  EXPECT_NE(r.vertex_component[1], r.vertex_component[2]);
}

class TeccParam : public ::testing::TestWithParam<int> {};

TEST_P(TeccParam, MatchesBruteForceOnRandomGraphs) {
  const int seed = GetParam();
  Executor ex(3);
  const EdgeList g = gen::random_gnm(120, 160, seed);
  const TwoEdgeConnected r = two_edge_connected_components(ex, g);
  auto got = r.vertex_component;
  normalize_labels(got);
  const auto expect = brute_force_tecc(g);
  EXPECT_TRUE(testutil::same_partition(got, expect));
}

INSTANTIATE_TEST_SUITE_P(Sweep, TeccParam, ::testing::Range(0, 10));

TEST(TwoEdgeConnected, RejectsResultWithoutCutInfo) {
  Executor ex(1);
  const EdgeList g = gen::cycle(5);
  BccOptions opt;
  opt.compute_cut_info = false;
  const BccResult r = biconnected_components(ex, g, opt);
  EXPECT_THROW(two_edge_connected_components(ex, g, r),
               std::invalid_argument);
}

}  // namespace
}  // namespace parbcc
