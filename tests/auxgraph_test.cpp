#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/aux_graph.hpp"
#include "core/lowhigh.hpp"
#include "core/tv_core.hpp"
#include "eulertour/tree_computations.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace parbcc {
namespace {

/// Hand-built rooted tree over an explicit edge list.
struct Manual {
  RootedSpanningTree tree;
  ChildrenCsr children;
  LevelStructure levels;
  std::vector<vid> owner;

  Manual(Executor& ex, const EdgeList& g, std::vector<vid> parent,
         std::vector<eid> parent_edge, vid root) {
    tree.root = root;
    tree.parent = std::move(parent);
    tree.parent_edge = std::move(parent_edge);
    children = build_children(ex, tree.parent, root);
    levels = build_levels(ex, children, root);
    preorder_and_size(ex, children, levels, root, tree.pre, tree.sub);
    owner = make_tree_owner(ex, g.m(), tree);
  }
};

/// BFS orientation of a connected graph wrapped in the Manual fixture.
Manual bfs_fixture(Executor& ex, const EdgeList& g) {
  std::vector<vid> parent(g.n, kNoVertex);
  std::vector<eid> parent_edge(g.n, kNoEdge);
  std::vector<std::vector<std::pair<vid, eid>>> adj(g.n);
  for (eid e = 0; e < g.m(); ++e) {
    adj[g.edges[e].u].push_back({g.edges[e].v, e});
    adj[g.edges[e].v].push_back({g.edges[e].u, e});
  }
  parent[0] = 0;
  std::vector<vid> queue = {0};
  for (std::size_t i = 0; i < queue.size(); ++i) {
    const vid v = queue[i];
    for (const auto& [w, e] : adj[v]) {
      if (parent[w] == kNoVertex) {
        parent[w] = v;
        parent_edge[w] = e;
        queue.push_back(w);
      }
    }
  }
  return Manual(ex, g, std::move(parent), std::move(parent_edge), 0);
}

/// Connected variant of the fuzz-construction families
/// (fuzz_construction_test.cpp): bridges, cycles and cliques glued
/// onto existing vertices only, so a spanning tree always exists and
/// the tv_core kernels can run directly.
EdgeList fuzz_connected(std::uint64_t seed, int ops) {
  Xoshiro256 rng(seed);
  EdgeList g;
  g.n = 1;
  const auto fresh = [&] { return g.n++; };
  const auto anchor = [&] { return static_cast<vid>(rng.below(g.n)); };
  for (int k = 0; k < ops; ++k) {
    switch (rng.below(3)) {
      case 0: {  // bridge
        const vid a = anchor();
        g.add_edge(a, fresh());
        break;
      }
      case 1: {  // cycle
        const vid len = static_cast<vid>(3 + rng.below(6));
        const vid a = anchor();
        vid prev = a;
        for (vid i = 1; i < len; ++i) {
          const vid v = fresh();
          g.add_edge(prev, v);
          prev = v;
        }
        g.add_edge(prev, a);
        break;
      }
      default: {  // clique
        const vid size = static_cast<vid>(3 + rng.below(4));
        const vid a = anchor();
        std::vector<vid> members{a};
        for (vid i = 1; i < size; ++i) members.push_back(fresh());
        for (std::size_t i = 0; i < members.size(); ++i) {
          for (std::size_t j = i + 1; j < members.size(); ++j) {
            g.add_edge(members[i], members[j]);
          }
        }
        break;
      }
    }
  }
  return g;
}

TEST(AuxGraph, TrianglePlusPendantHandChecked) {
  Executor ex(1);
  // Edges: 0:(0,1) tree, 1:(1,2) tree, 2:(2,3) tree, 3:(0,2) nontree.
  EdgeList g(4, {{0, 1}, {1, 2}, {2, 3}, {0, 2}});
  Manual fx(ex, g, /*parent=*/{0, 0, 1, 2}, /*parent_edge=*/{kNoEdge, 0, 1, 2},
            /*root=*/0);
  // Preorder along the path: 0->1, 1->2, 2->3, 3->4.
  ASSERT_EQ(fx.tree.pre, (std::vector<vid>{1, 2, 3, 4}));

  const LowHigh lh = compute_low_high_levels(ex, g.edges, fx.tree, fx.owner,
                                             fx.children, fx.levels);
  EXPECT_EQ(lh.low, (std::vector<vid>{1, 1, 1, 4}));
  EXPECT_EQ(lh.high, (std::vector<vid>{4, 4, 4, 4}));

  const AuxGraph aux = build_aux_graph(ex, g.edges, fx.tree, fx.owner, lh);
  // Aux ids: tree edge of vertex v -> v; the single nontree edge -> 4.
  EXPECT_EQ(aux.num_vertices, 5u);
  EXPECT_EQ(aux.aux_id, (std::vector<vid>{1, 2, 3, 4}));
  // Expected links: condition 1 pairs nontree (0,2) with tree edge of
  // 2; condition 3 pairs tree edges of 2 and 1 (low(2)=1 < pre(1)=2).
  // The bridge (2,3) gets no link.
  std::set<std::pair<vid, vid>> got;
  for (const Edge& e : aux.edges) {
    got.insert({std::min(e.u, e.v), std::max(e.u, e.v)});
  }
  const std::set<std::pair<vid, vid>> expect = {{2, 4}, {1, 2}};
  EXPECT_EQ(got, expect);
}

TEST(AuxGraph, ConditionCountsOnTheCycle) {
  Executor ex(1);
  // Cycle 0-1-2-3-0: tree path + one closing nontree edge.
  EdgeList g(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}});
  Manual fx(ex, g, {0, 0, 1, 2}, {kNoEdge, 0, 1, 2}, 0);
  const LowHigh lh = compute_low_high_levels(ex, g.edges, fx.tree, fx.owner,
                                             fx.children, fx.levels);
  const AuxGraph aux = build_aux_graph(ex, g.edges, fx.tree, fx.owner, lh);
  // Condition 1 once (the closing edge), condition 2 zero times (3 is
  // a descendant of 0? no — 0 is root and ancestor of all: related),
  // condition 3 for tree edges of 2 and 3 (their subtrees reach back
  // to preorder 1).
  EXPECT_EQ(aux.edges.size(), 3u);
}

TEST(AuxGraph, MappingIsInjective) {
  Executor ex(4);
  const EdgeList g = gen::random_connected_gnm(300, 900, 4);
  Manual fx = bfs_fixture(ex, g);
  const LowHigh lh = compute_low_high_levels(ex, g.edges, fx.tree, fx.owner,
                                             fx.children, fx.levels);
  const AuxGraph aux = build_aux_graph(ex, g.edges, fx.tree, fx.owner, lh);

  // One-to-one: distinct edges get distinct aux ids, tree edges below
  // n, nontree at or above n (Theorem 1's mapping).
  std::set<vid> ids(aux.aux_id.begin(), aux.aux_id.end());
  EXPECT_EQ(ids.size(), g.m());
  for (eid e = 0; e < g.m(); ++e) {
    if (fx.owner[e] != kNoVertex) {
      EXPECT_LT(aux.aux_id[e], g.n);
    } else {
      EXPECT_GE(aux.aux_id[e], g.n);
      EXPECT_LT(aux.aux_id[e], aux.num_vertices);
    }
  }
  // Every nontree edge produces at least its condition-1 link, and the
  // staging bound holds.
  EXPECT_GE(aux.edges.size(), g.m() - (g.n - 1));
  EXPECT_LE(aux.edges.size(), 3ull * g.m());
  // All endpoints in range.
  for (const Edge& e : aux.edges) {
    EXPECT_LT(e.u, aux.num_vertices);
    EXPECT_LT(e.v, aux.num_vertices);
  }
}

/// Property suite for the fused kernel: on every fuzz-construction
/// family and SPMD width, the fused route's labels equal the
/// materialized route's — exactly, not merely as a partition, because
/// both contract each component to its minimum aux id.
class FusedVsMaterialized
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(FusedVsMaterialized, IdenticalLabelsOnFuzzFamilies) {
  const auto [threads, seed] = GetParam();
  Executor ex(threads);
  const EdgeList g =
      fuzz_connected(static_cast<std::uint64_t>(seed) * 77 + 5, 40);
  Manual fx = bfs_fixture(ex, g);
  const std::vector<vid> mat = tv_label_edges(
      ex, g.edges, fx.tree, fx.owner, LowHighMethod::kLevelSweep,
      &fx.children, &fx.levels, SvMode::kAuto, AuxMode::kMaterialized);
  const std::vector<vid> fused = tv_label_edges(
      ex, g.edges, fx.tree, fx.owner, LowHighMethod::kLevelSweep,
      &fx.children, &fx.levels, SvMode::kAuto, AuxMode::kFused);
  EXPECT_EQ(fused, mat);
}

INSTANTIATE_TEST_SUITE_P(Sweep, FusedVsMaterialized,
                         ::testing::Combine(::testing::Values(1, 4, 12),
                                            ::testing::Range(0, 8)));

/// The fused kernel's telemetry is consistent with the materialized
/// graph it replaces: |V'| matches, the spanning hook count is
/// |V'| - #components of G', and every label is a component minimum.
TEST(FusedAux, StatsMatchMaterializedStructure) {
  Executor ex(4);
  const EdgeList g = fuzz_connected(4242, 60);
  Manual fx = bfs_fixture(ex, g);
  const LowHigh lh = compute_low_high_levels(ex, g.edges, fx.tree, fx.owner,
                                             fx.children, fx.levels);
  const AuxGraph aux = build_aux_graph(ex, g.edges, fx.tree, fx.owner, lh);
  FusedAuxStats stats;
  const std::vector<vid> labels =
      fused_aux_components(ex, g.edges, fx.tree, fx.owner, lh, &stats);
  EXPECT_EQ(stats.num_vertices, aux.num_vertices);
  // Labels are component minima: each label is <= the aux id it came
  // from, and label slots are fixed points (their own component min).
  std::set<vid> roots;
  for (eid e = 0; e < g.m(); ++e) {
    EXPECT_LE(labels[e], aux.aux_id[e]);
    roots.insert(labels[e]);
  }
  // Each successful hook merges two components, so V' splits into
  // |V'| - hooks components.  Every aux vertex except the root's
  // unused slot is some edge's image (the mapping is onto
  // V' \ {root}), so the distinct labels count all components but one.
  EXPECT_EQ(static_cast<std::uint64_t>(aux.num_vertices) - stats.hooks,
            static_cast<std::uint64_t>(roots.size()) + 1);
}

}  // namespace
}  // namespace parbcc
