#include <gtest/gtest.h>

#include <cstdint>

#include "eulertour/tree_aggregates.hpp"
#include "eulertour/tree_computations.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace parbcc {
namespace {

struct Fixture {
  RootedSpanningTree tree;
  ChildrenCsr children;
  LevelStructure levels;

  Fixture(Executor& ex, std::vector<vid> parent, vid root) {
    tree.root = root;
    tree.parent = std::move(parent);
    children = build_children(ex, tree.parent, root);
    levels = build_levels(ex, children, root);
    preorder_and_size(ex, children, levels, root, tree.pre, tree.sub);
  }
};

std::vector<vid> random_parents(vid n, std::uint64_t seed) {
  std::vector<vid> parent(n);
  parent[0] = 0;
  Xoshiro256 rng(seed);
  for (vid v = 1; v < n; ++v) parent[v] = static_cast<vid>(rng.below(v));
  return parent;
}

TEST(TreeAggregates, SubtreeSumsHandChecked) {
  Executor ex(2);
  // 0 -> {1, 2}, 1 -> {3}.
  Fixture fx(ex, {0, 0, 0, 1}, 0);
  const std::vector<std::int64_t> w = {10, 20, 30, 40};
  const auto sums = subtree_sums<std::int64_t>(ex, fx.tree, w);
  EXPECT_EQ(sums, (std::vector<std::int64_t>{100, 60, 30, 40}));
}

TEST(TreeAggregates, RootPathSumsHandChecked) {
  Executor ex(2);
  // Path 0 - 1 - 2 - 3.
  Fixture fx(ex, {0, 0, 1, 2}, 0);
  const std::vector<std::int64_t> w = {1, 2, 4, 8};
  const auto sums =
      root_path_sums<std::int64_t>(ex, fx.tree, fx.levels.depth, w);
  EXPECT_EQ(sums, (std::vector<std::int64_t>{1, 3, 7, 15}));
}

class AggParam : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(AggParam, MatchesBruteForceOnRandomTrees) {
  const auto [threads, n] = GetParam();
  Executor ex(threads);
  Fixture fx(ex, random_parents(static_cast<vid>(n), n * 3 + 1), 0);
  Xoshiro256 rng(n + 5);
  std::vector<std::int64_t> w(n);
  for (auto& x : w) x = static_cast<std::int64_t>(rng.below(1000)) - 500;

  const auto sub = subtree_sums<std::int64_t>(ex, fx.tree, w);
  const auto path =
      root_path_sums<std::int64_t>(ex, fx.tree, fx.levels.depth, w);

  // Brute subtree sums: bottom-up accumulation.
  std::vector<std::int64_t> expect_sub(w.begin(), w.end());
  for (vid d = fx.levels.num_levels; d-- > 0;) {
    for (const vid v : fx.levels.level(d)) {
      if (v != 0) expect_sub[fx.tree.parent[v]] += expect_sub[v];
    }
  }
  EXPECT_EQ(sub, expect_sub);

  // Brute path sums: walk to the root.
  for (vid v = 0; v < static_cast<vid>(n); ++v) {
    std::int64_t acc = 0;
    vid x = v;
    for (;;) {
      acc += w[x];
      if (x == 0) break;
      x = fx.tree.parent[x];
    }
    ASSERT_EQ(path[v], acc) << "v=" << v;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, AggParam,
                         ::testing::Combine(::testing::Values(1, 4),
                                            ::testing::Values(1, 2, 50,
                                                              20000)));

TEST(TreeAggregates, UnsignedWraparoundIsWellDefined) {
  Executor ex(2);
  Fixture fx(ex, {0, 0, 1}, 0);
  const std::vector<std::uint64_t> w = {1, ~std::uint64_t{0}, 2};
  const auto path =
      root_path_sums<std::uint64_t>(ex, fx.tree, fx.levels.depth, w);
  EXPECT_EQ(path[1], 0u);       // 1 + (2^64 - 1) wraps to 0
  EXPECT_EQ(path[2], 2u);
}

}  // namespace
}  // namespace parbcc
