#pragma once

#include <functional>
#include <map>
#include <span>
#include <vector>

#include "connectivity/union_find.hpp"
#include "graph/edge_list.hpp"
#include "util/types.hpp"

/// \file test_util.hpp
/// Independent reference implementations used as oracles.  These are
/// deliberately written in a different style from the library code
/// (recursive DFS, brute-force deletion tests) so shared bugs are
/// unlikely.

namespace parbcc::testutil {

struct RefBcc {
  std::vector<vid> edge_comp;
  vid count = 0;
};

/// Recursive Tarjan biconnected components (small graphs only: the
/// recursion depth is O(n)).  Handles disconnected inputs, parallel
/// edges, and gives each self-loop its own component.
RefBcc reference_bcc(const EdgeList& g);

/// Brute force: v is an articulation point iff deleting it increases
/// the number of connected components.
std::vector<std::uint8_t> brute_force_articulation(const EdgeList& g);

/// Brute force: e is a bridge iff deleting it increases the number of
/// connected components (self-loops and parallel copies never are).
std::vector<eid> brute_force_bridges(const EdgeList& g);

/// Number of connected components (isolated vertices count).
vid component_count(const EdgeList& g);

/// True iff labelings a and b induce the same partition of indices.
bool same_partition(std::span<const vid> a, std::span<const vid> b);

}  // namespace parbcc::testutil
