#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "rmq/sparse_table.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace parbcc {
namespace {

std::vector<vid> random_array(std::size_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<vid> v(n);
  for (auto& x : v) x = static_cast<vid>(rng.below(1000));
  return v;
}

class RmqParam
    : public ::testing::TestWithParam<std::tuple<std::size_t, int>> {};

TEST_P(RmqParam, MinQueriesMatchBruteForce) {
  const auto [n, threads] = GetParam();
  Executor ex(threads);
  const auto a = random_array(n, n * 13 + threads);
  const MinTable<vid> table(ex, a.data(), n);
  Xoshiro256 rng(n + 7);
  for (int q = 0; q < 500; ++q) {
    std::size_t l = rng.below(n);
    std::size_t r = rng.below(n);
    if (l > r) std::swap(l, r);
    const vid expect = *std::min_element(a.begin() + l, a.begin() + r + 1);
    ASSERT_EQ(table.query(l, r), expect) << "[" << l << "," << r << "]";
  }
}

TEST_P(RmqParam, MaxQueriesMatchBruteForce) {
  const auto [n, threads] = GetParam();
  Executor ex(threads);
  const auto a = random_array(n, n * 19 + threads);
  const MaxTable<vid> table(ex, a.data(), n);
  Xoshiro256 rng(n + 11);
  for (int q = 0; q < 500; ++q) {
    std::size_t l = rng.below(n);
    std::size_t r = rng.below(n);
    if (l > r) std::swap(l, r);
    const vid expect = *std::max_element(a.begin() + l, a.begin() + r + 1);
    ASSERT_EQ(table.query(l, r), expect) << "[" << l << "," << r << "]";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RmqParam,
    ::testing::Combine(::testing::Values<std::size_t>(1, 2, 3, 100, 1024,
                                                      30000),
                       ::testing::Values(1, 4)));

TEST(SparseTable, SingleElementAndFullRange) {
  Executor ex(2);
  const std::vector<vid> a = {5, 1, 9, 3};
  const MinTable<vid> table(ex, a.data(), a.size());
  EXPECT_EQ(table.query(0, 0), 5u);
  EXPECT_EQ(table.query(2, 2), 9u);
  EXPECT_EQ(table.query(0, 3), 1u);
  EXPECT_EQ(table.query(2, 3), 3u);
}

TEST(SparseTable, PowerOfTwoBoundaries) {
  Executor ex(2);
  std::vector<vid> a(64);
  for (std::size_t i = 0; i < 64; ++i) a[i] = static_cast<vid>(64 - i);
  const MinTable<vid> table(ex, a.data(), 64);
  EXPECT_EQ(table.query(0, 63), 1u);
  EXPECT_EQ(table.query(0, 31), 33u);
  EXPECT_EQ(table.query(32, 63), 1u);
  EXPECT_EQ(table.query(15, 16), 48u);
}

}  // namespace
}  // namespace parbcc
