#include "test_util.hpp"

#include <algorithm>

namespace parbcc::testutil {
namespace {

struct RefState {
  const EdgeList* g;
  std::vector<std::vector<std::pair<vid, eid>>> adj;  // (neighbour, edge)
  std::vector<vid> disc, low;
  std::vector<eid> edge_stack;
  std::vector<vid> edge_comp;
  vid timer = 0;
  vid next_label = 0;

  void dfs(vid v, eid parent_edge) {
    disc[v] = low[v] = timer++;
    for (const auto& [w, e] : adj[v]) {
      if (e == parent_edge || w == v) continue;
      if (disc[w] == kNoVertex) {
        edge_stack.push_back(e);
        dfs(w, e);
        low[v] = std::min(low[v], low[w]);
        if (low[w] >= disc[v]) {
          const vid label = next_label++;
          eid top;
          do {
            top = edge_stack.back();
            edge_stack.pop_back();
            edge_comp[top] = label;
          } while (top != e);
        }
      } else if (disc[w] < disc[v]) {
        edge_stack.push_back(e);
        low[v] = std::min(low[v], disc[w]);
      }
    }
  }
};

}  // namespace

RefBcc reference_bcc(const EdgeList& g) {
  RefState s;
  s.g = &g;
  s.adj.resize(g.n);
  for (eid e = 0; e < g.m(); ++e) {
    s.adj[g.edges[e].u].push_back({g.edges[e].v, e});
    s.adj[g.edges[e].v].push_back({g.edges[e].u, e});
  }
  s.disc.assign(g.n, kNoVertex);
  s.low.assign(g.n, 0);
  s.edge_comp.assign(g.m(), kNoVertex);
  for (vid r = 0; r < g.n; ++r) {
    if (s.disc[r] == kNoVertex) s.dfs(r, kNoEdge);
  }
  for (eid e = 0; e < g.m(); ++e) {
    if (s.edge_comp[e] == kNoVertex) s.edge_comp[e] = s.next_label++;
  }
  return {std::move(s.edge_comp), s.next_label};
}

vid component_count(const EdgeList& g) {
  UnionFind uf(g.n);
  vid count = g.n;
  for (const Edge& e : g.edges) {
    if (e.u != e.v && uf.unite(e.u, e.v)) --count;
  }
  return count;
}

std::vector<std::uint8_t> brute_force_articulation(const EdgeList& g) {
  const vid base = component_count(g);
  std::vector<std::uint8_t> out(g.n, 0);
  for (vid v = 0; v < g.n; ++v) {
    UnionFind uf(g.n);
    vid count = g.n - 1;  // v removed
    for (const Edge& e : g.edges) {
      if (e.u == v || e.v == v || e.u == e.v) continue;
      if (uf.unite(e.u, e.v)) --count;
    }
    out[v] = count >= base + 1 ? 1 : 0;
  }
  return out;
}

std::vector<eid> brute_force_bridges(const EdgeList& g) {
  const vid base = component_count(g);
  std::vector<eid> out;
  for (eid skip = 0; skip < g.m(); ++skip) {
    if (g.edges[skip].u == g.edges[skip].v) continue;
    UnionFind uf(g.n);
    vid count = g.n;
    for (eid e = 0; e < g.m(); ++e) {
      if (e == skip || g.edges[e].u == g.edges[e].v) continue;
      if (uf.unite(g.edges[e].u, g.edges[e].v)) --count;
    }
    if (count > base) out.push_back(skip);
  }
  return out;
}

bool same_partition(std::span<const vid> a, std::span<const vid> b) {
  if (a.size() != b.size()) return false;
  std::map<vid, vid> a2b, b2a;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const auto [ita, inserted_a] = a2b.try_emplace(a[i], b[i]);
    if (!inserted_a && ita->second != b[i]) return false;
    const auto [itb, inserted_b] = b2a.try_emplace(b[i], a[i]);
    if (!inserted_b && itb->second != a[i]) return false;
  }
  return true;
}

}  // namespace parbcc::testutil
