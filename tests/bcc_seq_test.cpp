#include <gtest/gtest.h>

#include <algorithm>

#include "core/hopcroft_tarjan.hpp"
#include "graph/csr.hpp"
#include "graph/generators.hpp"
#include "test_util.hpp"
#include "util/thread_pool.hpp"

namespace parbcc {
namespace {

BccResult run(const EdgeList& g) {
  Executor ex(1);
  const Csr csr = Csr::build(ex, g);
  return hopcroft_tarjan_bcc(g, csr);
}

TEST(HopcroftTarjan, TriangleIsOneComponent) {
  const BccResult r = run(gen::cycle(3));
  EXPECT_EQ(r.num_components, 1u);
  EXPECT_TRUE(r.bridges.empty());
  for (const auto a : r.is_articulation) EXPECT_EQ(a, 0);
}

TEST(HopcroftTarjan, PathIsAllBridges) {
  const EdgeList g = gen::path(6);
  const BccResult r = run(g);
  EXPECT_EQ(r.num_components, 5u);
  EXPECT_EQ(r.bridges.size(), 5u);
  // Interior vertices articulate; endpoints don't.
  EXPECT_EQ(r.is_articulation[0], 0);
  EXPECT_EQ(r.is_articulation[5], 0);
  for (vid v = 1; v < 5; ++v) EXPECT_EQ(r.is_articulation[v], 1);
}

TEST(HopcroftTarjan, StarCenterArticulates) {
  const BccResult r = run(gen::star(8));
  EXPECT_EQ(r.num_components, 7u);
  EXPECT_EQ(r.is_articulation[0], 1);
  for (vid v = 1; v < 8; ++v) EXPECT_EQ(r.is_articulation[v], 0);
}

TEST(HopcroftTarjan, CliqueChainCountsBlocksAndCuts) {
  const EdgeList g = gen::clique_chain(5, 4);
  const BccResult r = run(g);
  EXPECT_EQ(r.num_components, 5u);
  vid cuts = 0;
  for (const auto a : r.is_articulation) cuts += a;
  EXPECT_EQ(cuts, 4u);
  EXPECT_TRUE(r.bridges.empty());
}

TEST(HopcroftTarjan, CycleChainCountsBlocks) {
  const EdgeList g = gen::cycle_chain(7, 4);
  const BccResult r = run(g);
  EXPECT_EQ(r.num_components, 7u);
}

TEST(HopcroftTarjan, TorusIsBiconnected) {
  const BccResult r = run(gen::grid_torus(5, 6));
  EXPECT_EQ(r.num_components, 1u);
  for (const auto a : r.is_articulation) EXPECT_EQ(a, 0);
}

TEST(HopcroftTarjan, ParallelEdgesAreNeverBridges) {
  // Path 0-1-2 where edge (0,1) is doubled.
  EdgeList g(3, {{0, 1}, {1, 0}, {1, 2}});
  const BccResult r = run(g);
  EXPECT_EQ(r.num_components, 2u);
  EXPECT_EQ(r.edge_component[0], r.edge_component[1]);
  EXPECT_NE(r.edge_component[0], r.edge_component[2]);
  ASSERT_EQ(r.bridges.size(), 1u);
  EXPECT_EQ(r.bridges[0], 2u);
  EXPECT_EQ(r.is_articulation[1], 1);
}

TEST(HopcroftTarjan, DisconnectedGraphHandledNatively) {
  // Triangle {0,1,2} plus bridisolated pair {3,4} plus loner 5.
  EdgeList g(6, {{0, 1}, {1, 2}, {2, 0}, {3, 4}});
  const BccResult r = run(g);
  EXPECT_EQ(r.num_components, 2u);
  EXPECT_EQ(r.edge_component[0], r.edge_component[1]);
  EXPECT_EQ(r.edge_component[0], r.edge_component[2]);
  EXPECT_NE(r.edge_component[0], r.edge_component[3]);
}

TEST(HopcroftTarjan, DeepPathDoesNotOverflowStack) {
  const EdgeList g = gen::path(2000000);
  const Csr csr = [&] {
    Executor ex(1);
    return Csr::build(ex, g);
  }();
  const BccResult r = hopcroft_tarjan_bcc(g, csr, false);
  EXPECT_EQ(r.num_components, g.m());
}

class SeqOracleParam : public ::testing::TestWithParam<int> {};

TEST_P(SeqOracleParam, MatchesRecursiveReferenceOnRandomGraphs) {
  const int seed = GetParam();
  const EdgeList g = gen::random_gnm(120, 240, seed);
  const BccResult r = run(g);
  const testutil::RefBcc ref = testutil::reference_bcc(g);
  EXPECT_EQ(r.num_components, ref.count);
  EXPECT_TRUE(testutil::same_partition(r.edge_component, ref.edge_comp));
}

TEST_P(SeqOracleParam, CutInfoMatchesBruteForce) {
  const int seed = GetParam();
  const EdgeList g = gen::random_gnm(60, 110, seed * 7 + 1);
  const BccResult r = run(g);
  const auto art = testutil::brute_force_articulation(g);
  EXPECT_EQ(r.is_articulation, art);
  EXPECT_EQ(r.bridges, testutil::brute_force_bridges(g));
}

INSTANTIATE_TEST_SUITE_P(Sweep, SeqOracleParam,
                         ::testing::Range(0, 20));

TEST(HopcroftTarjan, LabelsAreContiguous) {
  const EdgeList g = gen::random_connected_gnm(500, 800, 3);
  const BccResult r = run(g);
  std::vector<bool> used(r.num_components, false);
  for (const vid c : r.edge_component) {
    ASSERT_LT(c, r.num_components);
    used[c] = true;
  }
  EXPECT_TRUE(std::all_of(used.begin(), used.end(), [](bool b) { return b; }));
}

}  // namespace
}  // namespace parbcc
