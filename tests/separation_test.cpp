#include <gtest/gtest.h>

#include "connectivity/union_find.hpp"
#include "core/bcc.hpp"
#include "core/separation.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace parbcc {
namespace {

/// Brute force: remove v, union the rest, test a-b connectivity.
bool brute_separates(const EdgeList& g, vid v, vid a, vid b) {
  UnionFind uf(g.n);
  for (const Edge& e : g.edges) {
    if (e.u == v || e.v == v || e.u == e.v) continue;
    uf.unite(e.u, e.v);
  }
  // Must be connected before removal for "separates" to mean anything;
  // the index itself returns false for already-disconnected pairs, and
  // so do we by checking with v present.
  UnionFind whole(g.n);
  for (const Edge& e : g.edges) {
    if (e.u != e.v) whole.unite(e.u, e.v);
  }
  if (!whole.same(a, b)) return false;
  return !uf.same(a, b);
}

SeparationIndex make_index(Executor& ex, const EdgeList& g) {
  BccOptions opt;
  const BccResult r = biconnected_components(ex, g, opt);
  return SeparationIndex(ex, g, r);
}

TEST(Separation, TwoTrianglesAndABridge) {
  Executor ex(2);
  //     0        4
  //    / \      / \.
  //   1---2 -- 3---5
  EdgeList g(6, {{0, 1}, {1, 2}, {2, 0}, {2, 3}, {3, 4}, {4, 5}, {5, 3}});
  const SeparationIndex index = make_index(ex, g);
  EXPECT_TRUE(index.separates(2, 0, 4));
  EXPECT_TRUE(index.separates(3, 0, 4));
  EXPECT_TRUE(index.separates(2, 1, 3));
  EXPECT_FALSE(index.separates(4, 3, 5));  // triangle survives
  EXPECT_FALSE(index.separates(0, 1, 2));
  EXPECT_FALSE(index.separates(3, 0, 2));  // same side of the cut
  EXPECT_TRUE(index.connected(0, 5));
}

TEST(Separation, DisconnectedPairsNeverSeparated) {
  Executor ex(2);
  EdgeList g(6, {{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}});
  const SeparationIndex index = make_index(ex, g);
  EXPECT_FALSE(index.connected(0, 3));
  EXPECT_FALSE(index.separates(1, 0, 3));
  EXPECT_TRUE(index.connected(3, 5));
}

TEST(Separation, IsolatedVertices) {
  Executor ex(1);
  EdgeList g(4, {{0, 1}});
  const SeparationIndex index = make_index(ex, g);
  EXPECT_FALSE(index.connected(0, 2));
  EXPECT_FALSE(index.separates(1, 0, 2));
  EXPECT_TRUE(index.connected(2, 2));
}

TEST(Separation, PathInteriorSeparatesEnds) {
  Executor ex(2);
  const EdgeList g = gen::path(10);
  const SeparationIndex index = make_index(ex, g);
  for (vid v = 1; v < 9; ++v) {
    EXPECT_TRUE(index.separates(v, 0, 9)) << v;
    EXPECT_TRUE(index.separates(v, v - 1, v + 1)) << v;
  }
  EXPECT_FALSE(index.separates(5, 0, 4));
  EXPECT_FALSE(index.separates(5, 6, 9));
}

TEST(Separation, RejectsDegenerateQueries) {
  Executor ex(1);
  const EdgeList g = gen::cycle(4);
  const SeparationIndex index = make_index(ex, g);
  EXPECT_THROW(index.separates(0, 0, 1), std::invalid_argument);
  EXPECT_THROW(index.separates(0, 1, 0), std::invalid_argument);
  EXPECT_THROW(index.separates(9, 0, 1), std::invalid_argument);
  EXPECT_FALSE(index.separates(2, 1, 1));
}

class SeparationParam : public ::testing::TestWithParam<int> {};

TEST_P(SeparationParam, MatchesBruteForceOnRandomGraphs) {
  const int seed = GetParam();
  Executor ex(3);
  // Sparse enough to have many cut vertices and some disconnection.
  const EdgeList g = gen::random_gnm(120, 140, seed);
  const SeparationIndex index = make_index(ex, g);
  Xoshiro256 rng(seed * 5 + 2);
  for (int q = 0; q < 400; ++q) {
    const vid v = static_cast<vid>(rng.below(g.n));
    const vid a = static_cast<vid>(rng.below(g.n));
    const vid b = static_cast<vid>(rng.below(g.n));
    if (v == a || v == b) continue;
    ASSERT_EQ(index.separates(v, a, b), brute_separates(g, v, a, b))
        << "v=" << v << " a=" << a << " b=" << b;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, SeparationParam, ::testing::Range(0, 10));

}  // namespace
}  // namespace parbcc
