#include <gtest/gtest.h>

#include <algorithm>

#include "connectivity/shiloach_vishkin.hpp"
#include "core/bcc.hpp"
#include "graph/csr.hpp"
#include "graph/generators.hpp"
#include "scan/compact.hpp"
#include "spanning/bfs_tree.hpp"
#include "spanning/sv_tree.hpp"
#include "test_util.hpp"
#include "util/thread_pool.hpp"

namespace parbcc {
namespace {

/// Lemma 1: endpoints of a spanning-forest edge of G - T have no
/// ancestral relationship when T is a BFS tree.
TEST(FilterLemmas, ForestEdgesHaveNoAncestralRelation) {
  Executor ex(4);
  for (const int seed : {1, 2, 3, 4}) {
    const EdgeList g = gen::random_connected_gnm(500, 2500, seed);
    const Csr csr = Csr::build(ex, g);
    const BfsTree bfs = bfs_tree(ex, csr, 0);

    std::vector<std::uint8_t> in_tree(g.m(), 0);
    for (vid v = 1; v < g.n; ++v) in_tree[bfs.parent_edge[v]] = 1;
    std::vector<eid> nontree;
    pack_indices(ex, g.m(),
                 [&](std::size_t e) { return in_tree[e] == 0; }, nontree);
    const SpanningForest forest =
        sv_spanning_forest(ex, g.n, g.edges, nontree);

    // Ancestry via a simple ancestor-walk (levels are short).
    const auto is_ancestor = [&](vid anc, vid v) {
      while (v != 0 && v != anc) v = bfs.parent[v];
      return v == anc;
    };
    for (const eid e : forest.tree_edges) {
      const vid u = g.edges[e].u;
      const vid v = g.edges[e].v;
      EXPECT_FALSE(is_ancestor(u, v)) << "edge " << e;
      EXPECT_FALSE(is_ancestor(v, u)) << "edge " << e;
    }
  }
}

/// Theorem 2 corollary: #BCC of a bridgeless graph == number of
/// nontrivial components of F (two BFS runs).  We use cacti, where
/// every block is a cycle, so there are no bridges.
TEST(FilterLemmas, TwoBfsCountsBlocksOnBridgelessGraphs) {
  Executor ex(2);
  for (const int seed : {10, 11, 12}) {
    const vid blocks = 40;
    const EdgeList g = gen::random_cactus(blocks, 7, seed);
    const Csr csr = Csr::build(ex, g);
    const BfsTree bfs = bfs_tree(ex, csr, 0);
    std::vector<std::uint8_t> in_tree(g.m(), 0);
    for (vid v = 1; v < g.n; ++v) in_tree[bfs.parent_edge[v]] = 1;
    std::vector<eid> nontree;
    pack_indices(ex, g.m(),
                 [&](std::size_t e) { return in_tree[e] == 0; }, nontree);
    const SpanningForest forest =
        sv_spanning_forest(ex, g.n, g.edges, nontree);
    // Nontrivial components of F = components that own a forest edge.
    std::vector<std::uint8_t> nontrivial(g.n, 0);
    for (const eid e : forest.tree_edges) nontrivial[forest.comp[g.edges[e].u]] = 1;
    vid count = 0;
    for (vid v = 0; v < g.n; ++v) count += nontrivial[v];
    EXPECT_EQ(count, blocks);
  }
}

/// The filtering bound from §4: at least max(m - 2(n-1), 0) edges are
/// excluded from the TV run.
TEST(FilterLemmas, FilterRemovesAtLeastTheGuaranteedCount) {
  Executor ex(4);
  const vid n = 400;
  for (const eid m : {eid{800}, eid{2000}, eid{6000}}) {
    const EdgeList g = gen::random_connected_gnm(n, m, 3);
    const Csr csr = Csr::build(ex, g);
    const BfsTree bfs = bfs_tree(ex, csr, 0);
    std::vector<std::uint8_t> in_tree(g.m(), 0);
    for (vid v = 1; v < g.n; ++v) in_tree[bfs.parent_edge[v]] = 1;
    std::vector<eid> nontree;
    pack_indices(ex, g.m(),
                 [&](std::size_t e) { return in_tree[e] == 0; }, nontree);
    const SpanningForest forest =
        sv_spanning_forest(ex, g.n, g.edges, nontree);
    const eid kept = (n - 1) + static_cast<eid>(forest.tree_edges.size());
    EXPECT_LE(kept, 2 * (n - 1));
    EXPECT_GE(m - kept, m >= 2 * (n - 1) ? m - 2 * (n - 1) : 0);
  }
}

/// End-to-end: TV-filter equals Tarjan on graphs dense enough that
/// most edges are filtered.
TEST(FilterEndToEnd, DenseGraphsMatchSequential) {
  Executor ex(4);
  for (const int seed : {5, 6}) {
    const EdgeList g = gen::dense_retain(120, 700, seed);
    BccOptions opt;
    opt.algorithm = BccAlgorithm::kTvFilter;
    const BccResult par = biconnected_components(ex, g, opt);
    const testutil::RefBcc ref = testutil::reference_bcc(g);
    ASSERT_EQ(par.num_components, ref.count);
    EXPECT_TRUE(testutil::same_partition(par.edge_component, ref.edge_comp));
  }
}

/// Pathological case the paper discusses: a chain (d = O(n)).  Slow
/// for BFS but must stay correct.
TEST(FilterEndToEnd, ChainGraphPathologicalDiameter) {
  Executor ex(4);
  const EdgeList g = gen::path(20000);
  BccOptions opt;
  opt.algorithm = BccAlgorithm::kTvFilter;
  const BccResult r = biconnected_components(ex, g, opt);
  EXPECT_EQ(r.num_components, g.m());
  EXPECT_EQ(r.bridges.size(), g.m());
}

/// Multigraph corner: a parallel copy of a tree edge must land in its
/// twin's component even though it is excluded from F.
TEST(FilterEndToEnd, ParallelEdgesHandled) {
  Executor ex(2);
  // Square plus doubled edge (0,1) plus doubled diagonal candidate.
  EdgeList g(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 1}, {1, 3}, {1, 3}});
  BccOptions opt;
  opt.algorithm = BccAlgorithm::kTvFilter;
  const BccResult par = biconnected_components(ex, g, opt);
  const testutil::RefBcc ref = testutil::reference_bcc(g);
  ASSERT_EQ(par.num_components, ref.count);
  EXPECT_TRUE(testutil::same_partition(par.edge_component, ref.edge_comp));
}

}  // namespace
}  // namespace parbcc
