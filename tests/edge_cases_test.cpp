#include <gtest/gtest.h>

#include "core/bcc.hpp"
#include "graph/generators.hpp"
#include "test_util.hpp"
#include "util/thread_pool.hpp"

namespace parbcc {
namespace {

const BccAlgorithm kAll[] = {BccAlgorithm::kSequential, BccAlgorithm::kTvSmp,
                             BccAlgorithm::kTvOpt, BccAlgorithm::kTvFilter,
                             BccAlgorithm::kFastBcc, BccAlgorithm::kAuto};

BccResult solve(const EdgeList& g, BccAlgorithm algorithm, int threads = 2) {
  Executor ex(threads);
  BccOptions opt;
  opt.algorithm = algorithm;
  return biconnected_components(ex, g, opt);
}

TEST(EdgeCases, EmptyGraph) {
  const EdgeList g(0, {});
  for (const auto algorithm : kAll) {
    const BccResult r = solve(g, algorithm);
    EXPECT_EQ(r.num_components, 0u);
    EXPECT_TRUE(r.edge_component.empty());
    EXPECT_TRUE(r.bridges.empty());
  }
}

TEST(EdgeCases, SingleVertexNoEdges) {
  const EdgeList g(1, {});
  for (const auto algorithm : kAll) {
    const BccResult r = solve(g, algorithm);
    EXPECT_EQ(r.num_components, 0u);
    EXPECT_EQ(r.is_articulation, std::vector<std::uint8_t>{0});
  }
}

TEST(EdgeCases, ManyIsolatedVertices) {
  const EdgeList g(50, {});
  for (const auto algorithm : kAll) {
    const BccResult r = solve(g, algorithm);
    EXPECT_EQ(r.num_components, 0u);
  }
}

TEST(EdgeCases, SingleEdge) {
  const EdgeList g(2, {{0, 1}});
  for (const auto algorithm : kAll) {
    const BccResult r = solve(g, algorithm);
    EXPECT_EQ(r.num_components, 1u);
    EXPECT_EQ(r.bridges.size(), 1u);
    EXPECT_EQ(r.is_articulation, (std::vector<std::uint8_t>{0, 0}));
  }
}

TEST(EdgeCases, TwoVerticesParallelEdges) {
  const EdgeList g(2, {{0, 1}, {1, 0}, {0, 1}});
  for (const auto algorithm : kAll) {
    const BccResult r = solve(g, algorithm);
    EXPECT_EQ(r.num_components, 1u) << to_string(algorithm);
    EXPECT_TRUE(r.bridges.empty()) << to_string(algorithm);
  }
}

TEST(EdgeCases, SelfLoopsGetOwnComponents) {
  // Triangle with two self-loops sprinkled in.
  const EdgeList g(3, {{0, 1}, {1, 1}, {1, 2}, {2, 0}, {0, 0}});
  for (const auto algorithm : kAll) {
    const BccResult r = solve(g, algorithm);
    EXPECT_EQ(r.num_components, 3u) << to_string(algorithm);
    // Triangle edges share one label; each loop is alone.
    EXPECT_EQ(r.edge_component[0], r.edge_component[2]);
    EXPECT_EQ(r.edge_component[0], r.edge_component[3]);
    EXPECT_NE(r.edge_component[1], r.edge_component[0]);
    EXPECT_NE(r.edge_component[4], r.edge_component[0]);
    EXPECT_NE(r.edge_component[1], r.edge_component[4]);
    // Loops are not bridges and do not articulate.
    EXPECT_TRUE(r.bridges.empty()) << to_string(algorithm);
    EXPECT_EQ(r.is_articulation, (std::vector<std::uint8_t>{0, 0, 0}));
  }
}

TEST(EdgeCases, DisconnectedMixtureAllAlgorithmsAgree) {
  // Triangle, path, isolated vertices, 4-cycle.
  EdgeList g(13, {{0, 1},
                  {1, 2},
                  {2, 0},
                  {3, 4},
                  {4, 5},
                  {7, 8},
                  {8, 9},
                  {9, 10},
                  {10, 7}});
  const testutil::RefBcc ref = testutil::reference_bcc(g);
  for (const auto algorithm : kAll) {
    const BccResult r = solve(g, algorithm);
    ASSERT_EQ(r.num_components, ref.count) << to_string(algorithm);
    EXPECT_TRUE(testutil::same_partition(r.edge_component, ref.edge_comp))
        << to_string(algorithm);
    EXPECT_EQ(r.is_articulation, testutil::brute_force_articulation(g))
        << to_string(algorithm);
  }
}

TEST(EdgeCases, ManySmallComponents) {
  // 30 disjoint triangles.
  EdgeList g(90, {});
  for (vid b = 0; b < 30; ++b) {
    const vid base = 3 * b;
    g.add_edge(base, base + 1);
    g.add_edge(base + 1, base + 2);
    g.add_edge(base + 2, base);
  }
  for (const auto algorithm : kAll) {
    const BccResult r = solve(g, algorithm);
    EXPECT_EQ(r.num_components, 30u) << to_string(algorithm);
  }
}

TEST(EdgeCases, AutoSkipsProbeOnDegenerateInputs) {
  // kAuto's probe (count_unique_edges) allocates n*p stamp scratch and
  // scans the adjacency; degenerate inputs must short-circuit straight
  // to the sequential solver without opening a dispatch span at all.
  const EdgeList degenerates[] = {
      EdgeList(0, {}),                          // empty
      EdgeList(40, {}),                         // vertices, no edges
      EdgeList(3, {{0, 0}, {1, 1}, {2, 2}}),    // all self-loops
  };
  for (const EdgeList& g : degenerates) {
    const BccResult r = solve(g, BccAlgorithm::kAuto);
    EXPECT_EQ(r.trace.find_path("dispatch"), nullptr) << "n=" << g.n;
    EXPECT_EQ(r.trace.counter_total("dispatch_unique_edges"), 0.0);
    if (g.n > 0) {  // n == 0 returns before any span opens
      EXPECT_NE(r.trace.find_path("sequential"), nullptr) << "n=" << g.n;
    }
    EXPECT_EQ(r.num_components, g.n == 3 ? 3u : 0u);
  }
}

TEST(EdgeCases, InvalidInputsThrow) {
  Executor ex(1);
  EdgeList bad(2, {{0, 5}});
  EXPECT_THROW(biconnected_components(ex, bad, {}), std::invalid_argument);
  EdgeList ok(3, {{0, 1}});
  BccOptions opt;
  opt.root = 9;
  EXPECT_THROW(biconnected_components(ex, ok, opt), std::invalid_argument);
}

TEST(EdgeCases, RootInsideResultIsRespected) {
  const EdgeList g = gen::cycle(8);
  Executor ex(2);
  BccOptions opt;
  opt.algorithm = BccAlgorithm::kTvOpt;
  opt.root = 5;
  const BccResult r = biconnected_components(ex, g, opt);
  EXPECT_EQ(r.num_components, 1u);
}

TEST(EdgeCases, HighThreadOversubscription) {
  // More threads than vertices in some components.
  const EdgeList g = gen::random_gnm(64, 80, 9);
  const testutil::RefBcc ref = testutil::reference_bcc(g);
  for (const auto algorithm :
       {BccAlgorithm::kTvSmp, BccAlgorithm::kTvOpt, BccAlgorithm::kTvFilter,
        BccAlgorithm::kFastBcc}) {
    const BccResult r = solve(g, algorithm, /*threads=*/16);
    ASSERT_EQ(r.num_components, ref.count) << to_string(algorithm);
    EXPECT_TRUE(testutil::same_partition(r.edge_component, ref.edge_comp));
  }
}

TEST(EdgeCases, ThreadsOptionConvenienceOverload) {
  const EdgeList g = gen::cycle(64);
  BccOptions opt;
  opt.algorithm = BccAlgorithm::kTvOpt;
  opt.threads = 4;
  const BccResult r = biconnected_components(g, opt);
  EXPECT_EQ(r.num_components, 1u);
}

}  // namespace
}  // namespace parbcc
