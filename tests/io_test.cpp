#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>

#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "test_util.hpp"

namespace parbcc {
namespace {

/// Edge lists compare exactly; DIMACS preserves order too.  METIS
/// stores an adjacency structure, so round-tripping through it may
/// reorder edges and flip endpoint order — compare as canonical sets.
std::multiset<std::pair<vid, vid>> edge_set(const EdgeList& g) {
  std::multiset<std::pair<vid, vid>> s;
  for (const Edge& e : g.edges) {
    s.insert({std::min(e.u, e.v), std::max(e.u, e.v)});
  }
  return s;
}

class IoRoundTrip : public ::testing::TestWithParam<int> {
 protected:
  EdgeList input() const {
    switch (GetParam()) {
      case 0:
        return EdgeList(0, {});
      case 1:
        return EdgeList(5, {});  // isolated vertices only
      case 2:
        return gen::clique_chain(3, 4);
      case 3:
        return gen::random_gnm(60, 150, 42);  // parallel edges possible
      default:
        return gen::star(8);
    }
  }
};

TEST_P(IoRoundTrip, EdgeList) {
  const EdgeList g = input();
  std::stringstream ss;
  io::write_edge_list(ss, g);
  const EdgeList back = io::read_edge_list(ss);
  EXPECT_EQ(back.n, g.n);
  ASSERT_EQ(back.edges.size(), g.edges.size());
  for (std::size_t i = 0; i < g.edges.size(); ++i) {
    EXPECT_EQ(back.edges[i].u, g.edges[i].u);
    EXPECT_EQ(back.edges[i].v, g.edges[i].v);
  }
}

TEST_P(IoRoundTrip, Dimacs) {
  const EdgeList g = input();
  std::stringstream ss;
  io::write_dimacs(ss, g);
  const EdgeList back = io::read_dimacs(ss);
  EXPECT_EQ(back.n, g.n);
  EXPECT_EQ(edge_set(back), edge_set(g));
}

TEST_P(IoRoundTrip, Metis) {
  const EdgeList g = input();
  std::stringstream ss;
  io::write_metis(ss, g);
  const EdgeList back = io::read_metis(ss);
  EXPECT_EQ(back.n, g.n);
  EXPECT_EQ(edge_set(back), edge_set(g));
}

INSTANTIATE_TEST_SUITE_P(Shapes, IoRoundTrip, ::testing::Range(0, 5));

EdgeList parse_edge_list(const std::string& text) {
  std::istringstream is(text);
  return io::read_edge_list(is);
}

TEST(IoEdgeList, AcceptsCommentsAndBlankLines) {
  const EdgeList g =
      parse_edge_list("# header comment\n\n3 2\n# body\n0 1\n\n1 2\n");
  EXPECT_EQ(g.n, 3u);
  ASSERT_EQ(g.edges.size(), 2u);
  EXPECT_EQ(g.edges[1].u, 1u);
  EXPECT_EQ(g.edges[1].v, 2u);
}

TEST(IoEdgeList, RejectsMalformedInput) {
  EXPECT_THROW(parse_edge_list(""), std::runtime_error);
  EXPECT_THROW(parse_edge_list("# only comments\n"), std::runtime_error);
  EXPECT_THROW(parse_edge_list("nonsense\n"), std::runtime_error);
  EXPECT_THROW(parse_edge_list("3\n"), std::runtime_error);        // no m
  EXPECT_THROW(parse_edge_list("3 2\n0 1\n"), std::runtime_error); // truncated
  EXPECT_THROW(parse_edge_list("3 1\n0\n"), std::runtime_error);   // bad edge
  EXPECT_THROW(parse_edge_list("3 1\nx y\n"), std::runtime_error);
}

TEST(IoEdgeList, RejectsOutOfRangeEndpoints) {
  EXPECT_THROW(parse_edge_list("3 1\n0 3\n"), std::runtime_error);
  EXPECT_THROW(parse_edge_list("3 1\n7 1\n"), std::runtime_error);
  // Endpoints are checked against the declared n even when they would
  // fit in 32 bits.
  EXPECT_THROW(parse_edge_list("2 1\n0 4294967295\n"), std::runtime_error);
}

TEST(IoEdgeList, RejectsHeaderExceedingIdSpace) {
  // A vertex count at or past kNoVertex would alias the sentinel after
  // the narrowing cast; the reader must reject it, not truncate.
  EXPECT_THROW(parse_edge_list("5000000000 1\n0 1\n"), std::runtime_error);
  EXPECT_THROW(parse_edge_list("4294967295 0\n"), std::runtime_error);
  try {
    parse_edge_list("18446744073709551615 0\n");
    FAIL() << "expected rejection";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("vertex count"), std::string::npos);
  }
  // Largest representable id is fine.
  const EdgeList g = parse_edge_list("4294967294 0\n");
  EXPECT_EQ(g.n, kNoVertex - 1);
}

TEST(IoEdgeList, HostileEdgeCountDoesNotPreallocate) {
  // An edge count near the id limit passes validation but must not
  // reserve() gigabytes up front: the reader caps the speculative
  // reserve and then fails on the missing body, quickly and cheaply.
  EXPECT_THROW(parse_edge_list("10 4294967294\n0 1\n"), std::runtime_error);
  EXPECT_THROW(parse_edge_list("10 4294967295\n"), std::runtime_error);
}

EdgeList parse_dimacs(const std::string& text) {
  std::istringstream is(text);
  return io::read_dimacs(is);
}

TEST(IoDimacs, RejectsMalformedInput) {
  EXPECT_THROW(parse_dimacs(""), std::runtime_error);
  EXPECT_THROW(parse_dimacs("c only a comment\n"), std::runtime_error);
  EXPECT_THROW(parse_dimacs("p edge 3\n"), std::runtime_error);
  EXPECT_THROW(parse_dimacs("p graph 3 1\ne 1 2\n"), std::runtime_error);
  EXPECT_THROW(parse_dimacs("e 1 2\np edge 3 1\n"), std::runtime_error);
  EXPECT_THROW(parse_dimacs("p edge 3 1\np edge 3 1\ne 1 2\n"),
               std::runtime_error);
  EXPECT_THROW(parse_dimacs("p edge 3 1\nz 1 2\n"), std::runtime_error);
  EXPECT_THROW(parse_dimacs("p edge 3 2\ne 1 2\n"), std::runtime_error);
  EXPECT_THROW(parse_dimacs("p edge 3 1\ne 0 2\n"), std::runtime_error);
  EXPECT_THROW(parse_dimacs("p edge 3 1\ne 1 4\n"), std::runtime_error);
  EXPECT_THROW(parse_dimacs("p edge 5000000000 0\n"), std::runtime_error);
}

EdgeList parse_metis(const std::string& text) {
  std::istringstream is(text);
  return io::read_metis(is);
}

TEST(IoMetis, RejectsMalformedInput) {
  EXPECT_THROW(parse_metis(""), std::runtime_error);
  EXPECT_THROW(parse_metis("3\n"), std::runtime_error);
  EXPECT_THROW(parse_metis("3 1 1\n2 3\n1\n1\n"), std::runtime_error);
  EXPECT_THROW(parse_metis("3 1\n2\n"), std::runtime_error);    // truncated
  EXPECT_THROW(parse_metis("3 1\n4\n\n\n"), std::runtime_error);
  EXPECT_THROW(parse_metis("3 1\n0\n\n\n"), std::runtime_error);
  EXPECT_THROW(parse_metis("3 2\n2\n1\n\n"), std::runtime_error); // count
  EXPECT_THROW(parse_metis("5000000000 0\n"), std::runtime_error);
}

TEST(IoMetis, RejectsSelfLoopsOnWrite) {
  const EdgeList g(2, {{1, 1}});
  std::stringstream ss;
  EXPECT_THROW(io::write_metis(ss, g), std::runtime_error);
}

}  // namespace
}  // namespace parbcc
