#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "core/bcc.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "graph/io_binary.hpp"
#include "graph/text_parse.hpp"
#include "test_util.hpp"

namespace parbcc {
namespace {

/// Edge lists compare exactly; DIMACS preserves order too.  METIS
/// stores an adjacency structure, so round-tripping through it may
/// reorder edges and flip endpoint order — compare as canonical sets.
std::multiset<std::pair<vid, vid>> edge_set(const EdgeList& g) {
  std::multiset<std::pair<vid, vid>> s;
  for (const Edge& e : g.edges) {
    s.insert({std::min(e.u, e.v), std::max(e.u, e.v)});
  }
  return s;
}

class IoRoundTrip : public ::testing::TestWithParam<int> {
 protected:
  EdgeList input() const {
    switch (GetParam()) {
      case 0:
        return EdgeList(0, {});
      case 1:
        return EdgeList(5, {});  // isolated vertices only
      case 2:
        return gen::clique_chain(3, 4);
      case 3:
        return gen::random_gnm(60, 150, 42);  // parallel edges possible
      default:
        return gen::star(8);
    }
  }
};

TEST_P(IoRoundTrip, EdgeList) {
  const EdgeList g = input();
  std::stringstream ss;
  io::write_edge_list(ss, g);
  const EdgeList back = io::read_edge_list(ss);
  EXPECT_EQ(back.n, g.n);
  ASSERT_EQ(back.edges.size(), g.edges.size());
  for (std::size_t i = 0; i < g.edges.size(); ++i) {
    EXPECT_EQ(back.edges[i].u, g.edges[i].u);
    EXPECT_EQ(back.edges[i].v, g.edges[i].v);
  }
}

TEST_P(IoRoundTrip, Dimacs) {
  const EdgeList g = input();
  std::stringstream ss;
  io::write_dimacs(ss, g);
  const EdgeList back = io::read_dimacs(ss);
  EXPECT_EQ(back.n, g.n);
  EXPECT_EQ(edge_set(back), edge_set(g));
}

TEST_P(IoRoundTrip, Metis) {
  const EdgeList g = input();
  std::stringstream ss;
  io::write_metis(ss, g);
  const EdgeList back = io::read_metis(ss);
  EXPECT_EQ(back.n, g.n);
  EXPECT_EQ(edge_set(back), edge_set(g));
}

INSTANTIATE_TEST_SUITE_P(Shapes, IoRoundTrip, ::testing::Range(0, 5));

EdgeList parse_edge_list(const std::string& text) {
  std::istringstream is(text);
  return io::read_edge_list(is);
}

TEST(IoEdgeList, AcceptsCommentsAndBlankLines) {
  const EdgeList g =
      parse_edge_list("# header comment\n\n3 2\n# body\n0 1\n\n1 2\n");
  EXPECT_EQ(g.n, 3u);
  ASSERT_EQ(g.edges.size(), 2u);
  EXPECT_EQ(g.edges[1].u, 1u);
  EXPECT_EQ(g.edges[1].v, 2u);
}

TEST(IoEdgeList, RejectsMalformedInput) {
  EXPECT_THROW(parse_edge_list(""), std::runtime_error);
  EXPECT_THROW(parse_edge_list("# only comments\n"), std::runtime_error);
  EXPECT_THROW(parse_edge_list("nonsense\n"), std::runtime_error);
  EXPECT_THROW(parse_edge_list("3\n"), std::runtime_error);        // no m
  EXPECT_THROW(parse_edge_list("3 2\n0 1\n"), std::runtime_error); // truncated
  EXPECT_THROW(parse_edge_list("3 1\n0\n"), std::runtime_error);   // bad edge
  EXPECT_THROW(parse_edge_list("3 1\nx y\n"), std::runtime_error);
}

TEST(IoEdgeList, RejectsOutOfRangeEndpoints) {
  EXPECT_THROW(parse_edge_list("3 1\n0 3\n"), std::runtime_error);
  EXPECT_THROW(parse_edge_list("3 1\n7 1\n"), std::runtime_error);
  // Endpoints are checked against the declared n even when they would
  // fit in 32 bits.
  EXPECT_THROW(parse_edge_list("2 1\n0 4294967295\n"), std::runtime_error);
}

TEST(IoEdgeList, RejectsHeaderExceedingIdSpace) {
  // A vertex count at or past kNoVertex would alias the sentinel after
  // the narrowing cast; the reader must reject it, not truncate.
  EXPECT_THROW(parse_edge_list("5000000000 1\n0 1\n"), std::runtime_error);
  EXPECT_THROW(parse_edge_list("4294967295 0\n"), std::runtime_error);
  try {
    parse_edge_list("18446744073709551615 0\n");
    FAIL() << "expected rejection";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("vertex count"), std::string::npos);
  }
  // Largest representable id is fine.
  const EdgeList g = parse_edge_list("4294967294 0\n");
  EXPECT_EQ(g.n, kNoVertex - 1);
}

TEST(IoEdgeList, HostileEdgeCountDoesNotPreallocate) {
  // An edge count near the id limit passes validation but must not
  // reserve() gigabytes up front: the reader caps the speculative
  // reserve and then fails on the missing body, quickly and cheaply.
  EXPECT_THROW(parse_edge_list("10 4294967294\n0 1\n"), std::runtime_error);
  EXPECT_THROW(parse_edge_list("10 4294967295\n"), std::runtime_error);
}

EdgeList parse_dimacs(const std::string& text) {
  std::istringstream is(text);
  return io::read_dimacs(is);
}

TEST(IoDimacs, RejectsMalformedInput) {
  EXPECT_THROW(parse_dimacs(""), std::runtime_error);
  EXPECT_THROW(parse_dimacs("c only a comment\n"), std::runtime_error);
  EXPECT_THROW(parse_dimacs("p edge 3\n"), std::runtime_error);
  EXPECT_THROW(parse_dimacs("p graph 3 1\ne 1 2\n"), std::runtime_error);
  EXPECT_THROW(parse_dimacs("e 1 2\np edge 3 1\n"), std::runtime_error);
  EXPECT_THROW(parse_dimacs("p edge 3 1\np edge 3 1\ne 1 2\n"),
               std::runtime_error);
  EXPECT_THROW(parse_dimacs("p edge 3 1\nz 1 2\n"), std::runtime_error);
  EXPECT_THROW(parse_dimacs("p edge 3 2\ne 1 2\n"), std::runtime_error);
  EXPECT_THROW(parse_dimacs("p edge 3 1\ne 0 2\n"), std::runtime_error);
  EXPECT_THROW(parse_dimacs("p edge 3 1\ne 1 4\n"), std::runtime_error);
  EXPECT_THROW(parse_dimacs("p edge 5000000000 0\n"), std::runtime_error);
}

EdgeList parse_metis(const std::string& text) {
  std::istringstream is(text);
  return io::read_metis(is);
}

TEST(IoMetis, RejectsMalformedInput) {
  EXPECT_THROW(parse_metis(""), std::runtime_error);
  EXPECT_THROW(parse_metis("3\n"), std::runtime_error);
  EXPECT_THROW(parse_metis("3 1 1\n2 3\n1\n1\n"), std::runtime_error);
  EXPECT_THROW(parse_metis("3 1\n2\n"), std::runtime_error);    // truncated
  EXPECT_THROW(parse_metis("3 1\n4\n\n\n"), std::runtime_error);
  EXPECT_THROW(parse_metis("3 1\n0\n\n\n"), std::runtime_error);
  EXPECT_THROW(parse_metis("3 2\n2\n1\n\n"), std::runtime_error); // count
  EXPECT_THROW(parse_metis("5000000000 0\n"), std::runtime_error);
}

TEST(IoMetis, RejectsSelfLoopsOnWrite) {
  const EdgeList g(2, {{1, 1}});
  std::stringstream ss;
  EXPECT_THROW(io::write_metis(ss, g), std::runtime_error);
}

// ---------------------------------------------------------------------------
// Parallel text parsers: must agree with the serial readers line for
// line, and reject the same malformed inputs — from any thread count.

TEST(ParallelParse, MatchesSerialEdgeListReader) {
  const EdgeList g = gen::random_gnm(300, 2500, 19);
  std::stringstream ss;
  io::write_edge_list(ss, g);
  const std::string text = ss.str();
  for (const int p : {1, 4, 12}) {
    Executor ex(p);
    const EdgeList parsed = io::parse_edge_list(ex, text);
    ASSERT_EQ(parsed.n, g.n);
    ASSERT_EQ(parsed.m(), g.m());
    for (eid e = 0; e < g.m(); ++e) {
      ASSERT_EQ(parsed.edges[e].u, g.edges[e].u) << e;
      ASSERT_EQ(parsed.edges[e].v, g.edges[e].v) << e;
    }
  }
}

TEST(ParallelParse, MatchesSerialDimacsReader) {
  const EdgeList g = gen::random_gnm(200, 1200, 23);
  std::stringstream ss;
  io::write_dimacs(ss, g);
  Executor ex(8);
  const EdgeList parsed = io::parse_dimacs(ex, ss.str());
  EXPECT_EQ(parsed.n, g.n);
  EXPECT_EQ(edge_set(parsed), edge_set(g));
}

TEST(ParallelParse, SnapDensifiesDedupesAndDropsLoops) {
  Executor ex(4);
  // Sparse 64-bit ids, duplicate arcs both ways, a self-loop, comments.
  const EdgeList g = io::parse_snap(ex,
                                    "# comment\n"
                                    "1000000000000 7\n"
                                    "7 1000000000000\n"
                                    "42 42\n"
                                    "7 42\n");
  EXPECT_EQ(g.n, 3u);  // ids {7, 42, 10^12} densified
  ASSERT_EQ(g.m(), 2u);  // one direction kept, loop dropped
  EXPECT_EQ(edge_set(g), (std::multiset<std::pair<vid, vid>>{{0, 1}, {0, 2}}));
}

TEST(ParallelParse, RejectsMalformedInput) {
  Executor ex(4);
  EXPECT_THROW(io::parse_edge_list(ex, ""), std::runtime_error);
  EXPECT_THROW(io::parse_edge_list(ex, "3 2\n0 1\n"), std::runtime_error);
  EXPECT_THROW(io::parse_edge_list(ex, "3 1\n0 3\n"), std::runtime_error);
  EXPECT_THROW(io::parse_edge_list(ex, "3 1\n0 1 junk\n"),
               std::runtime_error);
  EXPECT_THROW(io::parse_edge_list(ex, "5000000000 1\n0 1\n"),
               std::runtime_error);
  EXPECT_THROW(io::parse_dimacs(ex, "p edge 3 1\ne 0 2\n"),
               std::runtime_error);
  EXPECT_THROW(io::parse_dimacs(ex, "p edge 3 2\ne 1 2\n"),
               std::runtime_error);
  EXPECT_THROW(io::parse_snap(ex, "1 2\nnonsense\n"), std::runtime_error);
  EXPECT_THROW(io::parse_snap(ex, "1\n"), std::runtime_error);
}

TEST(ParallelParse, ManyChunksPreserveOrder) {
  // Enough lines that every thread gets several chunks; edge ids must
  // still come out in file order (the concat is order-preserving).
  const vid n = 20000;
  std::string text = std::to_string(n) + " " + std::to_string(n - 1) + "\n";
  for (vid v = 1; v < n; ++v) {
    text += std::to_string(v - 1) + " " + std::to_string(v) + "\n";
  }
  Executor ex(12);
  const EdgeList parsed = io::parse_edge_list(ex, text);
  ASSERT_EQ(parsed.m(), n - 1);
  for (eid e = 0; e < parsed.m(); ++e) {
    ASSERT_EQ(parsed.edges[e].u, e);
    ASSERT_EQ(parsed.edges[e].v, e + 1);
  }
}

// ---------------------------------------------------------------------------
// .pbg binary format: round-trip, loader hardening, malformed-file fuzz.

std::string pbg_path(const std::string& name) {
  return ::testing::TempDir() + name;
}

std::vector<std::uint8_t> slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << path;
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in), {});
}

void spew(const std::string& path, const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good());
}

/// Re-seal the header after a deliberate header patch, so the test
/// reaches the targeted validation instead of the checksum gate.
void reseal_header(std::vector<std::uint8_t>& bytes) {
  constexpr std::size_t kOffHeaderChecksum = 0xc8;
  const std::uint64_t sum = io::pbg_checksum(bytes.data(), kOffHeaderChecksum);
  std::memcpy(bytes.data() + kOffHeaderChecksum, &sum, sizeof(sum));
}

void expect_rejects(const std::vector<std::uint8_t>& bytes,
                    const std::string& what, bool verify = true) {
  const std::string path = pbg_path("malformed.pbg");
  spew(path, bytes);
  io::MapOptions opt;
  opt.verify = verify;
  try {
    io::MappedGraph::map(path, opt);
    FAIL() << "expected rejection: " << what;
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find(what), std::string::npos)
        << "got: " << e.what();
  }
}

class PbgRoundTrip : public ::testing::TestWithParam<int> {
 protected:
  EdgeList input() const {
    switch (GetParam()) {
      case 0:
        return EdgeList(0, {});
      case 1:
        return EdgeList(5, {});  // isolated vertices only
      case 2:
        return gen::clique_chain(3, 4);
      case 3: {
        // Parallel edges allowed; strip self-loops (writer rejects).
        return remove_self_loops(gen::random_gnm(60, 150, 42));
      }
      default:
        return gen::star(8);
    }
  }
};

TEST_P(PbgRoundTrip, MappedViewsMatchSource) {
  const EdgeList g = input();
  Executor ex(4);
  const std::string path = pbg_path("roundtrip.pbg");
  io::write_pbg(path, ex, g);

  io::MapOptions opt;
  opt.verify = true;
  const io::MappedGraph mapped = io::MappedGraph::map(path, opt);
  ASSERT_EQ(mapped.graph().n, g.n);
  ASSERT_EQ(mapped.graph().m(), g.m());
  // The edges section is the source edge list verbatim.
  for (eid e = 0; e < g.m(); ++e) {
    EXPECT_EQ(mapped.graph().edges[e].u, g.edges[e].u);
    EXPECT_EQ(mapped.graph().edges[e].v, g.edges[e].v);
  }
  // The mapped CSR is an adjacency of the same graph (canonical row
  // order, so compare rows as sorted sets against a fresh build).
  const Csr built = Csr::build(ex, g);
  // (The n = 0 graph cannot distinguish borrowed from owned-empty.)
  if (g.n > 0) ASSERT_TRUE(mapped.csr().is_borrowed());
  for (vid v = 0; v < g.n; ++v) {
    ASSERT_EQ(mapped.csr().degree(v), built.degree(v));
    const auto ms = mapped.csr().neighbors(v);
    std::vector<vid> mine(ms.begin(), ms.end());
    const auto bs = built.neighbors(v);
    std::vector<vid> ref(bs.begin(), bs.end());
    ASSERT_TRUE(std::is_sorted(mine.begin(), mine.end()));
    std::sort(ref.begin(), ref.end());
    ASSERT_EQ(mine, ref) << "v=" << v;
    // Each arc's edge id names an edge incident to v.
    const auto eids = mapped.csr().incident_edges(v);
    for (std::size_t i = 0; i < eids.size(); ++i) {
      const Edge& e = g.edges[eids[i]];
      EXPECT_TRUE(e.u == v || e.v == v);
    }
  }
  ASSERT_TRUE(mapped.has_compressed());
  const CompressedCsr cc = mapped.compressed();
  for (vid v = 0; v < g.n; ++v) {
    std::vector<vid> via_decode;
    cc.decode_row(v, [&](vid w, eid) {
      via_decode.push_back(w);
      return false;
    });
    const auto ms = mapped.csr().neighbors(v);
    ASSERT_EQ(via_decode, std::vector<vid>(ms.begin(), ms.end())) << v;
  }
}

TEST_P(PbgRoundTrip, NoCompressVariantMapsWithoutSections) {
  const EdgeList g = input();
  Executor ex(2);
  const std::string path = pbg_path("roundtrip_nc.pbg");
  io::PbgWriteOptions wopt;
  wopt.include_compressed = false;
  io::write_pbg(path, ex, g, wopt);
  io::MapOptions opt;
  opt.verify = true;
  const io::MappedGraph mapped = io::MappedGraph::map(path, opt);
  EXPECT_EQ(mapped.graph().n, g.n);
  EXPECT_EQ(mapped.graph().m(), g.m());
  EXPECT_FALSE(mapped.has_compressed());
}

INSTANTIATE_TEST_SUITE_P(Shapes, PbgRoundTrip, ::testing::Range(0, 5));

TEST(Pbg, WriterRejectsSelfLoops) {
  Executor ex(1);
  const EdgeList g(3, {{0, 1}, {2, 2}});
  EXPECT_THROW(io::write_pbg(pbg_path("loops.pbg"), ex, g),
               std::runtime_error);
}

TEST(Pbg, PrefaultedParallelMapSolvesIdentically) {
  const EdgeList g = gen::random_connected_gnm(400, 3000, 8);
  Executor ex(4);
  const std::string path = pbg_path("prefault.pbg");
  io::write_pbg(path, ex, g);

  Trace tr;
  io::MapOptions opt;
  opt.prefault = true;
  opt.executor = &ex;
  opt.trace = &tr;
  BccContext ctx(4);
  const PreparedGraph& pg = io::map_prepared_graph(ctx, path, opt);
  ASSERT_TRUE(pg.csr().is_borrowed());
  const TraceReport rep = tr.report();
  EXPECT_NE(rep.find_path("io_map"), nullptr);
  EXPECT_NE(rep.find_path("io_map/io_prefault"), nullptr);

  const BccResult from_map = biconnected_components(ctx, *ctx.mapped_graph());
  const BccResult in_memory = biconnected_components(g);
  EXPECT_EQ(from_map.num_components, in_memory.num_components);
  EXPECT_TRUE(testutil::same_partition(from_map.edge_component,
                                       in_memory.edge_component));
  // Second solve on the adopted graph is a cache hit: conversion 0.
  const BccResult again = biconnected_components(ctx, *ctx.mapped_graph());
  EXPECT_EQ(again.times.conversion, 0.0);
}

TEST(Pbg, MappedSolveNeverMaterializesEdges) {
  // The zero-copy contract, pinned via EdgeStore's process-wide
  // materialization counter: solving a mapped graph must never reach a
  // non-const EdgeStore accessor (each such touch is a silent O(m)
  // heap copy of the mapped edges section).
  const EdgeList g = gen::random_connected_gnm(300, 1200, 9);
  Executor ex(4);
  const std::string path = pbg_path("zerocopy.pbg");
  io::write_pbg(path, ex, g);

  BccContext ctx(4);
  io::map_prepared_graph(ctx, path, {});
  ASSERT_TRUE(ctx.mapped_graph()->edges.is_borrowed());
  const std::size_t before = EdgeStore::materialize_count();
  for (const BccAlgorithm alg :
       {BccAlgorithm::kTvFilter, BccAlgorithm::kFastBcc}) {
    BccOptions opt;
    opt.algorithm = alg;
    const BccResult r = biconnected_components(ctx, *ctx.mapped_graph(), opt);
    EXPECT_GT(r.num_components, 0u);
  }
  EXPECT_EQ(EdgeStore::materialize_count(), before);
  EXPECT_TRUE(ctx.mapped_graph()->edges.is_borrowed());
}

class PbgMalformed : public ::testing::Test {
 protected:
  void SetUp() override {
    Executor ex(2);
    const EdgeList g = gen::clique_chain(4, 5);
    io::write_pbg(valid_path_, ex, g);
    valid_ = slurp(valid_path_);
    ASSERT_GE(valid_.size(), 256u);
  }

  std::string valid_path_ = pbg_path("valid.pbg");
  std::vector<std::uint8_t> valid_;
};

TEST_F(PbgMalformed, TruncatedBelowHeader) {
  expect_rejects({}, "truncated");
  expect_rejects(std::vector<std::uint8_t>(100, 0), "truncated");
  expect_rejects({valid_.begin(), valid_.begin() + 255}, "truncated");
}

TEST_F(PbgMalformed, BadMagicAndVersion) {
  auto bytes = valid_;
  bytes[0] ^= 0xff;
  expect_rejects(bytes, "bad magic");

  bytes = valid_;
  bytes[0x08] = 99;  // version
  reseal_header(bytes);
  expect_rejects(bytes, "unsupported version");

  bytes = valid_;
  bytes[0x0c] |= 0x80;  // unknown flag bit
  reseal_header(bytes);
  expect_rejects(bytes, "unknown flag");
}

TEST_F(PbgMalformed, HeaderChecksumGuardsEveryHeaderField) {
  auto bytes = valid_;
  bytes[0x10] ^= 0x01;  // n, without resealing
  expect_rejects(bytes, "header checksum");
}

TEST_F(PbgMalformed, HostileCounts) {
  auto bytes = valid_;
  const std::uint32_t n = 0xffffffffu;  // aliases kNoVertex
  std::memcpy(bytes.data() + 0x10, &n, sizeof(n));
  reseal_header(bytes);
  expect_rejects(bytes, "vertex count");

  bytes = valid_;
  const std::uint64_t m = 0x80000000ull;  // 2m overflows eid space
  std::memcpy(bytes.data() + 0x18, &m, sizeof(m));
  reseal_header(bytes);
  expect_rejects(bytes, "edge count");
}

TEST_F(PbgMalformed, SectionTableAbuse) {
  // offsets section (table slot 1 at 0x20 + 24) pushed past EOF.
  auto bytes = valid_;
  const std::uint64_t huge = 1ull << 40;
  std::memcpy(bytes.data() + 0x20 + 24, &huge, sizeof(huge));
  reseal_header(bytes);
  expect_rejects(bytes, "past EOF");

  // Misaligned offset.
  bytes = valid_;
  std::uint64_t off;
  std::memcpy(&off, bytes.data() + 0x20 + 24, sizeof(off));
  off += 4;
  std::memcpy(bytes.data() + 0x20 + 24, &off, sizeof(off));
  reseal_header(bytes);
  expect_rejects(bytes, "misaligned");

  // Wrong size for a shape-determined section.
  bytes = valid_;
  std::uint64_t sz;
  std::memcpy(&sz, bytes.data() + 0x20 + 24 + 8, sizeof(sz));
  sz -= 4;
  std::memcpy(bytes.data() + 0x20 + 24 + 8, &sz, sizeof(sz));
  reseal_header(bytes);
  expect_rejects(bytes, "section size");
}

TEST_F(PbgMalformed, NonMonotoneOffsetsRejectedWithoutVerify) {
  // Structural checks are always on: corrupt offsets[1] (first row
  // boundary) and expect the monotonicity scan to fire even with
  // verify=false.  The patch lives in section data, which the header
  // checksum does not cover — exactly the hole the scan closes.
  auto bytes = valid_;
  std::uint64_t off;
  std::memcpy(&off, bytes.data() + 0x20 + 24, sizeof(off));
  const std::uint32_t evil = 0xf0000000u;
  std::memcpy(bytes.data() + off + 4, &evil, sizeof(evil));
  expect_rejects(bytes, "monotone", /*verify=*/false);
}

TEST_F(PbgMalformed, VerifyCatchesSectionBitRot) {
  // Flip one bit in the targets section: structural checks cannot see
  // it (still a valid vertex id), the deep pass must.
  auto bytes = valid_;
  std::uint64_t off;
  std::memcpy(&off, bytes.data() + 0x20 + 2 * 24, sizeof(off));
  bytes[off] ^= 0x01;
  expect_rejects(bytes, "checksum", /*verify=*/true);
}

TEST_F(PbgMalformed, VerifyCatchesSelfConsistentHostileCdata) {
  // Overwrite the whole cdata section with 0xff and re-seal both its
  // section checksum (table slot 5) and the header checksum covering
  // it: every checksum is now self-consistent, so only the
  // decode-vs-targets pass can see that the compressed rows no longer
  // encode the graph.  Before that pass existed, this file mapped with
  // verify=true and fed unbounded decoded neighbours into the
  // kCompressed sweeps' parent[]/pre[] indexing.
  auto bytes = valid_;
  std::uint64_t off, len;
  std::memcpy(&off, bytes.data() + 0x20 + 5 * 24, sizeof(off));
  std::memcpy(&len, bytes.data() + 0x20 + 5 * 24 + 8, sizeof(len));
  ASSERT_GT(len, 0u);
  std::fill(bytes.begin() + static_cast<std::ptrdiff_t>(off),
            bytes.begin() + static_cast<std::ptrdiff_t>(off + len), 0xff);
  const std::uint64_t sum = io::pbg_checksum(bytes.data() + off, len);
  std::memcpy(bytes.data() + 0x20 + 5 * 24 + 16, &sum, sizeof(sum));
  reseal_header(bytes);
  expect_rejects(bytes, "compressed row", /*verify=*/true);

  // Without verify the map succeeds (structural checks cannot price
  // row contents) — but decoding the hostile rows stays bounded and
  // in-range, so even the trusted path cannot be steered out of
  // bounds, only into garbage labels.
  const std::string path = pbg_path("hostile_cdata.pbg");
  spew(path, bytes);
  const io::MappedGraph m = io::MappedGraph::map(path);
  ASSERT_TRUE(m.has_compressed());
  const CompressedCsr cc = m.compressed();
  for (vid v = 0; v < m.graph().n; ++v) {
    eid calls = 0;
    cc.decode_row(v, [&](vid w, eid) {
      EXPECT_LT(w, m.graph().n) << "v=" << v;
      ++calls;
      return false;
    });
    EXPECT_EQ(calls, m.csr().degree(v)) << "v=" << v;
  }
}

TEST_F(PbgMalformed, EveryByteFlipEitherRejectsOrIsBenignPadding) {
  // Deterministic whole-file fuzz: flip each byte in turn and map with
  // the deep pass.  Every flip must either throw a named error or —
  // only for inter-section zero padding, which no checksum covers —
  // yield a graph identical to the original.
  io::MapOptions opt;
  opt.verify = true;
  const io::MappedGraph ref = io::MappedGraph::map(valid_path_, opt);
  const std::string path = pbg_path("flip.pbg");
  int benign = 0;
  for (std::size_t i = 0; i < valid_.size(); ++i) {
    auto bytes = valid_;
    bytes[i] ^= 0xff;
    spew(path, bytes);
    try {
      const io::MappedGraph m = io::MappedGraph::map(path, opt);
      ASSERT_EQ(m.graph().n, ref.graph().n) << "byte " << i;
      ASSERT_EQ(m.graph().m(), ref.graph().m()) << "byte " << i;
      for (eid e = 0; e < ref.graph().m(); ++e) {
        ASSERT_EQ(m.graph().edges[e].u, ref.graph().edges[e].u);
        ASSERT_EQ(m.graph().edges[e].v, ref.graph().edges[e].v);
      }
      ++benign;
    } catch (const std::runtime_error&) {
      // Named rejection: the common (and desired) outcome.
    }
  }
  // Padding is a small minority of the file.
  EXPECT_LT(benign, static_cast<int>(valid_.size() / 4));
}

TEST_F(PbgMalformed, EveryTruncationRejects) {
  // The file ends exactly at its last section, so every proper prefix
  // chops real data and must be rejected (structural pass only — the
  // bounds checks, not the checksums, are the last line of defence).
  const std::string path = pbg_path("trunc.pbg");
  for (std::size_t len = 0; len < valid_.size();
       len += 61) {  // prime stride covers all regions
    spew(path, {valid_.begin(), valid_.begin() + len});
    EXPECT_THROW(io::MappedGraph::map(path), std::runtime_error)
        << "len=" << len;
  }
}

}  // namespace
}  // namespace parbcc
