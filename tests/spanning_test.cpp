#include <gtest/gtest.h>

#include <algorithm>

#include "connectivity/shiloach_vishkin.hpp"
#include "connectivity/union_find.hpp"
#include "graph/csr.hpp"
#include "graph/generators.hpp"
#include "spanning/bfs_tree.hpp"
#include "spanning/forest.hpp"
#include "spanning/sv_tree.hpp"
#include "spanning/traversal_tree.hpp"
#include "test_util.hpp"
#include "util/thread_pool.hpp"

namespace parbcc {
namespace {

void expect_spanning_forest(const EdgeList& g,
                            const std::vector<eid>& tree_edges) {
  // Acyclic...
  ASSERT_TRUE(is_forest(g.n, g.edges, tree_edges));
  // ...and maximal: exactly n - #components edges.
  const vid comps = testutil::component_count(g);
  EXPECT_EQ(tree_edges.size(), g.n - comps);
}

class SpanParam : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(SpanParam, SvForestIsMaximalAcyclicOnRandomGraphs) {
  const auto [threads, seed] = GetParam();
  Executor ex(threads);
  const EdgeList g = gen::random_gnm(3000, 6000, seed);
  const SpanningForest forest = sv_spanning_forest(ex, g.n, g.edges);
  expect_spanning_forest(g, forest.tree_edges);
  EXPECT_EQ(forest.num_components, testutil::component_count(g));
  // Component labels must match union-find.
  EXPECT_EQ(forest.comp, connected_components_seq(g.n, g.edges));
}

TEST_P(SpanParam, TraversalTreeIsValidRootedSpanningTree) {
  const auto [threads, seed] = GetParam();
  Executor ex(threads);
  const EdgeList g = gen::random_connected_gnm(3000, 9000, seed);
  const Csr csr = Csr::build(ex, g);
  const TraversalTree tree = traversal_spanning_tree(ex, csr, 0);
  EXPECT_EQ(tree.reached, g.n);
  EXPECT_TRUE(is_valid_rooted_tree(tree.parent, 0));
  // parent_edge must actually connect v to parent[v].
  for (vid v = 1; v < g.n; ++v) {
    const Edge& e = g.edges[tree.parent_edge[v]];
    EXPECT_TRUE((e.u == v && e.v == tree.parent[v]) ||
                (e.v == v && e.u == tree.parent[v]));
  }
}

TEST_P(SpanParam, BfsTreeLevelsAreShortestPathDepths) {
  const auto [threads, seed] = GetParam();
  Executor ex(threads);
  const EdgeList g = gen::random_connected_gnm(2000, 5000, seed);
  const Csr csr = Csr::build(ex, g);
  const BfsTree par = bfs_tree(ex, csr, 0);
  const SeqBfsResult seq = sequential_bfs(csr, 0);
  EXPECT_EQ(par.reached, g.n);
  EXPECT_EQ(par.level, seq.level);  // BFS depths are unique
  EXPECT_TRUE(is_valid_rooted_tree(par.parent, 0));
  // Parent is exactly one level up.
  for (vid v = 1; v < g.n; ++v) {
    ASSERT_EQ(par.level[v], par.level[par.parent[v]] + 1);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, SpanParam,
                         ::testing::Combine(::testing::Values(1, 2, 4, 8),
                                            ::testing::Values(1, 2, 3)));

TEST(SvForest, SubsetOverloadRestrictsEdges) {
  Executor ex(4);
  // A square 0-1-2-3-0 plus diagonal; restrict to the square only.
  EdgeList g(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 2}});
  const std::vector<eid> subset = {0, 1, 2, 3};
  const SpanningForest forest =
      sv_spanning_forest(ex, g.n, g.edges, subset);
  EXPECT_EQ(forest.num_components, 1u);
  EXPECT_EQ(forest.tree_edges.size(), 3u);
  for (const eid e : forest.tree_edges) {
    EXPECT_TRUE(std::find(subset.begin(), subset.end(), e) != subset.end());
  }
}

TEST(SvForest, EmptySubsetLeavesAllIsolated) {
  Executor ex(2);
  EdgeList g(5, {{0, 1}, {2, 3}});
  const SpanningForest forest =
      sv_spanning_forest(ex, g.n, g.edges, std::span<const eid>{});
  EXPECT_EQ(forest.num_components, 5u);
  EXPECT_TRUE(forest.tree_edges.empty());
}

TEST(TraversalTree, DisconnectedReportsPartialReach) {
  Executor ex(4);
  EdgeList g(6, {{0, 1}, {1, 2}, {3, 4}});
  const Csr csr = Csr::build(ex, g);
  const TraversalTree tree = traversal_spanning_tree(ex, csr, 0);
  EXPECT_EQ(tree.reached, 3u);
  EXPECT_EQ(tree.parent[3], kNoVertex);
  EXPECT_EQ(tree.parent[5], kNoVertex);
}

TEST(BfsTree, PathGraphHasLinearLevels) {
  Executor ex(4);
  const EdgeList g = gen::path(1000);
  const Csr csr = Csr::build(ex, g);
  const BfsTree tree = bfs_tree(ex, csr, 0);
  EXPECT_EQ(tree.num_levels, 1000u);
  for (vid v = 0; v < g.n; ++v) ASSERT_EQ(tree.level[v], v);
}

TEST(BfsTree, StarHasTwoLevels) {
  Executor ex(4);
  const EdgeList g = gen::star(100);
  const Csr csr = Csr::build(ex, g);
  const BfsTree tree = bfs_tree(ex, csr, 0);
  EXPECT_EQ(tree.num_levels, 2u);
}

TEST(BfsTree, AllEdgesSpanAtMostOneLevel) {
  Executor ex(4);
  const EdgeList g = gen::random_connected_gnm(2000, 8000, 77);
  const Csr csr = Csr::build(ex, g);
  const BfsTree tree = bfs_tree(ex, csr, 0);
  // The property TV-filter's Lemma 1 rests on.
  for (const Edge& e : g.edges) {
    const int du = static_cast<int>(tree.level[e.u]);
    const int dv = static_cast<int>(tree.level[e.v]);
    ASSERT_LE(std::abs(du - dv), 1);
  }
}

TEST(SequentialForest, MatchesComponentArithmetic) {
  const EdgeList g = gen::random_gnm(500, 300, 5);
  const auto forest = sequential_spanning_forest(g.n, g.edges);
  expect_spanning_forest(g, forest);
}

TEST(IsValidRootedTree, AcceptsAndRejects) {
  // Valid: 0 <- 1 <- 2.
  EXPECT_TRUE(is_valid_rooted_tree(std::vector<vid>{0, 0, 1}, 0));
  // Cycle: 1 -> 2 -> 1.
  EXPECT_FALSE(is_valid_rooted_tree(std::vector<vid>{0, 2, 1}, 0));
  // Wrong root marker.
  EXPECT_FALSE(is_valid_rooted_tree(std::vector<vid>{1, 0}, 0));
  // Unreachable vertices (kNoVertex) are permitted.
  EXPECT_TRUE(is_valid_rooted_tree(std::vector<vid>{0, kNoVertex}, 0));
}

}  // namespace
}  // namespace parbcc
