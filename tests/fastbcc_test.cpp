#include <gtest/gtest.h>

#include <stdexcept>

#include "core/bcc.hpp"
#include "core/drivers.hpp"
#include "core/validate.hpp"
#include "graph/generators.hpp"
#include "test_util.hpp"
#include "util/thread_pool.hpp"

/// FastBCC driver tests: the criticality rule on crafted trees, the
/// cross-edge-only hooking discipline, determinism, full-width runs,
/// and the workspace/trace contract the dispatcher's cost model and
/// validate_trace.py rely on.

namespace parbcc {
namespace {

BccResult solve(Executor& ex, const EdgeList& g,
                BccAlgorithm algorithm = BccAlgorithm::kFastBcc) {
  BccOptions opt;
  opt.algorithm = algorithm;
  return biconnected_components(ex, g, opt);
}

void expect_matches_reference(Executor& ex, const EdgeList& g,
                              const char* what) {
  const testutil::RefBcc ref = testutil::reference_bcc(g);
  const BccResult r = solve(ex, g);
  ASSERT_EQ(r.num_components, ref.count) << what;
  EXPECT_TRUE(testutil::same_partition(r.edge_component, ref.edge_comp))
      << what;
}

TEST(FastBcc, CraftedCriticalityShapes) {
  Executor ex(4);
  // Theta graph: two vertices joined by three disjoint paths — one
  // block, and every spanning tree leaves two non-tree edges, at least
  // one of which is a cross edge under BFS.
  expect_matches_reference(
      ex,
      EdgeList(8, {{0, 1}, {1, 2}, {2, 7}, {0, 3}, {3, 7}, {0, 4}, {4, 5},
                   {5, 6}, {6, 7}}),
      "theta");
  // Chain of cycles sharing cut vertices: every tree edge into a new
  // cycle is critical exactly at the cut vertex.
  expect_matches_reference(ex, gen::cycle_chain(6, 5), "cycle_chain");
  // Pure bridges: every child is critical, every cluster a singleton.
  expect_matches_reference(ex, gen::path(12), "path");
  // Star of triangles through one hub: the hub heads every block.
  EdgeList star(1 + 2 * 10, {});
  for (vid b = 0; b < 10; ++b) {
    star.add_edge(0, 1 + 2 * b);
    star.add_edge(0, 2 + 2 * b);
    star.add_edge(1 + 2 * b, 2 + 2 * b);
  }
  expect_matches_reference(ex, star, "star_of_triangles");
}

TEST(FastBcc, ParallelCopiesOfTreeEdgesAreBackEdges) {
  Executor ex(4);
  // A path whose interior edge is doubled: the copy is ancestor-related
  // (it duplicates a tree edge), so the hook sweep must skip it, yet it
  // still fuses the doubled edge's block per the label rule.
  EdgeList g(5, {{0, 1}, {1, 2}, {1, 2}, {2, 3}, {3, 4}});
  expect_matches_reference(ex, g, "doubled_bridge");
  // Triangle with every edge tripled.
  EdgeList t(3, {});
  for (int copy = 0; copy < 3; ++copy) {
    t.add_edge(0, 1);
    t.add_edge(1, 2);
    t.add_edge(2, 0);
  }
  expect_matches_reference(ex, t, "tripled_triangle");
}

TEST(FastBcc, RandomSmallGraphsMatchReference) {
  Executor ex(4);
  for (int seed = 1; seed <= 8; ++seed) {
    expect_matches_reference(
        ex, gen::random_connected_gnm(120, 300 + 40 * seed, seed), "gnm");
  }
}

TEST(FastBcc, DeterministicAtOneThread) {
  Executor ex(1);
  const EdgeList g = gen::random_connected_gnm(4000, 16000, 19);
  const BccResult a = solve(ex, g);
  const BccResult b = solve(ex, g);
  EXPECT_EQ(a.edge_component, b.edge_component);  // exact, not partition
  EXPECT_EQ(a.num_components, b.num_components);
}

TEST(FastBcc, FullWidthRandomAndSkewedValidate) {
  Executor ex(12);
  for (const EdgeList& g : {gen::random_connected_gnm(20000, 120000, 29),
                            gen::rmat(13, 8, 30)}) {
    const BccResult r = solve(ex, g);
    const ValidationReport report = validate_bcc(ex, g, r);
    ASSERT_TRUE(report.ok) << report.message;
  }
}

TEST(FastBcc, PeakWorkspaceUndercutsTvFilter) {
  // The headline resource claim: no 3m auxiliary graph, no per-edge
  // candidate buffers — the solve's own scratch is 3n vids past the
  // shared tree structure.  Fresh contexts so the high-water marks are
  // attributable to one driver each.
  const EdgeList g = gen::random_connected_gnm(50000, 500000, 33);
  // Warm each context first: the cold solve's peak is dominated by the
  // shared conversion scratch, which would mask the driver difference.
  BccContext fast_ctx(4);
  BccOptions opt;
  opt.algorithm = BccAlgorithm::kFastBcc;
  biconnected_components(fast_ctx, g, opt);
  const BccResult fast = biconnected_components(fast_ctx, g, opt);
  BccContext filter_ctx(4);
  opt.algorithm = BccAlgorithm::kTvFilter;
  biconnected_components(filter_ctx, g, opt);
  const BccResult filter = biconnected_components(filter_ctx, g, opt);
  ASSERT_EQ(fast.num_components, filter.num_components);
  EXPECT_TRUE(
      testutil::same_partition(fast.edge_component, filter.edge_component));
  EXPECT_LT(fast.peak_workspace_bytes, filter.peak_workspace_bytes);
}

TEST(FastBcc, TraceExposesSkeletonSpansAndCounters) {
  Executor ex(4);
  const EdgeList g = gen::random_connected_gnm(5000, 25000, 37);
  const BccResult r = solve(ex, g);
  ASSERT_NE(r.trace.find_path("FastBCC"), nullptr);
  EXPECT_NE(r.trace.find_path("FastBCC/connected_components/skeleton_hook"),
            nullptr);
  EXPECT_NE(r.trace.find_path("FastBCC/low_high"), nullptr);
  EXPECT_NE(r.trace.find_path("FastBCC/connected_components"), nullptr);
  // The whole auxiliary-graph pipeline is bypassed: no aux span at any
  // depth (find_path is exact, so scan names).
  for (const TracePhase& phase : r.trace.phases) {
    EXPECT_NE(phase.name.substr(0, 4), "aux_") << phase.path;
  }
  // Dense random graphs have cross edges and multi-vertex clusters.
  EXPECT_GT(r.trace.counter_total("fastbcc_cross_edges"), 0.0);
  EXPECT_GT(r.trace.counter_total("fastbcc_hooks"), 0.0);
  EXPECT_GT(r.trace.counter_total("fastbcc_critical"), 0.0);
  // Step times route through the FastBCC span set (no filtering step).
  EXPECT_GT(r.times.spanning_tree, 0.0);
  EXPECT_EQ(r.times.filtering, 0.0);
}

TEST(FastBcc, DirectDriverRequiresConnectedInput) {
  // The raw driver is a single-component engine; the dispatcher owns
  // the decomposition (covered by edge_cases_test's disconnected runs).
  Executor ex(2);
  const EdgeList g(6, {{0, 1}, {1, 2}, {3, 4}, {4, 5}});
  EXPECT_THROW(fast_bcc(ex, g, {}), std::invalid_argument);
}

TEST(FastBcc, DisconnectedThroughDispatcherMatchesReference) {
  Executor ex(4);
  // Triangle + 4-cycle + path + isolated vertices.
  const EdgeList g(14, {{0, 1},
                        {1, 2},
                        {2, 0},
                        {4, 5},
                        {5, 6},
                        {6, 7},
                        {7, 4},
                        {9, 10},
                        {10, 11}});
  expect_matches_reference(ex, g, "disconnected");
}

}  // namespace
}  // namespace parbcc
