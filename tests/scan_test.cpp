#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <vector>

#include "scan/compact.hpp"
#include "scan/scan.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace parbcc {
namespace {

std::vector<std::uint64_t> random_values(std::size_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<std::uint64_t> v(n);
  for (auto& x : v) x = rng.below(1000);
  return v;
}

/// (size, threads) sweep shared by the scan properties.
class ScanParam
    : public ::testing::TestWithParam<std::tuple<std::size_t, int>> {};

TEST_P(ScanParam, ExclusiveMatchesSerialReference) {
  const auto [n, threads] = GetParam();
  Executor ex(threads);
  const auto in = random_values(n, n * 31 + threads);
  std::vector<std::uint64_t> out(n);
  const auto total = exclusive_scan(ex, in.data(), out.data(), n,
                                    std::uint64_t{5});
  std::uint64_t running = 5;
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(out[i], running) << "at " << i;
    running += in[i];
  }
  EXPECT_EQ(total, running);
}

TEST_P(ScanParam, InclusiveMatchesSerialReference) {
  const auto [n, threads] = GetParam();
  Executor ex(threads);
  const auto in = random_values(n, n * 17 + threads);
  std::vector<std::uint64_t> out(n);
  const auto total = inclusive_scan(ex, in.data(), out.data(), n,
                                    std::uint64_t{0});
  std::uint64_t running = 0;
  for (std::size_t i = 0; i < n; ++i) {
    running += in[i];
    ASSERT_EQ(out[i], running) << "at " << i;
  }
  EXPECT_EQ(total, running);
}

TEST_P(ScanParam, ExclusiveScanInPlace) {
  const auto [n, threads] = GetParam();
  Executor ex(threads);
  auto data = random_values(n, n + 99);
  const auto expect = [&] {
    std::vector<std::uint64_t> e(n);
    std::uint64_t run = 0;
    for (std::size_t i = 0; i < n; ++i) {
      e[i] = run;
      run += data[i];
    }
    return e;
  }();
  exclusive_scan(ex, data.data(), data.data(), n, std::uint64_t{0});
  EXPECT_EQ(data, expect);
}

TEST_P(ScanParam, ReduceMatchesAccumulate) {
  const auto [n, threads] = GetParam();
  Executor ex(threads);
  const auto in = random_values(n, n * 7 + 3);
  const auto total = reduce(ex, in.data(), n, std::uint64_t{0});
  EXPECT_EQ(total, std::accumulate(in.begin(), in.end(), std::uint64_t{0}));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ScanParam,
    ::testing::Combine(::testing::Values<std::size_t>(0, 1, 2, 100, 1023,
                                                      1024, 50000),
                       ::testing::Values(1, 2, 4, 7)));

TEST(Reduce, NonCommutativeAssociativeOpCombinesInOrder) {
  // Affine-map composition (a, b) := x -> a*x + b (mod p) is
  // associative but not commutative, so block order matters.
  struct Affine {
    std::uint64_t a = 1, b = 0;
    bool operator==(const Affine&) const = default;
  };
  constexpr std::uint64_t p = 1000000007ULL;
  const auto compose = [](Affine f, Affine g) {
    return Affine{f.a * g.a % p, (f.a * g.b + f.b) % p};
  };
  Executor ex(3);
  std::vector<Affine> maps(3000);
  Xoshiro256 rng(4);
  for (auto& f : maps) f = {1 + rng.below(p - 1), rng.below(p)};
  const Affine parallel =
      reduce(ex, maps.data(), maps.size(), Affine{}, compose);
  Affine serial;
  for (const auto& f : maps) serial = compose(serial, f);
  EXPECT_EQ(parallel, serial);
}

TEST(Compact, PacksSelectedIndicesInOrder) {
  Executor ex(4);
  const std::size_t n = 30000;
  std::vector<std::uint32_t> out;
  const auto count =
      pack_indices(ex, n, [](std::size_t i) { return i % 3 == 0; }, out);
  EXPECT_EQ(count, out.size());
  EXPECT_EQ(count, (n + 2) / 3);
  for (std::size_t k = 0; k < out.size(); ++k) {
    ASSERT_EQ(out[k], 3 * k);
  }
}

TEST(Compact, EmitReceivesDenseDestinations) {
  Executor ex(3);
  const std::size_t n = 10000;
  std::vector<std::size_t> dst_of(n, SIZE_MAX);
  const auto count = pack_into(
      ex, n, [](std::size_t i) { return i % 7 == 1; },
      [&](std::size_t dst, std::size_t i) { dst_of[i] = dst; });
  std::size_t expect = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (i % 7 == 1) {
      ASSERT_EQ(dst_of[i], expect++);
    } else {
      ASSERT_EQ(dst_of[i], SIZE_MAX);
    }
  }
  EXPECT_EQ(count, expect);
}

TEST(Compact, AllAndNoneSelected) {
  Executor ex(2);
  std::vector<std::uint32_t> out;
  EXPECT_EQ(pack_indices(ex, 5000, [](std::size_t) { return true; }, out),
            5000u);
  EXPECT_EQ(pack_indices(ex, 5000, [](std::size_t) { return false; }, out),
            0u);
  EXPECT_TRUE(out.empty());
}

}  // namespace
}  // namespace parbcc
