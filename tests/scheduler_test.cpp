// Work-stealing fork-join scheduler tests: nested-region correctness,
// lazy-split range coverage, exception propagation out of stolen
// tasks, steal/split counter sanity, and kSpmd mode equivalence, each
// swept over p in {1, 4, 12}.  Runs under the sanitize-smoke label so
// the TSan tree exercises the Chase-Lev deques at full width.

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/thread_pool.hpp"
#include "util/work_deque.hpp"

namespace parbcc {
namespace {

class SchedulerParam : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(Widths, SchedulerParam, ::testing::Values(1, 4, 12));

TEST_P(SchedulerParam, LazySplitCoversEveryIndexExactlyOnce) {
  Executor ex(GetParam());
  for (const std::size_t n : {0ul, 1ul, 2ul, 3ul, 1000ul, 65537ul}) {
    std::vector<std::atomic<int>> hits(n);
    for (auto& h : hits) h.store(0, std::memory_order_relaxed);
    ex.parallel_for(n, [&](std::size_t i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "n=" << n << " i=" << i;
    }
  }
}

TEST_P(SchedulerParam, ExplicitGrainCoversSubrange) {
  Executor ex(GetParam());
  const std::size_t lo = 17, hi = 40961;
  for (const std::size_t grain : {1ul, 7ul, 512ul, 100000ul}) {
    std::vector<std::atomic<int>> hits(hi);
    for (auto& h : hits) h.store(0, std::memory_order_relaxed);
    ex.parallel_for(lo, hi, grain, [&](std::size_t i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < hi; ++i) {
      ASSERT_EQ(hits[i].load(), i >= lo ? 1 : 0) << "grain=" << grain;
    }
  }
}

TEST_P(SchedulerParam, NestedRegionsComputeSkewedRowSums) {
  // A deliberately skewed "adjacency": row r has r+1 entries, so the
  // last rows dwarf the first.  The inner loop is a nested parallel
  // region with a small grain — the per-vertex edge-loop idiom the
  // skew-sensitive hot paths use.
  Executor ex(GetParam());
  const std::size_t rows = 200;
  std::vector<std::uint64_t> sum(rows, 0);
  ex.parallel_for(0, rows, 1, [&](std::size_t r) {
    const std::size_t len = r + 1;
    std::atomic<std::uint64_t> acc{0};
    ex.parallel_for(0, len, 16, [&](std::size_t j) {
      acc.fetch_add(j + 1, std::memory_order_relaxed);
    });
    sum[r] = acc.load(std::memory_order_relaxed);
  });
  for (std::size_t r = 0; r < rows; ++r) {
    const std::uint64_t len = r + 1;
    ASSERT_EQ(sum[r], len * (len + 1) / 2) << "row " << r;
  }
}

TEST_P(SchedulerParam, ThreeDeepNestingStillExact) {
  Executor ex(GetParam());
  std::atomic<std::uint64_t> total{0};
  ex.parallel_for(0, 8, 1, [&](std::size_t) {
    ex.parallel_for(0, 8, 1, [&](std::size_t) {
      ex.parallel_for(0, 64, 4, [&](std::size_t k) {
        total.fetch_add(k, std::memory_order_relaxed);
      });
    });
  });
  EXPECT_EQ(total.load(), 8u * 8u * (64u * 63u / 2));
}

TEST_P(SchedulerParam, ParallelBlocksInvokesEveryTidExactlyOnce) {
  Executor ex(GetParam());
  const int p = ex.threads();
  for (const std::size_t n : {0ul, 1ul, 5ul, 10000ul}) {
    std::vector<std::atomic<int>> calls(static_cast<std::size_t>(p));
    for (auto& c : calls) c.store(0, std::memory_order_relaxed);
    std::atomic<std::size_t> covered{0};
    ex.parallel_blocks(n, [&](int tid, std::size_t begin, std::size_t end) {
      calls[static_cast<std::size_t>(tid)].fetch_add(1);
      covered.fetch_add(end - begin);
    });
    for (int t = 0; t < p; ++t) ASSERT_EQ(calls[static_cast<std::size_t>(t)].load(), 1);
    ASSERT_EQ(covered.load(), n);
  }
}

TEST_P(SchedulerParam, ExceptionFromStolenTaskPropagates) {
  Executor ex(GetParam());
  // Large range, tiny grain: many tasks, so on p > 1 the throwing
  // index is very likely executed by a thief.  Either way the error
  // must surface at the top-level join, and the pool must stay usable.
  for (int round = 0; round < 3; ++round) {
    EXPECT_THROW(ex.parallel_for(0, 100000, 64,
                                 [&](std::size_t i) {
                                   if (i == 99999) {
                                     throw std::runtime_error("stolen boom");
                                   }
                                 }),
                 std::runtime_error);
    std::atomic<int> ok{0};
    ex.parallel_for(0, 1000, 8,
                    [&](std::size_t) { ok.fetch_add(1, std::memory_order_relaxed); });
    ASSERT_EQ(ok.load(), 1000);
  }
}

TEST_P(SchedulerParam, ExceptionFromNestedRegionPropagates) {
  Executor ex(GetParam());
  EXPECT_THROW(
      ex.parallel_for(0, 64, 1,
                      [&](std::size_t r) {
                        ex.parallel_for(0, 1024, 16, [&](std::size_t j) {
                          if (r == 63 && j == 1023) {
                            throw std::runtime_error("nested boom");
                          }
                        });
                      }),
      std::runtime_error);
}

TEST_P(SchedulerParam, CountersSeeSplitsAndTasks) {
  Executor ex(GetParam());
  ex.reset_scheduler_stats();
  std::atomic<std::uint64_t> acc{0};
  ex.parallel_for(0, 100000, 128, [&](std::size_t i) {
    acc.fetch_add(i, std::memory_order_relaxed);
  });
  const SchedulerStats s = ex.scheduler_stats();
  if (ex.threads() == 1) {
    // Serial fast path: no region, no forks.
    EXPECT_EQ(s.splits, 0u);
    EXPECT_EQ(s.tasks, 0u);
  } else {
    // 100000 / 128 leaves => at least a few hundred splits; every
    // forked task is eventually executed by someone.
    EXPECT_GT(s.splits, 100u);
    EXPECT_EQ(s.tasks, s.splits);
    EXPECT_LE(s.steals, s.tasks);
  }
  ex.reset_scheduler_stats();
  const SchedulerStats z = ex.scheduler_stats();
  EXPECT_EQ(z.splits + z.tasks + z.steals, 0u);
}

TEST_P(SchedulerParam, SpmdModeMatchesWorkStealingResults) {
  Executor ex(GetParam());
  const std::size_t n = 50000;
  std::vector<std::uint64_t> a(n), b(n);
  ex.set_mode(ExecMode::kWorkSteal);
  ex.parallel_for(n, [&](std::size_t i) { a[i] = i * i; });
  ex.set_mode(ExecMode::kSpmd);
  ex.parallel_for(n, [&](std::size_t i) { b[i] = i * i; });
  EXPECT_EQ(a, b);
  const SchedulerStats before = ex.scheduler_stats();
  ex.parallel_for_dynamic(n, 64, [&](std::size_t i) { b[i] += i; });
  ex.parallel_blocks(n, [&](int, std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) b[i] -= i;
  });
  // SPMD loops fork no tasks: the counters must not move.
  const SchedulerStats after = ex.scheduler_stats();
  EXPECT_EQ(before.splits, after.splits);
  EXPECT_EQ(before.tasks, after.tasks);
  EXPECT_EQ(a, b);
  ex.set_mode(ExecMode::kWorkSteal);
}

TEST_P(SchedulerParam, DynamicLoopStealsUnderWorkStealing) {
  Executor ex(GetParam());
  ex.reset_scheduler_stats();
  std::atomic<std::uint64_t> acc{0};
  ex.parallel_for_dynamic(20000, 32, [&](std::size_t i) {
    acc.fetch_add(1, std::memory_order_relaxed);
    (void)i;
  });
  EXPECT_EQ(acc.load(), 20000u);
  if (ex.threads() > 1) {
    EXPECT_GT(ex.scheduler_stats().splits, 0u);
  }
}

TEST_P(SchedulerParam, BusyAccountingProfilesLeafWork) {
  Executor ex(GetParam());
  ex.reset_scheduler_stats();
  ex.set_busy_accounting(true);
  std::atomic<std::uint64_t> sink{0};
  ex.parallel_for(0, 20000, 256, [&](std::size_t i) {
    std::uint64_t x = i;
    for (int k = 0; k < 50; ++k) x = x * 2862933555777941757ull + 3037000493ull;
    sink.fetch_add(x, std::memory_order_relaxed);
  });
  ex.set_busy_accounting(false);
  const SchedulerStats s = ex.scheduler_stats();
  if (ex.threads() == 1) {
    // Serial fast path bypasses the scheduler entirely.
    EXPECT_TRUE(s.busy_ns.empty());
  } else {
    ASSERT_FALSE(s.busy_ns.empty());
    std::uint64_t total = 0;
    for (const std::uint64_t b : s.busy_ns) total += b;
    EXPECT_GT(total, 0u);
  }
}

namespace {
struct NopTask final : ForkTask {
  std::atomic<int> claims{0};
  void run_task() override {}
};
}  // namespace

TEST(WorkDequeProtocol, StealHalfTakesHalfOldestFirstAndPopStaysLifo) {
  WorkDeque dq;
  std::array<NopTask, 8> tasks;
  for (auto& t : tasks) ASSERT_TRUE(dq.push(&t));
  ForkTask* out[WorkDeque::kMaxSteal];
  // 8 visible -> the thief claims half (4), oldest (top) first: the
  // largest remaining subranges under lazy binary splitting.
  std::size_t got = dq.steal_half(out, WorkDeque::kMaxSteal);
  ASSERT_EQ(got, 4u);
  for (std::size_t i = 0; i < got; ++i) EXPECT_EQ(out[i], &tasks[i]);
  // 4 left -> the next thief claims 2, continuing in top order.
  got = dq.steal_half(out, WorkDeque::kMaxSteal);
  ASSERT_EQ(got, 2u);
  EXPECT_EQ(out[0], &tasks[4]);
  EXPECT_EQ(out[1], &tasks[5]);
  // The owner still pops LIFO from the bottom, untouched by steals.
  EXPECT_EQ(dq.pop(), &tasks[7]);
  // The caller's buffer capacity caps the bite.
  got = dq.steal_half(out, 1);
  ASSERT_EQ(got, 1u);
  EXPECT_EQ(out[0], &tasks[6]);
  EXPECT_EQ(dq.pop(), nullptr);
  EXPECT_TRUE(dq.empty());
}

TEST(WorkDequeProtocol, ConcurrentStealHalfClaimsEachTaskExactlyOnce) {
  // The owner drains from the bottom while thieves bite halves off the
  // top; every task must be claimed by exactly one party.  This is the
  // race the per-element bottom_ re-read in steal_half exists for (a
  // k-wide CAS could hand a thief an element the owner already popped).
  constexpr int kRounds = 50;
  constexpr std::size_t kTasks = 512;
  for (int round = 0; round < kRounds; ++round) {
    WorkDeque dq;
    std::vector<NopTask> tasks(kTasks);
    for (auto& t : tasks) ASSERT_TRUE(dq.push(&t));
    std::atomic<bool> go{false};
    auto thief = [&] {
      ForkTask* out[WorkDeque::kMaxSteal];
      while (!go.load(std::memory_order_acquire)) {
      }
      for (;;) {
        const std::size_t got = dq.steal_half(out, WorkDeque::kMaxSteal);
        if (got == 0) {
          if (dq.empty()) break;
          continue;
        }
        for (std::size_t i = 0; i < got; ++i) {
          static_cast<NopTask*>(out[i])->claims.fetch_add(
              1, std::memory_order_relaxed);
        }
      }
    };
    std::thread t1(thief), t2(thief), t3(thief);
    go.store(true, std::memory_order_release);
    while (ForkTask* popped = dq.pop()) {
      static_cast<NopTask*>(popped)->claims.fetch_add(
          1, std::memory_order_relaxed);
    }
    t1.join();
    t2.join();
    t3.join();
    std::size_t total = 0;
    for (auto& t : tasks) {
      ASSERT_EQ(t.claims.load(), 1) << "round " << round;
      total += static_cast<std::size_t>(t.claims.load());
    }
    ASSERT_EQ(total, kTasks);
  }
}

TEST(Scheduler, SpmdBarrierPathStillRunsUnderWorkStealMode) {
  // run() is mode-independent: the barrier-phased substrates use it
  // directly regardless of how the loops are scheduled.
  Executor ex(8);
  std::vector<int> stage(8, 0);
  ex.run([&](int tid) {
    stage[static_cast<std::size_t>(tid)] = 1;
    ex.barrier().wait();
    // After the barrier every participant must see all stage-1 writes.
    int sum = 0;
    for (const int s : stage) sum += s;
    if (sum != 8) stage[static_cast<std::size_t>(tid)] = -1000;
  });
  for (const int s : stage) EXPECT_EQ(s, 1);
}

TEST(Scheduler, WorkerIdStaysInRangeAndStable) {
  Executor ex(12);
  std::atomic<bool> bad{false};
  ex.parallel_for(0, 10000, 16, [&](std::size_t) {
    const int w = ex.worker_id();
    if (w < 0 || w >= ex.threads()) bad.store(true);
  });
  EXPECT_FALSE(bad.load());
  EXPECT_EQ(ex.worker_id(), 0);  // outside any region
}

}  // namespace
}  // namespace parbcc
