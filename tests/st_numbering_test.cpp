#include <gtest/gtest.h>

#include "core/bcc.hpp"
#include "core/st_numbering.hpp"
#include "graph/generators.hpp"
#include "util/thread_pool.hpp"

namespace parbcc {
namespace {

void expect_valid(const EdgeList& g, vid s, vid t) {
  const StNumbering st = st_number(g, s, t);
  EXPECT_TRUE(is_valid_st_numbering(g, s, t, st));
}

TEST(StNumbering, TriangleHandChecked) {
  EdgeList g(3, {{0, 1}, {1, 2}, {2, 0}});
  const StNumbering st = st_number(g, 0, 1);
  EXPECT_EQ(st.number[0], 1u);
  EXPECT_EQ(st.number[1], 3u);
  EXPECT_EQ(st.number[2], 2u);
  EXPECT_TRUE(is_valid_st_numbering(g, 0, 1, st));
}

TEST(StNumbering, SingleEdgeGraph) {
  EdgeList g(2, {{0, 1}});
  const StNumbering st = st_number(g, 1, 0);
  EXPECT_EQ(st.number[1], 1u);
  EXPECT_EQ(st.number[0], 2u);
}

TEST(StNumbering, StructuredBiconnectedFamilies) {
  expect_valid(gen::cycle(20), 0, 1);
  expect_valid(gen::cycle(20), 5, 4);
  expect_valid(gen::complete(15), 3, 7);
  expect_valid(gen::grid_torus(5, 7), 0, 1);
  expect_valid(gen::wheel(12), 0, 4);
  expect_valid(gen::complete_bipartite(4, 5), 0, 4);
}

TEST(StNumbering, EveryEdgeOfASmallGraphWorksAsST) {
  const EdgeList g = gen::wheel(8);
  for (const Edge& e : g.edges) {
    expect_valid(g, e.u, e.v);
    expect_valid(g, e.v, e.u);
  }
}

class StParam : public ::testing::TestWithParam<int> {};

TEST_P(StParam, RandomBiconnectedGraphs) {
  const int seed = GetParam();
  const EdgeList g = gen::random_connected_gnm(400, 3200, seed);
  Executor ex(2);
  const BccResult r = biconnected_components(ex, g, {});
  if (r.num_components != 1) GTEST_SKIP() << "not biconnected";
  // Use a few different st edges per instance.
  for (const eid e : {eid{0}, static_cast<eid>(g.m() / 2),
                      static_cast<eid>(g.m() - 1)}) {
    expect_valid(g, g.edges[e].u, g.edges[e].v);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, StParam, ::testing::Range(1, 11));

TEST(StNumbering, RejectsNonBiconnected) {
  // Path: 1 is an articulation point.
  EXPECT_THROW(st_number(gen::path(4), 0, 1), std::invalid_argument);
  // Two triangles sharing a vertex.
  EdgeList g(5, {{0, 1}, {1, 2}, {2, 0}, {2, 3}, {3, 4}, {4, 2}});
  EXPECT_THROW(st_number(g, 0, 1), std::invalid_argument);
}

TEST(StNumbering, RejectsBadArguments) {
  const EdgeList g = gen::cycle(5);
  EXPECT_THROW(st_number(g, 0, 0), std::invalid_argument);   // s == t
  EXPECT_THROW(st_number(g, 0, 9), std::invalid_argument);   // out of range
  EXPECT_THROW(st_number(g, 0, 2), std::invalid_argument);   // not an edge
  EdgeList disconnected(6, {{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}});
  EXPECT_THROW(st_number(disconnected, 0, 1), std::invalid_argument);
}

TEST(StNumbering, CheckerRejectsBogusNumberings) {
  const EdgeList g = gen::cycle(4);
  StNumbering st;
  st.number = {1, 2, 3, 4};
  EXPECT_TRUE(is_valid_st_numbering(g, 0, 3, st));
  st.number = {1, 3, 2, 4};  // vertex 1 (number 3): neighbours 0(1), 2(2):
                             // no higher neighbour
  EXPECT_FALSE(is_valid_st_numbering(g, 0, 3, st));
  st.number = {2, 1, 3, 4};  // s must be 1
  EXPECT_FALSE(is_valid_st_numbering(g, 0, 3, st));
  st.number = {1, 2, 2, 4};  // not a permutation
  EXPECT_FALSE(is_valid_st_numbering(g, 0, 3, st));
}

}  // namespace
}  // namespace parbcc
