#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "listrank/list_ranking.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace parbcc {
namespace {

/// Build a list over nodes [0, n) whose traversal order is a seeded
/// random permutation; returns (succ, head).
std::pair<std::vector<vid>, vid> random_list(std::size_t n,
                                             std::uint64_t seed) {
  std::vector<vid> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  Xoshiro256 rng(seed);
  std::shuffle(perm.begin(), perm.end(), rng);
  std::vector<vid> succ(n, kNoVertex);
  for (std::size_t i = 0; i + 1 < n; ++i) succ[perm[i]] = perm[i + 1];
  return {std::move(succ), n == 0 ? kNoVertex : perm[0]};
}

/// Expected rank per node from the permutation directly.
std::vector<vid> expected_ranks(const std::vector<vid>& succ, vid head) {
  std::vector<vid> rank(succ.size());
  vid v = head;
  for (std::size_t r = 0; r < succ.size(); ++r) {
    rank[v] = static_cast<vid>(r);
    v = succ[v];
  }
  return rank;
}

class ListRankParam
    : public ::testing::TestWithParam<std::tuple<std::size_t, int>> {};

TEST_P(ListRankParam, WyllieMatchesReference) {
  const auto [n, threads] = GetParam();
  if (n == 0) return;
  Executor ex(threads);
  const auto [succ, head] = random_list(n, n + 1);
  const auto expect = expected_ranks(succ, head);
  std::vector<vid> rank(n);
  list_rank_wyllie(ex, succ.data(), rank.data(), n, head);
  EXPECT_EQ(rank, expect);
}

TEST_P(ListRankParam, HelmanJajaMatchesReference) {
  const auto [n, threads] = GetParam();
  if (n == 0) return;
  Executor ex(threads);
  const auto [succ, head] = random_list(n, n + 2);
  const auto expect = expected_ranks(succ, head);
  std::vector<vid> rank(n);
  list_rank_hj(ex, succ.data(), rank.data(), n, head);
  EXPECT_EQ(rank, expect);
}

TEST_P(ListRankParam, IndependentSetMatchesReference) {
  const auto [n, threads] = GetParam();
  if (n == 0) return;
  Executor ex(threads);
  const auto [succ, head] = random_list(n, n + 3);
  const auto expect = expected_ranks(succ, head);
  std::vector<vid> rank(n);
  list_rank_independent_set(ex, succ.data(), rank.data(), n, head);
  EXPECT_EQ(rank, expect);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ListRankParam,
    ::testing::Combine(::testing::Values<std::size_t>(1, 2, 3, 100, 2047,
                                                      2048, 65536),
                       ::testing::Values(1, 2, 4, 7)));

TEST(ListRankSequential, IdentityChain) {
  const std::size_t n = 1000;
  std::vector<vid> succ(n);
  for (std::size_t i = 0; i + 1 < n; ++i) succ[i] = static_cast<vid>(i + 1);
  succ[n - 1] = kNoVertex;
  std::vector<vid> rank(n);
  list_rank_sequential(succ.data(), rank.data(), n, 0);
  for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(rank[i], i);
}

TEST(ListRankSequential, DetectsShortList) {
  // Two disjoint chains: walking from the head covers only half.
  std::vector<vid> succ = {1, kNoVertex, 3, kNoVertex};
  std::vector<vid> rank(4);
  EXPECT_THROW(list_rank_sequential(succ.data(), rank.data(), 4, 0),
               std::invalid_argument);
}

TEST(ListRankHj, DetectsShortList) {
  Executor ex(4);
  const std::size_t n = 10000;
  auto [succ, head] = random_list(n, 5);
  // Cut the list in half: nodes after the cut become unreachable.
  vid v = head;
  for (std::size_t i = 0; i < n / 2; ++i) v = succ[v];
  succ[v] = kNoVertex;
  std::vector<vid> rank(n);
  EXPECT_THROW(list_rank_hj(ex, succ.data(), rank.data(), n, head),
               std::invalid_argument);
}

TEST(ListRankHj, DifferentSeedsSameAnswer) {
  Executor ex(4);
  const std::size_t n = 50000;
  const auto [succ, head] = random_list(n, 123);
  const auto expect = expected_ranks(succ, head);
  std::vector<vid> rank_a(n), rank_b(n);
  list_rank_hj(ex, succ.data(), rank_a.data(), n, head, 1);
  list_rank_hj(ex, succ.data(), rank_b.data(), n, head, 999);
  EXPECT_EQ(rank_a, expect);
  EXPECT_EQ(rank_b, expect);
}

TEST(ListRankAll, AgreeOnSingleton) {
  Executor ex(2);
  std::vector<vid> succ = {kNoVertex};
  std::vector<vid> rank = {7};
  list_rank_sequential(succ.data(), rank.data(), 1, 0);
  EXPECT_EQ(rank[0], 0u);
  rank[0] = 7;
  list_rank_wyllie(ex, succ.data(), rank.data(), 1, 0);
  EXPECT_EQ(rank[0], 0u);
  rank[0] = 7;
  list_rank_hj(ex, succ.data(), rank.data(), 1, 0);
  EXPECT_EQ(rank[0], 0u);
}

}  // namespace
}  // namespace parbcc
