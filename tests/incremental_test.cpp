#include <gtest/gtest.h>

#include <map>
#include <set>

#include "connectivity/union_find.hpp"
#include "core/bcc.hpp"
#include "core/incremental.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace parbcc {
namespace {

/// From-scratch ground truth for the incremental structure's queries.
struct Snapshot {
  vid num_blocks;
  vid num_bridges;
  vid num_components;
  std::vector<std::uint8_t> is_cut;
  /// Vertex sets per block, for same_block queries.
  std::vector<std::set<vid>> block_vertices;

  explicit Snapshot(const EdgeList& g) {
    Executor ex(1);
    const BccResult r = biconnected_components(ex, g, {});
    num_blocks = r.num_components;
    num_bridges = static_cast<vid>(r.bridges.size());
    is_cut = r.is_articulation;
    block_vertices.resize(r.num_components);
    for (eid e = 0; e < g.m(); ++e) {
      block_vertices[r.edge_component[e]].insert(g.edges[e].u);
      block_vertices[r.edge_component[e]].insert(g.edges[e].v);
    }
    // Components including isolated vertices.
    num_components = 0;
    {
      UnionFind uf(g.n);
      vid count = g.n;
      for (const Edge& e : g.edges) {
        if (e.u != e.v && uf.unite(e.u, e.v)) --count;
      }
      num_components = count;
    }
  }

  bool same_block(vid u, vid v) const {
    for (const auto& block : block_vertices) {
      if (block.count(u) && block.count(v)) return true;
    }
    return false;
  }
};

void expect_matches(IncrementalBiconnectivity& inc, const EdgeList& g,
                    std::uint64_t query_seed) {
  const Snapshot truth(g);
  ASSERT_EQ(inc.num_blocks(), truth.num_blocks);
  ASSERT_EQ(inc.num_bridges(), truth.num_bridges);
  ASSERT_EQ(inc.num_components(), truth.num_components);
  for (vid v = 0; v < g.n; ++v) {
    ASSERT_EQ(inc.is_cut_vertex(v), truth.is_cut[v] != 0) << "v=" << v;
  }
  Xoshiro256 rng(query_seed);
  for (int q = 0; q < 200; ++q) {
    const vid u = static_cast<vid>(rng.below(g.n));
    const vid v = static_cast<vid>(rng.below(g.n));
    ASSERT_EQ(inc.same_block(u, v), truth.same_block(u, v))
        << "u=" << u << " v=" << v;
  }
}

TEST(Incremental, HandDrivenScenario) {
  IncrementalBiconnectivity inc(6);
  EXPECT_EQ(inc.num_components(), 6u);
  inc.insert_edge(0, 1);  // bridge
  EXPECT_EQ(inc.num_blocks(), 1u);
  EXPECT_EQ(inc.num_bridges(), 1u);
  EXPECT_TRUE(inc.same_block(0, 1));
  EXPECT_FALSE(inc.is_cut_vertex(0));

  inc.insert_edge(1, 2);  // second bridge; 1 becomes a cut vertex
  EXPECT_EQ(inc.num_blocks(), 2u);
  EXPECT_TRUE(inc.is_cut_vertex(1));
  EXPECT_FALSE(inc.same_block(0, 2));

  inc.insert_edge(2, 0);  // closes the triangle
  EXPECT_EQ(inc.num_blocks(), 1u);
  EXPECT_EQ(inc.num_bridges(), 0u);
  EXPECT_FALSE(inc.is_cut_vertex(1));
  EXPECT_TRUE(inc.same_block(0, 2));

  inc.insert_edge(2, 3);  // pendant bridge
  inc.insert_edge(3, 4);
  EXPECT_EQ(inc.num_blocks(), 3u);
  EXPECT_EQ(inc.num_bridges(), 2u);
  EXPECT_TRUE(inc.is_cut_vertex(2));
  EXPECT_TRUE(inc.is_cut_vertex(3));

  inc.insert_edge(4, 0);  // swallows everything into one block
  EXPECT_EQ(inc.num_blocks(), 1u);
  EXPECT_EQ(inc.num_bridges(), 0u);
  EXPECT_EQ(inc.num_cut_vertices(), 0u);
  EXPECT_TRUE(inc.same_block(3, 1));
  EXPECT_FALSE(inc.same_block(3, 5));  // 5 still isolated
  EXPECT_EQ(inc.num_components(), 2u);
}

TEST(Incremental, SelfLoopsAndParallelEdges) {
  IncrementalBiconnectivity inc(3);
  inc.insert_edge(0, 0);  // ignored
  EXPECT_EQ(inc.num_blocks(), 0u);
  inc.insert_edge(0, 1);
  EXPECT_EQ(inc.num_bridges(), 1u);
  inc.insert_edge(0, 1);  // doubled: no longer a bridge
  EXPECT_EQ(inc.num_blocks(), 1u);
  EXPECT_EQ(inc.num_bridges(), 0u);
}

class IncrementalParam
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(IncrementalParam, MatchesRecomputeAfterEveryInsertion) {
  const auto [n_arg, seed] = GetParam();
  const vid n = static_cast<vid>(n_arg);
  // Random insertion order over a random graph's edges.
  EdgeList full = gen::random_gnm(n, 3 * n, seed);
  Xoshiro256 rng(seed * 31 + 7);
  std::shuffle(full.edges.begin(), full.edges.end(), rng);

  IncrementalBiconnectivity inc(n);
  EdgeList sofar(n, {});
  for (eid e = 0; e < full.m(); ++e) {
    inc.insert_edge(full.edges[e].u, full.edges[e].v);
    sofar.edges.push_back(full.edges[e]);
    // Checking every step is O(m^2); sample a prefix densely and then
    // every 16th insertion.
    if (e < 20 || e % 16 == 0 || e + 1 == full.m()) {
      expect_matches(inc, sofar, e);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, IncrementalParam,
                         ::testing::Combine(::testing::Values(30, 80),
                                            ::testing::Values(1, 2, 3, 4)));

TEST(Incremental, BridgeChainThenCollapse) {
  const vid n = 2000;
  IncrementalBiconnectivity inc(n);
  for (vid v = 1; v < n; ++v) inc.insert_edge(v - 1, v);
  EXPECT_EQ(inc.num_blocks(), n - 1);
  EXPECT_EQ(inc.num_bridges(), n - 1);
  EXPECT_EQ(inc.num_cut_vertices(), n - 2);
  inc.insert_edge(n - 1, 0);  // one edge biconnects the whole ring
  EXPECT_EQ(inc.num_blocks(), 1u);
  EXPECT_EQ(inc.num_bridges(), 0u);
  EXPECT_EQ(inc.num_cut_vertices(), 0u);
  EXPECT_TRUE(inc.same_block(17, 1234));
}

TEST(Incremental, RejectsOutOfRange) {
  IncrementalBiconnectivity inc(3);
  EXPECT_THROW(inc.insert_edge(0, 5), std::invalid_argument);
}

}  // namespace
}  // namespace parbcc
