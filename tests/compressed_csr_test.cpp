#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "core/bcc.hpp"
#include "graph/compressed_csr.hpp"
#include "graph/csr.hpp"
#include "graph/generators.hpp"
#include "spanning/bfs_tree.hpp"
#include "test_util.hpp"
#include "util/workspace.hpp"

namespace parbcc {
namespace {

/// Row contents as a sorted (neighbour, eid) list — the canonical
/// order both backends must agree on up to permutation.
std::vector<std::pair<vid, eid>> plain_row(const Csr& csr, vid v) {
  const auto nbrs = csr.neighbors(v);
  const auto eids = csr.incident_edges(v);
  std::vector<std::pair<vid, eid>> row;
  row.reserve(nbrs.size());
  for (std::size_t i = 0; i < nbrs.size(); ++i) {
    row.emplace_back(nbrs[i], eids[i]);
  }
  std::sort(row.begin(), row.end());
  return row;
}

std::vector<std::pair<vid, eid>> decoded_row(const CompressedCsr& cc, vid v) {
  std::vector<std::pair<vid, eid>> row;
  cc.decode_row(v, [&](vid w, eid e) {
    row.emplace_back(w, e);
    return false;
  });
  return row;
}

class CompressedRoundTrip : public ::testing::TestWithParam<int> {
 protected:
  EdgeList input() const {
    switch (GetParam()) {
      case 0:
        return EdgeList(0, {});
      case 1:
        return EdgeList(7, {});  // all rows empty
      case 2:
        return gen::star(64);  // one huge row, 64 single-arc rows
      case 3:
        return gen::random_gnm(200, 1500, 7);  // parallel edges likely
      case 4:
        return gen::random_power_law(500, 4000, 2.2, 11);  // skewed gaps
      case 5:
        return gen::complete(40);  // gap-1 runs, small k
      case 6:
        return gen::grid_torus(20, 25);  // uniform degree 4
      default:
        return gen::rmat(10, 16, 3);  // hubs + outlier gaps (escapes)
    }
  }
};

TEST_P(CompressedRoundTrip, DecodesEveryRowExactly) {
  const EdgeList g = input();
  Executor ex(4);
  const Csr csr = Csr::build(ex, g);
  const CompressedCsr cc = CompressedCsr::build(ex, csr);

  ASSERT_EQ(cc.num_vertices(), csr.num_vertices());
  ASSERT_EQ(cc.num_edges(), csr.num_edges());
  for (vid v = 0; v < g.n; ++v) {
    ASSERT_EQ(cc.degree(v), csr.degree(v)) << "v=" << v;
    const auto expect = plain_row(csr, v);
    const auto got = decoded_row(cc, v);
    ASSERT_EQ(got, expect) << "v=" << v;
    // Decode order is sorted by construction.
    ASSERT_TRUE(std::is_sorted(got.begin(), got.end()));
  }
}

TEST_P(CompressedRoundTrip, FullDecodeStreamsExactlyRowBytes) {
  const EdgeList g = input();
  Executor ex(2);
  const Csr csr = Csr::build(ex, g);
  const CompressedCsr cc = CompressedCsr::build(ex, csr);

  std::size_t total = 0;
  for (vid v = 0; v < g.n; ++v) {
    const std::size_t streamed = cc.decode_row(v, [](vid, eid) {
      return false;
    });
    EXPECT_EQ(streamed, cc.row_bytes(v)) << "v=" << v;
    total += streamed;
  }
  EXPECT_EQ(total, cc.data_bytes());
}

TEST_P(CompressedRoundTrip, EarlyStopChargesOnlyThePrefix) {
  const EdgeList g = input();
  Executor ex(2);
  const Csr csr = Csr::build(ex, g);
  const CompressedCsr cc = CompressedCsr::build(ex, csr);

  for (vid v = 0; v < g.n; ++v) {
    const eid deg = cc.degree(v);
    if (deg == 0) continue;
    // Stop after the first arc: a long row must not charge its tail.
    const std::size_t first = cc.decode_row(v, [](vid, eid) {
      return true;
    });
    EXPECT_GE(first, 2u);  // k byte + at least one varint byte
    EXPECT_LE(first, cc.row_bytes(v));
    if (deg >= 8) {
      EXPECT_LT(first, cc.row_bytes(v)) << "v=" << v;
    }
    // Stopping at arc i must stream a monotone prefix of the row.
    std::size_t prev = first;
    for (eid stop = 2; stop <= std::min<eid>(deg, 4); ++stop) {
      eid seen = 0;
      const std::size_t bytes = cc.decode_row(v, [&](vid, eid) {
        return ++seen == stop;
      });
      EXPECT_GE(bytes, prev) << "v=" << v << " stop=" << stop;
      EXPECT_LE(bytes, cc.row_bytes(v));
      prev = bytes;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, CompressedRoundTrip, ::testing::Range(0, 8));

TEST(CompressedCsr, AdoptViewsMatchBuiltArrays) {
  const EdgeList g = gen::random_connected_gnm(300, 2000, 5);
  Executor ex(4);
  const Csr csr = Csr::build(ex, g);
  const CompressedCsr built = CompressedCsr::build(ex, csr);
  // Adopt the built object's own sections (stand-in for a mapped file:
  // same shapes, same trust model).  Note adopt() wants the *decode
  // order* eids, which for a built object is its permuted copy.
  const CompressedCsr adopted = CompressedCsr::adopt(
      g.n, g.m(), csr.offsets(), built.row_index(), built.row_data(),
      built.edge_ids());
  ASSERT_EQ(adopted.data_bytes(), built.data_bytes());
  for (vid v = 0; v < g.n; ++v) {
    ASSERT_EQ(decoded_row(adopted, v), decoded_row(built, v)) << "v=" << v;
  }
}

TEST(CompressedCsr, CompressesDenseFamilyBelowHalf) {
  // The A8 gate shape: m = 20n.  Gaps average n/40, so Rice rows must
  // land well under the 4-byte plain arc — this pins the ratio the
  // bench gate (<= 0.5x) relies on, at test scale.
  const EdgeList g = gen::random_connected_gnm(5000, 100000, 17);
  Executor ex(4);
  const Csr csr = Csr::build(ex, g);
  const CompressedCsr cc = CompressedCsr::build(ex, csr);
  const double plain_bytes =
      static_cast<double>(csr.targets().size()) * sizeof(vid);
  EXPECT_LT(static_cast<double>(cc.data_bytes()), 0.5 * plain_bytes);
}

TEST(CompressedCsr, BfsLevelsMatchPlainBackend) {
  for (const int shape : {0, 1, 2}) {
    const EdgeList g = shape == 0   ? gen::random_connected_gnm(800, 6000, 3)
                       : shape == 1 ? gen::rmat(10, 12, 9)
                                    : gen::barbell(30, 200);
    Executor ex(4);
    Workspace ws;
    const Csr csr = Csr::build(ex, g);
    const CompressedCsr cc = CompressedCsr::build(ex, csr);
    for (const BfsMode mode :
         {BfsMode::kAuto, BfsMode::kTopDown, BfsMode::kBottomUp}) {
      const BfsTree plain = bfs_tree(ex, ws, csr, 0, mode);
      const BfsTree comp = bfs_tree(ex, ws, cc, 0, mode);
      ASSERT_EQ(comp.level, plain.level);
      ASSERT_EQ(comp.reached, plain.reached);
      ASSERT_EQ(comp.num_levels, plain.num_levels);
      // Parents may differ (any BFS tree is valid) but must respect
      // the level structure: parent one level up, joined by an edge.
      for (vid v = 0; v < g.n; ++v) {
        if (comp.parent[v] == kNoVertex || v == comp.root) continue;
        ASSERT_EQ(comp.level[v], comp.level[comp.parent[v]] + 1) << v;
        const Edge& e = g.edges[comp.parent_edge[v]];
        ASSERT_TRUE((e.u == v && e.v == comp.parent[v]) ||
                    (e.v == v && e.u == comp.parent[v]));
      }
      ASSERT_GT(comp.decode_bytes, 0u);
      ASSERT_LE(comp.decode_bytes, cc.data_bytes() * (comp.num_levels + 1));
      ASSERT_EQ(plain.decode_bytes, 0u);
    }
  }
}

TEST(CompressedCsr, SolveMatchesPlainBackendLabels) {
  for (const int shape : {0, 1, 2, 3}) {
    const EdgeList g = shape == 0 ? gen::random_connected_gnm(600, 4000, 21)
                       : shape == 1
                           ? gen::clique_chain(12, 8)
                           : shape == 2 ? gen::random_cactus(40, 9, 13)
                                        : gen::rmat(9, 10, 31);
    for (const BccAlgorithm alg :
         {BccAlgorithm::kTvFilter, BccAlgorithm::kFastBcc}) {
      BccOptions plain_opt;
      plain_opt.algorithm = alg;
      plain_opt.threads = 4;
      BccOptions comp_opt = plain_opt;
      comp_opt.csr_backend = CsrBackend::kCompressed;
      const BccResult a = biconnected_components(g, plain_opt);
      const BccResult b = biconnected_components(g, comp_opt);
      ASSERT_EQ(b.num_components, a.num_components)
          << to_string(alg) << " shape=" << shape;
      ASSERT_TRUE(testutil::same_partition(b.edge_component, a.edge_component))
          << to_string(alg) << " shape=" << shape;
      ASSERT_EQ(b.is_articulation, a.is_articulation);
      ASSERT_EQ(b.bridges, a.bridges);
    }
  }
}

TEST(CompressedCsr, HostileRowBytesStayBoundedAndInRange) {
  // Handcrafted adversarial sections standing in for a corrupt mapped
  // file: row 0 is a k byte plus seven 0xff varint-continuation bytes
  // (the varint never terminates inside the row and the shift would
  // pass the vid width), row 2 ends mid-varint on the very last byte
  // of the data array.  decode_row must terminate, call f exactly
  // degree times, emit only in-range neighbours, and never read
  // outside the row — ASan in sanitize-smoke enforces the last part
  // (the unbounded loop this pins against ran off the array here).
  const vid n = 3;
  const std::vector<eid> offsets = {0, 4, 4, 6};
  const std::vector<std::uint64_t> index = {0, 8, 8, 10};
  const std::vector<std::uint8_t> data(10, 0xff);
  const std::vector<eid> eids(6, 0);
  const CompressedCsr cc = CompressedCsr::adopt(
      n, 3, {offsets.data(), offsets.size()}, {index.data(), index.size()},
      {data.data(), data.size()}, {eids.data(), eids.size()});
  for (vid v = 0; v < n; ++v) {
    const eid deg = offsets[v + 1] - offsets[v];
    eid calls = 0;
    const std::size_t consumed = cc.decode_row(v, [&](vid w, eid) {
      EXPECT_LT(w, n) << "v=" << v;
      ++calls;
      return false;
    });
    EXPECT_EQ(calls, deg) << "v=" << v;
    EXPECT_LE(consumed, cc.row_bytes(v)) << "v=" << v;
  }

  // A nonempty row with zero encoded bytes (the loader rejects this
  // shape, but decode_row must not rely on that): no calls, no reads.
  const std::vector<eid> offsets1 = {0, 2};
  const std::vector<std::uint64_t> index1 = {0, 0};
  const std::vector<eid> eids1 = {0, 0};
  const CompressedCsr empty = CompressedCsr::adopt(
      1, 1, {offsets1.data(), offsets1.size()},
      {index1.data(), index1.size()}, {}, {eids1.data(), eids1.size()});
  eid calls = 0;
  EXPECT_EQ(empty.decode_row(0, [&](vid, eid) {
    ++calls;
    return false;
  }),
            0u);
  EXPECT_EQ(calls, 0u);
}

TEST(CompressedCsr, SolveEmitsDecodeBytesCounter) {
  const EdgeList g = gen::random_connected_gnm(2000, 16000, 27);
  BccOptions opt;
  opt.algorithm = BccAlgorithm::kFastBcc;
  opt.threads = 4;
  opt.csr_backend = CsrBackend::kCompressed;
  const BccResult r = biconnected_components(g, opt);
  const auto it =
      std::find_if(r.trace.counters.begin(), r.trace.counters.end(),
                   [](const TraceCounterTotal& c) {
                     return c.name == "csr_decode_bytes";
                   });
  ASSERT_NE(it, r.trace.counters.end());
  EXPECT_GT(it->total, 0.0);
}

}  // namespace
}  // namespace parbcc
