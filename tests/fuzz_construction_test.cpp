#include <gtest/gtest.h>

#include <algorithm>

#include "core/bcc.hpp"
#include "core/incremental.hpp"
#include "core/validate.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

/// Construction-based fuzzing: graphs are assembled from operations
/// whose effect on the block structure is known exactly (each operation
/// glues one fresh block onto an anchor vertex), so the expected number
/// of blocks, bridges, cut vertices and components is tracked on the
/// side with no reference algorithm in the loop at all.

namespace parbcc {
namespace {

struct Builder {
  EdgeList g;
  std::vector<vid> blocks_of;  // per vertex
  vid blocks = 0;
  vid bridges = 0;
  vid components = 0;
  Xoshiro256 rng;

  explicit Builder(std::uint64_t seed) : rng(seed) { g.n = 0; }

  vid fresh_vertex() {
    blocks_of.push_back(0);
    return g.n++;
  }

  /// Anchor for a new block: either an existing vertex (growing its
  /// component) or a fresh one (starting a new component).
  vid pick_anchor() {
    if (g.n == 0 || rng.below(5) == 0) {
      ++components;
      return fresh_vertex();
    }
    return static_cast<vid>(rng.below(g.n));
  }

  void add_bridge() {
    const vid a = pick_anchor();
    const vid b = fresh_vertex();
    g.add_edge(a, b);
    ++blocks;
    ++bridges;
    ++blocks_of[a];
    ++blocks_of[b];
  }

  void add_cycle(vid len) {
    const vid a = pick_anchor();
    vid prev = a;
    for (vid i = 1; i < len; ++i) {
      const vid v = fresh_vertex();
      g.add_edge(prev, v);
      ++blocks_of[v];
      prev = v;
    }
    g.add_edge(prev, a);
    ++blocks;
    ++blocks_of[a];
    // Interior vertices got counted once per incident edge pair; fix:
    // they belong to exactly this one block.
    for (vid v = g.n - (len - 1); v < g.n; ++v) blocks_of[v] = 1;
  }

  void add_clique(vid size) {
    const vid a = pick_anchor();
    std::vector<vid> members{a};
    for (vid i = 1; i < size; ++i) members.push_back(fresh_vertex());
    for (std::size_t i = 0; i < members.size(); ++i) {
      for (std::size_t j = i + 1; j < members.size(); ++j) {
        g.add_edge(members[i], members[j]);
      }
    }
    ++blocks;
    ++blocks_of[a];
    for (std::size_t i = 1; i < members.size(); ++i) {
      blocks_of[members[i]] = 1;
    }
  }

  void add_isolated() {
    fresh_vertex();
    ++components;
  }

  vid expected_cuts() const {
    vid count = 0;
    for (const vid b : blocks_of) count += b >= 2 ? 1 : 0;
    return count;
  }
};

class FuzzParam : public ::testing::TestWithParam<int> {};

TEST_P(FuzzParam, TrackedStructureMatchesEveryAlgorithm) {
  const int seed = GetParam();
  Builder b(static_cast<std::uint64_t>(seed) * 77 + 5);
  const int ops = 60;
  for (int k = 0; k < ops; ++k) {
    switch (b.rng.below(4)) {
      case 0:
        b.add_bridge();
        break;
      case 1:
        b.add_cycle(static_cast<vid>(3 + b.rng.below(6)));
        break;
      case 2:
        b.add_clique(static_cast<vid>(3 + b.rng.below(4)));
        break;
      default:
        b.add_isolated();
        break;
    }
  }

  Executor ex(3);
  for (const BccAlgorithm algorithm :
       {BccAlgorithm::kSequential, BccAlgorithm::kTvSmp, BccAlgorithm::kTvOpt,
        BccAlgorithm::kTvFilter, BccAlgorithm::kFastBcc}) {
    BccOptions opt;
    opt.algorithm = algorithm;
    const BccResult r = biconnected_components(ex, b.g, opt);
    ASSERT_EQ(r.num_components, b.blocks) << to_string(algorithm);
    ASSERT_EQ(r.bridges.size(), b.bridges) << to_string(algorithm);
    vid cuts = 0;
    for (const auto a : r.is_articulation) cuts += a;
    ASSERT_EQ(cuts, b.expected_cuts()) << to_string(algorithm);
    ASSERT_TRUE(validate_bcc(ex, b.g, r).ok) << to_string(algorithm);
  }

  // The incremental structure, fed the edges in shuffled order, must
  // land on the same final answers.
  auto edges = b.g.edges;
  std::shuffle(edges.begin(), edges.end(), b.rng);
  IncrementalBiconnectivity inc(b.g.n);
  for (const Edge& e : edges) inc.insert_edge(e.u, e.v);
  EXPECT_EQ(inc.num_blocks(), b.blocks);
  EXPECT_EQ(inc.num_bridges(), b.bridges);
  EXPECT_EQ(inc.num_cut_vertices(), b.expected_cuts());
  EXPECT_EQ(inc.num_components(), b.components);
}

INSTANTIATE_TEST_SUITE_P(Sweep, FuzzParam, ::testing::Range(0, 25));

/// Generator-driven leg of the fuzz sweep: no tracked structure, so
/// correctness is cross-algorithm agreement plus the independent
/// validator.  Power-law instances push the hub-splitting paths the
/// builder graphs (bounded block sizes) never reach.
class PowerLawFuzzParam : public ::testing::TestWithParam<int> {};

TEST_P(PowerLawFuzzParam, AlgorithmsAgreeAndValidateOnPowerLaw) {
  const int seed = GetParam();
  const vid n = static_cast<vid>(400 + 130 * seed);
  const eid m = static_cast<eid>(n) * static_cast<eid>(3 + seed % 4);
  const double alpha = 2.05 + 0.1 * (seed % 5);
  const EdgeList g =
      gen::random_power_law(n, m, alpha, static_cast<std::uint64_t>(seed));

  Executor ex(3);
  BccOptions base;
  base.algorithm = BccAlgorithm::kSequential;
  const BccResult ref = biconnected_components(ex, g, base);
  for (const BccAlgorithm algorithm :
       {BccAlgorithm::kTvSmp, BccAlgorithm::kTvOpt, BccAlgorithm::kTvFilter,
        BccAlgorithm::kFastBcc}) {
    BccOptions opt;
    opt.algorithm = algorithm;
    const BccResult r = biconnected_components(ex, g, opt);
    ASSERT_EQ(r.num_components, ref.num_components) << to_string(algorithm);
    ASSERT_EQ(r.bridges, ref.bridges) << to_string(algorithm);
    ASSERT_EQ(r.is_articulation, ref.is_articulation) << to_string(algorithm);
    ASSERT_TRUE(validate_bcc(ex, g, r).ok) << to_string(algorithm);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, PowerLawFuzzParam, ::testing::Range(0, 8));

}  // namespace
}  // namespace parbcc
