#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "connectivity/shiloach_vishkin.hpp"
#include "core/batch_dynamic.hpp"
#include "core/bcc.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"
#include "util/trace.hpp"

namespace parbcc {
namespace {

/// The engine's contract: after every batch the standing result equals
/// a from-scratch static solve of the standing graph.  Labels are
/// partition-canonical (bcc_result.hpp), so both sides are compared
/// after first-appearance normalization — identical partitions
/// normalize to identical vectors, any algorithm is a valid oracle.
void expect_matches_static(const BatchDynamicBcc& dyn) {
  BccOptions opt;
  opt.compute_cut_info = true;
  const BccResult ref = biconnected_components(dyn.graph(), opt);
  ASSERT_EQ(dyn.result().num_components, ref.num_components);
  std::vector<vid> got = dyn.result().edge_component;
  std::vector<vid> want = ref.edge_component;
  normalize_labels(got);
  normalize_labels(want);
  ASSERT_EQ(got, want);
  ASSERT_EQ(dyn.result().is_articulation, ref.is_articulation);
  ASSERT_EQ(dyn.result().bridges, ref.bridges);
}

/// One random edit stream: alternating batches of random insertions
/// (fresh endpoints; duplicates of standing edges allowed) and random
/// unique deletions, each batch checked against the static oracle.
void run_fuzz_stream(int threads, std::uint64_t seed,
                     double damage_threshold) {
  const vid n = 300;
  Xoshiro256 rng(splitmix64(seed) ^ 0x5eed);
  EdgeList base = gen::random_gnm(n, 600, seed);

  BccContext ctx(threads);
  BatchDynamicOptions opt;
  opt.damage_threshold = damage_threshold;
  BatchDynamicBcc dyn(ctx, base, opt);
  expect_matches_static(dyn);

  for (int round = 0; round < 8; ++round) {
    std::vector<Edge> ins;
    const int num_ins = static_cast<int>(rng() % 12);
    for (int i = 0; i < num_ins; ++i) {
      const vid u = static_cast<vid>(rng() % n);
      vid v = static_cast<vid>(rng() % n);
      if (u == v) v = (v + 1) % n;
      ins.push_back({u, v});
    }
    std::vector<eid> dels;
    const eid m = dyn.graph().m();
    if (m > 0) {
      const int num_del = static_cast<int>(rng() % std::min<eid>(m, 12));
      std::vector<std::uint8_t> used(m, 0);
      for (int i = 0; i < num_del; ++i) {
        const eid e = static_cast<eid>(rng() % m);
        if (used[e]) continue;
        used[e] = 1;
        dels.push_back(e);
      }
    }
    dyn.apply_batch(ins, dels);
    expect_matches_static(dyn);
  }
}

class BatchDynamicFuzz
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(BatchDynamicFuzz, MatchesStaticSolveAfterEveryBatch) {
  const auto [threads, seed] = GetParam();
  // Even seeds use the default threshold (small graphs cross it, so
  // both the splice and the fallback path run); odd seeds never fall
  // back, hammering the region splice alone.
  run_fuzz_stream(threads, seed, seed % 2 == 0 ? 0.15 : 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    SeedsByThreads, BatchDynamicFuzz,
    ::testing::Combine(::testing::Values(1, 4, 12),
                       ::testing::Values(0u, 1u, 2u, 3u, 4u, 5u, 6u, 7u)));

TEST(BatchDynamic, StructuredEdits) {
  // Path 0-1-2-3-4: all bridges.
  BccContext ctx(4);
  BatchDynamicOptions opt;
  opt.damage_threshold = 1.0;  // exercise the splice on a tiny graph
  BatchDynamicBcc dyn(ctx, gen::path(5), opt);
  ASSERT_EQ(dyn.result().num_components, 4u);
  ASSERT_EQ(dyn.result().bridges.size(), 4u);

  // Close the cycle: one block, no articulation points.
  const Edge close{0, 4};
  dyn.apply_batch({&close, 1}, {});
  expect_matches_static(dyn);
  ASSERT_EQ(dyn.result().num_components, 1u);
  ASSERT_TRUE(dyn.result().bridges.empty());

  // Delete one cycle edge: back to a path of bridges.
  const eid victim = 2;
  dyn.apply_batch({}, {&victim, 1});
  expect_matches_static(dyn);
  ASSERT_EQ(dyn.result().num_components, 4u);
  ASSERT_EQ(dyn.result().bridges.size(), 4u);
}

TEST(BatchDynamic, ComponentJoiningInsertions) {
  // Two disjoint triangles; batched insertions weld them into one
  // block (the anchor-path interaction case: the second insertion's
  // cycle runs through blocks of both old components).
  EdgeList g(6, {{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}});
  BccContext ctx(2);
  BatchDynamicOptions opt;
  opt.damage_threshold = 1.0;
  BatchDynamicBcc dyn(ctx, g, opt);
  ASSERT_EQ(dyn.result().num_components, 2u);

  const std::vector<Edge> weld{{0, 3}, {1, 4}};
  dyn.apply_batch(weld, {});
  expect_matches_static(dyn);
  ASSERT_EQ(dyn.result().num_components, 1u);
  ASSERT_FALSE(dyn.last_batch().fell_back);
}

TEST(BatchDynamic, ParallelEdgeUnbridges) {
  EdgeList g(3, {{0, 1}, {1, 2}});
  BccContext ctx(1);
  BatchDynamicOptions opt;
  opt.damage_threshold = 1.0;
  BatchDynamicBcc dyn(ctx, g, opt);
  ASSERT_EQ(dyn.result().bridges.size(), 2u);

  const Edge dup{0, 1};
  dyn.apply_batch({&dup, 1}, {});
  expect_matches_static(dyn);
  ASSERT_EQ(dyn.result().bridges.size(), 1u);
}

TEST(BatchDynamic, BridgeDeletionDisconnects) {
  EdgeList g(6, {{0, 1}, {1, 2}, {2, 0}, {2, 3}, {3, 4}, {4, 5}, {5, 3}});
  BccContext ctx(2);
  BatchDynamicOptions opt;
  opt.damage_threshold = 1.0;
  BatchDynamicBcc dyn(ctx, g, opt);

  const eid bridge = 3;  // {2, 3}
  dyn.apply_batch({}, {&bridge, 1});
  expect_matches_static(dyn);
  ASSERT_EQ(dyn.result().num_components, 2u);

  // Reconnect across the (stale-true for the incremental tracker) cut,
  // which exercises the visit-stamp re-anchoring path.
  const Edge rejoin{0, 4};
  dyn.apply_batch({&rejoin, 1}, {});
  expect_matches_static(dyn);
}

TEST(BatchDynamic, EmptyBatchIsIdentity) {
  BccContext ctx(1);
  BatchDynamicBcc dyn(ctx, gen::clique_chain(3, 4), {});
  const std::vector<vid> before = dyn.result().edge_component;
  dyn.apply_batch({}, {});
  expect_matches_static(dyn);
  ASSERT_EQ(dyn.result().edge_component, before);
  ASSERT_EQ(dyn.last_batch().touched_vertices, 0u);
  ASSERT_EQ(dyn.last_batch().region_edges, 0u);
}

TEST(BatchDynamic, FallbackBoundary) {
  // threshold 0 forces the fallback on any non-empty damage; threshold
  // 1 never falls back.  Same edit, both sides of the boundary.
  for (const double threshold : {0.0, 1.0}) {
    BccContext ctx(2);
    BatchDynamicOptions opt;
    opt.damage_threshold = threshold;
    BatchDynamicBcc dyn(ctx, gen::grid_torus(5, 5), opt);
    const Edge chord{0, 12};
    dyn.apply_batch({&chord, 1}, {});
    expect_matches_static(dyn);
    ASSERT_EQ(dyn.last_batch().fell_back, threshold == 0.0);
    ASSERT_EQ(dyn.fallbacks(), threshold == 0.0 ? 1u : 0u);
    ASSERT_GT(dyn.last_batch().touched_vertices, 0u);
  }
}

TEST(BatchDynamic, DenseRegionTakesCertificateRoute) {
  // K20 region: density ~9.5 edges/vertex, far past the default
  // certificate_density of 3 — the region solve must go through the
  // k = 2 BFS certificate and scatter the omitted edges.
  BccContext ctx(4);
  BatchDynamicOptions opt;
  opt.damage_threshold = 1.0;
  BatchDynamicBcc dyn(ctx, gen::complete(20), opt);

  const eid victim = 0;
  const Edge chord{0, 1};
  dyn.apply_batch({&chord, 1}, {&victim, 1});
  expect_matches_static(dyn);
  ASSERT_GT(dyn.last_batch().certificate_edges, 0u);
  ASSERT_LT(dyn.last_batch().certificate_edges,
            dyn.last_batch().region_edges);
}

TEST(BatchDynamic, SparseRegionSolvedDirectly) {
  BccContext ctx(1);
  BatchDynamicOptions opt;
  opt.damage_threshold = 1.0;
  BatchDynamicBcc dyn(ctx, gen::path(20), opt);
  const Edge chord{0, 5};
  dyn.apply_batch({&chord, 1}, {});
  expect_matches_static(dyn);
  ASSERT_EQ(dyn.last_batch().certificate_edges, 0u);
}

TEST(BatchDynamic, RejectsMalformedBatches) {
  BccContext ctx(1);
  BatchDynamicBcc dyn(ctx, gen::cycle(4), {});
  const Edge loop{1, 1};
  EXPECT_THROW(dyn.apply_batch({&loop, 1}, {}), std::invalid_argument);
  const Edge oob{0, 9};
  EXPECT_THROW(dyn.apply_batch({&oob, 1}, {}), std::invalid_argument);
  const eid bad = 99;
  EXPECT_THROW(dyn.apply_batch({}, {&bad, 1}), std::invalid_argument);
  const std::vector<eid> dup{0, 0};
  EXPECT_THROW(dyn.apply_batch({}, dup), std::invalid_argument);
  // The standing state survives a rejected batch.
  expect_matches_static(dyn);
}

TEST(BatchDynamic, EmitsBatchSpansAndCounters) {
  Trace trace(4);
  BccContext ctx(4);
  BatchDynamicOptions opt;
  opt.damage_threshold = 1.0;
  opt.trace = &trace;
  BatchDynamicBcc dyn(ctx, gen::grid_torus(4, 4), opt);

  const Trace::Mark mark = trace.mark();
  const Edge chord{0, 5};
  dyn.apply_batch({&chord, 1}, {});
  const TraceReport report = trace.report_since(mark);

  ASSERT_NE(report.find_path("batch_apply"), nullptr);
  ASSERT_NE(report.find_path("batch_apply/damage_probe"), nullptr);
  ASSERT_NE(report.find_path("batch_apply/certificate_solve"), nullptr);
  EXPECT_GT(report.counter_total("batch_touched_vertices"), 0.0);
  EXPECT_EQ(report.counter_total("batch_fallbacks"), 0.0);

  // A forced fallback charges the counter and skips certificate_solve.
  const Trace::Mark mark2 = trace.mark();
  BatchDynamicOptions strict = opt;
  strict.damage_threshold = 0.0;
  BatchDynamicBcc dyn2(ctx, gen::grid_torus(4, 4), strict);
  const Edge chord2{1, 6};
  dyn2.apply_batch({&chord2, 1}, {});
  const TraceReport report2 = trace.report_since(mark2);
  EXPECT_EQ(report2.counter_total("batch_fallbacks"), 1.0);
  EXPECT_EQ(report2.find_path("batch_apply/certificate_solve"), nullptr);
}

TEST(BatchDynamic, RenormThresholdComputedIn64Bit) {
  // The threshold is 2(n + m) + 1024.  Near the top of the 32-bit id
  // space the old vid-typed expression wrapped around to a tiny value,
  // silently forcing a renormalization on every batch; the fix keeps
  // the arithmetic in 64 bits.
  EXPECT_EQ(renormalize_label_threshold(3, 4), 2u * 7u + 1024u);
  EXPECT_GT(renormalize_label_threshold(1'500'000'000ull, 1'000'000'000ull),
            std::uint64_t{UINT32_MAX});
  EXPECT_EQ(renormalize_label_threshold(std::uint64_t{1} << 31,
                                        std::uint64_t{1} << 31),
            (std::uint64_t{1} << 33) + 1024);
}

TEST(BatchDynamic, ForcedRenormalizationKeepsPartition) {
  // renorm_label_limit = 1 triggers the copy-on-renormalize path after
  // every batch: the standing result must keep matching the static
  // solve, and the label space must be contiguous again each time.
  BccContext ctx(2);
  BatchDynamicOptions opt;
  opt.renorm_label_limit = 1;
  BatchDynamicBcc dyn(ctx, gen::random_connected_gnm(120, 260, 9), opt);
  Xoshiro256 rng(9);
  for (int round = 0; round < 8; ++round) {
    std::vector<Edge> ins;
    for (int i = 0; i < 5; ++i) {
      const vid u = static_cast<vid>(rng() % 120);
      ins.push_back({u, static_cast<vid>((u + 1 + rng() % 118) % 120)});
    }
    const eid del = static_cast<eid>(rng() % dyn.graph().m());
    dyn.apply_batch(ins, {&del, 1});
    expect_matches_static(dyn);
    EXPECT_EQ(dyn.label_bound(), dyn.result().num_components);
    EXPECT_EQ(dyn.version(), static_cast<std::uint64_t>(round + 1));
  }
}

TEST(BatchDynamic, LongStreamKeepsBooks) {
  // A longer stream on one engine: stats stay coherent and fallbacks
  // accumulate monotonically.
  BccContext ctx(4);
  BatchDynamicBcc dyn(ctx, gen::random_connected_gnm(200, 500, 7), {});
  Xoshiro256 rng(7);
  std::uint64_t last_fallbacks = 0;
  for (int round = 0; round < 12; ++round) {
    std::vector<Edge> ins;
    for (int i = 0; i < 5; ++i) {
      const vid u = static_cast<vid>(rng() % 200);
      const vid v = static_cast<vid>((u + 1 + rng() % 198) % 200);
      ins.push_back({u, v});
    }
    const eid del = static_cast<eid>(rng() % dyn.graph().m());
    dyn.apply_batch(ins, {&del, 1});
    expect_matches_static(dyn);
    ASSERT_GE(dyn.fallbacks(), last_fallbacks);
    ASSERT_EQ(dyn.fallbacks() > last_fallbacks, dyn.last_batch().fell_back);
    last_fallbacks = dyn.fallbacks();
    if (dyn.last_batch().fell_back) {
      ASSERT_EQ(dyn.last_batch().certificate_edges, 0u);
    }
  }
}

}  // namespace
}  // namespace parbcc
