#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "spanning/boruvka_msf.hpp"
#include "spanning/forest.hpp"
#include "test_util.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace parbcc {
namespace {

std::vector<std::uint32_t> random_weights(eid m, std::uint64_t seed,
                                          std::uint32_t bound = 1000000) {
  Xoshiro256 rng(seed);
  std::vector<std::uint32_t> w(m);
  for (auto& x : w) x = static_cast<std::uint32_t>(rng.below(bound));
  return w;
}

TEST(Kruskal, HandCheckedTriangle) {
  EdgeList g(3, {{0, 1}, {1, 2}, {2, 0}});
  const std::vector<std::uint32_t> w = {5, 2, 9};
  const MsfResult r = kruskal_msf(g.n, g.edges, w);
  EXPECT_EQ(r.total_weight, 7u);
  EXPECT_EQ(r.tree_edges, (std::vector<eid>{0, 1}));
  EXPECT_EQ(r.num_components, 1u);
}

class MsfParam : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(MsfParam, BoruvkaMatchesKruskalWeight) {
  const auto [threads, seed] = GetParam();
  Executor ex(threads);
  const EdgeList g = gen::random_gnm(2000, 6000, seed);
  const auto w = random_weights(g.m(), seed * 7 + 1);
  const MsfResult par = boruvka_msf(ex, g.n, g.edges, w);
  const MsfResult seq = kruskal_msf(g.n, g.edges, w);
  EXPECT_EQ(par.total_weight, seq.total_weight);
  EXPECT_EQ(par.num_components, seq.num_components);
  EXPECT_EQ(par.tree_edges.size(), seq.tree_edges.size());
  // The forest must actually be a maximal forest.
  EXPECT_TRUE(is_forest(g.n, g.edges, par.tree_edges));
}

TEST_P(MsfParam, DistinctWeightsGiveTheUniqueMsf) {
  const auto [threads, seed] = GetParam();
  Executor ex(threads);
  const EdgeList g = gen::random_connected_gnm(800, 3000, seed);
  // Distinct weights: identity permutation of ids shuffled.
  std::vector<std::uint32_t> w(g.m());
  for (eid e = 0; e < g.m(); ++e) w[e] = e;
  Xoshiro256 rng(seed + 3);
  std::shuffle(w.begin(), w.end(), rng);
  MsfResult par = boruvka_msf(ex, g.n, g.edges, w);
  const MsfResult seq = kruskal_msf(g.n, g.edges, w);
  std::sort(par.tree_edges.begin(), par.tree_edges.end());
  EXPECT_EQ(par.tree_edges, seq.tree_edges);  // unique MSF: exact match
}

INSTANTIATE_TEST_SUITE_P(Sweep, MsfParam,
                         ::testing::Combine(::testing::Values(1, 2, 4, 8),
                                            ::testing::Values(1, 2, 3, 4)));

TEST(Boruvka, UniformWeightsReduceToSpanningForest) {
  Executor ex(4);
  const EdgeList g = gen::random_gnm(1000, 1500, 5);
  const std::vector<std::uint32_t> w(g.m(), 7);
  const MsfResult r = boruvka_msf(ex, g.n, g.edges, w);
  EXPECT_TRUE(is_forest(g.n, g.edges, r.tree_edges));
  EXPECT_EQ(r.num_components, testutil::component_count(g));
  EXPECT_EQ(r.total_weight, 7u * r.tree_edges.size());
}

TEST(Boruvka, EmptyAndSingletonInputs) {
  Executor ex(2);
  EdgeList empty(0, {});
  const MsfResult r0 =
      boruvka_msf(ex, empty.n, empty.edges, std::vector<std::uint32_t>{});
  EXPECT_EQ(r0.num_components, 0u);
  EdgeList lone(4, {});
  const MsfResult r1 =
      boruvka_msf(ex, lone.n, lone.edges, std::vector<std::uint32_t>{});
  EXPECT_EQ(r1.num_components, 4u);
  EXPECT_TRUE(r1.tree_edges.empty());
}

TEST(Boruvka, ParallelEdgesPickTheCheaper) {
  Executor ex(2);
  EdgeList g(2, {{0, 1}, {0, 1}});
  const std::vector<std::uint32_t> w = {9, 3};
  const MsfResult r = boruvka_msf(ex, g.n, g.edges, w);
  ASSERT_EQ(r.tree_edges.size(), 1u);
  EXPECT_EQ(r.tree_edges[0], 1u);
  EXPECT_EQ(r.total_weight, 3u);
}

TEST(Boruvka, MismatchedSizesThrow) {
  Executor ex(1);
  EdgeList g(2, {{0, 1}});
  EXPECT_THROW(
      boruvka_msf(ex, g.n, g.edges, std::vector<std::uint32_t>{1, 2}),
      std::invalid_argument);
}

}  // namespace
}  // namespace parbcc
