#include <gtest/gtest.h>

#include <atomic>
#include <limits>
#include <numeric>
#include <set>
#include <vector>

#include "util/barrier.hpp"
#include "util/bitvector.hpp"
#include "util/padded.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace parbcc {
namespace {

TEST(Barrier, SingleThreadNeverBlocks) {
  Barrier barrier(1);
  for (int i = 0; i < 100; ++i) barrier.wait();
}

TEST(Barrier, PhasesStaySynchronized) {
  constexpr int kThreads = 4;
  constexpr int kPhases = 200;
  Executor ex(kThreads);
  std::atomic<int> counter{0};
  std::vector<int> seen_at_phase(kPhases, -1);
  ex.run([&](int tid) {
    for (int phase = 0; phase < kPhases; ++phase) {
      counter.fetch_add(1);
      ex.barrier().wait();
      // After the barrier every thread must observe the full increment
      // count of this phase.
      const int expect = kThreads * (phase + 1);
      EXPECT_EQ(counter.load(), expect) << "tid " << tid;
      ex.barrier().wait();
    }
  });
}

TEST(Executor, RunExecutesEveryTid) {
  Executor ex(6);
  std::vector<std::atomic<int>> hits(6);
  for (auto& h : hits) h.store(0);
  ex.run([&](int tid) { hits[static_cast<std::size_t>(tid)].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Executor, RunIsReusable) {
  Executor ex(3);
  std::atomic<int> total{0};
  for (int round = 0; round < 50; ++round) {
    ex.run([&](int) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 150);
}

TEST(Executor, ParallelForCoversRangeExactlyOnce) {
  for (const int threads : {1, 2, 5}) {
    Executor ex(threads);
    const std::size_t n = 10007;
    std::vector<std::atomic<int>> hits(n);
    for (auto& h : hits) h.store(0);
    ex.parallel_for(n, [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "index " << i << " threads " << threads;
    }
  }
}

TEST(Executor, ParallelForDynamicCoversRangeExactlyOnce) {
  Executor ex(4);
  const std::size_t n = 5000;
  std::vector<std::atomic<int>> hits(n);
  for (auto& h : hits) h.store(0);
  ex.parallel_for_dynamic(n, 64, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(hits[i].load(), 1);
}

TEST(Executor, ParallelForDynamicSurvivesOversizedGrain) {
  // Regression: `begin + grain` used to be computed without clamping,
  // so a grain near SIZE_MAX wrapped the chunk end past zero (empty
  // chunk) while the shared counter wrapped back to small begins —
  // duplicated indices, or with p >= 2 a cycle that never terminated.
  Executor ex(4);
  const std::size_t n = 1000;
  std::vector<std::atomic<int>> hits(n);
  for (auto& h : hits) h.store(0);
  ex.parallel_for_dynamic(n, std::size_t{1} << 63,
                          [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(hits[i].load(), 1);

  // Any grain > n must behave exactly like one whole-range chunk.
  for (auto& h : hits) h.store(0);
  ex.parallel_for_dynamic(n, n + 1,
                          [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(hits[i].load(), 1);
}

TEST(Executor, ParallelForEmptyAndSingleton) {
  Executor ex(4);
  int count = 0;
  ex.parallel_for(0, [&](std::size_t) { ++count; });
  EXPECT_EQ(count, 0);
  ex.parallel_for(1, [&](std::size_t i) { count += static_cast<int>(i) + 1; });
  EXPECT_EQ(count, 1);
}

TEST(Executor, BlockRangePartitionsWithoutGapsOrOverlap) {
  for (const std::size_t n : {0ul, 1ul, 7ul, 100ul, 1001ul}) {
    for (const int p : {1, 2, 3, 8, 16}) {
      std::size_t expected_begin = 0;
      for (int tid = 0; tid < p; ++tid) {
        const auto [begin, end] = Executor::block_range(n, p, tid);
        EXPECT_EQ(begin, expected_begin);
        EXPECT_LE(begin, end);
        expected_begin = end;
      }
      EXPECT_EQ(expected_begin, n);
    }
  }
}

TEST(Executor, BlockRangeSurvivesHugeN) {
  // n * tid wraps 64-bit multiplication for n > SIZE_MAX / p; the
  // partition must still be exact (the products are taken in 128-bit).
  const std::size_t kMax = std::numeric_limits<std::size_t>::max();
  for (const std::size_t n : {kMax, kMax - 1, kMax / 2 + 3}) {
    for (const int p : {2, 3, 12, 16}) {
      std::size_t expected_begin = 0;
      for (int tid = 0; tid < p; ++tid) {
        const auto [begin, end] = Executor::block_range(n, p, tid);
        ASSERT_EQ(begin, expected_begin) << "n=" << n << " p=" << p;
        ASSERT_LE(begin, end);
        // Balanced: every block within one element of n / p.
        ASSERT_LE(end - begin, n / static_cast<std::size_t>(p) + 1);
        expected_begin = end;
      }
      ASSERT_EQ(expected_begin, n);
    }
  }
  // Exact boundary: the largest n whose product with tid = p - 1 still
  // fits in 64 bits, and its successor (first wrapping value).
  const int p = 12;
  const std::size_t fits = kMax / (p - 1);
  for (const std::size_t n : {fits, fits + 1}) {
    std::size_t expected_begin = 0;
    for (int tid = 0; tid < p; ++tid) {
      const auto [begin, end] = Executor::block_range(n, p, tid);
      ASSERT_EQ(begin, expected_begin) << "n=" << n;
      expected_begin = end;
    }
    ASSERT_EQ(expected_begin, n);
  }
}

TEST(Executor, PropagatesExceptionFromCaller) {
  Executor ex(4);
  EXPECT_THROW(
      ex.run([](int tid) {
        if (tid == 0) throw std::runtime_error("boom");
      }),
      std::runtime_error);
  // The pool must still be usable afterwards.
  std::atomic<int> hits{0};
  ex.run([&](int) { hits.fetch_add(1); });
  EXPECT_EQ(hits.load(), 4);
}

TEST(Executor, PropagatesExceptionFromWorker) {
  Executor ex(4);
  EXPECT_THROW(
      ex.run([](int tid) {
        if (tid == 3) throw std::runtime_error("worker boom");
      }),
      std::runtime_error);
  std::atomic<int> hits{0};
  ex.run([&](int) { hits.fetch_add(1); });
  EXPECT_EQ(hits.load(), 4);
}

TEST(Executor, ParallelForPropagatesExceptions) {
  Executor ex(3);
  EXPECT_THROW(ex.parallel_for(1000,
                               [](std::size_t i) {
                                 if (i == 999) throw std::logic_error("x");
                               }),
               std::logic_error);
}

TEST(Executor, RejectsNonPositiveThreadCount) {
  EXPECT_THROW(Executor(0), std::invalid_argument);
  EXPECT_THROW(Executor(-3), std::invalid_argument);
}

TEST(Padded, ElementsDoNotShareCacheLines) {
  std::vector<Padded<int>> a(4);
  const auto* p0 = reinterpret_cast<const char*>(&a[0]);
  const auto* p1 = reinterpret_cast<const char*>(&a[1]);
  EXPECT_GE(p1 - p0, static_cast<std::ptrdiff_t>(kCacheLine));
}

TEST(Rng, SplitMix64IsDeterministicAndSpreads) {
  EXPECT_EQ(splitmix64(1), splitmix64(1));
  std::set<std::uint64_t> values;
  for (std::uint64_t i = 0; i < 1000; ++i) values.insert(splitmix64(i));
  EXPECT_EQ(values.size(), 1000u);
}

TEST(Rng, XoshiroSameSeedSameStream) {
  Xoshiro256 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, XoshiroBelowStaysInBound) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
}

TEST(Rng, XoshiroBelowHitsAllResidues) {
  Xoshiro256 rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(BitVector, SetGetClearCount) {
  BitVector bits(130);
  EXPECT_EQ(bits.count(), 0u);
  bits.set(0);
  bits.set(63);
  bits.set(64);
  bits.set(129);
  EXPECT_TRUE(bits.get(0));
  EXPECT_TRUE(bits.get(63));
  EXPECT_TRUE(bits.get(64));
  EXPECT_TRUE(bits.get(129));
  EXPECT_FALSE(bits.get(1));
  EXPECT_EQ(bits.count(), 4u);
  bits.clear(63);
  EXPECT_FALSE(bits.get(63));
  EXPECT_EQ(bits.count(), 3u);
  bits.reset();
  EXPECT_EQ(bits.count(), 0u);
}

TEST(AtomicBitVector, TestAndSetReportsFirstWinnerOnly) {
  AtomicBitVector bits(100);
  EXPECT_TRUE(bits.test_and_set(37));
  EXPECT_FALSE(bits.test_and_set(37));
  EXPECT_TRUE(bits.get(37));
  EXPECT_FALSE(bits.get(36));
}

TEST(AtomicBitVector, ConcurrentClaimsAreExclusive) {
  constexpr std::size_t n = 4096;
  AtomicBitVector bits(n);
  Executor ex(4);
  std::vector<std::atomic<int>> winners(n);
  for (auto& w : winners) w.store(0);
  ex.run([&](int) {
    for (std::size_t i = 0; i < n; ++i) {
      if (bits.test_and_set(i)) winners[i].fetch_add(1);
    }
  });
  for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(winners[i].load(), 1);
}

}  // namespace
}  // namespace parbcc
