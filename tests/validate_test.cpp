#include <gtest/gtest.h>

#include "core/bcc.hpp"
#include "core/validate.hpp"
#include "graph/generators.hpp"
#include "util/thread_pool.hpp"

namespace parbcc {
namespace {

BccResult solve(Executor& ex, const EdgeList& g, BccAlgorithm algorithm) {
  BccOptions opt;
  opt.algorithm = algorithm;
  return biconnected_components(ex, g, opt);
}

TEST(Validate, AcceptsCorrectResultsAcrossFamilies) {
  Executor ex(3);
  const EdgeList graphs[] = {
      gen::cycle(10),
      gen::path(20),
      gen::star(15),
      gen::clique_chain(5, 4),
      gen::random_connected_gnm(500, 1500, 3),
      gen::random_cactus(30, 6, 4),
      gen::grid_torus(6, 7),
      gen::wheel(12),
      gen::complete_bipartite(4, 5),
      gen::barbell(5, 2),
      gen::random_gnm(200, 150, 9),  // disconnected
  };
  for (const EdgeList& g : graphs) {
    for (const BccAlgorithm algorithm :
         {BccAlgorithm::kSequential, BccAlgorithm::kTvOpt,
          BccAlgorithm::kTvFilter}) {
      const BccResult r = solve(ex, g, algorithm);
      const ValidationReport report = validate_bcc(ex, g, r);
      EXPECT_TRUE(report.ok)
          << to_string(algorithm) << ": " << report.message;
    }
  }
}

TEST(Validate, AcceptsLargeBlockPath) {
  // > 64 edges in one block exercises the Hopcroft-Tarjan sub-check.
  Executor ex(2);
  const EdgeList g = gen::random_connected_gnm(300, 2000, 11);
  const BccResult r = solve(ex, g, BccAlgorithm::kTvFilter);
  EXPECT_TRUE(validate_bcc(ex, g, r).ok);
}

TEST(Validate, RejectsOutOfRangeLabel) {
  Executor ex(1);
  const EdgeList g = gen::cycle(4);
  BccResult r = solve(ex, g, BccAlgorithm::kSequential);
  r.edge_component[0] = 99;
  EXPECT_FALSE(validate_bcc(ex, g, r).ok);
}

TEST(Validate, RejectsSplitBlock) {
  Executor ex(1);
  // A cycle is one block; declaring two labels must fail (a
  // fundamental cycle would carry two labels).
  const EdgeList g = gen::cycle(6);
  BccResult r = solve(ex, g, BccAlgorithm::kSequential);
  r.num_components = 2;
  r.edge_component[3] = 1;
  r.is_articulation.clear();  // skip the cut-info consistency check
  const ValidationReport report = validate_bcc(ex, g, r);
  EXPECT_FALSE(report.ok);
}

TEST(Validate, RejectsMergedBlocks) {
  Executor ex(1);
  // Two triangles sharing a vertex: merging them into one label leaves
  // an internal cut vertex.
  EdgeList g(5, {{0, 1}, {1, 2}, {2, 0}, {2, 3}, {3, 4}, {4, 2}});
  BccResult r = solve(ex, g, BccAlgorithm::kSequential);
  for (auto& c : r.edge_component) c = 0;
  r.num_components = 1;
  r.is_articulation.clear();
  const ValidationReport report = validate_bcc(ex, g, r);
  EXPECT_FALSE(report.ok);
}

TEST(Validate, RejectsMergedBridges) {
  Executor ex(1);
  // Path: each edge its own block; merging two adjacent bridges fails
  // the vertex-deletion check.
  const EdgeList g = gen::path(4);
  BccResult r = solve(ex, g, BccAlgorithm::kSequential);
  r.edge_component = {0, 0, 1};
  r.num_components = 2;
  r.is_articulation.clear();
  EXPECT_FALSE(validate_bcc(ex, g, r).ok);
}

TEST(Validate, RejectsWrongArticulationFlags) {
  Executor ex(1);
  const EdgeList g = gen::path(4);
  BccResult r = solve(ex, g, BccAlgorithm::kSequential);
  r.is_articulation[0] = 1;
  EXPECT_FALSE(validate_bcc(ex, g, r).ok);
}

TEST(Validate, RejectsWrongBridgeList) {
  Executor ex(1);
  const EdgeList g = gen::path(4);
  BccResult r = solve(ex, g, BccAlgorithm::kSequential);
  r.bridges.pop_back();
  EXPECT_FALSE(validate_bcc(ex, g, r).ok);
}

TEST(Validate, EmptyGraphIsValid) {
  Executor ex(1);
  const EdgeList g(0, {});
  const BccResult r = solve(ex, g, BccAlgorithm::kSequential);
  EXPECT_TRUE(validate_bcc(ex, g, r).ok);
}

}  // namespace
}  // namespace parbcc
