#include <gtest/gtest.h>

#include <algorithm>
#include <utility>
#include <vector>

#include "core/bcc.hpp"
#include "graph/csr.hpp"
#include "graph/generators.hpp"
#include "util/thread_pool.hpp"

namespace parbcc {
namespace {

/// Naive sequential adjacency: per-vertex vector of (neighbor, edge id)
/// pairs, in edge-list order.  Deliberately the dumbest possible
/// construction so it shares nothing with the bucket-scatter builder.
std::vector<std::vector<std::pair<vid, eid>>> reference_adjacency(
    const EdgeList& g) {
  std::vector<std::vector<std::pair<vid, eid>>> adj(g.n);
  for (eid e = 0; e < g.m(); ++e) {
    adj[g.edges[e].u].push_back({g.edges[e].v, e});
    adj[g.edges[e].v].push_back({g.edges[e].u, e});
  }
  return adj;
}

/// Csr row contents must match the reference as multisets: the builder
/// is free to order a row however it likes (the order depends on the
/// thread count), but not to drop, duplicate, or misattribute an arc.
void expect_csr_matches(Executor& ex, const EdgeList& g) {
  const Csr csr = Csr::build(ex, g);
  const auto ref = reference_adjacency(g);

  ASSERT_EQ(csr.num_vertices(), g.n);
  ASSERT_EQ(csr.num_edges(), g.m());
  ASSERT_EQ(csr.offsets().size(), static_cast<std::size_t>(g.n) + 1);
  EXPECT_EQ(csr.offsets()[0], 0u);
  EXPECT_EQ(csr.offsets()[g.n], 2 * g.m());

  std::vector<eid> eid_count(g.m(), 0);
  for (vid v = 0; v < g.n; ++v) {
    ASSERT_EQ(csr.offsets()[v + 1] - csr.offsets()[v], ref[v].size())
        << "degree mismatch at v=" << v;
    const auto nbrs = csr.neighbors(v);
    const auto eids = csr.incident_edges(v);
    ASSERT_EQ(nbrs.size(), eids.size());
    std::vector<std::pair<vid, eid>> row;
    for (std::size_t k = 0; k < nbrs.size(); ++k) {
      row.push_back({nbrs[k], eids[k]});
      ASSERT_LT(eids[k], g.m());
      // The arc must carry the id of an edge that actually joins
      // v and nbrs[k] (multigraph-safe: ids distinguish copies).
      const Edge& e = g.edges[eids[k]];
      EXPECT_TRUE((e.u == v && e.v == nbrs[k]) ||
                  (e.v == v && e.u == nbrs[k]))
          << "arc (" << v << "," << nbrs[k] << ") carries edge " << eids[k];
      ++eid_count[eids[k]];
    }
    std::vector<std::pair<vid, eid>> want = ref[v];
    std::sort(row.begin(), row.end());
    std::sort(want.begin(), want.end());
    EXPECT_EQ(row, want) << "row multiset mismatch at v=" << v;
  }
  // Every edge id appears exactly twice across all rows (once per
  // endpoint), i.e. eids_ is a permutation of each id duplicated.
  for (eid e = 0; e < g.m(); ++e) {
    EXPECT_EQ(eid_count[e], 2u) << "edge " << e;
  }
}

void expect_csr_matches_all_widths(const EdgeList& g) {
  for (int p : {1, 4, 12}) {
    SCOPED_TRACE("threads=" + std::to_string(p));
    Executor ex(p);
    expect_csr_matches(ex, g);
  }
}

TEST(CsrBuild, RandomGnmSmall) {
  // Small enough for the sequential path (num_arcs <= 2^13).
  expect_csr_matches_all_widths(gen::random_gnm(200, 900, 1));
}

TEST(CsrBuild, RandomGnmScatter) {
  // Large enough to take the parallel bucket-scatter path.
  expect_csr_matches_all_widths(gen::random_gnm(20000, 120000, 2));
}

TEST(CsrBuild, RandomGnmDense) {
  expect_csr_matches_all_widths(gen::random_gnm(2000, 60000, 3));
}

TEST(CsrBuild, SparseTriggersRadixFallback) {
  // num_arcs = 2m < n/4 forces the trimmed-pass radix path.
  expect_csr_matches_all_widths(gen::random_gnm(100000, 9000, 4));
}

TEST(CsrBuild, StarAllArcsOneVertex) {
  // One vertex owns half of all arcs: stresses bucket skew.
  expect_csr_matches_all_widths(gen::star(5001));
}

TEST(CsrBuild, ChainUniformDegree) {
  expect_csr_matches_all_widths(gen::path(30000));
}

TEST(CsrBuild, MultigraphParallelEdges) {
  // Parallel copies must keep distinct edge ids per arc.
  EdgeList g(6, {{0, 1}, {0, 1}, {0, 1}, {1, 2}, {2, 0}, {2, 0},
                 {3, 4}, {4, 3}, {3, 4}, {4, 5}});
  expect_csr_matches_all_widths(g);
}

TEST(CsrBuild, EmptyAndEdgelessGraphs) {
  expect_csr_matches_all_widths(EdgeList(0, {}));
  expect_csr_matches_all_widths(EdgeList(57, {}));
}

TEST(CsrBuild, SingleEdge) {
  expect_csr_matches_all_widths(EdgeList(2, {{0, 1}}));
}

TEST(CsrBuild, RejectsSelfLoops) {
  Executor ex(4);
  EdgeList g(3, {{0, 1}, {2, 2}});
  EXPECT_THROW(Csr::build(ex, g), std::invalid_argument);
}

TEST(CsrBuild, PrebuiltCsrSkipsConversion) {
  const EdgeList g = gen::random_gnm(4000, 24000, 7);
  Executor ex(4);
  const Csr csr = Csr::build(ex, g);

  BccOptions opt;
  opt.threads = 4;
  BccOptions with_csr = opt;
  with_csr.prebuilt_csr = &csr;

  const BccResult base = biconnected_components(ex, g, opt);
  const BccResult cached = biconnected_components(ex, g, with_csr);
  EXPECT_EQ(cached.num_components, base.num_components);
  EXPECT_EQ(cached.edge_component, base.edge_component);
  EXPECT_EQ(cached.times.conversion, 0.0);
}

TEST(CsrBuild, PrebuiltCsrIgnoredOnMismatch) {
  // A CSR of some other graph must be rejected, not trusted.
  const EdgeList g = gen::random_gnm(3000, 12000, 8);
  const EdgeList other = gen::random_gnm(3000, 9000, 9);
  Executor ex(4);
  const Csr wrong = Csr::build(ex, other);

  BccOptions opt;
  opt.threads = 4;
  opt.prebuilt_csr = &wrong;
  const BccResult got = biconnected_components(ex, g, opt);
  const BccResult want = biconnected_components(ex, g, BccOptions{});
  EXPECT_EQ(got.num_components, want.num_components);
}

TEST(CsrAdopt, BorrowedViewsReadTheCallerArrays) {
  const EdgeList g = gen::random_gnm(100, 600, 3);
  Executor ex(4);
  const Csr owned = Csr::build(ex, g);
  EXPECT_FALSE(owned.is_borrowed());

  const Csr borrowed = Csr::adopt(g.n, g.m(), owned.offsets(),
                                  owned.targets(), owned.edge_ids());
  EXPECT_TRUE(borrowed.is_borrowed());
  ASSERT_EQ(borrowed.num_vertices(), owned.num_vertices());
  ASSERT_EQ(borrowed.num_edges(), owned.num_edges());
  // Zero copy: the views alias the source arrays, element for element.
  EXPECT_EQ(borrowed.offsets().data(), owned.offsets().data());
  EXPECT_EQ(borrowed.targets().data(), owned.targets().data());
  EXPECT_EQ(borrowed.edge_ids().data(), owned.edge_ids().data());
  for (vid v = 0; v < g.n; ++v) {
    ASSERT_EQ(borrowed.degree(v), owned.degree(v));
    const auto bn = borrowed.neighbors(v);
    const auto on = owned.neighbors(v);
    ASSERT_TRUE(std::equal(bn.begin(), bn.end(), on.begin(), on.end()));
  }
}

TEST(CsrAdopt, MoveKeepsViewsValid) {
  // An owned Csr's views point into its own vectors; moving the Csr
  // moves the heap buffers, so the views must still be right after.
  const EdgeList g = gen::clique_chain(5, 6);
  Executor ex(2);
  Csr a = Csr::build(ex, g);
  const vid* targets_before = a.targets().data();
  Csr b = std::move(a);
  EXPECT_EQ(b.targets().data(), targets_before);
  EXPECT_EQ(b.num_vertices(), g.n);
  eid arcs = 0;
  for (vid v = 0; v < g.n; ++v) arcs += b.degree(v);
  EXPECT_EQ(arcs, 2 * g.m());
}

}  // namespace
}  // namespace parbcc
